(* deptest — command-line driver for the dependence analyzer.

   Subcommands:
     analyze    print all data dependences of a mini-Fortran file
     parallel   report which loops are parallelizable
     vectorize  print the Allen-Kennedy vectorization plan
     suggest    print peel/split suggestions for breakable dependences
     tables     regenerate the paper's evaluation tables over the corpus
     corpus     list the embedded benchmark corpus *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Exit code 2 for load (lexical/syntax/lowering) errors, distinct from
   exit 1 for analysis failures such as an unsound [check] run. *)
let load_error path ?line what msg =
  (match line with
  | Some l -> Printf.eprintf "%s:%d: %s%s\n" path l what msg
  | None -> Printf.eprintf "%s: %s%s\n" path what msg);
  exit 2

let load_unit path =
  let src = read_file path in
  let is_c =
    Filename.check_suffix path ".c"
    || ((not (Filename.check_suffix path ".f"))
       && Dt_frontend.Cfront.looks_like_c src)
  in
  match
    if is_c then [ Dt_frontend.Cfront.parse_and_lower src ]
    else Dt_frontend.Lower.parse_unit src
  with
  | [] -> load_error path "" "empty compilation unit"
  | progs -> progs
  | exception Dt_frontend.Cfront.Error (msg, line) ->
      load_error path ~line "syntax error: " msg
  | exception Dt_frontend.Lexer.Error (msg, line) ->
      load_error path ~line "lexical error: " msg
  | exception Dt_frontend.Parser.Error (msg, line) ->
      load_error path ~line "syntax error: " msg
  | exception Dt_frontend.Lower.Error (msg, line) ->
      load_error path ~line "" msg

(* run a per-program command over every routine of the file *)
let each path f =
  let progs = load_unit path in
  let many = List.length progs > 1 in
  List.iter
    (fun (p : Dt_ir.Nest.program) ->
      if many then Printf.printf "===== %s =====\n" p.Dt_ir.Nest.name;
      f p)
    progs

let load path = List.hd (load_unit path)
let _ = load

(* dependence summary for the transform subcommands: default engine
   configuration (parallel pair testing, shared memo cache) *)
let deps_of prog =
  (Deptest.Analyze.run Deptest.Analyze.Config.default prog)
    .Deptest.Analyze.deps

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Mini-Fortran source file.")

let strategy_arg =
  Arg.(
    value
    & opt (enum [ ("partition", Deptest.Pair_test.Partition_based);
                  ("subscript", Deptest.Pair_test.Subscript_by_subscript) ])
        Deptest.Pair_test.Partition_based
    & info [ "strategy" ]
        ~doc:"Testing strategy: $(b,partition) (the paper) or $(b,subscript) \
              (pre-Delta baseline).")

let inputs_arg =
  Arg.(
    value & flag
    & info [ "inputs" ] ~doc:"Also report input (read-read) dependences.")

let bind_arg =
  Arg.(
    value
    & opt (list (pair ~sep:'=' string int)) []
    & info [ "bind" ] ~docv:"N=100,M=50"
        ~doc:
          "Bind symbolic constants to values before analysis \
           (specialization makes every exact test fully precise).")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel pair-testing engine; 0 (the \
           default) means one per available core. The analysis result is \
           identical at every setting.")

let dispatch_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("auto", Deptest.Banerjee.Auto);
             ("incremental", Deptest.Banerjee.Incremental);
             ("reference", Deptest.Banerjee.Reference) ])
        Deptest.Banerjee.Auto
    & info [ "dispatch" ]
        ~doc:
          "Banerjee evaluator dispatch: $(b,auto) (pick per query from the \
           nest shape), $(b,incremental) (compiled kernels), or \
           $(b,reference) (the from-scratch oracle). Verdicts are identical \
           at every setting; only the wall clock changes.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Disable the structural memo cache (identical reference-pair \
           shapes re-run the full test cascade).")

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Exit 3 if any reference pair was degraded to the conservative \
           full direction-vector verdict (overflow, contained exception, \
           or exhausted budget/deadline). Without this flag degraded \
           pairs are reported but the run still exits 0.")

let budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget" ] ~docv:"N"
        ~doc:
          "Per-reference-pair work budget, in Banerjee hierarchy-node \
           evaluations; a pair exceeding it degrades to the conservative \
           verdict instead of running unboundedly.")

let deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock deadline per analyzed routine, in milliseconds; \
           pairs starting after it degrade conservatively without being \
           tested.")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Print the reasoning trace: every test applied to every \
           reference pair, with the reason for each verdict.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE.jsonl"
        ~doc:"Write the trace as JSON Lines (one event per line) to $(docv).")

let chrome_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chrome-trace" ] ~docv:"FILE.json"
        ~doc:
          "Record a timeline of the run and write it in Chrome trace-event \
           format to $(docv) (open with Perfetto / chrome://tracing; one \
           row per worker domain).")

let flame_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flame" ] ~docv:"FILE.folded"
        ~doc:
          "Record a timeline of the run and write it as folded stacks to \
           $(docv) (pipe through flamegraph.pl for an SVG flamegraph).")

let prom_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "prom" ] ~docv:"FILE"
        ~doc:
          "Write the run's metrics snapshot in Prometheus text exposition \
           format (0.0.4) to $(docv) — the same registry the JSON snapshot \
           exports, as $(b,deptest_)-prefixed families with a cumulative \
           pair-latency histogram.")

let ledger_arg =
  Arg.(
    value
    & opt ~vopt:(Some Dt_report.Ledger.default_path) (some string) None
    & info [ "ledger" ] ~docv:"PATH"
        ~env:(Cmd.Env.info "DEPTEST_LEDGER")
        ~doc:
          "Append one run record (config fingerprint, source digest, \
           verdict histogram, timings) to the JSONL ledger at $(docv) \
           (default $(b,.deptest/ledger.jsonl)); inspect it with \
           $(b,deptest report).")

let label_arg =
  Arg.(
    value & opt string ""
    & info [ "label" ] ~docv:"NAME"
        ~doc:
          "Label stored in the ledger record; part of the configuration \
           fingerprint, so differently-labelled runs never drift against \
           each other.")

(* every artifact lands via write-to-temp-then-rename: a crashed or
   interrupted run never leaves a truncated file behind *)
let write_artifact path content =
  try Dt_obs.Artifact.write_atomic path content
  with Sys_error e ->
    Printf.eprintf "cannot write %s: %s\n" path e;
    exit 2

let make_profiler chrome flame =
  if chrome <> None || flame <> None then
    Some (Dt_obs.Span.profiler ~gc:true ())
  else None

let export_timeline chrome flame profiler =
  match profiler with
  | None -> ()
  | Some p ->
      let spans = Dt_obs.Span.spans p in
      (match chrome with
      | Some f ->
          write_artifact f
            (Dt_obs.Json.to_string (Dt_obs.Timeline.to_chrome spans) ^ "\n")
      | None -> ());
      (match flame with
      | Some f -> write_artifact f (Dt_obs.Timeline.to_folded spans)
      | None -> ())

let ledger_window_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "ledger-window" ] ~docv:"N"
        ~env:(Cmd.Env.info "DEPTEST_LEDGER_WINDOW")
        ~doc:
          (Printf.sprintf
             "Ledger compaction window: keep only the newest $(docv) \
              records per configuration fingerprint when appending \
              (default %d)."
             Dt_report.Ledger.default_keep))

let analyze_cmd =
  let run file strategy inputs bindings explain trace_file jobs dispatch
      no_cache strict budget deadline_ms chrome flame prom ledger
      ledger_window label =
    let profiler = make_profiler chrome flame in
    let trace_buf =
      match trace_file with None -> None | Some _ -> Some (Buffer.create 4096)
    in
    let degraded_total = ref 0 in
    (* --prom / --ledger observe the whole file as one run: a shared
       metrics registry across routines, plus §6 counters and pair
       verdicts aggregated for the ledger record *)
    let want_record = prom <> None || ledger <> None in
    let metrics = if want_record then Some (Dt_obs.Metrics.create ()) else None in
    let agg_counters = Deptest.Counters.create () in
    let agg_pairs = ref 0 and agg_indep = ref 0 and agg_degr = ref 0 in
    let routines = ref 0 in
    let gc0 = Gc.quick_stat () in
    let t0 = Dt_obs.Metrics.now_ns () in
    let progs =
      List.map
        (fun p ->
          if bindings = [] then p else Dt_ir.Specialize.program p ~bindings)
        (load_unit file)
    in
    let many = List.length progs > 1 in
    routines := List.length progs;
    let cfg ?sink () =
      Deptest.Analyze.Config.make ~strategy ~include_inputs:inputs ~jobs
        ~dispatch ~cache:(not no_cache) ?metrics ?sink ?profiler ?budget
        ?deadline_ms ()
    in
    let analyzed =
      if explain || trace_buf <> None then
        (* a trace is an ordered narrative: per-routine sink, which also
           forces each routine to run sequentially *)
        List.map
          (fun prog ->
            let sink = Some (Dt_obs.Trace.make ()) in
            (prog, sink, Deptest.Analyze.run (cfg ?sink ()) prog))
          progs
      else
        (* no ordering constraint: shard whole routines across the
           work-stealing pool, sharing one memo cache across the file *)
        let c = cfg () in
        List.map2
          (fun prog r -> (prog, None, r))
          progs
          (Deptest.Analyze.run_all c progs)
    in
    (* verdict text comes from Dt_serve.Render — the single rendering
       shared with the serve daemon, so `deptest analyze` and a daemon
       answer are byte-identical by construction *)
    (analyzed
    |> List.iter @@ fun (prog, sink, r) ->
       print_string (Dt_serve.Render.header ~many prog.Dt_ir.Nest.name);
       if want_record then begin
       Deptest.Counters.merge_into agg_counters r.Deptest.Analyze.counters;
       let pairs, indep, degr = Dt_report.Record.summary_of_result r in
       agg_pairs := !agg_pairs + pairs;
       agg_indep := !agg_indep + indep;
       agg_degr := !agg_degr + degr
     end;
     print_string (Dt_serve.Render.verdicts prog r);
     (match sink with
     | Some sk ->
         if explain then begin
           Format.printf "@.-- explain --@.%a" Dt_obs.Trace.pp_tree sk;
           (* the surrounding text goes straight to the channel: push any
              queued formatter output out so ordering is preserved *)
           Format.print_flush ()
         end;
         (match trace_buf with
         | Some b -> Buffer.add_string b (Dt_obs.Trace.to_jsonl sk)
         | None -> ())
     | None -> ());
     let warn, degraded = Dt_serve.Render.warnings r in
     degraded_total := !degraded_total + degraded;
     print_string warn;
     print_string (Dt_serve.Render.counters r));
    (match (trace_file, trace_buf) with
    | Some f, Some b -> write_artifact f (Buffer.contents b)
    | _ -> ());
    export_timeline chrome flame profiler;
    (match metrics with
    | None -> ()
    | Some m ->
        let wall_ns = Int64.to_int (Int64.sub (Dt_obs.Metrics.now_ns ()) t0) in
        let gc1 = Gc.quick_stat () in
        (match prom with
        | Some f -> write_artifact f (Dt_obs.Metrics.to_prometheus m)
        | None -> ());
        (match ledger with
        | None -> ()
        | Some path ->
            let cfg0 =
              Deptest.Analyze.Config.make ~strategy ~include_inputs:inputs
                ~jobs ~cache:(not no_cache) ?budget ?deadline_ms ()
            in
            let record =
              Dt_report.Record.make ~ts_ms:(Dt_report.Record.now_ms ()) ~label
                ~config:(Dt_report.Record.config_of cfg0)
                ~source:
                  (Dt_report.Record.source_of ~routines:!routines
                     (read_file file))
                ~counters:agg_counters ~pairs:!agg_pairs
                ~independent:!agg_indep ~degraded:!agg_degr ~metrics:m
                ~wall_ns
                ~gc_minor_words:(gc1.Gc.minor_words -. gc0.Gc.minor_words)
                ~gc_major_words:(gc1.Gc.major_words -. gc0.Gc.major_words)
                ()
            in
            (match Dt_report.Ledger.append ~path ?keep:ledger_window record with
            | Ok skipped ->
                if skipped > 0 then
                  Printf.eprintf
                    "warning: %s: dropped %d corrupt line(s) on rewrite\n" path
                    skipped
            | Error e ->
                Printf.eprintf "cannot write ledger %s: %s\n" path e;
                exit 2)));
    (* exit 3: sound-but-degraded, distinct from analysis failure (1)
       and load error (2) *)
    if strict && !degraded_total > 0 then begin
      Printf.eprintf
        "strict mode: %d reference pair(s) degraded conservatively\n"
        !degraded_total;
      exit 3
    end
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Print all data dependences of a program")
    Term.(
      const run $ file_arg $ strategy_arg $ inputs_arg $ bind_arg
      $ explain_arg $ trace_arg $ jobs_arg $ dispatch_arg $ no_cache_arg
      $ strict_arg $ budget_arg $ deadline_arg $ chrome_arg $ flame_arg
      $ prom_arg $ ledger_arg $ ledger_window_arg $ label_arg)

let parallel_cmd =
  let run file =
    each file @@ fun prog ->
    let deps = deps_of prog in
    List.iter
      (fun rep -> Format.printf "%a@." Dt_transform.Parallel.pp_report rep)
      (Dt_transform.Parallel.analyze prog deps)
  in
  Cmd.v
    (Cmd.info "parallel" ~doc:"Report which loops can run in parallel")
    Term.(const run $ file_arg)

let vectorize_cmd =
  let run file =
    each file @@ fun prog ->
    let deps = deps_of prog in
    Format.printf "%a" Dt_transform.Vectorize.pp
      (Dt_transform.Vectorize.codegen prog deps)
  in
  Cmd.v
    (Cmd.info "vectorize"
       ~doc:"Print the Allen-Kennedy vectorization plan for a program")
    Term.(const run $ file_arg)

let suggest_cmd =
  let run file =
    each file @@ fun prog ->
    (match Dt_transform.Restructure.suggest prog with
    | [] -> print_endline "no peel/split opportunities found"
    | sugg ->
        List.iter
          (fun s -> Format.printf "%a@." Dt_transform.Restructure.pp s)
          sugg);
    let deps = deps_of prog in
    match Dt_transform.Scalar_replace.suggest prog deps with
    | [] -> ()
    | cands ->
        print_endline "-- scalar replacement candidates --";
        List.iter
          (fun c -> Format.printf "%a@." Dt_transform.Scalar_replace.pp c)
          cands
  in
  Cmd.v
    (Cmd.info "suggest"
       ~doc:
         "Suggest loop peeling / splitting / scalar replacement based on \
          the dependence information")
    Term.(const run $ file_arg)

let distribute_cmd =
  let run file =
    each file @@ fun prog ->
    let prog', reports = Dt_transform.Distribute.run_and_report prog in
    Format.printf "%a" Dt_ir.Nest.pp prog';
    print_endline "-- loop parallelism after distribution --";
    List.iter
      (fun r -> Format.printf "  %a@." Dt_transform.Parallel.pp_report r)
      reports
  in
  Cmd.v
    (Cmd.info "distribute"
       ~doc:"Distribute loops around dependence cycles (loop fission)")
    Term.(const run $ file_arg)

let graph_cmd =
  let run file =
    each file @@ fun prog ->
    let deps = deps_of prog in
    let g = Deptest.Depgraph.build deps in
    let label id =
      match Dt_ir.Nest.find_stmt prog id with
      | Some s -> Format.asprintf "S%d: %a" id Dt_ir.Stmt.pp s
      | None -> Printf.sprintf "S%d" id
    in
    print_string (Deptest.Depgraph.to_dot ~stmt_label:label g)
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:"Print the statement dependence graph in Graphviz dot format")
    Term.(const run $ file_arg)

let check_cmd =
  let run file n =
    let failures = ref 0 and checked = ref 0 in
    each file @@ fun prog ->
    (* same pair enumeration as the analysis engine (read-read pairs
       included: the oracle checks address collisions, not dep kinds) *)
    let sites = Deptest.Analyze.sites ~include_inputs:true prog in
    Array.iter
      (fun (site : Deptest.Analyze.site) ->
        let (a1 : Dt_ir.Stmt.access), l1 = site.Deptest.Analyze.left
        and (a2 : Dt_ir.Stmt.access), l2 = site.Deptest.Analyze.right in
        if Dt_ir.Aref.rank a1.Dt_ir.Stmt.aref > 0 then
          match
            Dt_exact.Brute.test ~sym_env:(fun _ -> n)
              ~src:(a1.Dt_ir.Stmt.aref, l1) ~snk:(a2.Dt_ir.Stmt.aref, l2) ()
          with
          | None -> ()
          | Some rep ->
              incr checked;
              let t =
                Deptest.Pair_test.test
                  ~src:(a1.Dt_ir.Stmt.aref, l1)
                  ~snk:(a2.Dt_ir.Stmt.aref, l2)
                  ()
              in
              let indep = t.Deptest.Pair_test.result = `Independent in
              if indep && rep.Dt_exact.Brute.dependent then begin
                incr failures;
                Format.printf "UNSOUND: %a vs %a@." Dt_ir.Aref.pp
                  a1.Dt_ir.Stmt.aref Dt_ir.Aref.pp a2.Dt_ir.Stmt.aref
              end
              else if (not indep) && not rep.Dt_exact.Brute.dependent then
                Format.printf "conservative: %a vs %a (no collision at N=%d)@."
                  Dt_ir.Aref.pp a1.Dt_ir.Stmt.aref Dt_ir.Aref.pp
                  a2.Dt_ir.Stmt.aref n)
      sites;
    Printf.printf "%d reference pairs checked against the oracle, %d unsound\n"
      !checked !failures;
    if !failures > 0 then exit 1
  in
  let n_arg =
    Arg.(
      value & opt int 10
      & info [ "n" ] ~docv:"N"
          ~doc:"Value bound to every symbolic constant for the oracle run.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Validate the analyzer against brute-force enumeration on a file \
          (reports unsound or conservative verdicts)")
    Term.(const run $ file_arg $ n_arg)

let suites_arg =
  Arg.(
    value
    & opt (some (list string)) None
    & info [ "suites" ] ~docv:"S1,S2"
        ~doc:"Restrict to these corpus suites.")

let tables_cmd =
  let run suites which =
    let suites = suites in
    let s =
      match which with
      | "1" -> Dt_stats.Tables.table1 ?suites ()
      | "2" -> Dt_stats.Tables.table2 ?suites ()
      | "3" -> Dt_stats.Tables.table3 ?suites ()
      | "4" -> Dt_stats.Tables.table4 ?suites ()
      | _ -> Dt_stats.Tables.all ?suites ()
    in
    print_string s
  in
  let which =
    Arg.(
      value & opt string "all"
      & info [ "table" ] ~docv:"N" ~doc:"Which table (1-4 or all).")
  in
  Cmd.v
    (Cmd.info "tables"
       ~doc:"Regenerate the paper's evaluation tables over the corpus")
    Term.(const run $ suites_arg $ which)

let profile_cmd =
  let diff base_path cur_path ~threshold ~min_ns =
    let parse path =
      match Dt_obs.Json.of_string (read_file path) with
      | Ok j -> j
      | Error e -> load_error path "invalid metrics JSON: " e
      | exception Sys_error e -> load_error path "" e
    in
    let base = parse base_path and cur = parse cur_path in
    match
      Dt_obs.Diff.compare_json ~threshold:(threshold /. 100.) ~min_ns ~base
        ~cur ()
    with
    | Error e -> load_error cur_path "" e
    | Ok report ->
        Format.printf "%a@." Dt_obs.Diff.pp report;
        if Dt_obs.Diff.has_breach report then exit 1
  in
  let run file strategy json jobs dispatch diff_base threshold min_ns chrome
      flame =
    match diff_base with
    | Some base ->
        (* diff mode: FILE is the *current* metrics snapshot, not a
           source file — no analysis runs at all *)
        diff base file ~threshold ~min_ns
    | None ->
        let metrics = Dt_obs.Metrics.create () in
        let profiler = make_profiler chrome flame in
        let main_buf =
          Option.map (fun p -> Dt_obs.Span.buffer p ~domain:0) profiler
        in
        (* cache off: the per-kind time columns must reflect real
           executions of every test. Sequential by default; an explicit
           --jobs exercises the parallel engine (per-domain busy / wait
           accounting, one timeline row per worker). *)
        let cfg =
          Deptest.Analyze.Config.make ~strategy ~jobs ~dispatch ~cache:false
            ~metrics ?profiler ()
        in
        let progs =
          Dt_obs.Span.with_ main_buf Dt_obs.Span.Parse (fun () ->
              Dt_obs.Metrics.timed (Some metrics) Dt_obs.Metrics.Parse
                (fun () -> load_unit file))
        in
        List.iter
          (fun (prog : Dt_ir.Nest.program) ->
            ignore (Deptest.Analyze.run cfg prog))
          progs;
        if json then
          print_endline
            (Dt_obs.Json.to_string (Dt_obs.Metrics.to_json metrics))
        else Format.printf "%a" Dt_obs.Metrics.pp metrics;
        export_timeline chrome flame profiler
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the metrics snapshot as JSON instead of a table.")
  in
  let profile_jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for the profiled run (default 1: sequential, \
             so per-kind times reflect one execution stream).")
  in
  let diff_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "diff" ] ~docv:"OLD.json"
          ~doc:
            "Regression mode: compare the baseline metrics snapshot \
             $(docv) against the current snapshot given as the positional \
             argument (both from $(b,profile --json)), print per-row \
             deltas, and exit 1 if any row regressed past the thresholds.")
  in
  let threshold_arg =
    Arg.(
      value & opt float 25.0
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:
            "With $(b,--diff): relative time growth (in percent) that \
             counts as a regression.")
  in
  let min_ns_arg =
    Arg.(
      value & opt float 10000.0
      & info [ "min-ns" ] ~docv:"NS"
          ~doc:
            "With $(b,--diff): absolute time growth floor a row must also \
             exceed to count (damps jitter on microsecond-scale rows).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Analyze a file and print per-test-kind counts and wall-clock \
          timings (the paper's Table-3 shape with time columns), or diff \
          two metrics snapshots for regressions")
    Term.(
      const run $ file_arg $ strategy_arg $ json_arg $ profile_jobs_arg
      $ dispatch_arg $ diff_arg $ threshold_arg $ min_ns_arg $ chrome_arg
      $ flame_arg)

let corpus_cmd =
  let run () =
    List.iter
      (fun (e : Dt_workloads.Corpus.entry) ->
        Printf.printf "%-10s %s\n" e.Dt_workloads.Corpus.suite
          e.Dt_workloads.Corpus.name)
      Dt_workloads.Corpus.all
  in
  Cmd.v
    (Cmd.info "corpus" ~doc:"List the embedded benchmark corpus")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* report: inspect the run ledger                                      *)

let ledger_path_arg =
  Arg.(
    value
    & opt string Dt_report.Ledger.default_path
    & info [ "ledger" ] ~docv:"PATH"
        ~env:(Cmd.Env.info "DEPTEST_LEDGER")
        ~doc:"Ledger file to read (JSONL of run records).")

let load_ledger path =
  match Dt_report.Ledger.load ~path () with
  | Error e ->
      Printf.eprintf "%s: %s\n" path e;
      exit 2
  | Ok (records, skipped) ->
      if skipped > 0 then
        Printf.eprintf "warning: %s: skipped %d corrupt line(s)\n" path skipped;
      records

let nth_record records i =
  match List.nth_opt records i with
  | Some r -> r
  | None ->
      Printf.eprintf "no record %d (ledger has %d record(s))\n" i
        (List.length records);
      exit 2

let ts_string ms =
  let t = Unix.gmtime (float_of_int ms /. 1000.) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
    t.Unix.tm_sec

let short_fp fp = if String.length fp > 12 then String.sub fp 0 12 else fp

let report_list_cmd =
  let run path =
    match load_ledger path with
    | [] -> print_endline "(empty ledger)"
    | records ->
        List.iteri
          (fun i (r : Dt_report.Record.t) ->
            Printf.printf
              "%3d  %s  %s  %-12s  %4d pairs %4d indep %3d degraded  jobs=%d\n"
              i (ts_string r.ts_ms) (short_fp r.fingerprint)
              (if r.label = "" then "-" else r.label)
              r.verdicts.pairs r.verdicts.independent r.verdicts.degraded
              r.config.jobs)
          records
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the ledger's run records, oldest first")
    Term.(const run $ ledger_path_arg)

let report_show_cmd =
  let run path index json =
    let r = nth_record (load_ledger path) index in
    if json then
      print_endline (Dt_obs.Json.to_string (Dt_report.Record.to_json r))
    else Format.printf "%a@." Dt_report.Record.pp r
  in
  let index_arg =
    Arg.(
      required
      & pos 0 (some int) None
      & info [] ~docv:"N" ~doc:"Record index as shown by $(b,report list).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the full record JSON instead of a summary.")
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Show one ledger record")
    Term.(const run $ ledger_path_arg $ index_arg $ json_arg)

let drift_threshold_arg =
  Arg.(
    value & opt float 50.0
    & info [ "latency-threshold" ] ~docv:"PCT"
        ~doc:
          "Relative mean-pair-latency growth (percent) that counts as \
           drift; verdict counts always compare exactly.")

let drift_min_ns_arg =
  Arg.(
    value & opt float 10000.0
    & info [ "min-ns" ] ~docv:"NS"
        ~doc:
          "Absolute mean-latency growth floor that must also be exceeded \
           (damps jitter on microsecond-scale runs).")

let no_latency_arg =
  Arg.(
    value & flag
    & info [ "no-latency" ]
        ~doc:
          "Compare verdicts only; ignore latency entirely (for \
           cross-machine comparisons, e.g. a committed CI baseline).")

let report_diff_cmd =
  let run path a b threshold min_ns no_latency =
    let records = load_ledger path in
    let baseline = nth_record records a and current = nth_record records b in
    let counters, latency =
      Dt_report.Drift.diff ~latency_threshold:(threshold /. 100.) ~min_ns
        ~check_latency:(not no_latency) ~baseline ~current ()
    in
    if counters = [] && latency = None then
      Printf.printf "records %d and %d agree\n" a b
    else begin
      List.iter
        (fun (r : Dt_report.Drift.counter_row) ->
          Printf.printf "%s: %d -> %d\n" r.metric r.baseline r.current)
        counters;
      (match latency with
      | Some (l : Dt_report.Drift.latency_row) ->
          Printf.printf "mean pair latency: %.0f ns -> %.0f ns\n" l.baseline_ns
            l.current_ns
      | None -> ());
      exit 1
    end
  in
  let a_arg =
    Arg.(
      required
      & pos 0 (some int) None
      & info [] ~docv:"A" ~doc:"Baseline record index.")
  in
  let b_arg =
    Arg.(
      required
      & pos 1 (some int) None
      & info [] ~docv:"B" ~doc:"Current record index.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two ledger records field by field; exit 1 if they differ")
    Term.(
      const run $ ledger_path_arg $ a_arg $ b_arg $ drift_threshold_arg
      $ drift_min_ns_arg $ no_latency_arg)

let report_drift_cmd =
  let run path baseline_path window threshold min_ns no_latency =
    if not (Sys.file_exists baseline_path) then begin
      (* a repo without a committed baseline must pass CI: skip, don't fail *)
      Printf.printf "no baseline ledger at %s; skipping drift check\n"
        baseline_path;
      exit 0
    end;
    let baseline = load_ledger baseline_path in
    let current = load_ledger path in
    let report =
      Dt_report.Drift.detect ~window ~latency_threshold:(threshold /. 100.)
        ~min_ns ~check_latency:(not no_latency) ~baseline ~current ()
    in
    Format.printf "%a@." Dt_report.Drift.pp report;
    if Dt_report.Drift.has_drift report then exit 1
  in
  let baseline_arg =
    Arg.(
      value
      & opt string "bench/ledger_baseline.jsonl"
      & info [ "baseline" ] ~docv:"PATH"
          ~doc:
            "Baseline ledger to drift against; when the file does not \
             exist the check is skipped with exit 0.")
  in
  let window_arg =
    Arg.(
      value & opt int 5
      & info [ "window" ] ~docv:"K"
          ~doc:
            "Baseline records per fingerprint to aggregate (latency \
             compares against the window mean).")
  in
  Cmd.v
    (Cmd.info "drift"
       ~doc:
         "Compare the newest run of each configuration against a baseline \
          ledger; exit 1 on verdict or latency drift (the CI gate)")
    Term.(
      const run $ ledger_path_arg $ baseline_arg $ window_arg
      $ drift_threshold_arg $ drift_min_ns_arg $ no_latency_arg)

let report_cmd =
  Cmd.group
    (Cmd.info "report"
       ~doc:
         "Inspect the run ledger: list and show records, diff two runs, \
          gate on drift against a baseline")
    [ report_list_cmd; report_show_cmd; report_diff_cmd; report_drift_cmd ]

(* ------------------------------------------------------------------ *)
(* serve / client: the persistent analysis daemon and its round-trip
   tool. Verdict text is rendered by the same Dt_serve.Render the
   analyze command uses, so daemon answers match one-shot runs byte for
   byte. *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~env:(Cmd.Env.info "DEPTEST_SOCKET")
        ~doc:"Unix socket path of the analysis daemon.")

let serve_cmd =
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Directory for the persistent verdict cache: versioned, \
             fingerprinted segments written atomically; corrupt or stale \
             segments are skipped (counted in the metrics) and rebuilt.")
  in
  let cache_capacity_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"Bound resident cache entries (FIFO eviction past it).")
  in
  let warm_arg =
    Arg.(
      value
      & opt ~vopt:(Some "all") (some string) None
      & info [ "warm" ] ~docv:"SUITE"
          ~doc:
            "Pre-analyze the built-in workload corpus (or one suite of \
             it) before accepting connections, so first requests hit \
             warm caches.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress progress messages.")
  in
  let sample_period_arg =
    Arg.(
      value & opt int 1
      & info [ "sample-period" ] ~docv:"N"
          ~doc:
            "Arm request-scoped span capture on every $(docv)-th analyze \
             request (1: every request, the default; 0: never — summaries \
             still enter the slow ledger).")
  in
  let slow_threshold_arg =
    Arg.(
      value & opt float 0.
      & info [ "slow-threshold-ms" ] ~docv:"MS"
          ~doc:
            "Retain a captured span tree only when the request took at \
             least $(docv) milliseconds (0, the default, keeps every armed \
             capture). The summary enters the ledger either way.")
  in
  let ledger_recent_arg =
    Arg.(
      value & opt int 64
      & info [ "ledger-recent" ] ~docv:"N"
          ~doc:"Capacity of the slow ledger's newest-first request ring.")
  in
  let ledger_top_arg =
    Arg.(
      value & opt int 16
      & info [ "ledger-top" ] ~docv:"N"
          ~doc:"Capacity of the slow ledger's slowest-first board.")
  in
  let max_inflight_arg =
    Arg.(
      value & opt int 0
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Admission budget: when more than $(docv) requests are queued \
             at service time, analyze requests are shed with a structured \
             overloaded response carrying retry_after_ms (0, the default: \
             unbounded). Introspection ops always answer.")
  in
  let queue_deadline_arg =
    Arg.(
      value & opt int 0
      & info [ "queue-deadline-ms" ] ~docv:"MS"
          ~doc:
            "Shed an analyze request that already waited more than \
             $(docv) ms in the queue (0, the default: no queue deadline).")
  in
  let drain_grace_arg =
    Arg.(
      value & opt int 2_000
      & info [ "drain-grace-ms" ] ~docv:"MS"
          ~doc:
            "On SIGTERM/SIGINT/shutdown, keep answering requests already \
             sent for up to $(docv) ms before flushing and exiting.")
  in
  let supervise_arg =
    Arg.(
      value & flag
      & info [ "supervise" ]
          ~doc:
            "Fork the daemon and restart it on abnormal exit with \
             crash-loop backoff, up to $(b,--max-restarts) times. The \
             disk cache makes restarts warm; the restart count is \
             exported on $(b,client health) and \
             $(b,deptest_serve_restarts_total).")
  in
  let max_restarts_arg =
    Arg.(
      value & opt int 5
      & info [ "max-restarts" ] ~docv:"N"
          ~doc:"Give up after $(docv) supervised restarts.")
  in
  let restart_backoff_arg =
    Arg.(
      value & opt int 100
      & info [ "restart-backoff-ms" ] ~docv:"MS"
          ~doc:
            "Base of the supervisor's crash-loop backoff: the k-th \
             restart waits $(docv) * 2^k ms (capped). Lower it when a \
             watching client's retry budget is tighter than the default \
             restart cadence.")
  in
  let run socket jobs cache_dir cache_capacity warm quiet sample_period
      slow_threshold_ms ledger_recent ledger_top max_inflight
      queue_deadline_ms drain_grace_ms supervise max_restarts
      restart_backoff_ms =
    let log =
      if quiet then ignore
      else fun s -> Printf.eprintf "deptest serve: %s\n%!" s
    in
    let warm =
      Option.map (function "all" -> `All | s -> `Suite s) warm
    in
    let serve ~restarts =
      Dt_serve.Server.run ~socket ~jobs ?cache_dir ?cache_capacity
        ~sample_period
        ~slow_threshold_ns:
          (Int64.of_float (slow_threshold_ms *. 1_000_000.))
        ~ledger_recent ~ledger_top ~max_inflight ~queue_deadline_ms
        ~restarts ~drain_grace_ms ?warm ~signals:true ~log ()
    in
    exit
      (if supervise then
         Dt_serve.Supervise.run ~max_restarts
           ~backoff_ms:(max 1 restart_backoff_ms) ~signals:true
           ~log:(fun s ->
             if not quiet then Printf.eprintf "deptest supervise: %s\n%!" s)
           (fun ~restarts -> serve ~restarts)
       else serve ~restarts:0)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent analysis daemon on a unix socket \
          (length-prefixed JSON protocol; analyze / metrics / health / \
          slow / top / trace-last / flush / shutdown ops). SIGTERM or \
          SIGINT drains in-flight requests, flushes the cache, and exits \
          cleanly; $(b,--max-inflight)/$(b,--queue-deadline-ms) shed \
          excess analyze load with retryable overloaded responses; \
          $(b,--supervise) restarts the daemon on crashes.")
    Term.(
      const run $ socket_arg $ jobs_arg $ cache_dir_arg $ cache_capacity_arg
      $ warm_arg $ quiet_arg $ sample_period_arg $ slow_threshold_arg
      $ ledger_recent_arg $ ledger_top_arg $ max_inflight_arg
      $ queue_deadline_arg $ drain_grace_arg $ supervise_arg
      $ max_restarts_arg $ restart_backoff_arg)

let client_fail json =
  (match Dt_obs.Json.member "error" json with
  | Some (Dt_obs.Json.String e) -> Printf.eprintf "%s\n" e
  | _ -> Printf.eprintf "malformed server response\n");
  exit 1

let client_ok json =
  match Dt_obs.Json.member "ok" json with
  | Some (Dt_obs.Json.Bool true) -> ()
  | _ -> client_fail json

(* the documented exit taxonomy: transport problems (no daemon, timeout,
   connection lost, still overloaded after every retry) are exit 2 with
   one line on stderr naming the socket; an ok:false response is the
   analysis' own failure, exit 1 *)
let client_call socket ~retries ~timeout_ms ?(retry_truncated = false) req =
  let retry =
    {
      Dt_serve.Client.Retry.default with
      attempts = 1 + max 0 retries;
      retry_truncated;
    }
  in
  match Dt_serve.Client.call ~retry ~timeout_ms ~socket req with
  | Ok json -> json
  | Error f ->
      Printf.eprintf "%s\n" (Dt_serve.Client.failure_message ~socket f);
      exit 2

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Retry up to $(docv) additional times when no daemon answers, \
           the connection dies before any response byte, or the daemon \
           sheds the request as overloaded (sleeping at least its \
           retry_after_ms, with decorrelated-jitter backoff).")

let timeout_ms_arg =
  Arg.(
    value & opt int 30_000
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:"Per-attempt connect and receive timeout.")

let client_analyze_cmd =
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "quiet"; "q" ]
          ~doc:"Do not print the request's trace id to stderr.")
  in
  let deadline_arg =
    Arg.(
      value & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Total latency budget for the request. The daemon subtracts \
             the time it queued and analyzes under the remainder \
             (degrading conservatively rather than overrunning); a \
             budget already spent queueing is a deadline-exceeded \
             error.")
  in
  let run socket file strict quiet retries timeout_ms deadline_ms =
    (* the client mints the trace id so a slow request can be chased
       into the daemon's ledger (client slow / trace-last) even when the
       response never arrives. It goes to stderr: stdout must stay
       byte-identical to one-shot `deptest analyze`. The same id rides
       every retry attempt, so the ledger shows the whole chain. *)
    let trace_id = Dt_obs.Reqtrace.gen_id () in
    if not quiet then Printf.eprintf "trace %s\n%!" trace_id;
    let resp =
      (* analyze is idempotent (pure analysis + idempotent cache
         writes), so a mid-response disconnect is safe to re-ask *)
      client_call socket ~retries ~timeout_ms ~retry_truncated:true
        (Dt_serve.Protocol.Analyze
           {
             source = read_file file;
             id = None;
             trace_id = Some trace_id;
             deadline_ms;
           })
    in
    client_ok resp;
    (match Dt_obs.Json.member "output" resp with
    | Some (Dt_obs.Json.String out) -> print_string out
    | _ -> client_fail resp);
    match Dt_obs.Json.member "degraded" resp with
    | Some (Dt_obs.Json.Int n) when strict && n > 0 ->
        Printf.eprintf
          "strict mode: %d reference pair(s) degraded conservatively\n" n;
        exit 3
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Analyze a file through the daemon; output is byte-identical to \
          one-shot $(b,deptest analyze). The request's trace id is printed \
          to stderr for chasing it through $(b,client slow) and \
          $(b,client trace-last).")
    Term.(
      const run $ socket_arg $ file_arg $ strict_arg $ quiet_arg
      $ retries_arg $ timeout_ms_arg $ deadline_arg)

let client_metrics_cmd =
  let prom_flag =
    Arg.(
      value & flag
      & info [ "prom" ]
          ~doc:"Prometheus text exposition instead of the JSON snapshot.")
  in
  let run socket prom retries timeout_ms =
    let resp =
      client_call socket ~retries ~timeout_ms
        (Dt_serve.Protocol.Metrics { prometheus = prom })
    in
    client_ok resp;
    if prom then
      match Dt_obs.Json.member "prometheus" resp with
      | Some (Dt_obs.Json.String body) -> print_string body
      | _ -> client_fail resp
    else print_endline (Dt_obs.Json.to_string resp)
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "The daemon's metrics. JSON by default (the snapshot under \
          $(b,.metrics), request counters under $(b,.serve)); $(b,--prom) \
          for Prometheus text.")
    Term.(const run $ socket_arg $ prom_flag $ retries_arg $ timeout_ms_arg)

let client_simple name doc req print =
  let run socket retries timeout_ms =
    let resp = client_call socket ~retries ~timeout_ms req in
    client_ok resp;
    print resp
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(const run $ socket_arg $ retries_arg $ timeout_ms_arg)

let client_n_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "n" ] ~docv:"N"
        ~doc:"At most $(docv) entries (default: the ledger's capacity).")

let client_ledger_cmd name doc mk =
  let run socket n retries timeout_ms =
    let resp = client_call socket ~retries ~timeout_ms (mk n) in
    client_ok resp;
    print_endline (Dt_obs.Json.to_string resp)
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(const run $ socket_arg $ client_n_arg $ retries_arg $ timeout_ms_arg)

let client_trace_last_cmd =
  let trace_id_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-id" ] ~docv:"ID"
          ~doc:
            "Export the capture for this trace id (default: the most \
             recent retained capture).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the Chrome trace there instead of stdout.")
  in
  let run socket trace_id out retries timeout_ms =
    let resp =
      client_call socket ~retries ~timeout_ms
        (Dt_serve.Protocol.Trace_last { trace_id })
    in
    client_ok resp;
    match Dt_obs.Json.member "chrome_trace" resp with
    | Some trace -> (
        let body = Dt_obs.Json.to_string trace ^ "\n" in
        match out with
        | None -> print_string body
        | Some f ->
            Dt_obs.Artifact.write_atomic f body;
            Printf.eprintf "wrote %s\n" f)
    | None -> client_fail resp
  in
  Cmd.v
    (Cmd.info "trace-last"
       ~doc:
         "Export the daemon's most recent captured request (or \
          $(b,--trace-id)'s) as a Chrome trace — load it in Perfetto / \
          chrome://tracing.")
    Term.(
      const run $ socket_arg $ trace_id_arg $ out_arg $ retries_arg
      $ timeout_ms_arg)

let client_cmd =
  Cmd.group
    (Cmd.info "client"
       ~doc:"Scripted round-trips against a running $(b,deptest serve)")
    [
      client_analyze_cmd;
      client_metrics_cmd;
      client_ledger_cmd "slow"
        "The newest entries in the daemon's slow-request ledger (JSON, \
         newest first): trace id, endpoint, cache tier, degraded count, \
         wall time."
        (fun n -> Dt_serve.Protocol.Slow { n });
      client_ledger_cmd "top"
        "The slowest requests the daemon has seen (JSON, slowest first)."
        (fun n -> Dt_serve.Protocol.Top { n });
      client_trace_last_cmd;
      client_simple "health" "Daemon liveness, vitals, and cache occupancy."
        Dt_serve.Protocol.Health
        (fun r -> print_endline (Dt_obs.Json.to_string r));
      client_simple "flush" "Persist the daemon's disk cache now."
        Dt_serve.Protocol.Flush
        (fun r -> print_endline (Dt_obs.Json.to_string r));
      client_simple "shutdown" "Stop the daemon (it flushes and exits 0)."
        Dt_serve.Protocol.Shutdown (fun _ -> ());
    ]

let main =
  Cmd.group
    (Cmd.info "deptest" ~version:"1.0.0"
       ~doc:"Practical dependence testing for loop nests (Goff-Kennedy-Tseng, PLDI 1991)")
    [
      analyze_cmd;
      parallel_cmd;
      vectorize_cmd;
      distribute_cmd;
      graph_cmd;
      suggest_cmd;
      check_cmd;
      profile_cmd;
      tables_cmd;
      corpus_cmd;
      report_cmd;
      serve_cmd;
      client_cmd;
    ]

let () =
  (* opt-in deterministic fault injection (DEPTEST_INJECT=overflow,...);
     only the CLI reads the environment, so library behavior stays
     env-independent *)
  Dt_guard.Inject.from_env ();
  exit (Cmd.eval main)
