(** Strategy comparison on coupled subscripts — the Table-4 experiment.

    For every array reference pair in a program that contains a coupled
    subscript group, run three strategies:

    - the pre-Delta baseline (subscript-by-subscript Banerjee-GCD),
    - the paper's partition-based suite with the Delta test,
    - the exact (and expensive) Power test,

    and compare how many pairs each proves independent and how many
    concrete direction vectors each reports (fewer = sharper, given the
    same soundness). Li et al. report up to 36% more independence from
    multiple-subscript testing on eispack; the Delta column should track
    the Power column closely at a fraction of the cost. *)

type row = {
  label : string;
  coupled_pairs : int;
  indep_baseline : int;
  indep_delta : int;
  indep_power : int;
  vecs_baseline : int;
  vecs_delta : int;
  vecs_power : int;
}

val of_program : label:string -> Dt_ir.Nest.program -> row
val of_entries : label:string -> Dt_workloads.Corpus.entry list -> row
val add : row -> row -> row
val pp : Format.formatter -> row -> unit
