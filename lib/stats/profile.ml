open Deptest

type class_counts = {
  ziv : int;
  strong_siv : int;
  weak_zero : int;
  weak_crossing : int;
  general_siv : int;
  rdiv : int;
  miv : int;
}

type t = {
  name : string;
  suite : string;
  lines : int;
  routines : int;
  pairs_tested : int;
  pairs_independent : int;
  dims_hist : int array;
  separable : int;
  coupled : int;
  coupled_pairs : int;
  nonlinear : int;
  classes : class_counts;
  counters : Counters.t;
  metrics : Dt_obs.Metrics.t;
}

let zero_classes =
  {
    ziv = 0;
    strong_siv = 0;
    weak_zero = 0;
    weak_crossing = 0;
    general_siv = 0;
    rdiv = 0;
    miv = 0;
  }

let add_class acc (c : Classify.t) =
  match c with
  | Classify.Ziv -> { acc with ziv = acc.ziv + 1 }
  | Classify.Siv { kind = Classify.Strong; _ } ->
      { acc with strong_siv = acc.strong_siv + 1 }
  | Classify.Siv { kind = Classify.Weak_zero; _ } ->
      { acc with weak_zero = acc.weak_zero + 1 }
  | Classify.Siv { kind = Classify.Weak_crossing; _ } ->
      { acc with weak_crossing = acc.weak_crossing + 1 }
  | Classify.Siv { kind = Classify.General; _ } ->
      { acc with general_siv = acc.general_siv + 1 }
  | Classify.Rdiv _ -> { acc with rdiv = acc.rdiv + 1 }
  | Classify.Miv _ -> { acc with miv = acc.miv + 1 }

let of_program ~suite ~name prog =
  let metrics = Dt_obs.Metrics.create () in
  (* sequential, cache off: the profile's per-kind wall-clock columns
     must reflect real executions of every test (paper §6) *)
  let r =
    Analyze.run (Analyze.Config.make ~jobs:1 ~cache:false ~metrics ()) prog
  in
  (* only subscripted (rank > 0) reference pairs enter the study, as in
     the paper *)
  let array_pairs =
    List.filter (fun p -> p.Analyze.meta.Pair_test.dims > 0) r.Analyze.pairs
  in
  let dims_hist = Array.make 3 0 in
  List.iter
    (fun p ->
      let d = min 3 p.Analyze.meta.Pair_test.dims in
      dims_hist.(d - 1) <- dims_hist.(d - 1) + 1)
    array_pairs;
  let classes =
    List.fold_left
      (fun acc p -> List.fold_left add_class acc p.Analyze.meta.Pair_test.classes)
      zero_classes array_pairs
  in
  {
    name;
    suite;
    lines = prog.Dt_ir.Nest.source_lines;
    routines = 1;
    pairs_tested = List.length array_pairs;
    pairs_independent =
      List.length (List.filter (fun p -> p.Analyze.independent) array_pairs);
    dims_hist;
    separable =
      Dt_support.Listx.sum_by
        (fun p -> p.Analyze.meta.Pair_test.separable)
        array_pairs;
    coupled =
      Dt_support.Listx.sum_by
        (fun p -> p.Analyze.meta.Pair_test.coupled_positions)
        array_pairs;
    coupled_pairs =
      List.length
        (List.filter
           (fun p -> p.Analyze.meta.Pair_test.coupled_groups > 0)
           array_pairs);
    nonlinear =
      Dt_support.Listx.sum_by
        (fun p -> p.Analyze.meta.Pair_test.nonlinear)
        array_pairs;
    classes;
    counters = r.Analyze.counters;
    metrics;
  }

let rec measure ~suite (e : Dt_workloads.Corpus.entry) =
  match Dt_workloads.Corpus.programs e with
  | [ p ] -> of_program ~suite ~name:e.Dt_workloads.Corpus.name p
  | routines ->
      aggregate ~name:e.Dt_workloads.Corpus.name ~suite
        (List.map
           (fun p -> of_program ~suite ~name:p.Dt_ir.Nest.name p)
           routines)

and aggregate ~name ~suite profiles =


  let counters = Counters.create () in
  List.iter (fun p -> Counters.merge_into counters p.counters) profiles;
  let metrics = Dt_obs.Metrics.create () in
  List.iter (fun p -> Dt_obs.Metrics.merge_into metrics p.metrics) profiles;
  let sum f = Dt_support.Listx.sum_by f profiles in
  let dims_hist = Array.make 3 0 in
  List.iter
    (fun p -> Array.iteri (fun i v -> dims_hist.(i) <- dims_hist.(i) + v) p.dims_hist)
    profiles;
  let classes =
    List.fold_left
      (fun acc p ->
        {
          ziv = acc.ziv + p.classes.ziv;
          strong_siv = acc.strong_siv + p.classes.strong_siv;
          weak_zero = acc.weak_zero + p.classes.weak_zero;
          weak_crossing = acc.weak_crossing + p.classes.weak_crossing;
          general_siv = acc.general_siv + p.classes.general_siv;
          rdiv = acc.rdiv + p.classes.rdiv;
          miv = acc.miv + p.classes.miv;
        })
      zero_classes profiles
  in
  {
    name;
    suite;
    lines = sum (fun p -> p.lines);
    routines = sum (fun p -> p.routines);
    pairs_tested = sum (fun p -> p.pairs_tested);
    pairs_independent = sum (fun p -> p.pairs_independent);
    dims_hist;
    separable = sum (fun p -> p.separable);
    coupled = sum (fun p -> p.coupled);
    coupled_pairs = sum (fun p -> p.coupled_pairs);
    nonlinear = sum (fun p -> p.nonlinear);
    classes;
    counters;
    metrics;
  }

let total_positions t = t.separable + t.coupled + t.nonlinear

let class_total c =
  c.ziv + c.strong_siv + c.weak_zero + c.weak_crossing + c.general_siv + c.rdiv
  + c.miv
