open Dt_ir
open Deptest

type row = {
  label : string;
  coupled_pairs : int;
  indep_baseline : int;
  indep_delta : int;
  indep_power : int;
  vecs_baseline : int;
  vecs_delta : int;
  vecs_power : int;
}

let zero label =
  {
    label;
    coupled_pairs = 0;
    indep_baseline = 0;
    indep_delta = 0;
    indep_power = 0;
    vecs_baseline = 0;
    vecs_delta = 0;
    vecs_power = 0;
  }

let concrete_count = function
  | `Independent -> 0
  | `Dependent info ->
      Dt_support.Listx.sum_by
        (fun v -> List.length (Dirvec.expand v))
        info.Pair_test.dirvecs

let of_program ~label prog =
  let accesses =
    List.concat_map
      (fun (s, loops) -> List.map (fun a -> (a, loops)) (Stmt.accesses s))
      (Nest.stmts_with_loops prog)
  in
  let accesses = Array.of_list accesses in
  let n = Array.length accesses in
  let acc = ref (zero label) in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let (a1 : Stmt.access), loops1 = accesses.(i)
      and (a2 : Stmt.access), loops2 = accesses.(j) in
      if
        a1.Stmt.aref.Aref.base = a2.Stmt.aref.Aref.base
        && (a1.Stmt.kind = `Write || a2.Stmt.kind = `Write)
        && Aref.rank a1.Stmt.aref > 0
      then begin
        let delta =
          Pair_test.test ~strategy:Pair_test.Partition_based
            ~src:(a1.Stmt.aref, loops1) ~snk:(a2.Stmt.aref, loops2) ()
        in
        if delta.Pair_test.meta.Pair_test.coupled_groups > 0 then begin
          let baseline =
            Pair_test.test ~strategy:Pair_test.Subscript_by_subscript
              ~src:(a1.Stmt.aref, loops1) ~snk:(a2.Stmt.aref, loops2) ()
          in
          let power =
            Dt_exact.Power.vectors ~src:(a1.Stmt.aref, loops1)
              ~snk:(a2.Stmt.aref, loops2) ()
          in
          let b = !acc in
          acc :=
            {
              b with
              coupled_pairs = b.coupled_pairs + 1;
              indep_baseline =
                (b.indep_baseline
                + if baseline.Pair_test.result = `Independent then 1 else 0);
              indep_delta =
                (b.indep_delta
                + if delta.Pair_test.result = `Independent then 1 else 0);
              indep_power =
                (b.indep_power + if power = `Independent then 1 else 0);
              vecs_baseline = b.vecs_baseline + concrete_count baseline.Pair_test.result;
              vecs_delta = b.vecs_delta + concrete_count delta.Pair_test.result;
              vecs_power =
                (b.vecs_power
                + match power with
                  | `Independent -> 0
                  | `Vectors vs -> List.length vs);
            }
        end
      end
    done
  done;
  !acc

let add a b =
  {
    label = a.label;
    coupled_pairs = a.coupled_pairs + b.coupled_pairs;
    indep_baseline = a.indep_baseline + b.indep_baseline;
    indep_delta = a.indep_delta + b.indep_delta;
    indep_power = a.indep_power + b.indep_power;
    vecs_baseline = a.vecs_baseline + b.vecs_baseline;
    vecs_delta = a.vecs_delta + b.vecs_delta;
    vecs_power = a.vecs_power + b.vecs_power;
  }

let of_entries ~label entries =
  List.fold_left
    (fun acc e ->
      List.fold_left
        (fun acc p -> add acc (of_program ~label p))
        acc
        (Dt_workloads.Corpus.programs e))
    (zero label) entries

let pp ppf r =
  Format.fprintf ppf
    "%s: %d coupled pairs; indep baseline/delta/power = %d/%d/%d; vectors = %d/%d/%d"
    r.label r.coupled_pairs r.indep_baseline r.indep_delta r.indep_power
    r.vecs_baseline r.vecs_delta r.vecs_power
