open Dt_support

let default_suites =
  List.filter (fun s -> s <> "paper") Dt_workloads.Corpus.suites

let profiles ~suites =
  List.map
    (fun suite ->
      ( suite,
        List.map
          (fun e -> Profile.measure ~suite e)
          (Dt_workloads.Corpus.by_suite suite) ))
    suites

let with_suites suites = Option.value suites ~default:default_suites

let table1 ?suites () =
  let suites = with_suites suites in
  let rows =
    List.concat_map
      (fun (suite, profs) ->
        List.map
          (fun (p : Profile.t) ->
            [
              suite;
              p.Profile.name;
              string_of_int p.Profile.lines;
              string_of_int p.Profile.routines;
              string_of_int p.Profile.pairs_tested;
              string_of_int p.Profile.dims_hist.(0);
              string_of_int p.Profile.dims_hist.(1);
              string_of_int p.Profile.dims_hist.(2);
              string_of_int p.Profile.separable;
              string_of_int p.Profile.coupled;
              string_of_int p.Profile.nonlinear;
            ])
          profs
        @ [
            (let agg = Profile.aggregate ~name:"TOTAL" ~suite profs in
             [
               suite;
               "TOTAL";
               string_of_int agg.Profile.lines;
               string_of_int agg.Profile.routines;
               string_of_int agg.Profile.pairs_tested;
               string_of_int agg.Profile.dims_hist.(0);
               string_of_int agg.Profile.dims_hist.(1);
               string_of_int agg.Profile.dims_hist.(2);
               string_of_int agg.Profile.separable;
               string_of_int agg.Profile.coupled;
               string_of_int agg.Profile.nonlinear;
             ]);
            [ "--" ];
          ])
      (profiles ~suites)
  in
  Tablefmt.render
    ~title:
      "Table 1: Complexity of array subscripts (reference pairs tested per program)"
    ~columns:
      [
        ("suite", Tablefmt.L);
        ("program", Tablefmt.L);
        ("lines", Tablefmt.R);
        ("routines", Tablefmt.R);
        ("pairs", Tablefmt.R);
        ("1-dim", Tablefmt.R);
        ("2-dim", Tablefmt.R);
        ("3+dim", Tablefmt.R);
        ("separable", Tablefmt.R);
        ("coupled", Tablefmt.R);
        ("nonlinear", Tablefmt.R);
      ]
    ~rows ()

let table2 ?suites () =
  let suites = with_suites suites in
  let rows =
    List.map
      (fun (suite, profs) ->
        let a = Profile.aggregate ~name:suite ~suite profs in
        let c = a.Profile.classes in
        let total = max 1 (Profile.class_total c) in
        let pct n = Tablefmt.percent ~num:n ~den:total in
        [
          suite;
          string_of_int (Profile.class_total c);
          pct c.Profile.ziv;
          pct c.Profile.strong_siv;
          pct c.Profile.weak_zero;
          pct c.Profile.weak_crossing;
          pct c.Profile.general_siv;
          pct c.Profile.rdiv;
          pct c.Profile.miv;
        ])
      (profiles ~suites)
  in
  Tablefmt.render
    ~title:
      "Table 2: Distribution of subscript classes among linear subscript positions"
    ~columns:
      [
        ("suite", Tablefmt.L);
        ("positions", Tablefmt.R);
        ("ZIV", Tablefmt.R);
        ("strongSIV", Tablefmt.R);
        ("weak0", Tablefmt.R);
        ("weakX", Tablefmt.R);
        ("exactSIV", Tablefmt.R);
        ("RDIV", Tablefmt.R);
        ("MIV", Tablefmt.R);
      ]
    ~rows ()

let table3 ?suites () =
  let suites = with_suites suites in
  let profs = profiles ~suites in
  let rows =
    List.map
      (fun kind ->
        let cells =
          List.concat_map
            (fun (suite, ps) ->
              let a = Profile.aggregate ~name:suite ~suite ps in
              ignore suite;
              [
                string_of_int (Deptest.Counters.applied a.Profile.counters kind);
                string_of_int
                  (Deptest.Counters.proved_indep a.Profile.counters kind);
              ])
            profs
        in
        Deptest.Counters.kind_name kind :: cells)
      Deptest.Counters.all_kinds
  in
  let columns =
    ("test", Tablefmt.L)
    :: List.concat_map
         (fun (suite, _) ->
           [ (suite ^ " app", Tablefmt.R); ("indep", Tablefmt.R) ])
         profs
  in
  Tablefmt.render
    ~title:
      "Table 3: Dependence tests applied (app) and independence proven (indep)"
    ~columns ~rows ()

let table4 ?suites () =
  let suites = with_suites suites in
  let rows =
    List.map
      (fun suite ->
        let r =
          Compare.of_entries ~label:suite (Dt_workloads.Corpus.by_suite suite)
        in
        [
          suite;
          string_of_int r.Compare.coupled_pairs;
          string_of_int r.Compare.indep_baseline;
          string_of_int r.Compare.indep_delta;
          string_of_int r.Compare.indep_power;
          string_of_int r.Compare.vecs_baseline;
          string_of_int r.Compare.vecs_delta;
          string_of_int r.Compare.vecs_power;
        ])
      suites
  in
  Tablefmt.render
    ~title:
      "Table 4: Coupled subscripts - independence and direction vectors by strategy\n(baseline = subscript-by-subscript Banerjee-GCD, delta = this paper, power = exact)"
    ~columns:
      [
        ("suite", Tablefmt.L);
        ("coupled prs", Tablefmt.R);
        ("ind base", Tablefmt.R);
        ("ind delta", Tablefmt.R);
        ("ind power", Tablefmt.R);
        ("vec base", Tablefmt.R);
        ("vec delta", Tablefmt.R);
        ("vec power", Tablefmt.R);
      ]
    ~rows ()

let all ?suites () =
  String.concat "\n"
    [ table1 ?suites (); table2 ?suites (); table3 ?suites (); table4 ?suites () ]
