(** Render the paper's evaluation tables over the corpus.

    - Table 1: complexity of array subscripts per program — lines,
      routines, dimension histogram of tested reference pairs, and
      separable / coupled / nonlinear subscript-position counts.
    - Table 2: distribution of subscript classes among linear positions
      (ZIV, strong SIV, weak-zero, weak-crossing, general SIV, RDIV, MIV).
    - Table 3: number of times each dependence test was applied and how
      often it proved independence, per suite.
    - Table 4: coupled-subscript precision — subscript-by-subscript
      baseline vs Delta vs Power test. *)

val table1 : ?suites:string list -> unit -> string
val table2 : ?suites:string list -> unit -> string
val table3 : ?suites:string list -> unit -> string
val table4 : ?suites:string list -> unit -> string
val all : ?suites:string list -> unit -> string

val profiles : suites:string list -> (string * Profile.t list) list
(** Per-suite per-program profiles (memoized per call). *)
