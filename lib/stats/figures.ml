let fig2_weak_siv ~a1 ~a2 ~c ~lo ~hi =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "Figure 2: dependence equation %d*i = %d*i' + %d over [%d,%d]^2\n"
       a1 a2 c lo hi);
  Buffer.add_string buf "(columns: i = source iteration; rows: i' = sink iteration; o = integer solution)\n";
  for row = hi downto lo do
    Buffer.add_string buf (Printf.sprintf "%3d |" row);
    for col = lo to hi do
      (* on the line: a1*col - a2*row = c *)
      let v = (a1 * col) - (a2 * row) - c in
      if v = 0 then Buffer.add_string buf " o"
      else begin
        (* does the real line cross this cell? check sign change against
           neighbours *)
        let v_left = (a1 * (col - 1)) - (a2 * row) - c in
        let v_down = (a1 * col) - (a2 * (row - 1)) - c in
        if (v > 0 && (v_left < 0 || v_down < 0)) || (v < 0 && (v_left > 0 || v_down > 0))
        then Buffer.add_string buf " ."
        else Buffer.add_string buf "  "
      end
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf "    +";
  for _ = lo to hi do
    Buffer.add_string buf "--"
  done;
  Buffer.add_char buf '\n';
  Buffer.add_string buf "     ";
  for col = lo to hi do
    Buffer.add_string buf (Printf.sprintf "%2d" (col mod 100))
  done;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let class_histogram (c : Profile.class_counts) =
  let entries =
    [
      ("ZIV", c.Profile.ziv);
      ("strong SIV", c.Profile.strong_siv);
      ("weak-zero SIV", c.Profile.weak_zero);
      ("weak-crossing SIV", c.Profile.weak_crossing);
      ("general SIV", c.Profile.general_siv);
      ("RDIV", c.Profile.rdiv);
      ("MIV", c.Profile.miv);
    ]
  in
  let total = max 1 (Profile.class_total c) in
  let width = 50 in
  let buf = Buffer.create 256 in
  List.iter
    (fun (label, n) ->
      let bar = n * width / total in
      Buffer.add_string buf
        (Printf.sprintf "%-18s %5d |%s\n" label n (String.make bar '#')))
    entries;
  Buffer.contents buf
