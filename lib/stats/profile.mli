(** Per-program measurements for the empirical study (paper §6).

    Running the analyzer over a program yields the quantities the paper's
    Table 1 (subscript complexity), Table 2 (subscript classification) and
    Table 3 (tests applied / independence proven) report, plus
    independence totals for the strategy comparisons. *)

open Deptest

type class_counts = {
  ziv : int;
  strong_siv : int;
  weak_zero : int;
  weak_crossing : int;
  general_siv : int;
  rdiv : int;
  miv : int;
}

type t = {
  name : string;
  suite : string;
  lines : int;
  routines : int;
  pairs_tested : int;  (** array reference pairs (rank > 0) *)
  pairs_independent : int;
  dims_hist : int array;  (** index d = pairs with d+1 dimensions; length 3, last bucket is 3+ *)
  separable : int;  (** separable subscript positions *)
  coupled : int;  (** positions inside coupled groups *)
  coupled_pairs : int;  (** reference pairs containing a coupled group *)
  nonlinear : int;  (** nonlinear subscript positions *)
  classes : class_counts;
  counters : Counters.t;
  metrics : Dt_obs.Metrics.t;
      (** per-test-kind wall-clock timings and per-pair latency for the
          same run that produced [counters] *)
}

val measure : suite:string -> Dt_workloads.Corpus.entry -> t
val of_program : suite:string -> name:string -> Dt_ir.Nest.program -> t

val aggregate : name:string -> suite:string -> t list -> t
(** Column-wise sum (lines and routines added; counters merged). *)

val total_positions : t -> int
val class_total : class_counts -> int
