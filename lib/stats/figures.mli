(** ASCII renderings of the paper's figures.

    Figure 2 is the geometric view of the weak SIV test: the dependence
    equation [a1*i = a2*i' + c] describes a line in the (i, i') plane;
    a dependence exists iff the line meets an integer point inside the
    square spanned by the loop bounds. *)

val fig2_weak_siv :
  a1:int -> a2:int -> c:int -> lo:int -> hi:int -> string
(** Plot the line [a1*i - a2*i' = c] over [lo..hi]^2; integer solutions
    are 'o', the real line's passage '.', axes labelled with i (columns,
    source iteration) and i' (rows, sink iteration). *)

val class_histogram : Profile.class_counts -> string
(** Horizontal bar chart of the subscript-class distribution — the visual
    companion to Table 2. *)
