(** Exact rational arithmetic over native ints.

    Used by the exact SIV test, constraint intersection (2x2 rational
    solves), Banerjee bound evaluation, and Fourier-Motzkin elimination.
    Values are kept normalized: positive denominator, gcd(num, den) = 1. *)

type t = private { num : int; den : int }

val make : int -> int -> t
(** [make num den] normalizes; raises [Division_by_zero] if [den = 0]. *)

val of_int : int -> t

val zero : t
val one : t
val minus_one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Raises [Division_by_zero] on a zero divisor. *)

val neg : t -> t
val abs : t -> t
val inv : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val sign : t -> int

val is_int : t -> bool
(** True iff the value is an integer. *)

val is_half_int : t -> bool
(** True iff twice the value is an integer (denominator 1 or 2) — the
    weak-crossing SIV test accepts crossing points on half-iterations. *)

val to_int_exn : t -> int
(** Raises [Invalid_argument] if not an integer. *)

val floor : t -> int
val ceil : t -> int

val to_float : t -> float
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
