type bound = Neg_inf | Fin of int | Pos_inf
type t = { lo : bound; hi : bound }

let make lo hi = { lo; hi }
let of_ints a b = { lo = Fin a; hi = Fin b }
let full = { lo = Neg_inf; hi = Pos_inf }
let singleton n = of_ints n n
let empty = of_ints 1 0
let lo t = t.lo
let hi t = t.hi

let bound_le a b =
  match (a, b) with
  | Neg_inf, _ | _, Pos_inf -> true
  | Pos_inf, _ | _, Neg_inf -> false
  | Fin x, Fin y -> x <= y

let bound_min a b = if bound_le a b then a else b
let bound_max a b = if bound_le a b then b else a

let is_empty t =
  match (t.lo, t.hi) with
  | Pos_inf, _ | _, Neg_inf -> true
  | _ -> not (bound_le t.lo t.hi)

let contains t n = bound_le t.lo (Fin n) && bound_le (Fin n) t.hi

let contains_ratio t r =
  (match t.lo with
  | Neg_inf -> true
  | Pos_inf -> false
  | Fin l -> Ratio.(of_int l <= r))
  &&
  match t.hi with
  | Pos_inf -> true
  | Neg_inf -> false
  | Fin h -> Ratio.(r <= of_int h)

let inter a b = { lo = bound_max a.lo b.lo; hi = bound_min a.hi b.hi }

let hull a b =
  if is_empty a then b
  else if is_empty b then a
  else { lo = bound_min a.lo b.lo; hi = bound_max a.hi b.hi }

(* Bound sums are positional: the indeterminate oo + -oo (and a native
   overflow of two finite endpoints) widens toward the conservative side
   of the position it sits in — -oo for a lower bound, +oo for an upper
   bound — so triangular-range arithmetic degrades instead of crashing
   the driver. *)
let bound_add_lo a b =
  match (a, b) with
  | Neg_inf, _ | _, Neg_inf -> Neg_inf
  | Pos_inf, _ | _, Pos_inf -> Pos_inf
  | Fin x, Fin y -> (
      match Dt_guard.Ops.add x y with
      | s -> Fin s
      | exception Dt_guard.Ops.Overflow -> Neg_inf)

let bound_add_hi a b =
  match (a, b) with
  | Pos_inf, _ | _, Pos_inf -> Pos_inf
  | Neg_inf, _ | _, Neg_inf -> Neg_inf
  | Fin x, Fin y -> (
      match Dt_guard.Ops.add x y with
      | s -> Fin s
      | exception Dt_guard.Ops.Overflow -> Pos_inf)

let bound_add = bound_add_hi

let add a b =
  if is_empty a || is_empty b then empty
  else { lo = bound_add_lo a.lo b.lo; hi = bound_add_hi a.hi b.hi }

let bound_neg = function Neg_inf -> Pos_inf | Pos_inf -> Neg_inf | Fin x -> Fin (-x)
let neg t = if is_empty t then empty else { lo = bound_neg t.hi; hi = bound_neg t.lo }

let bound_scale k = function
  | Fin x -> Fin (k * x)
  | Neg_inf -> if k > 0 then Neg_inf else if k < 0 then Pos_inf else Fin 0
  | Pos_inf -> if k > 0 then Pos_inf else if k < 0 then Neg_inf else Fin 0

let scale k t =
  if is_empty t then empty
  else if k >= 0 then { lo = bound_scale k t.lo; hi = bound_scale k t.hi }
  else { lo = bound_scale k t.hi; hi = bound_scale k t.lo }

let shift d t = add t (singleton d)

let finite t =
  if is_empty t then None
  else match (t.lo, t.hi) with Fin a, Fin b -> Some (a, b) | _ -> None

let width t = match finite t with Some (a, b) -> Some (b - a) | None -> None

let pp_bound ppf = function
  | Neg_inf -> Format.pp_print_string ppf "-oo"
  | Pos_inf -> Format.pp_print_string ppf "+oo"
  | Fin n -> Format.pp_print_int ppf n

let pp ppf t =
  if is_empty t then Format.pp_print_string ppf "[]"
  else Format.fprintf ppf "[%a,%a]" pp_bound t.lo pp_bound t.hi

let equal a b =
  (is_empty a && is_empty b) || (a.lo = b.lo && a.hi = b.hi)
