(* Chase–Lev deque on sequentially consistent [Atomic]s.

   [top] only ever increases (thieves CAS it forward; [pop] CASes it on
   the last element). [bottom] is owned by one domain. The ring cells
   are themselves atomic so a thief's read of a cell either sees the
   value its CAS on [top] then validates, or the CAS fails and the read
   is discarded — a stale cell value can never be returned, because the
   owner only reuses a slot after [top] has moved past it (the ring is
   grown, never overwritten, while entries are live). *)

type 'a ring = { mask : int; cells : 'a option Atomic.t array }

let ring size = { mask = size - 1; cells = Array.init size (fun _ -> Atomic.make None) }
let cell r i = r.cells.(i land r.mask)

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : 'a ring Atomic.t;
}

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 8

let create ?(capacity = 64) () =
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (ring (round_pow2 capacity));
  }

(* owner only: called from [push] when the ring is full. Thieves keep
   reading the old ring; entries t..b-1 are copied, and the CAS on
   [top] decides every in-flight steal either way. *)
let grow q old t b =
  let nr = ring ((old.mask + 1) * 2) in
  for i = t to b - 1 do
    Atomic.set (cell nr i) (Atomic.get (cell old i))
  done;
  Atomic.set q.buf nr;
  nr

let push q v =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  let r = Atomic.get q.buf in
  let r = if b - t > r.mask then grow q r t b else r in
  Atomic.set (cell r b) (Some v);
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* already empty: undo the reservation *)
    Atomic.set q.bottom t;
    None
  end
  else
    let r = Atomic.get q.buf in
    let v = Atomic.get (cell r b) in
    if b > t then v
    else begin
      (* last element: race the thieves for it *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then v else None
    end

type 'a steal_result = Empty | Retry | Stolen of 'a

let steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if b - t <= 0 then Empty
  else
    let r = Atomic.get q.buf in
    let v = Atomic.get (cell r t) in
    if Atomic.compare_and_set q.top t (t + 1) then
      match v with Some x -> Stolen x | None -> assert false
    else Retry

let size q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if b - t < 0 then 0 else b - t
