type align = L | R

let render ?title ~columns ~rows () =
  let ncols = List.length columns in
  let pad_row r =
    let len = List.length r in
    if len >= ncols then Listx.take ncols r
    else r @ List.init (ncols - len) (fun _ -> "")
  in
  let data_rows =
    List.map (fun r -> if r = [ "--" ] then None else Some (pad_row r)) rows
  in
  let headers = List.map fst columns in
  let widths =
    List.mapi
      (fun i h ->
        let cell_w =
          List.fold_left
            (fun acc -> function
              | None -> acc
              | Some r -> max acc (String.length (List.nth r i)))
            (String.length h) data_rows
        in
        cell_w)
      headers
  in
  let aligns = List.map snd columns in
  let fmt_cell w a s =
    let pad = w - String.length s in
    let pad = max 0 pad in
    match a with
    | L -> s ^ String.make pad ' '
    | R -> String.make pad ' ' ^ s
  in
  let fmt_row cells =
    let parts =
      List.map2
        (fun (w, a) s -> fmt_cell w a s)
        (List.combine widths aligns)
        cells
    in
    String.concat "  " parts
  in
  let rule =
    String.concat "--"
      (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  Buffer.add_string buf (fmt_row headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (function
      | None ->
          Buffer.add_string buf rule;
          Buffer.add_char buf '\n'
      | Some r ->
          Buffer.add_string buf (fmt_row r);
          Buffer.add_char buf '\n')
    data_rows;
  Buffer.contents buf

let percent ~num ~den =
  if den = 0 then "-"
  else Printf.sprintf "%.1f%%" (100.0 *. float_of_int num /. float_of_int den)
