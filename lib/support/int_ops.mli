(** Integer arithmetic helpers used throughout the dependence tests.

    All operations are defined on OCaml native [int]s. The dependence
    analyzer only ever manipulates subscript coefficients and loop bounds
    drawn from source programs, so magnitudes stay far below the 63-bit
    range; we nonetheless use overflow-conscious formulations (e.g. gcd by
    Euclid on absolute values). *)

val gcd : int -> int -> int
(** [gcd a b] is the non-negative greatest common divisor. [gcd 0 0 = 0]. *)

val gcd_list : int list -> int
(** Non-negative gcd of a list; [gcd_list [] = 0]. *)

val lcm : int -> int -> int
(** Least common multiple, non-negative. [lcm x 0 = 0]. *)

val egcd : int -> int -> int * int * int
(** [egcd a b = (g, x, y)] with [g = gcd a b >= 0] and [a*x + b*y = g]. *)

val floor_div : int -> int -> int
(** Division rounding toward negative infinity. Raises [Division_by_zero]
    when the divisor is zero. *)

val ceil_div : int -> int -> int
(** Division rounding toward positive infinity. *)

val divides : int -> int -> bool
(** [divides d n] is true iff [d] divides [n]; by convention
    [divides 0 n = (n = 0)]. *)

val pos_part : int -> int
(** [pos_part a = max a 0] — Banerjee's a⁺. *)

val neg_part : int -> int
(** [neg_part a = max (-a) 0] — Banerjee's a⁻ (non-negative). *)

val sign : int -> int
(** -1, 0 or 1. *)

val clamp : lo:int -> hi:int -> int -> int
(** Clamp into [lo,hi] (requires lo <= hi). *)
