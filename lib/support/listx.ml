let cartesian lists =
  List.fold_right
    (fun choices acc ->
      List.concat_map (fun c -> List.map (fun rest -> c :: rest) acc) choices)
    lists [ [] ]

let dedup ~compare l =
  let sorted = List.sort compare l in
  let rec go = function
    | a :: (b :: _ as rest) -> if compare a b = 0 then go rest else a :: go rest
    | l -> l
  in
  go sorted

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let sum_by f l = List.fold_left (fun acc x -> acc + f x) 0 l
let max_by f l = List.fold_left (fun acc x -> max acc (f x)) 0 l

let rec transpose = function
  | [] -> []
  | [] :: _ -> []
  | rows -> List.map List.hd rows :: transpose (List.map List.tl rows)

let range a b = List.init (max 0 (b - a + 1)) (fun k -> a + k)
