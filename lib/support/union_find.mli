(** Imperative union-find with path compression and union by rank.

    Used to partition the subscripts of a multidimensional reference pair
    into minimal coupled groups (paper section 3): two subscript positions
    are joined whenever they share a loop index. *)

type t

val create : int -> t
(** [create n] makes a structure over elements [0 .. n-1], each its own set. *)

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> unit
val same : t -> int -> int -> bool

val groups : t -> int list list
(** All equivalence classes, each sorted ascending; classes ordered by their
    smallest element. *)
