let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let gcd_list l = List.fold_left gcd 0 l

let lcm a b = if a = 0 || b = 0 then 0 else abs (a / gcd a b * b)

let egcd a b =
  (* Iterative extended Euclid, maintaining r = a*x + b*y invariants. *)
  let rec go r0 x0 y0 r1 x1 y1 =
    if r1 = 0 then (r0, x0, y0)
    else
      let q = r0 / r1 in
      go r1 x1 y1 (r0 - (q * r1)) (x0 - (q * x1)) (y0 - (q * y1))
  in
  let g, x, y = go a 1 0 b 0 1 in
  if g < 0 then (-g, -x, -y) else (g, x, y)

let floor_div a b =
  if b = 0 then raise Division_by_zero
  else
    let q = a / b and r = a mod b in
    if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let ceil_div a b =
  if b = 0 then raise Division_by_zero
  else
    let q = a / b and r = a mod b in
    if r <> 0 && (r < 0) = (b < 0) then q + 1 else q

let divides d n = if d = 0 then n = 0 else n mod d = 0
let pos_part a = if a > 0 then a else 0
let neg_part a = if a < 0 then -a else 0
let sign a = compare a 0

let clamp ~lo ~hi x =
  if lo > hi then invalid_arg "Int_ops.clamp: lo > hi"
  else if x < lo then lo
  else if x > hi then hi
  else x
