(** Plain-text table rendering for the empirical-study reports.

    Renders the paper-shaped tables (Table 1-4) as aligned ASCII with a
    header rule, in the style of the original publication's layout. *)

type align = L | R

val render :
  ?title:string -> columns:(string * align) list -> rows:string list list ->
  unit -> string
(** [render ~columns ~rows ()] aligns every column to its widest cell.
    Rows shorter than the header are right-padded with empty cells. A row
    equal to [["--"]] renders as a horizontal rule. *)

val percent : num:int -> den:int -> string
(** "12.3%" with one decimal; "-" when [den = 0]. *)
