(** Small list utilities missing from the stdlib. *)

val cartesian : 'a list list -> 'a list list
(** Cartesian product of a list of choice lists; the product of an empty
    list is [[[]]]. Order: leftmost list varies slowest. *)

val dedup : compare:('a -> 'a -> int) -> 'a list -> 'a list
(** Sort and remove duplicates. *)

val take : int -> 'a list -> 'a list
val sum_by : ('a -> int) -> 'a list -> int
val max_by : ('a -> int) -> 'a list -> int
(** 0 on the empty list. *)

val transpose : 'a list list -> 'a list list
(** Transpose a rectangular list of lists. *)

val range : int -> int -> int list
(** [range a b] is [a; a+1; ...; b]; empty when [a > b]. *)
