(** A Domain-based worker pool for embarrassingly parallel index loops.

    [parallel_for] distributes the indices [0 .. n-1] over a fixed set of
    worker domains through a chunked shared work queue (dynamic
    scheduling: a worker that finishes a chunk grabs the next one, so
    uneven per-index cost balances out). Each worker owns a private state
    value created by [state]; the states are returned in worker-id order
    so the caller can merge per-worker accumulators deterministically.

    Determinism contract: which worker processes which index is
    scheduling-dependent, but every index is processed exactly once, and
    writes to disjoint result slots made inside [body] are visible to the
    caller after [parallel_for] returns (the domain joins establish the
    happens-before edge). Any result that depends only on the index —
    never on the executing worker — is therefore identical to a
    sequential run. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

type probe = {
  worker_start : int -> unit;  (** worker [w] begins its loop *)
  worker_stop : int -> unit;  (** worker [w] finished (normal exit) *)
  wait_start : int -> unit;  (** worker [w] is about to poll the queue *)
  wait_stop : int -> unit;  (** worker [w] obtained a chunk (or the end) *)
  task_start : int -> unit;  (** worker [w] begins executing a chunk *)
  task_stop : int -> unit;  (** worker [w] finished the chunk *)
}
(** Per-worker accounting brackets, called from the worker's own domain
    — an implementation must only touch per-worker state (the engine
    hands each worker its own metrics registry and span buffer). On the
    sequential path the whole loop is bracketed as one task on worker 0
    with no queue waits; on an exception the failing worker's open
    brackets are simply never closed. *)

val parallel_for :
  ?jobs:int ->
  ?chunk:int ->
  ?probe:probe ->
  ?on_error:('w -> int -> exn -> unit) ->
  n:int ->
  state:(int -> 'w) ->
  body:('w -> int -> unit) ->
  unit ->
  'w list
(** [parallel_for ~jobs ~n ~state ~body ()] calls [body st i] exactly once
    for every [i] in [0 .. n-1] and returns the per-worker states in
    worker-id order.

    [jobs] is the number of workers; [0] (the default) means
    {!recommended_jobs}. With [jobs <= 1] (or [n <= 1]) everything runs in
    the calling domain in index order — the sequential reference path.
    Otherwise [min jobs n] domains run (the calling domain is one of
    them), each pulling chunks of [chunk] consecutive indices (default:
    a size that yields roughly 8 chunks per worker, clamped to [1, 64]).

    [on_error] is the per-task containment policy: when given, a [body]
    call that raises is caught at its own index — [on_error st i e] runs
    on the same worker (so it may record into the worker state and fill
    the index's result slot) and the loop continues with the next index;
    one faulty task no longer aborts the run. This applies on the
    sequential path too.

    Without [on_error] (or when the handler itself raises — strict
    mode), the legacy policy applies: all remaining work is drained, the
    workers are joined, and the first exception (by worker id) is
    re-raised with its backtrace. A raising [state] call is always
    fatal. *)
