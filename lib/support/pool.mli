(** A Domain-based work-stealing pool for embarrassingly parallel index
    loops.

    A {!t} is a configuration handle: worker count, splitting grain and
    {!hooks} fixed once at {!create}, plus one Chase–Lev deque per
    worker ({!Deque}) that is reused across {!run} calls. Work is
    distributed by {e lazy binary splitting}: [run ~n] seeds each
    worker's deque with one contiguous index range; a worker pops its
    own deque LIFO and, while the range in hand is larger than the
    grain, pushes the upper half back (making it stealable) and
    continues on the lower half. An idle worker steals FIFO from a
    victim's top — always the largest outstanding range there, so one
    steal transfers roughly half the victim's remaining work — and
    backs off with exponential [Domain.cpu_relax] spins while all work
    is in flight elsewhere.

    Determinism contract (unchanged from the chunked predecessor): which
    worker processes which index is scheduling-dependent, but every
    index in [0 .. n-1] is processed exactly once, and writes to
    disjoint result slots made inside [body] are visible to the caller
    after {!run} returns (the domain joins establish the happens-before
    edge). Any result that depends only on the index — never on the
    executing worker — is therefore identical to a sequential run.

    Worker domains are spawned per {!run} and joined before it returns;
    the handle owns no threads between runs and must not be shared by
    two concurrent runs. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val clamp_auto : int -> int
(** Resolve a jobs request against the machine: [0] (auto) and anything
    above {!recommended_jobs} clamp to {!recommended_jobs}; an explicit
    [1 <= jobs <= recommended] is kept. Oversubscribing domains is never
    profitable — on a 1-core box [--jobs 2] measured 2.4x slower than
    [--jobs 1] — so auto selection must never exceed the core count. *)

type probe = {
  worker_start : int -> unit;  (** worker [w] begins its loop *)
  worker_stop : int -> unit;  (** worker [w] finished (normal exit) *)
  wait_start : int -> unit;  (** worker [w] starts acquiring work *)
  wait_stop : int -> unit;  (** worker [w] obtained a range (or the end) *)
  task_start : int -> unit;  (** worker [w] begins a grain-sized leaf *)
  task_stop : int -> unit;  (** worker [w] finished the leaf *)
  steal : thief:int -> victim:int -> unit;
      (** worker [thief] took a range from worker [victim]'s deque;
          called on the thief's domain *)
}
(** Per-worker accounting brackets, called from the worker's own domain
    — an implementation must only touch per-worker state (the engine
    hands each worker its own metrics registry and span buffer). The
    wait bracket covers the whole acquisition (own pop, steal attempts
    and backoff). On the sequential path the whole loop is bracketed as
    one task on worker 0 with no queue waits; on an exception the
    failing worker's open brackets are simply never closed. *)

val no_probe : probe
(** All callbacks no-ops. *)

type 'w hooks = {
  probe : probe;
  on_error : ('w -> int -> exn -> unit) option;
      (** per-task containment policy: when given, a [body] call that
          raises is caught at its own index — [on_error st i e] runs on
          the same worker (so it may record into the worker state and
          fill the index's result slot) and the loop continues; one
          faulty task no longer aborts the run. Applies on the
          sequential path too. Without it (or when the handler itself
          raises — strict mode) all outstanding work is abandoned, the
          workers are joined, and the first exception by worker id is
          re-raised with its backtrace. *)
}
(** The pool's one extension point: instrumentation and containment
    bundled in a single record, replacing the former loose [?probe] /
    [?on_error] arguments. *)

val hooks :
  ?probe:probe -> ?on_error:('w -> int -> exn -> unit) -> unit -> 'w hooks
(** Build a {!hooks} value; defaults: {!no_probe}, no handler. *)

val default_hooks : 'w hooks
(** [hooks ()]. *)

type 'w t
(** A pool handle; ['w] is the per-worker state type the hooks'
    [on_error] may touch. *)

val create : ?jobs:int -> ?grain:int -> ?hooks:'w hooks -> unit -> 'w t
(** [jobs] is the worker count; [0] (the default) means
    {!recommended_jobs}. [grain] is the leaf size of the lazy binary
    split — ranges at most this long are executed without further
    splitting; [0] (the default) picks [clamp (n / (workers * 8)) 1 64]
    per run, the grain the chunked scheduler used. *)

val jobs : _ t -> int
(** The resolved worker count (never 0). *)

val run : 'w t -> n:int -> state:(int -> 'w) -> body:('w -> int -> unit) -> 'w list
(** [run pool ~n ~state ~body] calls [body st i] exactly once for every
    [i] in [0 .. n-1] and returns the per-worker states in worker-id
    order. Each worker owns a private state value created by [state].

    With [jobs <= 1] (or [n <= 1]) everything runs in the calling
    domain in index order — the sequential reference path. Otherwise
    [min jobs n] domains run, the calling domain being worker 0.
    A raising [state] call is always fatal. *)

val parallel_for :
  ?jobs:int ->
  ?chunk:int ->
  ?probe:probe ->
  ?on_error:('w -> int -> exn -> unit) ->
  n:int ->
  state:(int -> 'w) ->
  body:('w -> int -> unit) ->
  unit ->
  'w list
[@@ocaml.deprecated "use Pool.create and Pool.run with Pool.hooks"]
(** Compatibility wrapper over {!create} + {!run} ([chunk] maps to
    [grain]). One release only. *)
