(** A Chase–Lev work-stealing deque (Chase & Lev, SPAA 2005, with the
    C11-port corrections of Lê et al., PPoPP 2013), on OCaml's
    sequentially consistent [Atomic] cells.

    Exactly one domain — the {e owner} — may call {!push} and {!pop};
    any number of other domains may call {!steal} concurrently. The
    owner works LIFO off the bottom (locality: the most recently split
    range is the one whose pages are hot); thieves take FIFO from the
    top, which in the pool's lazy-binary-splitting regime is always the
    largest outstanding range — stealing it transfers roughly half the
    victim's remaining work in one CAS.

    Every value pushed is returned by exactly one [pop] or [steal]
    (linearizable); none is lost or duplicated. The circular buffer
    grows geometrically and is never shrunk, so a deque handle is cheap
    to keep in a pool across runs. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** An empty deque. [capacity] (default 64, rounded up to a power of
    two) sizes the initial ring; pushing past it grows the ring without
    blocking thieves. *)

val push : 'a t -> 'a -> unit
(** Owner only: add [v] at the bottom. *)

val pop : 'a t -> 'a option
(** Owner only: remove and return the bottom element, [None] when
    empty. When one element remains, the owner races thieves for it
    with a CAS and loses gracefully. *)

type 'a steal_result =
  | Empty  (** nothing to take (possibly momentarily) *)
  | Retry  (** lost a CAS race with the owner or another thief *)
  | Stolen of 'a

val steal : 'a t -> 'a steal_result
(** Thief side: remove and return the top element. [Retry] means the
    deque was non-empty but another party took the element first — the
    caller should try again (possibly on another victim) rather than
    conclude emptiness. *)

val size : 'a t -> int
(** Racy snapshot of the element count (never negative). Only a hint —
    for probes and tests, not for synchronization. *)
