(** Length-prefixed message framing over Unix file descriptors.

    The serve protocol's wire unit: a 4-byte big-endian payload length
    followed by the payload bytes. Reads and writes retry on [EINTR] and
    loop over short transfers, so a frame either transfers whole or the
    call reports a broken peer. *)

val max_frame : int
(** Default payload cap (16 MiB): a length prefix beyond it is treated
    as a protocol error rather than an allocation request. *)

val write : Unix.file_descr -> string -> unit
(** Send one frame. Raises [Unix.Unix_error] on a broken peer and
    [Invalid_argument] on a payload over {!max_frame}. *)

val write_truncated : Unix.file_descr -> string -> unit
(** Chaos-harness helper: send a header promising the whole payload but
    only half the payload bytes, so the peer — once this end closes —
    observes a mid-frame end-of-stream. Exercises the receiver's
    [Truncated] containment path deterministically. *)

type error =
  | Truncated  (** end-of-stream inside a header or payload *)
  | Oversize of int
      (** the length prefix (payload bytes promised) exceeded the cap *)
  | Timeout  (** the receive deadline passed mid-frame (see {!read_r}) *)

val error_message : error -> string
(** Human-readable description, suitable for a protocol error reply. *)

val read_r :
  ?max:int -> ?deadline_ns:int64 -> Unix.file_descr -> (string option, error) result
(** Receive one frame. [Ok None] on clean end-of-stream at a frame
    boundary; [Error] on a truncated frame (peer died mid-message) or a
    length prefix over [max] (default {!max_frame}). [deadline_ns] is an
    absolute monotonic deadline (same clock as [Monotonic_clock.now]):
    each blocking read first waits in [select] for readability, and
    [Error Timeout] is returned once the deadline passes — the resilient
    client's per-attempt receive timeout. After any [Error] the stream
    position is unusable — the connection must be closed, and on
    [Oversize] the oversized payload has {e not} been drained (a
    malicious prefix need not be backed by real bytes, so draining could
    block forever). *)

val read : ?max:int -> Unix.file_descr -> string option
(** {!read_r} with errors raised as [Failure] — for callers (tests,
    one-shot tools) where a bad peer is fatal anyway. *)
