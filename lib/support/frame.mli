(** Length-prefixed message framing over Unix file descriptors.

    The serve protocol's wire unit: a 4-byte big-endian payload length
    followed by the payload bytes. Reads and writes retry on [EINTR] and
    loop over short transfers, so a frame either transfers whole or the
    call reports a broken peer. *)

val max_frame : int
(** Default payload cap (16 MiB): a length prefix beyond it is treated
    as a protocol error rather than an allocation request. *)

val write : Unix.file_descr -> string -> unit
(** Send one frame. Raises [Unix.Unix_error] on a broken peer and
    [Invalid_argument] on a payload over {!max_frame}. *)

val read : ?max:int -> Unix.file_descr -> string option
(** Receive one frame. [None] on clean end-of-stream at a frame
    boundary; raises [Failure] on a truncated frame (peer died
    mid-message) or a length prefix over [max] (default {!max_frame}). *)
