let max_frame = 16 * 1024 * 1024

exception Timed_out

let rec write_all fd bytes off len =
  if len > 0 then begin
    let n =
      try Unix.write fd bytes off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd bytes (off + n) (len - n)
  end

(* block until [fd] is readable or the absolute monotonic deadline
   passes; EINTR just shortens the wait and retries *)
let rec wait_readable fd deadline_ns =
  let remaining_ns = Int64.sub deadline_ns (Monotonic_clock.now ()) in
  if Int64.compare remaining_ns 0L <= 0 then raise Timed_out
  else
    let timeout = Int64.to_float remaining_ns /. 1e9 in
    match Unix.select [ fd ] [] [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        wait_readable fd deadline_ns
    | [], _, _ -> raise Timed_out
    | _ -> ()

(* returns bytes read, < len only at end-of-stream *)
let rec read_all ?deadline_ns fd bytes off len =
  if len = 0 then off
  else begin
    Option.iter (wait_readable fd) deadline_ns;
    let n =
      try Unix.read fd bytes off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> -1
    in
    if n = 0 then off
    else if n < 0 then read_all ?deadline_ns fd bytes off len
    else read_all ?deadline_ns fd bytes (off + n) (len - n)
  end

let write fd payload =
  let len = String.length payload in
  if len > max_frame then
    invalid_arg (Printf.sprintf "Frame.write: payload %d > max %d" len max_frame);
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit_string payload 0 buf 4 len;
  write_all fd buf 0 (4 + len)

let write_truncated fd payload =
  let len = String.length payload in
  if len > max_frame then
    invalid_arg
      (Printf.sprintf "Frame.write_truncated: payload %d > max %d" len
         max_frame);
  (* promise the whole payload in the header, deliver only half: the
     peer sees end-of-stream mid-frame once the sender closes *)
  let sent = len / 2 in
  let buf = Bytes.create (4 + sent) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit_string payload 0 buf 4 sent;
  write_all fd buf 0 (4 + sent)

type error = Truncated | Oversize of int | Timeout

let error_message = function
  | Truncated -> "truncated frame: peer died mid-message"
  | Oversize len ->
      Printf.sprintf "frame length %d exceeds the %d-byte cap" len max_frame
  | Timeout -> "timed out waiting for a frame"

let read_r ?(max = max_frame) ?deadline_ns fd =
  match
    let hdr = Bytes.create 4 in
    let got = read_all ?deadline_ns fd hdr 0 4 in
    if got = 0 then Ok None
    else if got < 4 then Error Truncated
    else begin
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len < 0 || len > max then Error (Oversize len)
      else
        let payload = Bytes.create len in
        if read_all ?deadline_ns fd payload 0 len < len then Error Truncated
        else Ok (Some (Bytes.unsafe_to_string payload))
    end
  with
  | r -> r
  | exception Timed_out -> Error Timeout

let read ?max fd =
  match read_r ?max fd with
  | Ok r -> r
  | Error Truncated -> failwith "Frame.read: truncated frame"
  | Error (Oversize len) ->
      failwith (Printf.sprintf "Frame.read: length %d out of bounds" len)
  | Error Timeout -> failwith "Frame.read: timed out"
