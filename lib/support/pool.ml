let recommended_jobs () = Domain.recommended_domain_count ()

let clamp_auto jobs =
  let r = recommended_jobs () in
  if jobs <= 0 || jobs > r then r else jobs

type probe = {
  worker_start : int -> unit;
  worker_stop : int -> unit;
  wait_start : int -> unit;
  wait_stop : int -> unit;
  task_start : int -> unit;
  task_stop : int -> unit;
  steal : thief:int -> victim:int -> unit;
}

let no_probe =
  let nop _ = () in
  {
    worker_start = nop;
    worker_stop = nop;
    wait_start = nop;
    wait_stop = nop;
    task_start = nop;
    task_stop = nop;
    steal = (fun ~thief:_ ~victim:_ -> ());
  }

type 'w hooks = {
  probe : probe;
  on_error : ('w -> int -> exn -> unit) option;
}

let hooks ?(probe = no_probe) ?on_error () = { probe; on_error }
let default_hooks = { probe = no_probe; on_error = None }

(* ranges are [lo, hi) so splitting is pure index arithmetic *)
type 'w t = {
  pjobs : int;
  pgrain : int;  (* 0 = auto per run *)
  hooks : 'w hooks;
  deques : (int * int) Deque.t array;  (* one per worker, reused *)
}

let create ?(jobs = 0) ?(grain = 0) ?(hooks = default_hooks) () =
  let pjobs = if jobs <= 0 then recommended_jobs () else jobs in
  {
    pjobs;
    pgrain = (if grain < 0 then 0 else grain);
    hooks;
    deques = Array.init pjobs (fun _ -> Deque.create ());
  }

let jobs t = t.pjobs

let sequential ~probe ~run_body ~n ~state =
  let st = state 0 in
  (* the whole index loop is one task on worker 0: the engine metrics
     see the same busy-time accounting shape at every jobs setting
     (queue wait is identically zero here) *)
  probe.worker_start 0;
  probe.task_start 0;
  Fun.protect
    ~finally:(fun () ->
      probe.task_stop 0;
      probe.worker_stop 0)
    (fun () ->
      for i = 0 to n - 1 do
        run_body st i
      done);
  [ st ]

(* the leaf size the chunked scheduler effectively used: roughly eight
   leaves per worker, clamped to [1, 64] *)
let auto_grain ~workers ~n =
  let g = n / (workers * 8) in
  if g < 1 then 1 else if g > 64 then 64 else g

let run pool ~n ~state ~body =
  let probe = pool.hooks.probe in
  (* per-task containment: with a handler, a raising [body] is confined
     to its own index — the handler runs on the worker's domain and the
     loop continues. A handler that itself raises falls through to the
     strict first-exception path below. *)
  let run_body =
    match pool.hooks.on_error with
    | None -> body
    | Some handle -> fun st i -> ( try body st i with e -> handle st i e)
  in
  if n <= 0 then []
  else
    let workers = min pool.pjobs n in
    if workers <= 1 || n <= 1 then sequential ~probe ~run_body ~n ~state
    else begin
      let grain =
        if pool.pgrain >= 1 then pool.pgrain else auto_grain ~workers ~n
      in
      let deques = pool.deques in
      (* seed one contiguous range per worker: deterministic initial
         shard, refined dynamically by splitting and stealing *)
      let lo = ref 0 in
      let per = n / workers and rem = n mod workers in
      for w = 0 to workers - 1 do
        let len = per + if w < rem then 1 else 0 in
        if len > 0 then Deque.push deques.(w) (!lo, !lo + len);
        lo := !lo + len
      done;
      let remaining = Atomic.make n in
      let abort = Atomic.make false in
      (* one slot per worker: the first exception it hit, if any *)
      let failures = Array.make workers None in
      let fail w e =
        failures.(w) <- Some (e, Printexc.get_raw_backtrace ());
        Atomic.set abort true
      in
      let run_worker w =
        match state w with
        | exception e ->
            fail w e;
            None
        | st ->
            probe.worker_start w;
            (try
               let dq = deques.(w) in
               (* run one range: push upper halves back (stealable)
                  until the piece in hand fits the grain, then execute
                  that leaf *)
               let rec exec (rlo, rhi) =
                 if not (Atomic.get abort) then begin
                   let len = rhi - rlo in
                   if len > grain then begin
                     let mid = rlo + (len / 2) in
                     Deque.push dq (mid, rhi);
                     exec (rlo, mid)
                   end
                   else begin
                     probe.task_start w;
                     for i = rlo to rhi - 1 do
                       run_body st i
                     done;
                     probe.task_stop w;
                     ignore (Atomic.fetch_and_add remaining (-len))
                   end
                 end
               in
               (* acquire: own deque first (LIFO), then steal round-robin
                  from the next worker up (FIFO — the victim's largest
                  range). When every queue looks empty but indices are
                  still in flight on other workers, back off with
                  exponentially longer cpu_relax spins; a CAS race seen
                  en route means real contention, so retry eagerly. *)
               let rec acquire spins =
                 match Deque.pop dq with
                 | Some r -> Some r
                 | None -> steal_from ((w + 1) mod workers) ~raced:false spins
               and steal_from v ~raced spins =
                 if v = w then
                   if Atomic.get remaining = 0 || Atomic.get abort then None
                   else begin
                     let spins =
                       if raced then 1
                       else if spins >= 1024 then 1024
                       else spins * 2
                     in
                     for _ = 1 to spins do
                       Domain.cpu_relax ()
                     done;
                     acquire spins
                   end
                 else
                   match Deque.steal deques.(v) with
                   | Deque.Stolen r ->
                       probe.steal ~thief:w ~victim:v;
                       Some r
                   | Deque.Retry ->
                       steal_from ((v + 1) mod workers) ~raced:true spins
                   | Deque.Empty -> steal_from ((v + 1) mod workers) ~raced spins
               in
               let rec loop () =
                 if not (Atomic.get abort) then begin
                   probe.wait_start w;
                   let r = acquire 1 in
                   probe.wait_stop w;
                   match r with
                   | Some range ->
                       exec range;
                       loop ()
                   | None -> ()
                 end
               in
               loop ()
             with e -> fail w e);
            probe.worker_stop w;
            Some st
      in
      let domains =
        List.init (workers - 1) (fun w ->
            Domain.spawn (fun () -> run_worker (w + 1)))
      in
      let st0 = run_worker 0 in
      let states = st0 :: List.map Domain.join domains in
      (* strict-mode abort abandons in-flight ranges: drain the deques so
         the handle is clean for the next run *)
      if Atomic.get abort then
        Array.iter
          (fun dq ->
            let rec drain () =
              match Deque.steal dq with
              | Deque.Stolen _ | Deque.Retry -> drain ()
              | Deque.Empty -> ()
            in
            drain ())
          deques;
      Array.iter
        (function
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ())
        failures;
      List.filter_map Fun.id states
    end

let parallel_for ?(jobs = 0) ?chunk ?probe ?on_error ~n ~state ~body () =
  let hooks = { probe = Option.value probe ~default:no_probe; on_error } in
  let pool = create ~jobs ?grain:chunk ~hooks () in
  run pool ~n ~state ~body
