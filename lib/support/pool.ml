let recommended_jobs () = Domain.recommended_domain_count ()

let sequential ~n ~state ~body =
  let st = state 0 in
  for i = 0 to n - 1 do
    body st i
  done;
  [ st ]

let default_chunk ~jobs ~n =
  let c = n / (jobs * 8) in
  if c < 1 then 1 else if c > 64 then 64 else c

let parallel_for ?(jobs = 0) ?chunk ~n ~state ~body () =
  if n <= 0 then []
  else
    let jobs = if jobs <= 0 then recommended_jobs () else jobs in
    let jobs = min jobs n in
    if jobs <= 1 || n <= 1 then sequential ~n ~state ~body
    else begin
      let chunk =
        match chunk with
        | Some c when c >= 1 -> c
        | _ -> default_chunk ~jobs ~n
      in
      let n_chunks = (n + chunk - 1) / chunk in
      let next = Atomic.make 0 in
      (* one slot per worker: the first exception it hit, if any *)
      let failures = Array.make jobs None in
      let fail w e =
        failures.(w) <- Some (e, Printexc.get_raw_backtrace ());
        (* drain the queue so the other workers stop promptly *)
        Atomic.set next n_chunks
      in
      let run_worker w =
        match state w with
        | exception e ->
            fail w e;
            None
        | st ->
            (try
               let continue = ref true in
               while !continue do
                 let k = Atomic.fetch_and_add next 1 in
                 if k >= n_chunks then continue := false
                 else
                   let lo = k * chunk in
                   let hi = min n (lo + chunk) - 1 in
                   for i = lo to hi do
                     body st i
                   done
               done
             with e -> fail w e);
            Some st
      in
      let domains =
        List.init (jobs - 1) (fun w -> Domain.spawn (fun () -> run_worker (w + 1)))
      in
      let st0 = run_worker 0 in
      let states = st0 :: List.map Domain.join domains in
      Array.iter
        (function
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ())
        failures;
      List.filter_map Fun.id states
    end
