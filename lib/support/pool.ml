let recommended_jobs () = Domain.recommended_domain_count ()

type probe = {
  worker_start : int -> unit;
  worker_stop : int -> unit;
  wait_start : int -> unit;
  wait_stop : int -> unit;
  task_start : int -> unit;
  task_stop : int -> unit;
}

let no_probe =
  let nop _ = () in
  {
    worker_start = nop;
    worker_stop = nop;
    wait_start = nop;
    wait_stop = nop;
    task_start = nop;
    task_stop = nop;
  }

let sequential ~probe ~run_body ~n ~state =
  let st = state 0 in
  (* the whole index loop is one task on worker 0: the engine metrics
     see the same busy-time accounting shape at every jobs setting
     (queue wait is identically zero here) *)
  probe.worker_start 0;
  probe.task_start 0;
  Fun.protect
    ~finally:(fun () ->
      probe.task_stop 0;
      probe.worker_stop 0)
    (fun () ->
      for i = 0 to n - 1 do
        run_body st i
      done);
  [ st ]

let default_chunk ~jobs ~n =
  let c = n / (jobs * 8) in
  if c < 1 then 1 else if c > 64 then 64 else c

let parallel_for ?(jobs = 0) ?chunk ?probe ?on_error ~n ~state ~body () =
  let probe = Option.value probe ~default:no_probe in
  (* per-task containment: with a handler, a raising [body] is confined
     to its own index — the handler runs on the worker's domain and the
     loop continues. A handler that itself raises falls through to the
     legacy first-exception path below (strict mode). *)
  let run_body =
    match on_error with
    | None -> body
    | Some handle -> fun st i -> ( try body st i with e -> handle st i e)
  in
  if n <= 0 then []
  else
    let jobs = if jobs <= 0 then recommended_jobs () else jobs in
    let jobs = min jobs n in
    if jobs <= 1 || n <= 1 then sequential ~probe ~run_body ~n ~state
    else begin
      let chunk =
        match chunk with
        | Some c when c >= 1 -> c
        | _ -> default_chunk ~jobs ~n
      in
      let n_chunks = (n + chunk - 1) / chunk in
      let next = Atomic.make 0 in
      (* one slot per worker: the first exception it hit, if any *)
      let failures = Array.make jobs None in
      let fail w e =
        failures.(w) <- Some (e, Printexc.get_raw_backtrace ());
        (* drain the queue so the other workers stop promptly *)
        Atomic.set next n_chunks
      in
      let run_worker w =
        match state w with
        | exception e ->
            fail w e;
            None
        | st ->
            probe.worker_start w;
            (try
               let continue = ref true in
               while !continue do
                 probe.wait_start w;
                 let k = Atomic.fetch_and_add next 1 in
                 probe.wait_stop w;
                 if k >= n_chunks then continue := false
                 else begin
                   let lo = k * chunk in
                   let hi = min n (lo + chunk) - 1 in
                   probe.task_start w;
                   for i = lo to hi do
                     run_body st i
                   done;
                   probe.task_stop w
                 end
               done
             with e -> fail w e);
            probe.worker_stop w;
            Some st
      in
      let domains =
        List.init (jobs - 1) (fun w -> Domain.spawn (fun () -> run_worker (w + 1)))
      in
      let st0 = run_worker 0 in
      let states = st0 :: List.map Domain.join domains in
      Array.iter
        (function
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ())
        failures;
      List.filter_map Fun.id states
    end
