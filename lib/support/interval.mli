(** Integer intervals with infinite endpoints.

    The index-range algorithm of the paper (section 4.3) computes, for each
    loop index, a conservative range [lo, hi] where either endpoint may be
    unknown (symbolic bounds that do not resolve). Unknown endpoints are
    modelled as -oo / +oo. *)

type bound = Neg_inf | Fin of int | Pos_inf

type t = private { lo : bound; hi : bound }
(** Invariant: the interval is non-empty is NOT required — [is_empty]
    detects lo > hi for finite endpoints. *)

val make : bound -> bound -> t
val of_ints : int -> int -> t
val full : t
val singleton : int -> t
val empty : t

val lo : t -> bound
val hi : t -> bound

val is_empty : t -> bool
val contains : t -> int -> bool
val contains_ratio : t -> Ratio.t -> bool
(** Rational membership: used when checking whether the real-valued solution
    of a dependence equation falls within the loop bounds. *)

val inter : t -> t -> t
val hull : t -> t -> t

val add : t -> t -> t
(** Interval sum. *)

val neg : t -> t
val scale : int -> t -> t
(** Multiply both endpoints by a constant (swapping on negative factors). *)

val shift : int -> t -> t

val width : t -> int option
(** [hi - lo] when both ends are finite and the interval non-empty. *)

val finite : t -> (int * int) option
(** Both endpoints, when finite and non-empty. *)

val bound_add_lo : bound -> bound -> bound
(** Bound sum for a {e lower}-bound position: the indeterminate
    oo + (-oo), and a finite sum that overflows the native range, widen
    to [Neg_inf] (the conservative side for a lower bound) instead of
    raising or wrapping. *)

val bound_add_hi : bound -> bound -> bound
(** Bound sum for an {e upper}-bound position: indeterminate or
    overflowing sums widen to [Pos_inf]. *)

val bound_add : bound -> bound -> bound
(** Alias of {!bound_add_hi}, kept for source compatibility: use the
    positional variants so widening lands on the conservative side. *)

val bound_scale : int -> bound -> bound
val bound_le : bound -> bound -> bool
val bound_min : bound -> bound -> bound
val bound_max : bound -> bound -> bound

val pp : Format.formatter -> t -> unit
val pp_bound : Format.formatter -> bound -> unit
val equal : t -> t -> bool
