(** Brute-force dependence oracle.

    Enumerates the two iteration spaces and checks the subscript equations
    point-by-point. Exact by construction on small concrete spaces; used by
    the property-test harness as ground truth and by the precision studies
    as the reference answer. *)

open Dt_ir

type report = {
  dependent : bool;
  dirvecs : Deptest.Direction.t list list;
      (** observed direction vectors over the common loops, deduplicated *)
  distances : int option array;
      (** per common loop, the dependence distance when constant over all
          witnesses *)
  witnesses : int;  (** number of (alpha, beta) collisions *)
}

val test :
  ?sym_env:(string -> int) ->
  ?max_pairs:int ->
  src:Aref.t * Loop.t list ->
  snk:Aref.t * Loop.t list ->
  unit ->
  report option
(** [None] when a subscript is nonlinear, a bound cannot be evaluated, or
    the pair count exceeds [max_pairs] (default 2_000_000). The references
    must name the same base array and have equal rank. *)
