open Dt_ir

type report = {
  dependent : bool;
  dirvecs : Deptest.Direction.t list list;
  distances : int option array;
  witnesses : int;
}

type dist_acc = Unset | Const of int | Varies

let default_sym_env _ = 10

let test ?(sym_env = default_sym_env) ?(max_pairs = 2_000_000)
    ~src:(src_ref, src_loops) ~snk:(snk_ref, snk_loops) () =
  match (Aref.linear_subs src_ref, Aref.linear_subs snk_ref) with
  | Some fs, Some gs when List.length fs = List.length gs -> (
      let common = Nest.common_loops src_loops snk_loops in
      let ncommon = List.length common in
      let common_indices = List.map (fun (l : Loop.t) -> l.Loop.index) common in
      match
        ( Iter_space.enumerate ~loops:src_loops ~sym_env ~max_points:max_pairs,
          Iter_space.enumerate ~loops:snk_loops ~sym_env ~max_points:max_pairs )
      with
      | Some alphas, Some betas
        when List.length alphas * List.length betas <= max_pairs ->
          let vecs = ref [] in
          let witnesses = ref 0 in
          let distances = Array.make ncommon Unset in
          List.iter
            (fun alpha ->
              let aenv i = Iter_space.lookup alpha i in
              let fvals =
                List.map (fun f -> Affine.eval f ~index_env:aenv ~sym_env) fs
              in
              List.iter
                (fun beta ->
                  let benv i = Iter_space.lookup beta i in
                  let gvals =
                    List.map (fun g -> Affine.eval g ~index_env:benv ~sym_env) gs
                  in
                  if List.for_all2 Int.equal fvals gvals then begin
                    incr witnesses;
                    let vec =
                      List.map
                        (fun i ->
                          let a = aenv i and b = benv i in
                          if a < b then Deptest.Direction.Lt
                          else if a = b then Deptest.Direction.Eq
                          else Deptest.Direction.Gt)
                        common_indices
                    in
                    vecs := vec :: !vecs;
                    List.iteri
                      (fun k i ->
                        let d = benv i - aenv i in
                        distances.(k) <-
                          (match distances.(k) with
                          | Unset -> Const d
                          | Const d' when d' = d -> Const d
                          | _ -> Varies))
                      common_indices
                  end)
                betas)
            alphas;
          Some
            {
              dependent = !witnesses > 0;
              dirvecs = Dt_support.Listx.dedup ~compare:Stdlib.compare !vecs;
              distances =
                Array.map (function Const d -> Some d | _ -> None) distances;
              witnesses = !witnesses;
            }
      | _ -> None)
  | _ -> None
