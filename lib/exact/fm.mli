(** Fourier-Motzkin elimination over the rationals.

    The workhorse of the "expensive but general" multiple-subscript tests
    the paper compares against (§7.1, §7.3): decide feasibility of a
    conjunction of linear inequalities by eliminating variables pairwise.
    Exponential in the worst case — which is exactly the point of the
    efficiency comparison (Triolet measured 22-28x slowdowns versus
    conventional tests). *)

open Dt_support

type cmp = Le  (** sum_i c_i * x_i <= k *) | Eq

type constr = { coeffs : Ratio.t array; cmp : cmp; bound : Ratio.t }

val make : coeffs:Ratio.t array -> cmp:cmp -> bound:Ratio.t -> constr

val feasible : nvars:int -> constr list -> bool
(** Rational satisfiability. All coefficient arrays must have length
    [nvars]. *)

val eliminate : nvars:int -> var:int -> constr list -> constr list option
(** One elimination step; [None] when an immediate contradiction between
    constant constraints appears. Exposed for testing. *)
