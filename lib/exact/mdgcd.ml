open Dt_support

type solution = { particular : int array; kernel : int array array }

let solve ~a ~b =
  let m = Array.length a in
  let n = if m = 0 then 0 else Array.length a.(0) in
  (* working copies; u tracks column operations so that x = u * y *)
  let a = Array.map Array.copy a in
  let u = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1 else 0)) in
  let col_op f j1 j2 =
    (* replace columns j1, j2 by unimodular combinations *)
    for r = 0 to m - 1 do
      let x1 = a.(r).(j1) and x2 = a.(r).(j2) in
      let y1, y2 = f x1 x2 in
      a.(r).(j1) <- y1;
      a.(r).(j2) <- y2
    done;
    for r = 0 to n - 1 do
      let x1 = u.(r).(j1) and x2 = u.(r).(j2) in
      let y1, y2 = f x1 x2 in
      u.(r).(j1) <- y1;
      u.(r).(j2) <- y2
    done
  in
  let free = Array.make n true in
  let pivots = ref [] in
  (* pivot col, row, value *)
  let y = Array.make n 0 in
  let exception No_solution in
  try
    for r = 0 to m - 1 do
      (* gather the gcd of row r's free-column entries into one column *)
      let free_cols =
        List.filter (fun j -> free.(j) && a.(r).(j) <> 0)
          (List.init n Fun.id)
      in
      match free_cols with
      | [] ->
          (* row involves only pivot columns: consistency check *)
          let lhs =
            List.fold_left
              (fun acc (j, _, _) -> acc + (a.(r).(j) * y.(j)))
              0 !pivots
          in
          if lhs <> b.(r) then raise No_solution
      | jp :: rest ->
          List.iter
            (fun j ->
              let a1 = a.(r).(jp) and a2 = a.(r).(j) in
              if a2 <> 0 then
                if a1 = 0 then col_op (fun x1 x2 -> (x2, x1)) jp j
                else begin
                  let g, pu, pv = Int_ops.egcd a1 a2 in
                  let f x1 x2 =
                    ( (pu * x1) + (pv * x2),
                      (-(a2 / g) * x1) + (a1 / g * x2) )
                  in
                  col_op f jp j
                end)
            rest;
          let g = a.(r).(jp) in
          let g = if g < 0 then begin
            (* flip the column sign (unimodular) *)
            for rr = 0 to m - 1 do a.(rr).(jp) <- -a.(rr).(jp) done;
            for rr = 0 to n - 1 do u.(rr).(jp) <- -u.(rr).(jp) done;
            -g
          end else g
          in
          let rhs =
            b.(r)
            - List.fold_left
                (fun acc (j, _, _) -> acc + (a.(r).(j) * y.(j)))
                0 !pivots
          in
          if g = 0 then (if rhs <> 0 then raise No_solution)
          else if rhs mod g <> 0 then raise No_solution
          else begin
            y.(jp) <- rhs / g;
            free.(jp) <- false;
            pivots := (jp, r, g) :: !pivots
          end
    done;
    (* x = U y with free y's = 0 for the particular solution *)
    let particular =
      Array.init n (fun i ->
          let acc = ref 0 in
          for j = 0 to n - 1 do
            acc := !acc + (u.(i).(j) * y.(j))
          done;
          !acc)
    in
    let kernel =
      List.filter_map
        (fun j ->
          if free.(j) then Some (Array.init n (fun i -> u.(i).(j))) else None)
        (List.init n Fun.id)
      |> Array.of_list
    in
    Some { particular; kernel }
  with No_solution -> None

let test ~a ~b = match solve ~a ~b with None -> `Independent | Some _ -> `Maybe
