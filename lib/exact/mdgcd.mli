(** The multidimensional GCD test: integer solvability of a linear system
    (paper §7.3).

    Gaussian elimination modified for integers (unimodular column
    operations) reduces [A x = b] to a triangular system in new variables
    [y] with [x = U y]; integer solutions exist iff each pivot divides its
    right-hand side. On success the full solution set is returned as a
    particular solution plus a basis of the integer kernel — exactly what
    the Power test needs to apply loop bounds with Fourier-Motzkin. *)

type solution = {
  particular : int array;  (** one integer solution, length n *)
  kernel : int array array;  (** basis vectors of the solution lattice *)
}

val solve : a:int array array -> b:int array -> solution option
(** [a] is m x n (rows = equations); [None] means no integer solution —
    the multidimensional GCD test reports independence. *)

val test : a:int array array -> b:int array -> [ `Independent | `Maybe ]
