(** The Power test (Wolfe & Tseng, paper §7.3): multidimensional GCD to
    capture integer solvability, then Fourier-Motzkin elimination over the
    solution lattice parameters to apply loop bounds and direction
    constraints.

    Expensive but the most precise test in this repository: exact integer
    reasoning for the equation system combined with exact rational
    reasoning for the bounds. Used as the precision yardstick in the
    Table-4 experiment and as a cross-check oracle in the property tests.

    Symbolic constants are modelled as additional unconstrained integer
    variables — sound (it over-approximates the solution set) and precise
    whenever the symbols cancel. *)

open Dt_ir

val test :
  src:Aref.t * Loop.t list ->
  snk:Aref.t * Loop.t list ->
  unit ->
  [ `Independent | `Maybe ]
(** Any dependence at all (no direction constraint)? *)

val vectors :
  src:Aref.t * Loop.t list ->
  snk:Aref.t * Loop.t list ->
  unit ->
  [ `Independent | `Vectors of Deptest.Direction.t list list ]
(** Legal direction vectors over the common loops (hierarchy refinement,
    each candidate checked by mdGCD + FM). *)
