open Dt_support

type cmp = Le | Eq
type constr = { coeffs : Ratio.t array; cmp : cmp; bound : Ratio.t }

let make ~coeffs ~cmp ~bound = { coeffs; cmp; bound }

(* normalize equalities into two inequalities *)
let to_le cs =
  List.concat_map
    (fun c ->
      match c.cmp with
      | Le -> [ c ]
      | Eq ->
          [
            { c with cmp = Le };
            {
              coeffs = Array.map Ratio.neg c.coeffs;
              cmp = Le;
              bound = Ratio.neg c.bound;
            };
          ])
    cs

let is_trivial c = Array.for_all (fun q -> Ratio.sign q = 0) c.coeffs
let c_abs q = Ratio.abs q

let eliminate ~nvars ~var cs =
  ignore nvars;
  let pos, rest =
    List.partition (fun c -> Ratio.sign c.coeffs.(var) > 0) cs
  in
  let neg, zero = List.partition (fun c -> Ratio.sign c.coeffs.(var) < 0) rest in
  let combined =
    List.concat_map
      (fun p ->
        List.map
          (fun n ->
            (* p: a*x + ... <= bp with a > 0; n: -a'*x + ... <= bn, a' > 0.
               x <= (bp - ...) / a and x >= (... - bn) / a'.
               Combine: a' * p + a * n eliminates x. *)
            let a = c_abs p.coeffs.(var) and a' = c_abs n.coeffs.(var) in
            let coeffs =
              Array.init (Array.length p.coeffs) (fun i ->
                  Ratio.add
                    (Ratio.mul a' p.coeffs.(i))
                    (Ratio.mul a n.coeffs.(i)))
            in
            let bound = Ratio.add (Ratio.mul a' p.bound) (Ratio.mul a n.bound) in
            { coeffs; cmp = Le; bound })
          neg)
      pos
  in
  let out = zero @ combined in
  if
    List.exists
      (fun c -> is_trivial c && Ratio.sign c.bound < 0)
      out
  then None
  else Some (List.filter (fun c -> not (is_trivial c)) out)

let feasible ~nvars cs =
  let cs = to_le cs in
  if List.exists (fun c -> is_trivial c && Ratio.sign c.bound < 0) cs then false
  else
    let cs = List.filter (fun c -> not (is_trivial c)) cs in
    let rec go var cs =
      if var >= nvars then
        (* all remaining constraints are trivial by the filter invariant *)
        cs = []
      else
        match eliminate ~nvars ~var cs with
        | None -> false
        | Some cs' -> go (var + 1) cs'
    in
    go 0 cs
