open Dt_ir
open Dt_support

(* Variable layout: src loop indices, then snk loop indices, then symbolic
   constants. The two iteration vectors are independent variable blocks —
   common loops are linked only through direction constraints, which is
   the correct dependence-equation semantics. *)
type layout = {
  src_loops : Loop.t array;
  snk_loops : Loop.t array;
  syms : string array;
  nvars : int;
}

let build_layout src_loops snk_loops (syms : string list) =
  let src_loops = Array.of_list src_loops and snk_loops = Array.of_list snk_loops in
  {
    src_loops;
    snk_loops;
    syms = Array.of_list syms;
    nvars = Array.length src_loops + Array.length snk_loops + List.length syms;
  }

let src_var _lay k = k
let snk_var lay k = Array.length lay.src_loops + k
let sym_var lay name =
  let base = Array.length lay.src_loops + Array.length lay.snk_loops in
  let rec go i =
    if i >= Array.length lay.syms then invalid_arg "Power: unknown symbol"
    else if lay.syms.(i) = name then base + i
    else go (i + 1)
  in
  go 0

let pos_of_index loops i =
  let n = Array.length loops in
  let rec go k =
    if k >= n then None
    else if Index.equal loops.(k).Loop.index i then Some k
    else go (k + 1)
  in
  go 0

(* coefficient row (length nvars) for an affine on one side *)
let side_coeffs lay ~side (a : Affine.t) =
  let row = Array.make lay.nvars 0 in
  let loops = match side with `Src -> lay.src_loops | `Snk -> lay.snk_loops in
  List.iter
    (fun (i, c) ->
      match pos_of_index loops i with
      | Some k ->
          let v = match side with `Src -> src_var lay k | `Snk -> snk_var lay k in
          row.(v) <- row.(v) + c
      | None -> invalid_arg "Power: subscript mentions a non-enclosing index")
    (Affine.index_terms a);
  List.iter
    (fun (s, c) ->
      let v = sym_var lay s in
      row.(v) <- row.(v) + c)
    (Affine.sym_terms a);
  row

let collect_syms (arefs_and_loops : (Affine.t list * Loop.t list) list) =
  let acc = ref [] in
  let add a = acc := Affine.syms a @ !acc in
  List.iter
    (fun (subs, loops) ->
      List.iter add subs;
      List.iter
        (fun (l : Loop.t) ->
          add l.Loop.lo;
          add l.Loop.hi)
        loops)
    arefs_and_loops;
  Listx.dedup ~compare:String.compare !acc

type prepared = {
  lay : layout;
  fam : Mdgcd.solution;
  ncommon : int;
}

let prepare ~src:(src_ref, src_loops) ~snk:(snk_ref, snk_loops) =
  match (Aref.linear_subs src_ref, Aref.linear_subs snk_ref) with
  | Some fs, Some gs when List.length fs = List.length gs -> (
      let syms =
        collect_syms [ (fs, src_loops); (gs, snk_loops) ]
      in
      let lay = build_layout src_loops snk_loops syms in
      let rows, rhs =
        List.split
          (List.map2
             (fun f g ->
               let rf = side_coeffs lay ~side:`Src f in
               let rg = side_coeffs lay ~side:`Snk g in
               let row = Array.init lay.nvars (fun i -> rf.(i) - rg.(i)) in
               (row, Affine.const_part g - Affine.const_part f))
             fs gs)
      in
      let a = Array.of_list rows and b = Array.of_list rhs in
      match Mdgcd.solve ~a ~b with
      | None -> `Independent
      | Some fam ->
          let common = Nest.common_loops src_loops snk_loops in
          `Prepared { lay; fam; ncommon = List.length common })
  | _ -> `Unknown

(* bound constraints lo <= x_v and x_v <= hi, expressed over the original
   variables, then projected onto the lattice parameters t:
   x = particular + kernel^T t. *)
let constraints_over_t prep ~dirs =
  let { lay; fam; _ } = prep in
  let nk = Array.length fam.Mdgcd.kernel in
  let project row bound =
    (* row . x <= bound  ==>  (row . K_j)_j t <= bound - row . particular *)
    let dot a b =
      let acc = ref 0 in
      Array.iteri (fun i v -> acc := !acc + (v * b.(i))) a;
      !acc
    in
    let coeffs =
      Array.init nk (fun j -> Ratio.of_int (dot row fam.Mdgcd.kernel.(j)))
    in
    Fm.make ~coeffs ~cmp:Fm.Le
      ~bound:(Ratio.of_int (bound - dot row fam.Mdgcd.particular))
  in
  let out = ref [] in
  let bound_constraints ~side loops =
    Array.iteri
      (fun k (l : Loop.t) ->
        let v = match side with `Src -> src_var lay k | `Snk -> snk_var lay k in
        (* lo - x_v <= 0 *)
        let row_lo = side_coeffs lay ~side l.Loop.lo in
        row_lo.(v) <- row_lo.(v) - 1;
        out := project row_lo (-Affine.const_part l.Loop.lo) :: !out;
        (* x_v - hi <= 0 *)
        let row_hi = side_coeffs lay ~side l.Loop.hi in
        Array.iteri (fun i c -> row_hi.(i) <- -c) (Array.copy row_hi);
        row_hi.(v) <- row_hi.(v) + 1;
        out := project row_hi (Affine.const_part l.Loop.hi) :: !out)
      loops
  in
  bound_constraints ~side:`Src lay.src_loops;
  bound_constraints ~side:`Snk lay.snk_loops;
  (* direction constraints on common loops *)
  List.iteri
    (fun k dir ->
      let row = Array.make lay.nvars 0 in
      row.(src_var lay k) <- 1;
      row.(snk_var lay k) <- -1;
      match dir with
      | None -> ()
      | Some Deptest.Direction.Lt ->
          (* alpha - beta <= -1 *)
          out := project row (-1) :: !out
      | Some Deptest.Direction.Gt ->
          let neg = Array.map (fun c -> -c) row in
          out := project neg (-1) :: !out
      | Some Deptest.Direction.Eq ->
          out := project row 0 :: !out;
          out := project (Array.map (fun c -> -c) row) 0 :: !out)
    dirs;
  (!out, nk)

let feasible_for prep ~dirs =
  let cs, nk = constraints_over_t prep ~dirs in
  Fm.feasible ~nvars:nk cs

let test ~src ~snk () =
  match prepare ~src ~snk with
  | `Independent -> `Independent
  | `Unknown -> `Maybe
  | `Prepared prep ->
      let dirs = List.init prep.ncommon (fun _ -> None) in
      if feasible_for prep ~dirs then `Maybe else `Independent

let all_vectors n =
  Dt_support.Listx.cartesian (List.init n (fun _ -> Deptest.Direction.all))

let vectors ~src ~snk () =
  match prepare ~src ~snk with
  | `Independent -> `Independent
  | `Unknown ->
      let n = List.length (Nest.common_loops (snd src) (snd snk)) in
      `Vectors (all_vectors n)
  | `Prepared prep ->
      let n = prep.ncommon in
      let results = ref [] in
      let rec refine fixed k =
        let dirs =
          List.rev_append fixed (List.init (n - k) (fun _ -> None))
        in
        if feasible_for prep ~dirs then
          if k = n then
            results :=
              List.rev_map (function Some d -> d | None -> assert false) fixed
              :: !results
          else
            List.iter
              (fun d -> refine (Some d :: fixed) (k + 1))
              Deptest.Direction.all
      in
      refine [] 0;
      if !results = [] then `Independent else `Vectors (List.rev !results)
