open Deptest
open Dt_ir

type plan =
  | Seq_loop of Loop.t * plan list
  | Vector_stmt of Stmt.t
  | Seq_stmt of Stmt.t

let codegen prog deps =
  let with_loops = Nest.stmts_with_loops prog in
  let loops_of =
    let tbl = Hashtbl.create 16 in
    List.iter (fun (s, ls) -> Hashtbl.replace tbl s.Stmt.id (s, ls)) with_loops;
    fun id -> Hashtbl.find tbl id
  in
  let rec go stmt_ids level =
    let in_set id = List.mem id stmt_ids in
    let active =
      List.filter
        (fun d ->
          in_set d.Dep.src_stmt && in_set d.Dep.snk_stmt
          && Depgraph.active_at d ~level
          (* a loop-independent self anti-dependence (fetch before store
             within one statement) never prevents vectorization *)
          && not (d.Dep.src_stmt = d.Dep.snk_stmt && d.Dep.level = None))
        deps
    in
    let succs v =
      List.filter_map
        (fun d -> if d.Dep.src_stmt = v then Some d.Dep.snk_stmt else None)
        active
    in
    let sccs = Scc.topo_order ~nodes:stmt_ids ~succs in
    List.concat_map
      (fun comp ->
        let comp = List.sort compare comp in
        let self_edge id =
          List.exists
            (fun d -> d.Dep.src_stmt = id && d.Dep.snk_stmt = id)
            active
        in
        match comp with
        | [ id ] when not (self_edge id) ->
            let s, ls = loops_of id in
            if List.length ls >= level then [ Vector_stmt s ]
            else [ Seq_stmt s ]
        | _ -> (
            (* cyclic (or self-dependent) component *)
            let shallow, deep =
              List.partition
                (fun id -> List.length (snd (loops_of id)) < level)
                comp
            in
            let shallow_plans =
              List.map (fun id -> Seq_stmt (fst (loops_of id))) shallow
            in
            match deep with
            | [] -> shallow_plans
            | id0 :: _ ->
                let loop = List.nth (snd (loops_of id0)) (level - 1) in
                shallow_plans @ [ Seq_loop (loop, go deep (level + 1)) ]))
      sccs
  in
  go (List.map (fun (s, _) -> s.Stmt.id) with_loops) 1

let rec vector_statements plans =
  List.concat_map
    (function
      | Vector_stmt s -> [ s ]
      | Seq_stmt _ -> []
      | Seq_loop (_, inner) -> vector_statements inner)
    plans

let rec fully_sequential plans =
  List.concat_map
    (function
      | Vector_stmt _ -> []
      | Seq_stmt s -> [ s ]
      | Seq_loop (_, inner) -> fully_sequential inner)
    plans

let pp ppf plans =
  let rec node indent ppf p =
    let pad = String.make indent ' ' in
    match p with
    | Vector_stmt s -> Format.fprintf ppf "%s[vector] %a@." pad Stmt.pp s
    | Seq_stmt s -> Format.fprintf ppf "%s[scalar] %a@." pad Stmt.pp s
    | Seq_loop (l, inner) ->
        Format.fprintf ppf "%s[seq] %a@." pad Loop.pp l;
        List.iter (node (indent + 2) ppf) inner
  in
  List.iter (node 0 ppf) plans
