(** Loop parallelization legality.

    A loop can run its iterations in parallel (DOALL) iff it carries no
    dependence: every dependence between statements it encloses must be
    loop-independent or carried by an outer or inner loop. *)

open Dt_ir

type report = {
  loop : Loop.t;
  level : int;  (** 1-based nesting level of the loop *)
  parallel : bool;
  blockers : Deptest.Dep.t list;  (** dependences carried by this loop *)
}

val analyze : Nest.program -> Deptest.Dep.t list -> report list
(** One report per loop of the program, in post-order (each loop after the
    loops it contains). *)

val parallel_loops : Nest.program -> Deptest.Dep.t list -> Loop.t list
val pp_report : Format.formatter -> report -> unit
