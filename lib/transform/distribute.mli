(** Loop distribution (loop fission).

    Splits each loop around the strongly connected components of its
    dependence graph, in topological order — the structural half of
    Allen-Kennedy: after distribution every resulting loop either carries
    a genuine recurrence or is fully parallel. The result is a new
    program; statement ids (and texts) are preserved, so dependences of
    the original program can be compared against the distributed one. *)

open Dt_ir

val run : Nest.program -> Deptest.Dep.t list -> Nest.program
(** Dependences must come from analyzing the same program. *)

val run_and_report :
  Nest.program -> Nest.program * Parallel.report list
(** Convenience: analyze, distribute, re-analyze the result, and report
    loop parallelism of the distributed program. *)
