(** Allen-Kennedy vectorization codegen.

    Recursively partitions the statements under each loop into strongly
    connected components of the dependence graph restricted to edges active
    at the current level; acyclic components become vector statements
    (after loop distribution, every surrounding loop from the current level
    inward runs parallel for them), and cyclic components are wrapped in a
    sequential loop at this level before recursing one level deeper. This
    is the layered vectorization algorithm PFC's dependence tests were
    built to feed (paper §1, §8). *)

open Dt_ir

type plan =
  | Seq_loop of Loop.t * plan list
      (** a dependence cycle forces this loop to run sequentially *)
  | Vector_stmt of Stmt.t
      (** statement executes as a vector operation over all remaining
          enclosing loops (which are distributed and parallel) *)
  | Seq_stmt of Stmt.t  (** statement not inside any remaining loop *)

val codegen : Nest.program -> Deptest.Dep.t list -> plan list

val vector_statements : plan list -> Stmt.t list
(** Statements that ended up (at least partly) vectorized. *)

val fully_sequential : plan list -> Stmt.t list
(** Statements executed with every enclosing loop sequential. *)

val pp : Format.formatter -> plan list -> unit
