(** Dependence-breaking transformation suggestions (paper §4.2).

    - Weak-zero SIV dependences hitting the loop's first or last iteration
      can be eliminated by *loop peeling* (the paper's tomcatv example);
    - weak-crossing SIV dependences all cross a single iteration and can
      be eliminated by *loop splitting* at the crossing point (the paper's
      Callahan-Dongarra-Levine example). *)

open Dt_ir

type suggestion =
  | Peel of {
      loop : Index.t;
      iteration : Affine.t;  (** the single source/sink iteration *)
      at_boundary : [ `First | `Last | `Interior ];
      array : string;
      src_stmt : int;
      snk_stmt : int;
    }
  | Split of {
      loop : Index.t;
      crossing2 : Affine.t;
          (** twice the crossing iteration (symbol-only affine); the loop
              splits at iteration crossing2 / 2 *)
      array : string;
      src_stmt : int;
      snk_stmt : int;
    }

val suggest : Nest.program -> suggestion list
(** Scan every reference pair with a weak-zero or weak-crossing SIV
    subscript that induces a dependence and describe the transformation
    that removes it. *)

val pp : Format.formatter -> suggestion -> unit
