(** Tarjan's strongly connected components over integer node ids.

    Used by the Allen-Kennedy vectorization recursion: statements in a
    dependence cycle at level k must stay inside a sequential level-k
    loop. *)

val compute : nodes:int list -> succs:(int -> int list) -> int list list
(** SCCs in reverse topological order (callees first): if there is an edge
    from component A to component B (A <> B), B appears before A. Each
    component lists its nodes in discovery order. *)

val topo_order : nodes:int list -> succs:(int -> int list) -> int list list
(** SCCs in topological order (sources first). *)
