open Dt_ir
open Deptest

type suggestion =
  | Peel of {
      loop : Index.t;
      iteration : Affine.t;
      at_boundary : [ `First | `Last | `Interior ];
      array : string;
      src_stmt : int;
      snk_stmt : int;
    }
  | Split of {
      loop : Index.t;
      crossing2 : Affine.t;
      array : string;
      src_stmt : int;
      snk_stmt : int;
    }

let suggest prog =
  let out = ref [] in
  let accesses =
    List.concat_map
      (fun (s, loops) -> List.map (fun a -> (a, loops)) (Stmt.accesses s))
      (Nest.stmts_with_loops prog)
  in
  let accesses = Array.of_list accesses in
  let n = Array.length accesses in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let (a1 : Stmt.access), loops1 = accesses.(i)
      and (a2 : Stmt.access), loops2 = accesses.(j) in
      if
        a1.Stmt.aref.Aref.base = a2.Stmt.aref.Aref.base
        && (a1.Stmt.kind = `Write || a2.Stmt.kind = `Write)
      then
        match
          (Aref.linear_subs a1.Stmt.aref, Aref.linear_subs a2.Stmt.aref)
        with
        | Some fs, Some gs when List.length fs = List.length gs ->
            let common = Nest.common_loops loops1 loops2 in
            let relevant =
              List.fold_left
                (fun s (l : Loop.t) -> Index.Set.add l.Loop.index s)
                Index.Set.empty (loops1 @ loops2)
            in
            let assume = Assume.add_loop_facts Assume.empty (loops1 @ loops2) in
            let range = Range.compute common in
            List.iter2
              (fun f g ->
                let p = Spair.make f g in
                match Classify.classify ~relevant p with
                | Classify.Siv { index; kind = Classify.Weak_zero }
                  when List.exists
                         (fun (l : Loop.t) -> Index.equal l.Loop.index index)
                         common -> (
                    let r = Siv.weak_zero assume range p index in
                    match
                      (r.Siv.outcome, Siv.weak_zero_iteration assume p index)
                    with
                    | Outcome.Dependent _, Some it ->
                        let rg = Range.find range index in
                        let at_boundary =
                          match (rg.Range.lo, rg.Range.hi) with
                          | Some lo, _ when Affine.equal lo it -> `First
                          | _, Some hi when Affine.equal hi it -> `Last
                          | _ -> `Interior
                        in
                        out :=
                          Peel
                            {
                              loop = index;
                              iteration = it;
                              at_boundary;
                              array = a1.Stmt.aref.Aref.base;
                              src_stmt = a1.Stmt.stmt.Stmt.id;
                              snk_stmt = a2.Stmt.stmt.Stmt.id;
                            }
                          :: !out
                    | _ -> ())
                | Classify.Siv { index; kind = Classify.Weak_crossing }
                  when List.exists
                         (fun (l : Loop.t) -> Index.equal l.Loop.index index)
                         common -> (
                    let r = Siv.weak_crossing assume range p index in
                    match (r.Siv.outcome, Siv.crossing_point2 p index) with
                    | Outcome.Dependent _, Some c2 ->
                        out :=
                          Split
                            {
                              loop = index;
                              crossing2 = c2;
                              array = a1.Stmt.aref.Aref.base;
                              src_stmt = a1.Stmt.stmt.Stmt.id;
                              snk_stmt = a2.Stmt.stmt.Stmt.id;
                            }
                          :: !out
                    | _ -> ())
                | _ -> ())
              fs gs
        | _ -> ()
    done
  done;
  List.rev !out

let pp ppf = function
  | Peel { loop; iteration; at_boundary; array; src_stmt; snk_stmt } ->
      Format.fprintf ppf
        "peel iteration %a=%a (%s) to break the %s dependence S%d->S%d"
        Index.pp loop Affine.pp iteration
        (match at_boundary with
        | `First -> "first"
        | `Last -> "last"
        | `Interior -> "interior")
        array src_stmt snk_stmt
  | Split { loop; crossing2; array; src_stmt; snk_stmt } ->
      let point =
        match Affine.div_exact crossing2 2 with
        | Some half -> Affine.to_string half
        | None -> Printf.sprintf "(%s)/2" (Affine.to_string crossing2)
      in
      Format.fprintf ppf
        "split loop %a at iteration %s to break the crossing %s dependence S%d->S%d"
        Index.pp loop point array src_stmt snk_stmt
