open Deptest
open Dt_ir

type report = {
  loop : Loop.t;
  level : int;
  parallel : bool;
  blockers : Dep.t list;
}

let analyze prog deps =
  let reports = ref [] in
  let rec go level = function
    | Nest.Stmt s -> [ s.Stmt.id ]
    | Nest.Loop (l, body) ->
        let ids = List.concat_map (go (level + 1)) body in
        let blockers =
          List.filter
            (fun d ->
              d.Dep.level = Some level
              && List.mem d.Dep.src_stmt ids
              && List.mem d.Dep.snk_stmt ids)
            deps
        in
        reports :=
          { loop = l; level; parallel = blockers = []; blockers } :: !reports;
        ids
  in
  List.iter (fun node -> ignore (go 1 node)) prog.Nest.body;
  List.rev !reports

let parallel_loops prog deps =
  List.filter_map
    (fun r -> if r.parallel then Some r.loop else None)
    (analyze prog deps)

let pp_report ppf r =
  Format.fprintf ppf "%a : %s" Loop.pp r.loop
    (if r.parallel then "PARALLEL" else "sequential");
  if not r.parallel then
    Format.fprintf ppf " (%d carried dependence%s)" (List.length r.blockers)
      (if List.length r.blockers = 1 then "" else "s")
