(** Scalar replacement opportunities.

    The paper motivates dependence analysis for *scalar* compilers with
    register-level reuse (Callahan-Carr-Kennedy [11]): a loop-carried flow
    dependence with a small constant distance on the innermost loop means
    the value read was produced a fixed, small number of iterations ago
    and can live in a register rotation instead of being re-loaded. This
    pass reports such candidates (including distance-0 loop-independent
    reuse within an iteration). *)

open Dt_ir

type candidate = {
  array : string;
  src_stmt : int;
  snk_stmt : int;
  distance : int;  (** iterations between production and use (>= 0) *)
  registers : int;  (** registers needed = distance + 1 *)
}

val suggest : ?max_distance:int -> Nest.program -> Deptest.Dep.t list -> candidate list
(** Flow dependences carried by the innermost common loop (or
    loop-independent) whose distance vector is constant, zero on outer
    loops, and at most [max_distance] (default 4) on the innermost. *)

val pp : Format.formatter -> candidate -> unit
