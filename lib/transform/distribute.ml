open Deptest
open Dt_ir

let run prog deps =
  let with_loops = Nest.stmts_with_loops prog in
  let loops_of =
    let tbl = Hashtbl.create 16 in
    List.iter (fun (s, ls) -> Hashtbl.replace tbl s.Stmt.id (s, ls)) with_loops;
    fun id -> Hashtbl.find tbl id
  in
  let rec go stmt_ids level : Nest.node list =
    let in_set id = List.mem id stmt_ids in
    let active =
      List.filter
        (fun d ->
          in_set d.Dep.src_stmt && in_set d.Dep.snk_stmt
          && Depgraph.active_at d ~level)
        deps
    in
    let succs v =
      List.filter_map
        (fun d -> if d.Dep.src_stmt = v then Some d.Dep.snk_stmt else None)
        active
    in
    let sccs = Scc.topo_order ~nodes:stmt_ids ~succs in
    List.concat_map
      (fun comp ->
        let comp = List.sort compare comp in
        let shallow, deep =
          List.partition (fun id -> List.length (snd (loops_of id)) < level) comp
        in
        let shallow_nodes =
          List.map (fun id -> Nest.Stmt (fst (loops_of id))) shallow
        in
        match deep with
        | [] -> shallow_nodes
        | id0 :: _ ->
            let loop = List.nth (snd (loops_of id0)) (level - 1) in
            shallow_nodes @ [ Nest.Loop (loop, go deep (level + 1)) ])
      sccs
  in
  let body = go (List.map (fun (s, _) -> s.Stmt.id) with_loops) 1 in
  Nest.program ~routine:prog.Nest.routine
    ~source_lines:prog.Nest.source_lines
    ~name:(prog.Nest.name ^ "_distributed")
    body

(* sequential (the programs here are single nests, too small to fan
   out), but share one memo cache across calls: the distributed program
   repeats most of the original's reference pairs *)
let analyze_cfg = Analyze.Config.make ~jobs:1 ()

let run_and_report prog =
  let deps = (Analyze.run analyze_cfg prog).Analyze.deps in
  let prog' = run prog deps in
  let deps' = (Analyze.run analyze_cfg prog').Analyze.deps in
  (prog', Parallel.analyze prog' deps')
