open Deptest

let lex_nonneg dirs =
  let rec go = function
    | [] -> true
    | Direction.Eq :: rest -> go rest
    | Direction.Lt :: _ -> true
    | Direction.Gt :: _ -> false
  in
  go dirs

let vec_ok perm (v : Dirvec.t) =
  let n = Array.length perm in
  if Array.length v < n then true
  else
    List.for_all
      (fun concrete ->
        let arr = Array.of_list concrete in
        let permuted = Array.to_list (Array.map (fun old -> arr.(old)) perm) in
        lex_nonneg permuted)
      (List.filter_map
         (fun w -> Dirvec.concrete w)
         (Dirvec.expand v))

let permutation_legal deps ~perm =
  List.for_all (fun d -> vec_ok perm d.Dep.dirvec) deps

let reversal_legal deps ~level =
  List.for_all (fun d -> d.Dep.level <> Some level) deps

let interchange_legal deps ~depth ~level =
  if level < 1 || level >= depth then invalid_arg "interchange_legal";
  let perm =
    Array.init depth (fun i ->
        if i = level - 1 then level
        else if i = level then level - 1
        else i)
  in
  permutation_legal deps ~perm

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map
            (fun rest -> x :: rest)
            (permutations (List.filter (fun y -> y <> x) l)))
        l

let legal_permutations deps ~depth =
  List.filter_map
    (fun p ->
      let perm = Array.of_list p in
      if permutation_legal deps ~perm then Some perm else None)
    (permutations (List.init depth Fun.id))

(* after permuting, position k (0-based) carries a dependence iff some
   dependence vector has an expansion whose first non-'=' position is k *)
let carried_positions perm (deps : Dep.t list) =
  let n = Array.length perm in
  let carried = Array.make n false in
  List.iter
    (fun d ->
      if Array.length d.Dep.dirvec >= n then
        List.iter
          (fun w ->
            match Dirvec.concrete w with
            | Some dirs ->
                let arr = Array.of_list dirs in
                let permuted = Array.map (fun old -> arr.(old)) perm in
                let rec first k =
                  if k >= n then ()
                  else
                    match permuted.(k) with
                    | Direction.Eq -> first (k + 1)
                    | Direction.Lt -> carried.(k) <- true
                    | Direction.Gt -> ()
                in
                first 0
            | None -> ())
          (Dirvec.expand d.Dep.dirvec))
    deps;
  carried

let best_permutation deps ~depth =
  if depth = 0 then None
  else
    let score perm =
      let carried = carried_positions perm deps in
      (* count innermost positions free of carried dependences *)
      let rec go k acc =
        if k < 0 || carried.(k) then acc else go (k - 1) (acc + 1)
      in
      go (depth - 1) 0
    in
    let best =
      List.fold_left
        (fun acc perm ->
          let s = score perm in
          match acc with
          | Some (_, s') when s' >= s -> acc
          | _ -> Some (perm, s))
        None
        (legal_permutations deps ~depth)
    in
    best
