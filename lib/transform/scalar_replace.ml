open Deptest
open Dt_ir

type candidate = {
  array : string;
  src_stmt : int;
  snk_stmt : int;
  distance : int;
  registers : int;
}

let suggest ?(max_distance = 4) prog deps =
  let depth_of =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (s, loops) -> Hashtbl.replace tbl s.Stmt.id (List.length loops))
      (Nest.stmts_with_loops prog);
    fun id -> Option.value (Hashtbl.find_opt tbl id) ~default:0
  in
  List.filter_map
    (fun d ->
      if d.Dep.kind <> Dep.Flow then None
      else
        let n = Array.length d.Dep.dirvec in
        (* the dependence must be loop-independent or carried by the
           innermost common loop of the two statements *)
        let innermost =
          n = min (depth_of d.Dep.src_stmt) (depth_of d.Dep.snk_stmt)
        in
        if not innermost then None
        else
          let dist_at k =
            List.find_map
              (fun (ix, x) ->
                match x with
                | Outcome.Const c when Index.depth ix = k -> Some c
                | _ -> None)
              d.Dep.distances
          in
          match d.Dep.level with
          | None -> Some { array = d.Dep.array; src_stmt = d.Dep.src_stmt;
                           snk_stmt = d.Dep.snk_stmt; distance = 0; registers = 1 }
          | Some k when k = n -> (
              (* carried by the innermost loop: need constant distance and
                 all-'=' outer positions (guaranteed by level = n) *)
              match dist_at (n - 1) with
              | Some dd when dd >= 1 && dd <= max_distance ->
                  Some
                    {
                      array = d.Dep.array;
                      src_stmt = d.Dep.src_stmt;
                      snk_stmt = d.Dep.snk_stmt;
                      distance = dd;
                      registers = dd + 1;
                    }
              | _ -> None)
          | Some _ -> None)
    deps
  |> Dt_support.Listx.dedup ~compare:Stdlib.compare

let pp ppf c =
  Format.fprintf ppf
    "%s: S%d -> S%d reuse at distance %d (%d register%s)" c.array c.src_stmt
    c.snk_stmt c.distance c.registers
    (if c.registers = 1 then "" else "s")
