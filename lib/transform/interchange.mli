(** Loop interchange and permutation legality.

    A loop permutation is legal iff every dependence's direction vector
    remains lexicographically non-negative after permuting its entries —
    the classical direction-vector criterion the paper cites as a primary
    consumer of dependence information (§2.1). Direction vectors with '*'
    entries are checked over all concrete expansions. *)

val interchange_legal : Deptest.Dep.t list -> depth:int -> level:int -> bool
(** Swap loops [level] and [level + 1] (1-based) of a nest of the given
    depth. Only dependences whose vectors span both positions matter. *)

val permutation_legal : Deptest.Dep.t list -> perm:int array -> bool
(** [perm] maps new position -> old position (0-based), over vectors of
    length [Array.length perm]. Dependences with shorter vectors are
    checked over the positions they define. *)

val reversal_legal : Deptest.Dep.t list -> level:int -> bool
(** Running loop [level] backwards is legal iff no dependence is carried
    exactly at that level (outer-carried dependences keep their order,
    and '='-direction dependences are unaffected). *)

val legal_permutations : Deptest.Dep.t list -> depth:int -> int array list
(** All legal loop permutations of a [depth]-deep nest (at most
    [depth!]); the identity is always included. *)

val best_permutation :
  Deptest.Dep.t list -> depth:int -> (int array * int) option
(** Among the legal permutations, one that maximizes the number of
    *innermost* parallel loops — the loop order a vectorizer prefers.
    Returns the permutation (new position -> old position) and how many
    of the innermost loops carry no dependence after permuting. [None]
    when [depth = 0]. *)
