(** The run ledger: an append-only JSONL file of {!Record.t}, one record
    per line, under the working tree at [.deptest/ledger.jsonl].

    Appends rewrite the whole file atomically (via
    {!Dt_obs.Artifact.write_atomic_with}), so a crash mid-append never
    truncates history. Loading tolerates corrupt lines — a ledger that
    met a partial editor save or a merge conflict still yields its valid
    records, with the casualty count reported. Compaction bounds growth:
    only the newest {!default_keep} records per configuration
    fingerprint survive an append. *)

val default_path : string
(** [".deptest/ledger.jsonl"]. *)

val default_keep : int
(** 64 records per fingerprint. *)

val load : ?path:string -> unit -> (Record.t list * int, string) result
(** Records in file order plus the number of skipped (unparsable or
    schema-invalid) lines. A missing file is an empty ledger, not an
    error; an unreadable one is [Error]. *)

val save : ?path:string -> Record.t list -> unit
(** Atomic rewrite; creates the parent directory if needed. Raises
    [Sys_error] as {!Dt_obs.Artifact.write_atomic} does. *)

val append :
  ?path:string -> ?keep:int -> Record.t -> (int, string) result
(** Load-tolerantly, add the record, compact to [keep] per fingerprint,
    rewrite atomically. Returns the corrupt-line count encountered (they
    are dropped by the rewrite). *)

val compact : ?keep:int -> Record.t list -> Record.t list
(** Keep the newest [keep] records of each fingerprint, in order. *)

val merge : Record.t list -> Record.t list -> Record.t list
(** Order-preserving union, deduplicated by full record identity —
    merging a ledger into itself is the identity. *)
