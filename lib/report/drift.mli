(** Regression detection over ledger records.

    Two comparisons, both keyed by the configuration fingerprint
    ({!Record.fingerprint} — same source, same semantic config):

    - {b verdicts} must match {e exactly}. The analysis is deterministic
      — cache-, jobs-, and wall-clock-invariant — so any change in the
      pair totals or a per-kind applied/independent count between runs
      of the same fingerprint is a real behavioral change, reported by
      test-kind name.
    - {b latency} is noisy, so it drifts only when the mean per-pair
      time exceeds the windowed baseline mean by a relative threshold
      {e and} an absolute floor, and it can be disabled outright
      ([check_latency:false], the CI gate's [--no-latency]) for
      cross-machine comparisons. *)

type counter_row = { metric : string; baseline : int; current : int }
(** One exact-count mismatch; [metric] names the quantity, e.g.
    ["pairs"], ["degraded"], or ["strong_siv independent"]. *)

type latency_row = {
  baseline_ns : float;  (** mean pair ns over the baseline window *)
  current_ns : float;
  threshold : float;
}

type group = {
  fingerprint : string;
  label : string;
  samples : int;  (** baseline records in the window *)
  counters : counter_row list;
  latency : latency_row option;
}

type t = {
  groups : group list;
  unmatched : string list;
      (** current runs with no baseline of the same fingerprint — new
          configurations, reported but never drift *)
  window : int;
}

val detect :
  ?window:int ->
  ?latency_threshold:float ->
  ?min_ns:float ->
  ?check_latency:bool ->
  baseline:Record.t list ->
  current:Record.t list ->
  unit ->
  t
(** Compare the newest record of each fingerprint in [current] against
    the last [window] (default 5) records of the same fingerprint in
    [baseline]: verdicts against the newest baseline record, latency
    against the window mean with [latency_threshold] (default 0.5 — 50%
    slower) and [min_ns] (default 10 µs absolute growth floor). *)

val diff :
  ?latency_threshold:float ->
  ?min_ns:float ->
  ?check_latency:bool ->
  baseline:Record.t ->
  current:Record.t ->
  unit ->
  counter_row list * latency_row option
(** Pairwise comparison of two records irrespective of fingerprint
    ([deptest report diff A B]). *)

val group_drifted : group -> bool
val has_drift : t -> bool
(** True when any group has a counter mismatch or a latency breach —
    the CI gate's exit-1 condition. Unmatched runs are not drift. *)

val pp : Format.formatter -> t -> unit
