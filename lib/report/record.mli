(** One ledger record: the durable summary of a single analysis run.

    A record captures what the paper's §6 study tabulated per program —
    how many reference pairs were tested, how many each test kind proved
    independent — plus the run's configuration fingerprint and enough
    volatile detail (wall clock, GC, pair-latency percentiles, the full
    metrics snapshot) to investigate a regression later. Records append
    to the JSONL ledger ({!Ledger}) and feed drift detection ({!Drift}).

    The record splits into two surfaces:
    - {!stable_json} — schema, label, fingerprint, semantic config,
      source identity, verdict histogram. Byte-identical for identical
      runs regardless of [--jobs], caching, wall clock, or GC.
    - {!to_json} — everything, including the volatile fields. *)

open Dt_obs

val schema_version : string
(** ["deptest-ledger/1"]. *)

type config = {
  strategy : string;  (** ["partition"] or ["subscript"] *)
  include_inputs : bool;
  cache : bool;
  jobs : int;  (** volatile: an engine knob, excluded from the fingerprint *)
  budget : int option;
  deadline_ms : int option;
}

type source = {
  digest : string;  (** MD5 hex of the analyzed source text *)
  bytes : int;
  routines : int;
}

type kind_row = { kind : string; applied : int; independent : int }
(** Per test-kind application counts ({!Dt_obs.Test_kind.slug} keys),
    taken from the cache-invariant {!Deptest.Counters} — the §6 columns. *)

type verdicts = {
  pairs : int;
  independent : int;
  dependent : int;
  degraded : int;
  by_kind : kind_row list;
}

type t = {
  ts_ms : int;
  label : string;
  fingerprint : string;
  config : config;
  source : source;
  verdicts : verdicts;
  wall_ns : int;
  gc_minor_words : float;
  gc_major_words : float;
  pair_ns : int;  (** total driver time across pairs, from the metrics *)
  latency_le_ns : (string * int option) list;
      (** pair-latency percentiles as inclusive histogram-bucket upper
          bounds: [("p50", Some 10_000)] means the median pair finished
          within 10 µs; [None] is the overflow bucket (> 10 ms). *)
  metrics : Json.t;  (** full [Metrics.to_json] snapshot, or [Null] *)
}

val config_of : Deptest.Analyze.Config.t -> config
(** Project an analysis configuration onto the recorded shape. *)

val source_of : ?routines:int -> string -> source
(** Identity of the analyzed text: digest and size, plus how many
    routines it parsed into (default 1). *)

val fingerprint : label:string -> config:config -> source:source -> string
(** MD5 over schema, label, the semantic config fields (strategy, input
    pairs, cache, budget, deadline — NOT [jobs]), and the source digest.
    Records with equal fingerprints are comparable runs: same input,
    same semantics, so any verdict difference is drift. *)

val make :
  ?ts_ms:int ->
  ?label:string ->
  config:config ->
  source:source ->
  counters:Deptest.Counters.t ->
  pairs:int ->
  independent:int ->
  degraded:int ->
  ?metrics:Metrics.t ->
  wall_ns:int ->
  ?gc_minor_words:float ->
  ?gc_major_words:float ->
  unit ->
  t
(** Build a record; the fingerprint is computed, the verdict histogram
    is read from [counters], and latency percentiles / [pair_ns] / the
    metrics block come from [metrics] when given. *)

val of_run :
  ?ts_ms:int ->
  ?label:string ->
  config:config ->
  source:source ->
  ?metrics:Metrics.t ->
  wall_ns:int ->
  ?gc_minor_words:float ->
  ?gc_major_words:float ->
  Deptest.Analyze.result ->
  t
(** {!make} with [pairs]/[independent]/[degraded]/[counters] summarized
    from an {!Deptest.Analyze.result}. *)

val summary_of_result : Deptest.Analyze.result -> int * int * int
(** [(pairs, independent, degraded)] of a result's pair records. *)

val to_json : t -> Json.t
val stable_json : t -> Json.t

val of_json : Json.t -> (t, string) result
(** Validating parse; rejects unknown schemas and missing or ill-typed
    fields with a message naming the field. *)

val now_ms : unit -> int
(** Wall clock in milliseconds since the epoch, for [ts_ms]. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human summary ([deptest report show]). *)
