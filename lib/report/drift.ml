type counter_row = { metric : string; baseline : int; current : int }

type latency_row = {
  baseline_ns : float;
  current_ns : float;
  threshold : float;
}

type group = {
  fingerprint : string;
  label : string;
  samples : int;
  counters : counter_row list;
  latency : latency_row option;
}

type t = { groups : group list; unmatched : string list; window : int }

let group_drifted g = g.counters <> [] || g.latency <> None
let has_drift t = List.exists group_drifted t.groups

(* ------------------------------------------------------------------ *)

let mean_pair_ns (r : Record.t) =
  if r.verdicts.pairs = 0 then 0.
  else float_of_int r.pair_ns /. float_of_int r.verdicts.pairs

let counter_rows (b : Record.t) (c : Record.t) =
  let top =
    [
      ("pairs", b.verdicts.pairs, c.verdicts.pairs);
      ("independent", b.verdicts.independent, c.verdicts.independent);
      ("dependent", b.verdicts.dependent, c.verdicts.dependent);
      ("degraded", b.verdicts.degraded, c.verdicts.degraded);
    ]
  in
  let lookup rows kind =
    match
      List.find_opt (fun (r : Record.kind_row) -> r.kind = kind) rows
    with
    | Some r -> (r.applied, r.independent)
    | None -> (0, 0)
  in
  let kinds =
    List.sort_uniq compare
      (List.map
         (fun (r : Record.kind_row) -> r.kind)
         (b.verdicts.by_kind @ c.verdicts.by_kind))
  in
  let kind_rows =
    List.concat_map
      (fun kind ->
        let ba, bi = lookup b.verdicts.by_kind kind in
        let ca, ci = lookup c.verdicts.by_kind kind in
        [ (kind ^ " applied", ba, ca); (kind ^ " independent", bi, ci) ])
      kinds
  in
  List.filter_map
    (fun (metric, baseline, current) ->
      if baseline <> current then Some { metric; baseline; current } else None)
    (top @ kind_rows)

let latency_breach ~threshold ~min_ns ~baseline_ns ~current_ns =
  current_ns > baseline_ns *. (1. +. threshold)
  && current_ns -. baseline_ns >= min_ns

let diff ?(latency_threshold = 0.5) ?(min_ns = 10_000.) ?(check_latency = true)
    ~baseline ~current () =
  let counters = counter_rows baseline current in
  let latency =
    if not check_latency then None
    else
      let baseline_ns = mean_pair_ns baseline in
      let current_ns = mean_pair_ns current in
      if
        latency_breach ~threshold:latency_threshold ~min_ns ~baseline_ns
          ~current_ns
      then Some { baseline_ns; current_ns; threshold = latency_threshold }
      else None
  in
  (counters, latency)

(* ------------------------------------------------------------------ *)

let latest_per_fingerprint records =
  let order = ref [] in
  let latest = Hashtbl.create 8 in
  List.iter
    (fun (r : Record.t) ->
      if not (Hashtbl.mem latest r.fingerprint) then
        order := r.fingerprint :: !order;
      Hashtbl.replace latest r.fingerprint r)
    records;
  List.rev_map (fun fp -> Hashtbl.find latest fp) !order

let last_n n xs =
  let len = List.length xs in
  if len <= n then xs else List.filteri (fun i _ -> i >= len - n) xs

let detect ?(window = 5) ?(latency_threshold = 0.5) ?(min_ns = 10_000.)
    ?(check_latency = true) ~baseline ~current () =
  let groups, unmatched =
    List.fold_left
      (fun (groups, unmatched) (cur : Record.t) ->
        let matching =
          List.filter
            (fun (b : Record.t) -> b.fingerprint = cur.fingerprint)
            baseline
        in
        match last_n window matching with
        | [] ->
            let name =
              if cur.label <> "" then cur.label
              else String.sub cur.fingerprint 0 12
            in
            (groups, name :: unmatched)
        | recent ->
            let newest = List.nth recent (List.length recent - 1) in
            let counters = counter_rows newest cur in
            let latency =
              if not check_latency then None
              else
                let baseline_ns =
                  List.fold_left (fun acc r -> acc +. mean_pair_ns r) 0. recent
                  /. float_of_int (List.length recent)
                in
                let current_ns = mean_pair_ns cur in
                if
                  latency_breach ~threshold:latency_threshold ~min_ns
                    ~baseline_ns ~current_ns
                then
                  Some
                    { baseline_ns; current_ns; threshold = latency_threshold }
                else None
            in
            ( {
                fingerprint = cur.fingerprint;
                label = cur.label;
                samples = List.length recent;
                counters;
                latency;
              }
              :: groups,
              unmatched ))
      ([], [])
      (latest_per_fingerprint current)
  in
  { groups = List.rev groups; unmatched = List.rev unmatched; window }

(* ------------------------------------------------------------------ *)

let pp_group ppf g =
  let short =
    if String.length g.fingerprint > 12 then String.sub g.fingerprint 0 12
    else g.fingerprint
  in
  if not (group_drifted g) then
    Format.fprintf ppf "[%s] %S: ok (%d baseline sample%s)" short g.label
      g.samples
      (if g.samples = 1 then "" else "s")
  else begin
    Format.fprintf ppf "@[<v 2>[%s] %S: DRIFT" short g.label;
    List.iter
      (fun r ->
        Format.fprintf ppf "@,%s: %d -> %d" r.metric r.baseline r.current)
      g.counters;
    (match g.latency with
    | None -> ()
    | Some l ->
        Format.fprintf ppf
          "@,mean pair latency: %.0f ns -> %.0f ns (+%.1f%%, threshold %.0f%%)"
          l.baseline_ns l.current_ns
          ((l.current_ns /. Float.max l.baseline_ns 1e-9 -. 1.) *. 100.)
          (l.threshold *. 100.));
    Format.fprintf ppf "@]"
  end

let pp ppf t =
  Format.fprintf ppf "@[<v>drift over last %d matching run%s per fingerprint:"
    t.window
    (if t.window = 1 then "" else "s");
  if t.groups = [] && t.unmatched = [] then
    Format.fprintf ppf "@,(no runs to compare)";
  List.iter (fun g -> Format.fprintf ppf "@,%a" pp_group g) t.groups;
  List.iter
    (fun name -> Format.fprintf ppf "@,%S: no baseline with this fingerprint" name)
    t.unmatched;
  Format.fprintf ppf "@]"
