open Dt_obs

let schema_version = "deptest-ledger/1"

type config = {
  strategy : string;
  include_inputs : bool;
  cache : bool;
  jobs : int;
  budget : int option;
  deadline_ms : int option;
}

type source = { digest : string; bytes : int; routines : int }
type kind_row = { kind : string; applied : int; independent : int }

type verdicts = {
  pairs : int;
  independent : int;
  dependent : int;
  degraded : int;
  by_kind : kind_row list;
}

type t = {
  ts_ms : int;
  label : string;
  fingerprint : string;
  config : config;
  source : source;
  verdicts : verdicts;
  wall_ns : int;
  gc_minor_words : float;
  gc_major_words : float;
  pair_ns : int;
  latency_le_ns : (string * int option) list;
  metrics : Json.t;
}

(* ------------------------------------------------------------------ *)
(* construction                                                        *)

let strategy_name = function
  | Deptest.Pair_test.Partition_based -> "partition"
  | Deptest.Pair_test.Subscript_by_subscript -> "subscript"

let config_of cfg =
  let module C = Deptest.Analyze.Config in
  {
    strategy = strategy_name (C.strategy cfg);
    include_inputs = C.include_inputs cfg;
    cache = C.cache_enabled cfg;
    jobs = C.jobs cfg;
    budget = C.budget cfg;
    deadline_ms = C.deadline_ms cfg;
  }

let source_of ?(routines = 1) contents =
  {
    digest = Digest.to_hex (Digest.string contents);
    bytes = String.length contents;
    routines;
  }

let fingerprint ~label ~config ~source =
  (* The identity of a run configuration: everything that can change the
     analysis *result* plus the label partitioning the ledger. [jobs] is
     deliberately excluded — it is an engine knob, and [Analyze.run] is
     jobs-invariant, so runs at --jobs 1 and --jobs 2 must land in the
     same drift group. *)
  let b = Buffer.create 128 in
  let add s =
    Buffer.add_string b s;
    Buffer.add_char b '\x00'
  in
  add schema_version;
  add label;
  add config.strategy;
  add (string_of_bool config.include_inputs);
  add (string_of_bool config.cache);
  add (match config.budget with None -> "-" | Some n -> string_of_int n);
  add (match config.deadline_ms with None -> "-" | Some n -> string_of_int n);
  add source.digest;
  Digest.to_hex (Digest.string (Buffer.contents b))

let percentiles = [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ]

let latency_of_metrics m =
  let hist = Metrics.latency_hist m in
  let bounds = Metrics.bucket_bounds_ns in
  let total = Array.fold_left ( + ) 0 hist in
  List.map
    (fun (name, q) ->
      if total = 0 then (name, Some 0)
      else
        let target = max 1 (int_of_float (Float.ceil (q *. float_of_int total))) in
        let rec go i cum =
          if i >= Array.length hist then (name, None)
          else
            let cum = cum + hist.(i) in
            if cum >= target then
              ( name,
                if i < Array.length bounds then Some (Int64.to_int bounds.(i))
                else None (* overflow bucket: no finite bound *) )
            else go (i + 1) cum
        in
        go 0 0)
    percentiles

let verdicts_of ~counters ~pairs ~independent ~degraded =
  let by_kind =
    List.map
      (fun k ->
        {
          kind = Test_kind.slug k;
          applied = Deptest.Counters.applied counters k;
          independent = Deptest.Counters.proved_indep counters k;
        })
      Test_kind.all
  in
  { pairs; independent; dependent = pairs - independent; degraded; by_kind }

let make ?(ts_ms = 0) ?(label = "") ~config ~source ~counters ~pairs
    ~independent ~degraded ?metrics ~wall_ns ?(gc_minor_words = 0.)
    ?(gc_major_words = 0.) () =
  let verdicts = verdicts_of ~counters ~pairs ~independent ~degraded in
  let latency_le_ns, pair_ns, metrics_json =
    match metrics with
    | None -> (List.map (fun (n, _) -> (n, None)) percentiles, 0, Json.Null)
    | Some m ->
        ( latency_of_metrics m,
          Int64.to_int (Metrics.pair_ns_total m),
          Metrics.to_json m )
  in
  {
    ts_ms;
    label;
    fingerprint = fingerprint ~label ~config ~source;
    config;
    source;
    verdicts;
    wall_ns;
    gc_minor_words;
    gc_major_words;
    pair_ns;
    latency_le_ns;
    metrics = metrics_json;
  }

let summary_of_result (r : Deptest.Analyze.result) =
  let pairs = List.length r.pairs in
  let independent =
    List.length
      (List.filter (fun (p : Deptest.Analyze.pair_record) -> p.independent)
         r.pairs)
  in
  let degraded =
    List.length
      (List.filter
         (fun (p : Deptest.Analyze.pair_record) -> p.meta.degraded <> None)
         r.pairs)
  in
  (pairs, independent, degraded)

let of_run ?ts_ms ?label ~config ~source ?metrics ~wall_ns ?gc_minor_words
    ?gc_major_words (result : Deptest.Analyze.result) =
  let pairs, independent, degraded = summary_of_result result in
  make ?ts_ms ?label ~config ~source ~counters:result.counters ~pairs
    ~independent ~degraded ?metrics ~wall_ns ?gc_minor_words ?gc_major_words
    ()

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let opt_int = function None -> Json.Null | Some i -> Json.Int i

let config_fields c =
  [
    ("strategy", Json.String c.strategy);
    ("include_inputs", Json.Bool c.include_inputs);
    ("cache", Json.Bool c.cache);
    ("budget", opt_int c.budget);
    ("deadline_ms", opt_int c.deadline_ms);
  ]

let source_json s =
  Json.Obj
    [
      ("digest", Json.String s.digest);
      ("bytes", Json.Int s.bytes);
      ("routines", Json.Int s.routines);
    ]

let verdicts_json v =
  Json.Obj
    [
      ("pairs", Json.Int v.pairs);
      ("independent", Json.Int v.independent);
      ("dependent", Json.Int v.dependent);
      ("degraded", Json.Int v.degraded);
      ( "by_kind",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("kind", Json.String r.kind);
                   ("applied", Json.Int r.applied);
                   ("independent", Json.Int r.independent);
                 ])
             v.by_kind) );
    ]

let stable_json t =
  (* The deterministic subset: identical for byte-identical runs of the
     same configuration regardless of wall clock, GC, or --jobs. This is
     the surface the bench's jobs-parity assertion and the tests compare
     byte-for-byte. *)
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ("label", Json.String t.label);
      ("fingerprint", Json.String t.fingerprint);
      ("config", Json.Obj (config_fields t.config));
      ("source", source_json t.source);
      ("verdicts", verdicts_json t.verdicts);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ("ts_ms", Json.Int t.ts_ms);
      ("label", Json.String t.label);
      ("fingerprint", Json.String t.fingerprint);
      ( "config",
        Json.Obj (config_fields t.config @ [ ("jobs", Json.Int t.config.jobs) ])
      );
      ("source", source_json t.source);
      ("verdicts", verdicts_json t.verdicts);
      ("wall_ns", Json.Int t.wall_ns);
      ( "gc",
        Json.Obj
          [
            ("minor_words", Json.Float t.gc_minor_words);
            ("major_words", Json.Float t.gc_major_words);
          ] );
      ("pair_ns", Json.Int t.pair_ns);
      ( "latency_le_ns",
        Json.Obj (List.map (fun (n, v) -> (n, opt_int v)) t.latency_le_ns) );
      ("metrics", t.metrics);
    ]

let ( let* ) = Result.bind

let field name conv j =
  match Json.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let to_opt_int = function
  | Json.Null -> Some None
  | Json.Int i -> Some (Some i)
  | _ -> None

let config_of_json j =
  let* strategy = field "strategy" Json.to_str j in
  let* include_inputs =
    field "include_inputs" (function Json.Bool b -> Some b | _ -> None) j
  in
  let* cache = field "cache" (function Json.Bool b -> Some b | _ -> None) j in
  let* jobs = field "jobs" Json.to_int j in
  let* budget = field "budget" to_opt_int j in
  let* deadline_ms = field "deadline_ms" to_opt_int j in
  Ok { strategy; include_inputs; cache; jobs; budget; deadline_ms }

let source_of_json j =
  let* digest = field "digest" Json.to_str j in
  let* bytes = field "bytes" Json.to_int j in
  let* routines = field "routines" Json.to_int j in
  Ok { digest; bytes; routines }

let kind_row_of_json j =
  let* kind = field "kind" Json.to_str j in
  let* applied = field "applied" Json.to_int j in
  let* independent = field "independent" Json.to_int j in
  Ok { kind; applied; independent }

let verdicts_of_json j =
  let* pairs = field "pairs" Json.to_int j in
  let* independent = field "independent" Json.to_int j in
  let* dependent = field "dependent" Json.to_int j in
  let* degraded = field "degraded" Json.to_int j in
  let* rows = field "by_kind" Json.to_list j in
  let* by_kind =
    List.fold_left
      (fun acc row ->
        let* acc = acc in
        let* r = kind_row_of_json row in
        Ok (r :: acc))
      (Ok []) rows
  in
  Ok { pairs; independent; dependent; degraded; by_kind = List.rev by_kind }

let of_json j =
  let* schema = field "schema" Json.to_str j in
  if schema <> schema_version then
    Error (Printf.sprintf "unsupported ledger schema %S" schema)
  else
    let* ts_ms = field "ts_ms" Json.to_int j in
    let* label = field "label" Json.to_str j in
    let* fingerprint = field "fingerprint" Json.to_str j in
    let* config = Result.bind (field "config" Option.some j) config_of_json in
    let* source = Result.bind (field "source" Option.some j) source_of_json in
    let* verdicts =
      Result.bind (field "verdicts" Option.some j) verdicts_of_json
    in
    let* wall_ns = field "wall_ns" Json.to_int j in
    let* gc = field "gc" Option.some j in
    let* gc_minor_words = field "minor_words" Json.to_float gc in
    let* gc_major_words = field "major_words" Json.to_float gc in
    let* pair_ns = field "pair_ns" Json.to_int j in
    let* latency =
      field "latency_le_ns"
        (function Json.Obj fields -> Some fields | _ -> None)
        j
    in
    let* latency_le_ns =
      List.fold_left
        (fun acc (name, v) ->
          let* acc = acc in
          match to_opt_int v with
          | Some v -> Ok ((name, v) :: acc)
          | None -> Error "latency percentile has the wrong type")
        (Ok []) latency
    in
    let metrics = Option.value ~default:Json.Null (Json.member "metrics" j) in
    Ok
      {
        ts_ms;
        label;
        fingerprint;
        config;
        source;
        verdicts;
        wall_ns;
        gc_minor_words;
        gc_major_words;
        pair_ns;
        latency_le_ns = List.rev latency_le_ns;
        metrics;
      }

let now_ms () = int_of_float (Unix.gettimeofday () *. 1000.)

let pp ppf t =
  let pct name =
    match List.assoc_opt name t.latency_le_ns with
    | Some (Some ns) -> Printf.sprintf "<=%dns" ns
    | Some None -> ">10ms"
    | None -> "-"
  in
  Format.fprintf ppf
    "@[<v>%s  label=%S  fingerprint=%s@,\
     config: strategy=%s inputs=%b cache=%b jobs=%d budget=%s deadline=%s@,\
     source: %s (%d bytes, %d routine%s)@,\
     verdicts: %d pairs, %d independent, %d dependent, %d degraded@,\
     wall: %.3f ms   pair p50 %s  p90 %s  p99 %s@]" schema_version t.label
    t.fingerprint t.config.strategy t.config.include_inputs t.config.cache
    t.config.jobs
    (match t.config.budget with None -> "-" | Some n -> string_of_int n)
    (match t.config.deadline_ms with None -> "-" | Some n -> string_of_int n)
    t.source.digest t.source.bytes t.source.routines
    (if t.source.routines = 1 then "" else "s")
    t.verdicts.pairs t.verdicts.independent t.verdicts.dependent
    t.verdicts.degraded
    (float_of_int t.wall_ns /. 1e6)
    (pct "p50") (pct "p90") (pct "p99")
