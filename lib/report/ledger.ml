open Dt_obs

let default_path = ".deptest/ledger.jsonl"
let default_keep = 64

let ensure_parent path =
  let dir = Filename.dirname path in
  if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ?(path = default_path) () =
  if not (Sys.file_exists path) then Ok ([], 0)
  else
    match read_file path with
    | exception Sys_error e -> Error e
    | content ->
        let records, skipped =
          List.fold_left
            (fun (rs, skipped) line ->
              let line = String.trim line in
              if line = "" then (rs, skipped)
              else
                match Json.of_string line with
                | Error _ -> (rs, skipped + 1)
                | Ok j -> (
                    match Record.of_json j with
                    | Ok r -> (r :: rs, skipped)
                    | Error _ -> (rs, skipped + 1)))
            ([], 0)
            (String.split_on_char '\n' content)
        in
        Ok (List.rev records, skipped)

let save ?(path = default_path) records =
  ensure_parent path;
  Artifact.write_atomic_with path (fun oc ->
      List.iter
        (fun r ->
          output_string oc (Json.to_string (Record.to_json r));
          output_char oc '\n')
        records)

let compact ?(keep = default_keep) records =
  (* Keep the newest [keep] records per fingerprint, preserving file
     order: count each fingerprint's records, then drop occurrences from
     the front until at most [keep] remain. *)
  let total = Hashtbl.create 8 in
  List.iter
    (fun (r : Record.t) ->
      Hashtbl.replace total r.fingerprint
        (1 + Option.value ~default:0 (Hashtbl.find_opt total r.fingerprint)))
    records;
  let dropped = Hashtbl.create 8 in
  List.filter
    (fun (r : Record.t) ->
      let n = Hashtbl.find total r.fingerprint in
      let d = Option.value ~default:0 (Hashtbl.find_opt dropped r.fingerprint) in
      if n - d > keep then begin
        Hashtbl.replace dropped r.fingerprint (d + 1);
        false
      end
      else true)
    records

let append ?(path = default_path) ?(keep = default_keep) record =
  match load ~path () with
  | Error e -> Error e
  | Ok (records, skipped) ->
      save ~path (compact ~keep (records @ [ record ]));
      Ok skipped

let merge a b =
  (* Union preserving [a]'s order, then [b]'s records not already present
     (full-JSON identity, so re-merging a baseline is idempotent). *)
  let seen = Hashtbl.create 16 in
  let key r = Json.to_string (Record.to_json r) in
  List.iter (fun r -> Hashtbl.replace seen (key r) ()) a;
  a
  @ List.filter
      (fun r ->
        let k = key r in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.replace seen k ();
          true
        end)
      b
