(* Mini-Fortran transcriptions of eispack-style eigenvalue kernels. The
   real library is the paper's richest source of *coupled* subscripts:
   transposed accesses A(i,j) vs A(j,i), diagonals A(i,i), and skewed
   combinations — exactly what the Delta test and RDIV propagation are
   for. *)

let entries =
  [
    ( "tred2_accum",
      {|
      SUBROUTINE TRED2A
      DO 30 I = 1, N
        DO 20 J = 1, I
          Z(I,J) = A(I,J)
   20   CONTINUE
   30 CONTINUE
      END
|} );
    ( "tred2_sym",
      {|
      SUBROUTINE TRED2S
      DO 20 J = 1, N
        DO 10 K = 1, N
          Z(J,K) = Z(J,K) - Z(K,J)*E(K)
   10   CONTINUE
   20 CONTINUE
      END
|} );
    ( "tql2_shift",
      {|
      SUBROUTINE TQL2
      DO 10 I = L, N
        D(I) = D(I) - H
   10 CONTINUE
      DO 30 II = 1, N
        DO 20 K = 1, N-1
          Z(K,II) = Z(K+1,II)*S + Z(K,II)*C
   20   CONTINUE
   30 CONTINUE
      END
|} );
    ( "balanc_swap",
      {|
      SUBROUTINE BALANC
      DO 10 I = 1, L
        A(I,J) = A(I,J)*G
   10 CONTINUE
      DO 20 I = K, N
        A(J,I) = A(J,I)*F
   20 CONTINUE
      END
|} );
    ( "hqr_diag",
      {|
      SUBROUTINE HQR
      DO 10 I = 1, N
        H(I,I) = H(I,I) - X
   10 CONTINUE
      DO 30 J = 1, N
        DO 20 I = 1, J
          H(I,J) = H(I,J) + H(J,I)*T
   20   CONTINUE
   30 CONTINUE
      END
|} );
    ( "reduc_chol",
      {|
      SUBROUTINE REDUC
      DO 30 I = 1, N
        DO 20 J = I, N
          X = A(I,J)
          DO 10 K = 1, I-1
            X = X - B(I,K)*A(J,K)
   10     CONTINUE
          A(J,I) = X
   20   CONTINUE
   30 CONTINUE
      END
|} );
    ( "elmhes_exchange",
      {|
      SUBROUTINE ELMHES
      DO 20 M = K, L
        X = A(M,M-1)
        DO 10 I = M, L
          Y = A(I,M-1)
          A(I,M-1) = A(I,M-1) - Y*X
   10   CONTINUE
   20 CONTINUE
      END
|} );
    ( "transpose_update",
      {|
      SUBROUTINE TRUPD
      DO 20 I = 1, N
        DO 10 J = 1, N
          A(I,J) = A(J,I) + B(I,J)
   10   CONTINUE
   20 CONTINUE
      END
|} );
  ]
