(* Mini-Fortran transcriptions of linpack-style BLAS/factorization kernels.
   These reproduce the subscript shapes of the real library: almost all
   separable, strong or weak SIV, one and two dimensional. *)

let entries =
  [
    ( "daxpy",
      {|
      SUBROUTINE DAXPY
      DO 10 I = 1, N
        DY(I) = DY(I) + DA*DX(I)
   10 CONTINUE
      END
|} );
    ( "dscal",
      {|
      SUBROUTINE DSCAL
      DO 10 I = 1, N
        DX(I) = DA*DX(I)
   10 CONTINUE
      END
|} );
    ( "ddot",
      {|
      SUBROUTINE DDOT
      DTEMP = 0
      DO 10 I = 1, N
        DTEMP = DTEMP + DX(I)*DY(I)
   10 CONTINUE
      END
|} );
    ( "dgefa",
      {|
      SUBROUTINE DGEFA
      DO 60 K = 1, NM1
        T = A(K+1,K)
        DO 30 I = K+1, N
          A(I,K) = T*A(I,K)
   30   CONTINUE
        DO 50 J = K+1, N
          T = A(K,J)
          DO 40 I = K+1, N
            A(I,J) = A(I,J) + T*A(I,K)
   40     CONTINUE
   50   CONTINUE
   60 CONTINUE
      END
|} );
    ( "dgesl",
      {|
      SUBROUTINE DGESL
      DO 20 K = 1, NM1
        T = B(K)
        DO 10 I = K+1, N
          B(I) = B(I) + T*A(I,K)
   10   CONTINUE
   20 CONTINUE
      DO 40 KB = 1, NM1
        B(N-KB+1) = B(N-KB+1)/A(N-KB+1,N-KB+1)
        T = B(N-KB+1)
        DO 30 I = 1, N-KB
          B(I) = B(I) + T*A(I,N-KB+1)
   30   CONTINUE
   40 CONTINUE
      END
|} );
    ( "dmxpy",
      {|
      SUBROUTINE DMXPY
      DO 20 J = 1, N2
        DO 10 I = 1, N1
          Y(I) = Y(I) + X(J)*M(I,J)
   10   CONTINUE
   20 CONTINUE
      END
|} );
    ( "dtrsl",
      {|
      SUBROUTINE DTRSL
      DO 20 J = 1, N
        B(J) = B(J)/T(J,J)
        DO 10 I = J+1, N
          B(I) = B(I) - T(I,J)*B(J)
   10   CONTINUE
   20 CONTINUE
      END
|} );
    ( "dpofa",
      {|
      SUBROUTINE DPOFA
      DO 30 J = 1, N
        S = 0
        DO 10 K = 1, J-1
          S = S + T(K,J)*T(K,J)
   10   CONTINUE
        A(J,J) = A(J,J) - S
        DO 20 I = J+1, N
          A(J,I) = A(J,I) - A(J,J)
   20   CONTINUE
   30 CONTINUE
      END
|} );
    ( "dger_rank1",
      {|
      SUBROUTINE DGER
      DO 20 J = 1, N
        DO 10 I = 1, M
          A(I,J) = A(I,J) + X(I)*Y(J)
   10   CONTINUE
   20 CONTINUE
      END
|} );
    ( "dtrmv_upper",
      {|
      SUBROUTINE DTRMV
      DO 20 J = 1, N
        DO 10 I = 1, J-1
          X(I) = X(I) + T*A(I,J)
   10   CONTINUE
        X(J) = X(J)*A(J,J)
   20 CONTINUE
      END
|} );
    ( "unroll4",
      {|
      SUBROUTINE UNROLL4
      DO 10 I = 1, N, 4
        Y(I) = Y(I) + A*X(I)
        Y(I+1) = Y(I+1) + A*X(I+1)
        Y(I+2) = Y(I+2) + A*X(I+2)
        Y(I+3) = Y(I+3) + A*X(I+3)
   10 CONTINUE
      END
|} );
  ]
