(* The Livermore Fortran Kernels (McMahon) most relevant to dependence
   testing, in the mini-Fortran dialect: recurrences, stencils, reductions
   and 2-D sweeps. Kernel numbering follows the original suite. *)

let entries =
  [
    ( "lfk01_hydro",
      {|
      SUBROUTINE LFK01
      DO 10 K = 1, N
        X(K) = Q + Y(K)*(R*Z(K+10) + T*Z(K+11))
   10 CONTINUE
      END
|} );
    ( "lfk02_iccg",
      {|
      SUBROUTINE LFK02
      DO 10 K = 1, N, 2
        X(K) = X(K) - V(K)*X(K+1)
   10 CONTINUE
      END
|} );
    ( "lfk03_inner",
      {|
      SUBROUTINE LFK03
      Q = 0
      DO 10 K = 1, N
        Q = Q + Z(K)*X(K)
   10 CONTINUE
      END
|} );
    ( "lfk05_tridiag",
      {|
      SUBROUTINE LFK05
      DO 10 I = 2, N
        X(I) = Z(I)*(Y(I) - X(I-1))
   10 CONTINUE
      END
|} );
    ( "lfk06_linrec",
      {|
      SUBROUTINE LFK06
      DO 20 I = 2, N
        W(I) = 0
        DO 10 K = 1, I-1
          W(I) = W(I) + B(I,K)*W(I-K)
   10   CONTINUE
   20 CONTINUE
      END
|} );
    ( "lfk07_eqstate",
      {|
      SUBROUTINE LFK07
      DO 10 K = 1, N
        X(K) = U(K) + R*(Z(K) + R*Y(K)) + T*(U(K+3) + R*(U(K+2) + R*U(K+1)))
   10 CONTINUE
      END
|} );
    ( "lfk08_adi",
      {|
      SUBROUTINE LFK08
      DO 20 KX = 2, 3
        DO 10 KY = 2, N
          DU1 = U1(KX,KY+1) - U1(KX,KY-1)
          U1(KX+1,KY) = U1(KX-1,KY) + A11*DU1
   10   CONTINUE
   20 CONTINUE
      END
|} );
    ( "lfk09_integrate",
      {|
      SUBROUTINE LFK09
      DO 10 I = 1, N
        PX(I) = DM28*PX(I+12) + DM27*PX(I+11) + DM26*PX(I+10)
   10 CONTINUE
      END
|} );
    ( "lfk11_firstsum",
      {|
      SUBROUTINE LFK11
      DO 10 K = 2, N
        X(K) = X(K-1) + Y(K)
   10 CONTINUE
      END
|} );
    ( "lfk12_firstdiff",
      {|
      SUBROUTINE LFK12
      DO 10 K = 1, N
        X(K) = Y(K+1) - Y(K)
   10 CONTINUE
      END
|} );
    ( "lfk18_hydro2d",
      {|
      SUBROUTINE LFK18
      DO 20 K = 2, KN
        DO 10 J = 2, JN
          ZA(J,K) = (ZP(J-1,K+1) + ZQ(J-1,K+1) - ZP(J-1,K) - ZQ(J-1,K))
   10   CONTINUE
   20 CONTINUE
      DO 40 K = 2, KN
        DO 30 J = 2, JN
          ZU(J,K) = ZU(J,K) + S*(ZA(J,K)*(ZZ(J,K) - ZZ(J+1,K)) - ZA(J-1,K)*(ZZ(J,K) - ZZ(J-1,K)))
   30   CONTINUE
   40 CONTINUE
      END
|} );
    ( "lfk21_matmul",
      {|
      SUBROUTINE LFK21
      DO 30 K = 1, 25
        DO 20 I = 1, 25
          DO 10 J = 1, N
            PX(I,J) = PX(I,J) + VY(I,K)*CX(K,J)
   10     CONTINUE
   20   CONTINUE
   30 CONTINUE
      END
|} );
    ( "lfk23_implicit",
      {|
      SUBROUTINE LFK23
      DO 20 J = 2, 6
        DO 10 K = 2, N
          QA = ZA(K,J+1)*ZR(K) + ZA(K,J-1)*ZB(K) + ZA(K+1,J)*ZU(K) + ZA(K-1,J)*ZV(K)
          ZA(K,J) = ZA(K,J) + S*(QA - ZA(K,J))
   10   CONTINUE
   20 CONTINUE
      END
|} );
    ( "lfk04_banded",
      {|
      SUBROUTINE LFK04
      DO 10 K = 7, 107, 50
        XZ(K) = Y(5)*(XZ(K) - X(K-6)*Y(4) - X(K-5)*Y(3))
   10 CONTINUE
      END
|} );
    ( "lfk10_diffpredict",
      {|
      SUBROUTINE LFK10
      DO 10 I = 1, N
        BR = CX(5,I) - PX(5,I)
        PX(5,I) = CX(5,I)
        CR = BR - PX(6,I)
        PX(6,I) = BR
        PX(7,I) = CR - PX(7,I)
   10 CONTINUE
      END
|} );
    ( "lfk14_particle",
      {|
      SUBROUTINE LFK14
      DO 10 K = 1, N
        IX = GRD(K)
        XI = EX(IX)
        VX(K) = VX(K) + XI
        RH(IX) = RH(IX) + VX(K)
   10 CONTINUE
      END
|} );
    ( "lfk_skewed",
      {|
      SUBROUTINE LFKSKEW
      DO 20 I = 2, N
        DO 10 J = 2, M
          A(I,J) = A(I-1,J) + A(I,J-1)
   10   CONTINUE
   20 CONTINUE
      END
|} );
  ]
