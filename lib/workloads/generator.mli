(** Seeded random generation of loop nests and reference pairs.

    Drives the property-test harness (tests compare the analyzer against
    the brute-force oracle on thousands of random cases) and the stress
    benchmarks. All generation is deterministic in the given state. *)

open Dt_ir

type config = {
  max_depth : int;  (** loop nest depth, >= 1 *)
  max_dims : int;  (** array rank, >= 1 *)
  max_coeff : int;  (** |subscript coefficient| bound *)
  max_const : int;  (** |additive constant| bound *)
  max_bound : int;  (** loop upper bounds drawn from 1..max_bound *)
  triangular : bool;  (** allow inner bounds referencing outer indices *)
  symbolic_hi : bool;  (** outermost upper bound becomes the symbol N *)
}

val default : config
(** depth <= 3, rank <= 3, coefficients <= 2, constants <= 6, bounds <= 6,
    triangular off — small enough for exhaustive brute-force checking. *)

val loops : Random.State.t -> config -> Loop.t list
(** A random concrete-bound loop nest, outermost first. *)

val subscript : Random.State.t -> config -> Index.t list -> Affine.t
val aref : Random.State.t -> config -> string -> Index.t list -> Aref.t

val ref_pair : Random.State.t -> config -> Aref.t * Aref.t * Loop.t list
(** Two references to the same array under a common nest. *)

val program : Random.State.t -> config -> stmts:int -> Nest.program
(** A random program: a nest with [stmts] assignments over a small pool of
    arrays. *)
