(* Application-style programs standing in for the paper's RiCEPS / Perfect
   / SPEC suites: larger routines with the dependence-testing feature mix
   the paper reports for real codes — dominated by ZIV and strong SIV,
   sprinkled with symbolic bounds, stencils, reductions, a few coupled and
   nonlinear subscripts. *)

let riceps =
  [
    ( "stencil_jacobi",
      {|
      PROGRAM JACOBI
      DO 20 I = 2, N-1
        DO 10 J = 2, N-1
          V(I,J) = (U(I-1,J) + U(I+1,J) + U(I,J-1) + U(I,J+1))/4
   10   CONTINUE
   20 CONTINUE
      DO 40 I = 2, N-1
        DO 30 J = 2, N-1
          U(I,J) = V(I,J)
   30   CONTINUE
   40 CONTINUE
      END
|} );
    ( "gauss_seidel",
      {|
      PROGRAM SEIDEL
      DO 20 I = 2, N-1
        DO 10 J = 2, N-1
          U(I,J) = (U(I-1,J) + U(I+1,J) + U(I,J-1) + U(I,J+1))/4
   10   CONTINUE
   20 CONTINUE
      END
|} );
    ( "redblack",
      {|
      PROGRAM REDBLACK
      DO 10 I = 1, N
        U(2*I) = U(2*I-1) + U(2*I+1)
   10 CONTINUE
      DO 20 I = 1, N
        U(2*I+1) = U(2*I) + U(2*I+2)
   20 CONTINUE
      END
|} );
    ( "fft_butterfly",
      {|
      PROGRAM BUTTERFLY
      DO 10 I = 1, K
        XR(I) = XR(I) + XR(I+K)
        XR(I+K) = XR(I) - 2*XR(I+K)
   10 CONTINUE
      END
|} );
    ( "convolve",
      {|
      PROGRAM CONVOLVE
      DO 20 I = 1, N
        DO 10 J = 1, M
          Y(I+J) = Y(I+J) + X(I)*W(J)
   10   CONTINUE
   20 CONTINUE
      END
|} );
    ( "histogram",
      {|
      PROGRAM HIST
      DO 10 I = 1, N
        H(KEY(I)) = H(KEY(I)) + 1
   10 CONTINUE
      END
|} );
    ( "prefix_blocked",
      {|
      PROGRAM PREFIX
      DO 10 I = 2, N
        S(I) = S(I-1) + X(I)
   10 CONTINUE
      DO 20 I = 1, N
        Y(I) = S(I)*SCALE
   20 CONTINUE
      END
|} );
    ( "multigrid_prolong",
      {|
      PROGRAM PROLONG
      DO 10 I = 1, N
        UF(2*I-1) = UC(I)
        UF(2*I) = (UC(I) + UC(I+1))/2
   10 CONTINUE
      END
|} );
    ( "boundary_wrap",
      {|
      PROGRAM WRAP
      DO 10 I = 2, N-1
        A(I,1) = A(I,N-1)
        A(I,N) = A(I,2)
   10 CONTINUE
      END
|} );
    ( "solver_pipeline",
      {|
      SUBROUTINE RESID
      DO 10 I = 2, N-1
        R(I) = F(I) - U(I-1) + 2*U(I) - U(I+1)
   10 CONTINUE
      END
      SUBROUTINE RELAX
      DO 10 I = 2, N-1
        U(I) = U(I) + W*R(I)
   10 CONTINUE
      END
      SUBROUTINE NORM2
      S = 0
      DO 10 I = 1, N
        S = S + R(I)*R(I)
   10 CONTINUE
      END
|} );
  ]

let perfect =
  [
    ( "tomcatv_like",
      {|
      PROGRAM TOMCATV
      DO 20 J = 2, N
        DO 10 I = 2, N
          X(I,J) = X(I,J) - RX(I,J)
          Y(I,J) = Y(I,J) - RY(I,J)
   10   CONTINUE
   20 CONTINUE
      DO 30 I = 1, N
        X(I,N) = X(I,1) + XCOR
   30 CONTINUE
      END
|} );
    ( "flo52_flux",
      {|
      PROGRAM FLO52
      DO 20 J = 2, JL
        DO 10 I = 2, IL
          FS(I,J) = FS(I,J-1) + DIS(I,J)*(W(I,J) - W(I,J-1))
   10   CONTINUE
   20 CONTINUE
      END
|} );
    ( "trfd_integrals",
      {|
      PROGRAM TRFD
      DO 30 M = 1, NUM
        DO 20 I = 1, NORB
          DO 10 J = 1, I
            XIJ(J) = XIJ(J) + V(I,M)*XRS(I,J)
   10     CONTINUE
   20   CONTINUE
   30 CONTINUE
      END
|} );
    ( "adm_smooth",
      {|
      PROGRAM ADM
      DO 20 K = 2, N-1
        DO 10 I = 2, M-1
          Q(I,K) = Q(I,K) + C*(Q(I+1,K) - 2*Q(I,K) + Q(I-1,K))
   10   CONTINUE
   20 CONTINUE
      END
|} );
    ( "ocean_transpose",
      {|
      PROGRAM OCEAN
      DO 20 I = 1, N
        DO 10 J = 1, I-1
          WORK(I,J) = GRID(J,I)
          GRID(I,J) = GRID(I,J)*SCALE
   10   CONTINUE
   20 CONTINUE
      END
|} );
  ]

let spec =
  [
    ( "swm_shallow",
      {|
      PROGRAM SWM
      DO 20 J = 1, N
        DO 10 I = 1, M
          CU(I+1,J) = (P(I+1,J) + P(I,J))*U(I+1,J)
          CV(I,J+1) = (P(I,J+1) + P(I,J))*V(I,J+1)
          Z(I+1,J+1) = (V(I+1,J+1) - V(I,J+1) - U(I+1,J+1) + U(I+1,J))/(P(I,J) + P(I+1,J+1))
          H(I,J) = P(I,J) + U(I+1,J)*U(I,J) + V(I,J+1)*V(I,J)
   10   CONTINUE
   20 CONTINUE
      END
|} );
    ( "matrix300_saxpy",
      {|
      PROGRAM MAT300
      DO 30 J = 1, N
        DO 20 K = 1, N
          T = B(K,J)
          DO 10 I = 1, N
            C(I,J) = C(I,J) + T*A(I,K)
   10     CONTINUE
   20   CONTINUE
   30 CONTINUE
      END
|} );
    ( "nasa7_cholesky",
      {|
      PROGRAM NASA7
      DO 30 I = 1, N
        DO 20 J = I+1, N
          DO 10 K = 1, I-1
            A(J,I) = A(J,I) - A(I,K)*A(J,K)
   10     CONTINUE
   20   CONTINUE
   30 CONTINUE
      END
|} );
    ( "doduc_interp",
      {|
      PROGRAM DODUC
      DO 10 I = 2, N
        U(I) = U(I-1)*C1 + V(I)*C2
        V(I) = U(I)*C3
   10 CONTINUE
      END
|} );
    ( "fpppp_shift",
      {|
      PROGRAM FPPPP
      DO 10 I = 1, NL
        XX(I) = XX(I+4) + T*XX(I+8)
   10 CONTINUE
      END
|} );
  ]
