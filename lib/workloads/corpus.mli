(** The benchmark corpus: mini-Fortran programs organized into suites that
    mirror the paper's evaluation (RiCEPS, Perfect, SPEC, eispack,
    linpack), plus the Livermore kernels, the CDL vectorizer loops, and
    every worked example from the paper's text. *)

type entry = {
  suite : string;
  name : string;
  source : string;
  programs : Dt_ir.Nest.program list Lazy.t;
      (** one per routine of the compilation unit *)
}

val suites : string list
(** In the paper's Table-1 order where applicable. *)

val all : entry list
val by_suite : string -> entry list
val find : suite:string -> name:string -> entry option
val find_exn : suite:string -> name:string -> entry
val program : entry -> Dt_ir.Nest.program
(** The first (usually only) routine. *)

val programs : entry -> Dt_ir.Nest.program list
val total_programs : int
