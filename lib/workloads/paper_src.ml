(* Every worked example from the paper's running text, as programs. These
   back the integration tests: each comes with the behaviour the paper
   states (see test/test_paper_examples.ml). *)

let entries =
  [
    (* section 2.2: Livermore-style skewed kernel; strong SIV gives
       distance vectors (1,0) and (0,1). *)
    ( "livermore_skewed",
      {|
      PROGRAM PSKEW
      DO 20 I = 2, N
        DO 10 J = 2, N
          A(I,J) = A(I-1,J) + A(I,J-1)
   10   CONTINUE
   20 CONTINUE
      END
|} );
    (* section 4.2: weak-zero SIV; tomcatv-style first-iteration source;
       loop peeling removes it. *)
    ( "tomcatv_weakzero",
      {|
      PROGRAM PWZERO
      DO 10 I = 1, N
        Y(I) = Y(1) + B(I)
   10 CONTINUE
      END
|} );
    (* section 4.2: weak-crossing SIV from the CDL suite; all dependences
       cross iteration (N+1)/2; loop splitting removes them. *)
    ( "cdl_weakcrossing",
      {|
      PROGRAM PWCROSS
      DO 10 I = 1, N
        A(I) = A(N-I+1) + B(I)
   10 CONTINUE
      END
|} );
    (* section 2.2 / 5: coupled subscripts where subscript-by-subscript
       testing reports the nonexistent direction vector (<) but constraint
       intersection (the Delta test) proves independence:
       <i+1, i> and <i+2, i> force d = 1 and d = 2 simultaneously. *)
    ( "delta_intersect_indep",
      {|
      PROGRAM PDELTA1
      DO 10 I = 1, 100
        A(I+1,I+2) = A(I,I) + B(I)
   10 CONTINUE
      END
|} );
    (* section 5.3.1: SIV constraint propagated into an MIV subscript
       reduces it to SIV. *)
    ( "delta_propagate",
      {|
      PROGRAM PDELTA2
      DO 20 I = 1, N
        DO 10 J = 1, N
          A(I+1,I+J) = A(I,I+J-1) + B(I,J)
   10   CONTINUE
   20 CONTINUE
      END
|} );
    (* section 5.3.2: coupled RDIV subscripts (transposed access): only
       direction vectors of the form (<,>), (=,=), (>,<) are legal. *)
    ( "rdiv_transpose",
      {|
      PROGRAM PRDIV
      DO 20 I = 1, N
        DO 10 J = 1, N
          A(I,J) = A(J,I)*S
   10   CONTINUE
   20 CONTINUE
      END
|} );
    (* section 4.4: the GCD test disproves dependence: coefficients' gcd 2
       does not divide the constant 5. *)
    ( "gcd_indep",
      {|
      PROGRAM PGCD
      DO 10 I = 1, N
        A(2*I) = A(2*I+5) + B(I)
   10 CONTINUE
      END
|} );
    (* section 4.3: triangular nest; index ranges resolve the inner
       bound. *)
    ( "triangular",
      {|
      PROGRAM PTRI
      DO 20 I = 1, N
        DO 10 J = I, N
          A(J) = A(J) + B(I,J)
   10   CONTINUE
   20 CONTINUE
      END
|} );
    (* section 4.5: symbolic additive constants cancel: independence of
       A(I+N) and A(I) cannot be proven, but A(I+N) vs A(I+N+1) can. *)
    ( "symbolic_cancel",
      {|
      PROGRAM PSYM
      DO 10 I = 1, N
        A(I+K1) = A(I+K1+1) + B(I)
   10 CONTINUE
      END
|} );
  ]
