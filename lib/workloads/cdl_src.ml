(* Loops in the style of the Callahan-Dongarra-Levine vectorizer test
   suite [13]: each kernel isolates one dependence-testing capability.
   Names follow the suite's s-numbering conventions loosely. *)

let entries =
  [
    ( "s111_stride2",
      {|
      SUBROUTINE S111
      DO 10 I = 2, N, 2
        A(I) = A(I-1) + B(I)
   10 CONTINUE
      END
|} );
    ( "s112_reverse",
      {|
      SUBROUTINE S112
      DO 10 I = 1, N-1
        A(N-I+1) = A(N-I) + B(I)
   10 CONTINUE
      END
|} );
    ( "s113_weakzero",
      {|
      SUBROUTINE S113
      DO 10 I = 2, N
        A(I) = A(1) + B(I)
   10 CONTINUE
      END
|} );
    ( "s114_triangular",
      {|
      SUBROUTINE S114
      DO 20 I = 1, N
        DO 10 J = 1, I-1
          A(I,J) = A(J,I) + B(I,J)
   10   CONTINUE
   20 CONTINUE
      END
|} );
    ( "s115_backsubst",
      {|
      SUBROUTINE S115
      DO 20 J = 1, N
        DO 10 I = J+1, N
          A(I) = A(I) - A(J)*B(I,J)
   10   CONTINUE
   20 CONTINUE
      END
|} );
    ( "s116_fivepoint",
      {|
      SUBROUTINE S116
      DO 10 I = 1, N-5, 5
        A(I) = A(I+1)*A(I)
        A(I+1) = A(I+2)*A(I+1)
        A(I+2) = A(I+3)*A(I+2)
        A(I+3) = A(I+4)*A(I+3)
        A(I+4) = A(I+5)*A(I+4)
   10 CONTINUE
      END
|} );
    ( "s118_crossing",
      {|
      SUBROUTINE S118
      DO 10 I = 1, N
        A(I) = A(N-I+1) + B(I)
   10 CONTINUE
      END
|} );
    ( "s119_coupled",
      {|
      SUBROUTINE S119
      DO 20 I = 2, N
        DO 10 J = 2, M
          A(I,J) = A(I-1,J-1) + B(I,J)
   10   CONTINUE
   20 CONTINUE
      END
|} );
    ( "s121_independent",
      {|
      SUBROUTINE S121
      DO 10 I = 1, N
        A(2*I) = A(2*I-1) + B(I)
   10 CONTINUE
      END
|} );
    ( "s122_stride_sym",
      {|
      SUBROUTINE S122
      DO 10 I = 1, N
        A(I+N) = A(I) + B(I)
   10 CONTINUE
      END
|} );
    ( "s126_gcd",
      {|
      SUBROUTINE S126
      DO 10 I = 1, N
        A(2*I) = A(2*I+5) + B(I)
   10 CONTINUE
      END
|} );
    ( "s131_scalarexp",
      {|
      SUBROUTINE S131
      DO 10 I = 1, N-1
        A(I) = A(I+M) + B(I)
   10 CONTINUE
      END
|} );
    ( "s141_wavefront",
      {|
      SUBROUTINE S141
      DO 20 I = 2, N
        DO 10 J = 2, N
          A(I,J) = A(I-1,J) + A(I-1,J-1) + A(I,J-1)
   10   CONTINUE
   20 CONTINUE
      END
|} );
    ( "s151_indirect",
      {|
      SUBROUTINE S151
      DO 10 I = 1, N
        A(IX(I)) = A(IX(I)) + B(I)
   10 CONTINUE
      END
|} );
    ( "s161_coupled_miv",
      {|
      SUBROUTINE S161
      DO 20 I = 1, N
        DO 10 J = 1, M
          A(I+J) = A(I+J-1) + B(I,J)
   10   CONTINUE
   20 CONTINUE
      END
|} );
    ( "s171_twodim_shift",
      {|
      SUBROUTINE S171
      DO 20 I = 1, N
        DO 10 J = 1, N
          A(I+1,J) = A(I,J+1) + B(I,J)
   10   CONTINUE
   20 CONTINUE
      END
|} );
    ( "s172_diag",
      {|
      SUBROUTINE S172
      DO 20 I = 1, N
        DO 10 J = 1, N
          A(I,I) = A(I,J) + B(J)
   10   CONTINUE
   20 CONTINUE
      END
|} );
    ( "s1112_decimate",
      {|
      SUBROUTINE S1112
      DO 10 I = 1, N
        A(2*I) = A(I) + B(I)
   10 CONTINUE
      END
|} );
    ( "s123_general_siv",
      {|
      SUBROUTINE S123
      DO 10 I = 1, 100
        A(3*I+1) = A(2*I) + B(I)
   10 CONTINUE
      END
|} );
    ( "s117_crossing_offset",
      {|
      SUBROUTINE S117
      DO 10 I = 1, N
        A(I) = A(N-I) + B(I)
   10 CONTINUE
      END
|} );
    ( "s175_symbolic_stride",
      {|
      SUBROUTINE S175
      DO 10 I = 1, N
        A(I) = A(I+M) + B(I)
   10 CONTINUE
      END
|} );
    ( "s176_modulo",
      {|
      SUBROUTINE S176
      DO 10 I = 1, N
        A(MOD(I,64)+1) = A(I) + B(I)
   10 CONTINUE
      END
|} );
  ]
