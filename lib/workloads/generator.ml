open Dt_ir

type config = {
  max_depth : int;
  max_dims : int;
  max_coeff : int;
  max_const : int;
  max_bound : int;
  triangular : bool;
  symbolic_hi : bool;
}

let default =
  {
    max_depth = 3;
    max_dims = 3;
    max_coeff = 2;
    max_const = 6;
    max_bound = 6;
    triangular = false;
    symbolic_hi = false;
  }

let rand_int st lo hi = lo + Random.State.int st (hi - lo + 1)

let index_names = [| "I"; "J"; "K"; "L" |]

let loops st cfg =
  let depth = rand_int st 1 cfg.max_depth in
  List.init depth (fun d ->
      let i = Index.make index_names.(d mod Array.length index_names) ~depth:d in
      let lo = Affine.const (rand_int st 1 2) in
      let hi =
        if cfg.symbolic_hi && d = 0 then Affine.of_sym "N"
        else if cfg.triangular && d > 0 && Random.State.bool st then
          (* triangular: up to an outer index *)
          Affine.of_index
            (Index.make index_names.((d - 1) mod Array.length index_names)
               ~depth:(d - 1))
        else Affine.const (rand_int st 2 cfg.max_bound)
      in
      Loop.make i ~lo ~hi)

let subscript st cfg indices =
  let terms =
    List.filter_map
      (fun i ->
        if Random.State.int st 100 < 55 then
          let c = rand_int st (-cfg.max_coeff) cfg.max_coeff in
          if c = 0 then None else Some (i, c)
        else None)
      indices
  in
  Affine.make ~idx:terms ~sym:[] ~const:(rand_int st (-cfg.max_const) cfg.max_const)

let aref st cfg base indices =
  let dims = rand_int st 1 cfg.max_dims in
  Aref.linear base (List.init dims (fun _ -> subscript st cfg indices))

let ref_pair st cfg =
  let ls = loops st cfg in
  let indices = List.map (fun (l : Loop.t) -> l.Loop.index) ls in
  let dims = rand_int st 1 cfg.max_dims in
  let mk () = List.init dims (fun _ -> subscript st cfg indices) in
  (Aref.linear "A" (mk ()), Aref.linear "A" (mk ()), ls)

let program st cfg ~stmts =
  let ls = loops st cfg in
  let indices = List.map (fun (l : Loop.t) -> l.Loop.index) ls in
  (* fixed rank per array so reference pairs always line up *)
  let arrays = [| ("A", 2); ("B", 1); ("C", min 3 cfg.max_dims) |] in
  let mk_ref () =
    let base, rank = arrays.(Random.State.int st (Array.length arrays)) in
    Aref.linear base (List.init rank (fun _ -> subscript st cfg indices))
  in
  let next_id = ref 0 in
  let mk_stmt () =
    let id = !next_id in
    incr next_id;
    let w = mk_ref () in
    let nreads = rand_int st 1 2 in
    let reads = List.init nreads (fun _ -> mk_ref ()) in
    Stmt.make ~id ~writes:[ w ] ~reads ()
  in
  let body = List.init stmts (fun _ -> Nest.Stmt (mk_stmt ())) in
  let rec wrap loops body =
    match loops with
    | [] -> body
    | l :: rest -> [ Nest.Loop (l, wrap rest body) ]
  in
  Nest.program ~name:"random" (wrap ls body)
