type entry = {
  suite : string;
  name : string;
  source : string;
  programs : Dt_ir.Nest.program list Lazy.t;
}

let make suite (name, source) =
  {
    suite;
    name;
    source;
    programs = lazy (Dt_frontend.Lower.parse_unit ~name source);
  }

let all =
  List.concat
    [
      List.map (make "riceps") Apps_src.riceps;
      List.map (make "perfect") Apps_src.perfect;
      List.map (make "spec") Apps_src.spec;
      List.map (make "eispack") Eispack_src.entries;
      List.map (make "linpack") Linpack_src.entries;
      List.map (make "livermore") Livermore_src.entries;
      List.map (make "cdl") Cdl_src.entries;
      List.map (make "paper") Paper_src.entries;
    ]

let suites =
  [ "riceps"; "perfect"; "spec"; "eispack"; "linpack"; "livermore"; "cdl"; "paper" ]

let by_suite s = List.filter (fun e -> e.suite = s) all

let find ~suite ~name =
  List.find_opt (fun e -> e.suite = suite && e.name = name) all

let find_exn ~suite ~name =
  match find ~suite ~name with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Corpus.find_exn: %s/%s" suite name)

let programs e = Lazy.force e.programs
let program e = List.hd (programs e)
let total_programs = List.length all
