(** Structural canonicalization of a reference-pair dependence query.

    Two queries get the same key exactly when they are identical up to a
    renaming of their loop index variables: same subscript pair shapes
    (normalized coefficients, symbolic terms and constants), same loop
    bounds and nesting depths, same extra assume facts, same driver
    configuration tag. The LINPACK/EISPACK/Livermore corpus repeats such
    shapes thousands of times, so keying the per-pair driver on this form
    is what makes the structural memo cache pay.

    Canonical index names are ["%0"], ["%1"], ... assigned in first-
    occurrence order over the source loops, then the sink loops, then any
    stray subscript index — a deterministic ordering, so isomorphic
    queries canonicalize identically. ['%'] cannot appear in a source
    identifier, so canonical names never collide with real ones. Loop
    depths are preserved verbatim in the key: depth participates in
    {!Dt_ir.Index.t} identity and hence in driver behavior.

    The mapping between canonical names and the query's actual indices is
    returned alongside the key so a cached result can be rehydrated into
    a different (isomorphic) query's index space. *)

open Dt_ir

type t = {
  key : string;  (** the hash key: canonical rendering of the query *)
  actual_of_canon : (string * Index.t) list;
      (** canonical name -> this query's index, in assignment order *)
}

val make :
  src:Aref.t * Loop.t list ->
  snk:Aref.t * Loop.t list ->
  facts:string ->
  tag:string ->
  t
(** [facts] is a pre-rendered digest of the run-level assume facts (they
    are index-free, hence shared by every pair of a run — render once with
    {!facts_digest}); [tag] encodes remaining configuration that affects
    the verdict (e.g. the testing strategy). *)

val facts_digest : Affine.t list -> string
(** Order-independent rendering of symbol-only affine facts. *)
