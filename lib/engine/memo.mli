(** A domain-safe string-keyed memo table with hit/miss accounting.

    The parallel pair-testing engine shares one table across all worker
    domains: lookups and inserts take a single mutex (the guarded section
    is a hash-table probe, orders of magnitude cheaper than the dependence
    test it saves). Two workers may race to compute the same key; both
    computes are correct and the last insert wins, so the race costs one
    duplicated computation and never changes an answer. *)

type 'v t

val create : ?size:int -> ?capacity:int -> unit -> 'v t
(** [size] is the initial hash-table sizing hint. [capacity], when given,
    bounds the number of resident entries: an insert that would exceed it
    evicts the oldest entries (FIFO over insertion order) and counts each
    one in {!evictions}. Without [capacity] the table grows unboundedly
    (the historical behavior). *)

val find_opt : 'v t -> string -> 'v option
(** Bumps the hit or miss counter. *)

val add : 'v t -> string -> 'v -> unit
(** Insert or replace, evicting past [capacity]. Does not touch the
    hit/miss counters. *)

val length : 'v t -> int
val hits : 'v t -> int
val misses : 'v t -> int

val evictions : 'v t -> int
(** Entries dropped by capacity eviction since creation. *)

val capacity : 'v t -> int option

val hit_rate : 'v t -> float
(** [hits / (hits + misses)]; [0.] before any lookup. *)

val reset_stats : 'v t -> unit
