open Dt_ir

type t = {
  key : string;
  actual_of_canon : (string * Index.t) list;
}

(* symbol-only canonical rendering: sorted symbolic terms + constant *)
let render_sym_affine buf a =
  List.iter
    (fun (s, c) ->
      Buffer.add_string buf (string_of_int c);
      Buffer.add_char buf '*';
      Buffer.add_string buf s;
      Buffer.add_char buf '+')
    (List.sort compare (Affine.sym_terms a));
  Buffer.add_string buf (string_of_int (Affine.const_part a))

let facts_digest facts =
  let one a =
    let buf = Buffer.create 32 in
    render_sym_affine buf a;
    Buffer.contents buf
  in
  String.concat ";" (List.sort compare (List.map one facts))

let make ~src:(src_ref, src_loops) ~snk:(snk_ref, snk_loops) ~facts ~tag =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  let count = ref 0 in
  let name_of i =
    match Hashtbl.find_opt tbl i with
    | Some s -> s
    | None ->
        let s = "%" ^ string_of_int !count in
        incr count;
        Hashtbl.add tbl i s;
        order := (s, i) :: !order;
        s
  in
  (* assign canonical names in loop order first: the loops carry the
     nesting structure, and bounds may only reference outer indices *)
  List.iter (fun (l : Loop.t) -> ignore (name_of l.Loop.index)) src_loops;
  List.iter (fun (l : Loop.t) -> ignore (name_of l.Loop.index)) snk_loops;
  let buf = Buffer.create 256 in
  let render_affine a =
    (* terms sorted by canonical name: isomorphic queries must render
       identically even though their actual Index.compare orders differ *)
    let terms =
      List.sort compare
        (List.map (fun (i, c) -> (name_of i, c)) (Affine.index_terms a))
    in
    List.iter
      (fun (s, c) ->
        Buffer.add_string buf (string_of_int c);
        Buffer.add_char buf '*';
        Buffer.add_string buf s;
        Buffer.add_char buf '+')
      terms;
    render_sym_affine buf a
  in
  let render_sub = function
    | Aref.Linear a ->
        Buffer.add_string buf "L:";
        render_affine a
    | Aref.Nonlinear s ->
        (* length-prefixed: the source text is arbitrary *)
        Buffer.add_char buf 'N';
        Buffer.add_string buf (string_of_int (String.length s));
        Buffer.add_char buf ':';
        Buffer.add_string buf s
  in
  let render_subs subs =
    Buffer.add_char buf '[';
    List.iter
      (fun s ->
        render_sub s;
        Buffer.add_char buf ',')
      subs;
    Buffer.add_char buf ']'
  in
  let render_loop (l : Loop.t) =
    Buffer.add_char buf '(';
    Buffer.add_string buf (name_of l.Loop.index);
    Buffer.add_char buf '@';
    Buffer.add_string buf (string_of_int (Index.depth l.Loop.index));
    Buffer.add_char buf ' ';
    render_affine l.Loop.lo;
    Buffer.add_string buf "..";
    render_affine l.Loop.hi;
    Buffer.add_char buf ')'
  in
  Buffer.add_string buf tag;
  Buffer.add_char buf '|';
  Buffer.add_string buf facts;
  Buffer.add_string buf "|s";
  render_subs src_ref.Aref.subs;
  List.iter render_loop src_loops;
  Buffer.add_string buf "|t";
  render_subs snk_ref.Aref.subs;
  List.iter render_loop snk_loops;
  { key = Buffer.contents buf; actual_of_canon = List.rev !order }
