type 'v t = {
  mutex : Mutex.t;
  table : (string, 'v) Hashtbl.t;
  order : string Queue.t;  (* insertion order, drives FIFO eviction *)
  capacity : int option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(size = 256) ?capacity () =
  {
    mutex = Mutex.create ();
    table = Hashtbl.create size;
    order = Queue.create ();
    capacity;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find_opt t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some _ as r ->
          t.hits <- t.hits + 1;
          r
      | None ->
          t.misses <- t.misses + 1;
          None)

let over_capacity t =
  match t.capacity with
  | Some c -> Hashtbl.length t.table > c
  | None -> false

let add t k v =
  locked t (fun () ->
      if not (Hashtbl.mem t.table k) then Queue.push k t.order;
      Hashtbl.replace t.table k v;
      (* FIFO: the queue holds exactly the live keys in insertion order,
         so popping always names a resident entry *)
      while over_capacity t do
        let victim = Queue.pop t.order in
        Hashtbl.remove t.table victim;
        t.evictions <- t.evictions + 1
      done)

let length t = locked t (fun () -> Hashtbl.length t.table)
let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let evictions t = locked t (fun () -> t.evictions)
let capacity t = t.capacity

let hit_rate t =
  locked t (fun () ->
      let n = t.hits + t.misses in
      if n = 0 then 0. else float_of_int t.hits /. float_of_int n)

let reset_stats t =
  locked t (fun () ->
      t.hits <- 0;
      t.misses <- 0)
