type 'v t = {
  mutex : Mutex.t;
  table : (string, 'v) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(size = 256) () =
  { mutex = Mutex.create (); table = Hashtbl.create size; hits = 0; misses = 0 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find_opt t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some _ as r ->
          t.hits <- t.hits + 1;
          r
      | None ->
          t.misses <- t.misses + 1;
          None)

let add t k v = locked t (fun () -> Hashtbl.replace t.table k v)
let length t = locked t (fun () -> Hashtbl.length t.table)
let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)

let hit_rate t =
  locked t (fun () ->
      let n = t.hits + t.misses in
      if n = 0 then 0. else float_of_int t.hits /. float_of_int n)

let reset_stats t =
  locked t (fun () ->
      t.hits <- 0;
      t.misses <- 0)
