(** A disk-backed, versioned key-value store for structural verdicts.

    This is the persistence tier under the in-process memo cache: entries
    keyed by the {!Key} canonical form (or any other string key) with
    JSON values, held resident in one hash table and persisted as
    numbered segment files under a cache directory. A segment carries the
    store's schema version and the owning configuration's fingerprint
    (see {!Dt_report.Record.fingerprint}); loading skips — and counts as
    invalid — any segment that fails to parse, declares a different
    schema, or was written under a different fingerprint, so a corrupt or
    stale cache degrades to a cold start and can never supply a wrong
    verdict. Leftover [*.tmp] files from a crashed mid-write are likewise
    removed and counted.

    Writes are atomic ({!Dt_obs.Artifact}: temp file, fsync, rename);
    {!flush} compacts the whole resident table into a single new segment
    and unlinks the older ones, so eviction is durable and the directory
    never accumulates garbage. [capacity] bounds resident entries with
    FIFO eviction over insertion order, mirroring {!Memo}.

    All operations are mutex-guarded: the parallel engine's worker
    domains and a serve daemon's request loop may share one store. *)

type t

val schema_version : string
(** ["deptest-diskcache/1"]. *)

val open_ : dir:string -> fingerprint:string -> ?capacity:int -> unit -> t
(** Open (creating [dir] if needed) and load every valid segment.
    [capacity] bounds resident entries (FIFO eviction past it); omitted
    means unbounded. Invalid segments are deleted after being counted —
    the next {!flush} rebuilds a clean directory. Raises [Sys_error] /
    [Unix.Unix_error] only for a directory that cannot be created. *)

val dir : t -> string
val fingerprint : t -> string

val find : t -> string -> Dt_obs.Json.t option
(** Bumps the hit or miss counter. *)

val add : t -> string -> Dt_obs.Json.t -> unit
(** Insert or replace, evicting FIFO past capacity. The entry is
    resident immediately and durable after the next {!flush}. *)

val remove : t -> string -> unit
(** Drop a resident entry (e.g. one whose value failed to decode).
    Does not count as an eviction. *)

val note_invalid : t -> unit
(** Count an invalid cache object found outside segment loading — a
    resident entry whose payload failed validating decode. *)

val flush : t -> int
(** Persist: write all resident entries as one new segment and unlink
    the previous segments. Returns the number of entries written. A
    store whose resident set is unchanged since the last flush is a
    no-op returning the resident count. *)

val length : t -> int
val hits : t -> int
val misses : t -> int

val invalid : t -> int
(** Invalid segments, tmp leftovers, and undecodable entries seen. *)

val evictions : t -> int
val segments : t -> int
(** Segment files currently on disk. *)

val fold : t -> init:'a -> f:('a -> string -> Dt_obs.Json.t -> 'a) -> 'a
(** Over the resident entries in insertion order (oldest first). *)
