module Json = Dt_obs.Json

let schema_version = "deptest-diskcache/1"

type t = {
  dir : string;
  fingerprint : string;
  capacity : int option;
  tbl : (string, Json.t) Hashtbl.t;
  queue : string Queue.t;  (* insertion order, for FIFO eviction *)
  mutable segs : int list;  (* segment numbers on disk, ascending *)
  mutable next_seg : int;
  mutable dirty : bool;  (* resident set changed since the last flush *)
  mutable hits : int;
  mutable misses : int;
  mutable invalid : int;
  mutable evictions : int;
  mutex : Mutex.t;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let seg_path dir n = Filename.concat dir (Printf.sprintf "seg-%d.json" n)

let seg_number name =
  if String.length name > 8 && String.sub name 0 4 = "seg-"
     && Filename.check_suffix name ".json"
  then int_of_string_opt (String.sub name 4 (String.length name - 9))
  else None

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* validating segment parse: None means the segment must not be trusted *)
let segment_entries ~fingerprint json =
  match json with
  | Json.Obj _ -> (
      match
        ( Json.member "schema" json,
          Json.member "fingerprint" json,
          Json.member "entries" json )
      with
      | Some (Json.String s), Some (Json.String fp), Some (Json.List es)
        when s = schema_version && fp = fingerprint -> (
          let entry = function
            | Json.List [ Json.String k; v ] -> Some (k, v)
            | _ -> None
          in
          let decoded = List.map entry es in
          if List.for_all Option.is_some decoded then
            Some (List.map Option.get decoded)
          else None)
      | _ -> None)
  | _ -> None

(* insert without statistics, evicting FIFO past capacity *)
let insert t k v =
  if not (Hashtbl.mem t.tbl k) then Queue.add k t.queue;
  Hashtbl.replace t.tbl k v;
  t.dirty <- true;
  match t.capacity with
  | None -> ()
  | Some cap ->
      while Hashtbl.length t.tbl > cap && not (Queue.is_empty t.queue) do
        let oldest = Queue.pop t.queue in
        if Hashtbl.mem t.tbl oldest then begin
          Hashtbl.remove t.tbl oldest;
          t.evictions <- t.evictions + 1
        end
      done

let load t =
  let names = try Sys.readdir t.dir with Sys_error _ -> [||] in
  (* a *.tmp next to the segments is a crashed mid-write: the rename
     never happened, so the bytes are untrusted — remove and count *)
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".tmp" then begin
        (try Sys.remove (Filename.concat t.dir name) with Sys_error _ -> ());
        t.invalid <- t.invalid + 1
      end)
    names;
  let numbers =
    Array.to_list names |> List.filter_map seg_number |> List.sort compare
  in
  List.iter
    (fun n ->
      let path = seg_path t.dir n in
      let ok =
        match Json.of_string (read_file path) with
        | Error _ | (exception Sys_error _) -> false
        | Ok json -> (
            match segment_entries ~fingerprint:t.fingerprint json with
            | None -> false
            | Some entries ->
                List.iter (fun (k, v) -> insert t k v) entries;
                t.segs <- t.segs @ [ n ];
                true)
      in
      if not ok then begin
        (* invalid segment: count it, drop it — the store degrades to a
           cold start rather than ever serving an untrusted entry *)
        t.invalid <- t.invalid + 1;
        try Sys.remove path with Sys_error _ -> ()
      end)
    numbers;
  t.next_seg <- (match List.rev t.segs with n :: _ -> n + 1 | [] -> 0);
  t.dirty <- false

let open_ ~dir ~fingerprint ?capacity () =
  mkdir_p dir;
  let t =
    {
      dir;
      fingerprint;
      capacity;
      tbl = Hashtbl.create 256;
      queue = Queue.create ();
      segs = [];
      next_seg = 0;
      dirty = false;
      hits = 0;
      misses = 0;
      invalid = 0;
      evictions = 0;
      mutex = Mutex.create ();
    }
  in
  load t;
  t

let dir t = t.dir
let fingerprint t = t.fingerprint

let find t k =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.tbl k with
  | Some v ->
      t.hits <- t.hits + 1;
      Some v
  | None ->
      t.misses <- t.misses + 1;
      None

let add t k v = locked t @@ fun () -> insert t k v

let remove t k =
  locked t @@ fun () ->
  if Hashtbl.mem t.tbl k then begin
    Hashtbl.remove t.tbl k;
    t.dirty <- true
  end

let note_invalid t = locked t @@ fun () -> t.invalid <- t.invalid + 1

let resident_json t =
  (* queue order = insertion order; skip evicted/removed keys *)
  let seen = Hashtbl.create (Hashtbl.length t.tbl) in
  let entries =
    Queue.fold
      (fun acc k ->
        if Hashtbl.mem seen k then acc
        else begin
          Hashtbl.replace seen k ();
          match Hashtbl.find_opt t.tbl k with
          | Some v -> Json.List [ Json.String k; v ] :: acc
          | None -> acc
        end)
      [] t.queue
  in
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ("fingerprint", Json.String t.fingerprint);
      ("entries", Json.List (List.rev entries));
    ]

let flush t =
  locked t @@ fun () ->
  let n = Hashtbl.length t.tbl in
  if t.dirty then begin
    (* compacting flush: one fresh segment holds the whole resident set,
       then the superseded segments go away — eviction becomes durable
       and the directory holds one live segment plus nothing stale *)
    let seg = t.next_seg in
    Dt_obs.Artifact.write_atomic (seg_path t.dir seg)
      (Json.to_string (resident_json t) ^ "\n");
    t.next_seg <- seg + 1;
    List.iter
      (fun old -> try Sys.remove (seg_path t.dir old) with Sys_error _ -> ())
      t.segs;
    t.segs <- [ seg ];
    t.dirty <- false
  end;
  n

let length t = locked t @@ fun () -> Hashtbl.length t.tbl
let hits t = t.hits
let misses t = t.misses
let invalid t = t.invalid
let evictions t = t.evictions
let segments t = locked t @@ fun () -> List.length t.segs

let fold t ~init ~f =
  locked t @@ fun () ->
  let seen = Hashtbl.create (Hashtbl.length t.tbl) in
  Queue.fold
    (fun acc k ->
      if Hashtbl.mem seen k then acc
      else begin
        Hashtbl.replace seen k ();
        match Hashtbl.find_opt t.tbl k with
        | Some v -> f acc k v
        | None -> acc
      end)
    init t.queue
