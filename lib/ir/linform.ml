(* Compiled linear forms: dense int-array mirrors of (index-free) Affine
   values over a per-pair symbol universe, plus the per-pair coefficient
   kernel the Banerjee/GCD hot path runs on.

   All slot arithmetic is overflow-checked (Dt_guard.Ops): a wrapped
   kernel slot or vertex coordinate would silently corrupt the Banerjee
   bounds, so the exact-or-raise ops are used even in the in-place hot
   loops and the pair degrades conservatively when one raises. *)

module Ops = Dt_guard.Ops

let inject_corner = Dt_guard.Inject.register "linform.corner"

type universe = { syms : string array (* sorted, unique *) }

let universe syms =
  { syms = Array.of_list (List.sort_uniq String.compare syms) }

let universe_size u = Array.length u.syms
let universe_syms u = Array.to_list u.syms

let sym_slot u s =
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let c = String.compare s u.syms.(mid) in
      if c = 0 then Some mid else if c < 0 then go lo mid else go (mid + 1) hi
  in
  go 0 (Array.length u.syms)

(* A vector has one slot per universe symbol plus a trailing constant
   slot, so vector arithmetic is a single flat loop. *)
type vec = int array

let zero_vec u = Array.make (Array.length u.syms + 1) 0

let compile_into u (e : Affine.t) (v : vec) =
  if Affine.index_terms e <> [] then
    invalid_arg "Linform.compile: affine has index terms";
  if Array.length v <> Array.length u.syms + 1 then
    invalid_arg "Linform.compile_into: vector length mismatch";
  Array.fill v 0 (Array.length v) 0;
  List.iter
    (fun (s, k) ->
      match sym_slot u s with
      | Some j -> v.(j) <- k
      | None -> invalid_arg ("Linform.compile: symbol outside universe: " ^ s))
    (Affine.sym_terms e);
  v.(Array.length u.syms) <- Affine.const_part e

let compile u (e : Affine.t) =
  let v = zero_vec u in
  compile_into u e v;
  v

let to_affine u (v : vec) =
  let n = Array.length u.syms in
  let sym = ref [] in
  for j = n - 1 downto 0 do
    if v.(j) <> 0 then sym := (u.syms.(j), v.(j)) :: !sym
  done;
  Affine.make ~idx:[] ~sym:!sym ~const:v.(n)

let add_into (dst : vec) (v : vec) =
  for j = 0 to Array.length dst - 1 do
    dst.(j) <- Ops.add dst.(j) v.(j)
  done

let sub_into (dst : vec) (v : vec) =
  for j = 0 to Array.length dst - 1 do
    dst.(j) <- Ops.sub dst.(j) v.(j)
  done

let corner ~a ~b (x : vec) (y : vec) =
  Dt_guard.Inject.hit inject_corner;
  Array.init (Array.length x) (fun j -> Ops.sub (Ops.mul a x.(j)) (Ops.mul b y.(j)))

let add_const_into k (v : vec) =
  let last = Array.length v - 1 in
  v.(last) <- Ops.add v.(last) k

let add_const_vec k (v : vec) =
  let w = Array.copy v in
  add_const_into k w;
  w

let is_const_vec (v : vec) =
  let n = Array.length v - 1 in
  let rec go j = j >= n || (v.(j) = 0 && go (j + 1)) in
  go 0

let const_of_vec (v : vec) = v.(Array.length v - 1)

(* ------------------------------------------------------------------ *)
(* per-pair kernel                                                     *)

type pair = {
  indices : Index.t array;  (* occurring indices, Index.Set order *)
  a : int array;  (* source coefficient per slot *)
  b : int array;  (* sink coefficient per slot *)
  gcd_star : int array;  (* gcd (a_k, b_k) *)
  diff_eq : int array;  (* a_k - b_k *)
  c : Affine.t;  (* diff_const: symbolic + constant part of snk - src *)
  c_sym_gcd : int;  (* gcd of [c]'s symbolic coefficients *)
  c_const : int;  (* [c]'s integer part *)
}

let compile_pair ~src ~snk =
  let occ = Index.Set.union (Affine.indices src) (Affine.indices snk) in
  let indices = Array.of_list (Index.Set.elements occ) in
  let n = Array.length indices in
  let a = Array.make n 0
  and b = Array.make n 0
  and gcd_star = Array.make n 0
  and diff_eq = Array.make n 0 in
  Array.iteri
    (fun k i ->
      let ak = Affine.coeff src i and bk = Affine.coeff snk i in
      a.(k) <- ak;
      b.(k) <- bk;
      gcd_star.(k) <- Dt_support.Int_ops.gcd ak bk;
      diff_eq.(k) <- Ops.sub ak bk)
    indices;
  let d = Affine.sub snk src in
  let sym = Affine.sym_terms d in
  let const = Affine.const_part d in
  {
    indices;
    a;
    b;
    gcd_star;
    diff_eq;
    c = Affine.make ~idx:[] ~sym ~const;
    c_sym_gcd = Dt_support.Int_ops.gcd_list (List.map snd sym);
    c_const = const;
  }

let slot kp i =
  (* pairs have a handful of indices; a linear scan wins here *)
  let n = Array.length kp.indices in
  let rec go k =
    if k >= n then None
    else if Index.equal kp.indices.(k) i then Some k
    else go (k + 1)
  in
  go 0

let coeffs kp i =
  match slot kp i with Some k -> (kp.a.(k), kp.b.(k)) | None -> (0, 0)
