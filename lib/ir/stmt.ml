type t = { id : int; writes : Aref.t list; reads : Aref.t list; text : string }

let make ~id ?(writes = []) ?(reads = []) ?(text = "") () =
  { id; writes; reads; text }

let pp ppf t =
  if t.text <> "" then Format.pp_print_string ppf t.text
  else
    Format.fprintf ppf "S%d: %a = f(%a)" t.id
      (Format.pp_print_list ~pp_sep:Format.pp_print_space Aref.pp)
      t.writes
      (Format.pp_print_list ~pp_sep:Format.pp_print_space Aref.pp)
      t.reads

type access = { stmt : t; aref : Aref.t; kind : [ `Read | `Write ] }

let accesses t =
  List.map (fun aref -> { stmt = t; aref; kind = `Write }) t.writes
  @ List.map (fun aref -> { stmt = t; aref; kind = `Read }) t.reads
