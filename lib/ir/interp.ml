exception Unsupported of string

type cell = string * int list

type memory = (cell, int) Hashtbl.t

let default_init name subs =
  Hashtbl.hash (name, subs) land 0xffffff

let run ?(sym_env = fun _ -> 10) ?(init = default_init) (prog : Nest.program) =
  let mem : memory = Hashtbl.create 256 in
  let read name subs =
    match Hashtbl.find_opt mem (name, subs) with
    | Some v -> v
    | None ->
        let v = init name subs in
        Hashtbl.replace mem (name, subs) v;
        v
  in
  let eval_aref env (r : Aref.t) =
    ( r.Aref.base,
      List.map
        (function
          | Aref.Linear a -> Affine.eval a ~index_env:env ~sym_env
          | Aref.Nonlinear s -> raise (Unsupported ("nonlinear subscript " ^ s)))
        r.Aref.subs )
  in
  let exec_stmt env (s : Stmt.t) =
    let values =
      List.map
        (fun r ->
          let name, subs = eval_aref env r in
          read name subs)
        s.Stmt.reads
    in
    let v = Hashtbl.hash (s.Stmt.id :: values) land 0xffffff in
    List.iter
      (fun w ->
        let name, subs = eval_aref env w in
        Hashtbl.replace mem (name, subs) v)
      s.Stmt.writes
  in
  let rec node env = function
    | Nest.Stmt s -> exec_stmt env s
    | Nest.Loop (l, body) ->
        let lo = Affine.eval l.Loop.lo ~index_env:env ~sym_env in
        let hi = Affine.eval l.Loop.hi ~index_env:env ~sym_env in
        for v = lo to hi do
          let env' i = if Index.equal i l.Loop.index then v else env i in
          List.iter (node env') body
        done
  in
  let top i =
    raise (Unsupported ("unbound index " ^ Index.name i))
  in
  List.iter (node top) prog.Nest.body;
  mem

let dump mem =
  Hashtbl.fold (fun (name, subs) v acc -> (name, subs, v) :: acc) mem []
  |> List.sort compare

let equal a b = dump a = dump b
let cells mem = Hashtbl.length mem
