type t = { index : Index.t; lo : Affine.t; hi : Affine.t }

let make index ~lo ~hi = { index; lo; hi }

let trip_const t =
  match (Affine.as_const t.lo, Affine.as_const t.hi) with
  | Some l, Some h -> Some (h - l + 1)
  | _ -> None

let pp ppf t =
  Format.fprintf ppf "DO %a = %a, %a" Index.pp t.index Affine.pp t.lo
    Affine.pp t.hi
