(** Specialization of symbolic constants.

    Binding symbols (e.g. [N = 100]) turns symbolic bounds and subscripts
    into concrete ones, letting every exact test run at full precision and
    making programs enumerable by the brute-force oracle. Unbound symbols
    are left in place. *)

val affine : Affine.t -> bindings:(string * int) list -> Affine.t
val program : Nest.program -> bindings:(string * int) list -> Nest.program
