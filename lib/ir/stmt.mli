(** Statements: array assignments inside loop nests.

    Only the memory-access shape matters for dependence testing, so a
    statement records which array references it writes and reads plus the
    scalar names it touches (scalars induce loop-carried dependences too,
    but the paper — and we — focus on subscripted references; scalars are
    kept so the vectorizer can be conservative about them). *)

type t = {
  id : int;  (** unique within a program *)
  writes : Aref.t list;
  reads : Aref.t list;
  text : string;  (** source text for reporting *)
}

val make : id:int -> ?writes:Aref.t list -> ?reads:Aref.t list -> ?text:string -> unit -> t
val pp : Format.formatter -> t -> unit

type access = { stmt : t; aref : Aref.t; kind : [ `Read | `Write ] }
(** One array access, paired with its statement and access kind. *)

val accesses : t -> access list
(** Writes first, then reads, in declaration order. *)
