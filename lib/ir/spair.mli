(** Subscript pairs — the unit of dependence testing.

    For two references [A(f1,...,fm)] (source, at iteration vector alpha)
    and [A(g1,...,gm)] (sink, at iteration vector beta), the k-th subscript
    pair is <f_k, g_k>. Both affines range over the same [Index.t] values,
    but an index [i] in [src] denotes alpha_i while in [snk] it denotes
    beta_i; every test in the suite is written with this convention. *)

type t = { src : Affine.t; snk : Affine.t }

val make : Affine.t -> Affine.t -> t

val indices : t -> Index.Set.t
(** All loop indices occurring on either side. *)

val diff_const : t -> Affine.t
(** The "constant" part of the dependence equation
    [src(alpha) = snk(beta)] after moving index terms to one side:
    symbolic + integer part of [snk.const - src.const] (coefficients of
    indices excluded).  Concretely: the affine [snk - src] restricted to
    its symbolic and constant terms. *)

val eval :
  t ->
  src_env:(Index.t -> int) ->
  snk_env:(Index.t -> int) ->
  sym_env:(string -> int) ->
  int * int
(** Evaluate both sides. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
