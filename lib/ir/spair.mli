(** Subscript pairs — the unit of dependence testing.

    For two references [A(f1,...,fm)] (source, at iteration vector alpha)
    and [A(g1,...,gm)] (sink, at iteration vector beta), the k-th subscript
    pair is <f_k, g_k>. Both affines range over the same [Index.t] values,
    but an index [i] in [src] denotes alpha_i while in [snk] it denotes
    beta_i; every test in the suite is written with this convention.

    Each pair lazily carries its compiled {!Linform.pair} kernel: the
    occurring indices interned into dense slots with flat coefficient and
    gcd arrays, computed once at first use and shared by every test that
    runs on the pair (GCD, SIV coefficient extraction, the Banerjee
    hierarchy). The record is [private] so construction goes through
    {!make} and the cache can never be forged. *)

type t = private {
  src : Affine.t;
  snk : Affine.t;
  mutable kern : Linform.pair option;  (** compiled-kernel cache; use
                                           {!kernel}, never directly *)
}

val make : Affine.t -> Affine.t -> t

val kernel : t -> Linform.pair
(** The pair's compiled linear-form kernel, compiled on first use and
    cached. Note the cache makes structural ([=]/[compare]) comparison of
    [t] values meaningless — compare [src]/[snk] instead. *)

val indices : t -> Index.Set.t
(** All loop indices occurring on either side. *)

val coeffs : t -> Index.t -> int * int
(** [(a, b)] coefficients of an index in [src]/[snk], via the compiled
    kernel; [(0, 0)] when the index does not occur. *)

val diff_const : t -> Affine.t
(** The "constant" part of the dependence equation
    [src(alpha) = snk(beta)] after moving index terms to one side:
    symbolic + integer part of [snk.const - src.const] (coefficients of
    indices excluded).  Concretely: the affine [snk - src] restricted to
    its symbolic and constant terms. Served from the compiled kernel. *)

val eval :
  t ->
  src_env:(Index.t -> int) ->
  snk_env:(Index.t -> int) ->
  sym_env:(string -> int) ->
  int * int
(** Evaluate both sides. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
