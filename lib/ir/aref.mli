(** A subscripted array reference.

    Each subscript is either an affine form or [Nonlinear] — the paper's
    empirical study counts nonlinear subscripts separately and never tests
    them (the driver conservatively assumes dependence). *)

type subscript = Linear of Affine.t | Nonlinear of string
(** The string is the source text of the nonlinear expression, kept for
    reporting. *)

type t = { base : string; subs : subscript list }

val make : string -> subscript list -> t
val linear : string -> Affine.t list -> t
val rank : t -> int
val is_linear : t -> bool
val linear_subs : t -> Affine.t list option
val pp : Format.formatter -> t -> unit
val to_string : t -> string
