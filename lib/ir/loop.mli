(** A normalized DO loop.

    After frontend normalization every loop has step 1; bounds are affine
    forms that may reference outer loop indices (triangular/trapezoidal
    nests) and symbolic constants. *)

type t = { index : Index.t; lo : Affine.t; hi : Affine.t }

val make : Index.t -> lo:Affine.t -> hi:Affine.t -> t
val trip_const : t -> int option
(** Trip count [hi - lo + 1] when both bounds are constant. *)

val pp : Format.formatter -> t -> unit
