(** An executable semantics for IR programs.

    Statements carry only their memory-access shape, so we give each a
    deterministic synthetic semantics: the value stored by statement [S]
    into its target is a hash of [S]'s id combined with the values of all
    its reads (in order). This is enough to detect any transformation bug
    that reorders two accesses connected by a true, anti, or output
    dependence — if a transformed program produces the same final memory
    on random inputs, its execution order respected the dependences of
    the original.

    The test suite uses this as the correctness oracle for loop
    distribution: [run p = run (Distribute.run p deps)] must hold.

    Memory is a map from (array name, subscript-value vector) to int.
    Nonlinear subscripts make a statement non-executable — [run] raises
    [Unsupported]. *)

exception Unsupported of string

type memory

val run :
  ?sym_env:(string -> int) ->
  ?init:(string -> int list -> int) ->
  Nest.program ->
  memory
(** Execute the program. [init] seeds reads of never-written cells
    (default: a hash of the name and subscripts). [sym_env] defaults to
    binding every symbol to 10. *)

val dump : memory -> (string * int list * int) list
(** Final memory, sorted. *)

val equal : memory -> memory -> bool
val cells : memory -> int
