(** String-keyed maps for symbolic-constant coefficients. *)

include Map.S with type key = string
