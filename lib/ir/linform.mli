(** Compiled linear forms — the allocation-free mirror of {!Affine} the
    Banerjee hot path runs on.

    {!Affine} stays the general IR (persistent maps, easy algebra); this
    module does the symbolic bookkeeping {e once} per subscript pair and
    emits flat [int array] forms over a dense, interned symbol universe,
    so the inner loops of the §4.4 hierarchy evaluator are plain array
    arithmetic with no map or closure allocation.

    Two layers:
    - a {!universe} of interned symbolic constants with {!vec} vectors
      (one slot per symbol plus a trailing constant slot) and in-place
      [add]/[sub] over them;
    - a per-pair {!pair} kernel: occurring indices interned into dense
      slots with the source/sink coefficient arrays and the precomputed
      per-slot gcds the directed GCD test folds over. *)

type universe
(** An interned, sorted set of symbolic-constant names. *)

val universe : string list -> universe
(** Build a universe from a symbol list (duplicates welcome). *)

val universe_size : universe -> int
val universe_syms : universe -> string list

val sym_slot : universe -> string -> int option
(** Dense slot of a symbol, if interned. *)

type vec = int array
(** A compiled index-free affine: [universe_size u] symbol-coefficient
    slots followed by one constant slot. Structural equality and hashing
    on [vec] values agree with {!Affine.equal} on what they denote. *)

val zero_vec : universe -> vec

val compile : universe -> Affine.t -> vec
(** Compile an index-free affine whose symbols are all interned.
    @raise Invalid_argument on index terms or unknown symbols. *)

val compile_into : universe -> Affine.t -> vec -> unit
(** As {!compile}, into a caller-provided vector (zeroed first) — the
    allocation-free variant for arena-managed scratch buffers.
    @raise Invalid_argument also when the vector length does not match
    the universe. *)

val to_affine : universe -> vec -> Affine.t
(** Inverse of {!compile} (zero slots are dropped, as {!Affine.make}
    normalizes). *)

val add_into : vec -> vec -> unit
(** [add_into dst v] adds [v] into [dst] in place. *)

val sub_into : vec -> vec -> unit

val corner : a:int -> b:int -> vec -> vec -> vec
(** [corner ~a ~b x y] is the fresh vector [a*x - b*y] — one vertex value
    [a*alpha - b*beta] of a Banerjee per-index region. *)

val add_const_vec : int -> vec -> vec
(** Fresh vector with the constant slot shifted. *)

val add_const_into : int -> vec -> unit
(** Shift the constant slot in place (overflow-checked). *)

val is_const_vec : vec -> bool
(** All symbol slots zero. *)

val const_of_vec : vec -> int

(** {2 Per-pair kernel} *)

type pair = {
  indices : Index.t array;  (** occurring indices, in {!Index.Set} order *)
  a : int array;  (** source coefficient per slot *)
  b : int array;  (** sink coefficient per slot *)
  gcd_star : int array;  (** [gcd a.(k) b.(k)] — the unconstrained/[<]/[>]
                             contribution to the directed GCD *)
  diff_eq : int array;  (** [a.(k) - b.(k)] — the ['='] contribution *)
  c : Affine.t;  (** {!Spair.diff_const}: symbolic + constant part of
                     [snk - src] *)
  c_sym_gcd : int;  (** gcd of [c]'s symbolic coefficients *)
  c_const : int;  (** [c]'s integer part *)
}

val compile_pair : src:Affine.t -> snk:Affine.t -> pair
(** Intern the pair's occurring indices and precompute every per-slot
    quantity the GCD and Banerjee tests consume. Done once per
    {!Spair.t} (see {!Spair.kernel}). *)

val slot : pair -> Index.t -> int option
(** Dense slot of an occurring index. *)

val coeffs : pair -> Index.t -> int * int
(** [(a, b)] coefficients of an index on the source/sink side;
    [(0, 0)] when the index does not occur. *)
