type node = Loop of Loop.t * node list | Stmt of Stmt.t

type program = {
  name : string;
  routine : string;
  body : node list;
  source_lines : int;
}

let program ?routine ?(source_lines = 0) ~name body =
  { name; routine = Option.value routine ~default:name; body; source_lines }

let stmts_with_loops prog =
  let rec go loops acc node =
    match node with
    | Stmt s -> (s, List.rev loops) :: acc
    | Loop (l, body) -> List.fold_left (go (l :: loops)) acc body
  in
  List.rev (List.fold_left (go []) [] prog.body)

let all_stmts prog = List.map fst (stmts_with_loops prog)

let all_loops prog =
  let rec go acc = function
    | Stmt _ -> acc
    | Loop (l, body) -> List.fold_left go (l :: acc) body
  in
  List.rev (List.fold_left go [] prog.body)

let max_depth prog =
  let rec go d = function
    | Stmt _ -> d
    | Loop (_, body) -> Dt_support.Listx.max_by (go (d + 1)) body
  in
  Dt_support.Listx.max_by (go 0) prog.body

let common_loops a b =
  let rec go acc a b =
    match (a, b) with
    | la :: ra, lb :: rb when Index.equal la.Loop.index lb.Loop.index ->
        go (la :: acc) ra rb
    | _ -> List.rev acc
  in
  go [] a b

let find_stmt prog id = List.find_opt (fun s -> s.Stmt.id = id) (all_stmts prog)

let symbolics prog =
  let acc = ref [] in
  let add_affine a = acc := Affine.syms a @ !acc in
  let add_aref (r : Aref.t) =
    List.iter
      (function Aref.Linear a -> add_affine a | Aref.Nonlinear _ -> ())
      r.Aref.subs
  in
  let rec go = function
    | Stmt s ->
        List.iter add_aref s.Stmt.writes;
        List.iter add_aref s.Stmt.reads
    | Loop (l, body) ->
        add_affine l.Loop.lo;
        add_affine l.Loop.hi;
        List.iter go body
  in
  List.iter go prog.body;
  Dt_support.Listx.dedup ~compare:String.compare !acc

let pp ppf prog =
  let rec node indent ppf n =
    let pad = String.make indent ' ' in
    match n with
    | Stmt s -> Format.fprintf ppf "%s%a@." pad Stmt.pp s
    | Loop (l, body) ->
        Format.fprintf ppf "%s%a@." pad Loop.pp l;
        List.iter (node (indent + 2) ppf) body;
        Format.fprintf ppf "%sENDDO@." pad
  in
  Format.fprintf ppf "PROGRAM %s@." prog.name;
  List.iter (node 2 ppf) prog.body
