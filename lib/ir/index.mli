(** Loop index variables.

    An index is identified by its source name and the nesting depth of the
    loop that declares it (0 = outermost). Depth participates in identity so
    that two distinct loops reusing the name [i] in disjoint nests do not
    alias; within a single nest the frontend guarantees unique names. *)

type t = private { name : string; depth : int }

val make : string -> depth:int -> t
val name : t -> string
val depth : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
