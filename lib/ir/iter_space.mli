(** Enumeration of iteration spaces.

    Used by the brute-force dependence oracle and the property-test
    harness. Bounds may be triangular (affine in outer indices); symbolic
    constants must be bound by [sym_env] for enumeration to be possible. *)

type point = int Index.Map.t

val enumerate :
  loops:Loop.t list -> sym_env:(string -> int) -> max_points:int -> point list option
(** All iteration vectors of the nest, lexicographic order, outermost index
    first. [None] if the space exceeds [max_points] (guards the oracle
    against blowup) or a bound fails to evaluate. *)

val lookup : point -> Index.t -> int
(** Raises [Not_found] for indices outside the point. *)

val size :
  loops:Loop.t list -> sym_env:(string -> int) -> int option
(** Number of points, without materializing them; [None] on evaluation
    failure. *)
