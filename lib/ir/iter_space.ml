type point = int Index.Map.t

exception Too_big
exception Unevaluable

let inject_size = Dt_guard.Inject.register "iter_space.size"

let eval_bound a point ~sym_env =
  let index_env i =
    match Index.Map.find_opt i point with
    | Some v -> v
    | None -> raise Unevaluable
  in
  Affine.eval a ~index_env ~sym_env

let enumerate ~loops ~sym_env ~max_points =
  let count = ref 0 in
  let acc = ref [] in
  let rec go point = function
    | [] ->
        incr count;
        if !count > max_points then raise Too_big;
        acc := point :: !acc
    | (l : Loop.t) :: rest ->
        let lo = eval_bound l.lo point ~sym_env in
        let hi = eval_bound l.hi point ~sym_env in
        for v = lo to hi do
          go (Index.Map.add l.index v point) rest
        done
  in
  match go Index.Map.empty loops with
  | () -> Some (List.rev !acc)
  | exception (Too_big | Unevaluable) -> None

let lookup point i = Index.Map.find i point

let size ~loops ~sym_env =
  Dt_guard.Inject.hit inject_size;
  let rec go point = function
    | [] -> 1
    | (l : Loop.t) :: rest ->
        let lo = eval_bound l.lo point ~sym_env in
        let hi = eval_bound l.hi point ~sym_env in
        let total = ref 0 in
        for v = lo to hi do
          total := Dt_guard.Ops.add !total (go (Index.Map.add l.index v point) rest)
        done;
        !total
  in
  (* an overflowing point count (or an injected fault) degrades to
     "unknown size", exactly like an unevaluable bound *)
  match go Index.Map.empty loops with
  | n -> Some n
  | exception (Unevaluable | Dt_guard.Ops.Overflow | Dt_guard.Inject.Injected _)
    -> None
