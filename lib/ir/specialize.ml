let affine a ~bindings =
  Affine.eval_syms a ~sym_env:(fun s -> List.assoc_opt s bindings)

let program prog ~bindings =
  let aff a = affine a ~bindings in
  let aref (r : Aref.t) =
    Aref.make r.Aref.base
      (List.map
         (function
           | Aref.Linear a -> Aref.Linear (aff a)
           | Aref.Nonlinear _ as s -> s)
         r.Aref.subs)
  in
  let rec node = function
    | Nest.Stmt s ->
        Nest.Stmt
          (Stmt.make ~id:s.Stmt.id
             ~writes:(List.map aref s.Stmt.writes)
             ~reads:(List.map aref s.Stmt.reads)
             ~text:s.Stmt.text ())
    | Nest.Loop (l, body) ->
        Nest.Loop
          ( Loop.make l.Loop.index ~lo:(aff l.Loop.lo) ~hi:(aff l.Loop.hi),
            List.map node body )
  in
  Nest.program ~routine:prog.Nest.routine ~source_lines:prog.Nest.source_lines
    ~name:prog.Nest.name
    (List.map node prog.Nest.body)
