(* Coefficient arithmetic goes through the overflow-checked ops: a
   silently wrapped coefficient or constant would corrupt every
   downstream bound check (SIV distances, Banerjee sums), so a form
   whose exact value is not representable raises [Dt_guard.Ops.Overflow]
   instead — the driver catches it at the pair boundary and degrades
   conservatively. *)
module Ops = Dt_guard.Ops

type t = { idx : int Index.Map.t; sym : int Smap.t; const : int }

let norm_idx m = Index.Map.filter (fun _ c -> c <> 0) m
let norm_sym m = Smap.filter (fun _ c -> c <> 0) m

let zero = { idx = Index.Map.empty; sym = Smap.empty; const = 0 }
let const c = { zero with const = c }

let of_index ?(coeff = 1) i =
  { zero with idx = norm_idx (Index.Map.singleton i coeff) }

let of_sym ?(coeff = 1) s = { zero with sym = norm_sym (Smap.singleton s coeff) }

let make ~idx ~sym ~const =
  let add_idx m (i, c) =
    Index.Map.update i (fun v -> Some (Ops.add (Option.value v ~default:0) c)) m
  in
  let add_sym m (s, c) =
    Smap.update s (fun v -> Some (Ops.add (Option.value v ~default:0) c)) m
  in
  {
    idx = norm_idx (List.fold_left add_idx Index.Map.empty idx);
    sym = norm_sym (List.fold_left add_sym Smap.empty sym);
    const;
  }

let merge_idx f a b =
  norm_idx
    (Index.Map.merge
       (fun _ x y -> Some (f (Option.value x ~default:0) (Option.value y ~default:0)))
       a b)

let merge_sym f a b =
  norm_sym
    (Smap.merge
       (fun _ x y -> Some (f (Option.value x ~default:0) (Option.value y ~default:0)))
       a b)

let add a b =
  { idx = merge_idx Ops.add a.idx b.idx;
    sym = merge_sym Ops.add a.sym b.sym;
    const = Ops.add a.const b.const }

let sub a b =
  { idx = merge_idx Ops.sub a.idx b.idx;
    sym = merge_sym Ops.sub a.sym b.sym;
    const = Ops.sub a.const b.const }

let neg a = sub zero a

let scale k a =
  if k = 0 then zero
  else
    { idx = Index.Map.map (fun c -> Ops.mul k c) a.idx;
      sym = Smap.map (fun c -> Ops.mul k c) a.sym;
      const = Ops.mul k a.const }

let add_const c a = { a with const = Ops.add a.const c }

let content a =
  let g = Dt_support.Int_ops.gcd_list (List.map snd (Index.Map.bindings a.idx)) in
  let g = Dt_support.Int_ops.gcd g (Dt_support.Int_ops.gcd_list (List.map snd (Smap.bindings a.sym))) in
  Dt_support.Int_ops.gcd g a.const

let div_exact a k =
  if k = 0 then None
  else if
    Index.Map.for_all (fun _ c -> c mod k = 0) a.idx
    && Smap.for_all (fun _ c -> c mod k = 0) a.sym
    && a.const mod k = 0
  then
    (* k = -1 is the one quotient that can overflow (min_int / -1) *)
    let div c = if k = -1 then Ops.neg c else c / k in
    Some
      {
        idx = Index.Map.map div a.idx;
        sym = Smap.map div a.sym;
        const = div a.const;
      }
  else None
let coeff a i = Option.value (Index.Map.find_opt i a.idx) ~default:0
let sym_coeff a s = Option.value (Smap.find_opt s a.sym) ~default:0
let const_part a = a.const

let set_coeff a i c =
  { a with idx = norm_idx (Index.Map.add i c a.idx) }

let indices a = Index.Map.fold (fun i _ s -> Index.Set.add i s) a.idx Index.Set.empty
let syms a = Smap.fold (fun s _ acc -> s :: acc) a.sym [] |> List.rev
let index_terms a = Index.Map.bindings a.idx
let sym_terms a = Smap.bindings a.sym
let is_const a = Index.Map.is_empty a.idx && Smap.is_empty a.sym
let as_const a = if is_const a then Some a.const else None
let is_sym_free a = Smap.is_empty a.sym
let drop_index a i = { a with idx = Index.Map.remove i a.idx }

let subst_index a i e =
  let c = coeff a i in
  if c = 0 then a else add (drop_index a i) (scale c e)

let eval a ~index_env ~sym_env =
  Ops.add
    (Index.Map.fold
       (fun i c acc -> Ops.add acc (Ops.mul c (index_env i)))
       a.idx a.const)
    (Smap.fold (fun s c acc -> Ops.add acc (Ops.mul c (sym_env s))) a.sym 0)

let eval_syms a ~sym_env =
  Smap.fold
    (fun s c acc ->
      match sym_env s with
      | Some v -> add_const (Ops.mul c v) { acc with sym = Smap.remove s acc.sym }
      | None -> acc)
    a.sym a

let equal a b =
  a.const = b.const
  && Index.Map.equal Int.equal a.idx b.idx
  && Smap.equal Int.equal a.sym b.sym

let compare a b =
  let c = Index.Map.compare Int.compare a.idx b.idx in
  if c <> 0 then c
  else
    let c = Smap.compare Int.compare a.sym b.sym in
    if c <> 0 then c else Int.compare a.const b.const

let pp ppf a =
  let first = ref true in
  let term ppf c name =
    let sep =
      if !first then (
        first := false;
        if c < 0 then "-" else "")
      else if c < 0 then " - "
      else " + "
    in
    let c = abs c in
    if c = 1 then Format.fprintf ppf "%s%s" sep name
    else Format.fprintf ppf "%s%d*%s" sep c name
  in
  Index.Map.iter (fun i c -> term ppf c (Index.name i)) a.idx;
  Smap.iter (fun s c -> term ppf c s) a.sym;
  if !first then Format.pp_print_int ppf a.const
  else if a.const > 0 then Format.fprintf ppf " + %d" a.const
  else if a.const < 0 then Format.fprintf ppf " - %d" (-a.const)

let to_string a = Format.asprintf "%a" pp a
