(** Affine (linear + constant) expressions over loop indices and
    loop-invariant symbolic constants.

    An affine form is [sum_k a_k * i_k + sum_j s_j * N_j + c] where the
    [i_k] are loop indices, the [N_j] are symbolic constants (e.g. the [N]
    of a symbolic loop bound), and [c] is an integer. This is the only
    subscript language the dependence tests consume; anything the frontend
    cannot bring into this form is flagged nonlinear and excluded from
    testing (the paper does the same).

    The symbolic part directly supports the paper's section 4.5: subtracting
    two affine forms cancels matching symbolic terms, which is exactly the
    "symbolic additive constant" handling of the enhanced ZIV/SIV tests. *)

type t = private {
  idx : int Index.Map.t;  (** index coefficients; zero entries absent *)
  sym : int Smap.t;  (** symbolic-constant coefficients; zero entries absent *)
  const : int;
}

val zero : t
val const : int -> t
val of_index : ?coeff:int -> Index.t -> t
val of_sym : ?coeff:int -> string -> t

val make : idx:(Index.t * int) list -> sym:(string * int) list -> const:int -> t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t
val add_const : int -> t -> t

val div_exact : t -> int -> t option
(** Divide every coefficient and the constant by [k] when all are
    divisible; [None] otherwise (or when [k = 0]). *)

val content : t -> int
(** Gcd of all coefficients and the constant (non-negative). *)

val coeff : t -> Index.t -> int
val sym_coeff : t -> string -> int
val const_part : t -> int
val set_coeff : t -> Index.t -> int -> t

val indices : t -> Index.Set.t
(** Indices with non-zero coefficient. *)

val syms : t -> string list
val index_terms : t -> (Index.t * int) list
val sym_terms : t -> (string * int) list

val is_const : t -> bool
(** No index and no symbolic term. *)

val as_const : t -> int option
(** [Some c] iff [is_const]. *)

val is_sym_free : t -> bool
val drop_index : t -> Index.t -> t
(** Remove the term for one index. *)

val subst_index : t -> Index.t -> t -> t
(** [subst_index t i e] replaces every occurrence [a*i] by [a*e]. *)

val eval : t -> index_env:(Index.t -> int) -> sym_env:(string -> int) -> int
val eval_syms : t -> sym_env:(string -> int option) -> t
(** Partially evaluate known symbolic constants. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
