type t = { src : Affine.t; snk : Affine.t }

let make src snk = { src; snk }
let indices t = Index.Set.union (Affine.indices t.src) (Affine.indices t.snk)

let diff_const t =
  let d = Affine.sub t.snk t.src in
  Affine.make ~idx:[] ~sym:(Affine.sym_terms d) ~const:(Affine.const_part d)

let eval t ~src_env ~snk_env ~sym_env =
  ( Affine.eval t.src ~index_env:src_env ~sym_env,
    Affine.eval t.snk ~index_env:snk_env ~sym_env )

let pp ppf t = Format.fprintf ppf "<%a, %a>" Affine.pp t.src Affine.pp t.snk
let to_string t = Format.asprintf "%a" pp t
