type t = { src : Affine.t; snk : Affine.t; mutable kern : Linform.pair option }

let make src snk = { src; snk; kern = None }

let kernel t =
  match t.kern with
  | Some k -> k
  | None ->
      (* benign race under the parallel engine: two domains may both
         compile; either result is correct and the field write is atomic *)
      let k = Linform.compile_pair ~src:t.src ~snk:t.snk in
      t.kern <- Some k;
      k

let indices t = Index.Set.union (Affine.indices t.src) (Affine.indices t.snk)
let coeffs t i = Linform.coeffs (kernel t) i
let diff_const t = (kernel t).Linform.c

let eval t ~src_env ~snk_env ~sym_env =
  ( Affine.eval t.src ~index_env:src_env ~sym_env,
    Affine.eval t.snk ~index_env:snk_env ~sym_env )

let pp ppf t = Format.fprintf ppf "<%a, %a>" Affine.pp t.src Affine.pp t.snk
let to_string t = Format.asprintf "%a" pp t
