(** Loop-nest trees and whole programs.

    A program body is a forest of loops and statements. Statement ids are
    assigned in textual order by the frontend, so [Stmt.id] doubles as the
    "lexically precedes" relation needed to orient loop-independent
    dependences. *)

type node = Loop of Loop.t * node list | Stmt of Stmt.t

type program = {
  name : string;
  routine : string;  (** subroutine name, for the per-routine statistics *)
  body : node list;
  source_lines : int;  (** line count of the original source, for Table 1 *)
}

val program :
  ?routine:string -> ?source_lines:int -> name:string -> node list -> program

val stmts_with_loops : program -> (Stmt.t * Loop.t list) list
(** Every statement paired with its enclosing loops, outermost first,
    in textual order. *)

val all_stmts : program -> Stmt.t list
val all_loops : program -> Loop.t list
val max_depth : program -> int

val common_loops : Loop.t list -> Loop.t list -> Loop.t list
(** Longest common prefix of two enclosing-loop lists (loops compared by
    index identity). *)

val find_stmt : program -> int -> Stmt.t option
val symbolics : program -> string list
(** All symbolic constants appearing in bounds or subscripts, sorted. *)

val pp : Format.formatter -> program -> unit
