type subscript = Linear of Affine.t | Nonlinear of string
type t = { base : string; subs : subscript list }

let make base subs = { base; subs }
let linear base affs = { base; subs = List.map (fun a -> Linear a) affs }
let rank t = List.length t.subs
let is_linear t = List.for_all (function Linear _ -> true | Nonlinear _ -> false) t.subs

let linear_subs t =
  if is_linear t then
    Some (List.map (function Linear a -> a | Nonlinear _ -> assert false) t.subs)
  else None

let pp_sub ppf = function
  | Linear a -> Affine.pp ppf a
  | Nonlinear s -> Format.fprintf ppf "<%s>" s

let pp ppf t =
  if t.subs = [] then Format.pp_print_string ppf t.base
  else
    Format.fprintf ppf "%s(%a)" t.base
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") pp_sub)
      t.subs

let to_string t = Format.asprintf "%a" pp t
