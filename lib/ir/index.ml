module T = struct
  type t = { name : string; depth : int }

  let compare a b =
    match compare a.depth b.depth with 0 -> compare a.name b.name | c -> c
end

include T

let make name ~depth = { name; depth }
let name t = t.name
let depth t = t.depth
let equal a b = compare a b = 0
let pp ppf t = Format.pp_print_string ppf t.name

module Map = Map.Make (T)
module Set = Set.Make (T)
