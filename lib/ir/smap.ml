include Map.Make (String)
