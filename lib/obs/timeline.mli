(** Exporters for merged {!Span} timelines.

    Two formats, both derived from the same {!Span.spans} array:

    - {!to_chrome}: Chrome trace-event JSON ([traceEvents] with complete
      ["X"] events), loadable in Perfetto / [chrome://tracing]. One
      [tid] row per engine domain, timestamps in microseconds relative
      to the earliest span, Gc word deltas as event [args].
    - {!to_folded}: folded-stack text for Brendan Gregg's
      [flamegraph.pl] — one line per distinct stack with the span's
      *self* nanoseconds (duration minus direct children) as the sample
      count. *)

val to_chrome : ?process:string -> Span.span array -> Json.t
(** [process] names the trace's single process (default ["deptest"]).
    Events are sorted by begin time (stable, so per-tid nesting order is
    preserved); a metadata ["M"] event names the process and each
    domain's thread row. *)

val to_folded : Span.span array -> string
(** Lines are sorted (deterministic output); stacks with zero self time
    are omitted. Suitable as [flamegraph.pl --countname=ns] input. *)
