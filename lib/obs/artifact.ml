let write_atomic path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc content;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path
