let write_atomic_with path write =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     write oc;
     flush oc;
     (* durability before visibility: the rename must never publish a
        name whose bytes are still only in the page cache — a crash
        between rename and writeback would yield a complete-looking but
        empty artifact. Best-effort: not every target supports fsync. *)
     (try Unix.fsync (Unix.descr_of_out_channel oc)
      with Unix.Unix_error _ -> ());
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let write_atomic path content =
  write_atomic_with path (fun oc -> output_string oc content)
