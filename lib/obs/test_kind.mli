(** The dependence-test kinds observed by the driver (paper §6).

    This is the single source of truth for the test-kind enumeration: the
    [Counters] module of the core library re-exports it, the metrics
    registry indexes its arrays by {!id}, and trace events carry it. *)

type t =
  | Ziv_test
  | Strong_siv
  | Weak_zero_siv
  | Weak_crossing_siv
  | Exact_siv
  | Rdiv_test
  | Gcd_miv
  | Banerjee_miv
  | Delta_test
  | Symbolic_ziv  (** ZIV decided only via symbolic reasoning *)

val all : t list
val count : int

val id : t -> int
(** Dense index in [0, count): a direct pattern match, O(1) — this runs on
    every recorded event. *)

val name : t -> string
(** Human-readable name, e.g. ["strong SIV"]. *)

val slug : t -> string
(** Machine-readable identifier, e.g. ["strong_siv"] (JSON exports). *)

val of_slug : string -> t option
