(** Request-scoped tracing for a long-lived analysis daemon.

    Three pieces, all generic over "a request" so the serve layer stays
    a thin client:

    + {b trace ids} — 64-bit identifiers rendered as 16 lowercase hex
      characters. The {e client} generates one per request and carries
      it in the wire frame; every observation of that request (slow
      ledger entry, captured span tree, log line) is keyed by it.
    + {b sampling} — a {!Sampler} decides, before a request runs,
      whether to arm the expensive span capture (probabilistic: every
      [period]-th request) and, after it ran, whether the captured spans
      are worth retaining (threshold: wall clock at or above
      [threshold_ns]). Entry {e summaries} are always recorded — they
      are a few words each — so the slow ledger never has holes.
    + {b the slow-request ring ledger} — a fixed-capacity, allocation-
      bounded in-memory ledger holding the last-N recent request
      summaries plus the top-K by latency, with the most recent retained
      span capture kept aside for ["trace-last"] export.

    Concurrency contract: a {!Sampler} and a {!Ring} belong to the
    single daemon thread that handles requests (the serve accept loop);
    neither is locked. {!gen_id} alone is safe from any domain. *)

(** {1 Trace ids} *)

val gen_id : unit -> string
(** A fresh 64-bit trace id (16 lowercase hex chars). Mixes a global
    counter, the monotonic clock, and the pid through a splitmix64
    finalizer, so ids are unique across calls, domains, and concurrent
    client processes without coordination. *)

val is_id : string -> bool
(** Exactly 16 lowercase hex characters. *)

(** {1 Cache tiers} *)

(** Which tier of the daemon's cache hierarchy answered a request,
    coarsest first. *)
type tier =
  | Response  (** the rendered-response cache: no analysis at all *)
  | Disk  (** pair verdicts replayed from the disk store *)
  | Memo  (** pair verdicts replayed from the in-memory memo *)
  | Cold  (** the full test cascade ran *)
  | None_  (** not an analysis (metrics, health, ...) or an error *)

val tier_name : tier -> string
val tiers : tier list

(** {1 Entries} *)

type entry = {
  trace_id : string;
  endpoint : string;  (** protocol op slug, e.g. ["analyze"] *)
  source_digest : string;  (** MD5 hex of the source; [""] otherwise *)
  tier : tier;
  degraded : int;  (** pairs degraded conservatively in this request *)
  error : bool;  (** the request was answered with an error *)
  wall_ns : int64;
  ts_ms : int;  (** arrival time, unix epoch milliseconds *)
  spans : Span.span array;  (** [[||]] unless a capture was retained *)
}

val entry_to_json : entry -> Json.t
(** The summary fields (everything but [spans], plus a [captured]
    bool) — what the [slow] / [top] endpoints return per entry. *)

(** {1 Sampling} *)

module Sampler : sig
  type t

  val create : ?period:int -> ?threshold_ns:int64 -> unit -> t
  (** [period] (default 1) arms span capture on every [period]-th
      request; [0] never arms (summaries only). [threshold_ns]
      (default [0L]) drops a captured span tree — after the request, so
      the summary survives — unless the request's wall clock reached
      it. *)

  val period : t -> int
  val threshold_ns : t -> int64

  val arm : t -> bool
  (** Pre-request decision: capture this request's spans? Bumps the
      internal tick. *)

  val retain : t -> wall_ns:int64 -> bool
  (** Post-request decision: keep an armed capture? *)
end

(** {1 The ring ledger} *)

module Ring : sig
  type t

  val create : ?recent:int -> ?top:int -> unit -> t
  (** [recent] (default 64) bounds the newest-first ring; [top]
      (default 16) bounds the slowest-first board. *)

  val add : t -> entry -> unit
  (** Record one finished request: always enters the recent ring
      (evicting the oldest past capacity), enters the top board if it
      beats the board's floor, and — when it carries spans — replaces
      the ledger's most recent capture. *)

  val recent : ?n:int -> t -> entry list
  (** Newest first, at most [n] (default: the ring's capacity). *)

  val top : ?n:int -> t -> entry list
  (** Slowest first, at most [n] (default: the board's capacity). *)

  val find : t -> string -> entry option
  (** Look a trace id up in the recent ring, the top board, and the
      retained capture; prefers the copy that still has spans. *)

  val last_capture : t -> entry option
  (** The most recent entry whose span capture was retained. *)

  val total : t -> int
  (** Requests ever recorded (not bounded by either capacity). *)
end
