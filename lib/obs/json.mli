(** A minimal JSON value type with printer and parser.

    The container ships no JSON library, and the observability exports
    (metrics snapshots, JSONL traces) plus their round-trip tests only
    need this small subset: UTF-8 strings with the standard escapes,
    62-bit ints kept distinct from floats, and order-preserving objects.
    Values printed by {!to_string} parse back to equal values with
    {!of_string}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val pp : Format.formatter -> t -> unit
(** Same compact rendering, onto a formatter. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error. The error
    string includes the byte offset. *)

val equal : t -> t -> bool
(** Structural equality; object field order is significant. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] otherwise. *)

val to_int : t -> int option

val to_float : t -> float option
(** [Int] values widen; everything non-numeric is [None]. *)

val to_list : t -> t list option
val to_str : t -> string option
