(* ------------------------------------------------------------------ *)
(* trace ids: 64 bits as 16 lowercase hex chars. Uniqueness needs no
   coordination: a process-wide counter breaks ties within a process,
   the monotonic clock across restarts, the pid across processes, and
   splitmix64's finalizer spreads the bits. *)

let counter = Atomic.make 0

let splitmix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let gen_id () =
  let c = Atomic.fetch_and_add counter 1 in
  let seed =
    Int64.add
      (Int64.add (Clock.now_ns ()) (Int64.of_int (c * 0x9e3779b9)))
      (Int64.mul (Int64.of_int (Unix.getpid ())) 0x100000001b3L)
  in
  Printf.sprintf "%016Lx" (splitmix64 seed)

let is_id s =
  String.length s = 16
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

(* ------------------------------------------------------------------ *)

type tier = Response | Disk | Memo | Cold | None_

let tier_name = function
  | Response -> "response"
  | Disk -> "disk"
  | Memo -> "memo"
  | Cold -> "cold"
  | None_ -> "none"

let tiers = [ Response; Disk; Memo; Cold; None_ ]

type entry = {
  trace_id : string;
  endpoint : string;
  source_digest : string;
  tier : tier;
  degraded : int;
  error : bool;
  wall_ns : int64;
  ts_ms : int;
  spans : Span.span array;
}

let entry_to_json e =
  Json.Obj
    [
      ("trace_id", Json.String e.trace_id);
      ("endpoint", Json.String e.endpoint);
      ("source_digest", Json.String e.source_digest);
      ("tier", Json.String (tier_name e.tier));
      ("degraded", Json.Int e.degraded);
      ("error", Json.Bool e.error);
      ("wall_ns", Json.Int (Int64.to_int e.wall_ns));
      ("ts_ms", Json.Int e.ts_ms);
      ("captured", Json.Bool (Array.length e.spans > 0));
    ]

(* ------------------------------------------------------------------ *)

module Sampler = struct
  type t = { period : int; threshold_ns : int64; mutable tick : int }

  let create ?(period = 1) ?(threshold_ns = 0L) () =
    { period = max 0 period; threshold_ns; tick = 0 }

  let period t = t.period
  let threshold_ns t = t.threshold_ns

  let arm t =
    if t.period <= 0 then false
    else begin
      let hit = t.tick mod t.period = 0 in
      t.tick <- t.tick + 1;
      hit
    end

  let retain t ~wall_ns = Int64.compare wall_ns t.threshold_ns >= 0
end

(* ------------------------------------------------------------------ *)

module Ring = struct
  type t = {
    recent_cap : int;
    top_cap : int;
    recent : entry option array;  (* circular, [head] = next write slot *)
    mutable head : int;
    mutable top : entry list;  (* slowest first, length <= top_cap *)
    mutable last_capture : entry option;
    mutable total : int;
  }

  let create ?(recent = 64) ?(top = 16) () =
    let recent_cap = max 1 recent and top_cap = max 1 top in
    {
      recent_cap;
      top_cap;
      recent = Array.make recent_cap None;
      head = 0;
      top = [];
      last_capture = None;
      total = 0;
    }

  (* the top board stays sorted slowest-first; ties keep the earlier
     entry ahead so the board is stable under equal latencies *)
  let insert_top t e =
    let rec go n = function
      | [] -> if n < t.top_cap then [ e ] else []
      | x :: tl when Int64.compare e.wall_ns x.wall_ns > 0 ->
          (* e displaces x; keep the rest, truncated to capacity *)
          let rec take k l =
            if k = 0 then []
            else match l with [] -> [] | y :: ys -> y :: take (k - 1) ys
          in
          e :: take (t.top_cap - n - 1) (x :: tl)
      | x :: tl -> x :: go (n + 1) tl
    in
    t.top <- go 0 t.top

  let add t e =
    t.total <- t.total + 1;
    t.recent.(t.head) <- Some e;
    t.head <- (t.head + 1) mod t.recent_cap;
    insert_top t e;
    if Array.length e.spans > 0 then t.last_capture <- Some e

  let recent ?n t =
    let n = match n with None -> t.recent_cap | Some n -> max 0 n in
    let rec go i acc =
      if List.length acc >= n || i >= t.recent_cap then List.rev acc
      else
        let slot = (t.head - 1 - i + (2 * t.recent_cap)) mod t.recent_cap in
        match t.recent.(slot) with
        | None -> List.rev acc
        | Some e -> go (i + 1) (e :: acc)
    in
    go 0 []

  let top ?n t =
    match n with
    | None -> t.top
    | Some n ->
        let rec take k l =
          if k <= 0 then []
          else match l with [] -> [] | x :: xs -> x :: take (k - 1) xs
        in
        take n t.top

  let last_capture t = t.last_capture

  let find t id =
    let matches e = e.trace_id = id in
    let candidates =
      Option.to_list (Option.bind t.last_capture (fun e ->
          if matches e then Some e else None))
      @ List.filter matches (recent t)
      @ List.filter matches t.top
    in
    (* prefer a copy that still carries its spans *)
    match List.find_opt (fun e -> Array.length e.spans > 0) candidates with
    | Some e -> Some e
    | None -> ( match candidates with [] -> None | e :: _ -> Some e)

  let total t = t.total
end
