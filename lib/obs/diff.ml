type row = {
  label : string;
  base_count : int;
  cur_count : int;
  base_ns : float;
  cur_ns : float;
  breach : bool;
}

type report = { rows : row list; threshold : float; min_ns : float }

(* both snapshot generations diff cleanly: /2 only added cache fields,
   which the extraction below never reads *)
let schemas = [ "deptest-metrics/1"; "deptest-metrics/2" ]

(* ------------------------------------------------------------------ *)
(* extraction: one (label, count, ns) triple per test kind, per phase,
   plus the pair total, from a deptest-metrics snapshot *)

let field name j = Json.member name j

let int_field ?(default = 0) name j =
  match Option.bind (field name j) Json.to_int with
  | Some n -> n
  | None -> default

let extract j =
  match Option.bind (field "schema" j) Json.to_str with
  | Some s when List.mem s schemas ->
      let tests =
        match Option.bind (field "tests" j) Json.to_list with
        | None -> []
        | Some rows ->
            List.filter_map
              (fun r ->
                Option.map
                  (fun kind ->
                    ( "test:" ^ kind,
                      int_field "applied" r,
                      int_field "total_ns" r ))
                  (Option.bind (field "kind" r) Json.to_str))
              rows
      in
      let phases =
        match field "phases" j with
        | Some (Json.Obj fields) ->
            List.filter_map
              (fun (name, v) ->
                match (Filename.check_suffix name "_ns", Json.to_int v) with
                | true, Some ns ->
                    Some
                      ( "phase:" ^ Filename.chop_suffix name "_ns",
                        0,
                        ns )
                | _ -> None)
              fields
        | _ -> []
      in
      let pairs =
        match field "pairs" j with
        | Some p ->
            [ ("pairs", int_field "tested" p, int_field "total_ns" p) ]
        | None -> []
      in
      Ok (tests @ phases @ pairs)
  | Some s ->
      Error
        (Printf.sprintf "expected schema %s, got %S"
           (String.concat " or " (List.map (Printf.sprintf "%S") schemas))
           s)
  | None -> Error "not a deptest-metrics snapshot (no schema field)"

(* ------------------------------------------------------------------ *)

let compare_json ?(threshold = 0.25) ?(min_ns = 10_000.) ~base ~cur () =
  match (extract base, extract cur) with
  | Error e, _ -> Error ("baseline: " ^ e)
  | _, Error e -> Error ("current: " ^ e)
  | Ok b, Ok c ->
      let labels =
        List.map (fun (l, _, _) -> l) b
        @ List.filter_map
            (fun (l, _, _) ->
              if List.exists (fun (l', _, _) -> l' = l) b then None else Some l)
            c
      in
      let find l rows =
        match List.find_opt (fun (l', _, _) -> l' = l) rows with
        | Some (_, count, ns) -> (count, float_of_int ns)
        | None -> (0, 0.)
      in
      let rows =
        List.map
          (fun l ->
            let base_count, base_ns = find l b in
            let cur_count, cur_ns = find l c in
            (* a breach needs both a relative regression past the
               threshold and an absolute growth past [min_ns] — tiny
               phases jitter by large factors without meaning anything *)
            let breach =
              cur_ns > base_ns *. (1. +. threshold)
              && cur_ns -. base_ns >= min_ns
            in
            { label = l; base_count; cur_count; base_ns; cur_ns; breach })
          labels
      in
      Ok { rows; threshold; min_ns }

let has_breach r = List.exists (fun row -> row.breach) r.rows

let pp ppf r =
  Format.fprintf ppf "%-24s %9s %9s %12s %12s %8s@." "metric" "base#" "cur#"
    "base(us)" "cur(us)" "delta";
  List.iter
    (fun row ->
      if row.base_ns <> 0. || row.cur_ns <> 0. || row.base_count <> 0
         || row.cur_count <> 0
      then begin
        let delta =
          if row.base_ns = 0. then (if row.cur_ns = 0. then 0. else infinity)
          else 100. *. (row.cur_ns -. row.base_ns) /. row.base_ns
        in
        Format.fprintf ppf "%-24s %9d %9d %12.1f %12.1f %+7.1f%%%s@."
          row.label row.base_count row.cur_count (row.base_ns /. 1e3)
          (row.cur_ns /. 1e3) delta
          (if row.breach then "  REGRESSION" else "")
      end)
    r.rows;
  if has_breach r then
    Format.fprintf ppf
      "regression: at least one metric grew past +%.0f%% (and +%.0fus \
       absolute)@."
      (100. *. r.threshold) (r.min_ns /. 1e3)
  else
    Format.fprintf ppf "no regression past +%.0f%% (min +%.0fus absolute)@."
      (100. *. r.threshold) (r.min_ns /. 1e3)
