type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printing                                                            *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.17g" f in
    let short = Printf.sprintf "%.12g" f in
    if float_of_string short = f then short else s

let rec print_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_into buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          print_into buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          print_into buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print_into buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* ------------------------------------------------------------------ *)
(* parsing: recursive descent                                          *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let utf8_of_code buf c =
    (* encode one Unicode scalar (or lone surrogate, passed through) *)
    if c < 0x80 then Buffer.add_char buf (Char.chr c)
    else if c < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (c lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3f)))
    end
    else if c < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (c lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (c lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3f)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some v -> v
    | None -> fail "invalid \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' -> (
          advance ();
          if !pos >= n then fail "unterminated escape";
          let c = s.[!pos] in
          advance ();
          match c with
          | '"' -> Buffer.add_char buf '"'; go ()
          | '\\' -> Buffer.add_char buf '\\'; go ()
          | '/' -> Buffer.add_char buf '/'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'u' ->
              let c1 = hex4 () in
              let code =
                if c1 >= 0xd800 && c1 <= 0xdbff && !pos + 6 <= n
                   && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let c2 = hex4 () in
                  if c2 >= 0xdc00 && c2 <= 0xdfff then
                    0x10000 + ((c1 - 0xd800) lsl 10) + (c2 - 0xdc00)
                  else begin
                    utf8_of_code buf c1;
                    c2
                  end
                end
                else c1
              in
              utf8_of_code buf code;
              go ()
          | _ -> fail "invalid escape")
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9') -> advance (); go ()
      | Some ('.' | 'e' | 'E' | '+' | '-') ->
          is_float := true;
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    let tok = String.sub s start (!pos - start) in
    if tok = "" || tok = "-" then fail "invalid number";
    if !is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "invalid number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "invalid number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" p msg)

(* ------------------------------------------------------------------ *)

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> a = b
  | String a, String b -> a = b
  | List a, List b -> List.length a = List.length b && List.for_all2 equal a b
  | Obj a, Obj b ->
      List.length a = List.length b
      && List.for_all2 (fun (k, v) (k', v') -> k = k' && equal v v') a b
  | _ -> false

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None
let to_list = function List xs -> Some xs | _ -> None
let to_str = function String s -> Some s | _ -> None
