type kind =
  | Analyze
  | Enumerate
  | Test_phase
  | Orient
  | Pair
  | Partition
  | Test of Test_kind.t
  | Delta
  | Delta_pass
  | Banerjee
  | Merge
  | Parse
  | Worker
  | Task
  | Queue_wait
  | Shard
  | Steal
  | Request

let kind_name = function
  | Analyze -> "analyze"
  | Enumerate -> "enumerate"
  | Test_phase -> "test-phase"
  | Orient -> "orient"
  | Pair -> "pair"
  | Partition -> "partition"
  | Test k -> "test:" ^ Test_kind.slug k
  | Delta -> "delta"
  | Delta_pass -> "delta-pass"
  | Banerjee -> "banerjee"
  | Merge -> "merge"
  | Parse -> "parse"
  | Worker -> "worker"
  | Task -> "task"
  | Queue_wait -> "queue-wait"
  | Shard -> "shard"
  | Steal -> "steal"
  | Request -> "request"

type span = {
  kind : kind;
  domain : int;
  parent : int;
  t0_ns : int64;
  t1_ns : int64;
  minor_words : float;
  major_words : float;
}

let dur_ns s = Int64.sub s.t1_ns s.t0_ns

(* ------------------------------------------------------------------ *)
(* per-domain buffer: an append-only array of cells plus the stack of
   open spans. Exactly one domain ever writes a given buffer, so the
   cells need no synchronization — only the registry in [profiler]
   below is shared. *)

type cell = {
  ckind : kind;
  cparent : int;  (* slot in this buffer, -1 for a root span *)
  ct0 : int64;
  mutable ct1 : int64;  (* 0 while the span is open *)
  mutable cminor : float;
  mutable cmajor : float;
}

type t = {
  bdomain : int;
  bgc : bool;
  mutable cells : cell array;
  mutable len : int;
  mutable stack : int list;  (* open slots, innermost first *)
}

let dummy_cell =
  { ckind = Pair; cparent = -1; ct0 = 0L; ct1 = 0L; cminor = 0.; cmajor = 0. }

let create ~gc domain =
  { bdomain = domain; bgc = gc; cells = Array.make 64 dummy_cell; len = 0;
    stack = [] }

let domain b = b.bdomain
let length b = b.len

let push b c =
  let n = Array.length b.cells in
  if b.len = n then begin
    let bigger = Array.make (2 * n) dummy_cell in
    Array.blit b.cells 0 bigger 0 n;
    b.cells <- bigger
  end;
  b.cells.(b.len) <- c;
  b.len <- b.len + 1

let gc_words b =
  if b.bgc then
    let s = Gc.quick_stat () in
    (s.Gc.minor_words, s.Gc.major_words)
  else (0., 0.)

let parent_slot b = match b.stack with [] -> -1 | p :: _ -> p

let enter b k =
  let slot = b.len in
  let minor, major = gc_words b in
  push b
    {
      ckind = k;
      cparent = parent_slot b;
      ct0 = Clock.now_ns ();
      ct1 = 0L;
      cminor = minor;
      cmajor = major;
    };
  b.stack <- slot :: b.stack;
  slot

let exit_ b slot =
  let c = b.cells.(slot) in
  c.ct1 <- Clock.now_ns ();
  (if b.bgc then begin
     let minor, major = gc_words b in
     c.cminor <- minor -. c.cminor;
     c.cmajor <- major -. c.cmajor
   end);
  (* LIFO in the normal case; a non-top exit (possible only on unusual
     exception paths) drops the mismatched opens *)
  match b.stack with
  | s :: tl when s = slot -> b.stack <- tl
  | st -> b.stack <- List.filter (fun s -> s <> slot) st

let record b k ~t0_ns ~t1_ns =
  push b
    {
      ckind = k;
      cparent = parent_slot b;
      ct0 = t0_ns;
      ct1 = t1_ns;
      cminor = 0.;
      cmajor = 0.;
    }

let with_ b k f =
  match b with
  | None -> f ()
  | Some b ->
      let slot = enter b k in
      Fun.protect ~finally:(fun () -> exit_ b slot) f

(* ------------------------------------------------------------------ *)
(* profiler: the registry of per-domain buffers and the deterministic
   merge *)

type profiler = {
  pgc : bool;
  lock : Mutex.t;
  mutable bufs : t list;  (* unordered; sorted by domain id at dump *)
}

let profiler ?(gc = false) () = { pgc = gc; lock = Mutex.create (); bufs = [] }

let buffer p ~domain =
  Mutex.lock p.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock p.lock)
    (fun () ->
      match List.find_opt (fun b -> b.bdomain = domain) p.bufs with
      | Some b -> b
      | None ->
          let b = create ~gc:p.pgc domain in
          p.bufs <- b :: p.bufs;
          b)

let buffers p =
  Mutex.lock p.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock p.lock)
    (fun () -> List.sort (fun a b -> compare a.bdomain b.bdomain) p.bufs)

let spans p =
  let bufs = buffers p in
  (* pass 1: assign merged indices to the closed cells, buffer by buffer
     in domain-id order — the merge is deterministic because each
     buffer's cells are already in that domain's append order *)
  let maps =
    List.map
      (fun b ->
        let map = Array.make b.len (-1) in
        (b, map))
      bufs
  in
  let count = ref 0 in
  List.iter
    (fun (b, map) ->
      for i = 0 to b.len - 1 do
        if b.cells.(i).ct1 <> 0L then begin
          map.(i) <- !count;
          incr count
        end
      done)
    maps;
  let out = Array.make !count
      { kind = Pair; domain = 0; parent = -1; t0_ns = 0L; t1_ns = 0L;
        minor_words = 0.; major_words = 0. }
  in
  List.iter
    (fun (b, map) ->
      (* an unclosed (dropped) parent re-parents its children to the
         nearest closed ancestor *)
      let rec resolve slot =
        if slot < 0 then -1
        else if map.(slot) >= 0 then map.(slot)
        else resolve b.cells.(slot).cparent
      in
      for i = 0 to b.len - 1 do
        if map.(i) >= 0 then begin
          let c = b.cells.(i) in
          out.(map.(i)) <-
            {
              kind = c.ckind;
              domain = b.bdomain;
              parent = resolve c.cparent;
              t0_ns = c.ct0;
              t1_ns = c.ct1;
              minor_words = c.cminor;
              major_words = c.cmajor;
            }
        end
      done)
    maps;
  out
