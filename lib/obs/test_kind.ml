type t =
  | Ziv_test
  | Strong_siv
  | Weak_zero_siv
  | Weak_crossing_siv
  | Exact_siv
  | Rdiv_test
  | Gcd_miv
  | Banerjee_miv
  | Delta_test
  | Symbolic_ziv

let all =
  [
    Ziv_test;
    Strong_siv;
    Weak_zero_siv;
    Weak_crossing_siv;
    Exact_siv;
    Rdiv_test;
    Gcd_miv;
    Banerjee_miv;
    Delta_test;
    Symbolic_ziv;
  ]

let count = 10

let id = function
  | Ziv_test -> 0
  | Strong_siv -> 1
  | Weak_zero_siv -> 2
  | Weak_crossing_siv -> 3
  | Exact_siv -> 4
  | Rdiv_test -> 5
  | Gcd_miv -> 6
  | Banerjee_miv -> 7
  | Delta_test -> 8
  | Symbolic_ziv -> 9

let name = function
  | Ziv_test -> "ZIV"
  | Strong_siv -> "strong SIV"
  | Weak_zero_siv -> "weak-zero SIV"
  | Weak_crossing_siv -> "weak-crossing SIV"
  | Exact_siv -> "exact SIV"
  | Rdiv_test -> "RDIV"
  | Gcd_miv -> "GCD"
  | Banerjee_miv -> "Banerjee"
  | Delta_test -> "Delta"
  | Symbolic_ziv -> "symbolic ZIV"

let slug = function
  | Ziv_test -> "ziv"
  | Strong_siv -> "strong_siv"
  | Weak_zero_siv -> "weak_zero_siv"
  | Weak_crossing_siv -> "weak_crossing_siv"
  | Exact_siv -> "exact_siv"
  | Rdiv_test -> "rdiv"
  | Gcd_miv -> "gcd_miv"
  | Banerjee_miv -> "banerjee_miv"
  | Delta_test -> "delta"
  | Symbolic_ziv -> "symbolic_ziv"

let of_slug s = List.find_opt (fun k -> slug k = s) all
