(** Atomic file writes for observability artifacts.

    Traces, metrics snapshots, Chrome timelines, and ledger records are
    consumed by other tools ([jq], Perfetto, CI diffs); a run interrupted
    mid-write must never leave a truncated JSON behind. *)

val write_atomic : string -> string -> unit
(** [write_atomic path content] writes [content] to [path ^ ".tmp"],
    fsyncs, and renames it over [path] — readers see either the old file
    or the complete new one, even across a crash between the rename and
    writeback. Raises [Sys_error] as [open_out]/[Sys.rename] do; the
    temporary file is removed on a write error. *)

val write_atomic_with : string -> (out_channel -> unit) -> unit
(** [write_atomic_with path write] is {!write_atomic} with the content
    streamed by the [write] callback instead of built in memory — used
    for ledger appends, where the existing records are copied through.
    If [write] raises, the temporary file is removed (no [*.tmp] litter
    next to baselines) and the exception is re-raised; [path] is left
    untouched either way. *)
