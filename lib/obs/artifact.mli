(** Atomic file writes for observability artifacts.

    Traces, metrics snapshots, and Chrome timelines are consumed by
    other tools ([jq], Perfetto, CI diffs); a run interrupted mid-write
    must never leave a truncated JSON behind. *)

val write_atomic : string -> string -> unit
(** [write_atomic path content] writes [content] to [path ^ ".tmp"] and
    renames it over [path] — readers see either the old file or the
    complete new one. Raises [Sys_error] as [open_out]/[Sys.rename] do;
    the temporary file is removed on a write error. *)
