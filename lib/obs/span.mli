(** Timeline spans: per-domain, append-only buffers of timestamped
    begin/end intervals over the driver stack.

    Where {!Metrics} answers "how much, in total" and {!Trace} answers
    "why, step by step", Span answers "when, and on which domain": every
    instrumented region ([Analyze] phases, per-pair driver work, Delta
    passes, Banerjee hierarchy evaluations, engine worker loops) becomes
    one interval on the shared monotonic clock ({!Clock.now_ns}).

    The discipline matches the rest of the observability layer: the
    driver threads a [t option] and checks it once per region — with
    [None] end to end, no clock is read and nothing is allocated
    ({!with_} on [None] is just a call of the thunk).

    Concurrency contract: a buffer belongs to exactly one domain (the
    engine hands worker [w] the buffer for domain [w]); only the
    {!profiler} registry is mutex-protected. After the parallel region
    has joined, {!spans} merges the buffers deterministically in
    domain-id order. *)

type kind =
  | Analyze  (** one whole [Analyze.run] *)
  | Enumerate  (** reference-pair enumeration *)
  | Test_phase  (** the (possibly parallel) pair-testing loop *)
  | Orient  (** the sequential direction-vector orientation pass *)
  | Pair  (** one reference pair through the §3 driver *)
  | Partition  (** subscript classification + partitioning *)
  | Test of Test_kind.t  (** one dependence test application *)
  | Delta  (** one coupled group through the Delta test (§5) *)
  | Delta_pass  (** one Delta constraint-propagation pass *)
  | Banerjee  (** one Banerjee-GCD direction-vector hierarchy (§4.4) *)
  | Merge  (** per-pair direction-vector merge *)
  | Parse  (** frontend parse + lowering *)
  | Worker  (** one engine worker's whole loop *)
  | Task  (** one grain-sized work leaf executed by a worker *)
  | Queue_wait  (** a worker acquiring work (pop, steal, backoff) *)
  | Shard  (** one routine analyzed as a unit by a batched run *)
  | Steal  (** instant: a range taken from another worker's deque *)
  | Request
      (** one whole daemon request (serve): the root every other span of
          a request-scoped capture nests under *)

val kind_name : kind -> string
(** Stable slug, e.g. ["test:strong_siv"], ["queue-wait"] — the span
    name in both exporters ({!Timeline}). *)

type span = {
  kind : kind;
  domain : int;  (** the buffer's domain id (engine worker id) *)
  parent : int;  (** index into the merged {!spans} array, [-1] = root *)
  t0_ns : int64;
  t1_ns : int64;
  minor_words : float;  (** Gc minor-word delta; [0.] unless [gc] *)
  major_words : float;
}

val dur_ns : span -> int64

type t
(** One domain's buffer. Not thread-safe — single-writer by design. *)

val create : gc:bool -> int -> t
(** [create ~gc domain] — a standalone buffer (tests, ad-hoc use).
    Driver code obtains buffers through a {!profiler} instead. With
    [gc], {!enter}/{!exit_} sample [Gc.quick_stat] and store the
    minor/major word deltas on the span. *)

val domain : t -> int
val length : t -> int

val enter : t -> kind -> int
(** Open a span: records the begin timestamp, parents it under the
    innermost open span, returns the slot to pass to {!exit_}. *)

val exit_ : t -> int -> unit
(** Close the span opened as [slot]: records the end timestamp (and Gc
    deltas) and pops it. Spans still open when the buffer is dumped are
    dropped by {!spans}. *)

val record : t -> kind -> t0_ns:int64 -> t1_ns:int64 -> unit
(** Append an already-measured leaf span (the driver times the exact
    test kernels itself and reports them after the fact). Parented
    under the innermost open span. *)

val with_ : t option -> kind -> (unit -> 'a) -> 'a
(** [with_ (Some b) k f] runs [f] inside an [enter]/[exit_] bracket
    (exception-safe); [with_ None k f] is [f ()] — no clock read, no
    allocation. *)

type profiler
(** The shared registry of per-domain buffers for one profiled run. *)

val profiler : ?gc:bool -> unit -> profiler
(** [gc] (default off) turns on Gc word-delta sampling in every buffer. *)

val buffer : profiler -> domain:int -> t
(** The buffer for [domain], created on first request. Safe to call from
    any domain; returns the same buffer for the same id. *)

val spans : profiler -> span array
(** Merge all buffers into one array, buffers in domain-id order, each
    buffer's spans in its append order — deterministic for a given set
    of buffer contents. [parent] fields are re-indexed into the merged
    array; unclosed spans are dropped and their children re-parented to
    the nearest closed ancestor. *)
