(** Structured tracing for the dependence-test driver.

    The driver ([Analyze] / [Pair_test] / [Delta] in the core library)
    threads an optional {!sink} through every reference-pair test. Each
    step emits one typed {!event}; nesting is tracked by {!scope}, so the
    flat event sequence reconstructs into a {!node} tree:

    {v
    pair A S1 -> S2                         (Pair_start, from Analyze)
      partition: ...                        (Partitioned, from Pair_test)
      strong SIV <I+1, I>: dependent — ...  (Test)
      coupled group at positions [1 2]      (Group_start)
        delta pass 1                        (Pass, from Delta)
        ZIV test <N, N>: inconclusive — ... (Test)
        constraint on I: ...                (Constraint)
      verdict: dependent — ...              (Verdict, from Analyze)
    v}

    Tracing disabled means the sink is [None] end to end: the driver
    checks the option once per pair and builds no event (and allocates
    nothing) when absent. *)

type verdict = Independent | Dependent | Inconclusive
(** Per-test outcome: [Inconclusive] is a test that neither proved
    independence nor produced final dependence information on its own
    (e.g. a GCD test that "may" depend). *)

type event =
  | Pair_start of { array : string; src_stmt : int; snk_stmt : int }
      (** one reference pair enters the driver *)
  | Partitioned of {
      dims : int;
      nonlinear : int;
      separable : int;
      coupled_groups : int;
    }  (** subscript positions partitioned (driver step 2-3, paper §3) *)
  | Group_start of { positions : int list }
      (** a minimal coupled group enters the Delta test *)
  | Pass of int  (** Delta constraint-propagation pass *)
  | Test of {
      kind : Test_kind.t;
      subscript : string;
      verdict : verdict;
      reason : string;
    }  (** one dependence test applied to one subscript pair *)
  | Constraint of { index : string; constr : string; note : string }
      (** Delta constraint intersection on one index *)
  | Verdict of { independent : bool; reason : string }
      (** final per-pair verdict *)
  | Note of string  (** free-form step (propagation, refinements) *)

type sink

val make : unit -> sink
val emit : sink -> event -> unit

val scope : sink -> (unit -> 'a) -> 'a
(** Run the thunk one nesting level deeper: events it emits become
    children of the most recent event. Exception-safe. *)

val events : sink -> event list
(** All events in emission order. *)

val events_with_depth : sink -> (int * event) list

val events_timed : sink -> (event * int64 * int64) list
(** [(event, ts_ns, dur_ns)] in emission order. [ts_ns] is the absolute
    {!Clock.now_ns} sample at emission (same clock as {!Span});
    [dur_ns] is [0] for instant events and the elapsed scope time for
    events that opened a {!scope}. *)

type node = { event : event; children : node list }

val tree : sink -> node list
(** Reconstruct the trace forest (one root per [Pair_start] — or per
    top-level event when the driver is called below [Analyze]). *)

val pp_event : Format.formatter -> event -> unit

val pp_tree : Format.formatter -> sink -> unit
(** The human-readable explain rendering: one line per event, indented
    two spaces per nesting level. *)

val event_to_json :
  seq:int -> depth:int -> ?ts_ns:int64 -> ?dur_ns:int64 -> event -> Json.t

val to_jsonl : sink -> string
(** One JSON object per line per event, in emission order
    ([deptest-trace/2]). Every line has ["seq"], ["depth"], ["type"],
    ["ts_ns"] (nanoseconds since the sink's first event, monotonic
    clock shared with {!Span}), and ["dur_ns"] (scope duration for
    events that opened one, [0] otherwise); the remaining fields mirror
    the event payload (see README). *)
