let min_t0 spans =
  Array.fold_left
    (fun acc (s : Span.span) ->
      if Int64.compare s.Span.t0_ns acc < 0 then s.Span.t0_ns else acc)
    (if Array.length spans = 0 then 0L else spans.(0).Span.t0_ns)
    spans

let domains spans =
  Array.fold_left
    (fun acc (s : Span.span) ->
      if List.mem s.Span.domain acc then acc else s.Span.domain :: acc)
    [] spans
  |> List.sort compare

let us_of_ns ns = Int64.to_float ns /. 1_000.0

let to_chrome ?(process = "deptest") spans =
  let t0 = min_t0 spans in
  let meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.String process) ]);
      ]
    :: List.map
         (fun d ->
           Json.Obj
             [
               ("name", Json.String "thread_name");
               ("ph", Json.String "M");
               ("pid", Json.Int 1);
               ("tid", Json.Int d);
               ( "args",
                 Json.Obj
                   [ ("name", Json.String (Printf.sprintf "domain %d" d)) ] );
             ])
         (domains spans)
  in
  (* complete ("X") events sorted by begin time; the sort is stable, so
     within one tid the buffer's append order — which is begin order —
     is preserved and Perfetto reconstructs the nesting *)
  let order = Array.init (Array.length spans) Fun.id in
  Array.stable_sort
    (fun a b -> Int64.compare spans.(a).Span.t0_ns spans.(b).Span.t0_ns)
    order;
  let events =
    Array.to_list
      (Array.map
         (fun i ->
           let s = spans.(i) in
           let args =
             (if s.Span.minor_words <> 0. then
                [ ("gc_minor_words", Json.Float s.Span.minor_words) ]
              else [])
             @
             if s.Span.major_words <> 0. then
               [ ("gc_major_words", Json.Float s.Span.major_words) ]
             else []
           in
           Json.Obj
             ([
                ("name", Json.String (Span.kind_name s.Span.kind));
                ("cat", Json.String "deptest");
                ("ph", Json.String "X");
                ("pid", Json.Int 1);
                ("tid", Json.Int s.Span.domain);
                ("ts", Json.Float (us_of_ns (Int64.sub s.Span.t0_ns t0)));
                ("dur", Json.Float (us_of_ns (Span.dur_ns s)));
              ]
             @ if args = [] then [] else [ ("args", Json.Obj args) ]))
         order)
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ events));
      ("displayTimeUnit", Json.String "ns");
    ]

(* ------------------------------------------------------------------ *)
(* folded stacks (flamegraph.pl input): one line per distinct stack,
   "domainD;outer;...;leaf self_ns" with self time as the sample count *)

let to_folded spans =
  let n = Array.length spans in
  (* self ns = dur - sum of direct children's durations *)
  let child_ns = Array.make n 0L in
  Array.iter
    (fun (s : Span.span) ->
      if s.Span.parent >= 0 then
        child_ns.(s.Span.parent) <-
          Int64.add child_ns.(s.Span.parent) (Span.dur_ns s))
    spans;
  let stack i =
    let rec go i acc =
      if i < 0 then acc
      else go spans.(i).Span.parent (Span.kind_name spans.(i).Span.kind :: acc)
    in
    Printf.sprintf "domain%d;%s" spans.(i).Span.domain
      (String.concat ";" (go i []))
  in
  let totals = Hashtbl.create 64 in
  Array.iteri
    (fun i s ->
      let self = Int64.sub (Span.dur_ns s) child_ns.(i) in
      let self = if Int64.compare self 0L < 0 then 0L else self in
      if Int64.compare self 0L > 0 then begin
        let key = stack i in
        let prev = Option.value (Hashtbl.find_opt totals key) ~default:0L in
        Hashtbl.replace totals key (Int64.add prev self)
      end)
    spans;
  let lines =
    Hashtbl.fold (fun k v acc -> Printf.sprintf "%s %Ld" k v :: acc) totals []
  in
  String.concat "\n" (List.sort compare lines)
  ^ if lines = [] then "" else "\n"
