(** Cross-run regression diffing of {!Metrics} snapshots.

    Two [deptest-metrics/1] or [/2] JSON snapshots (as printed by
    [deptest profile --json] or written by the bench harness) compare
    row-wise: one row per test kind ([test:<slug>], count = applied,
    ns = total), per phase ([phase:<name>]), plus the [pairs] total.
    Bench baselines, CI, and the [profile --diff] subcommand all consume
    this one report. *)

type row = {
  label : string;
  base_count : int;
  cur_count : int;
  base_ns : float;
  cur_ns : float;
  breach : bool;  (** this row regressed past the thresholds *)
}

type report = { rows : row list; threshold : float; min_ns : float }

val compare_json :
  ?threshold:float ->
  ?min_ns:float ->
  base:Json.t ->
  cur:Json.t ->
  unit ->
  (report, string) result
(** [threshold] (default [0.25]) is the relative ns growth that flags a
    regression; [min_ns] (default [10_000.]) is the absolute growth
    floor a row must also exceed — both must hold, so microsecond-scale
    rows don't flag on jitter. Labels missing on either side diff
    against zero. [Error] on a schema mismatch. *)

val has_breach : report -> bool

val pp : Format.formatter -> report -> unit
(** Per-row table (rows that are zero on both sides are elided) followed
    by a one-line verdict. *)
