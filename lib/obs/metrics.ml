type phase = Parse | Partition | Test | Merge

let phases = [ Parse; Partition; Test; Merge ]
let phase_id = function Parse -> 0 | Partition -> 1 | Test -> 2 | Merge -> 3

let phase_name = function
  | Parse -> "parse"
  | Partition -> "partition"
  | Test -> "test"
  | Merge -> "merge"

let n_phases = 4

let bucket_bounds_ns =
  [| 1_000L; 10_000L; 100_000L; 1_000_000L; 10_000_000L |]

let n_buckets = Array.length bucket_bounds_ns + 1

(* whole-request daemon latency: warm round trips sit in the tens of
   microseconds, cold analyses in the tens of milliseconds, so the
   request buckets run two decades above the per-pair ones. The top
   decade exists for saturation: with admission control a queued-then-
   admitted request can legitimately take seconds, and a histogram
   capped at 1s could not tell bounded queueing from a hang *)
let serve_bucket_bounds_ns =
  [| 100_000L; 1_000_000L; 10_000_000L; 100_000_000L; 1_000_000_000L;
     10_000_000_000L |]

let n_serve_buckets = Array.length serve_bucket_bounds_ns + 1

(* per-endpoint serve accounting: one row per protocol op *)
type serve_row = {
  mutable r_count : int;
  mutable r_sum_ns : int64;
  r_hist : int array;  (* per serve_bucket_bounds_ns + overflow *)
}

(* per-domain engine accounting: work executed by one worker domain *)
type engine_row = {
  mutable tasks : int;  (* grain-sized leaves executed *)
  mutable steals : int;  (* ranges this worker took from another deque *)
  mutable busy_ns : int64;  (* time inside leaf bodies *)
  mutable wait_ns : int64;  (* time acquiring work (pop, steal, backoff) *)
}

type t = {
  applied : int array;  (* per Test_kind.id *)
  indep : int array;
  kind_ns : int64 array;
  phase_ns : int64 array;  (* per phase_id *)
  hist : int array;  (* per-pair latency buckets *)
  mutable pairs : int;
  mutable pair_ns : int64;
  mutable cache_hits : int;  (* pair verdicts served by the memo cache *)
  mutable cache_misses : int;
  mutable cache_size : int;  (* resident memo entries, snapshot after a run *)
  mutable cache_evictions : int;  (* entries dropped by capacity eviction *)
  (* disk-cache tier (serve daemon / cross-run store), snapshot semantics *)
  mutable disk_hits : int;
  mutable disk_misses : int;
  mutable disk_invalid : int;  (* corrupt segments / undecodable entries *)
  mutable bj_compile : int;  (* Banerjee linear-form kernel compilations *)
  mutable bj_inc_nodes : int;  (* hierarchy nodes via the incremental path *)
  mutable bj_scratch_nodes : int;  (* nodes re-evaluated from scratch *)
  mutable bj_caps : int;  (* vertex cross products hitting the combo cap *)
  (* pairs degraded to the conservative full direction-vector verdict,
     bucketed by the guard's reason *)
  mutable g_overflow : int;
  mutable g_exception : int;
  mutable g_budget : int;
  eng : (int, engine_row) Hashtbl.t;  (* per-domain engine rows *)
  mutable eng_registries : int;  (* worker registries merged into this one *)
  mutable eng_shards : int;  (* routine-grain shards dispatched to the pool *)
  serve : (string, serve_row) Hashtbl.t;  (* per-endpoint request rows *)
  answered : (string, int ref) Hashtbl.t;  (* analyze answers per cache tier *)
}

let create () =
  {
    applied = Array.make Test_kind.count 0;
    indep = Array.make Test_kind.count 0;
    kind_ns = Array.make Test_kind.count 0L;
    phase_ns = Array.make n_phases 0L;
    hist = Array.make n_buckets 0;
    pairs = 0;
    pair_ns = 0L;
    cache_hits = 0;
    cache_misses = 0;
    cache_size = 0;
    cache_evictions = 0;
    disk_hits = 0;
    disk_misses = 0;
    disk_invalid = 0;
    bj_compile = 0;
    bj_inc_nodes = 0;
    bj_scratch_nodes = 0;
    bj_caps = 0;
    g_overflow = 0;
    g_exception = 0;
    g_budget = 0;
    eng = Hashtbl.create 8;
    eng_registries = 0;
    eng_shards = 0;
    serve = Hashtbl.create 8;
    answered = Hashtbl.create 8;
  }

let now_ns = Clock.now_ns

let record t k ~indep ~ns =
  let i = Test_kind.id k in
  t.applied.(i) <- t.applied.(i) + 1;
  if indep then t.indep.(i) <- t.indep.(i) + 1;
  t.kind_ns.(i) <- Int64.add t.kind_ns.(i) ns

let add_phase_ns t p ns =
  let i = phase_id p in
  t.phase_ns.(i) <- Int64.add t.phase_ns.(i) ns

let timed m p f =
  match m with
  | None -> f ()
  | Some t ->
      let t0 = now_ns () in
      Fun.protect ~finally:(fun () -> add_phase_ns t p (Int64.sub (now_ns ()) t0)) f

let bucket_of ns =
  let rec go i =
    if i >= Array.length bucket_bounds_ns then i
    else if Int64.compare ns bucket_bounds_ns.(i) <= 0 then i
    else go (i + 1)
  in
  go 0

let observe_pair t ~ns =
  t.pairs <- t.pairs + 1;
  t.pair_ns <- Int64.add t.pair_ns ns;
  let b = bucket_of ns in
  t.hist.(b) <- t.hist.(b) + 1

let cache_hit t = t.cache_hits <- t.cache_hits + 1
let cache_miss t = t.cache_misses <- t.cache_misses + 1
let cache_hits t = t.cache_hits
let cache_misses t = t.cache_misses

let set_cache_usage t ~size ~evictions =
  t.cache_size <- size;
  t.cache_evictions <- evictions

let cache_size t = t.cache_size
let cache_evictions t = t.cache_evictions

let set_disk_cache t ~hits ~misses ~invalid =
  t.disk_hits <- hits;
  t.disk_misses <- misses;
  t.disk_invalid <- invalid

let disk_hits t = t.disk_hits
let disk_misses t = t.disk_misses
let disk_invalid t = t.disk_invalid

let banerjee_compile t = t.bj_compile <- t.bj_compile + 1

let banerjee_node t ~incremental =
  if incremental then t.bj_inc_nodes <- t.bj_inc_nodes + 1
  else t.bj_scratch_nodes <- t.bj_scratch_nodes + 1

let banerjee_cap t = t.bj_caps <- t.bj_caps + 1

let degraded t reason =
  match reason with
  | `Overflow -> t.g_overflow <- t.g_overflow + 1
  | `Exception -> t.g_exception <- t.g_exception + 1
  | `Budget -> t.g_budget <- t.g_budget + 1

let degraded_pairs t = t.g_overflow + t.g_exception + t.g_budget

let degraded_by t reason =
  match reason with
  | `Overflow -> t.g_overflow
  | `Exception -> t.g_exception
  | `Budget -> t.g_budget

let engine_row t domain =
  match Hashtbl.find_opt t.eng domain with
  | Some r -> r
  | None ->
      let r = { tasks = 0; steals = 0; busy_ns = 0L; wait_ns = 0L } in
      Hashtbl.replace t.eng domain r;
      r

let engine_task t ~domain ~ns =
  let r = engine_row t domain in
  r.tasks <- r.tasks + 1;
  r.busy_ns <- Int64.add r.busy_ns ns

let engine_wait t ~domain ~ns =
  let r = engine_row t domain in
  r.wait_ns <- Int64.add r.wait_ns ns

let engine_steal t ~domain =
  let r = engine_row t domain in
  r.steals <- r.steals + 1

let engine_registry t = t.eng_registries <- t.eng_registries + 1
let engine_registries t = t.eng_registries
let engine_shards t ~n = t.eng_shards <- t.eng_shards + n
let shards t = t.eng_shards

let engine_rows t =
  Hashtbl.fold
    (fun d r acc -> (d, r.tasks, r.steals, r.busy_ns, r.wait_ns) :: acc)
    t.eng []
  |> List.sort (fun (a, _, _, _, _) (b, _, _, _, _) -> compare a b)
let serve_row t endpoint =
  match Hashtbl.find_opt t.serve endpoint with
  | Some r -> r
  | None ->
      let r = { r_count = 0; r_sum_ns = 0L; r_hist = Array.make n_serve_buckets 0 }
      in
      Hashtbl.replace t.serve endpoint r;
      r

let serve_bucket_of ns =
  let rec go i =
    if i >= Array.length serve_bucket_bounds_ns then i
    else if Int64.compare ns serve_bucket_bounds_ns.(i) <= 0 then i
    else go (i + 1)
  in
  go 0

let serve_endpoint t ~endpoint = ignore (serve_row t endpoint)

let serve_request t ~endpoint ~ns =
  let r = serve_row t endpoint in
  r.r_count <- r.r_count + 1;
  r.r_sum_ns <- Int64.add r.r_sum_ns ns;
  let b = serve_bucket_of ns in
  r.r_hist.(b) <- r.r_hist.(b) + 1

let tier_cell t tier =
  match Hashtbl.find_opt t.answered tier with
  | Some c -> c
  | None ->
      let c = ref 0 in
      Hashtbl.replace t.answered tier c;
      c

let serve_tier t ~tier = ignore (tier_cell t tier)
let serve_answered t ~tier = incr (tier_cell t tier)

let serve_rows t =
  Hashtbl.fold
    (fun ep r acc -> (ep, r.r_count, r.r_sum_ns, Array.copy r.r_hist) :: acc)
    t.serve []
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b)

let serve_tiers t =
  Hashtbl.fold (fun tier c acc -> (tier, !c) :: acc) t.answered []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let banerjee_compilations t = t.bj_compile
let banerjee_incremental_nodes t = t.bj_inc_nodes
let banerjee_scratch_nodes t = t.bj_scratch_nodes
let banerjee_caps t = t.bj_caps

let applied t k = t.applied.(Test_kind.id k)
let proved_indep t k = t.indep.(Test_kind.id k)
let kind_ns t k = t.kind_ns.(Test_kind.id k)
let phase_ns t p = t.phase_ns.(phase_id p)
let pairs t = t.pairs
let pair_ns_total t = t.pair_ns
let latency_hist t = Array.copy t.hist

let merge_into acc extra =
  Array.iteri (fun i v -> acc.applied.(i) <- acc.applied.(i) + v) extra.applied;
  Array.iteri (fun i v -> acc.indep.(i) <- acc.indep.(i) + v) extra.indep;
  Array.iteri
    (fun i v -> acc.kind_ns.(i) <- Int64.add acc.kind_ns.(i) v)
    extra.kind_ns;
  Array.iteri
    (fun i v -> acc.phase_ns.(i) <- Int64.add acc.phase_ns.(i) v)
    extra.phase_ns;
  Array.iteri (fun i v -> acc.hist.(i) <- acc.hist.(i) + v) extra.hist;
  acc.pairs <- acc.pairs + extra.pairs;
  acc.pair_ns <- Int64.add acc.pair_ns extra.pair_ns;
  acc.cache_hits <- acc.cache_hits + extra.cache_hits;
  acc.cache_misses <- acc.cache_misses + extra.cache_misses;
  (* size/evictions are snapshots of a shared table, not per-registry
     increments: summing registries that observed the same cache would
     double-count, so the merge keeps the larger snapshot *)
  acc.cache_size <- max acc.cache_size extra.cache_size;
  acc.cache_evictions <- max acc.cache_evictions extra.cache_evictions;
  (* disk-tier counters are likewise snapshots of one shared store *)
  acc.disk_hits <- max acc.disk_hits extra.disk_hits;
  acc.disk_misses <- max acc.disk_misses extra.disk_misses;
  acc.disk_invalid <- max acc.disk_invalid extra.disk_invalid;
  acc.bj_compile <- acc.bj_compile + extra.bj_compile;
  acc.bj_inc_nodes <- acc.bj_inc_nodes + extra.bj_inc_nodes;
  acc.bj_scratch_nodes <- acc.bj_scratch_nodes + extra.bj_scratch_nodes;
  acc.bj_caps <- acc.bj_caps + extra.bj_caps;
  acc.g_overflow <- acc.g_overflow + extra.g_overflow;
  acc.g_exception <- acc.g_exception + extra.g_exception;
  acc.g_budget <- acc.g_budget + extra.g_budget;
  Hashtbl.iter
    (fun d (er : engine_row) ->
      let r = engine_row acc d in
      r.tasks <- r.tasks + er.tasks;
      r.steals <- r.steals + er.steals;
      r.busy_ns <- Int64.add r.busy_ns er.busy_ns;
      r.wait_ns <- Int64.add r.wait_ns er.wait_ns)
    extra.eng;
  acc.eng_registries <- acc.eng_registries + extra.eng_registries;
  acc.eng_shards <- acc.eng_shards + extra.eng_shards;
  Hashtbl.iter
    (fun ep (er : serve_row) ->
      let r = serve_row acc ep in
      r.r_count <- r.r_count + er.r_count;
      r.r_sum_ns <- Int64.add r.r_sum_ns er.r_sum_ns;
      Array.iteri (fun i v -> r.r_hist.(i) <- r.r_hist.(i) + v) er.r_hist)
    extra.serve;
  Hashtbl.iter
    (fun tier c ->
      let cell = tier_cell acc tier in
      cell := !cell + !c)
    extra.answered

let merge a b =
  let t = create () in
  merge_into t a;
  merge_into t b;
  t

(* ------------------------------------------------------------------ *)
(* export                                                              *)

let bucket_label i =
  if i < Array.length bucket_bounds_ns then
    let b = bucket_bounds_ns.(i) in
    if Int64.compare b 1_000_000L < 0 then
      Printf.sprintf "<=%Ldus" (Int64.div b 1_000L)
    else Printf.sprintf "<=%Ldms" (Int64.div b 1_000_000L)
  else ">10ms"

let serve_bucket_label i =
  if i < Array.length serve_bucket_bounds_ns then
    let b = serve_bucket_bounds_ns.(i) in
    if Int64.compare b 1_000_000L < 0 then
      Printf.sprintf "<=%Ldus" (Int64.div b 1_000L)
    else if Int64.compare b 1_000_000_000L < 0 then
      Printf.sprintf "<=%Ldms" (Int64.div b 1_000_000L)
    else Printf.sprintf "<=%Lds" (Int64.div b 1_000_000_000L)
  else ">10s"

(* the serve block appears only once the daemon reported, so batch-run
   snapshots (analyze --metrics-out, records, the drift ledger) are
   byte-identical to pre-serve ones *)
let serve_json t =
  if Hashtbl.length t.serve = 0 && Hashtbl.length t.answered = 0 then []
  else
    [
      ( "serve",
        Json.Obj
          [
            ( "endpoints",
              Json.List
                (List.map
                   (fun (ep, count, sum_ns, hist) ->
                     Json.Obj
                       [
                         ("endpoint", Json.String ep);
                         ("requests", Json.Int count);
                         ("total_ns", Json.Int (Int64.to_int sum_ns));
                         ( "latency_hist",
                           Json.List
                             (Array.to_list
                                (Array.mapi
                                   (fun i c ->
                                     Json.Obj
                                       [
                                         ( "le_ns",
                                           if
                                             i
                                             < Array.length
                                                 serve_bucket_bounds_ns
                                           then
                                             Json.Int
                                               (Int64.to_int
                                                  serve_bucket_bounds_ns.(i))
                                           else Json.Null );
                                         ( "label",
                                           Json.String (serve_bucket_label i)
                                         );
                                         ("count", Json.Int c);
                                       ])
                                   hist)) );
                       ])
                   (serve_rows t)) );
            ( "answered",
              Json.Obj
                (List.map (fun (tier, n) -> (tier, Json.Int n)) (serve_tiers t))
            );
          ] );
    ]

let to_json t =
  let tests =
    List.map
      (fun k ->
        let i = Test_kind.id k in
        Json.Obj
          [
            ("kind", Json.String (Test_kind.slug k));
            ("name", Json.String (Test_kind.name k));
            ("applied", Json.Int t.applied.(i));
            ("independent", Json.Int t.indep.(i));
            ("total_ns", Json.Int (Int64.to_int t.kind_ns.(i)));
          ])
      Test_kind.all
  in
  let phases_json =
    List.map
      (fun p -> (phase_name p ^ "_ns", Json.Int (Int64.to_int (phase_ns t p))))
      phases
  in
  let hist =
    List.init n_buckets (fun i ->
        Json.Obj
          [
            ( "le_ns",
              if i < Array.length bucket_bounds_ns then
                Json.Int (Int64.to_int bucket_bounds_ns.(i))
              else Json.Null );
            ("label", Json.String (bucket_label i));
            ("count", Json.Int t.hist.(i));
          ])
  in
  Json.Obj
    ([
      (* /2: the cache block gained size and evictions *)
      ("schema", Json.String "deptest-metrics/2");
      ("tests", Json.List tests);
      ("phases", Json.Obj phases_json);
      ( "pairs",
        Json.Obj
          [
            ("tested", Json.Int t.pairs);
            ("total_ns", Json.Int (Int64.to_int t.pair_ns));
            ("latency_hist", Json.List hist);
          ] );
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int t.cache_hits);
            ("misses", Json.Int t.cache_misses);
            ( "hit_rate",
              let n = t.cache_hits + t.cache_misses in
              Json.Float
                (if n = 0 then 0.
                 else float_of_int t.cache_hits /. float_of_int n) );
            ("size", Json.Int t.cache_size);
            ("evictions", Json.Int t.cache_evictions);
            ("disk_hits", Json.Int t.disk_hits);
            ("disk_misses", Json.Int t.disk_misses);
            ("disk_invalid", Json.Int t.disk_invalid);
          ] );
      ( "banerjee",
        Json.Obj
          [
            ("kernel_compilations", Json.Int t.bj_compile);
            ("incremental_nodes", Json.Int t.bj_inc_nodes);
            ("scratch_nodes", Json.Int t.bj_scratch_nodes);
            ("combo_cap_fallbacks", Json.Int t.bj_caps);
          ] );
      ( "guard",
        Json.Obj
          [
            ("degraded", Json.Int (degraded_pairs t));
            ( "by_reason",
              Json.Obj
                [
                  ("overflow", Json.Int t.g_overflow);
                  ("exception", Json.Int t.g_exception);
                  ("budget", Json.Int t.g_budget);
                ] );
          ] );
      ( "engine",
        let rows = engine_rows t in
        let sum f = List.fold_left (fun a r -> a + f r) 0 rows in
        let sum64 f = List.fold_left (fun a r -> Int64.add a (f r)) 0L rows in
        Json.Obj
          [
            ("registries", Json.Int t.eng_registries);
            ("shards", Json.Int t.eng_shards);
            ( "domains",
              Json.List
                (List.map
                   (fun (d, tasks, steals, busy, wait) ->
                     Json.Obj
                       [
                         ("domain", Json.Int d);
                         ("tasks", Json.Int tasks);
                         ("steals", Json.Int steals);
                         ("busy_ns", Json.Int (Int64.to_int busy));
                         ("queue_wait_ns", Json.Int (Int64.to_int wait));
                       ])
                   rows) );
            ("tasks", Json.Int (sum (fun (_, n, _, _, _) -> n)));
            ("steals", Json.Int (sum (fun (_, _, s, _, _) -> s)));
            ( "busy_ns",
              Json.Int (Int64.to_int (sum64 (fun (_, _, _, b, _) -> b))) );
            ( "queue_wait_ns",
              Json.Int (Int64.to_int (sum64 (fun (_, _, _, _, w) -> w))) );
          ] );
    ]
    @ serve_json t)

let us ns = Int64.to_float ns /. 1_000.0

let pp ppf t =
  Format.fprintf ppf "%-18s %9s %9s %12s %10s@." "test" "applied" "indep"
    "total(us)" "avg(ns)";
  List.iter
    (fun k ->
      let i = Test_kind.id k in
      let a = t.applied.(i) in
      if a > 0 then
        Format.fprintf ppf "%-18s %9d %9d %12.1f %10.0f@." (Test_kind.name k)
          a t.indep.(i)
          (us t.kind_ns.(i))
          (Int64.to_float t.kind_ns.(i) /. float_of_int a))
    Test_kind.all;
  Format.fprintf ppf "@.%-18s %12s@." "phase" "wall(us)";
  List.iter
    (fun p -> Format.fprintf ppf "%-18s %12.1f@." (phase_name p) (us (phase_ns t p)))
    phases;
  Format.fprintf ppf "@.pairs tested %d, total %.1f us@." t.pairs (us t.pair_ns);
  (if t.cache_hits + t.cache_misses > 0 then
     let n = t.cache_hits + t.cache_misses in
     Format.fprintf ppf
       "memo cache: %d hits / %d lookups (%.1f%%), %d entr%s resident, %d \
        evicted@."
       t.cache_hits n
       (100. *. float_of_int t.cache_hits /. float_of_int n)
       t.cache_size
       (if t.cache_size = 1 then "y" else "ies")
       t.cache_evictions);
  if t.disk_hits + t.disk_misses + t.disk_invalid > 0 then
    Format.fprintf ppf
      "disk cache: %d hits / %d lookups, %d invalid object(s)@." t.disk_hits
      (t.disk_hits + t.disk_misses)
      t.disk_invalid;
  if t.bj_compile + t.bj_inc_nodes + t.bj_scratch_nodes + t.bj_caps > 0 then
    Format.fprintf ppf
      "banerjee kernel: %d compiled, %d incremental / %d scratch nodes, %d \
       cap fallback(s)@."
      t.bj_compile t.bj_inc_nodes t.bj_scratch_nodes t.bj_caps;
  if degraded_pairs t > 0 then
    Format.fprintf ppf
      "guard: %d pair(s) degraded conservatively (%d overflow, %d \
       exception, %d budget)@."
      (degraded_pairs t) t.g_overflow t.g_exception t.g_budget;
  (let rows = engine_rows t in
   if rows <> [] then begin
     Format.fprintf ppf "engine: %d worker registr%s merged%t@."
       t.eng_registries
       (if t.eng_registries = 1 then "y" else "ies")
       (fun ppf ->
         if t.eng_shards > 0 then
           Format.fprintf ppf ", %d routine shard(s)" t.eng_shards);
     List.iter
       (fun (d, tasks, steals, busy, wait) ->
         Format.fprintf ppf
           "  domain %d: %d task(s), %d steal(s), busy %.1f us, queue wait \
            %.1f us@."
           d tasks steals (us busy) (us wait))
       rows
   end);
  (let rows = serve_rows t in
   if rows <> [] then begin
     List.iter
       (fun (ep, count, sum_ns, _) ->
         Format.fprintf ppf
           "serve %-10s %d request(s), total %.1f us, avg %.0f ns@." ep count
           (us sum_ns)
           (if count = 0 then 0.
            else Int64.to_float sum_ns /. float_of_int count))
       rows;
     match serve_tiers t with
     | [] -> ()
     | tiers ->
         Format.fprintf ppf "serve answered:";
         List.iter (fun (tier, n) -> Format.fprintf ppf " %s:%d" tier n) tiers;
         Format.fprintf ppf "@."
   end);
  Format.fprintf ppf "pair latency:";
  Array.iteri
    (fun i c -> if c > 0 then Format.fprintf ppf " %s:%d" (bucket_label i) c)
    t.hist;
  Format.fprintf ppf "@."

(* ------------------------------------------------------------------ *)
(* Prometheus text-format exposition (the surface a serve daemon's
   /metrics endpoint mounts). Metric names are stable; every per-kind
   series is emitted even at zero so scrapes never lose a series. *)

let prom_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_prometheus ?(build = []) t =
  let buf = Buffer.create 4096 in
  let family name typ help =
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name typ)
  in
  let sample ?labels name v =
    Buffer.add_string buf name;
    (match labels with
    | Some ls ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "%s=\"%s\"" k (prom_escape v)))
          ls;
        Buffer.add_char buf '}'
    | None -> ());
    Buffer.add_char buf ' ';
    Buffer.add_string buf v;
    Buffer.add_char buf '\n'
  in
  let int_sample ?labels name v = sample ?labels name (string_of_int v) in
  let ns_sample ?labels name v = sample ?labels name (Int64.to_string v) in
  let per_kind name f =
    List.iter
      (fun k -> f ~labels:[ ("kind", Test_kind.slug k) ] name (Test_kind.id k))
      Test_kind.all
  in
  (* identity first: scrapes correlate drift with deploys by joining on
     these labels (label values must stay space-free for text-format
     consumers that split on whitespace) *)
  family "deptest_build_info" "gauge"
    "Build and schema identity of this process (value is always 1).";
  sample
    ~labels:
      ([
         ("git", Build_id.git);
         ("metrics_schema", "deptest-metrics/2");
         ("trace_schema", "deptest-trace/2");
       ]
      @ build)
    "deptest_build_info" "1";
  family "deptest_tests_applied_total" "counter"
    "Dependence-test applications by test kind.";
  per_kind "deptest_tests_applied_total" (fun ~labels name i ->
      int_sample ~labels name t.applied.(i));
  family "deptest_tests_independent_total" "counter"
    "Independence proofs by test kind.";
  per_kind "deptest_tests_independent_total" (fun ~labels name i ->
      int_sample ~labels name t.indep.(i));
  family "deptest_test_ns_total" "counter"
    "Wall-clock nanoseconds inside each test kind.";
  per_kind "deptest_test_ns_total" (fun ~labels name i ->
      ns_sample ~labels name t.kind_ns.(i));
  family "deptest_phase_ns_total" "counter"
    "Wall-clock nanoseconds per analysis phase.";
  List.iter
    (fun p ->
      ns_sample
        ~labels:[ ("phase", phase_name p) ]
        "deptest_phase_ns_total" (phase_ns t p))
    phases;
  family "deptest_pairs_tested_total" "counter"
    "Reference pairs that completed the driver.";
  int_sample "deptest_pairs_tested_total" t.pairs;
  family "deptest_pair_latency_ns" "histogram"
    "Per-reference-pair driver latency in nanoseconds.";
  (let cum = ref 0 in
   Array.iteri
     (fun i c ->
       cum := !cum + c;
       let le =
         if i < Array.length bucket_bounds_ns then
           Int64.to_string bucket_bounds_ns.(i)
         else "+Inf"
       in
       int_sample ~labels:[ ("le", le) ] "deptest_pair_latency_ns_bucket" !cum)
     t.hist);
  ns_sample "deptest_pair_latency_ns_sum" t.pair_ns;
  int_sample "deptest_pair_latency_ns_count" t.pairs;
  family "deptest_cache_hits_total" "counter"
    "Pair verdicts served by the structural memo cache.";
  int_sample "deptest_cache_hits_total" t.cache_hits;
  family "deptest_cache_misses_total" "counter" "Memo-cache lookup misses.";
  int_sample "deptest_cache_misses_total" t.cache_misses;
  family "deptest_cache_entries" "gauge"
    "Resident memo-cache entries after the run.";
  int_sample "deptest_cache_entries" t.cache_size;
  family "deptest_cache_evictions_total" "counter"
    "Memo-cache entries dropped by capacity eviction.";
  int_sample "deptest_cache_evictions_total" t.cache_evictions;
  family "deptest_disk_cache_hits_total" "counter"
    "Verdicts served by the disk-backed cross-run store.";
  int_sample "deptest_disk_cache_hits_total" t.disk_hits;
  family "deptest_disk_cache_misses_total" "counter"
    "Disk-store lookup misses.";
  int_sample "deptest_disk_cache_misses_total" t.disk_misses;
  family "deptest_disk_cache_invalid_total" "counter"
    "Invalid disk-cache objects skipped (corrupt segments, tmp leftovers, \
     undecodable entries).";
  int_sample "deptest_disk_cache_invalid_total" t.disk_invalid;
  family "deptest_banerjee_kernel_compilations_total" "counter"
    "Subscript pairs compiled into the linear-form kernel.";
  int_sample "deptest_banerjee_kernel_compilations_total" t.bj_compile;
  family "deptest_banerjee_nodes_total" "counter"
    "Banerjee hierarchy-node evaluations by path.";
  int_sample
    ~labels:[ ("path", "incremental") ]
    "deptest_banerjee_nodes_total" t.bj_inc_nodes;
  int_sample
    ~labels:[ ("path", "scratch") ]
    "deptest_banerjee_nodes_total" t.bj_scratch_nodes;
  family "deptest_banerjee_combo_cap_fallbacks_total" "counter"
    "Vertex cross products past the combination cap.";
  int_sample "deptest_banerjee_combo_cap_fallbacks_total" t.bj_caps;
  family "deptest_degraded_pairs_total" "counter"
    "Pairs degraded to the conservative verdict, by guard reason.";
  int_sample
    ~labels:[ ("reason", "overflow") ]
    "deptest_degraded_pairs_total" t.g_overflow;
  int_sample
    ~labels:[ ("reason", "exception") ]
    "deptest_degraded_pairs_total" t.g_exception;
  int_sample
    ~labels:[ ("reason", "budget") ]
    "deptest_degraded_pairs_total" t.g_budget;
  family "deptest_engine_registries_total" "counter"
    "Worker metrics registries merged into this snapshot.";
  int_sample "deptest_engine_registries_total" t.eng_registries;
  family "deptest_engine_shards_total" "counter"
    "Routine-grain shards dispatched to the work-stealing pool.";
  int_sample "deptest_engine_shards_total" t.eng_shards;
  family "deptest_engine_tasks_total" "counter"
    "Engine work leaves executed, by worker domain.";
  let rows = engine_rows t in
  List.iter
    (fun (d, tasks, _, _, _) ->
      int_sample
        ~labels:[ ("domain", string_of_int d) ]
        "deptest_engine_tasks_total" tasks)
    rows;
  family "deptest_engine_steals_total" "counter"
    "Ranges stolen from another worker's deque, by thief domain.";
  List.iter
    (fun (d, _, steals, _, _) ->
      int_sample
        ~labels:[ ("domain", string_of_int d) ]
        "deptest_engine_steals_total" steals)
    rows;
  family "deptest_engine_busy_ns_total" "counter"
    "Nanoseconds inside leaf bodies, by worker domain.";
  List.iter
    (fun (d, _, _, busy, _) ->
      ns_sample
        ~labels:[ ("domain", string_of_int d) ]
        "deptest_engine_busy_ns_total" busy)
    rows;
  family "deptest_engine_queue_wait_ns_total" "counter"
    "Nanoseconds acquiring work (pop, steal, backoff), by worker domain.";
  List.iter
    (fun (d, _, _, _, wait) ->
      ns_sample
        ~labels:[ ("domain", string_of_int d) ]
        "deptest_engine_queue_wait_ns_total" wait)
    rows;
  (* serve families appear only once the daemon reported (the engine
     pre-registers every endpoint and tier at startup, so a scrape's
     series set never depends on traffic) *)
  (let srows = serve_rows t in
   if srows <> [] then begin
     family "deptest_serve_request_duration_ns" "histogram"
       "Whole-request daemon latency in nanoseconds, by protocol endpoint.";
     List.iter
       (fun (ep, count, sum_ns, hist) ->
         let cum = ref 0 in
         Array.iteri
           (fun i c ->
             cum := !cum + c;
             let le =
               if i < Array.length serve_bucket_bounds_ns then
                 Int64.to_string serve_bucket_bounds_ns.(i)
               else "+Inf"
             in
             int_sample
               ~labels:[ ("endpoint", ep); ("le", le) ]
               "deptest_serve_request_duration_ns_bucket" !cum)
           hist;
         ns_sample
           ~labels:[ ("endpoint", ep) ]
           "deptest_serve_request_duration_ns_sum" sum_ns;
         int_sample
           ~labels:[ ("endpoint", ep) ]
           "deptest_serve_request_duration_ns_count" count)
       srows
   end);
  (match serve_tiers t with
  | [] -> ()
  | tiers ->
      family "deptest_serve_answered_total" "counter"
        "Analyze requests answered, by cache tier (response / disk / memo / \
         cold) or none for non-analyze and failed requests.";
      List.iter
        (fun (tier, n) ->
          int_sample ~labels:[ ("tier", tier) ] "deptest_serve_answered_total"
            n)
        tiers);
  Buffer.contents buf
