(** The metrics registry: counters, monotonic-clock timing spans, and
    latency histograms for the dependence-test driver.

    Generalizes the core [Counters] module (which the paper's §6 tables
    keep using) with wall-clock time per test kind, per analysis phase
    (parse / partition / test / merge), and a log-scale histogram of
    per-reference-pair latency. All times are nanoseconds from the
    monotonic clock. A registry accumulates across pairs, routines, and
    files; [merge_into] combines registries. *)

type phase = Parse | Partition | Test | Merge

val phases : phase list
val phase_name : phase -> string

type t

val create : unit -> t

val now_ns : unit -> int64
(** Monotonic clock, nanoseconds. *)

val record : t -> Test_kind.t -> indep:bool -> ns:int64 -> unit
(** One application of a dependence test: bump applied (and independent
    when proven), add [ns] to the kind's total. *)

val timed : t option -> phase -> (unit -> 'a) -> 'a
(** Run the thunk, adding its wall-clock time to the phase total.
    With [None] the thunk runs untimed (no clock call). Exception-safe:
    time is accounted even when the thunk raises. *)

val add_phase_ns : t -> phase -> int64 -> unit

val observe_pair : t -> ns:int64 -> unit
(** One reference pair completed in [ns]: bump the pair count, total, and
    the latency histogram bucket. *)

val cache_hit : t -> unit
(** One pair verdict served by the structural memo cache. Unlike
    {!Counters} (which the engine replays on hits so the paper's §6
    tables stay cache-invariant), metrics report what actually executed:
    a hit bumps this counter and the pair histogram, never the per-kind
    test counts. *)

val cache_miss : t -> unit
val cache_hits : t -> int
val cache_misses : t -> int

val set_cache_usage : t -> size:int -> evictions:int -> unit
(** Snapshot the memo table's growth after a run: resident entries and
    capacity evictions. A snapshot of shared state, not an increment —
    {!merge} keeps the larger value rather than summing, so per-worker
    registries observing one shared cache don't multiply it. *)

val cache_size : t -> int
val cache_evictions : t -> int

val set_disk_cache : t -> hits:int -> misses:int -> invalid:int -> unit
(** Snapshot the disk-backed store's counters ({!Dt_engine.Store}-style
    hits/misses plus invalid objects skipped). Snapshot semantics like
    {!set_cache_usage}: {!merge} keeps the larger value. *)

val disk_hits : t -> int
val disk_misses : t -> int
val disk_invalid : t -> int

val banerjee_compile : t -> unit
(** One subscript pair compiled into its linear-form kernel
    ({!Dt_ir.Linform}-style dense arrays) for the Banerjee evaluator. *)

val banerjee_node : t -> incremental:bool -> unit
(** One §4.4 hierarchy-node feasibility evaluation: [incremental] when
    served by the running-sum evaluator (one index's contribution swapped
    in O(1)), scratch when the node was recombined from scratch. *)

val banerjee_cap : t -> unit
(** One Banerjee evaluation whose vertex cross product exceeded the combo
    cap and conservatively assumed feasibility (see the [banerjee] block
    of {!to_json} and the paired trace note). *)

val degraded : t -> [ `Overflow | `Exception | `Budget ] -> unit
(** One reference pair degraded to the conservative full
    direction-vector verdict, bucketed by the guard's reason (checked
    arithmetic overflow, a contained exception, or an exhausted work
    budget / deadline). Feeds the [guard] block of {!to_json}. *)

val degraded_pairs : t -> int
(** Total degraded pairs across every reason. *)

val degraded_by : t -> [ `Overflow | `Exception | `Budget ] -> int

val engine_task : t -> domain:int -> ns:int64 -> unit
(** One engine work leaf executed by worker [domain] in [ns]: bump the
    domain's task count and busy time. *)

val engine_wait : t -> domain:int -> ns:int64 -> unit
(** Worker [domain] spent [ns] acquiring work (own-deque pop, steal
    attempts, idle backoff). *)

val engine_steal : t -> domain:int -> unit
(** Worker [domain] stole a range from another worker's deque. *)

val engine_registry : t -> unit
(** One per-worker metrics registry was created for this run; after the
    engine's deterministic merge the total counts the workers that
    participated. *)

val engine_registries : t -> int

val engine_shards : t -> n:int -> unit
(** [n] routine-grain shards were dispatched to the pool (one per
    routine in a batched {e run_all}-style analysis). *)

val shards : t -> int

val engine_rows : t -> (int * int * int * int64 * int64) list
(** [(domain, tasks, steals, busy_ns, queue_wait_ns)] per domain that
    executed work, sorted by domain id. Empty when the engine never
    reported. *)

(** {2 Serve-daemon request accounting}

    Whole-request observations from the long-lived [deptest serve]
    daemon: a latency histogram per protocol endpoint and a counter per
    cache tier that answered an analyze. Both live in their own key
    space (endpoint / tier strings), are summed by {!merge_into}, and —
    unlike every batch family — are exported (JSON [serve] block,
    Prometheus [deptest_serve_*] families) only once at least one
    endpoint or tier has been registered, so batch-run snapshots stay
    byte-identical to pre-daemon ones. *)

val serve_bucket_bounds_ns : int64 array
(** Upper bounds (inclusive) of the request-latency buckets — two
    decades above {!bucket_bounds_ns}, since a request spans many
    pairs — plus one overflow bucket. *)

val serve_request : t -> endpoint:string -> ns:int64 -> unit
(** One daemon request on [endpoint] answered in [ns]: bump the
    endpoint's count, total, and histogram bucket. *)

val serve_endpoint : t -> endpoint:string -> unit
(** Pre-register [endpoint] at zero so its series appear in every
    scrape (the daemon registers all protocol endpoints at startup). *)

val serve_answered : t -> tier:string -> unit
(** One analyze request answered by cache tier [tier] (a
    {!Reqtrace.tier_name} slug). *)

val serve_tier : t -> tier:string -> unit
(** Pre-register [tier] at zero, like {!serve_endpoint}. *)

val serve_rows : t -> (string * int * int64 * int array) list
(** [(endpoint, requests, total_ns, hist)] sorted by endpoint; [hist]
    has [Array.length serve_bucket_bounds_ns + 1] buckets. Empty unless
    a daemon reported. *)

val serve_tiers : t -> (string * int) list
(** [(tier, answered)] sorted by tier. Empty unless a daemon reported. *)

val banerjee_compilations : t -> int
val banerjee_incremental_nodes : t -> int
val banerjee_scratch_nodes : t -> int
val banerjee_caps : t -> int

val applied : t -> Test_kind.t -> int
val proved_indep : t -> Test_kind.t -> int
val kind_ns : t -> Test_kind.t -> int64
val phase_ns : t -> phase -> int64
val pairs : t -> int
val pair_ns_total : t -> int64

val bucket_bounds_ns : int64 array
(** Upper bounds (inclusive) of the latency buckets; one extra overflow
    bucket follows the last bound. *)

val latency_hist : t -> int array
(** Bucket counts; length [Array.length bucket_bounds_ns + 1]. *)

val merge_into : t -> t -> unit
(** [merge_into acc extra] adds [extra]'s counts and times into [acc]. *)

val merge : t -> t -> t
(** Fresh registry holding the sum — commutative and associative, so the
    parallel engine's per-domain registries merge deterministically. *)

val to_json : t -> Json.t
(** The metrics snapshot: schema ["deptest-metrics/2"], per-kind
    [tests] rows (kind, name, applied, independent, total_ns), [phases]
    totals, [pairs] with the latency histogram, [cache]
    hits/misses/hit_rate/size/evictions, [banerjee] kernel counters
    (kernel_compilations, incremental_nodes, scratch_nodes,
    combo_cap_fallbacks), the [guard] block (degraded pair total and
    by_reason overflow / exception / budget buckets), and the [engine]
    block (merged registries, per-domain tasks / busy_ns / queue_wait_ns
    rows plus totals) — see README. *)

val pp : Format.formatter -> t -> unit
(** The per-kind time/count table — the §6 Table-3 shape with wall-clock
    columns — followed by phase totals and the latency histogram. *)

val to_prometheus : ?build:(string * string) list -> t -> string
(** The snapshot in Prometheus text exposition format (version 0.0.4):
    one [# HELP]/[# TYPE] family header per metric, stable metric names
    under the [deptest_] prefix, label values escaped, and the pair
    latency histogram as cumulative [_bucket{le=...}] samples (bounds
    from {!bucket_bounds_ns} plus [+Inf]) with [_sum]/[_count]. Every
    per-kind series is emitted even at zero, so the set of series never
    depends on the workload. This is the exposition surface
    [deptest analyze --prom] writes and the serve daemon mounts.

    Leads with a [deptest_build_info] gauge (constant [1]) carrying the
    git-describe label, the metrics and trace schema versions, and any
    extra [build] labels the caller adds (the daemon adds its store
    schema) — scrapes join on it to correlate drift with deploys. When
    the serve tables are non-empty, appends the
    [deptest_serve_request_duration_ns] per-endpoint histogram (bounds
    from {!serve_bucket_bounds_ns}) and the
    [deptest_serve_answered_total] per-tier counter. Label values never
    contain spaces, so line-oriented consumers can split on
    whitespace. *)
