type verdict = Independent | Dependent | Inconclusive

type event =
  | Pair_start of { array : string; src_stmt : int; snk_stmt : int }
  | Partitioned of {
      dims : int;
      nonlinear : int;
      separable : int;
      coupled_groups : int;
    }
  | Group_start of { positions : int list }
  | Pass of int
  | Test of {
      kind : Test_kind.t;
      subscript : string;
      verdict : verdict;
      reason : string;
    }
  | Constraint of { index : string; constr : string; note : string }
  | Verdict of { independent : bool; reason : string }
  | Note of string

(* one emitted event: instant by construction ([dur_ns = 0]); when a
   {!scope} closes, the scope's opening event receives the elapsed time
   as its duration, putting trace events on the same clock axis as the
   {!Span} timeline *)
type cell = {
  depth : int;
  ts_ns : int64;
  mutable dur_ns : int64;
  ev : event;
}

type sink = {
  mutable rev_events : cell list;  (* newest first *)
  mutable depth : int;
  mutable count : int;
}

let make () = { rev_events = []; depth = 0; count = 0 }

let emit s ev =
  s.rev_events <-
    { depth = s.depth; ts_ns = Clock.now_ns (); dur_ns = 0L; ev }
    :: s.rev_events;
  s.count <- s.count + 1

let scope s f =
  (* the most recent event opened this scope: when the scope ends, it
     gets the elapsed time as its duration *)
  let opener = match s.rev_events with [] -> None | c :: _ -> Some c in
  s.depth <- s.depth + 1;
  Fun.protect
    ~finally:(fun () ->
      s.depth <- s.depth - 1;
      match opener with
      | Some c -> c.dur_ns <- Int64.sub (Clock.now_ns ()) c.ts_ns
      | None -> ())
    f

let cells s = List.rev s.rev_events

let events_with_depth s =
  List.rev_map (fun (c : cell) -> (c.depth, c.ev)) s.rev_events

let events s = List.rev_map (fun (c : cell) -> c.ev) s.rev_events

let events_timed s =
  List.map (fun (c : cell) -> (c.ev, c.ts_ns, c.dur_ns)) (cells s)

type node = { event : event; children : node list }

let tree s =
  (* events are depth-tagged and ordered; a node's children are the
     following events one level deeper, up to the next event at its own
     depth or shallower *)
  let rec build depth evs =
    match evs with
    | (d, ev) :: rest when d = depth ->
        let children, rest = build (depth + 1) rest in
        let siblings, rest = build depth rest in
        ({ event = ev; children } :: siblings, rest)
    | (d, _) :: _ when d > depth ->
        (* nested events with no parent at this depth (sub-driver entry
           points): adopt them one level down *)
        let children, rest = build (depth + 1) evs in
        let siblings, rest = build depth rest in
        (children @ siblings, rest)
    | _ -> ([], evs)
  in
  fst (build 0 (events_with_depth s))

(* ------------------------------------------------------------------ *)
(* rendering                                                           *)

let verdict_name = function
  | Independent -> "independent"
  | Dependent -> "dependent"
  | Inconclusive -> "inconclusive"

let pp_event ppf = function
  | Pair_start { array; src_stmt; snk_stmt } ->
      Format.fprintf ppf "pair %s S%d -> S%d" array src_stmt snk_stmt
  | Partitioned { dims; nonlinear; separable; coupled_groups } ->
      Format.fprintf ppf
        "partition: %d subscript position(s), %d nonlinear, %d separable, %d \
         coupled group(s)"
        dims nonlinear separable coupled_groups
  | Group_start { positions } ->
      Format.fprintf ppf "coupled group at position(s) [%s]"
        (String.concat " " (List.map string_of_int positions))
  | Pass n -> Format.fprintf ppf "delta pass %d" n
  | Test { kind; subscript; verdict; reason } ->
      Format.fprintf ppf "%s %s: %s — %s" (Test_kind.name kind) subscript
        (verdict_name verdict) reason
  | Constraint { index; constr; note } ->
      Format.fprintf ppf "constraint on %s: %s%s" index constr
        (if note = "" then "" else " (" ^ note ^ ")")
  | Verdict { independent; reason } ->
      Format.fprintf ppf "verdict: %s — %s"
        (if independent then "INDEPENDENT" else "dependent")
        reason
  | Note s -> Format.pp_print_string ppf s

let pp_tree ppf s =
  List.iter
    (fun (depth, ev) ->
      Format.fprintf ppf "%s%a@." (String.make (2 * depth) ' ') pp_event ev)
    (events_with_depth s)

(* ------------------------------------------------------------------ *)
(* JSONL export                                                        *)

let event_to_json ~seq ~depth ?(ts_ns = 0L) ?(dur_ns = 0L) ev =
  let base ty fields =
    Json.Obj
      (("seq", Json.Int seq) :: ("depth", Json.Int depth)
      :: ("type", Json.String ty)
      :: ("ts_ns", Json.Int (Int64.to_int ts_ns))
      :: ("dur_ns", Json.Int (Int64.to_int dur_ns))
      :: fields)
  in
  match ev with
  | Pair_start { array; src_stmt; snk_stmt } ->
      base "pair_start"
        [
          ("array", Json.String array);
          ("src_stmt", Json.Int src_stmt);
          ("snk_stmt", Json.Int snk_stmt);
        ]
  | Partitioned { dims; nonlinear; separable; coupled_groups } ->
      base "partitioned"
        [
          ("dims", Json.Int dims);
          ("nonlinear", Json.Int nonlinear);
          ("separable", Json.Int separable);
          ("coupled_groups", Json.Int coupled_groups);
        ]
  | Group_start { positions } ->
      base "group_start"
        [ ("positions", Json.List (List.map (fun p -> Json.Int p) positions)) ]
  | Pass n -> base "pass" [ ("n", Json.Int n) ]
  | Test { kind; subscript; verdict; reason } ->
      base "test"
        [
          ("kind", Json.String (Test_kind.slug kind));
          ("subscript", Json.String subscript);
          ("verdict", Json.String (verdict_name verdict));
          ("reason", Json.String reason);
        ]
  | Constraint { index; constr; note } ->
      base "constraint"
        [
          ("index", Json.String index);
          ("constr", Json.String constr);
          ("note", Json.String note);
        ]
  | Verdict { independent; reason } ->
      base "verdict"
        [
          ("independent", Json.Bool independent);
          ("reason", Json.String reason);
        ]
  | Note s -> base "note" [ ("text", Json.String s) ]

let to_jsonl s =
  let buf = Buffer.create 4096 in
  (* timestamps are relative to the first event, so the artifact is
     stable to read and diff across runs *)
  let t0 = match cells s with [] -> 0L | (c : cell) :: _ -> c.ts_ns in
  List.iteri
    (fun seq (c : cell) ->
      Buffer.add_string buf
        (Json.to_string
           (event_to_json ~seq ~depth:c.depth
              ~ts_ns:(Int64.sub c.ts_ns t0) ~dur_ns:c.dur_ns c.ev));
      Buffer.add_char buf '\n')
    (cells s);
  Buffer.contents buf
