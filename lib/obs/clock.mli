(** The one monotonic clock every observability layer reads.

    {!Span} timelines, {!Trace} event timestamps, and {!Metrics} phase
    spans all sample this clock, so their nanosecond values land on a
    single comparable axis: a trace event's [ts_ns] can be located
    inside the span that emitted it. *)

val now_ns : unit -> int64
(** Monotonic clock, nanoseconds. Never goes backwards; the origin is
    unspecified (differences are meaningful, absolute values are not). *)
