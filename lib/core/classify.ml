open Dt_ir

type siv_kind = Strong | Weak_zero | Weak_crossing | General

type t =
  | Ziv
  | Siv of { index : Index.t; kind : siv_kind }
  | Rdiv of { src_index : Index.t; snk_index : Index.t }
  | Miv of Index.Set.t

let siv_kind_of (p : Spair.t) i =
  let a1, a2 = Spair.coeffs p i in
  if a1 = a2 then Strong
  else if a1 = 0 || a2 = 0 then Weak_zero
  else if a1 = -a2 then Weak_crossing
  else General

let classify ~relevant (p : Spair.t) =
  let occurring = Index.Set.inter (Spair.indices p) relevant in
  match Index.Set.cardinal occurring with
  | 0 -> Ziv
  | 1 ->
      let i = Index.Set.choose occurring in
      Siv { index = i; kind = siv_kind_of p i }
  | 2 ->
      let src_only =
        Index.Set.inter (Affine.indices p.src) relevant
      and snk_only = Index.Set.inter (Affine.indices p.snk) relevant in
      if
        Index.Set.cardinal src_only = 1
        && Index.Set.cardinal snk_only = 1
        && not (Index.Set.equal src_only snk_only)
      then
        Rdiv
          {
            src_index = Index.Set.choose src_only;
            snk_index = Index.Set.choose snk_only;
          }
      else Miv occurring
  | _ -> Miv occurring

let is_coupled_group classes = List.length classes > 1

type group = { positions : int list; indices : Index.Set.t }

let partition ~relevant pairs =
  let pairs = Array.of_list pairs in
  let n = Array.length pairs in
  let idx_of k = Index.Set.inter (Spair.indices pairs.(k)) relevant in
  let uf = Dt_support.Union_find.create n in
  (* join positions sharing an index *)
  let seen : (Index.t, int) Hashtbl.t = Hashtbl.create 8 in
  for k = 0 to n - 1 do
    Index.Set.iter
      (fun i ->
        match Hashtbl.find_opt seen i with
        | Some j -> Dt_support.Union_find.union uf j k
        | None -> Hashtbl.add seen i k)
      (idx_of k)
  done;
  Dt_support.Union_find.groups uf
  |> List.map (fun positions ->
         let indices =
           List.fold_left
             (fun s k -> Index.Set.union s (idx_of k))
             Index.Set.empty positions
         in
         { positions; indices })

let pp ppf = function
  | Ziv -> Format.pp_print_string ppf "ZIV"
  | Siv { kind = Strong; _ } -> Format.pp_print_string ppf "strong SIV"
  | Siv { kind = Weak_zero; _ } -> Format.pp_print_string ppf "weak-zero SIV"
  | Siv { kind = Weak_crossing; _ } ->
      Format.pp_print_string ppf "weak-crossing SIV"
  | Siv { kind = General; _ } -> Format.pp_print_string ppf "general SIV"
  | Rdiv _ -> Format.pp_print_string ppf "RDIV"
  | Miv _ -> Format.pp_print_string ppf "MIV"

let to_string t = Format.asprintf "%a" pp t
