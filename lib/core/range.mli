(** The index-range algorithm of section 4.3.

    For triangular or trapezoidal loop nests, the bounds of inner loops are
    affine functions of outer indices. Working outermost-in, we substitute
    each outer index with its own extremal range to obtain, for every
    index, a conservative *symbolic* range [lo, hi] whose endpoints mention
    only symbolic constants. This maximal range is all the SIV tests need
    (the paper notes the same). Endpoints are [None] when a bound cannot be
    resolved (e.g. an unresolved outer endpoint). *)

open Dt_ir

type range = { lo : Affine.t option; hi : Affine.t option }
(** Endpoints are symbol-only affines. *)

type t
(** Ranges for every index of a loop nest. *)

val compute : Loop.t list -> t
(** Loops outermost first. *)

val find : t -> Index.t -> range
(** Full/unknown range for indices the nest does not declare. *)

val trip_minus_one : t -> Index.t -> Affine.t option
(** [hi - lo] for the index, i.e. the paper's [U - L] used by the strong
    SIV bound check [|d| <= U - L]. *)

val contains_int : t -> Assume.t -> Index.t -> int -> bool option
(** Is the integer within the index's range? [Some true/false] when
    provable, [None] when unknown. *)

val contains_affine : t -> Assume.t -> Index.t -> Affine.t -> bool option
(** Same, for a symbolic point. *)

val contains_ratio : t -> Assume.t -> Index.t -> Dt_support.Ratio.t -> bool option
(** Rational membership (constant ranges only yield definite answers
    unless provable symbolically after scaling). *)

val concrete : t -> Index.t -> (int * int) option
(** Constant endpoints when both are integer constants. *)

val pp : Format.formatter -> t -> unit
