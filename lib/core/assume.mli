(** A sign oracle over symbolic constants.

    Dependence tests repeatedly need facts like "is N - 1 >= 0?" when
    deciding whether a solution falls within symbolic loop bounds (paper
    sections 4.3 and 4.5). The oracle holds a set of affine facts
    [f >= 0] over symbolic constants and proves goals [e >= 0] by
    exhibiting a non-negative rational combination of facts plus a
    non-negative constant (a bounded Farkas-style search).

    Soundness note: a fact [hi - lo >= 0] for a loop is always safe to use
    while *disproving* dependence inside that loop — if the loop is empty
    there are no iterations and hence no dependence at all. The driver adds
    such facts automatically for loops with symbol-only bounds. *)

open Dt_ir

type t

val empty : t
val add_nonneg : t -> Affine.t -> t
(** Record the fact [e >= 0]. Index terms must be absent (only symbolic
    constants and a constant are allowed); raises [Invalid_argument]
    otherwise. *)

val add_loop_facts : t -> Loop.t list -> t
(** Add [hi - lo >= 0] for every loop whose bounds are free of loop
    indices. *)

val facts : t -> Affine.t list

val prove_nonneg : t -> Affine.t -> bool
(** Sound, incomplete: [true] implies [e >= 0] under the facts; [false]
    means unknown. The goal must be index-free (indices make it vacuously
    unprovable, and we return [false]). *)

val prove_pos : t -> Affine.t -> bool
(** Proves [e >= 1] (integer positivity). *)

val prove_nonpos : t -> Affine.t -> bool
val prove_neg : t -> Affine.t -> bool

val sign : t -> Affine.t -> [ `Zero | `Pos | `Neg | `Nonneg | `Nonpos | `Unknown ]
(** Strongest provable sign fact. *)

val pp : Format.formatter -> t -> unit
