(** The structural memo cache for per-pair dependence test results.

    The corpus repeats structurally identical reference pairs thousands of
    times (same subscript shapes, same bounds, different loop-variable
    names). Queries are canonicalized by {!Dt_engine.Key}; a hit returns
    the cached {!Pair_test.t} rehydrated into the querying pair's index
    space, so the driver skips the whole SIV/MIV/Delta cascade.

    Correctness contract: for structurally identical queries A (cached)
    and B (hitting), [find] returns exactly what [Pair_test.test] would
    compute for B — direction vectors are positional and carry over
    unchanged; loop indices inside distances, symbolic distance affines
    and classification metadata are translated A-index -> B-index through
    the canonical form (including the driver's tick-renamed sink indices,
    e.g. [I'] -> [K']).

    Counters contract: each entry stores the counter increments of the
    producing run; [find] replays them into the caller's accumulator, so
    {!Counters} totals — the paper's §6 tables — are cache-invariant.
    {!Dt_obs.Metrics} is *not* replayed: metrics report what actually
    executed, plus explicit cache hit/miss counts.

    The table is domain-safe (see {!Dt_engine.Memo}); concurrent workers
    of the parallel engine share one cache.

    Disk tier: with [?disk] the cache is two-tiered — a memo miss falls
    through to the {!Dt_engine.Store} under key ["p:" ^ canonical-key],
    a disk hit is validated (an undecodable payload counts invalid, is
    removed, and the pair recomputes cold), promoted into the memo, and
    rehydrated exactly like a memo hit; every store writes through to
    disk. Degraded verdicts are filtered again at this layer: they are
    never persisted, even if a caller were to hand one in. *)

type t

val create : ?capacity:int -> ?disk:Dt_engine.Store.t -> unit -> t
(** [capacity] bounds the resident entries (FIFO eviction past it, see
    {!Dt_engine.Memo}); omitted means unbounded. [disk] adds the
    persistent write-through tier. *)

val find : t -> Dt_engine.Key.t -> counters:Counters.t -> Pair_test.t option
(** On a hit, returns the rehydrated result and replays the entry's
    counter deltas into [counters]. Bumps the hit/miss statistics. *)

val store : t -> Dt_engine.Key.t -> counters:Counters.t -> Pair_test.t -> unit
(** [counters] must hold exactly the increments recorded while computing
    this result (run the test against a fresh accumulator). *)

val hits : t -> int
val misses : t -> int
val hit_rate : t -> float
val length : t -> int

val evictions : t -> int
(** Entries dropped by capacity eviction. *)

val disk_hits : t -> int
val disk_misses : t -> int

val disk_invalid : t -> int
(** Disk-tier statistics; all zero without a [disk] store. *)

val flush : t -> int
(** Persist the disk tier ({!Dt_engine.Store.flush}); [0] without one. *)
