open Dt_ir

type t = { facts : Affine.t list }

let empty = { facts = [] }

let check_sym_only e =
  if not (Index.Set.is_empty (Affine.indices e)) then
    invalid_arg "Assume: facts must not mention loop indices"

let add_nonneg t e =
  check_sym_only e;
  if Affine.is_const e && Affine.const_part e >= 0 then t
  else { facts = e :: t.facts }

let add_loop_facts t loops =
  List.fold_left
    (fun t (l : Loop.t) ->
      let d = Affine.sub l.hi l.lo in
      if Index.Set.is_empty (Affine.indices d) then
        if Affine.is_const d then t else { facts = d :: t.facts }
      else t)
    t loops

let facts t = t.facts

(* Prove e >= 0 by searching for e = sum lambda_i * f_i + c, lambda_i >= 0
   rational, c >= 0. We eliminate one symbolic constant at a time: pick the
   first sym s with coefficient c_e in e; for each fact f with coefficient
   c_f of matching sign, the combination |c_f| * e - |c_e| * f cancels s and
   remains a valid (positively scaled) goal. Depth-bounded backtracking. *)
let prove_nonneg t goal =
  if not (Index.Set.is_empty (Affine.indices goal)) then false
  else
    (* A fact may be used several times (integer multiples in the Farkas
       combination), so the search is bounded by depth only. Eliminating
       the first symbol strictly reduces the symbol multiset reachable
       from useful fact choices, and the depth bound cuts any cycle. *)
    let rec go depth e =
      match Affine.sym_terms e with
      | [] -> Affine.const_part e >= 0
      | (s, ce) :: _ ->
          depth > 0
          && List.exists
               (fun f ->
                 let cf = Affine.sym_coeff f s in
                 cf <> 0
                 && (cf > 0) = (ce > 0)
                 &&
                 let e' =
                   Affine.sub (Affine.scale (abs cf) e) (Affine.scale (abs ce) f)
                 in
                 go (depth - 1) e')
               t.facts
    in
    go (min 10 ((2 * List.length t.facts) + 2)) goal

let prove_pos t e = prove_nonneg t (Affine.add_const (-1) e)
let prove_nonpos t e = prove_nonneg t (Affine.neg e)
let prove_neg t e = prove_pos t (Affine.neg e)

let sign t e =
  if Affine.is_const e then
    let c = Affine.const_part e in
    if c = 0 then `Zero else if c > 0 then `Pos else `Neg
  else if prove_pos t e then `Pos
  else if prove_neg t e then `Neg
  else if prove_nonneg t e then `Nonneg
  else if prove_nonpos t e then `Nonpos
  else `Unknown

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list (fun ppf f -> Format.fprintf ppf "%a >= 0" Affine.pp f))
    t.facts
