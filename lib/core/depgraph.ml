type t = { edges : Dep.t list; by_src : (int, Dep.t list) Hashtbl.t }

let build ?(keep_inputs = false) deps =
  let edges =
    List.filter (fun d -> keep_inputs || d.Dep.kind <> Dep.Input) deps
  in
  let by_src = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let cur = Option.value (Hashtbl.find_opt by_src d.Dep.src_stmt) ~default:[] in
      Hashtbl.replace by_src d.Dep.src_stmt (d :: cur))
    (List.rev edges);
  { edges; by_src }

let stmts t =
  List.concat_map (fun d -> [ d.Dep.src_stmt; d.Dep.snk_stmt ]) t.edges
  |> Dt_support.Listx.dedup ~compare:Int.compare

let edges t = t.edges
let succs t s = Option.value (Hashtbl.find_opt t.by_src s) ~default:[]

let edges_between t ~src ~snk =
  List.filter (fun d -> d.Dep.snk_stmt = snk) (succs t src)

let active_at d ~level =
  match d.Dep.level with None -> true | Some k -> k >= level

let carried_at t ~level =
  List.filter (fun d -> d.Dep.level = Some level) t.edges

let pp ppf t =
  List.iter (fun d -> Format.fprintf ppf "%a@." Dep.pp d) t.edges

let to_dot ?(stmt_label = fun id -> Printf.sprintf "S%d" id) t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph dependences {\n  rankdir=TB;\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\", shape=box];\n" s
           (String.map (function '"' -> '\'' | c -> c) (stmt_label s))))
    (stmts t);
  List.iter
    (fun d ->
      let style =
        match d.Dep.kind with
        | Dep.Flow -> "solid"
        | Dep.Anti -> "dashed"
        | Dep.Output -> "dotted"
        | Dep.Input -> "bold"
      in
      let label =
        Format.asprintf "%s %a%s"
          (Dep.kind_name d.Dep.kind)
          Dirvec.pp d.Dep.dirvec
          (match d.Dep.level with
          | Some k -> Printf.sprintf " @%d" k
          | None -> "")
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [style=%s, label=\"%s\"];\n"
           d.Dep.src_stmt d.Dep.snk_stmt style label))
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
