(** Subscript classification and reference-pair partitioning (paper §2-3).

    A subscript pair is ZIV (zero index variables), SIV (single index
    variable) or MIV (multiple index variables), counting the *distinct*
    loop indices that occur on either side. SIV pairs subdivide into the
    paper's special shapes; the RDIV shape is the restricted two-index MIV
    form <a1*i + c1, a2*j + c2>.

    [partition] splits the subscript positions of a reference pair into
    separable positions and minimal coupled groups by union-find on shared
    indices, exactly as the driver of section 3 requires. *)

open Dt_ir

type siv_kind = Strong | Weak_zero | Weak_crossing | General

type t =
  | Ziv
  | Siv of { index : Index.t; kind : siv_kind }
  | Rdiv of { src_index : Index.t; snk_index : Index.t }
  | Miv of Index.Set.t

val classify : relevant:Index.Set.t -> Spair.t -> t
(** [relevant] is the set of common-loop indices; indices outside it (loops
    enclosing only one of the two references) are treated as symbolic...
    no — the frontend guarantees subscripts only mention enclosing loops;
    non-common indices are handled by the driver prior to classification
    (see {!Pair_test}). Indices not in [relevant] are ignored for the ZIV /
    SIV / MIV count. *)

val siv_kind_of : Spair.t -> Index.t -> siv_kind
(** Requires the pair to be SIV in that index. *)

val is_coupled_group : t list -> bool

type group = { positions : int list; indices : Index.Set.t }

val partition : relevant:Index.Set.t -> Spair.t list -> group list
(** Minimal coupled groups over subscript positions; singleton groups are
    separable. Groups ordered by smallest position. ZIV positions are each
    their own (separable) group. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
