open Dt_ir

type range = { lo : Affine.t option; hi : Affine.t option }
type t = range Index.Map.t

(* Substitute outer indices in a bound with their extremal endpoints.
   [dir] selects minimization (`Lo`) or maximization (`Hi`) of the bound. *)
let resolve ranges dir bound =
  let terms = Affine.index_terms bound in
  List.fold_left
    (fun acc (i, c) ->
      match acc with
      | None -> None
      | Some e -> (
          let r =
            Option.value (Index.Map.find_opt i ranges)
              ~default:{ lo = None; hi = None }
          in
          (* coefficient c > 0: minimizing picks lo, maximizing picks hi;
             c < 0 swaps. *)
          let pick =
            match (dir, c > 0) with
            | `Lo, true | `Hi, false -> r.lo
            | `Lo, false | `Hi, true -> r.hi
          in
          match pick with
          | None -> None
          | Some p -> Some (Affine.add (Affine.drop_index e i) (Affine.scale c p))))
    (Some bound) terms

let compute loops =
  List.fold_left
    (fun ranges (l : Loop.t) ->
      let lo = resolve ranges `Lo l.lo in
      let hi = resolve ranges `Hi l.hi in
      Index.Map.add l.index { lo; hi } ranges)
    Index.Map.empty loops

let find t i =
  Option.value (Index.Map.find_opt i t) ~default:{ lo = None; hi = None }

let trip_minus_one t i =
  let r = find t i in
  match (r.lo, r.hi) with
  | Some lo, Some hi -> Some (Affine.sub hi lo)
  | _ -> None

let contains_affine t assume i (p : Affine.t) =
  let r = find t i in
  let above =
    (* p - lo >= 0 ? *)
    match r.lo with
    | None -> None
    | Some lo ->
        let d = Affine.sub p lo in
        if Assume.prove_nonneg assume d then Some true
        else if Assume.prove_neg assume d then Some false
        else None
  in
  let below =
    match r.hi with
    | None -> None
    | Some hi ->
        let d = Affine.sub hi p in
        if Assume.prove_nonneg assume d then Some true
        else if Assume.prove_neg assume d then Some false
        else None
  in
  match (above, below) with
  | Some false, _ | _, Some false -> Some false
  | Some true, Some true -> Some true
  | _ -> None

let contains_int t assume i n = contains_affine t assume i (Affine.const n)

let contains_ratio t assume i (q : Dt_support.Ratio.t) =
  let den = Dt_support.Ratio.den q in
  if den = 1 then contains_int t assume i (Dt_support.Ratio.num q)
  else
    let r = find t i in
    (* q >= lo iff num >= den*lo (den > 0) *)
    let above =
      match r.lo with
      | None -> None
      | Some lo ->
          let d = Affine.add_const (Dt_support.Ratio.num q) (Affine.neg (Affine.scale den lo)) in
          if Assume.prove_nonneg assume d then Some true
          else if Assume.prove_neg assume d then Some false
          else None
    in
    let below =
      match r.hi with
      | None -> None
      | Some hi ->
          let d = Affine.add_const (-Dt_support.Ratio.num q) (Affine.scale den hi) in
          if Assume.prove_nonneg assume d then Some true
          else if Assume.prove_neg assume d then Some false
          else None
    in
    match (above, below) with
    | Some false, _ | _, Some false -> Some false
    | Some true, Some true -> Some true
    | _ -> None

let concrete t i =
  let r = find t i in
  match (r.lo, r.hi) with
  | Some lo, Some hi -> (
      match (Affine.as_const lo, Affine.as_const hi) with
      | Some a, Some b -> Some (a, b)
      | _ -> None)
  | _ -> None

let pp ppf t =
  Index.Map.iter
    (fun i r ->
      let pb ppf = function
        | None -> Format.pp_print_string ppf "?"
        | Some e -> Affine.pp ppf e
      in
      Format.fprintf ppf "%a in [%a, %a]@ " Index.pp i pb r.lo pb r.hi)
    t
