open Dt_ir

type dist = Const of int | Sym of Affine.t | Unknown
type index_dep = { index : Index.t; dirs : Direction.set; dist : dist }
type t = Independent | Dependent of index_dep list

let dependent_star indices =
  Dependent
    (List.map
       (fun index -> { index; dirs = Direction.full_set; dist = Unknown })
       indices)

let dep1 index dirs dist = Dependent [ { index; dirs; dist } ]

let equal_dist a b =
  match (a, b) with
  | Const x, Const y -> x = y
  | Sym x, Sym y -> Affine.equal x y
  | Unknown, Unknown -> true
  | Const x, Sym y | Sym y, Const x -> Affine.equal y (Affine.const x)
  | _ -> false

let meet_dist a b =
  match (a, b) with
  | Unknown, d | d, Unknown -> d
  | a, b -> if equal_dist a b then a else a (* conflicting exact distances:
      callers detect emptiness via direction sets; keep the first. *)

let and_outcomes a b =
  match (a, b) with
  | Independent, _ | _, Independent -> Independent
  | Dependent xs, Dependent ys ->
      let merged =
        List.fold_left
          (fun acc (y : index_dep) ->
            let rec ins = function
              | [] -> [ y ]
              | (x : index_dep) :: rest when Index.equal x.index y.index ->
                  {
                    index = x.index;
                    dirs = Direction.inter x.dirs y.dirs;
                    dist = meet_dist x.dist y.dist;
                  }
                  :: rest
              | x :: rest -> x :: ins rest
            in
            ins acc)
          xs ys
      in
      if List.exists (fun (d : index_dep) -> Direction.is_empty d.dirs) merged
      then Independent
      else Dependent merged

let dist_of_affine e =
  match Affine.as_const e with Some c -> Const c | None -> Sym e

let dirs_of_dist assume = function
  | Const d -> Direction.single (Direction.of_distance d)
  | Unknown -> Direction.full_set
  | Sym e -> (
      match Assume.sign assume e with
      | `Zero -> Direction.single Eq
      | `Pos -> Direction.single Lt
      | `Neg -> Direction.single Gt
      | `Nonneg -> Direction.of_list [ Lt; Eq ]
      | `Nonpos -> Direction.of_list [ Gt; Eq ]
      | `Unknown -> Direction.full_set)

let pp_dist ppf = function
  | Const d -> Format.pp_print_int ppf d
  | Sym e -> Affine.pp ppf e
  | Unknown -> Format.pp_print_string ppf "?"

let pp ppf = function
  | Independent -> Format.pp_print_string ppf "independent"
  | Dependent deps ->
      Format.fprintf ppf "dependent:";
      List.iter
        (fun d ->
          Format.fprintf ppf " %a:%a" Index.pp d.index Direction.pp_set d.dirs;
          match d.dist with
          | Unknown -> ()
          | _ -> Format.fprintf ppf "(d=%a)" pp_dist d.dist)
        deps
