open Dt_ir

let inject_pair = Dt_guard.Inject.register "pair.test"

type strategy = Partition_based | Subscript_by_subscript

type meta = {
  dims : int;
  nonlinear : int;
  separable : int;
  coupled_groups : int;
  coupled_positions : int;
  classes : Classify.t list;
  delta_passes : int;
  delta_leftover_miv : int;
  proved_by : Counters.kind option;
  degraded : Dt_guard.Degrade.reason option;
}

type dependence_info = {
  dirvecs : Dirvec.t list;
  distances : (Index.t * Outcome.dist) list;
}

type t = { result : [ `Independent | `Dependent of dependence_info ]; meta : meta }

let common_loops = Nest.common_loops

(* Rename sink-side loops beyond the common prefix whose indices collide
   with source-side indices: they are distinct loop variables. *)
let rename_snk ~src_loops ~common (snk_loops : Loop.t list)
    (snk_subs : Aref.subscript list) =
  let n_common = List.length common in
  let suffix = List.filteri (fun k _ -> k >= n_common) snk_loops in
  let src_indices =
    List.fold_left
      (fun s (l : Loop.t) -> Index.Set.add l.index s)
      Index.Set.empty src_loops
  in
  let taken = ref src_indices in
  let subst = ref [] in
  let fresh (i : Index.t) =
    let rec go name =
      let cand = Index.make name ~depth:(Index.depth i) in
      if Index.Set.mem cand !taken then go (name ^ "'") else cand
    in
    let j = go (Index.name i ^ "'") in
    taken := Index.Set.add j !taken;
    j
  in
  let rename_affine a =
    List.fold_left
      (fun a (i, j) -> Affine.subst_index a i (Affine.of_index j))
      a !subst
  in
  let suffix' =
    List.map
      (fun (l : Loop.t) ->
        let lo = rename_affine l.lo and hi = rename_affine l.hi in
        if Index.Set.mem l.index src_indices then begin
          let j = fresh l.index in
          subst := (l.index, j) :: !subst;
          Loop.make j ~lo ~hi
        end
        else begin
          taken := Index.Set.add l.index !taken;
          Loop.make l.index ~lo ~hi
        end)
      suffix
  in
  let subs' =
    List.map
      (function
        | Aref.Linear a -> Aref.Linear (rename_affine a)
        | Aref.Nonlinear _ as s -> s)
      snk_subs
  in
  (suffix', subs')

(* The driver proper. May raise: a checked-arithmetic overflow during
   renaming / range computation / classification — before the per-pair
   backstop below is even reachable — escapes this function. [test]
   wraps it so the exported entry point never raises. *)
let test_exn ?counters ?metrics ?sink ?spans ?budget ?dispatch ?scratch
    ?(strategy = Partition_based) ?(assume = Assume.empty)
    ~src:(src_ref, src_loops) ~snk:(snk_ref, snk_loops) () =
  if src_ref.Aref.base <> snk_ref.Aref.base then
    invalid_arg "Pair_test.test: references to different arrays";
  let common = common_loops src_loops snk_loops in
  let snk_suffix, snk_subs =
    rename_snk ~src_loops ~common snk_loops snk_ref.Aref.subs
  in
  let all_loops = src_loops @ snk_suffix in
  let assume = Assume.add_loop_facts assume all_loops in
  let range = Range.compute all_loops in
  let common_indices = List.map (fun (l : Loop.t) -> l.Loop.index) common in
  let n = List.length common_indices in
  let relevant =
    List.fold_left
      (fun s (l : Loop.t) -> Index.Set.add l.index s)
      Index.Set.empty all_loops
  in
  (* pair up subscript positions *)
  let src_subs = src_ref.Aref.subs in
  let rank_mismatch = List.length src_subs <> List.length snk_subs in
  let spairs, nonlinear =
    if rank_mismatch then ([], max (List.length src_subs) (List.length snk_subs))
    else
      List.fold_right2
        (fun s1 s2 (ps, nl) ->
          match (s1, s2) with
          | Aref.Linear a, Aref.Linear b -> (Spair.make a b :: ps, nl)
          | _ -> (ps, nl + 1))
        src_subs snk_subs ([], 0)
  in
  let classes, groups =
    Dt_obs.Span.with_ spans Dt_obs.Span.Partition (fun () ->
        Dt_obs.Metrics.timed metrics Dt_obs.Metrics.Partition (fun () ->
            ( List.map (fun p -> Classify.classify ~relevant p) spairs,
              Classify.partition ~relevant spairs )))
  in
  let delta_passes = ref 0 and delta_leftover = ref 0 in
  let instrumented = metrics <> None || spans <> None in
  (* [record ~t0] closes the measurement opened by [tick]: one clock
     read feeds both the metrics total and the timeline leaf. [~span:
     false] suppresses the leaf when a dedicated span (the Banerjee
     hierarchy bracket) already covers the same interval. *)
  let record ?(t0 = 0L) ?(span = true) k ~indep =
    (match counters with Some c -> Counters.record c k ~indep | None -> ());
    if instrumented then begin
      let t1 = Dt_obs.Clock.now_ns () in
      (match metrics with
      | Some m -> Dt_obs.Metrics.record m k ~indep ~ns:(Int64.sub t1 t0)
      | None -> ());
      match spans with
      | Some b when span ->
          Dt_obs.Span.record b (Dt_obs.Span.Test k) ~t0_ns:t0 ~t1_ns:t1
      | _ -> ()
    end
  in
  let tick () = if instrumented then Dt_obs.Clock.now_ns () else 0L in
  let emit ev =
    match sink with Some sk -> Dt_obs.Trace.emit sk ev | None -> ()
  in
  let scoped f =
    match sink with Some sk -> Dt_obs.Trace.scope sk f | None -> f ()
  in
  let emit_test kind p verdict reason =
    match sink with
    | Some sk ->
        Dt_obs.Trace.emit sk
          (Dt_obs.Trace.Test
             { kind; subscript = Spair.to_string p; verdict; reason })
    | None -> ()
  in
  let exception Indep of Counters.kind option in
  (* fault containment: the first degradation reason per pair, recorded
     whether the fault is contained at the partition or the pair level *)
  let degraded = ref None in
  let note_degraded r = if !degraded = None then degraded := Some r in
  (* partition-level guard: an overflow (or injected fault) inside one
     partition's test widens that partition to "all directions" and lets
     the rest of the pair proceed. [Indep] and budget exhaustion pass
     through: an independence proof from another partition is still
     valid, while a spent budget must stop the whole pair. *)
  let contain ~widen f =
    match f () with
    | r -> r
    | exception Dt_guard.Ops.Overflow ->
        note_degraded Dt_guard.Degrade.Overflow;
        widen Dt_guard.Degrade.Overflow
    | exception Dt_guard.Inject.Injected site ->
        let r = Dt_guard.Degrade.Exception ("injected fault at " ^ site) in
        note_degraded r;
        widen r
  in
  let test_separable p =
    match Classify.classify ~relevant p with
    | Classify.Ziv ->
        let t0 = tick () in
        let o = Ziv.test assume p in
        let symbolic = not (Affine.is_const (Affine.sub p.Spair.snk p.Spair.src)) in
        let ck = if symbolic then Counters.Symbolic_ziv else Counters.Ziv_test in
        let indep = o = Outcome.Independent in
        record ~t0 ck ~indep;
        if sink <> None then
          emit_test ck p
            (if indep then Dt_obs.Trace.Independent
             else Dt_obs.Trace.Inconclusive)
            (Format.asprintf
               (if indep then "subscript difference %a is never zero"
                else "subscript difference %a may vanish")
               Affine.pp
               (Affine.sub p.Spair.snk p.Spair.src));
        if indep then raise (Indep (Some ck));
        Presult.of_outcome o
    | Classify.Siv { index; kind } ->
        let t0 = tick () in
        let r = Siv.test assume range p index in
        let ck =
          match kind with
          | Classify.Strong -> Counters.Strong_siv
          | Classify.Weak_zero -> Counters.Weak_zero_siv
          | Classify.Weak_crossing -> Counters.Weak_crossing_siv
          | Classify.General -> Counters.Exact_siv
        in
        let indep = r.Siv.outcome = Outcome.Independent in
        record ~t0 ck ~indep;
        if sink <> None then
          emit_test ck p
            (if indep then Dt_obs.Trace.Independent else Dt_obs.Trace.Dependent)
            (Siv.explain range p index r);
        if indep then raise (Indep (Some ck));
        Presult.of_outcome r.Siv.outcome
    | Classify.Rdiv { src_index; snk_index } ->
        let t0 = tick () in
        let r = Rdiv.test assume range p ~src:src_index ~snk:snk_index in
        let indep = r.Rdiv.outcome = Outcome.Independent in
        record ~t0 Counters.Rdiv_test ~indep;
        if sink <> None then
          emit_test Counters.Rdiv_test p
            (if indep then Dt_obs.Trace.Independent else Dt_obs.Trace.Dependent)
            (Rdiv.explain r);
        if indep then raise (Indep (Some Counters.Rdiv_test));
        Presult.of_outcome r.Rdiv.outcome
    | Classify.Miv _ -> (
        let t0 = tick () in
        (match Gcd_test.test p with
        | `Independent ->
            record ~t0 Counters.Gcd_miv ~indep:true;
            emit_test Counters.Gcd_miv p Dt_obs.Trace.Independent
              "coefficient gcd does not divide the constant difference";
            raise (Indep (Some Counters.Gcd_miv))
        | `Maybe -> record ~t0 Counters.Gcd_miv ~indep:false);
        let occurring = Spair.indices p in
        let indices =
          List.filter (fun i -> Index.Set.mem i occurring) common_indices
        in
        let t1 = tick () in
        match
          Banerjee.vectors ?dispatch ?scratch ?metrics ?sink ?spans ?budget
            assume range [ p ] ~indices
        with
        | `Independent as v ->
            record ~t0:t1 ~span:false Counters.Banerjee_miv ~indep:true;
            if sink <> None then
              emit_test Counters.Banerjee_miv p Dt_obs.Trace.Independent
                (Banerjee.explain v);
            raise (Indep (Some Counters.Banerjee_miv))
        | `Vectors vecs as v ->
            record ~t0:t1 ~span:false Counters.Banerjee_miv ~indep:false;
            if sink <> None then
              emit_test Counters.Banerjee_miv p Dt_obs.Trace.Dependent
                (Banerjee.explain v);
            Presult.Vectors (indices, vecs))
  in
  let spairs_arr = Array.of_list spairs in
  let separable, coupled =
    List.partition (fun g -> List.length g.Classify.positions = 1) groups
  in
  emit
    (Dt_obs.Trace.Partitioned
       {
         dims = List.length spairs + nonlinear;
         nonlinear;
         separable = List.length separable;
         coupled_groups = List.length coupled;
       });
  let run () =
    Dt_guard.Inject.hit inject_pair;
    let parts =
      Dt_obs.Metrics.timed metrics Dt_obs.Metrics.Test (fun () ->
          match strategy with
          | Subscript_by_subscript -> (
              match
                Subscript_wise.test ?counters ?metrics ?sink ?spans ?budget
                  ?dispatch ?scratch assume range spairs
                  ~common:common_indices
              with
              | `Independent k -> raise (Indep (Some k))
              | `Dependent parts -> parts)
          | Partition_based ->
              let sep_parts =
                List.map
                  (fun g ->
                    contain
                      ~widen:(fun r -> Presult.Degraded r)
                      (fun () ->
                        test_separable spairs_arr.(List.hd g.Classify.positions)))
                  separable
              in
              let coup_parts =
                List.concat_map
                  (fun g ->
                    let group_pairs =
                      List.map (fun k -> spairs_arr.(k)) g.Classify.positions
                    in
                    emit
                      (Dt_obs.Trace.Group_start
                         { positions = g.Classify.positions });
                    contain
                      ~widen:(fun r -> [ Presult.Degraded r ])
                      (fun () ->
                        let r =
                          scoped (fun () ->
                              Delta.test ?counters ?metrics ?sink ?spans
                                ?budget ?dispatch ?scratch ~loops:all_loops
                                assume range group_pairs ~relevant)
                        in
                        delta_passes := max !delta_passes r.Delta.passes;
                        delta_leftover :=
                          !delta_leftover + r.Delta.leftover_miv;
                        match r.Delta.verdict with
                        | `Independent ->
                            raise (Indep (Some Counters.Delta_test))
                        | `Dependent parts -> parts))
                  coupled
              in
              sep_parts @ coup_parts)
    in
    Dt_obs.Span.with_ spans Dt_obs.Span.Merge @@ fun () ->
    Dt_obs.Metrics.timed metrics Dt_obs.Metrics.Merge (fun () ->
        if List.exists Presult.is_independent parts then raise (Indep None);
        let vec_sets =
          List.map (Presult.to_dirvecs ~loop_indices:common_indices) parts
        in
        if List.exists (fun s -> s = []) vec_sets then raise (Indep None);
        let dirvecs =
          match vec_sets with
          | [] -> [ Dirvec.full n ]
          | _ -> Dirvec.merge vec_sets
        in
        if dirvecs = [] then raise (Indep None);
        let distances =
          List.concat_map Presult.distances parts
          |> List.filter (fun (i, _) ->
                 List.exists (Index.equal i) common_indices)
        in
        `Dependent { dirvecs; distances })
  in
  (* pair-level backstop: whatever escapes the partition guard (budget
     exhaustion, a fault inside the merge, an unexpected exception from
     a buggy test) widens the whole pair, never the whole run. Only
     [Out_of_memory] stays fatal. *)
  let conservative reason =
    note_degraded reason;
    `Dependent { dirvecs = [ Dirvec.full n ]; distances = [] }
  in
  let result, proved_by =
    match run () with
    | r -> (r, None)
    | exception Indep k -> (`Independent, k)
    | exception Dt_guard.Ops.Overflow ->
        (conservative Dt_guard.Degrade.Overflow, None)
    | exception Dt_guard.Budget.Exhausted ->
        (conservative Dt_guard.Degrade.Budget, None)
    | exception Dt_guard.Inject.Injected site ->
        (conservative (Dt_guard.Degrade.Exception ("injected fault at " ^ site)),
         None)
    | exception Out_of_memory -> raise Out_of_memory
    | exception Stack_overflow ->
        (conservative (Dt_guard.Degrade.Exception "Stack_overflow"), None)
    | exception e ->
        (conservative (Dt_guard.Degrade.Exception (Printexc.to_string e)), None)
  in
  (match !degraded with
  | None -> ()
  | Some r ->
      (match metrics with
      | Some m -> Dt_obs.Metrics.degraded m (Dt_guard.Degrade.tag r)
      | None -> ());
      emit
        (Dt_obs.Trace.Note
           (Printf.sprintf "pair degraded conservatively (%s)"
              (Dt_guard.Degrade.to_string r))));
  let meta =
    {
      dims = List.length spairs + nonlinear;
      nonlinear;
      separable = List.length separable;
      coupled_groups = List.length coupled;
      coupled_positions =
        Dt_support.Listx.sum_by
          (fun g -> List.length g.Classify.positions)
          coupled;
      classes;
      delta_passes = !delta_passes;
      delta_leftover_miv = !delta_leftover;
      proved_by;
      degraded = !degraded;
    }
  in
  { result; meta }

let degraded_result ~src:((_ : Aref.t), src_loops) ~snk:((_ : Aref.t), snk_loops)
    reason =
  let n = List.length (common_loops src_loops snk_loops) in
  {
    result = `Dependent { dirvecs = [ Dirvec.full n ]; distances = [] };
    meta =
      {
        dims = 0;
        nonlinear = 0;
        separable = 0;
        coupled_groups = 0;
        coupled_positions = 0;
        classes = [];
        delta_passes = 0;
        delta_leftover_miv = 0;
        proved_by = None;
        degraded = Some reason;
      };
  }

(* Whole-function backstop: [test_exn] can fault before its own pair-level
   guard is in place (huge constants overflow checked arithmetic inside
   [Range.compute] or kernel compilation at classification time). The
   exported driver therefore never raises — any fault yields the
   conservative full direction-vector verdict, with the reason recorded
   in metrics and on the trace. [Out_of_memory] stays fatal. *)
let test ?counters ?metrics ?sink ?spans ?budget ?dispatch ?scratch ?strategy
    ?assume ~src ~snk () =
  if (fst src).Aref.base <> (fst snk).Aref.base then
    invalid_arg "Pair_test.test: references to different arrays";
  match
    test_exn ?counters ?metrics ?sink ?spans ?budget ?dispatch ?scratch
      ?strategy ?assume ~src ~snk ()
  with
  | r -> r
  | exception Out_of_memory -> raise Out_of_memory
  | exception e ->
      let reason =
        match e with
        | Dt_guard.Ops.Overflow -> Dt_guard.Degrade.Overflow
        | Dt_guard.Budget.Exhausted -> Dt_guard.Degrade.Budget
        | Dt_guard.Inject.Injected site ->
            Dt_guard.Degrade.Exception ("injected fault at " ^ site)
        | Stack_overflow -> Dt_guard.Degrade.Exception "Stack_overflow"
        | e -> Dt_guard.Degrade.Exception (Printexc.to_string e)
      in
      (match metrics with
      | Some m -> Dt_obs.Metrics.degraded m (Dt_guard.Degrade.tag reason)
      | None -> ());
      (match sink with
      | Some sk ->
          Dt_obs.Trace.emit sk
            (Dt_obs.Trace.Note
               (Printf.sprintf "pair degraded conservatively (%s)"
                  (Dt_guard.Degrade.to_string reason)))
      | None -> ());
      degraded_result ~src ~snk reason
