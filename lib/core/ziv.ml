open Dt_ir

let test assume (p : Spair.t) =
  let d = Affine.sub p.snk p.src in
  match Assume.sign assume d with
  | `Pos | `Neg -> Outcome.Independent
  | _ -> Outcome.Dependent []
