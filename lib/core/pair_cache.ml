open Dt_ir

module Memo = Dt_engine.Memo

type entry = {
  result : Pair_test.t;
  counters : Counters.t;  (* the producing run's increments, replayed on hit *)
  producer : (string * Index.t) list;  (* canonical name -> producer index *)
}

type t = entry Memo.t

let create ?capacity () : t = Memo.create ?capacity ()

(* ------------------------------------------------------------------ *)
(* rehydration: translate the producer's result into the consumer's
   index space through the shared canonical form                       *)

(* The driver tick-renames sink-side indices that collide with source
   ones (I -> I'); those derived names are canonical-name + quotes, so we
   translate them by stripping the quotes, mapping the base, and
   re-applying them. *)
let split_quotes name =
  let n = String.length name in
  let rec base i = if i > 0 && name.[i - 1] = '\'' then base (i - 1) else i in
  let b = base n in
  (String.sub name 0 b, n - b)

let translator ~(producer : (string * Index.t) list)
    ~(consumer : (string * Index.t) list) =
  (* both lists come from the same key, so the canonical names align
     positionally *)
  let tbl = Hashtbl.create 8 in
  let identity = ref true in
  List.iter2
    (fun (_, p) (_, c) ->
      if not (Index.equal p c) then identity := false;
      Hashtbl.replace tbl p c)
    producer consumer;
  if !identity then None
  else
    Some
      (fun (i : Index.t) ->
        match Hashtbl.find_opt tbl i with
        | Some j -> j
        | None -> (
            let base, quotes = split_quotes (Index.name i) in
            if quotes = 0 then i
            else
              match
                Hashtbl.find_opt tbl (Index.make base ~depth:(Index.depth i))
              with
              | Some j ->
                  Index.make
                    (Index.name j ^ String.make quotes '\'')
                    ~depth:(Index.depth j)
              | None -> i))

let tr_affine tr a =
  Affine.make
    ~idx:(List.map (fun (i, c) -> (tr i, c)) (Affine.index_terms a))
    ~sym:(Affine.sym_terms a) ~const:(Affine.const_part a)

let tr_dist tr = function
  | Outcome.Const _ as d -> d
  | Outcome.Unknown as d -> d
  | Outcome.Sym a -> Outcome.Sym (tr_affine tr a)

let tr_class tr = function
  | Classify.Ziv -> Classify.Ziv
  | Classify.Siv { index; kind } -> Classify.Siv { index = tr index; kind }
  | Classify.Rdiv { src_index; snk_index } ->
      Classify.Rdiv { src_index = tr src_index; snk_index = tr snk_index }
  | Classify.Miv s -> Classify.Miv (Index.Set.map tr s)

let tr_result tr (r : Pair_test.t) : Pair_test.t =
  let result =
    match r.Pair_test.result with
    | `Independent -> `Independent
    | `Dependent { Pair_test.dirvecs; distances } ->
        `Dependent
          {
            (* direction vectors are positional over the common loops:
               copy (they are mutable arrays), no renaming needed *)
            Pair_test.dirvecs = List.map Array.copy dirvecs;
            distances =
              List.map (fun (i, d) -> (tr i, tr_dist tr d)) distances;
          }
  in
  let meta =
    { r.Pair_test.meta with
      Pair_test.classes = List.map (tr_class tr) r.Pair_test.meta.Pair_test.classes
    }
  in
  { Pair_test.result; meta }

(* copy without renaming: never hand out the cached mutable arrays *)
let copy_result (r : Pair_test.t) : Pair_test.t =
  match r.Pair_test.result with
  | `Independent -> r
  | `Dependent ({ Pair_test.dirvecs; _ } as info) ->
      {
        r with
        Pair_test.result =
          `Dependent { info with Pair_test.dirvecs = List.map Array.copy dirvecs };
      }

(* ------------------------------------------------------------------ *)

let find t (key : Dt_engine.Key.t) ~counters =
  match Memo.find_opt t key.Dt_engine.Key.key with
  | None -> None
  | Some e ->
      Counters.merge_into counters e.counters;
      Some
        (match
           translator ~producer:e.producer
             ~consumer:key.Dt_engine.Key.actual_of_canon
         with
        | None -> copy_result e.result
        | Some tr -> tr_result tr e.result)

let store t (key : Dt_engine.Key.t) ~counters result =
  Memo.add t key.Dt_engine.Key.key
    { result; counters; producer = key.Dt_engine.Key.actual_of_canon }

let hits = Memo.hits
let misses = Memo.misses
let hit_rate = Memo.hit_rate
let length = Memo.length
let evictions = Memo.evictions
