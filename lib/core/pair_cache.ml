open Dt_ir

module Memo = Dt_engine.Memo
module Store = Dt_engine.Store
module Json = Dt_obs.Json

type entry = {
  result : Pair_test.t;
  counters : Counters.t;  (* the producing run's increments, replayed on hit *)
  producer : (string * Index.t) list;  (* canonical name -> producer index *)
}

type t = {
  memo : entry Memo.t;
  disk : Store.t option;  (* cross-run tier under the in-process memo *)
}

let create ?capacity ?disk () = { memo = Memo.create ?capacity (); disk }

(* ------------------------------------------------------------------ *)
(* rehydration: translate the producer's result into the consumer's
   index space through the shared canonical form                       *)

(* The driver tick-renames sink-side indices that collide with source
   ones (I -> I'); those derived names are canonical-name + quotes, so we
   translate them by stripping the quotes, mapping the base, and
   re-applying them. *)
let split_quotes name =
  let n = String.length name in
  let rec base i = if i > 0 && name.[i - 1] = '\'' then base (i - 1) else i in
  let b = base n in
  (String.sub name 0 b, n - b)

let translator ~(producer : (string * Index.t) list)
    ~(consumer : (string * Index.t) list) =
  (* both lists come from the same key, so the canonical names align
     positionally *)
  let tbl = Hashtbl.create 8 in
  let identity = ref true in
  List.iter2
    (fun (_, p) (_, c) ->
      if not (Index.equal p c) then identity := false;
      Hashtbl.replace tbl p c)
    producer consumer;
  if !identity then None
  else
    Some
      (fun (i : Index.t) ->
        match Hashtbl.find_opt tbl i with
        | Some j -> j
        | None -> (
            let base, quotes = split_quotes (Index.name i) in
            if quotes = 0 then i
            else
              match
                Hashtbl.find_opt tbl (Index.make base ~depth:(Index.depth i))
              with
              | Some j ->
                  Index.make
                    (Index.name j ^ String.make quotes '\'')
                    ~depth:(Index.depth j)
              | None -> i))

let tr_affine tr a =
  Affine.make
    ~idx:(List.map (fun (i, c) -> (tr i, c)) (Affine.index_terms a))
    ~sym:(Affine.sym_terms a) ~const:(Affine.const_part a)

let tr_dist tr = function
  | Outcome.Const _ as d -> d
  | Outcome.Unknown as d -> d
  | Outcome.Sym a -> Outcome.Sym (tr_affine tr a)

let tr_class tr = function
  | Classify.Ziv -> Classify.Ziv
  | Classify.Siv { index; kind } -> Classify.Siv { index = tr index; kind }
  | Classify.Rdiv { src_index; snk_index } ->
      Classify.Rdiv { src_index = tr src_index; snk_index = tr snk_index }
  | Classify.Miv s -> Classify.Miv (Index.Set.map tr s)

let tr_result tr (r : Pair_test.t) : Pair_test.t =
  let result =
    match r.Pair_test.result with
    | `Independent -> `Independent
    | `Dependent { Pair_test.dirvecs; distances } ->
        `Dependent
          {
            (* direction vectors are positional over the common loops:
               copy (they are mutable arrays), no renaming needed *)
            Pair_test.dirvecs = List.map Array.copy dirvecs;
            distances =
              List.map (fun (i, d) -> (tr i, tr_dist tr d)) distances;
          }
  in
  let meta =
    { r.Pair_test.meta with
      Pair_test.classes = List.map (tr_class tr) r.Pair_test.meta.Pair_test.classes
    }
  in
  { Pair_test.result; meta }

(* copy without renaming: never hand out the cached mutable arrays *)
let copy_result (r : Pair_test.t) : Pair_test.t =
  match r.Pair_test.result with
  | `Independent -> r
  | `Dependent ({ Pair_test.dirvecs; _ } as info) ->
      {
        r with
        Pair_test.result =
          `Dependent { info with Pair_test.dirvecs = List.map Array.copy dirvecs };
      }

(* ------------------------------------------------------------------ *)
(* JSON codec for the disk tier. Encoding is total on non-degraded
   entries; decoding validates every field and refuses anything it does
   not recognize — a corrupt or foreign value is reported invalid and
   re-derived cold, never trusted. *)

exception Bad

let enc_index i =
  Json.List [ Json.String (Index.name i); Json.Int (Index.depth i) ]

let dec_index = function
  | Json.List [ Json.String name; Json.Int depth ] -> Index.make name ~depth
  | _ -> raise Bad

let enc_affine a =
  Json.Obj
    [
      ( "idx",
        Json.List
          (List.map
             (fun (i, c) -> Json.List [ enc_index i; Json.Int c ])
             (Affine.index_terms a)) );
      ( "sym",
        Json.List
          (List.map
             (fun (s, c) -> Json.List [ Json.String s; Json.Int c ])
             (Affine.sym_terms a)) );
      ("const", Json.Int (Affine.const_part a));
    ]

let dec_list f = function Json.List l -> List.map f l | _ -> raise Bad

let dec_affine json =
  match
    (Json.member "idx" json, Json.member "sym" json, Json.member "const" json)
  with
  | Some idx, Some sym, Some (Json.Int const) ->
      let idx =
        dec_list
          (function
            | Json.List [ i; Json.Int c ] -> (dec_index i, c) | _ -> raise Bad)
          idx
      in
      let sym =
        dec_list
          (function
            | Json.List [ Json.String s; Json.Int c ] -> (s, c)
            | _ -> raise Bad)
          sym
      in
      Affine.make ~idx ~sym ~const
  | _ -> raise Bad

let enc_dirs (s : Direction.set) =
  let buf = Buffer.create 3 in
  List.iter
    (fun d ->
      Buffer.add_string buf
        (match d with Direction.Lt -> "<" | Direction.Eq -> "=" | Direction.Gt -> ">"))
    (Direction.elements s);
  Json.String (Buffer.contents buf)

let dec_dirs = function
  | Json.String s ->
      Direction.of_list
        (List.init (String.length s) (fun i ->
             match s.[i] with
             | '<' -> Direction.Lt
             | '=' -> Direction.Eq
             | '>' -> Direction.Gt
             | _ -> raise Bad))
  | _ -> raise Bad

let enc_dist = function
  | Outcome.Const c -> Json.Obj [ ("const", Json.Int c) ]
  | Outcome.Sym a -> Json.Obj [ ("sym", enc_affine a) ]
  | Outcome.Unknown -> Json.String "unknown"

let dec_dist = function
  | Json.String "unknown" -> Outcome.Unknown
  | Json.Obj [ ("const", Json.Int c) ] -> Outcome.Const c
  | Json.Obj [ ("sym", a) ] -> Outcome.Sym (dec_affine a)
  | _ -> raise Bad

let siv_kind_slug = function
  | Classify.Strong -> "strong"
  | Classify.Weak_zero -> "weak_zero"
  | Classify.Weak_crossing -> "weak_crossing"
  | Classify.General -> "general"

let siv_kind_of_slug = function
  | "strong" -> Classify.Strong
  | "weak_zero" -> Classify.Weak_zero
  | "weak_crossing" -> Classify.Weak_crossing
  | "general" -> Classify.General
  | _ -> raise Bad

let enc_class = function
  | Classify.Ziv -> Json.String "ziv"
  | Classify.Siv { index; kind } ->
      Json.Obj
        [
          ( "siv",
            Json.Obj
              [
                ("index", enc_index index);
                ("kind", Json.String (siv_kind_slug kind));
              ] );
        ]
  | Classify.Rdiv { src_index; snk_index } ->
      Json.Obj
        [
          ( "rdiv",
            Json.Obj
              [ ("src", enc_index src_index); ("snk", enc_index snk_index) ] );
        ]
  | Classify.Miv s ->
      Json.Obj
        [ ("miv", Json.List (List.map enc_index (Index.Set.elements s))) ]

let dec_class = function
  | Json.String "ziv" -> Classify.Ziv
  | Json.Obj [ ("siv", fields) ] -> (
      match (Json.member "index" fields, Json.member "kind" fields) with
      | Some i, Some (Json.String k) ->
          Classify.Siv { index = dec_index i; kind = siv_kind_of_slug k }
      | _ -> raise Bad)
  | Json.Obj [ ("rdiv", fields) ] -> (
      match (Json.member "src" fields, Json.member "snk" fields) with
      | Some s, Some k ->
          Classify.Rdiv { src_index = dec_index s; snk_index = dec_index k }
      | _ -> raise Bad)
  | Json.Obj [ ("miv", ixs) ] ->
      Classify.Miv (Index.Set.of_list (dec_list dec_index ixs))
  | _ -> raise Bad

let enc_result (r : Pair_test.t) =
  match r.Pair_test.result with
  | `Independent -> Json.String "indep"
  | `Dependent { Pair_test.dirvecs; distances } ->
      Json.Obj
        [
          ( "dirvecs",
            Json.List
              (List.map
                 (fun dv ->
                   Json.List (Array.to_list (Array.map enc_dirs dv)))
                 dirvecs) );
          ( "distances",
            Json.List
              (List.map
                 (fun (i, d) -> Json.List [ enc_index i; enc_dist d ])
                 distances) );
        ]

let dec_result = function
  | Json.String "indep" -> `Independent
  | json -> (
      match (Json.member "dirvecs" json, Json.member "distances" json) with
      | Some dvs, Some dists ->
          `Dependent
            {
              Pair_test.dirvecs =
                dec_list
                  (function
                    | Json.List sets ->
                        Array.of_list (List.map dec_dirs sets)
                    | _ -> raise Bad)
                  dvs;
              distances =
                dec_list
                  (function
                    | Json.List [ i; d ] -> (dec_index i, dec_dist d)
                    | _ -> raise Bad)
                  dists;
            }
      | _ -> raise Bad)

let enc_meta (m : Pair_test.meta) =
  Json.Obj
    [
      ("dims", Json.Int m.Pair_test.dims);
      ("nonlinear", Json.Int m.Pair_test.nonlinear);
      ("separable", Json.Int m.Pair_test.separable);
      ("coupled_groups", Json.Int m.Pair_test.coupled_groups);
      ("coupled_positions", Json.Int m.Pair_test.coupled_positions);
      ("classes", Json.List (List.map enc_class m.Pair_test.classes));
      ("delta_passes", Json.Int m.Pair_test.delta_passes);
      ("delta_leftover_miv", Json.Int m.Pair_test.delta_leftover_miv);
      ( "proved_by",
        match m.Pair_test.proved_by with
        | None -> Json.Null
        | Some k -> Json.String (Dt_obs.Test_kind.slug k) );
    ]

let dec_int json name =
  match Json.member name json with Some (Json.Int i) -> i | _ -> raise Bad

let dec_meta json : Pair_test.meta =
  let classes =
    match Json.member "classes" json with
    | Some l -> dec_list dec_class l
    | None -> raise Bad
  in
  let proved_by =
    match Json.member "proved_by" json with
    | Some Json.Null -> None
    | Some (Json.String s) -> (
        match Dt_obs.Test_kind.of_slug s with
        | Some k -> Some k
        | None -> raise Bad)
    | _ -> raise Bad
  in
  {
    Pair_test.dims = dec_int json "dims";
    nonlinear = dec_int json "nonlinear";
    separable = dec_int json "separable";
    coupled_groups = dec_int json "coupled_groups";
    coupled_positions = dec_int json "coupled_positions";
    classes;
    delta_passes = dec_int json "delta_passes";
    delta_leftover_miv = dec_int json "delta_leftover_miv";
    proved_by;
    (* degraded results are filtered before encoding; anything decoded
       is by construction non-degraded *)
    degraded = None;
  }

let enc_counters c =
  Json.List
    (List.filter_map
       (fun k ->
         let applied = Counters.applied c k in
         if applied = 0 then None
         else
           Some
             (Json.List
                [
                  Json.String (Dt_obs.Test_kind.slug k);
                  Json.Int applied;
                  Json.Int (Counters.proved_indep c k);
                ]))
       Counters.all_kinds)

let dec_counters json =
  let c = Counters.create () in
  List.iter
    (function
      | Json.List [ Json.String slug; Json.Int applied; Json.Int indep ] -> (
          match Dt_obs.Test_kind.of_slug slug with
          | Some k when 0 <= indep && indep <= applied ->
              for _ = 1 to indep do
                Counters.record c k ~indep:true
              done;
              for _ = 1 to applied - indep do
                Counters.record c k ~indep:false
              done
          | _ -> raise Bad)
      | _ -> raise Bad)
    (match json with Json.List l -> l | _ -> raise Bad);
  c

let encode_entry e =
  Json.Obj
    [
      ("result", enc_result e.result);
      ("meta", enc_meta e.result.Pair_test.meta);
      ("counters", enc_counters e.counters);
      ( "producer",
        Json.List
          (List.map
             (fun (canon, i) -> Json.List [ Json.String canon; enc_index i ])
             e.producer) );
    ]

let decode_entry json =
  match
    ( Json.member "result" json,
      Json.member "meta" json,
      Json.member "counters" json,
      Json.member "producer" json )
  with
  | Some result, Some meta, Some counters, Some producer -> (
      try
        Some
          {
            result =
              { Pair_test.result = dec_result result; meta = dec_meta meta };
            counters = dec_counters counters;
            producer =
              dec_list
                (function
                  | Json.List [ Json.String canon; i ] -> (canon, dec_index i)
                  | _ -> raise Bad)
                producer;
          }
      with Bad -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)

let disk_key (key : Dt_engine.Key.t) = "p:" ^ key.Dt_engine.Key.key

let rehydrate e (key : Dt_engine.Key.t) ~counters =
  Counters.merge_into counters e.counters;
  match
    translator ~producer:e.producer ~consumer:key.Dt_engine.Key.actual_of_canon
  with
  | None -> copy_result e.result
  | Some tr -> tr_result tr e.result

let find t (key : Dt_engine.Key.t) ~counters =
  match Memo.find_opt t.memo key.Dt_engine.Key.key with
  | Some e -> Some (rehydrate e key ~counters)
  | None -> (
      match t.disk with
      | None -> None
      | Some store -> (
          match Store.find store (disk_key key) with
          | None -> None
          | Some json -> (
              match decode_entry json with
              | Some e ->
                  (* promote to the memo tier so later hits skip the
                     decode; producer mapping carries over verbatim *)
                  Memo.add t.memo key.Dt_engine.Key.key e;
                  Some (rehydrate e key ~counters)
              | None ->
                  (* undecodable payload: count it, drop it, recompute —
                     never trust a value that fails validation *)
                  Store.note_invalid store;
                  Store.remove store (disk_key key);
                  None)))

let store t (key : Dt_engine.Key.t) ~counters result =
  let e = { result; counters; producer = key.Dt_engine.Key.actual_of_canon } in
  Memo.add t.memo key.Dt_engine.Key.key e;
  match t.disk with
  | None -> ()
  | Some store ->
      (* belt and braces: the engine already refuses to cache degraded
         results, but the persistent tier re-checks — a degraded verdict
         must never outlive the run that produced it *)
      if result.Pair_test.meta.Pair_test.degraded = None then
        Store.add store (disk_key key) (encode_entry e)

let hits t = Memo.hits t.memo
let misses t = Memo.misses t.memo
let hit_rate t = Memo.hit_rate t.memo
let length t = Memo.length t.memo
let evictions t = Memo.evictions t.memo

let disk_hits t = match t.disk with None -> 0 | Some s -> Store.hits s
let disk_misses t = match t.disk with None -> 0 | Some s -> Store.misses s
let disk_invalid t = match t.disk with None -> 0 | Some s -> Store.invalid s
let flush t = match t.disk with None -> 0 | Some s -> Store.flush s
