open Dt_ir

let inject_test = Dt_guard.Inject.register "siv.test"

type result = { outcome : Outcome.t; constr : Constr.t }

(* All SIV tests reduce the dependence equation
     a1*alpha + c1 = a2*beta + c2
   to the canonical constraint a1*alpha - a2*beta = (c2 - c1); the
   specialized entry points build the cheap special-case constraints
   directly (distance / fixed iteration / crossing line) and share a single
   interpreter (Constr.to_outcome) that performs the bound checks. *)

let parts (p : Spair.t) i =
  let a1, a2 = Spair.coeffs p i (* compiled-kernel coefficient lookup *) in
  let c1 = Affine.drop_index p.src i and c2 = Affine.drop_index p.snk i in
  (a1, a2, Affine.sub c2 c1)

let finish assume range i constr =
  { outcome = Constr.to_outcome assume range i constr; constr }

let strong assume range (p : Spair.t) i =
  let a1, a2, e = parts p i in
  assert (a1 = a2 && a1 <> 0);
  let constr =
    match Affine.div_exact (Affine.neg e) a1 with
    | Some d -> Constr.sym_dist d (* d = (c1 - c2) / a *)
    | None -> Constr.line ~a:a1 ~b:(-a2) ~c:e
  in
  finish assume range i constr

let weak_zero assume range (p : Spair.t) i =
  let a1, a2, e = parts p i in
  assert ((a1 = 0) <> (a2 = 0));
  let constr = Constr.line ~a:a1 ~b:(-a2) ~c:e in
  finish assume range i constr

let weak_crossing assume range (p : Spair.t) i =
  let a1, a2, e = parts p i in
  assert (a1 = -a2 && a1 <> 0);
  let constr = Constr.line ~a:a1 ~b:(-a2) ~c:e in
  finish assume range i constr

let exact assume range (p : Spair.t) i =
  let a1, a2, e = parts p i in
  let constr = Constr.line ~a:a1 ~b:(-a2) ~c:e in
  finish assume range i constr

let test assume range p i =
  Dt_guard.Inject.hit inject_test;
  match Classify.siv_kind_of p i with
  | Classify.Strong -> strong assume range p i
  | Classify.Weak_zero -> weak_zero assume range p i
  | Classify.Weak_crossing -> weak_crossing assume range p i
  | Classify.General -> exact assume range p i

let crossing_point (p : Spair.t) i =
  let a1, a2, e = parts p i in
  if a1 = -a2 && a1 <> 0 then
    match Affine.as_const e with
    | Some c -> Some (Dt_support.Ratio.make c (Dt_guard.Ops.mul 2 a1))
    | None -> None
  else None

let crossing_point2 (p : Spair.t) i =
  let a1, a2, e = parts p i in
  if a1 = -a2 && a1 <> 0 then Affine.div_exact e a1 else None

(* One-line account of a finished SIV test, for the trace/explain layer:
   the constraint says what the test derived, the outcome says how the
   bound check went, and the range supplies the paper's U-L span. *)
let explain range (p : Spair.t) i (r : result) =
  ignore p;
  let span ppf =
    match Range.trip_minus_one range i with
    | Some e when Affine.is_const e ->
        Format.fprintf ppf " = %d" (Affine.const_part e)
    | Some e -> Format.fprintf ppf " = %a" Affine.pp e
    | None -> ()
  in
  match (r.outcome, r.constr) with
  | Outcome.Independent, Constr.Dist d ->
      Format.asprintf "distance %d > U-L%t" (abs d) span
  | Outcome.Independent, Constr.Sym_dist e ->
      Format.asprintf "symbolic distance %a provably outside U-L%t" Affine.pp e
        span
  | Outcome.Independent, Constr.Point { x; y } ->
      Format.asprintf "solution (alpha, beta) = (%d, %d) outside the loop bounds"
        x y
  | Outcome.Independent, Constr.Line { a; b; c } ->
      Format.asprintf
        "line %d*alpha + %d*beta = %a has no integer solution in bounds" a b
        Affine.pp c
  | Outcome.Independent, Constr.Empty -> "contradictory constraint"
  | Outcome.Independent, Constr.Any -> "no constraint, yet independent"
  | Outcome.Dependent _, _ ->
      Format.asprintf "%a within bounds; %a" Constr.pp r.constr Outcome.pp
        r.outcome

let weak_zero_iteration _assume (p : Spair.t) i =
  let a1, a2, e = parts p i in
  if a1 <> 0 && a2 = 0 then Affine.div_exact e a1
  else if a1 = 0 && a2 <> 0 then Affine.div_exact (Affine.neg e) a2
  else None
