(** Statement-level dependence graph.

    Nodes are statement ids; edges are data dependences (input dependences
    excluded by default). The vectorization and parallelization passes
    query edges by carried level, following Allen-Kennedy: an edge is
    *active at level k* if it is carried at some level >= k or is
    loop-independent between statements nested at least k deep. *)

type t

val build : ?keep_inputs:bool -> Dep.t list -> t
val stmts : t -> int list
val edges : t -> Dep.t list
val succs : t -> int -> Dep.t list
val edges_between : t -> src:int -> snk:int -> Dep.t list

val active_at : Dep.t -> level:int -> bool
(** Carried at level >= [level], or loop-independent. *)

val carried_at : t -> level:int -> Dep.t list
val pp : Format.formatter -> t -> unit

val to_dot : ?stmt_label:(int -> string) -> t -> string
(** Graphviz rendering: nodes are statements, edge styles encode the
    dependence kind (solid = flow, dashed = anti, dotted = output), edge
    labels carry the direction vector and level. *)
