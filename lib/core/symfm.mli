(** Fourier-Motzkin elimination with symbolic bounds.

    A miniature FM engine over a small, fixed set of iteration variables
    whose constraint bounds are symbol-only affine forms: eliminating a
    variable combines integer-scaled constraints, and final contradictions
    are decided by the sign oracle. Sound: [infeasible = true] is a proof
    (rational infeasibility implies integer infeasibility; unknown symbolic
    comparisons are treated as satisfiable).

    The Delta test uses this on coupled RDIV groups (at most four
    variables: alpha_i, alpha_j, beta_i, beta_j), where the paper's
    restricted propagation meets triangular bounds — e.g. proving that a
    transposed reference in a strict triangle can never collide. The
    general-purpose rational FM used by the Power test lives in
    [dt_exact]; this one exists so the *practical* suite can stay
    independent of the expensive machinery while handling the common
    special case exactly. *)

open Dt_ir

type constr = {
  coeffs : int array;  (** length = nvars; sum coeffs.(v) * x_v *)
  bound : Affine.t;  (** symbol-only affine: sum <= bound *)
}

val le : int array -> Affine.t -> constr
val eq : int array -> Affine.t -> constr list
(** An equality as two inequalities. *)

val infeasible : Assume.t -> nvars:int -> constr list -> bool
(** [true] proves there is no rational (hence no integer) solution. *)

val max_constraints : int
(** Safety cap: elimination aborts (returning [false], i.e. "cannot
    disprove") once the constraint set exceeds this size. *)
