(** Two-variable linear Diophantine equations over bounded ranges.

    The engine behind the exact SIV test (§4.2) and the RDIV test (§4.4):
    solve [a*x + b*y = c] for integers [x in xr], [y in yr]. Solutions form
    the one-parameter family [x = x0 + dx*t, y = y0 + dy*t]; bounding both
    variables restricts [t] to an interval, making every question about the
    solution set (emptiness, direction of y - x, uniqueness) answerable
    exactly in O(1). *)

type family = {
  g : int;  (** gcd(a, b) *)
  x0 : int;
  y0 : int;
  dx : int;  (** x = x0 + dx * t *)
  dy : int;  (** y = y0 + dy * t *)
}

val solve : a:int -> b:int -> c:int -> family option
(** [None] when gcd(a,b) does not divide [c] (no integer solutions), or
    when [a = b = 0] and [c <> 0]. When [a = b = 0 = c] the family is the
    whole plane, encoded as [dx = dy = 0] with... that degenerate case is
    rejected too: callers must handle all-zero coefficients themselves
    (raises [Invalid_argument]). *)

val t_range :
  family -> x_range:Dt_support.Interval.t -> y_range:Dt_support.Interval.t ->
  Dt_support.Interval.t
(** Parameter values whose (x, y) lie inside both ranges. *)

val feasible :
  a:int -> b:int -> c:int ->
  x_range:Dt_support.Interval.t -> y_range:Dt_support.Interval.t -> bool
(** Any integer solution within the ranges? Ranges may be infinite. *)

val direction_sets :
  family -> t_range:Dt_support.Interval.t -> Direction.set
(** Over the t interval (assumed non-empty), which signs does [y - x]
    take? Used to derive SIV direction vectors exactly. *)

val value_at : family -> int -> int * int
(** (x, y) at parameter t. *)

val unique : family -> t_range:Dt_support.Interval.t -> (int * int) option
(** The solution when the t interval is a singleton. *)
