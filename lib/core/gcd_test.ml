open Dt_ir
open Dt_support

let coeff_gcd ?(eq_indices = Index.Set.empty) (p : Spair.t) =
  let indices = Spair.indices p in
  Index.Set.fold
    (fun i g ->
      let a = Affine.coeff p.src i and b = Affine.coeff p.snk i in
      if Index.Set.mem i eq_indices then Int_ops.gcd g (a - b)
      else Int_ops.gcd (Int_ops.gcd g a) b)
    indices 0

let test ?eq_indices (p : Spair.t) =
  let g = coeff_gcd ?eq_indices p in
  let c = Spair.diff_const p in
  let g' =
    List.fold_left (fun acc (_, k) -> Int_ops.gcd acc k) g (Affine.sym_terms c)
  in
  if Int_ops.divides g' (Affine.const_part c) then `Maybe else `Independent
