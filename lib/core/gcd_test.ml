open Dt_ir
open Dt_support

(* Both folds run over the pair's compiled kernel: the per-slot
   gcd(a_k, b_k) / (a_k - b_k) values and the gcd of diff_const's
   symbolic coefficients are precomputed once per pair, so a query is an
   allocation-free loop. gcd is associative and commutative, so folding
   precomputed sub-gcds yields the same value as the historical
   coefficient-by-coefficient fold. *)

let coeff_gcd ?(eq_indices = Index.Set.empty) (p : Spair.t) =
  let kp = Spair.kernel p in
  let g = ref 0 in
  Array.iteri
    (fun k i ->
      g :=
        Int_ops.gcd !g
          (if Index.Set.mem i eq_indices then kp.Linform.diff_eq.(k)
           else kp.Linform.gcd_star.(k)))
    kp.Linform.indices;
  !g

let test ?eq_indices (p : Spair.t) =
  let kp = Spair.kernel p in
  let g' = Int_ops.gcd (coeff_gcd ?eq_indices p) kp.Linform.c_sym_gcd in
  if Int_ops.divides g' kp.Linform.c_const then `Maybe else `Independent
