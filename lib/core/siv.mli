(** The SIV test suite (paper §4.2): strong, weak-zero, weak-crossing, and
    the general exact SIV test.

    Every test both decides dependence and, when dependence is possible,
    produces the constraint the Delta test intersects and propagates. All
    tests are exact for constant ranges; with symbolic bounds or symbolic
    additive constants they remain exact whenever the sign oracle can
    decide the relevant comparisons and are conservative otherwise
    (§4.5). *)

open Dt_ir

type result = { outcome : Outcome.t; constr : Constr.t }

val test : Assume.t -> Range.t -> Spair.t -> Index.t -> result
(** Dispatch on the SIV kind of the pair in the given index. *)

val strong : Assume.t -> Range.t -> Spair.t -> Index.t -> result
(** <a*i + c1, a*i' + c2>: distance d = (c1 - c2) / a; dependence iff d
    integral and |d| <= U - L. *)

val weak_zero : Assume.t -> Range.t -> Spair.t -> Index.t -> result
(** One coefficient zero: solves for the single defined iteration and
    checks it against the loop bounds; the driver uses first/last-iteration
    hits to suggest loop peeling. *)

val weak_crossing : Assume.t -> Range.t -> Spair.t -> Index.t -> result
(** a2 = -a1: all dependences cross iteration i_c = (c2 - c1) / 2a;
    dependence iff i_c falls within bounds on an integer or half-integer
    point. *)

val exact : Assume.t -> Range.t -> Spair.t -> Index.t -> result
(** General <a1*i + c1, a2*i' + c2> via the bounded two-variable
    Diophantine solver — the Banerjee-Wolfe single-index exact test. *)

val crossing_point : Spair.t -> Index.t -> Dt_support.Ratio.t option
(** The crossing iteration of a weak-crossing pair, for reporting and for
    the loop-splitting transformation. [None] when the additive constants
    are symbolic (use {!crossing_point2}). *)

val crossing_point2 : Spair.t -> Index.t -> Affine.t option
(** Twice the crossing iteration, as a symbol-only affine — defined even
    with symbolic additive constants, e.g. [N + 1] for the pair
    <i, N - i' + 1> (the paper's CDL example crosses at (N+1)/2). *)

val explain : Range.t -> Spair.t -> Index.t -> result -> string
(** One-line reason for the test's verdict, e.g. ["distance 4 > U-L = 2"]
    for a strong SIV independence proof — consumed by the trace layer's
    explain output. *)

val weak_zero_iteration : Assume.t -> Spair.t -> Index.t -> Affine.t option
(** The single source/sink iteration of a weak-zero pair (symbol-only
    affine), for the loop-peeling suggestion. *)
