(** Direction vectors over the common loops of a reference pair.

    A direction vector assigns a {!Direction.set} to each common loop,
    outermost first. The driver works with *sets of* direction vectors; a
    minimal complete set uses '*' entries wherever all three directions are
    legal, expanding lazily. *)

type t = Direction.set array
(** Position 0 = outermost common loop. *)

val full : int -> t
(** All-'*' vector of the given length. *)

val refine : t -> int -> Direction.set -> t option
(** Intersect position [k] with a set; [None] if the result is empty. *)

val expand : t -> t list
(** All single-direction vectors covered (cartesian expansion). *)

val concrete : t -> Direction.t list option
(** When every entry is a singleton. *)

val of_dirs : Direction.t list -> t
val level : t -> int option
(** Carried level of a concrete-enough vector: 1-based position of the
    outermost entry whose set excludes '='... more precisely the outermost
    position that is definitely not '=' when scanning; [None] if the vector
    can be all-'=' (loop-independent). A position whose set contains both
    '=' and others yields the conservative answer for the non-'=' choice,
    so [level] is defined on *concrete* vectors; on mixed vectors use
    [levels]. *)

val levels : t -> int list
(** All carried levels realizable by some concrete expansion, sorted;
    level [n+1] (represented as [Array.length + 1]) stands for
    loop-independent (the all-'=' expansion). *)

val is_forward : Direction.t list -> bool
(** First non-'=' is '<' (a legal source-to-sink execution order), or all
    '='. *)

val is_backward : Direction.t list -> bool
(** First non-'=' is '>' — denotes the reversed dependence. *)

val negate : t -> t
val merge : t list list -> t list
(** Cartesian merge of per-partition vector sets (each already over the
    full loop list, '*' on indices the partition does not constrain):
    position-wise intersection of one choice from each set; empty results
    dropped. Duplicates removed. *)

val inter : t -> t -> t option
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val pp_concrete : Format.formatter -> Direction.t list -> unit

val distances_to_vec : int option array -> t
(** Direction vector implied by (possibly unknown) distances. *)
