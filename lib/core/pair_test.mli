(** The per-reference-pair dependence testing driver (paper §3).

    Given two references to the same array together with their enclosing
    loops, the driver:

    + renames sink-side loop indices beyond the common nest so distinct
      loops never alias;
    + excludes nonlinear subscripts (conservatively unconstrained);
    + partitions the subscript positions into separable positions and
      minimal coupled groups;
    + dispatches the cheapest applicable exact test on each separable
      position (ZIV / SIV / RDIV / Banerjee-GCD MIV) and the Delta test on
      each coupled group;
    + merges the per-partition direction-vector sets into a single set
      over the common loops.

    The [Subscript_wise] strategy is the pre-Delta baseline, kept for the
    Table-4 comparison. *)

open Dt_ir

type strategy = Partition_based | Subscript_by_subscript

type meta = {
  dims : int;  (** subscript positions tested *)
  nonlinear : int;  (** positions excluded as nonlinear *)
  separable : int;
  coupled_groups : int;
  coupled_positions : int;
  classes : Classify.t list;  (** classification per linear position *)
  delta_passes : int;
  delta_leftover_miv : int;
  proved_by : Counters.kind option;
      (** when the result is [`Independent], the test that proved it;
          [None] means independence emerged from the direction-vector
          merge (no single test). Meaningless for dependent results. *)
  degraded : Dt_guard.Degrade.reason option;
      (** [Some r] when a fault (checked-arithmetic overflow, contained
          exception, exhausted budget) forced part or all of this pair to
          the conservative full direction-vector verdict. The result is
          still sound — a superset of the true dependences — but no
          longer exact; such results are never cached. *)
}

type dependence_info = {
  dirvecs : Dirvec.t list;  (** over the common loops, outermost first *)
  distances : (Index.t * Outcome.dist) list;
}

type t = { result : [ `Independent | `Dependent of dependence_info ]; meta : meta }

val common_loops : Loop.t list -> Loop.t list -> Loop.t list

val test :
  ?counters:Counters.t ->
  ?metrics:Dt_obs.Metrics.t ->
  ?sink:Dt_obs.Trace.sink ->
  ?spans:Dt_obs.Span.t ->
  ?budget:Dt_guard.Budget.t ->
  ?dispatch:Banerjee.dispatch ->
  ?scratch:Banerjee.Scratch.t ->
  ?strategy:strategy ->
  ?assume:Assume.t ->
  src:Aref.t * Loop.t list ->
  snk:Aref.t * Loop.t list ->
  unit ->
  t
(** Loop lists are the statements' enclosing loops, outermost first. The
    two references must name the same array. Loop-nonemptiness facts are
    added to [assume] automatically.

    [metrics] accumulates per-test-kind counts/timings and partition /
    test / merge phase spans; [sink] receives the typed trace of every
    step (see {!Dt_obs.Trace}); [spans] receives the timeline —
    partition and merge brackets, a leaf span per test applied, and the
    Delta / Banerjee sub-brackets (see {!Dt_obs.Span}). None of them
    costs anything when omitted.

    [dispatch] selects the Banerjee evaluator for every hierarchy query
    this pair issues (default {!Banerjee.Auto}); [scratch] lends the
    queries a per-worker arena so repeated pairs stop allocating
    compilation buffers. Neither can change the verdict (see
    {!Banerjee.dispatch}).

    Fault containment: an overflow of the checked arithmetic or an
    injected fault inside one partition's test degrades that partition;
    anything escaping the partition guard — including
    {!Dt_guard.Budget.Exhausted} when [budget] runs out — degrades the
    whole pair to the full direction-vector verdict. Either way the
    reason is recorded in [meta.degraded], counted in [metrics]'s guard
    block, and noted on [sink]; the call never raises (except
    [Out_of_memory], which stays fatal). *)

val degraded_result :
  src:Aref.t * Loop.t list ->
  snk:Aref.t * Loop.t list ->
  Dt_guard.Degrade.reason ->
  t
(** The conservative verdict the engine substitutes when a pair task
    fails outside {!test}'s own guards (or is cut off by a deadline
    before starting): full direction vectors over the common loops,
    zeroed meta, [meta.degraded = Some reason]. *)
