open Dt_ir

type kind = Flow | Anti | Output | Input

type t = {
  src_stmt : int;
  snk_stmt : int;
  array : string;
  kind : kind;
  dirvec : Dirvec.t;
  level : int option;
  distances : (Index.t * Outcome.dist) list;
}

let kind_name = function
  | Flow -> "flow"
  | Anti -> "anti"
  | Output -> "output"
  | Input -> "input"

let is_carried_at t k = t.level = Some k

let pp ppf t =
  Format.fprintf ppf "S%d -%s-> S%d %s %a" t.src_stmt (kind_name t.kind)
    t.snk_stmt t.array Dirvec.pp t.dirvec;
  (match t.level with
  | Some k -> Format.fprintf ppf " carried level %d" k
  | None -> Format.fprintf ppf " loop-independent");
  List.iter
    (fun (i, d) ->
      Format.fprintf ppf " d_%a=%a" Index.pp i Outcome.pp_dist d)
    t.distances

let compare = Stdlib.compare
