(** Results of dependence tests.

    A test either proves independence or describes the possible dependences
    index-by-index: a set of legal directions plus distance information
    when it is exact. Indices of the loop nest that a partition does not
    mention are left unconstrained by that partition ('*'). *)

open Dt_ir

type dist =
  | Const of int  (** exact constant dependence distance *)
  | Sym of Affine.t  (** exact symbolic distance (symbol-only affine) *)
  | Unknown

type index_dep = { index : Index.t; dirs : Direction.set; dist : dist }

type t = Independent | Dependent of index_dep list

val dependent_star : Index.t list -> t
(** Fully unconstrained dependence on the given indices. *)

val dep1 : Index.t -> Direction.set -> dist -> t
(** Dependence info for a single index. *)

val and_outcomes : t -> t -> t
(** Conjunction: independence wins; otherwise per-index intersection of
    directions (indices are expected to be disjoint or agree). *)

val dist_of_affine : Affine.t -> dist
(** [Const] when the affine is constant, [Sym] otherwise. *)

val dirs_of_dist : Assume.t -> dist -> Direction.set
(** Direction set implied by a distance (using the sign oracle for
    symbolic distances). *)

val pp_dist : Format.formatter -> dist -> unit
val pp : Format.formatter -> t -> unit
val equal_dist : dist -> dist -> bool
