open Dt_support
module Ops = Dt_guard.Ops

let inject_solve = Dt_guard.Inject.register "dio.solve"

type family = { g : int; x0 : int; y0 : int; dx : int; dy : int }

let solve ~a ~b ~c =
  Dt_guard.Inject.hit inject_solve;
  if a = 0 && b = 0 then
    if c = 0 then invalid_arg "Dio.solve: degenerate 0 = 0 equation"
    else None
  else
    let g, u, v = Int_ops.egcd a b in
    if not (Int_ops.divides g c) then None
    else
      let k = c / g in
      (* a*(u*k) + b*(v*k) = c; family moves along the kernel (b/g, -a/g) *)
      Some { g; x0 = Ops.mul u k; y0 = Ops.mul v k; dx = b / g; dy = -(a / g) }

(* t values keeping x0 + d*t within [lo, hi] *)
let t_for ~x0 ~d (r : Interval.t) =
  if d = 0 then
    if Interval.contains r x0 then Interval.full else Interval.empty
  else
    let bound_t (b : Interval.bound) ~is_lo =
      (* constraint: x0 + d t >= lo  (is_lo) or <= hi *)
      match b with
      | Interval.Neg_inf | Interval.Pos_inf -> None
      | Interval.Fin v ->
          let rhs = Ops.sub v x0 in
          (* d t >= rhs (is_lo) / d t <= rhs *)
          let lower_bound = (is_lo && d > 0) || ((not is_lo) && d < 0) in
          if lower_bound then Some (`Lo (Int_ops.ceil_div rhs d))
          else Some (`Hi (Int_ops.floor_div rhs d))
    in
    let apply acc = function
      | None -> acc
      | Some (`Lo t) ->
          Interval.inter acc (Interval.make (Interval.Fin t) Interval.Pos_inf)
      | Some (`Hi t) ->
          Interval.inter acc (Interval.make Interval.Neg_inf (Interval.Fin t))
    in
    Interval.full
    |> fun acc ->
    apply acc (bound_t (Interval.lo r) ~is_lo:true) |> fun acc ->
    apply acc (bound_t (Interval.hi r) ~is_lo:false)

let t_range fam ~x_range ~y_range =
  Interval.inter
    (t_for ~x0:fam.x0 ~d:fam.dx x_range)
    (t_for ~x0:fam.y0 ~d:fam.dy y_range)

let feasible ~a ~b ~c ~x_range ~y_range =
  match solve ~a ~b ~c with
  | None -> false
  | Some fam -> not (Interval.is_empty (t_range fam ~x_range ~y_range))

let direction_sets fam ~t_range:tr =
  if Interval.is_empty tr then Direction.empty_set
  else
    (* y - x = (y0 - x0) + (dy - dx) t *)
    let c0 = Ops.sub fam.y0 fam.x0 and d = Ops.sub fam.dy fam.dx in
    if d = 0 then Direction.single (Direction.of_distance c0)
    else
      (* signs taken by c0 + d*t over integer t in tr *)
      let sign_possible target =
        (* is there t in tr with sign (c0 + d t) = target? *)
        let cond =
          match target with
          | 0 ->
              if Int_ops.divides d (Ops.neg c0) then
                let t = Ops.neg c0 / d in
                Interval.contains tr t
              else false
          | s when s > 0 ->
              (* c0 + d t >= 1 *)
              let sub =
                if d > 0 then
                  Interval.inter tr
                    (Interval.make (Interval.Fin (Int_ops.ceil_div (Ops.sub 1 c0) d)) Interval.Pos_inf)
                else
                  Interval.inter tr
                    (Interval.make Interval.Neg_inf (Interval.Fin (Int_ops.floor_div (Ops.sub 1 c0) d)))
              in
              not (Interval.is_empty sub)
          | _ ->
              let sub =
                if d > 0 then
                  Interval.inter tr
                    (Interval.make Interval.Neg_inf (Interval.Fin (Int_ops.floor_div (Ops.sub (-1) c0) d)))
                else
                  Interval.inter tr
                    (Interval.make (Interval.Fin (Int_ops.ceil_div (Ops.sub (-1) c0) d)) Interval.Pos_inf)
              in
              not (Interval.is_empty sub)
        in
        cond
      in
      Direction.
        {
          lt = sign_possible 1;
          (* y - x > 0 : alpha < beta *)
          eq = sign_possible 0;
          gt = sign_possible (-1);
        }

let value_at fam t =
  ( Ops.add fam.x0 (Ops.mul fam.dx t),
    Ops.add fam.y0 (Ops.mul fam.dy t) )

let unique fam ~t_range:tr =
  match Interval.finite tr with
  | Some (a, b) when a = b -> Some (value_at fam a)
  | _ ->
      if (fam.dx = 0 && fam.dy = 0) && not (Interval.is_empty tr) then
        Some (fam.x0, fam.y0)
      else None
