(** The GCD test for MIV subscripts (paper §4.4).

    The dependence equation [sum a_k*alpha_k - sum b_k*beta_k = c] has
    integer solutions only when gcd of the coefficients divides [c]. Under
    a direction-vector assignment, indices constrained to '=' contribute
    the single merged coefficient [a_k - b_k]. With a symbolic constant
    part [c], independence still follows when the gcd of coefficient gcd
    and all symbolic coefficients fails to divide the integer part — the
    divisibility then fails for every value of the symbolics. *)

open Dt_ir

val test : ?eq_indices:Index.Set.t -> Spair.t -> [ `Independent | `Maybe ]

val coeff_gcd : ?eq_indices:Index.Set.t -> Spair.t -> int
(** The gcd of index coefficients under the merge. *)
