(** The Delta test's constraint lattice (paper §5.2).

    SIV tests on the subscripts of a coupled group yield constraints on the
    (source, sink) iteration pair of each index:

    - [Dist d]      : beta = alpha + d          (strong SIV)
    - [Sym_dist e]  : beta = alpha + e, e symbolic (strong SIV, §4.5)
    - [Line (a,b,c)]: a*alpha + b*beta = c      (weak / exact SIV)
    - [Point (x,y)] : alpha = x and beta = y
    - [Any]         : no information yet
    - [Empty]       : contradiction — no dependence

    Intersection is exact on constant constraints (a 2x2 rational solve for
    line pairs, with integrality enforced); on symbolic constraints it is
    exact when the sign oracle can decide the relevant differences and
    conservatively keeps one operand otherwise. *)

open Dt_ir

type t =
  | Any
  | Dist of int
  | Sym_dist of Affine.t  (** symbol-only affine *)
  | Line of { a : int; b : int; c : Affine.t }
      (** a*alpha + b*beta = c; (a,b) <> (0,0); c symbol-only affine *)
  | Point of { x : int; y : int }
  | Empty

val dist : int -> t
val sym_dist : Affine.t -> t
(** Collapses to [Dist] when constant. *)

val line : a:int -> b:int -> c:Affine.t -> t
(** Normalizes by the content gcd; detects integer-infeasible lines
    ([gcd(a,b)] not dividing a constant [c]) as [Empty]. *)

val point : x:int -> y:int -> t

val intersect : Assume.t -> t -> t -> t
(** Sound: the result is implied-by-or-equal-to the true intersection
    (never claims [Empty] unless the intersection is truly empty; may be
    coarser than exact only on undecidable symbolic cases). *)

val is_empty : t -> bool

val to_outcome : Assume.t -> Range.t -> Index.t -> t -> Outcome.t
(** Interpret the final constraint of one index as dependence information:
    direction set and distance. Uses the index's range to sharpen
    weak-zero-style lines at the loop's first/last iteration, per §4.2. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
