(** Banerjee's inequalities with the direction-vector hierarchy, combined
    with the directed GCD test (paper §4.4).

    For each candidate direction-vector assignment, the test brackets the
    dependence equation's left side [h = sum a_k*alpha_k - sum b_k*beta_k]
    between its minimum and maximum over the constrained iteration region
    and reports infeasibility when the constant [c] falls outside.

    Implementation note: instead of the classic a+/a- closed forms we
    evaluate [h] at the *vertices* of the per-index regions (segment for
    '=', triangles for '<' and '>', box for '*') — linear objectives attain
    their extremes at vertices, so the bracket is identical, and the vertex
    formulation extends directly to symbolic and triangular bounds: each
    vertex is an affine form compared against [c] by the sign oracle. This
    subsumes the paper's "triangular Banerjee" through the section 4.3
    index ranges. *)

open Dt_ir

val feasible :
  Assume.t ->
  Range.t ->
  Spair.t ->
  dirs:(Index.t * Direction.t option) list ->
  bool
(** Can the subscript's dependence equation hold under the (partial)
    direction assignment? [None] entries are the paper's '*'. Sound:
    [false] proves no solution. Includes the directed GCD test. *)

val region_nonempty :
  Assume.t -> Range.t -> Index.t -> Direction.t option -> bool
(** Whether any (alpha_k, beta_k) satisfies the direction within the
    index's range — '<' and '>' are impossible in single-trip loops.
    [false] is a proof of emptiness. *)

val vectors :
  Assume.t ->
  Range.t ->
  Spair.t list ->
  indices:Index.t list ->
  [ `Independent | `Vectors of Direction.t list list ]
(** The direction-vector hierarchy: refine '*' entries outermost-first,
    keeping assignments under which *every* subscript pair is feasible.
    Returns the concrete legal vectors over [indices] (in the given
    order), or [`Independent] when none survive. *)

val explain :
  [ `Independent | `Vectors of Direction.t list list ] -> string
(** One-line reason for a {!vectors} verdict, for the trace layer. *)
