(** Banerjee's inequalities with the direction-vector hierarchy, combined
    with the directed GCD test (paper §4.4).

    For each candidate direction-vector assignment, the test brackets the
    dependence equation's left side [h = sum a_k*alpha_k - sum b_k*beta_k]
    between its minimum and maximum over the constrained iteration region
    and reports infeasibility when the constant [c] falls outside.

    Implementation note: instead of the classic a+/a- closed forms we
    evaluate [h] at the *vertices* of the per-index regions (segment for
    '=', triangles for '<' and '>', box for '*') — linear objectives attain
    their extremes at vertices, so the bracket is identical, and the vertex
    formulation extends directly to symbolic and triangular bounds: each
    vertex is an affine form compared against [c] by the sign oracle. This
    subsumes the paper's "triangular Banerjee" through the section 4.3
    index ranges.

    Since the compiled-kernel rewrite the hierarchy DFS is *incremental*:
    per pair, each index's vertex set is compiled once per direction into
    flat {!Dt_ir.Linform} vectors, and refining one index swaps its
    contribution in and out of running bound sums instead of recombining
    the whole cross product (DESIGN.md §8). The verdicts are byte-identical
    to the from-scratch evaluator, which is kept as {!Reference}. *)

open Dt_ir

(** Which evaluator runs a query. [Auto] (the default everywhere) picks
    per query from the nest shape via {!select} — unless the legacy
    {!use_reference} hook forces the from-scratch path. The two
    evaluators are byte-identical in verdicts {e and} in budget
    consumption (same hierarchy-node count), so dispatch can never
    change an analysis result — only its wall clock. *)
type dispatch = Auto | Incremental | Reference

val select : depth:int -> symbols:int -> dispatch
(** The [Auto] heuristic, exposed for the bench's calibration section:
    [Incremental] when [depth >= 3], or [depth >= 2] with symbolic
    terms in play; [Reference] otherwise (never [Auto]). [depth] is the
    hierarchy depth (indices refined), [symbols] the distinct symbols
    across the pairs' difference constants and range endpoints. *)

(** A per-worker scratch arena for the compiled evaluator: proof memo
    tables and vertex/bound vectors are rented per pair and returned
    when the query finishes, so a long testing loop stops allocating
    once the arena is warm. Single-domain by design — the engine gives
    each worker its own; never share one across domains. *)
module Scratch : sig
  type t

  val create : unit -> t
end

val feasible :
  ?dispatch:dispatch ->
  ?scratch:Scratch.t ->
  ?metrics:Dt_obs.Metrics.t ->
  ?sink:Dt_obs.Trace.sink ->
  ?budget:Dt_guard.Budget.t ->
  Assume.t ->
  Range.t ->
  Spair.t ->
  dirs:(Index.t * Direction.t option) list ->
  bool
(** Can the subscript's dependence equation hold under the (partial)
    direction assignment? [None] entries are the paper's '*'; indices of
    the pair absent from [dirs] are unconstrained, and the first binding
    of an index wins. Sound: [false] proves no solution. Includes the
    directed GCD test. [metrics] counts the evaluation (a single query
    builds its state from scratch); [sink] receives a note when the
    vertex cross product exceeds {!max_combos} and the test
    conservatively assumes feasibility. [budget] is charged one unit per
    hierarchy-node evaluation and raises {!Dt_guard.Budget.Exhausted}
    when spent — the driver catches it at the pair boundary. *)

val region_nonempty :
  Assume.t -> Range.t -> Index.t -> Direction.t option -> bool
(** Whether any (alpha_k, beta_k) satisfies the direction within the
    index's range — '<' and '>' are impossible in single-trip loops.
    [false] is a proof of emptiness. *)

val vectors :
  ?dispatch:dispatch ->
  ?scratch:Scratch.t ->
  ?metrics:Dt_obs.Metrics.t ->
  ?sink:Dt_obs.Trace.sink ->
  ?spans:Dt_obs.Span.t ->
  ?budget:Dt_guard.Budget.t ->
  Assume.t ->
  Range.t ->
  Spair.t list ->
  indices:Index.t list ->
  [ `Independent | `Vectors of Direction.t list list ]
(** The direction-vector hierarchy: refine '*' entries outermost-first,
    keeping assignments under which *every* subscript pair is feasible.
    Returns the concrete legal vectors over [indices] (in the given
    order), or [`Independent] when none survive.

    [dispatch] selects the evaluator (default [Auto]). On the
    incremental compiled path: one kernel compilation per pair (counted
    in [metrics]), then O(1) contribution swaps per hierarchy node, with
    per-pair buffers rented from [scratch] when given. [sink] receives a
    note per combo-cap fallback; [spans] brackets the whole hierarchy
    walk as one {!Dt_obs.Span.Banerjee} timeline span. *)

val explain :
  [ `Independent | `Vectors of Direction.t list list ] -> string
(** One-line reason for a {!vectors} verdict, for the trace layer. *)

val max_combos : int
(** Cap on the vertex cross-product size: a node whose (literal, before
    per-slot deduplication) combination count exceeds this is assumed
    feasible — sound, observable via {!Dt_obs.Metrics.banerjee_caps} and
    a trace note, no longer silent. *)

val use_reference : bool ref
(** When set, {!feasible} and {!vectors} route to {!Reference}. Test and
    bench hook for byte-identity comparison; defaults to [false]. *)

(** The pre-kernel, from-scratch evaluator: recombines every index's
    vertex contributions at each hierarchy node with persistent-map
    {!Affine} arithmetic. The semantics oracle the compiled evaluator is
    tested against, and the baseline the bench compares allocation and
    ns/node figures with. *)
module Reference : sig
  val feasible :
    ?metrics:Dt_obs.Metrics.t ->
    ?budget:Dt_guard.Budget.t ->
    Assume.t ->
    Range.t ->
    Spair.t ->
    dirs:(Index.t * Direction.t option) list ->
    bool
  (** As {!val:Banerjee.feasible}, evaluated from scratch (every
      evaluation counts as a scratch node in [metrics]). *)

  val vectors :
    ?metrics:Dt_obs.Metrics.t ->
    ?budget:Dt_guard.Budget.t ->
    Assume.t ->
    Range.t ->
    Spair.t list ->
    indices:Index.t list ->
    [ `Independent | `Vectors of Direction.t list list ]
  (** As {!val:Banerjee.vectors}, on the from-scratch evaluator. *)
end
