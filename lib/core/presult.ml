open Dt_ir

type t =
  | Independent
  | Indexwise of Outcome.index_dep list
  | Vectors of Index.t list * Direction.t list list
  | Degraded of Dt_guard.Degrade.reason

let of_outcome = function
  | Outcome.Independent -> Independent
  | Outcome.Dependent deps -> Indexwise deps

let pos_of loop_indices i =
  let rec go k = function
    | [] -> None
    | j :: rest -> if Index.equal i j then Some k else go (k + 1) rest
  in
  go 0 loop_indices

let to_dirvecs ~loop_indices t =
  let n = List.length loop_indices in
  match t with
  | Independent -> []
  | Degraded _ -> [ Dirvec.full n ]
  | Indexwise deps ->
      let v = Dirvec.full n in
      let v =
        List.fold_left
          (fun v (d : Outcome.index_dep) ->
            match pos_of loop_indices d.index with
            | Some k ->
                let v' = Array.copy v in
                v'.(k) <- Direction.inter v'.(k) d.dirs;
                v'
            | None -> v)
          v deps
      in
      if Array.exists Direction.is_empty v then [] else [ v ]
  | Vectors (indices, vecs) ->
      List.filter_map
        (fun vec ->
          let v = Dirvec.full n in
          let ok = ref true in
          List.iteri
            (fun j d ->
              match pos_of loop_indices (List.nth indices j) with
              | Some k ->
                  let s = Direction.inter v.(k) (Direction.single d) in
                  if Direction.is_empty s then ok := false else v.(k) <- s
              | None -> ())
            vec;
          if !ok then Some v else None)
        vecs

let distances = function
  | Independent | Vectors _ | Degraded _ -> []
  | Indexwise deps ->
      List.filter_map
        (fun (d : Outcome.index_dep) ->
          match d.dist with
          | Outcome.Unknown -> None
          | dist -> Some (d.index, dist))
        deps

let is_independent = function
  | Independent -> true
  | Degraded _ -> false
  | Indexwise deps ->
      List.exists (fun (d : Outcome.index_dep) -> Direction.is_empty d.dirs) deps
  | Vectors (_, vecs) -> vecs = []

let pp ppf = function
  | Independent -> Format.pp_print_string ppf "independent"
  | Degraded r ->
      Format.fprintf ppf "degraded (%a): all directions assumed"
        Dt_guard.Degrade.pp r
  | Indexwise deps -> Outcome.pp ppf (Outcome.Dependent deps)
  | Vectors (indices, vecs) ->
      Format.fprintf ppf "vectors over (%a): "
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Index.pp)
        indices;
      List.iter (fun v -> Dirvec.pp_concrete ppf v) vecs
