(** Instrumentation counters for the empirical study (paper §6).

    The driver and the Delta test record how many times each dependence
    test was applied and how often it proved independence — the exact
    measurements PFC was instrumented for in the paper. *)

type kind = Dt_obs.Test_kind.t =
  | Ziv_test
  | Strong_siv
  | Weak_zero_siv
  | Weak_crossing_siv
  | Exact_siv
  | Rdiv_test
  | Gcd_miv
  | Banerjee_miv
  | Delta_test
  | Symbolic_ziv  (** ZIV decided only via symbolic reasoning *)
(** Shared with the observability layer: [kind] is an equation over
    {!Dt_obs.Test_kind.t}, so counters, metrics, and trace events agree on
    the enumeration. *)

val all_kinds : kind list
val kind_name : kind -> string

val kind_id : kind -> int
(** Dense index in [0, length all_kinds): a direct pattern match, O(1). *)

type t

val create : unit -> t
val record : t -> kind -> indep:bool -> unit
val applied : t -> kind -> int
val proved_indep : t -> kind -> int
val merge_into : t -> t -> unit
(** [merge_into acc extra] adds [extra]'s counts into [acc]. *)

val merge : t -> t -> t
(** Fresh accumulator holding the sum. Commutative and associative (all
    counts are sums), so the parallel engine may merge its per-domain
    accumulators in any order and still equal the sequential run. *)

val equal : t -> t -> bool
(** Same applied and proved-independent count for every kind. *)

val pp : Format.formatter -> t -> unit
