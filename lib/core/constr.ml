open Dt_ir
open Dt_support
module Ops = Dt_guard.Ops

type t =
  | Any
  | Dist of int
  | Sym_dist of Affine.t
  | Line of { a : int; b : int; c : Affine.t }
  | Point of { x : int; y : int }
  | Empty

let dist d = Dist d

let sym_dist e =
  match Affine.as_const e with Some d -> Dist d | None -> Sym_dist e

let line ~a ~b ~c =
  if a = 0 && b = 0 then
    match Affine.as_const c with
    | Some 0 -> Any
    | Some _ -> Empty
    | None -> Any (* 0 = symbolic: unknown, no constraint representable *)
  else
    let g = Int_ops.gcd a b in
    (* integer solvability: g must divide c *)
    let sym_gcd =
      List.fold_left (fun acc (_, k) -> Int_ops.gcd acc k) g (Affine.sym_terms c)
    in
    if not (Int_ops.divides sym_gcd (Affine.const_part c)) then Empty
    else
      let a, b, c =
        match Affine.div_exact c g with
        | Some c' -> (a / g, b / g, c')
        | None -> (a, b, c)
      in
      (* canonical sign: first nonzero of (a, b) positive *)
      let a, b, c =
        if a < 0 || (a = 0 && b < 0) then (-a, -b, Affine.neg c) else (a, b, c)
      in
      (* recognize distance lines: -alpha + beta = d, i.e. (a,b) = (-1,1)
         after sign normalization a >= 0 ... distance is a = -1 form; our
         canonical form makes a >= 0, so beta - alpha = d appears as
         a = -1 -> flipped to (1,-1,-d): alpha - beta = -d. *)
      if a = 1 && b = -1 then sym_dist (Affine.neg c)
      else Line { a; b; c }

let point ~x ~y = Point { x; y }
let is_empty t = t = Empty

let to_line = function
  | Dist d -> Some (1, -1, Affine.const (-d))
  | Sym_dist e -> Some (1, -1, Affine.neg e)
  | Line { a; b; c } -> Some (a, b, c)
  | _ -> None

(* decide whether a symbol-only affine is zero / nonzero under assumptions *)
let affine_sign assume e = Assume.sign assume e

let point_on_line assume ~x ~y (a, b, c) =
  let residual =
    Affine.add_const (Ops.neg (Ops.add (Ops.mul a x) (Ops.mul b y))) c
  in
  match affine_sign assume residual with
  | `Zero -> `On
  | `Pos | `Neg -> `Off
  | _ -> `Unknown

let intersect assume c1 c2 =
  let sym_dist_inter e1 e2 =
    let d = Affine.sub e1 e2 in
    match affine_sign assume d with
    | `Zero -> sym_dist e1
    | `Pos | `Neg -> Empty
    | _ -> sym_dist e1 (* conservative: keep one operand *)
  in
  let with_point ~x ~y other =
    match other with
    | Any -> Point { x; y }
    | Empty -> Empty
    | Point { x = x2; y = y2 } ->
        if x = x2 && y = y2 then Point { x; y } else Empty
    | Dist d -> if Ops.sub y x = d then Point { x; y } else Empty
    | Sym_dist e -> (
        match affine_sign assume (Affine.add_const (Ops.neg (Ops.sub y x)) e) with
        | `Zero -> Point { x; y }
        | `Pos | `Neg -> Empty
        | _ -> Point { x; y })
    | Line { a; b; c } -> (
        match point_on_line assume ~x ~y (a, b, c) with
        | `On -> Point { x; y }
        | `Off -> Empty
        | `Unknown -> Point { x; y })
  in
  let line_line (a1, b1, e1) (a2, b2, e2) keep1 keep2 =
    let det = Ops.sub (Ops.mul a1 b2) (Ops.mul a2 b1) in
    if det <> 0 then
      let nx = Affine.sub (Affine.scale b2 e1) (Affine.scale b1 e2) in
      let ny = Affine.sub (Affine.scale a1 e2) (Affine.scale a2 e1) in
      match (Affine.as_const nx, Affine.as_const ny) with
      | Some nx, Some ny ->
          if nx mod det = 0 && ny mod det = 0 then
            Point { x = nx / det; y = ny / det }
          else Empty
      | _ -> (
          (* symbolic unique solution; keep the more useful operand *)
          match (keep1, keep2) with
          | (Dist _ | Sym_dist _ | Point _), _ -> keep1
          | _, (Dist _ | Sym_dist _ | Point _) -> keep2
          | _ -> keep1)
    else
      (* parallel: consistent iff a1*e2 - a2*e1 = 0 (or b-version) *)
      let resid =
        if a1 <> 0 || a2 <> 0 then
          Affine.sub (Affine.scale a1 e2) (Affine.scale a2 e1)
        else Affine.sub (Affine.scale b1 e2) (Affine.scale b2 e1)
      in
      match affine_sign assume resid with
      | `Zero -> keep1
      | `Pos | `Neg -> Empty
      | _ -> keep1
  in
  match (c1, c2) with
  | Any, x | x, Any -> x
  | Empty, _ | _, Empty -> Empty
  | Point { x; y }, other | other, Point { x; y } -> with_point ~x ~y other
  | Dist d1, Dist d2 -> if d1 = d2 then Dist d1 else Empty
  | (Dist _ | Sym_dist _), (Dist _ | Sym_dist _) ->
      let as_aff = function
        | Dist d -> Affine.const d
        | Sym_dist e -> e
        | _ -> assert false
      in
      sym_dist_inter (as_aff c1) (as_aff c2)
  | _ -> (
      match (to_line c1, to_line c2) with
      | Some l1, Some l2 -> line_line l1 l2 c1 c2
      | _ -> assert false)

(* |d| <= U - L, the strong SIV bound check; Independent when refuted. *)
let dist_in_bounds assume range i d =
  match Range.trip_minus_one range i with
  | None -> `Maybe
  | Some ul ->
      let far e = Assume.prove_pos assume (Affine.sub e ul) in
      if far d || far (Affine.neg d) then `No else `Maybe

let to_outcome assume range i t =
  match t with
  | Empty -> Outcome.Independent
  | Any -> Outcome.dependent_star [ i ]
  | Dist d -> (
      match dist_in_bounds assume range i (Affine.const d) with
      | `No -> Outcome.Independent
      | `Maybe ->
          Outcome.dep1 i (Direction.single (Direction.of_distance d)) (Const d))
  | Sym_dist e -> (
      match dist_in_bounds assume range i e with
      | `No -> Outcome.Independent
      | `Maybe ->
          let dist = Outcome.dist_of_affine e in
          Outcome.dep1 i (Outcome.dirs_of_dist assume dist) dist)
  | Point { x; y } -> (
      match
        ( Range.contains_int range assume i x,
          Range.contains_int range assume i y )
      with
      | Some false, _ | _, Some false -> Outcome.Independent
      | _ ->
          let d = Ops.sub y x in
          Outcome.dep1 i (Direction.single (Direction.of_distance d)) (Const d))
  | Line { a; b; c } ->
      let r = Range.find range i in
      if a <> 0 && b = 0 then
        (* alpha = c / a fixed; beta free in range *)
        match Affine.div_exact c a with
        | None when Affine.is_const c -> Outcome.Independent
        | None -> Outcome.dependent_star [ i ]
        | Some p -> (
            match Range.contains_affine range assume i p with
            | Some false -> Outcome.Independent
            | _ ->
                let dirs = Direction.full_set in
                let dirs =
                  match r.Range.lo with
                  | Some lo when Affine.equal p lo ->
                      Direction.inter dirs (Direction.of_list [ Lt; Eq ])
                  | _ -> dirs
                in
                let dirs =
                  match r.Range.hi with
                  | Some hi when Affine.equal p hi ->
                      Direction.inter dirs (Direction.of_list [ Gt; Eq ])
                  | _ -> dirs
                in
                Outcome.dep1 i dirs Unknown)
      else if a = 0 && b <> 0 then
        match Affine.div_exact c b with
        | None when Affine.is_const c -> Outcome.Independent
        | None -> Outcome.dependent_star [ i ]
        | Some p -> (
            match Range.contains_affine range assume i p with
            | Some false -> Outcome.Independent
            | _ ->
                let dirs = Direction.full_set in
                let dirs =
                  match r.Range.lo with
                  | Some lo when Affine.equal p lo ->
                      Direction.inter dirs (Direction.of_list [ Gt; Eq ])
                  | _ -> dirs
                in
                let dirs =
                  match r.Range.hi with
                  | Some hi when Affine.equal p hi ->
                      Direction.inter dirs (Direction.of_list [ Lt; Eq ])
                  | _ -> dirs
                in
                Outcome.dep1 i dirs Unknown)
      else
        (* both sides involved: use the Diophantine family over the
           concrete range when available *)
        let conc = Range.concrete range i in
        match (Affine.as_const c, conc) with
        | Some cc, Some (lo, hi) -> (
            match Dio.solve ~a ~b ~c:cc with
            | None -> Outcome.Independent
            | Some fam ->
                let box = Interval.of_ints lo hi in
                let tr = Dio.t_range fam ~x_range:box ~y_range:box in
                if Interval.is_empty tr then Outcome.Independent
                else
                  let dirs = Dio.direction_sets fam ~t_range:tr in
                  if Direction.is_empty dirs then Outcome.Independent
                  else
                    let dist =
                      match Dio.unique fam ~t_range:tr with
                      | Some (x, y) -> Outcome.Const (Ops.sub y x)
                      | None -> Outcome.Unknown
                    in
                    Outcome.dep1 i dirs dist)
        | _ when a = b -> (
            (* weak-crossing with symbolic data: alpha + beta = c/a must
               place the crossing point c/(2a) within [L, U] (paper
               section 4.2). *)
            match Affine.div_exact c a with
            | None when Affine.is_const c -> Outcome.Independent
            | None -> Outcome.dependent_star [ i ]
            | Some s -> (
                (* crossing point s/2 in range <=> 2*lo <= s <= 2*hi *)
                let r = Range.find range i in
                let out_of_range =
                  (match r.Range.lo with
                  | Some lo ->
                      Assume.prove_pos assume
                        (Affine.sub (Affine.scale 2 lo) s)
                  | None -> false)
                  ||
                  match r.Range.hi with
                  | Some hi ->
                      Assume.prove_pos assume
                        (Affine.sub s (Affine.scale 2 hi))
                  | None -> false
                in
                if out_of_range then Outcome.Independent
                else
                  (* alpha = beta needs s even *)
                  let eq_possible =
                    match Affine.div_exact s 2 with
                    | Some _ -> true
                    | None -> not (Affine.is_const s)
                  in
                  let dirs =
                    if eq_possible then Direction.full_set
                    else Direction.of_list [ Lt; Gt ]
                  in
                  Outcome.dep1 i dirs Unknown))
        | _ -> Outcome.dependent_star [ i ]

let equal t1 t2 =
  match (t1, t2) with
  | Any, Any | Empty, Empty -> true
  | Dist a, Dist b -> a = b
  | Sym_dist a, Sym_dist b -> Affine.equal a b
  | Point a, Point b -> a.x = b.x && a.y = b.y
  | Line a, Line b -> a.a = b.a && a.b = b.b && Affine.equal a.c b.c
  | _ -> false

let pp ppf = function
  | Any -> Format.pp_print_string ppf "T"
  | Empty -> Format.pp_print_string ppf "_|_"
  | Dist d -> Format.fprintf ppf "dist %d" d
  | Sym_dist e -> Format.fprintf ppf "dist %a" Affine.pp e
  | Point { x; y } -> Format.fprintf ppf "point (%d,%d)" x y
  | Line { a; b; c } ->
      Format.fprintf ppf "line %d*a %+d*b = %a" a b Affine.pp c

let to_string t = Format.asprintf "%a" pp t
