open Dt_ir

type result = {
  verdict : [ `Independent | `Dependent of Presult.t list ];
  passes : int;
  leftover_miv : int;
}

exception Proved_independent

(* substitute beta_i = alpha_i + e into the pair: the sink occurrence
   a2*beta_i becomes a2*alpha_i + a2*e; the alpha term moves to the source
   side as a coefficient merge (see DESIGN.md). *)
let apply_dist (p : Spair.t) i e =
  let a1, a2 = Spair.coeffs p i (* compiled-kernel coefficient lookup *) in
  if a2 = 0 then None
  else
    let src = Affine.set_coeff p.src i (a1 - a2) in
    let snk = Affine.add (Affine.drop_index p.snk i) (Affine.scale a2 e) in
    Some (Spair.make src snk)

let apply_point (p : Spair.t) i ~x ~y =
  let a1, a2 = Spair.coeffs p i in
  if a1 = 0 && a2 = 0 then None
  else
    Some
      (Spair.make
         (Affine.subst_index p.src i x)
         (Affine.subst_index p.snk i y))

let apply_constraint (p : Spair.t) i constr =
  match (constr : Constr.t) with
  | Constr.Dist d -> apply_dist p i (Affine.const d)
  | Constr.Sym_dist e -> apply_dist p i e
  | Constr.Point { x; y } ->
      apply_point p i ~x:(Affine.const x) ~y:(Affine.const y)
  | Constr.Line { a = 1; b = 0; c } ->
      if fst (Spair.coeffs p i) = 0 then None
      else Some (Spair.make (Affine.subst_index p.src i c) p.snk)
  | Constr.Line { a = 0; b = 1; c } ->
      if snd (Spair.coeffs p i) = 0 then None
      else Some (Spair.make p.src (Affine.subst_index p.snk i c))
  | _ -> None

(* joint direction vectors for crossed RDIV relations:
   alpha_i = beta_j + c1 and alpha_j = beta_i + c2 imply
   d_i + d_j = -(c1 + c2) for the two dependence distances. *)
let crossed_vectors s =
  let feas (si, sj) =
    match (si, sj) with
    | Direction.Eq, Direction.Eq -> s = 0
    | Direction.Eq, Direction.Lt -> s >= 1
    | Direction.Eq, Direction.Gt -> s <= -1
    | Direction.Lt, Direction.Eq -> s >= 1
    | Direction.Gt, Direction.Eq -> s <= -1
    | Direction.Lt, Direction.Lt -> s >= 2
    | Direction.Gt, Direction.Gt -> s <= -2
    | Direction.Lt, Direction.Gt | Direction.Gt, Direction.Lt -> true
  in
  List.concat_map
    (fun si ->
      List.filter_map
        (fun sj -> if feas (si, sj) then Some [ si; sj ] else None)
        Direction.all)
    Direction.all

(* Symbolic-FM check for one candidate direction vector of a crossed RDIV
   group: variables (alpha_i, alpha_j, beta_i, beta_j); constraints are
   the two relations, the loop bounds of i and j applied to both iteration
   vectors (triangular bounds referencing the partner index included), and
   the candidate's direction constraints. *)
let crossed_rdiv_infeasible assume loops ~i ~j ~c1 ~c2 ~di ~dj =
  let var_a ix =
    if Index.equal ix i then Some 0
    else if Index.equal ix j then Some 1
    else None
  in
  let var_b ix =
    if Index.equal ix i then Some 2
    else if Index.equal ix j then Some 3
    else None
  in
  let cs = ref [] in
  let push c = cs := c :: !cs in
  (* relations: alpha_i - beta_j = c1; alpha_j - beta_i = c2 *)
  List.iter push (Symfm.eq [| 1; 0; 0; -1 |] c1);
  List.iter push (Symfm.eq [| 0; 1; -1; 0 |] c2);
  (* loop bounds, for the alpha and beta instances separately *)
  let bound_of ~var_map v (bound : Affine.t) ~is_lo =
    (* is_lo: bound <= x_v; else x_v <= bound. Index terms of the bound
       must map into our variable set, else skip (conservative). *)
    let ok = ref true in
    let coeffs = Array.make 4 0 in
    List.iter
      (fun (ix, k) ->
        match var_map ix with
        | Some w -> coeffs.(w) <- coeffs.(w) + (if is_lo then k else -k)
        | None -> ok := false)
      (Affine.index_terms bound);
    if !ok then begin
      let sym_part =
        Affine.make ~idx:[] ~sym:(Affine.sym_terms bound)
          ~const:(Affine.const_part bound)
      in
      if is_lo then begin
        (* bound_idx_terms + sym <= x_v :  coeffs - e_v <= -sym *)
        coeffs.(v) <- coeffs.(v) - 1;
        push (Symfm.le coeffs (Affine.neg sym_part))
      end
      else begin
        (* x_v <= bound: e_v - bound_idx_terms <= sym *)
        coeffs.(v) <- coeffs.(v) + 1;
        push (Symfm.le coeffs sym_part)
      end
    end
  in
  List.iter
    (fun (l : Loop.t) ->
      let handle var_map =
        match var_map l.index with
        | Some v ->
            bound_of ~var_map v l.lo ~is_lo:true;
            bound_of ~var_map v l.hi ~is_lo:false
        | None -> ()
      in
      handle var_a;
      handle var_b)
    loops;
  (* direction constraints: alpha vs beta of the same index *)
  let dir_constraints v_a v_b d =
    let e k =
      Array.init 4 (fun w -> if w = v_a then k else if w = v_b then -k else 0)
    in
    match (d : Direction.t) with
    | Direction.Lt -> [ Symfm.le (e 1) (Affine.const (-1)) ]
    | Direction.Gt -> [ Symfm.le (e (-1)) (Affine.const (-1)) ]
    | Direction.Eq -> Symfm.eq (e 1) Affine.zero
  in
  List.iter push (dir_constraints 0 2 di);
  List.iter push (dir_constraints 1 3 dj);
  Symfm.infeasible assume ~nvars:4 !cs

(* Is the relation [x_i = x_j + e] (both variables on the same side)
   impossible within the nest bounds? Sound: [true] requires a bound
   violated for every value after index terms cancel, e.g. the triangular
   bound DO J = I+1, N refutes x_j = x_i + e for e <= 0. *)
let relation_infeasible loops assume ~ivar ~jvar ~e =
  let xi_as_j = Affine.add (Affine.of_index jvar) e in
  let xj_as_i = Affine.sub (Affine.of_index ivar) e in
  List.exists
    (fun (l : Loop.t) ->
      let refuted expr bound ~ge =
        (* requires expr >= bound (ge) or expr <= bound *)
        let d = if ge then Affine.sub expr bound else Affine.sub bound expr in
        Index.Set.is_empty (Affine.indices d) && Assume.prove_neg assume d
      in
      if Index.equal l.index ivar then
        refuted xi_as_j l.lo ~ge:true || refuted xi_as_j l.hi ~ge:false
      else if Index.equal l.index jvar then
        refuted xj_as_i l.lo ~ge:true || refuted xj_as_i l.hi ~ge:false
      else false)
    loops

let test ?counters ?metrics ?sink ?spans ?budget ?dispatch ?scratch ?trace
    ?(loops = []) assume range pairs ~relevant =
  Dt_obs.Span.with_ spans Dt_obs.Span.Delta @@ fun () ->
  let instrumented = metrics <> None || spans <> None in
  let t_start = if instrumented then Dt_obs.Clock.now_ns () else 0L in
  (* [record ~t0] closes the measurement opened by [tick]: one clock
     read feeds both the metrics total and the timeline leaf. [~span:
     false] suppresses the leaf when a dedicated span (Banerjee, the
     whole Delta bracket) already covers the same interval. *)
  let record ?(t0 = 0L) ?(span = true) k ~indep =
    (match counters with Some c -> Counters.record c k ~indep | None -> ());
    if instrumented then begin
      let t1 = Dt_obs.Clock.now_ns () in
      (match metrics with
      | Some m -> Dt_obs.Metrics.record m k ~indep ~ns:(Int64.sub t1 t0)
      | None -> ());
      match spans with
      | Some b when span ->
          Dt_obs.Span.record b (Dt_obs.Span.Test k) ~t0_ns:t0 ~t1_ns:t1
      | _ -> ()
    end
  in
  let tick () = if instrumented then Dt_obs.Clock.now_ns () else 0L in
  (* [tracing] is checked before any trace string is built, so a run
     without observers allocates nothing for tracing *)
  let tracing = trace <> None || sink <> None in
  let legacy s = match trace with Some f -> f s | None -> () in
  let emit ev =
    match sink with Some sk -> Dt_obs.Trace.emit sk ev | None -> ()
  in
  let note s =
    legacy s;
    emit (Dt_obs.Trace.Note s)
  in
  let emit_test kind p verdict reason =
    match sink with
    | Some sk ->
        Dt_obs.Trace.emit sk
          (Dt_obs.Trace.Test
             { kind; subscript = Spair.to_string p; verdict; reason })
    | None -> ()
  in
  let pairs = Array.of_list pairs in
  let n = Array.length pairs in
  let pending = Array.make n true in
  let constraints = ref Index.Map.empty in
  let relations = ref [] in
  let extra_results = ref [] in
  let passes = ref 0 in
  let get_constr i =
    Option.value (Index.Map.find_opt i !constraints) ~default:Constr.Any
  in
  let changed = ref false in
  let add_constr i c =
    let old = get_constr i in
    let c' = Constr.intersect assume old c in
    if tracing then begin
      legacy
        (Format.asprintf "  constraint on %a: %a /\\ %a = %a" Index.pp i
           Constr.pp old Constr.pp c Constr.pp c');
      emit
        (Dt_obs.Trace.Constraint
           {
             index = Format.asprintf "%a" Index.pp i;
             constr = Constr.to_string c';
             note = Format.asprintf "%a /\\ %a" Constr.pp old Constr.pp c;
           })
    end;
    if Constr.is_empty c' then begin
      if tracing then note "  -> contradiction: independent";
      raise Proved_independent
    end;
    if not (Constr.equal old c') then begin
      constraints := Index.Map.add i c' !constraints;
      changed := true
    end
  in
  let test_one k =
    let p = pairs.(k) in
    match Classify.classify ~relevant p with
    | Classify.Ziv -> (
        let t0 = tick () in
        let o = Ziv.test assume p in
        let indep = o = Outcome.Independent in
        record ~t0 Counters.Ziv_test ~indep;
        if tracing then begin
          legacy (Format.asprintf "  ZIV test %a: %a" Spair.pp p Outcome.pp o);
          let d = Affine.sub p.Spair.snk p.Spair.src in
          emit_test Counters.Ziv_test p
            (if indep then Dt_obs.Trace.Independent
             else Dt_obs.Trace.Inconclusive)
            (if indep then
               Format.asprintf "subscript difference %a is never zero"
                 Affine.pp d
             else
               Format.asprintf "subscript difference %a may vanish" Affine.pp d)
        end;
        pending.(k) <- false;
        match o with
        | Outcome.Independent -> raise Proved_independent
        | _ -> ())
    | Classify.Siv { index; kind } -> (
        let t0 = tick () in
        let r = Siv.test assume range p index in
        let ckind =
          match kind with
          | Classify.Strong -> Counters.Strong_siv
          | Classify.Weak_zero -> Counters.Weak_zero_siv
          | Classify.Weak_crossing -> Counters.Weak_crossing_siv
          | Classify.General -> Counters.Exact_siv
        in
        let indep = r.Siv.outcome = Outcome.Independent in
        record ~t0 ckind ~indep;
        if tracing then begin
          legacy
            (Format.asprintf "  %s test %a: %a"
               (Classify.to_string (Classify.Siv { index; kind }))
               Spair.pp p Outcome.pp r.Siv.outcome);
          emit_test ckind p
            (if indep then Dt_obs.Trace.Independent else Dt_obs.Trace.Dependent)
            (Siv.explain range p index r)
        end;
        pending.(k) <- false;
        match r.Siv.outcome with
        | Outcome.Independent -> raise Proved_independent
        | _ -> add_constr index r.Siv.constr)
    | Classify.Rdiv { src_index; snk_index } -> (
        let t0 = tick () in
        let r = Rdiv.test assume range p ~src:src_index ~snk:snk_index in
        let indep = r.Rdiv.outcome = Outcome.Independent in
        record ~t0 Counters.Rdiv_test ~indep;
        if tracing then begin
          legacy
            (Format.asprintf "  RDIV test %a: %a" Spair.pp p Outcome.pp
               r.Rdiv.outcome);
          emit_test Counters.Rdiv_test p
            (if indep then Dt_obs.Trace.Independent else Dt_obs.Trace.Dependent)
            (Rdiv.explain r)
        end;
        pending.(k) <- false;
        match r.Rdiv.outcome with
        | Outcome.Independent -> raise Proved_independent
        | _ -> (
            match r.Rdiv.relation with
            | Some rel ->
                relations := rel :: !relations;
                changed := true
            | None -> ()))
    | Classify.Miv _ -> () (* handled by propagation / fallback *)
  in
  let propagate () =
    for k = 0 to n - 1 do
      if pending.(k) then begin
        let p = ref pairs.(k) in
        let occurring = Index.Set.inter (Spair.indices !p) relevant in
        Index.Set.iter
          (fun i ->
            match apply_constraint !p i (get_constr i) with
            | Some p' ->
                if tracing then
                  note
                    (Format.asprintf "  propagate %a into %a -> %a" Constr.pp
                       (get_constr i) Spair.pp !p Spair.pp p');
                p := p';
                changed := true
            | None -> ())
          occurring;
        pairs.(k) <- !p
      end
    done
  in
  (* Group-level relational refinement: encode every RDIV relation, every
     per-index constraint, and the loop bounds of the group's indices into
     one symbolic-FM system over (alpha_k, beta_k) variables. Proves
     independence for chained relations under triangular bounds (e.g.
     A(I,K) vs A(K,J) in dgefa-style elimination) and sharpens per-index
     direction sets. *)
  let relational_refine () =
    if !relations <> [] then begin
      let idxs =
        let s =
          List.fold_left
            (fun s (r : Rdiv.relation) ->
              Index.Set.add r.Rdiv.src_index
                (Index.Set.add r.Rdiv.snk_index s))
            Index.Set.empty !relations
        in
        Index.Map.fold (fun i _ s -> Index.Set.add i s) !constraints s
        |> Index.Set.elements
        |> List.sort (fun a b -> compare (Index.depth a) (Index.depth b))
      in
      let n = List.length idxs in
      if n >= 1 && n <= 4 then begin
        let nvars = 2 * n in
        let pos ix =
          let rec go k = function
            | [] -> None
            | x :: rest -> if Index.equal x ix then Some k else go (k + 1) rest
          in
          go 0 idxs
        in
        let var_a ix = Option.map (fun k -> 2 * k) (pos ix) in
        let var_b ix = Option.map (fun k -> (2 * k) + 1) (pos ix) in
        let base = ref [] in
        let push c = base := c :: !base in
        let unit v k = Array.init nvars (fun w -> if w = v then k else 0) in
        let pair v1 k1 v2 k2 =
          Array.init nvars (fun w ->
              if w = v1 then k1 else if w = v2 then k2 else 0)
        in
        (* relations *)
        List.iter
          (fun (r : Rdiv.relation) ->
            match (var_a r.Rdiv.src_index, var_b r.Rdiv.snk_index) with
            | Some va, Some vb ->
                List.iter push (Symfm.eq (pair va r.Rdiv.a vb r.Rdiv.b) r.Rdiv.c)
            | _ -> ())
          !relations;
        (* per-index constraints *)
        List.iter
          (fun ix ->
            match (var_a ix, var_b ix) with
            | Some va, Some vb -> (
                match get_constr ix with
                | Constr.Dist d ->
                    List.iter push
                      (Symfm.eq (pair vb 1 va (-1)) (Affine.const d))
                | Constr.Sym_dist e ->
                    List.iter push (Symfm.eq (pair vb 1 va (-1)) e)
                | Constr.Point { x; y } ->
                    List.iter push (Symfm.eq (unit va 1) (Affine.const x));
                    List.iter push (Symfm.eq (unit vb 1) (Affine.const y))
                | Constr.Line { a; b; c } ->
                    List.iter push (Symfm.eq (pair va a vb b) c)
                | Constr.Any | Constr.Empty -> ())
            | _ -> ())
          idxs;
        (* loop bounds for both instances *)
        let bound_of ~var_map v (bound : Affine.t) ~is_lo =
          let ok = ref true in
          let coeffs = Array.make nvars 0 in
          List.iter
            (fun (ix, k) ->
              match var_map ix with
              | Some w -> coeffs.(w) <- coeffs.(w) + (if is_lo then k else -k)
              | None -> ok := false)
            (Affine.index_terms bound);
          if !ok then begin
            let sym_part =
              Affine.make ~idx:[] ~sym:(Affine.sym_terms bound)
                ~const:(Affine.const_part bound)
            in
            if is_lo then begin
              coeffs.(v) <- coeffs.(v) - 1;
              push (Symfm.le coeffs (Affine.neg sym_part))
            end
            else begin
              coeffs.(v) <- coeffs.(v) + 1;
              push (Symfm.le coeffs sym_part)
            end
          end
        in
        List.iter
          (fun (l : Loop.t) ->
            let handle var_map =
              match var_map l.Loop.index with
              | Some v ->
                  bound_of ~var_map v l.Loop.lo ~is_lo:true;
                  bound_of ~var_map v l.Loop.hi ~is_lo:false
              | None -> ()
            in
            handle var_a;
            handle var_b)
          loops;
        if Symfm.infeasible assume ~nvars !base then begin
          if tracing then note "  relational system infeasible: independent";
          raise Proved_independent
        end;
        (* per-index direction refinement *)
        List.iter
          (fun ix ->
            match (var_a ix, var_b ix) with
            | Some va, Some vb ->
                let dir_ok (d : Direction.t) =
                  let extra =
                    match d with
                    | Direction.Lt ->
                        [ Symfm.le (pair va 1 vb (-1)) (Affine.const (-1)) ]
                    | Direction.Gt ->
                        [ Symfm.le (pair vb 1 va (-1)) (Affine.const (-1)) ]
                    | Direction.Eq -> Symfm.eq (pair va 1 vb (-1)) Affine.zero
                  in
                  not (Symfm.infeasible assume ~nvars (extra @ !base))
                in
                let dirs = Direction.of_list (List.filter dir_ok Direction.all) in
                if Direction.is_empty dirs then begin
                  if tracing then
                    note "  relational direction refinement: independent";
                  raise Proved_independent
                end
                else if not (Direction.is_full dirs) then
                  extra_results :=
                    Presult.Indexwise
                      [ { Outcome.index = ix; dirs; dist = Outcome.Unknown } ]
                    :: !extra_results
            | _ -> ())
          idxs
      end
    end
  in
  let refine_rdiv () =
    (* pairwise joint reasoning over normalized (alpha = beta + c) relations *)
    let norm (r : Rdiv.relation) =
      if r.Rdiv.a = 1 && r.Rdiv.b = -1 then Some (r.Rdiv.src_index, r.Rdiv.snk_index, r.Rdiv.c)
      else if r.Rdiv.a = -1 && r.Rdiv.b = 1 then
        Some (r.Rdiv.src_index, r.Rdiv.snk_index, Affine.neg r.Rdiv.c)
      else None
    in
    let normed = List.filter_map norm !relations in
    (* interaction of relations with per-index constraints (§5.3.2):
       alpha_i = beta_j + c combines with
       - Dist d on i (beta_i = alpha_i + d): beta_i = beta_j + (c + d),
         a sink-side relation checkable against triangular bounds;
       - Dist d on j (beta_j = alpha_j + d): alpha_i = alpha_j + (c + d),
         the source-side analogue;
       - Point / fixed-iteration constraints: the relation pins the other
         index. *)
    List.iter
      (fun (i, j, c) ->
        (match get_constr i with
        | Constr.Dist d ->
            let e = Affine.add_const d c in
            if relation_infeasible loops assume ~ivar:i ~jvar:j ~e then begin
              if tracing then
                note
                  (Format.asprintf
                     "  RDIV relation beta_%a = beta_%a + %a violates bounds: \
                      independent"
                     Index.pp i Index.pp j Affine.pp e);
              raise Proved_independent
            end
        | Constr.Sym_dist ds ->
            let e = Affine.add ds c in
            if relation_infeasible loops assume ~ivar:i ~jvar:j ~e then begin
              if tracing then
                note "  symbolic RDIV relation violates bounds: independent";
              raise Proved_independent
            end
        | Constr.Point { x; _ } ->
            (* alpha_i = x: beta_j = x - c *)
            add_constr j
              (Constr.line ~a:0 ~b:1 ~c:(Affine.add_const x (Affine.neg c)))
        | Constr.Line { a = 1; b = 0; c = v } ->
            add_constr j (Constr.line ~a:0 ~b:1 ~c:(Affine.sub v c))
        | _ -> ());
        match get_constr j with
        | Constr.Dist d ->
            let e = Affine.add_const d c in
            if relation_infeasible loops assume ~ivar:i ~jvar:j ~e then begin
              if tracing then
                note
                  (Format.asprintf
                     "  RDIV relation alpha_%a = alpha_%a + %a violates \
                      bounds: independent"
                     Index.pp i Index.pp j Affine.pp e);
              raise Proved_independent
            end
        | Constr.Sym_dist ds ->
            let e = Affine.add ds c in
            if relation_infeasible loops assume ~ivar:i ~jvar:j ~e then
              raise Proved_independent
        | Constr.Point { y; _ } ->
            (* beta_j = y: alpha_i = y + c *)
            add_constr i (Constr.line ~a:1 ~b:0 ~c:(Affine.add_const y c))
        | Constr.Line { a = 0; b = 1; c = v } ->
            add_constr i (Constr.line ~a:1 ~b:0 ~c:(Affine.add v c))
        | _ -> ())
      normed;
    List.iteri
      (fun idx1 (i1, j1, c1) ->
        List.iteri
          (fun idx2 (i2, j2, c2) ->
            if idx2 > idx1 then
              if Index.equal i1 j2 && Index.equal j1 i2 && not (Index.equal i1 j1)
              then begin
                (* crossed: alpha_{i1} = beta_{j1} + c1, alpha_{j1} = beta_{i1} + c2.
                   Two filters on the joint direction vectors over (i1, j1):
                   - arithmetic: d_i + d_j = -(c1 + c2) constrains the sign
                     combination (when the sum is constant);
                   - relational: a 4-variable symbolic Fourier-Motzkin
                     system built from the relations, both loops' bounds
                     (triangular bounds included), and the candidate's
                     direction constraints. *)
                let arith =
                  match Affine.as_const (Affine.add c1 c2) with
                  | Some sum ->
                      let s = -sum in
                      if tracing then
                        note
                          (Format.asprintf
                             "  RDIV coupling on (%a,%a): d_%a + d_%a = %d"
                             Index.pp i1 Index.pp j1 Index.pp i1 Index.pp j1 s);
                      crossed_vectors s
                  | None ->
                      List.concat_map
                        (fun a -> List.map (fun b -> [ a; b ]) Direction.all)
                        Direction.all
                in
                let vecs =
                  List.filter
                    (fun vec ->
                      match vec with
                      | [ di; dj ] ->
                          not
                            (crossed_rdiv_infeasible assume loops ~i:i1 ~j:j1
                               ~c1 ~c2 ~di ~dj)
                      | _ -> assert false)
                    arith
                in
                if tracing && List.length vecs < List.length arith then
                  note
                    (Format.asprintf
                       "  relational RDIV filter kept %d of %d vectors"
                       (List.length vecs) (List.length arith));
                if vecs = [] then raise Proved_independent
                else
                  extra_results :=
                    Presult.Vectors ([ i1; j1 ], vecs) :: !extra_results
              end
              else if Index.equal i1 i2 && Index.equal j1 j2 then begin
                (* same orientation: alpha_i = beta_j + c1 = beta_j + c2 *)
                match Assume.sign assume (Affine.sub c1 c2) with
                | `Pos | `Neg ->
                    if tracing then
                      note "  inconsistent RDIV relations: independent";
                    raise Proved_independent
                | _ -> ()
              end)
          normed)
      normed
  in
  let run () =
    (* initial pass over non-MIV subscripts, then propagate/retest cycles *)
    let continue = ref true in
    while !continue && !passes < (3 * n) + 3 do
      incr passes;
      emit (Dt_obs.Trace.Pass !passes);
      Dt_obs.Span.with_ spans Dt_obs.Span.Delta_pass (fun () ->
          changed := false;
          for k = 0 to n - 1 do
            if pending.(k) then test_one k
          done;
          propagate ());
      continue := !changed
    done;
    refine_rdiv ();
    relational_refine ();
    (* final interpretation *)
    let indexwise =
      Index.Map.fold
        (fun i c acc ->
          match Constr.to_outcome assume range i c with
          | Outcome.Independent ->
              if tracing then
                note
                  (Format.asprintf
                     "  final constraint on %a out of bounds: independent"
                     Index.pp i);
              raise Proved_independent
          | Outcome.Dependent deps -> deps @ acc)
        !constraints []
    in
    let leftovers = ref 0 in
    let miv_results = ref [] in
    for k = 0 to n - 1 do
      if pending.(k) then begin
        let p = pairs.(k) in
        let occurring = Index.Set.inter (Spair.indices p) relevant in
        if not (Index.Set.is_empty occurring) then begin
          incr leftovers;
          let t0 = tick () in
          (match Gcd_test.test p with
          | `Independent ->
              record ~t0 Counters.Gcd_miv ~indep:true;
              if tracing then begin
                legacy "  GCD on leftover MIV: independent";
                emit_test Counters.Gcd_miv p Dt_obs.Trace.Independent
                  "coefficient gcd does not divide the constant difference"
              end;
              raise Proved_independent
          | `Maybe ->
              record ~t0 Counters.Gcd_miv ~indep:false;
              if tracing then
                emit_test Counters.Gcd_miv p Dt_obs.Trace.Inconclusive
                  "coefficient gcd divides the constant difference");
          let indices =
            Index.Set.elements occurring
            |> List.sort (fun a b -> compare (Index.depth a) (Index.depth b))
          in
          let t1 = tick () in
          match
            Banerjee.vectors ?dispatch ?scratch ?metrics ?sink ?spans ?budget
              assume range [ p ] ~indices
          with
          | `Independent as v ->
              record ~t0:t1 ~span:false Counters.Banerjee_miv ~indep:true;
              if tracing then begin
                legacy "  Banerjee on leftover MIV: independent";
                emit_test Counters.Banerjee_miv p Dt_obs.Trace.Independent
                  (Banerjee.explain v)
              end;
              raise Proved_independent
          | `Vectors vecs as v ->
              record ~t0:t1 ~span:false Counters.Banerjee_miv ~indep:false;
              if tracing then
                emit_test Counters.Banerjee_miv p Dt_obs.Trace.Dependent
                  (Banerjee.explain v);
              miv_results := Presult.Vectors (indices, vecs) :: !miv_results
        end
      end
    done;
    let parts =
      (if indexwise = [] then [] else [ Presult.Indexwise indexwise ])
      @ !extra_results @ !miv_results
    in
    let parts = if parts = [] then [ Presult.Indexwise [] ] else parts in
    { verdict = `Dependent parts; passes = !passes; leftover_miv = !leftovers }
  in
  let res =
    try run ()
    with Proved_independent ->
      { verdict = `Independent; passes = !passes; leftover_miv = 0 }
  in
  record ~t0:t_start ~span:false Counters.Delta_test
    ~indep:(res.verdict = `Independent);
  res
