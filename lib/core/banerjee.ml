open Dt_ir
open Dt_support
module Ops = Dt_guard.Ops

let inject_node = Dt_guard.Inject.register "banerjee.node"

(* ------------------------------------------------------------------ *)
(* Vertex enumeration, shared by the compiled evaluator and the
   from-scratch Reference implementation.

   One corner-selector table serves every direction: `L/`H are the range
   endpoints, `L1/`H1 the endpoints shifted by one (the open sides of the
   '<' / '>' triangles). The Eq case with a = b short-circuits to the
   single zero vertex so the combo count stays 1. *)

let corner_points = function
  | Some Direction.Eq -> [ (`L, `L); (`H, `H) ]
  | Some Direction.Lt -> [ (`L, `L1); (`L, `H); (`H1, `H) ]
  | Some Direction.Gt -> [ (`L1, `L); (`H, `L); (`H, `H1) ]
  | None -> [ (`L, `L); (`L, `H); (`H, `L); (`H, `H) ]

(* Candidate extremal values for one index's contribution a*alpha - b*beta
   under a direction constraint: the vertex values of the feasible region.
   [`Unbounded] when a needed range endpoint is unknown. *)
let contributions ~a ~b ~(range : Range.range) dir =
  if a = 0 && b = 0 then `Vertices [ Affine.zero ]
  else
    match (range.Range.lo, range.Range.hi) with
    | Some lo, Some hi ->
        if dir = Some Direction.Eq && a = b then `Vertices [ Affine.zero ]
        else
          let lo1 = Affine.add_const 1 lo (* lo + 1 *)
          and him1 = Affine.add_const (-1) hi in
          let pt = function `L -> lo | `L1 -> lo1 | `H -> hi | `H1 -> him1 in
          let v (x, y) =
            Affine.sub (Affine.scale a (pt x)) (Affine.scale b (pt y))
          in
          `Vertices (List.map v (corner_points dir))
    | _ -> `Unbounded

let region_nonempty assume range i dir =
  match dir with
  | Some Direction.Lt | Some Direction.Gt -> (
      (* needs at least two iterations: hi - lo >= 1 *)
      match Range.trip_minus_one range i with
      | None -> true
      | Some d -> not (Assume.prove_nonpos assume d) || Assume.prove_pos assume d)
  | _ -> true

let max_combos = 4096
let use_reference = ref false

(* ------------------------------------------------------------------ *)
(* evaluator dispatch *)

type dispatch = Auto | Incremental | Reference

(* Threshold calibrated by the bench's dispatch section: the compiled
   evaluator amortizes its per-pair state build over the hierarchy DFS,
   whose node count grows with 4^depth — at depth >= 3 it wins by orders
   of magnitude, while on depth-1/2 constant-bound pairs the from-scratch
   evaluator's lack of setup cost makes it marginally faster. Symbolic
   terms tip the balance earlier: every vertex proof goes through the
   sign oracle, and the compiled path dedups and memoizes those. *)
let select ~depth ~symbols =
  if depth >= 3 || (depth >= 2 && symbols > 0) then Incremental else Reference

(* distinct symbols mentioned by the pairs' difference constants and the
   relevant range endpoints — the "symbol count" axis of [select] *)
let count_symbols range pairs ~indices =
  let syms =
    List.fold_left
      (fun acc i ->
        let r = Range.find range i in
        let acc =
          match r.Range.lo with
          | Some e -> List.rev_append (Affine.syms e) acc
          | None -> acc
        in
        match r.Range.hi with
        | Some e -> List.rev_append (Affine.syms e) acc
        | None -> acc)
      (List.concat_map (fun p -> Affine.syms (Spair.diff_const p)) pairs)
      indices
  in
  List.length (List.sort_uniq String.compare syms)

(* ------------------------------------------------------------------ *)
(* per-worker scratch arena: the compiled evaluator's per-pair state
   needs a proof memo table, a sum accumulator and four bound-compilation
   buffers per occurring index. Renting them from a per-domain arena
   replaces those per-pair allocations with pointer swaps once the arena
   is warm; the arena is single-domain by construction (each engine
   worker owns one), so no synchronization. *)

module Scratch = struct
  type t = {
    mutable tables : (Linform.vec, bool * bool) Hashtbl.t list;
    mutable vecs : Linform.vec list;  (* free list, mixed lengths *)
  }

  let create () = { tables = []; vecs = [] }

  let rent_table t =
    match t.tables with
    | tbl :: rest ->
        t.tables <- rest;
        Hashtbl.reset tbl;
        tbl
    | [] -> Hashtbl.create 64

  let return_table t tbl = t.tables <- tbl :: t.tables

  (* first free vector of the right length; universes within one pair
     share a length, so the scan terminates in a step or two *)
  let rent_vec t len =
    let rec go acc = function
      | v :: rest when Array.length v = len ->
          t.vecs <- List.rev_append acc rest;
          v
      | v :: rest -> go (v :: acc) rest
      | [] -> Array.make len 0
    in
    go [] t.vecs

  let return_vec t v = t.vecs <- v :: t.vecs
end

(* ------------------------------------------------------------------ *)
(* Reference implementation: the pre-kernel evaluator that recombines
   the full vertex cross product at every query. Kept verbatim as the
   byte-identity oracle for the compiled evaluator (tests, bench) and
   reachable via [use_reference]. *)

module Reference = struct
  let feasible ?metrics ?budget assume range (p : Spair.t) ~dirs =
    Dt_guard.Inject.hit inject_node;
    Dt_guard.Budget.charge budget 1;
    (match metrics with
    | Some m -> Dt_obs.Metrics.banerjee_node m ~incremental:false
    | None -> ());
    let eq_indices =
      List.fold_left
        (fun s (i, d) ->
          if d = Some Direction.Eq then Index.Set.add i s else s)
        Index.Set.empty dirs
    in
    match Gcd_test.test ~eq_indices p with
    | `Independent -> false
    | `Maybe -> (
        let c = Spair.diff_const p in
        let occurring = Spair.indices p in
        (* indices of the pair not mentioned in [dirs] are unconstrained *)
        let dir_of i =
          match List.find_opt (fun (j, _) -> Index.equal i j) dirs with
          | Some (_, d) -> d
          | None -> None
        in
        let per_index =
          Index.Set.fold
            (fun i acc ->
              match acc with
              | `Unbounded -> `Unbounded
              | `Lists ls -> (
                  let a = Affine.coeff p.src i and b = Affine.coeff p.snk i in
                  match
                    contributions ~a ~b ~range:(Range.find range i) (dir_of i)
                  with
                  | `Unbounded -> `Unbounded
                  | `Vertices vs -> `Lists (vs :: ls)))
            occurring (`Lists [])
        in
        match per_index with
        | `Unbounded -> true
        | `Lists lists ->
            let n_combos =
              List.fold_left (fun acc l -> Ops.mul acc (List.length l)) 1 lists
            in
            if n_combos > max_combos then true
            else
              let combos = Dt_support.Listx.cartesian lists in
              let sums =
                List.map (List.fold_left Affine.add Affine.zero) combos
              in
              let all_below =
                (* c > max: for every vertex value v, c - v > 0 *)
                List.for_all
                  (fun v -> Assume.prove_pos assume (Affine.sub c v))
                  sums
              in
              let all_above =
                List.for_all
                  (fun v -> Assume.prove_pos assume (Affine.sub v c))
                  sums
              in
              not (all_below || all_above))

  let vectors ?metrics ?budget assume range pairs ~indices =
    let results = ref [] in
    let feasible_all assignment =
      List.for_all
        (fun p -> feasible ?metrics ?budget assume range p ~dirs:assignment)
        pairs
    in
    (* depth-first refinement of the '*' hierarchy, outermost index first *)
    let rec refine fixed rest =
      let assignment =
        List.rev_append fixed (List.map (fun i -> (i, None)) rest)
      in
      if feasible_all assignment then
        match rest with
        | [] -> results := List.rev_map snd fixed :: !results
        | i :: rest' ->
            List.iter
              (fun d ->
                if region_nonempty assume range i (Some d) then
                  refine ((i, Some d) :: fixed) rest')
              Direction.all
    in
    refine [] indices;
    let vecs =
      List.rev_map
        (fun ds -> List.map (function Some d -> d | None -> assert false) ds)
        !results
    in
    if vecs = [] then `Independent else `Vectors vecs
end

(* ------------------------------------------------------------------ *)
(* Compiled incremental evaluator.

   Per (pair, vectors-call) we build a [state]: the pair's compiled
   kernel, a symbol universe covering diff_const and every occurring
   range endpoint, and — per (index slot, direction) — the compiled
   vertex set with its literal combo count and, when every vertex is
   constant, its [min, max] interval. The hierarchy DFS then maintains
   running lower/upper bound sums (and a symbolic-slot count) and swaps
   one slot's contribution in and out as a direction is refined, instead
   of recombining all cross products at every node.

   Two evaluation tiers, both provably byte-identical to Reference:
   - all-constant tier: when every selected vertex set is constant and
     diff_const is symbol-free, [Assume.prove_pos] on a symbol-free goal
     is exactly a sign check on its constant, so the full cross-product
     conjunction collapses to [lo_sum <= c <= hi_sum];
   - symbolic tier: enumerate the (per-slot deduplicated) cross product
     with in-place vector sums, proving each distinct sum once through a
     memo table. Deduplication cannot change a universally quantified
     conjunction, and the sign oracle is pure. *)

let code_of_dir = function
  | None -> 0
  | Some Direction.Eq -> 1
  | Some Direction.Lt -> 2
  | Some Direction.Gt -> 3

type vinfo = {
  count : int;  (* literal vertex-list length, for the combo cap *)
  vecs : Linform.vec array;  (* deduplicated compiled vertices *)
  cmin : int;  (* interval, valid when [const_only] *)
  cmax : int;
  const_only : bool;
}

type state = {
  kp : Linform.pair;
  u : Linform.universe;
  c_is_const : bool;
  vert : vinfo array array;  (* slot -> dircode -> info; [||] if unbounded *)
  dir : int array;  (* current dircode per slot; 0 = '*' *)
  unbounded : bool;  (* some occurring index has an unknown endpoint *)
  mutable lo_sum : int;  (* over slots whose current set is constant *)
  mutable hi_sum : int;
  mutable n_sym : int;  (* slots whose current vertex set is symbolic *)
  mutable combos : int;  (* product of current literal counts *)
  scratch : Linform.vec;  (* in-place sum accumulator, symbolic tier *)
  prove_memo : (Linform.vec, bool * bool) Hashtbl.t;
      (* distinct vertex sum -> (c > sum provable, sum > c provable) *)
}

let mk_vinfo ~a ~b ~lov ~hiv ~lo1v ~him1v code =
  if code = 1 && a = b then
    (* Eq with a = b: the single zero vertex *)
    {
      count = 1;
      vecs = [| Array.make (Array.length lov) 0 |];
      cmin = 0;
      cmax = 0;
      const_only = true;
    }
  else
    let corners =
      match code with
      | 1 -> [ (lov, lov); (hiv, hiv) ]
      | 2 -> [ (lov, lo1v); (lov, hiv); (him1v, hiv) ]
      | 3 -> [ (lo1v, lov); (hiv, lov); (hiv, him1v) ]
      | _ -> [ (lov, lov); (lov, hiv); (hiv, lov); (hiv, hiv) ]
    in
    let vs = List.map (fun (x, y) -> Linform.corner ~a ~b x y) corners in
    let count = List.length vs in
    let vecs = Array.of_list (List.sort_uniq compare vs) in
    let const_only = Array.for_all Linform.is_const_vec vecs in
    if const_only then
      let consts = Array.map Linform.const_of_vec vecs in
      {
        count;
        vecs;
        cmin = Array.fold_left min consts.(0) consts;
        cmax = Array.fold_left max consts.(0) consts;
        const_only;
      }
    else { count; vecs; cmin = 0; cmax = 0; const_only }

let build_state ?metrics ?scratch range (p : Spair.t) =
  let kp = Spair.kernel p in
  (match metrics with
  | Some m -> Dt_obs.Metrics.banerjee_compile m
  | None -> ());
  let bounds =
    Array.map
      (fun i ->
        let r = Range.find range i in
        (r.Range.lo, r.Range.hi))
      kp.Linform.indices
  in
  let syms = ref (Affine.syms kp.Linform.c) in
  let add_syms e = syms := List.rev_append (Affine.syms e) !syms in
  Array.iter
    (fun (lo, hi) ->
      Option.iter add_syms lo;
      Option.iter add_syms hi)
    bounds;
  let u = Linform.universe !syms in
  let vlen = Linform.universe_size u + 1 in
  let rent () =
    match scratch with
    | Some s -> Scratch.rent_vec s vlen
    | None -> Array.make vlen 0
  in
  let return_v v =
    match scratch with Some s -> Scratch.return_vec s v | None -> ()
  in
  let unbounded = ref false in
  let vert =
    Array.mapi
      (fun k bnd ->
        match bnd with
        | Some lo, Some hi ->
            (* the four bound vectors are pure compilation temporaries:
               [mk_vinfo] derives fresh corner vectors from them, so they
               go straight back to the arena *)
            let lov = rent () and hiv = rent () in
            Linform.compile_into u lo lov;
            Linform.compile_into u hi hiv;
            let lo1v = rent () and him1v = rent () in
            Array.blit lov 0 lo1v 0 vlen;
            Array.blit hiv 0 him1v 0 vlen;
            Linform.add_const_into 1 lo1v;
            Linform.add_const_into (-1) him1v;
            let a = kp.Linform.a.(k) and b = kp.Linform.b.(k) in
            let tbl = Array.init 4 (mk_vinfo ~a ~b ~lov ~hiv ~lo1v ~him1v) in
            return_v lov;
            return_v hiv;
            return_v lo1v;
            return_v him1v;
            tbl
        | _ ->
            unbounded := true;
            [||])
      bounds
  in
  let st =
    {
      kp;
      u;
      c_is_const = Affine.is_const kp.Linform.c;
      vert;
      dir = Array.make (Array.length kp.Linform.indices) 0;
      unbounded = !unbounded;
      lo_sum = 0;
      hi_sum = 0;
      n_sym = 0;
      combos = 1;
      scratch = rent ();
      prove_memo =
        (match scratch with
        | Some s -> Scratch.rent_table s
        | None -> Hashtbl.create 64);
    }
  in
  Array.iter
    (fun tbl ->
      if Array.length tbl > 0 then begin
        let vi = tbl.(0) in
        st.combos <- Ops.mul st.combos vi.count;
        if vi.const_only then begin
          st.lo_sum <- Ops.add st.lo_sum vi.cmin;
          st.hi_sum <- Ops.add st.hi_sum vi.cmax
        end
        else st.n_sym <- st.n_sym + 1
      end)
    vert;
  st

(* The incremental step: swap slot [k]'s contribution from its current
   direction to [code] by subtracting the old interval / symbolic mark
   and adding the new one. O(1), no allocation. *)
let set_dir st k code =
  if st.dir.(k) <> code then
    if Array.length st.vert.(k) = 0 then st.dir.(k) <- code
    else begin
      let old = st.vert.(k).(st.dir.(k)) in
      let nw = st.vert.(k).(code) in
      st.combos <- Ops.mul (st.combos / old.count) nw.count;
      (if old.const_only then begin
         st.lo_sum <- Ops.sub st.lo_sum old.cmin;
         st.hi_sum <- Ops.sub st.hi_sum old.cmax
       end
       else st.n_sym <- st.n_sym - 1);
      (if nw.const_only then begin
         st.lo_sum <- Ops.add st.lo_sum nw.cmin;
         st.hi_sum <- Ops.add st.hi_sum nw.cmax
       end
       else st.n_sym <- st.n_sym + 1);
      st.dir.(k) <- code
    end

(* gcd has no inverse, so the directed GCD is re-folded per node over the
   precomputed per-slot values — an allocation-free int loop. *)
let directed_gcd st =
  let kp = st.kp in
  let g = ref 0 in
  for k = 0 to Array.length kp.Linform.indices - 1 do
    g :=
      Int_ops.gcd !g
        (if st.dir.(k) = 1 then kp.Linform.diff_eq.(k)
         else kp.Linform.gcd_star.(k))
  done;
  Int_ops.gcd !g kp.Linform.c_sym_gcd

let symbolic_feasible assume st =
  let all_below = ref true and all_above = ref true in
  let n = Array.length st.kp.Linform.indices in
  Array.fill st.scratch 0 (Array.length st.scratch) 0;
  let exception Early in
  let check () =
    let below, above =
      match Hashtbl.find_opt st.prove_memo st.scratch with
      | Some r -> r
      | None ->
          let s = Linform.to_affine st.u st.scratch in
          let c = st.kp.Linform.c in
          let r =
            ( Assume.prove_pos assume (Affine.sub c s),
              Assume.prove_pos assume (Affine.sub s c) )
          in
          Hashtbl.add st.prove_memo (Array.copy st.scratch) r;
          r
    in
    if not below then all_below := false;
    if not above then all_above := false;
    if not (!all_below || !all_above) then raise Early
  in
  let rec go k =
    if k = n then check ()
    else
      Array.iter
        (fun v ->
          Linform.add_into st.scratch v;
          go (k + 1);
          Linform.sub_into st.scratch v)
        st.vert.(k).(st.dir.(k)).vecs
  in
  (try go 0 with Early -> ());
  not (!all_below || !all_above)

let eval_state ?metrics ?sink ?budget ~from_scratch assume st =
  Dt_guard.Inject.hit inject_node;
  Dt_guard.Budget.charge budget 1;
  (match metrics with
  | Some m -> Dt_obs.Metrics.banerjee_node m ~incremental:(not from_scratch)
  | None -> ());
  let g = directed_gcd st in
  if not (Int_ops.divides g st.kp.Linform.c_const) then false
  else if st.unbounded then true
  else if st.combos > max_combos then begin
    (match metrics with
    | Some m -> Dt_obs.Metrics.banerjee_cap m
    | None -> ());
    (match sink with
    | Some s ->
        Dt_obs.Trace.emit s
          (Dt_obs.Trace.Note
             (Printf.sprintf
                "Banerjee vertex cross product capped (%d > %d combinations); \
                 assuming feasible"
                st.combos max_combos))
    | None -> ());
    true
  end
  else if st.n_sym = 0 && st.c_is_const then
    (* all-constant tier: the bracket is a concrete interval *)
    let c = st.kp.Linform.c_const in
    c >= st.lo_sum && c <= st.hi_sum
  else symbolic_feasible assume st

(* hand a state's rented buffers back to the arena (no-op without one) *)
let release_state scratch st =
  match scratch with
  | None -> ()
  | Some s ->
      Scratch.return_vec s st.scratch;
      Scratch.return_table s st.prove_memo

(* [Auto] resolution: the [use_reference] global (the test/bench
   byte-identity hook) still forces the from-scratch evaluator; otherwise
   the nest-shape heuristic decides. An explicit dispatch always wins. *)
let wants_reference dispatch ~depth ~symbols =
  match dispatch with
  | Reference -> true
  | Incremental -> false
  | Auto -> !use_reference || select ~depth ~symbols:(symbols ()) = Reference

let feasible ?(dispatch = Auto) ?scratch ?metrics ?sink ?budget assume range
    (p : Spair.t) ~dirs =
  let depth = List.length dirs in
  let symbols () = count_symbols range [ p ] ~indices:(List.map fst dirs) in
  if wants_reference dispatch ~depth ~symbols then
    Reference.feasible ?metrics ?budget assume range p ~dirs
  else begin
    let st = build_state ?metrics ?scratch range p in
    Fun.protect ~finally:(fun () -> release_state scratch st) @@ fun () ->
    (* the first binding of an index wins, as List.find_opt did *)
    let seen = ref [] in
    List.iter
      (fun (i, d) ->
        if not (List.exists (Index.equal i) !seen) then begin
          seen := i :: !seen;
          match Linform.slot st.kp i with
          | Some k -> set_dir st k (code_of_dir d)
          | None -> ()
        end)
      dirs;
    eval_state ?metrics ?sink ?budget ~from_scratch:true assume st
  end

let vectors ?(dispatch = Auto) ?scratch ?metrics ?sink ?spans ?budget assume
    range pairs ~indices =
  Dt_obs.Span.with_ spans Dt_obs.Span.Banerjee @@ fun () ->
  let depth = List.length indices in
  let symbols () = count_symbols range pairs ~indices in
  if wants_reference dispatch ~depth ~symbols then
    Reference.vectors ?metrics ?budget assume range pairs ~indices
  else begin
    let states =
      List.map
        (fun p ->
          let st = build_state ?metrics ?scratch range p in
          let slots =
            Array.of_list (List.map (Linform.slot st.kp) indices)
          in
          (st, slots))
        pairs
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun (st, _) -> release_state scratch st) states)
    @@ fun () ->
    let idxs = Array.of_list indices in
    let n = Array.length idxs in
    (* region_nonempty depends only on (index, dir): memoize per call *)
    let region_memo = Array.make_matrix n 3 None in
    let region_ok k d =
      let j = match d with Direction.Lt -> 0 | Eq -> 1 | Gt -> 2 in
      match region_memo.(k).(j) with
      | Some r -> r
      | None ->
          let r = region_nonempty assume range idxs.(k) (Some d) in
          region_memo.(k).(j) <- Some r;
          r
    in
    let feasible_all () =
      List.for_all
        (fun (st, _) ->
          eval_state ?metrics ?sink ?budget ~from_scratch:false assume st)
        states
    in
    let set_all k code =
      List.iter
        (fun (st, slots) ->
          match slots.(k) with Some sl -> set_dir st sl code | None -> ())
        states
    in
    let cur = Array.make n Direction.Eq in
    let results = ref [] in
    (* depth-first refinement of the '*' hierarchy, outermost index
       first; entries at positions >= k are '*' *)
    let rec refine k =
      if feasible_all () then
        if k = n then results := Array.to_list (Array.copy cur) :: !results
        else begin
          List.iter
            (fun d ->
              if region_ok k d then begin
                cur.(k) <- d;
                set_all k (code_of_dir (Some d));
                refine (k + 1)
              end)
            Direction.all;
          set_all k 0 (* restore '*' for the caller *)
        end
    in
    refine 0;
    let vecs = List.rev !results in
    if vecs = [] then `Independent else `Vectors vecs
  end

let explain = function
  | `Independent ->
      "no direction vector satisfies the Banerjee bounds (with directed GCD)"
  | `Vectors vecs ->
      Format.asprintf "%d direction vector(s) feasible:%t" (List.length vecs)
        (fun ppf ->
          List.iter (fun v -> Format.fprintf ppf " %a" Dirvec.pp_concrete v) vecs)
