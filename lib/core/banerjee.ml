open Dt_ir

(* Candidate extremal values for one index's contribution a*alpha - b*beta
   under a direction constraint: the vertex values of the feasible region.
   [`Unbounded] when a needed range endpoint is unknown. *)
let contributions ~a ~b ~(range : Range.range) dir =
  if a = 0 && b = 0 then `Vertices [ Affine.zero ]
  else
    match (range.Range.lo, range.Range.hi) with
    | Some lo, Some hi -> (
        let v ax ay = Affine.sub (Affine.scale a ax) (Affine.scale b ay) in
        let lo1 = Affine.add_const 1 lo (* lo + 1 *)
        and him1 = Affine.add_const (-1) hi in
        match dir with
        | Some Direction.Eq ->
            let d = a - b in
            if d = 0 then `Vertices [ Affine.zero ]
            else `Vertices [ Affine.scale d lo; Affine.scale d hi ]
        | Some Direction.Lt -> `Vertices [ v lo lo1; v lo hi; v him1 hi ]
        | Some Direction.Gt -> `Vertices [ v lo1 lo; v hi lo; v hi him1 ]
        | None -> `Vertices [ v lo lo; v lo hi; v hi lo; v hi hi ])
    | _ -> `Unbounded

let region_nonempty assume range i dir =
  match dir with
  | Some Direction.Lt | Some Direction.Gt -> (
      (* needs at least two iterations: hi - lo >= 1 *)
      match Range.trip_minus_one range i with
      | None -> true
      | Some d -> not (Assume.prove_nonpos assume d) || Assume.prove_pos assume d)
  | _ -> true

let max_combos = 4096

let feasible assume range (p : Spair.t) ~dirs =
  let eq_indices =
    List.fold_left
      (fun s (i, d) ->
        if d = Some Direction.Eq then Index.Set.add i s else s)
      Index.Set.empty dirs
  in
  match Gcd_test.test ~eq_indices p with
  | `Independent -> false
  | `Maybe -> (
      let c = Spair.diff_const p in
      let occurring = Spair.indices p in
      (* indices of the pair not mentioned in [dirs] are unconstrained *)
      let dir_of i =
        match List.find_opt (fun (j, _) -> Index.equal i j) dirs with
        | Some (_, d) -> d
        | None -> None
      in
      let per_index =
        Index.Set.fold
          (fun i acc ->
            match acc with
            | `Unbounded -> `Unbounded
            | `Lists ls -> (
                let a = Affine.coeff p.src i and b = Affine.coeff p.snk i in
                match
                  contributions ~a ~b ~range:(Range.find range i) (dir_of i)
                with
                | `Unbounded -> `Unbounded
                | `Vertices vs -> `Lists (vs :: ls)))
          occurring (`Lists [])
      in
      match per_index with
      | `Unbounded -> true
      | `Lists lists ->
          let n_combos = List.fold_left (fun acc l -> acc * List.length l) 1 lists in
          if n_combos > max_combos then true
          else
            let combos = Dt_support.Listx.cartesian lists in
            let sums =
              List.map (List.fold_left Affine.add Affine.zero) combos
            in
            let all_below =
              (* c > max: for every vertex value v, c - v > 0 *)
              List.for_all
                (fun v -> Assume.prove_pos assume (Affine.sub c v))
                sums
            in
            let all_above =
              List.for_all
                (fun v -> Assume.prove_pos assume (Affine.sub v c))
                sums
            in
            not (all_below || all_above))

let vectors assume range pairs ~indices =
  let results = ref [] in
  let feasible_all assignment =
    List.for_all (fun p -> feasible assume range p ~dirs:assignment) pairs
  in
  (* depth-first refinement of the '*' hierarchy, outermost index first *)
  let rec refine fixed rest =
    let assignment = List.rev_append fixed (List.map (fun i -> (i, None)) rest) in
    if feasible_all assignment then
      match rest with
      | [] -> results := List.rev_map snd fixed :: !results
      | i :: rest' ->
          List.iter
            (fun d ->
              if region_nonempty assume range i (Some d) then
                refine ((i, Some d) :: fixed) rest')
            Direction.all
  in
  refine [] indices;
  let vecs =
    List.rev_map
      (fun ds -> List.map (function Some d -> d | None -> assert false) ds)
      !results
  in
  if vecs = [] then `Independent else `Vectors vecs

let explain = function
  | `Independent ->
      "no direction vector satisfies the Banerjee bounds (with directed GCD)"
  | `Vectors vecs ->
      Format.asprintf "%d direction vector(s) feasible:%t" (List.length vecs)
        (fun ppf ->
          List.iter (fun v -> Format.fprintf ppf " %a" Dirvec.pp_concrete v) vecs)
