(** Data dependences between statement instances (paper §2.1).

    A dependence records its endpoints (statement ids), its kind (true/
    flow, anti, output, input), the direction vector over the common loops
    of the two statements, the carried level (the outermost non-'='
    position, 1-based; [None] for loop-independent dependences), and any
    exact distance facts. *)

open Dt_ir

type kind = Flow | Anti | Output | Input

type t = {
  src_stmt : int;
  snk_stmt : int;
  array : string;
  kind : kind;
  dirvec : Dirvec.t;  (** over the common loops of the two statements *)
  level : int option;  (** [Some k]: carried by loop k; [None]: loop-independent *)
  distances : (Index.t * Outcome.dist) list;
}

val kind_name : kind -> string
val is_carried_at : t -> int -> bool
(** Carried exactly at that (1-based) level. *)

val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
