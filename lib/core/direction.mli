(** Dependence directions and direction sets.

    For a dependence from source iteration alpha to sink iteration beta, the
    direction for loop index i is:
      [Lt]  alpha_i < beta_i   (written '<')
      [Eq]  alpha_i = beta_i   (written '=')
      [Gt]  alpha_i > beta_i   (written '>')

    A {!set} is a non-empty-or-empty subset of the three directions; the
    full set is the paper's '*'. Sets form the refinement lattice used by
    the Banerjee direction-vector hierarchy. *)

type t = Lt | Eq | Gt

val all : t list
val negate : t -> t
(** '<' <-> '>', '=' fixed — reversing source and sink. *)

val of_distance : int -> t
(** Direction implied by distance [d = beta_i - alpha_i]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val compare : t -> t -> int

type set = { lt : bool; eq : bool; gt : bool }

val empty_set : set
val full_set : set
(** The paper's '*'. *)

val single : t -> set
val of_list : t list -> set
val mem : t -> set -> bool
val union : set -> set -> set
val inter : set -> set -> set
val is_empty : set -> bool
val is_full : set -> bool
val elements : set -> t list
val subset : set -> set -> bool
val negate_set : set -> set
val cardinal : set -> int
val set_compare : set -> set -> int
val set_equal : set -> set -> bool
val pp_set : Format.formatter -> set -> unit
(** '*' for the full set, '<=' for {<,=}, etc. *)
