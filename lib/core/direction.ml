type t = Lt | Eq | Gt

let all = [ Lt; Eq; Gt ]
let negate = function Lt -> Gt | Eq -> Eq | Gt -> Lt
let of_distance d = if d > 0 then Lt else if d < 0 then Gt else Eq
let to_string = function Lt -> "<" | Eq -> "=" | Gt -> ">"
let pp ppf t = Format.pp_print_string ppf (to_string t)
let compare = compare

type set = { lt : bool; eq : bool; gt : bool }

let empty_set = { lt = false; eq = false; gt = false }
let full_set = { lt = true; eq = true; gt = true }

let single = function
  | Lt -> { empty_set with lt = true }
  | Eq -> { empty_set with eq = true }
  | Gt -> { empty_set with gt = true }

let mem d s = match d with Lt -> s.lt | Eq -> s.eq | Gt -> s.gt

let of_list l =
  List.fold_left
    (fun s d ->
      match d with
      | Lt -> { s with lt = true }
      | Eq -> { s with eq = true }
      | Gt -> { s with gt = true })
    empty_set l

let union a b = { lt = a.lt || b.lt; eq = a.eq || b.eq; gt = a.gt || b.gt }
let inter a b = { lt = a.lt && b.lt; eq = a.eq && b.eq; gt = a.gt && b.gt }
let is_empty s = not (s.lt || s.eq || s.gt)
let is_full s = s.lt && s.eq && s.gt
let elements s = List.filter (fun d -> mem d s) all
let subset a b = (not a.lt || b.lt) && (not a.eq || b.eq) && (not a.gt || b.gt)
let negate_set s = { s with lt = s.gt; gt = s.lt }

let cardinal s =
  (if s.lt then 1 else 0) + (if s.eq then 1 else 0) + if s.gt then 1 else 0

let set_compare a b = compare a b
let set_equal a b = a = b

let pp_set ppf s =
  if is_full s then Format.pp_print_string ppf "*"
  else if is_empty s then Format.pp_print_string ppf "0"
  else
    List.iter (fun d -> Format.pp_print_string ppf (to_string d)) (elements s)
