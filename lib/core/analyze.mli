(** Whole-program dependence analysis: enumerate reference pairs, run the
    per-pair driver, orient the resulting direction vectors into forward /
    backward / loop-independent dependences, and collect statistics. *)

open Dt_ir

type options = {
  strategy : Pair_test.strategy;
  include_inputs : bool;  (** also compute input (read-read) dependences *)
  assume : Assume.t;  (** extra symbolic facts, e.g. N >= 1 *)
}

val default_options : options

type pair_record = {
  array : string;
  src_stmt : int;
  snk_stmt : int;
  meta : Pair_test.meta;
  independent : bool;
}

type result = {
  deps : Dep.t list;
  pairs : pair_record list;  (** one per reference pair tested *)
  counters : Counters.t;
}

val program :
  ?options:options ->
  ?metrics:Dt_obs.Metrics.t ->
  ?sink:Dt_obs.Trace.sink ->
  Nest.program ->
  result
(** [metrics] and [sink] feed the observability layer: per-test-kind
    counts/timings, per-pair latency, and a typed trace tree with one
    [Pair_start] .. [Verdict] span per reference pair (see {!Dt_obs}). *)

val deps_of : ?options:options -> Nest.program -> Dep.t list

val decompose :
  Dirvec.t -> (int option * Dirvec.t * [ `Forward | `Backward ]) list
(** Split a (possibly starred) direction vector into its carried components:
    [(Some k, v, `Forward)] is the part carried forward at level k;
    backward parts denote reversed dependences (vector NOT yet negated);
    [(None, v, `Forward)] is the loop-independent (all '=') part. *)
