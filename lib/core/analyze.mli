(** Whole-program dependence analysis: enumerate reference pairs, run the
    per-pair driver (paper §3) over them — in parallel and through the
    structural memo cache when configured — orient the resulting
    direction vectors into forward / backward / loop-independent
    dependences, and collect statistics.

    {!run} analyzes one routine; {!run_all} shards a routine corpus
    across the same work-stealing pool. {!Config} bundles every knob.
    Parallelism, caching and evaluator dispatch are engine concerns,
    never semantic ones: for a fixed program and configuration
    semantics, [run] returns the same {!result} (same [deps], same
    ordering) at every [jobs] / [grain] / [dispatch] setting and with
    the cache on or off. *)

open Dt_ir

(** Analysis configuration: the testing strategy and symbolic facts
    (semantics), the engine knobs (worker count, splitting grain,
    Banerjee evaluator dispatch, memo cache), and the observability
    outputs (metrics registry, trace sink) in one value.

    A configuration [make ~cache:true] owns its memo cache: reusing the
    same [Config.t] across several {!run} calls shares the cache, so a
    corpus-wide run hits on shapes repeated across routines. The cache is
    domain-safe and semantically transparent. *)
module Config : sig
  type t

  val make :
    ?strategy:Pair_test.strategy ->
    ?include_inputs:bool ->
    ?assume:Assume.t ->
    ?jobs:int ->
    ?grain:int ->
    ?dispatch:Banerjee.dispatch ->
    ?cache:bool ->
    ?cache_capacity:int ->
    ?disk:Dt_engine.Store.t ->
    ?metrics:Dt_obs.Metrics.t ->
    ?sink:Dt_obs.Trace.sink ->
    ?profiler:Dt_obs.Span.profiler ->
    ?budget:int ->
    ?deadline_ms:int ->
    unit ->
    t
  (** Defaults: [Partition_based], no input dependences, empty assume,
      [jobs = 0] (auto: one worker per recommended domain, but small
      nests — fewer than ~256 reference pairs, where a Domain spawn
      would cost more than the testing work — run sequentially),
      [grain = 0] (auto leaf size for the pool's lazy binary split),
      [dispatch = Banerjee.Auto] (per-query evaluator selection from the
      nest shape), cache on and unbounded ([cache_capacity] bounds its
      resident entries with FIFO eviction), no metrics, no sink, no
      profiler, no budget, no deadline. An explicit [jobs >= 1] is
      honored literally. A trace sink forces sequential execution — a
      trace is an ordered narrative. A profiler does {e not} constrain
      the schedule: each worker domain records into its own span buffer
      and the buffers merge deterministically afterwards (see
      {!Dt_obs.Span}).

      [budget] caps the work per reference pair (in Banerjee
      hierarchy-node evaluations); a pair that exhausts it degrades to
      the conservative full direction-vector verdict. [deadline_ms]
      caps the whole analysis' wall clock: the deadline is fixed when
      {!run} starts and every pair beginning after it degrades without
      being tested ([deadline_ms = 0] degrades every pair —
      deterministic, used by the fault harness). Both degradations are
      counted in the metrics' guard block and recorded in the pair's
      [meta.degraded]; degraded verdicts are never cached.

      [disk] attaches a persistent {!Dt_engine.Store} under the memo
      cache (see {!Pair_cache}): memo misses fall through to disk,
      verdicts write through, and [run] snapshots the disk hit / miss /
      invalid counters into [metrics]. Requires [cache = true] (the
      default) to have any effect. *)

  val default : t
  (** [make ()] evaluated once: note that every [run default] therefore
      shares one process-wide memo cache. *)

  (* builder-style updates (each returns a new value; [with_cache true]
     attaches a fresh cache) *)
  val with_strategy : Pair_test.strategy -> t -> t
  val with_include_inputs : bool -> t -> t
  val with_assume : Assume.t -> t -> t
  val with_jobs : int -> t -> t
  val with_grain : int -> t -> t
  val with_dispatch : Banerjee.dispatch -> t -> t
  val with_cache : bool -> t -> t
  val with_metrics : Dt_obs.Metrics.t option -> t -> t
  val with_sink : Dt_obs.Trace.sink option -> t -> t
  val with_profiler : Dt_obs.Span.profiler option -> t -> t
  val with_budget : int option -> t -> t
  val with_deadline_ms : int option -> t -> t

  val profiler : t -> Dt_obs.Span.profiler option
  val strategy : t -> Pair_test.strategy
  val include_inputs : t -> bool
  val assume : t -> Assume.t
  val jobs : t -> int
  val grain : t -> int
  val dispatch : t -> Banerjee.dispatch
  val budget : t -> int option
  val deadline_ms : t -> int option
  val cache_enabled : t -> bool

  val cache_stats : t -> (int * int) option
  (** [(hits, misses)] of this configuration's cache, if it has one. *)

  val cache_usage : t -> (int * int) option
  (** [(size, evictions)]: resident entries and capacity evictions of
      this configuration's cache, if it has one. [run] snapshots the
      same numbers into the metrics registry's cache block. *)

  val cache_hit_rate : t -> float option
end

type pair_record = {
  array : string;
  src_stmt : int;
  snk_stmt : int;
  meta : Pair_test.meta;
  independent : bool;
}

type result = {
  deps : Dep.t list;
  pairs : pair_record list;  (** one per reference pair tested *)
  counters : Counters.t;
      (** §6 test-application counts; cache-invariant (hits replay the
          producing run's increments) *)
}

type site = {
  left : Stmt.access * Loop.t list;
  right : Stmt.access * Loop.t list;
  same_ref : bool;  (** the pair of one access with itself *)
}
(** One reference pair to test, in textual enumeration order. [left] and
    [right] are unoriented — orientation (who is source) is decided per
    direction vector after testing. *)

val sites : ?include_inputs:bool -> Nest.program -> site array
(** Pair enumeration, split from testing: every pair of accesses to the
    same array (read-read pairs only when [include_inputs]), in the
    deterministic order the sequential driver has always used. *)

val run : Config.t -> Nest.program -> result
(** Analyze one program under the given configuration. *)

val run_all : Config.t -> Nest.program list -> result list
(** Analyze a routine corpus, sharding whole routines across the
    work-stealing pool: each worker analyzes its routines sequentially
    (one {!Dt_obs.Span.Shard} bracket per routine, counted in the
    metrics' engine block) while the deque scheduler balances uneven
    routine sizes by stealing. The result list is byte-identical to
    [List.map (run cfg) progs] at every engine setting — per-routine
    counters included — with two scheduling-only differences: the
    [deadline_ms] clock is armed once for the whole batch instead of
    per routine, and a shard that faults outside the per-pair
    containment aborts the batch exactly as the corresponding [run]
    call would. Falls back to [List.map (run cfg)] (and its per-site
    parallelism policy) when there is no fan-out to gain: fewer than
    two routines, [jobs = 1], a trace sink, or auto mode on a small
    batch. *)

val decompose :
  Dirvec.t -> (int option * Dirvec.t * [ `Forward | `Backward ]) list
(** Split a (possibly starred) direction vector into its carried components:
    [(Some k, v, `Forward)] is the part carried forward at level k;
    backward parts denote reversed dependences (vector NOT yet negated);
    [(None, v, `Forward)] is the loop-independent (all '=') part. *)
