(** The Delta test (paper §5): exact and efficient testing of coupled
    subscript groups.

    The algorithm (the paper's Figure 3):

    + classify each subscript of the group (ZIV / SIV / RDIV / MIV);
    + apply the exact SIV tests, turning each SIV subscript into a
      *constraint* (distance, line, or point) on its index;
    + intersect constraints index-wise — an empty intersection proves
      independence;
    + propagate SIV constraints into MIV subscripts, reducing them; when a
      reduction produces new SIV subscripts, iterate (multiple passes);
    + propagate restricted-DIV (RDIV) constraints for coupled permutation-
      style subscripts (§5.3.2);
    + any remaining MIV subscripts fall through to the Banerjee-GCD
      hierarchy (the paper notes more general tests may be used here).

    Each subscript is tested at most once per shape, so the test is linear
    in the number of subscripts. *)

open Dt_ir

type result = {
  verdict : [ `Independent | `Dependent of Presult.t list ];
  passes : int;  (** constraint-propagation passes executed *)
  leftover_miv : int;  (** MIV subscripts the Delta test could not reduce *)
}

val test :
  ?counters:Counters.t ->
  ?metrics:Dt_obs.Metrics.t ->
  ?sink:Dt_obs.Trace.sink ->
  ?spans:Dt_obs.Span.t ->
  ?budget:Dt_guard.Budget.t ->
  ?dispatch:Banerjee.dispatch ->
  ?scratch:Banerjee.Scratch.t ->
  ?trace:(string -> unit) ->
  ?loops:Loop.t list ->
  Assume.t ->
  Range.t ->
  Spair.t list ->
  relevant:Index.Set.t ->
  result
(** Test one minimal coupled group. [relevant] is the set of common-loop
    indices. [trace] receives a human-readable account of every step (used
    by the Figure-3 walkthrough example); [sink] receives the same account
    as typed {!Dt_obs.Trace} events and [metrics] accumulates per-kind
    timings. [spans] adds the group to the timeline: one
    {!Dt_obs.Span.Delta} bracket, one {!Dt_obs.Span.Delta_pass} per
    constraint-propagation pass, and a leaf span per exact test applied.
    When no observer is supplied no trace strings are built.

    [loops] (the enclosing loops, outermost first) enables the *relational*
    RDIV refinement: combining an RDIV relation [alpha_i = beta_j + c]
    with a distance constraint on one of the indices yields a single-side
    relation such as [beta_i = beta_j + e], which is checked directly
    against triangular loop bounds (e.g. [DO I; DO J = I+1, N] refutes
    [beta_j = beta_i + e] for all [e <= 0]). This captures the paper's
    restricted-DIV constraint propagation in its strongest form. *)
