open Dt_ir

let test ?counters ?metrics ?sink assume range pairs ~common =
  let record k ~indep ~ns =
    (match counters with Some c -> Counters.record c k ~indep | None -> ());
    match metrics with
    | Some m -> Dt_obs.Metrics.record m k ~indep ~ns
    | None -> ()
  in
  let tick () =
    match metrics with Some _ -> Dt_obs.Metrics.now_ns () | None -> 0L
  in
  let tock t0 =
    match metrics with
    | Some _ -> Int64.sub (Dt_obs.Metrics.now_ns ()) t0
    | None -> 0L
  in
  let emit_test kind p verdict reason =
    match sink with
    | Some s ->
        Dt_obs.Trace.emit s
          (Dt_obs.Trace.Test
             { kind; subscript = Spair.to_string p; verdict; reason })
    | None -> ()
  in
  let exception Indep of Counters.kind in
  try
    let parts =
      List.map
        (fun p ->
          let t0 = tick () in
          (match Gcd_test.test p with
          | `Independent ->
              record Counters.Gcd_miv ~indep:true ~ns:(tock t0);
              emit_test Counters.Gcd_miv p Dt_obs.Trace.Independent
                "coefficient gcd does not divide the constant difference";
              raise (Indep Counters.Gcd_miv)
          | `Maybe -> record Counters.Gcd_miv ~indep:false ~ns:(tock t0));
          let occurring = Spair.indices p in
          let indices =
            List.filter (fun i -> Index.Set.mem i occurring) common
          in
          let t1 = tick () in
          match Banerjee.vectors ?metrics ?sink assume range [ p ] ~indices with
          | `Independent as v ->
              record Counters.Banerjee_miv ~indep:true ~ns:(tock t1);
              emit_test Counters.Banerjee_miv p Dt_obs.Trace.Independent
                (Banerjee.explain v);
              raise (Indep Counters.Banerjee_miv)
          | `Vectors vecs as v ->
              record Counters.Banerjee_miv ~indep:false ~ns:(tock t1);
              emit_test Counters.Banerjee_miv p Dt_obs.Trace.Dependent
                (Banerjee.explain v);
              Presult.Vectors (indices, vecs))
        pairs
    in
    `Dependent parts
  with Indep k -> `Independent k
