open Dt_ir

let test ?counters assume range pairs ~common =
  let record k ~indep =
    match counters with Some c -> Counters.record c k ~indep | None -> ()
  in
  let exception Indep in
  try
    let parts =
      List.map
        (fun p ->
          (match Gcd_test.test p with
          | `Independent ->
              record Counters.Gcd_miv ~indep:true;
              raise Indep
          | `Maybe -> record Counters.Gcd_miv ~indep:false);
          let occurring = Spair.indices p in
          let indices =
            List.filter (fun i -> Index.Set.mem i occurring) common
          in
          match Banerjee.vectors assume range [ p ] ~indices with
          | `Independent ->
              record Counters.Banerjee_miv ~indep:true;
              raise Indep
          | `Vectors vecs ->
              record Counters.Banerjee_miv ~indep:false;
              Presult.Vectors (indices, vecs))
        pairs
    in
    `Dependent parts
  with Indep -> `Independent
