open Dt_ir

let test ?counters ?metrics ?sink ?spans ?budget ?dispatch ?scratch assume
    range pairs ~common =
  let instrumented = metrics <> None || spans <> None in
  let record ?(t0 = 0L) ?(span = true) k ~indep =
    (match counters with Some c -> Counters.record c k ~indep | None -> ());
    if instrumented then begin
      let t1 = Dt_obs.Clock.now_ns () in
      (match metrics with
      | Some m -> Dt_obs.Metrics.record m k ~indep ~ns:(Int64.sub t1 t0)
      | None -> ());
      match spans with
      | Some b when span ->
          Dt_obs.Span.record b (Dt_obs.Span.Test k) ~t0_ns:t0 ~t1_ns:t1
      | _ -> ()
    end
  in
  let tick () = if instrumented then Dt_obs.Clock.now_ns () else 0L in
  let emit_test kind p verdict reason =
    match sink with
    | Some s ->
        Dt_obs.Trace.emit s
          (Dt_obs.Trace.Test
             { kind; subscript = Spair.to_string p; verdict; reason })
    | None -> ()
  in
  let exception Indep of Counters.kind in
  try
    let parts =
      List.map
        (fun p ->
          let t0 = tick () in
          (match Gcd_test.test p with
          | `Independent ->
              record ~t0 Counters.Gcd_miv ~indep:true;
              emit_test Counters.Gcd_miv p Dt_obs.Trace.Independent
                "coefficient gcd does not divide the constant difference";
              raise (Indep Counters.Gcd_miv)
          | `Maybe -> record ~t0 Counters.Gcd_miv ~indep:false);
          let occurring = Spair.indices p in
          let indices =
            List.filter (fun i -> Index.Set.mem i occurring) common
          in
          let t1 = tick () in
          match
            Banerjee.vectors ?dispatch ?scratch ?metrics ?sink ?spans ?budget
              assume range [ p ] ~indices
          with
          | `Independent as v ->
              record ~t0:t1 ~span:false Counters.Banerjee_miv ~indep:true;
              emit_test Counters.Banerjee_miv p Dt_obs.Trace.Independent
                (Banerjee.explain v);
              raise (Indep Counters.Banerjee_miv)
          | `Vectors vecs as v ->
              record ~t0:t1 ~span:false Counters.Banerjee_miv ~indep:false;
              emit_test Counters.Banerjee_miv p Dt_obs.Trace.Dependent
                (Banerjee.explain v);
              Presult.Vectors (indices, vecs))
        pairs
    in
    `Dependent parts
  with Indep k -> `Independent k
