(** The ZIV test (paper §4.1).

    A ZIV subscript pair <e1, e2> contains no loop index. The references
    can only collide when e1 = e2; if the difference simplifies to a
    (provably) non-zero value, the subscript proves independence. The
    symbolic extension falls out of affine subtraction plus the sign
    oracle. *)

open Dt_ir

val test : Assume.t -> Spair.t -> Outcome.t
(** [Dependent []] (no index constrained) when a collision is possible. *)
