type t = Direction.set array

let full n = Array.make n Direction.full_set

let refine t k s =
  let s' = Direction.inter t.(k) s in
  if Direction.is_empty s' then None
  else begin
    let t' = Array.copy t in
    t'.(k) <- s';
    Some t'
  end

let expand t =
  let choices = Array.to_list (Array.map Direction.elements t) in
  List.map
    (fun dirs -> Array.of_list (List.map Direction.single dirs))
    (Dt_support.Listx.cartesian choices)

let concrete t =
  let exception Not_single in
  try
    Some
      (Array.to_list
         (Array.map
            (fun s ->
              match Direction.elements s with
              | [ d ] -> d
              | _ -> raise Not_single)
            t))
  with Not_single -> None

let of_dirs dirs = Array.of_list (List.map Direction.single dirs)

let level t =
  match concrete t with
  | None -> None
  | Some dirs ->
      let rec go k = function
        | [] -> None (* all '=' : loop-independent *)
        | Direction.Eq :: rest -> go (k + 1) rest
        | _ -> Some k
      in
      go 1 dirs

let levels t =
  let n = Array.length t in
  let acc = ref [] in
  let add l = if not (List.mem l !acc) then acc := l :: !acc in
  let rec go k =
    (* positions before k are '='; position k (0-based) carries *)
    if k >= n then add (n + 1)
    else begin
      if t.(k).Direction.lt || t.(k).Direction.gt then add (k + 1);
      if t.(k).Direction.eq then go (k + 1)
    end
  in
  go 0;
  List.sort compare !acc

let is_forward dirs =
  let rec go = function
    | [] -> true
    | Direction.Eq :: rest -> go rest
    | Direction.Lt :: _ -> true
    | Direction.Gt :: _ -> false
  in
  go dirs

let is_backward dirs =
  let rec go = function
    | [] -> false
    | Direction.Eq :: rest -> go rest
    | Direction.Lt :: _ -> false
    | Direction.Gt :: _ -> true
  in
  go dirs

let negate t = Array.map Direction.negate_set t

let inter a b =
  let n = Array.length a in
  assert (n = Array.length b);
  let out = Array.make n Direction.empty_set in
  let ok = ref true in
  for k = 0 to n - 1 do
    let s = Direction.inter a.(k) b.(k) in
    if Direction.is_empty s then ok := false;
    out.(k) <- s
  done;
  if !ok then Some out else None

let compare a b =
  Stdlib.compare (Array.map (fun s -> Direction.elements s) a)
    (Array.map (fun s -> Direction.elements s) b)

let equal a b = compare a b = 0

let merge sets =
  match sets with
  | [] -> []
  | first :: rest ->
      let step acc set =
        List.concat_map
          (fun v -> List.filter_map (fun w -> inter v w) set)
          acc
      in
      List.fold_left step first rest |> Dt_support.Listx.dedup ~compare

let pp ppf t =
  Format.pp_print_string ppf "(";
  Array.iteri
    (fun k s ->
      if k > 0 then Format.pp_print_string ppf ",";
      Direction.pp_set ppf s)
    t;
  Format.pp_print_string ppf ")"

let to_string t = Format.asprintf "%a" pp t

let pp_concrete ppf dirs =
  Format.pp_print_string ppf "(";
  List.iteri
    (fun k d ->
      if k > 0 then Format.pp_print_string ppf ",";
      Direction.pp ppf d)
    dirs;
  Format.pp_print_string ppf ")"

let distances_to_vec dists =
  Array.map
    (function
      | Some d -> Direction.single (Direction.of_distance d)
      | None -> Direction.full_set)
    dists
