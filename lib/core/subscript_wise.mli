(** The traditional subscript-by-subscript testing strategy (baseline).

    Every subscript position is tested independently with the Banerjee-GCD
    hierarchy and the per-dimension direction-vector sets are intersected —
    the strategy the first version of PFC used (paper §8) and the one the
    Delta test improves upon for coupled subscripts (§2.2's example shows
    it can report direction vectors that do not exist). *)

open Dt_ir

val test :
  ?counters:Counters.t ->
  Assume.t ->
  Range.t ->
  Spair.t list ->
  common:Index.t list ->
  [ `Independent | `Dependent of Presult.t list ]
(** One [Presult] per subscript position. *)
