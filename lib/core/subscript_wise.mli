(** The traditional subscript-by-subscript testing strategy (baseline).

    Every subscript position is tested independently with the Banerjee-GCD
    hierarchy and the per-dimension direction-vector sets are intersected —
    the strategy the first version of PFC used (paper §8) and the one the
    Delta test improves upon for coupled subscripts (§2.2's example shows
    it can report direction vectors that do not exist). *)

open Dt_ir

val test :
  ?counters:Counters.t ->
  ?metrics:Dt_obs.Metrics.t ->
  ?sink:Dt_obs.Trace.sink ->
  ?spans:Dt_obs.Span.t ->
  ?budget:Dt_guard.Budget.t ->
  ?dispatch:Banerjee.dispatch ->
  ?scratch:Banerjee.Scratch.t ->
  Assume.t ->
  Range.t ->
  Spair.t list ->
  common:Index.t list ->
  [ `Independent of Counters.kind | `Dependent of Presult.t list ]
(** One [Presult] per subscript position; on independence, the kind of the
    test that proved it. [metrics] and [sink] feed the observability
    layer (see {!Dt_obs}). *)
