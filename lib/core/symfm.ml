open Dt_ir

type constr = { coeffs : int array; bound : Affine.t }

let le coeffs bound = { coeffs; bound }

let eq coeffs bound =
  [
    { coeffs; bound };
    { coeffs = Array.map (fun c -> -c) coeffs; bound = Affine.neg bound };
  ]

let max_constraints = 256

let is_trivial c = Array.for_all (fun k -> k = 0) c.coeffs

exception Infeasible
exception Give_up

let infeasible assume ~nvars cs =
  let contradictory c =
    (* 0 <= bound with bound provably negative *)
    is_trivial c && Assume.prove_neg assume c.bound
  in
  let prune cs =
    List.iter (fun c -> if contradictory c then raise Infeasible) cs;
    List.filter (fun c -> not (is_trivial c)) cs
  in
  let eliminate var cs =
    let pos, rest = List.partition (fun c -> c.coeffs.(var) > 0) cs in
    let neg, zero = List.partition (fun c -> c.coeffs.(var) < 0) rest in
    let combined =
      List.concat_map
        (fun p ->
          List.map
            (fun n ->
              let a = p.coeffs.(var) and a' = -n.coeffs.(var) in
              {
                coeffs =
                  Array.init nvars (fun v ->
                      (a' * p.coeffs.(v)) + (a * n.coeffs.(v)));
                bound =
                  Affine.add (Affine.scale a' p.bound) (Affine.scale a n.bound);
              })
            neg)
        pos
    in
    let out = zero @ combined in
    if List.length out > max_constraints then raise Give_up;
    prune out
  in
  match
    let cs = prune cs in
    let rec go var cs = if var >= nvars then () else go (var + 1) (eliminate var cs) in
    go 0 cs
  with
  | () -> false
  | exception Infeasible -> true
  | exception Give_up -> false
