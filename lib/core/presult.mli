(** Partition results: what testing one separable subscript or one coupled
    group proves, in a form the driver can merge across partitions
    (paper §3, step 6).

    Index-wise (product) form suffices for separable subscripts; coupled
    groups and MIV hierarchy tests can produce *joint* sets of direction
    vectors that are not products (e.g. {(<,>), (=,=)}). *)

open Dt_ir

type t =
  | Independent
  | Indexwise of Outcome.index_dep list
      (** constraints per index; unlisted indices are unconstrained *)
  | Vectors of Index.t list * Direction.t list list
      (** joint legal direction vectors over exactly these indices *)
  | Degraded of Dt_guard.Degrade.reason
      (** the partition's test could not be trusted (overflow, contained
          exception): conservatively unconstrained — {!to_dirvecs} yields
          the full direction vector, {!is_independent} is [false] *)

val of_outcome : Outcome.t -> t

val to_dirvecs : loop_indices:Index.t list -> t -> Dirvec.t list
(** Lift to direction vectors over the full common-loop list ('*' on
    unconstrained positions). [Independent] yields the empty list. *)

val distances : t -> (Index.t * Outcome.dist) list
(** Exact distance facts carried by the result. *)

val is_independent : t -> bool
val pp : Format.formatter -> t -> unit
