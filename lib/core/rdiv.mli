(** The RDIV test (paper §4.4).

    RDIV (Restricted Double Index Variable) subscripts have the shape
    <a1*i + c1, a2*j + c2> with i and j *distinct* indices. The exact SIV
    machinery extends to them by observing different loop bounds for the
    two variables. The test also records the cross-index relation for the
    Delta test's restricted RDIV constraint propagation (§5.3.2). *)

open Dt_ir

type relation = {
  src_index : Index.t;  (** the index on the source side *)
  snk_index : Index.t;  (** the index on the sink side *)
  a : int;  (** a * alpha_src + b * beta_snk = c *)
  b : int;
  c : Affine.t;  (** symbol-only affine *)
}

type result = { outcome : Outcome.t; relation : relation option }

val test : Assume.t -> Range.t -> Spair.t -> src:Index.t -> snk:Index.t -> result

val pp_relation : Format.formatter -> relation -> unit

val explain : result -> string
(** One-line reason for the verdict, for the trace layer. *)
