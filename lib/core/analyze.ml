open Dt_ir

(* ------------------------------------------------------------------ *)
(* configuration                                                       *)

module Config = struct
  type t = {
    strategy : Pair_test.strategy;
    include_inputs : bool;
    assume : Assume.t;
    jobs : int;  (* 0 = auto *)
    cache : Pair_cache.t option;
    metrics : Dt_obs.Metrics.t option;
    sink : Dt_obs.Trace.sink option;
    profiler : Dt_obs.Span.profiler option;
    budget : int option;  (* per-pair fuel, Banerjee nodes *)
    deadline_ms : int option;  (* wall-clock cap for the whole analysis *)
  }

  let make ?(strategy = Pair_test.Partition_based) ?(include_inputs = false)
      ?(assume = Assume.empty) ?(jobs = 0) ?(cache = true) ?cache_capacity
      ?metrics ?sink ?profiler ?budget ?deadline_ms () =
    {
      strategy;
      include_inputs;
      assume;
      jobs;
      cache =
        (if cache then Some (Pair_cache.create ?capacity:cache_capacity ())
         else None);
      metrics;
      sink;
      profiler;
      budget;
      deadline_ms;
    }

  let default = make ()
  let with_strategy strategy t = { t with strategy }
  let with_include_inputs include_inputs t = { t with include_inputs }
  let with_assume assume t = { t with assume }
  let with_jobs jobs t = { t with jobs }

  let with_cache on t =
    { t with cache = (if on then Some (Pair_cache.create ()) else None) }

  let with_metrics metrics t = { t with metrics }
  let with_sink sink t = { t with sink }
  let with_profiler profiler t = { t with profiler }
  let with_budget budget t = { t with budget }
  let with_deadline_ms deadline_ms t = { t with deadline_ms }
  let profiler t = t.profiler
  let strategy t = t.strategy
  let include_inputs t = t.include_inputs
  let assume t = t.assume
  let jobs t = t.jobs
  let budget t = t.budget
  let deadline_ms t = t.deadline_ms
  let cache_enabled t = t.cache <> None

  let cache_stats t =
    Option.map (fun c -> (Pair_cache.hits c, Pair_cache.misses c)) t.cache

  let cache_usage t =
    Option.map (fun c -> (Pair_cache.length c, Pair_cache.evictions c)) t.cache

  let cache_hit_rate t = Option.map Pair_cache.hit_rate t.cache
end

type pair_record = {
  array : string;
  src_stmt : int;
  snk_stmt : int;
  meta : Pair_test.meta;
  independent : bool;
}

type result = {
  deps : Dep.t list;
  pairs : pair_record list;
  counters : Counters.t;
}

(* ------------------------------------------------------------------ *)
(* direction-vector decomposition and orientation helpers              *)

let decompose (v : Dirvec.t) =
  let n = Array.length v in
  let out = ref [] in
  let rec go k =
    if k = n then out := (None, Array.map (fun _ -> Direction.single Eq) v, `Forward) :: !out
    else begin
      (if Direction.mem Lt v.(k) then
         let w = Array.copy v in
         for j = 0 to k - 1 do
           w.(j) <- Direction.single Eq
         done;
         w.(k) <- Direction.single Lt;
         out := (Some (k + 1), w, `Forward) :: !out);
      (if Direction.mem Gt v.(k) then
         let w = Array.copy v in
         for j = 0 to k - 1 do
           w.(j) <- Direction.single Eq
         done;
         w.(k) <- Direction.single Gt;
         out := (Some (k + 1), w, `Backward) :: !out);
      if Direction.mem Eq v.(k) then go (k + 1)
    end
  in
  go 0;
  List.rev !out

let kind_of src_kind snk_kind =
  match (src_kind, snk_kind) with
  | `Write, `Read -> Dep.Flow
  | `Read, `Write -> Dep.Anti
  | `Write, `Write -> Dep.Output
  | `Read, `Read -> Dep.Input

let neg_dist = function
  | Outcome.Const d -> Outcome.Const (-d)
  | Outcome.Sym e -> Outcome.Sym (Affine.neg e)
  | Outcome.Unknown -> Outcome.Unknown

(* ------------------------------------------------------------------ *)
(* pair enumeration, split from testing                                *)

type site = {
  left : Stmt.access * Loop.t list;
  right : Stmt.access * Loop.t list;
  same_ref : bool;
}

let sites ?(include_inputs = false) prog =
  let accesses =
    List.concat_map
      (fun (s, loops) ->
        List.map (fun a -> (a, loops)) (Stmt.accesses s))
      (Nest.stmts_with_loops prog)
  in
  let accesses = Array.of_list accesses in
  let n = Array.length accesses in
  let out = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i do
      let ((a1 : Stmt.access), _) = accesses.(i)
      and ((a2 : Stmt.access), _) = accesses.(j) in
      if
        a1.Stmt.aref.Aref.base = a2.Stmt.aref.Aref.base
        && (include_inputs
           || not (a1.Stmt.kind = `Read && a2.Stmt.kind = `Read))
      then
        out :=
          { left = accesses.(i); right = accesses.(j); same_ref = i = j }
          :: !out
    done
  done;
  Array.of_list !out

(* ------------------------------------------------------------------ *)
(* the engine: test every site (in parallel, through the cache), then
   orient the per-pair direction vectors sequentially                  *)

let strategy_tag = function
  | Pair_test.Partition_based -> "P"
  | Pair_test.Subscript_by_subscript -> "S"

(* per-worker accumulators, merged deterministically (in worker-id
   order) after the parallel loop *)
type worker = {
  counters : Counters.t;
  metrics : Dt_obs.Metrics.t option;
  spans : Dt_obs.Span.t option;
}

(* minimum number of reference pairs before [run] fans out to worker
   domains; below this the spawn cost exceeds the testing work *)
let min_parallel_sites = 256

let run (cfg : Config.t) prog =
  let {
    Config.strategy;
    include_inputs;
    assume;
    jobs;
    cache;
    metrics;
    sink;
    profiler;
    budget = fuel;
    deadline_ms;
  } =
    cfg
  in
  (* the deadline is absolute: fixed before any pair runs, checked at
     each pair's start. [deadline_ms = 0] therefore degrades every pair
     deterministically — the harness relies on that. *)
  let deadline_ns =
    Option.map
      (fun ms ->
        Int64.add (Dt_obs.Clock.now_ns ())
          (Int64.mul (Int64.of_int ms) 1_000_000L))
      deadline_ms
  in
  let past_deadline () =
    match deadline_ns with
    | Some d -> Int64.compare (Dt_obs.Clock.now_ns ()) d >= 0
    | None -> false
  in
  (* worker 0 runs in the calling domain, so the analysis-level brackets
     and worker 0's per-pair spans share buffer 0 and nest naturally *)
  let main_buf = Option.map (fun p -> Dt_obs.Span.buffer p ~domain:0) profiler in
  Dt_obs.Span.with_ main_buf Dt_obs.Span.Analyze @@ fun () ->
  let sites =
    Dt_obs.Span.with_ main_buf Dt_obs.Span.Enumerate (fun () ->
        sites ~include_inputs prog)
  in
  let n = Array.length sites in
  (* a trace is an ordered narrative: a sink forces the sequential path.
     In auto mode (jobs = 0) the engine also stays sequential below the
     grain threshold: a Domain spawn+join costs ~1ms while a typical
     reference pair tests in ~10us, so small nests lose badly from
     fanning out. An explicit jobs count is honored literally (tests
     rely on that to drive the multi-domain path on small programs).
     The result is identical either way — only the wall clock changes. *)
  let jobs =
    if sink <> None then 1
    else if jobs = 0 && n < min_parallel_sites then 1
    else jobs
  in
  let results = Array.make n None in
  (* the assume facts are index-free and shared by every pair: render the
     cache-key digest once (eagerly — it is read from every domain) *)
  let facts =
    match cache with
    | Some _ -> Dt_engine.Key.facts_digest (Assume.facts assume)
    | None -> ""
  in
  let tag = strategy_tag strategy in
  let emit ev =
    match sink with Some sk -> Dt_obs.Trace.emit sk ev | None -> ()
  in
  let scoped f =
    match sink with Some sk -> Dt_obs.Trace.scope sk f | None -> f ()
  in
  let test_site (w : worker) i =
    let { left = (a1 : Stmt.access), loops1; right = (a2 : Stmt.access), loops2; _ }
        =
      sites.(i)
    in
    emit
      (Dt_obs.Trace.Pair_start
         {
           array = a1.Stmt.aref.Aref.base;
           src_stmt = a1.Stmt.stmt.Stmt.id;
           snk_stmt = a2.Stmt.stmt.Stmt.id;
         });
    if past_deadline () then begin
      (* over the wall-clock cap: the pair is not tested at all, only
         widened. Never cached — a later run with more time must retest. *)
      let r =
        Pair_test.degraded_result
          ~src:(a1.Stmt.aref, loops1)
          ~snk:(a2.Stmt.aref, loops2)
          Dt_guard.Degrade.Budget
      in
      (match w.metrics with
      | Some m -> Dt_obs.Metrics.degraded m `Budget
      | None -> ());
      emit (Dt_obs.Trace.Note "analysis deadline passed: pair degraded");
      results.(i) <- Some r
    end
    else begin
    let budget = Option.map Dt_guard.Budget.make fuel in
    let t0 =
      match w.metrics with Some _ -> Dt_obs.Metrics.now_ns () | None -> 0L
    in
    let r =
      Dt_obs.Span.with_ w.spans Dt_obs.Span.Pair @@ fun () ->
      scoped (fun () ->
          let r =
            match cache with
            | None ->
                Pair_test.test ~counters:w.counters ?metrics:w.metrics ?sink
                  ?spans:w.spans ?budget ~strategy ~assume
                  ~src:(a1.Stmt.aref, loops1)
                  ~snk:(a2.Stmt.aref, loops2)
                  ()
            | Some c -> (
                let key =
                  Dt_engine.Key.make
                    ~src:(a1.Stmt.aref, loops1)
                    ~snk:(a2.Stmt.aref, loops2)
                    ~facts ~tag
                in
                match Pair_cache.find c key ~counters:w.counters with
                | Some r ->
                    (match w.metrics with
                    | Some m -> Dt_obs.Metrics.cache_hit m
                    | None -> ());
                    emit
                      (Dt_obs.Trace.Note
                         "verdict from the structural memo cache (run with \
                          the cache off for the full test trace)");
                    r
                | None ->
                    (match w.metrics with
                    | Some m -> Dt_obs.Metrics.cache_miss m
                    | None -> ());
                    (* run against a fresh accumulator so the increments
                       can be stored and replayed on later hits *)
                    let local = Counters.create () in
                    let r =
                      Pair_test.test ~counters:local ?metrics:w.metrics ?sink
                        ?spans:w.spans ?budget ~strategy ~assume
                        ~src:(a1.Stmt.aref, loops1)
                        ~snk:(a2.Stmt.aref, loops2)
                        ()
                    in
                    (* a degraded verdict reflects a fault or a spent
                       budget, not the pair's shape: never memoize it *)
                    if r.Pair_test.meta.Pair_test.degraded = None then
                      Pair_cache.store c key ~counters:local r;
                    Counters.merge_into w.counters local;
                    r)
          in
          (if sink <> None then
             let independent = r.Pair_test.result = `Independent in
             let reason =
               match
                 (r.Pair_test.result, r.Pair_test.meta.Pair_test.proved_by)
               with
               | `Independent, Some k -> "proved by " ^ Counters.kind_name k
               | `Independent, None ->
                   "no consistent direction vector across subscript \
                    partitions"
               | `Dependent { Pair_test.dirvecs; _ }, _ ->
                   Format.asprintf "%d direction vector(s):%t"
                     (List.length dirvecs) (fun ppf ->
                       List.iter
                         (fun v -> Format.fprintf ppf " %a" Dirvec.pp v)
                         dirvecs)
             in
             emit (Dt_obs.Trace.Verdict { independent; reason }));
          r)
    in
    (match w.metrics with
    | Some m ->
        Dt_obs.Metrics.observe_pair m
          ~ns:(Int64.sub (Dt_obs.Metrics.now_ns ()) t0)
    | None -> ());
    results.(i) <- Some r
    end
  in
  (* engine-level backstop: a task that somehow raises outside
     [Pair_test.test]'s own containment (a fault in the cache or trace
     path, an injected engine fault) is contained per task — the other
     pairs keep running and the faulty pair is widened. *)
  let on_error w i e =
    match e with
    | Out_of_memory -> raise e
    | e ->
        let reason =
          match e with
          | Dt_guard.Ops.Overflow -> Dt_guard.Degrade.Overflow
          | Dt_guard.Budget.Exhausted -> Dt_guard.Degrade.Budget
          | Dt_guard.Inject.Injected site ->
              Dt_guard.Degrade.Exception ("injected fault at " ^ site)
          | e -> Dt_guard.Degrade.Exception (Printexc.to_string e)
        in
        let { left = (a1 : Stmt.access), loops1;
              right = (a2 : Stmt.access), loops2;
              _ } =
          sites.(i)
        in
        let r =
          Pair_test.degraded_result
            ~src:(a1.Stmt.aref, loops1)
            ~snk:(a2.Stmt.aref, loops2)
            reason
        in
        (match w.metrics with
        | Some m -> Dt_obs.Metrics.degraded m (Dt_guard.Degrade.tag reason)
        | None -> ());
        results.(i) <- Some r
  in
  (* mirror [Pool.parallel_for]'s worker-count resolution so the states
     (and their span buffers / engine registries) can be created eagerly,
     before the domains spawn — [Span.buffer] takes the profiler lock,
     which must not happen concurrently with buffer lookups *)
  let njobs =
    if n = 0 then 0
    else begin
      let j = if jobs <= 0 then Dt_support.Pool.recommended_jobs () else jobs in
      let j = min j n in
      if j <= 1 then 1 else j
    end
  in
  let wres =
    Array.init njobs (fun w ->
        let wm = Option.map (fun _ -> Dt_obs.Metrics.create ()) metrics in
        (match wm with
        | Some m -> Dt_obs.Metrics.engine_registry m
        | None -> ());
        {
          counters = Counters.create ();
          metrics = wm;
          spans = Option.map (fun p -> Dt_obs.Span.buffer p ~domain:w) profiler;
        })
  in
  let probe =
    if njobs = 0 || (metrics = None && profiler = None) then None
    else begin
      (* each worker touches only its own slots: safe across domains *)
      let wait_t0 = Array.make njobs 0L in
      let task_t0 = Array.make njobs 0L in
      let worker_slot = Array.make njobs (-1) in
      let wait_slot = Array.make njobs (-1) in
      let task_slot = Array.make njobs (-1) in
      let enter w slots k =
        match wres.(w).spans with
        | Some b -> slots.(w) <- Dt_obs.Span.enter b k
        | None -> ()
      in
      let exit_ w slots =
        match wres.(w).spans with
        | Some b when slots.(w) >= 0 ->
            Dt_obs.Span.exit_ b slots.(w);
            slots.(w) <- -1
        | _ -> ()
      in
      Some
        {
          Dt_support.Pool.worker_start =
            (fun w -> enter w worker_slot Dt_obs.Span.Worker);
          worker_stop = (fun w -> exit_ w worker_slot);
          wait_start =
            (fun w ->
              wait_t0.(w) <- Dt_obs.Clock.now_ns ();
              enter w wait_slot Dt_obs.Span.Queue_wait);
          wait_stop =
            (fun w ->
              exit_ w wait_slot;
              match wres.(w).metrics with
              | Some m ->
                  Dt_obs.Metrics.engine_wait m ~domain:w
                    ~ns:(Int64.sub (Dt_obs.Clock.now_ns ()) wait_t0.(w))
              | None -> ());
          task_start =
            (fun w ->
              task_t0.(w) <- Dt_obs.Clock.now_ns ();
              enter w task_slot Dt_obs.Span.Task);
          task_stop =
            (fun w ->
              exit_ w task_slot;
              match wres.(w).metrics with
              | Some m ->
                  Dt_obs.Metrics.engine_task m ~domain:w
                    ~ns:(Int64.sub (Dt_obs.Clock.now_ns ()) task_t0.(w))
              | None -> ());
        }
    end
  in
  let workers =
    Dt_obs.Span.with_ main_buf Dt_obs.Span.Test_phase (fun () ->
        Dt_support.Pool.parallel_for ~jobs ~n ?probe ~on_error
          ~state:(fun w -> wres.(w))
          ~body:test_site ())
  in
  let counters = Counters.create () in
  List.iter
    (fun w ->
      Counters.merge_into counters w.counters;
      match (metrics, w.metrics) with
      | Some m, Some wm -> Dt_obs.Metrics.merge_into m wm
      | _ -> ())
    workers;
  (* cache growth snapshot — the table is shared by all workers, so this
     is taken once after the merge, not per worker registry *)
  (match (metrics, cache) with
  | Some m, Some c ->
      Dt_obs.Metrics.set_cache_usage m ~size:(Pair_cache.length c)
        ~evictions:(Pair_cache.evictions c)
  | _ -> ());
  (* sequential orientation pass, in enumeration order: bit-identical to
     the historical sequential driver at every jobs setting *)
  let deps = ref [] and pairs = ref [] in
  let emit_dep ~src ~snk ~array ~dirvec ~level ~distances =
    let (a1 : Stmt.access), _ = src and (a2 : Stmt.access), _ = snk in
    deps :=
      {
        Dep.src_stmt = a1.Stmt.stmt.Stmt.id;
        snk_stmt = a2.Stmt.stmt.Stmt.id;
        array;
        kind = kind_of a1.Stmt.kind a2.Stmt.kind;
        dirvec;
        level;
        distances;
      }
      :: !deps
  in
  Dt_obs.Span.with_ main_buf Dt_obs.Span.Orient @@ fun () ->
  Array.iteri
    (fun i site ->
      let ((a1 : Stmt.access), _) = site.left
      and ((a2 : Stmt.access), _) = site.right in
      let array = a1.Stmt.aref.Aref.base in
      let r = Option.get results.(i) in
      pairs :=
        {
          array;
          src_stmt = a1.Stmt.stmt.Stmt.id;
          snk_stmt = a2.Stmt.stmt.Stmt.id;
          meta = r.Pair_test.meta;
          independent = r.Pair_test.result = `Independent;
        }
        :: !pairs;
      match r.Pair_test.result with
      | `Independent -> ()
      | `Dependent { Pair_test.dirvecs; distances } ->
          let same_access = site.same_ref in
          let id1 = a1.Stmt.stmt.Stmt.id and id2 = a2.Stmt.stmt.Stmt.id in
          let parts =
            Dt_support.Listx.dedup ~compare:Stdlib.compare
              (List.concat_map decompose dirvecs)
          in
          List.iter
            (fun (level, v, orient) ->
              match (level, orient) with
              | None, `Forward ->
                  (* loop-independent: source is the textually earlier
                     access; within one statement reads precede the
                     write. *)
                  if same_access then ()
                  else if id1 < id2 then
                    emit_dep ~src:site.left ~snk:site.right ~array ~dirvec:v
                      ~level:None ~distances
                  else if id1 > id2 then
                    emit_dep ~src:site.right ~snk:site.left ~array ~dirvec:v
                      ~level:None
                      ~distances:(List.map (fun (ix, d) -> (ix, neg_dist d)) distances)
                  else begin
                    (* same statement: read executes before write *)
                    match (a1.Stmt.kind, a2.Stmt.kind) with
                    | `Read, `Write ->
                        emit_dep ~src:site.left ~snk:site.right ~array
                          ~dirvec:v ~level:None ~distances
                    | `Write, `Read ->
                        emit_dep ~src:site.right ~snk:site.left ~array
                          ~dirvec:v ~level:None
                          ~distances:
                            (List.map (fun (ix, d) -> (ix, neg_dist d)) distances)
                    | _ -> ()
                  end
              | Some k, `Forward ->
                  emit_dep ~src:site.left ~snk:site.right ~array ~dirvec:v
                    ~level:(Some k) ~distances
              | Some k, `Backward ->
                  emit_dep ~src:site.right ~snk:site.left ~array
                    ~dirvec:(Dirvec.negate v) ~level:(Some k)
                    ~distances:(List.map (fun (ix, d) -> (ix, neg_dist d)) distances)
              | None, `Backward -> assert false)
            parts)
    sites;
  { deps = List.rev !deps; pairs = List.rev !pairs; counters }

(* ------------------------------------------------------------------ *)
(* deprecated pre-Config surface: thin wrappers, sequential, no cache  *)

type options = {
  strategy : Pair_test.strategy;
  include_inputs : bool;
  assume : Assume.t;
}

let default_options =
  {
    strategy = Pair_test.Partition_based;
    include_inputs = false;
    assume = Assume.empty;
  }

let config_of_options { strategy; include_inputs; assume } ?metrics ?sink () =
  {
    Config.strategy;
    include_inputs;
    assume;
    jobs = 1;
    cache = None;
    metrics;
    sink;
    profiler = None;
    budget = None;
    deadline_ms = None;
  }

let program ?(options = default_options) ?metrics ?sink prog =
  run (config_of_options options ?metrics ?sink ()) prog

let deps_of ?options prog = (program ?options prog).deps
