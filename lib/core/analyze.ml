open Dt_ir

type options = {
  strategy : Pair_test.strategy;
  include_inputs : bool;
  assume : Assume.t;
}

let default_options =
  {
    strategy = Pair_test.Partition_based;
    include_inputs = false;
    assume = Assume.empty;
  }

type pair_record = {
  array : string;
  src_stmt : int;
  snk_stmt : int;
  meta : Pair_test.meta;
  independent : bool;
}

type result = {
  deps : Dep.t list;
  pairs : pair_record list;
  counters : Counters.t;
}

let decompose (v : Dirvec.t) =
  let n = Array.length v in
  let out = ref [] in
  let rec go k =
    if k = n then out := (None, Array.map (fun _ -> Direction.single Eq) v, `Forward) :: !out
    else begin
      (if Direction.mem Lt v.(k) then
         let w = Array.copy v in
         for j = 0 to k - 1 do
           w.(j) <- Direction.single Eq
         done;
         w.(k) <- Direction.single Lt;
         out := (Some (k + 1), w, `Forward) :: !out);
      (if Direction.mem Gt v.(k) then
         let w = Array.copy v in
         for j = 0 to k - 1 do
           w.(j) <- Direction.single Eq
         done;
         w.(k) <- Direction.single Gt;
         out := (Some (k + 1), w, `Backward) :: !out);
      if Direction.mem Eq v.(k) then go (k + 1)
    end
  in
  go 0;
  List.rev !out

let kind_of src_kind snk_kind =
  match (src_kind, snk_kind) with
  | `Write, `Read -> Dep.Flow
  | `Read, `Write -> Dep.Anti
  | `Write, `Write -> Dep.Output
  | `Read, `Read -> Dep.Input

let neg_dist = function
  | Outcome.Const d -> Outcome.Const (-d)
  | Outcome.Sym e -> Outcome.Sym (Affine.neg e)
  | Outcome.Unknown -> Outcome.Unknown

let program ?(options = default_options) ?metrics ?sink prog =
  let counters = Counters.create () in
  let emit ev =
    match sink with Some sk -> Dt_obs.Trace.emit sk ev | None -> ()
  in
  let scoped f =
    match sink with Some sk -> Dt_obs.Trace.scope sk f | None -> f ()
  in
  let accesses =
    List.concat_map
      (fun (s, loops) ->
        List.map (fun a -> (a, loops)) (Stmt.accesses s))
      (Nest.stmts_with_loops prog)
  in
  let accesses = Array.of_list accesses in
  let deps = ref [] and pairs = ref [] in
  let emit_dep ~src ~snk ~array ~dirvec ~level ~distances =
    let (a1 : Stmt.access), _ = src and (a2 : Stmt.access), _ = snk in
    deps :=
      {
        Dep.src_stmt = a1.Stmt.stmt.Stmt.id;
        snk_stmt = a2.Stmt.stmt.Stmt.id;
        array;
        kind = kind_of a1.Stmt.kind a2.Stmt.kind;
        dirvec;
        level;
        distances;
      }
      :: !deps
  in
  let test_pair i j =
    let ((a1 : Stmt.access), loops1) = accesses.(i)
    and ((a2 : Stmt.access), loops2) = accesses.(j) in
    if a1.Stmt.aref.Aref.base <> a2.Stmt.aref.Aref.base then ()
    else if
      (not options.include_inputs)
      && a1.Stmt.kind = `Read
      && a2.Stmt.kind = `Read
    then ()
    else begin
      let array = a1.Stmt.aref.Aref.base in
      emit
        (Dt_obs.Trace.Pair_start
           {
             array;
             src_stmt = a1.Stmt.stmt.Stmt.id;
             snk_stmt = a2.Stmt.stmt.Stmt.id;
           });
      let t0 =
        match metrics with Some _ -> Dt_obs.Metrics.now_ns () | None -> 0L
      in
      let r =
        scoped (fun () ->
            let r =
              Pair_test.test ~counters ?metrics ?sink
                ~strategy:options.strategy ~assume:options.assume
                ~src:(a1.Stmt.aref, loops1)
                ~snk:(a2.Stmt.aref, loops2)
                ()
            in
            (if sink <> None then
               let independent = r.Pair_test.result = `Independent in
               let reason =
                 match
                   (r.Pair_test.result, r.Pair_test.meta.Pair_test.proved_by)
                 with
                 | `Independent, Some k -> "proved by " ^ Counters.kind_name k
                 | `Independent, None ->
                     "no consistent direction vector across subscript \
                      partitions"
                 | `Dependent { Pair_test.dirvecs; _ }, _ ->
                     Format.asprintf "%d direction vector(s):%t"
                       (List.length dirvecs) (fun ppf ->
                         List.iter
                           (fun v -> Format.fprintf ppf " %a" Dirvec.pp v)
                           dirvecs)
               in
               emit (Dt_obs.Trace.Verdict { independent; reason }));
            r)
      in
      (match metrics with
      | Some m ->
          Dt_obs.Metrics.observe_pair m
            ~ns:(Int64.sub (Dt_obs.Metrics.now_ns ()) t0)
      | None -> ());
      pairs :=
        {
          array;
          src_stmt = a1.Stmt.stmt.Stmt.id;
          snk_stmt = a2.Stmt.stmt.Stmt.id;
          meta = r.Pair_test.meta;
          independent = r.Pair_test.result = `Independent;
        }
        :: !pairs;
      match r.Pair_test.result with
      | `Independent -> ()
      | `Dependent { Pair_test.dirvecs; distances } ->
          let same_access = i = j in
          let id1 = a1.Stmt.stmt.Stmt.id and id2 = a2.Stmt.stmt.Stmt.id in
          let parts =
            Dt_support.Listx.dedup ~compare:Stdlib.compare
              (List.concat_map decompose dirvecs)
          in
          List.iter
            (fun (level, v, orient) ->
              match (level, orient) with
              | None, `Forward ->
                  (* loop-independent: source is the textually earlier
                     access; within one statement reads precede the
                     write. *)
                  if same_access then ()
                  else if id1 < id2 then
                    emit_dep ~src:accesses.(i) ~snk:accesses.(j) ~array
                      ~dirvec:v ~level:None ~distances
                  else if id1 > id2 then
                    emit_dep ~src:accesses.(j) ~snk:accesses.(i) ~array
                      ~dirvec:v ~level:None
                      ~distances:(List.map (fun (ix, d) -> (ix, neg_dist d)) distances)
                  else begin
                    (* same statement: read executes before write *)
                    match (a1.Stmt.kind, a2.Stmt.kind) with
                    | `Read, `Write ->
                        emit_dep ~src:accesses.(i) ~snk:accesses.(j) ~array
                          ~dirvec:v ~level:None ~distances
                    | `Write, `Read ->
                        emit_dep ~src:accesses.(j) ~snk:accesses.(i) ~array
                          ~dirvec:v ~level:None
                          ~distances:
                            (List.map (fun (ix, d) -> (ix, neg_dist d)) distances)
                    | _ -> ()
                  end
              | Some k, `Forward ->
                  emit_dep ~src:accesses.(i) ~snk:accesses.(j) ~array
                    ~dirvec:v ~level:(Some k) ~distances
              | Some k, `Backward ->
                  emit_dep ~src:accesses.(j) ~snk:accesses.(i) ~array
                    ~dirvec:(Dirvec.negate v) ~level:(Some k)
                    ~distances:(List.map (fun (ix, d) -> (ix, neg_dist d)) distances)
              | None, `Backward -> assert false)
            parts
    end
  in
  let n = Array.length accesses in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      test_pair i j
    done
  done;
  { deps = List.rev !deps; pairs = List.rev !pairs; counters }

let deps_of ?options prog = (program ?options prog).deps
