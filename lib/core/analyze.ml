open Dt_ir

(* ------------------------------------------------------------------ *)
(* configuration                                                       *)

module Config = struct
  type t = {
    strategy : Pair_test.strategy;
    include_inputs : bool;
    assume : Assume.t;
    jobs : int;  (* 0 = auto *)
    grain : int;  (* splitting leaf size, 0 = auto *)
    dispatch : Banerjee.dispatch;
    cache : Pair_cache.t option;
    metrics : Dt_obs.Metrics.t option;
    sink : Dt_obs.Trace.sink option;
    profiler : Dt_obs.Span.profiler option;
    budget : int option;  (* per-pair fuel, Banerjee nodes *)
    deadline_ms : int option;  (* wall-clock cap for the whole analysis *)
  }

  let make ?(strategy = Pair_test.Partition_based) ?(include_inputs = false)
      ?(assume = Assume.empty) ?(jobs = 0) ?(grain = 0)
      ?(dispatch = Banerjee.Auto) ?(cache = true) ?cache_capacity ?disk
      ?metrics ?sink ?profiler ?budget ?deadline_ms () =
    {
      strategy;
      include_inputs;
      assume;
      jobs;
      grain;
      dispatch;
      cache =
        (if cache then
           Some (Pair_cache.create ?capacity:cache_capacity ?disk ())
         else None);
      metrics;
      sink;
      profiler;
      budget;
      deadline_ms;
    }

  let default = make ()
  let with_strategy strategy t = { t with strategy }
  let with_include_inputs include_inputs t = { t with include_inputs }
  let with_assume assume t = { t with assume }
  let with_jobs jobs t = { t with jobs }
  let with_grain grain t = { t with grain }
  let with_dispatch dispatch t = { t with dispatch }

  let with_cache on t =
    { t with cache = (if on then Some (Pair_cache.create ()) else None) }

  let with_metrics metrics t = { t with metrics }
  let with_sink sink t = { t with sink }
  let with_profiler profiler t = { t with profiler }
  let with_budget budget t = { t with budget }
  let with_deadline_ms deadline_ms t = { t with deadline_ms }
  let profiler t = t.profiler
  let strategy t = t.strategy
  let include_inputs t = t.include_inputs
  let assume t = t.assume
  let jobs t = t.jobs
  let grain t = t.grain
  let dispatch t = t.dispatch
  let budget t = t.budget
  let deadline_ms t = t.deadline_ms
  let cache_enabled t = t.cache <> None

  let cache_stats t =
    Option.map (fun c -> (Pair_cache.hits c, Pair_cache.misses c)) t.cache

  let cache_usage t =
    Option.map (fun c -> (Pair_cache.length c, Pair_cache.evictions c)) t.cache

  let cache_hit_rate t = Option.map Pair_cache.hit_rate t.cache
end

type pair_record = {
  array : string;
  src_stmt : int;
  snk_stmt : int;
  meta : Pair_test.meta;
  independent : bool;
}

type result = {
  deps : Dep.t list;
  pairs : pair_record list;
  counters : Counters.t;
}

(* ------------------------------------------------------------------ *)
(* direction-vector decomposition and orientation helpers              *)

let decompose (v : Dirvec.t) =
  let n = Array.length v in
  let out = ref [] in
  let rec go k =
    if k = n then out := (None, Array.map (fun _ -> Direction.single Eq) v, `Forward) :: !out
    else begin
      (if Direction.mem Lt v.(k) then
         let w = Array.copy v in
         for j = 0 to k - 1 do
           w.(j) <- Direction.single Eq
         done;
         w.(k) <- Direction.single Lt;
         out := (Some (k + 1), w, `Forward) :: !out);
      (if Direction.mem Gt v.(k) then
         let w = Array.copy v in
         for j = 0 to k - 1 do
           w.(j) <- Direction.single Eq
         done;
         w.(k) <- Direction.single Gt;
         out := (Some (k + 1), w, `Backward) :: !out);
      if Direction.mem Eq v.(k) then go (k + 1)
    end
  in
  go 0;
  List.rev !out

let kind_of src_kind snk_kind =
  match (src_kind, snk_kind) with
  | `Write, `Read -> Dep.Flow
  | `Read, `Write -> Dep.Anti
  | `Write, `Write -> Dep.Output
  | `Read, `Read -> Dep.Input

let neg_dist = function
  | Outcome.Const d -> Outcome.Const (-d)
  | Outcome.Sym e -> Outcome.Sym (Affine.neg e)
  | Outcome.Unknown -> Outcome.Unknown

(* ------------------------------------------------------------------ *)
(* pair enumeration, split from testing                                *)

type site = {
  left : Stmt.access * Loop.t list;
  right : Stmt.access * Loop.t list;
  same_ref : bool;
}

let sites ?(include_inputs = false) prog =
  let accesses =
    List.concat_map
      (fun (s, loops) ->
        List.map (fun a -> (a, loops)) (Stmt.accesses s))
      (Nest.stmts_with_loops prog)
  in
  let accesses = Array.of_list accesses in
  let n = Array.length accesses in
  let out = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i do
      let ((a1 : Stmt.access), _) = accesses.(i)
      and ((a2 : Stmt.access), _) = accesses.(j) in
      if
        a1.Stmt.aref.Aref.base = a2.Stmt.aref.Aref.base
        && (include_inputs
           || not (a1.Stmt.kind = `Read && a2.Stmt.kind = `Read))
      then
        out :=
          { left = accesses.(i); right = accesses.(j); same_ref = i = j }
          :: !out
    done
  done;
  Array.of_list !out

(* ------------------------------------------------------------------ *)
(* the engine: test every site (in parallel, through the cache), then
   orient the per-pair direction vectors sequentially                  *)

let strategy_tag = function
  | Pair_test.Partition_based -> "P"
  | Pair_test.Subscript_by_subscript -> "S"

(* per-worker accumulators, merged deterministically (in worker-id
   order) after the parallel loop; [scratch] is the worker's Banerjee
   arena — reused across every pair the worker tests, never shared *)
type worker = {
  counters : Counters.t;
  metrics : Dt_obs.Metrics.t option;
  spans : Dt_obs.Span.t option;
  scratch : Banerjee.Scratch.t;
}

(* minimum number of reference pairs before [run] fans out to worker
   domains; below this the spawn cost exceeds the testing work *)
let min_parallel_sites = 256

(* minimum number of routines before [run_all] shards the batch across
   domains in auto mode — a Domain spawn costs about as much as testing
   a small routine *)
let min_parallel_routines = 8

let deadline_of deadline_ms =
  (* the deadline is absolute: fixed before any pair runs, checked at
     each pair's start. [deadline_ms = 0] therefore degrades every pair
     deterministically — the harness relies on that. *)
  Option.map
    (fun ms ->
      Int64.add (Dt_obs.Clock.now_ns ())
        (Int64.mul (Int64.of_int ms) 1_000_000L))
    deadline_ms

(* the per-site testing context: everything [test_one] needs that is
   fixed for a whole [run] / [run_all] call *)
type tctx = {
  cstrategy : Pair_test.strategy;
  cassume : Assume.t;
  ccache : Pair_cache.t option;
  cfacts : string;  (* assume-facts digest of the cache key, "" if no cache *)
  ctag : string;
  cfuel : int option;
  cdispatch : Banerjee.dispatch;
  csink : Dt_obs.Trace.sink option;
  cdeadline : int64 option;
}

let ctx_of (cfg : Config.t) ~deadline_ns =
  {
    cstrategy = cfg.Config.strategy;
    cassume = cfg.Config.assume;
    ccache = cfg.Config.cache;
    (* the assume facts are index-free and shared by every pair: render
       the cache-key digest once (eagerly — it is read from every
       domain) *)
    cfacts =
      (match cfg.Config.cache with
      | Some _ ->
          Dt_engine.Key.facts_digest (Assume.facts cfg.Config.assume)
      | None -> "");
    ctag = strategy_tag cfg.Config.strategy;
    cfuel = cfg.Config.budget;
    cdispatch = cfg.Config.dispatch;
    csink = cfg.Config.sink;
    cdeadline = deadline_ns;
  }

let past_deadline ctx =
  match ctx.cdeadline with
  | Some d -> Int64.compare (Dt_obs.Clock.now_ns ()) d >= 0
  | None -> false

let degrade_reason = function
  | Dt_guard.Ops.Overflow -> Dt_guard.Degrade.Overflow
  | Dt_guard.Budget.Exhausted -> Dt_guard.Degrade.Budget
  | Dt_guard.Inject.Injected site ->
      Dt_guard.Degrade.Exception ("injected fault at " ^ site)
  | e -> Dt_guard.Degrade.Exception (Printexc.to_string e)

(* the conservative substitute for a site whose task failed (or was cut
   off) outside [Pair_test.test]'s own containment *)
let widen_site ?metrics site reason =
  let { left = (a1 : Stmt.access), loops1;
        right = (a2 : Stmt.access), loops2;
        _ } =
    site
  in
  let r =
    Pair_test.degraded_result
      ~src:(a1.Stmt.aref, loops1)
      ~snk:(a2.Stmt.aref, loops2)
      reason
  in
  (match metrics with
  | Some m -> Dt_obs.Metrics.degraded m (Dt_guard.Degrade.tag reason)
  | None -> ());
  r

(* test one reference pair on worker [w], accumulating §6 counts into
   [counters] ([w.counters] for a per-site run; a per-routine
   accumulator under [run_all]'s sharding, where one worker analyzes
   many routines) *)
let test_one ctx (w : worker) ~counters site =
  let { left = (a1 : Stmt.access), loops1;
        right = (a2 : Stmt.access), loops2;
        _ } =
    site
  in
  let emit ev =
    match ctx.csink with Some sk -> Dt_obs.Trace.emit sk ev | None -> ()
  in
  let scoped f =
    match ctx.csink with Some sk -> Dt_obs.Trace.scope sk f | None -> f ()
  in
  emit
    (Dt_obs.Trace.Pair_start
       {
         array = a1.Stmt.aref.Aref.base;
         src_stmt = a1.Stmt.stmt.Stmt.id;
         snk_stmt = a2.Stmt.stmt.Stmt.id;
       });
  if past_deadline ctx then begin
    (* over the wall-clock cap: the pair is not tested at all, only
       widened. Never cached — a later run with more time must retest. *)
    emit (Dt_obs.Trace.Note "analysis deadline passed: pair degraded");
    widen_site ?metrics:w.metrics site Dt_guard.Degrade.Budget
  end
  else begin
    let budget = Option.map Dt_guard.Budget.make ctx.cfuel in
    let t0 =
      match w.metrics with Some _ -> Dt_obs.Metrics.now_ns () | None -> 0L
    in
    let r =
      Dt_obs.Span.with_ w.spans Dt_obs.Span.Pair @@ fun () ->
      scoped (fun () ->
          let r =
            match ctx.ccache with
            | None ->
                Pair_test.test ~counters ?metrics:w.metrics ?sink:ctx.csink
                  ?spans:w.spans ?budget ~dispatch:ctx.cdispatch
                  ~scratch:w.scratch ~strategy:ctx.cstrategy
                  ~assume:ctx.cassume
                  ~src:(a1.Stmt.aref, loops1)
                  ~snk:(a2.Stmt.aref, loops2)
                  ()
            | Some c -> (
                let key =
                  Dt_engine.Key.make
                    ~src:(a1.Stmt.aref, loops1)
                    ~snk:(a2.Stmt.aref, loops2)
                    ~facts:ctx.cfacts ~tag:ctx.ctag
                in
                match Pair_cache.find c key ~counters with
                | Some r ->
                    (match w.metrics with
                    | Some m -> Dt_obs.Metrics.cache_hit m
                    | None -> ());
                    emit
                      (Dt_obs.Trace.Note
                         "verdict from the structural memo cache (run with \
                          the cache off for the full test trace)");
                    r
                | None ->
                    (match w.metrics with
                    | Some m -> Dt_obs.Metrics.cache_miss m
                    | None -> ());
                    (* run against a fresh accumulator so the increments
                       can be stored and replayed on later hits *)
                    let local = Counters.create () in
                    let r =
                      Pair_test.test ~counters:local ?metrics:w.metrics
                        ?sink:ctx.csink ?spans:w.spans ?budget
                        ~dispatch:ctx.cdispatch ~scratch:w.scratch
                        ~strategy:ctx.cstrategy ~assume:ctx.cassume
                        ~src:(a1.Stmt.aref, loops1)
                        ~snk:(a2.Stmt.aref, loops2)
                        ()
                    in
                    (* a degraded verdict reflects a fault or a spent
                       budget, not the pair's shape: never memoize it *)
                    if r.Pair_test.meta.Pair_test.degraded = None then
                      Pair_cache.store c key ~counters:local r;
                    Counters.merge_into counters local;
                    r)
          in
          (if ctx.csink <> None then
             let independent = r.Pair_test.result = `Independent in
             let reason =
               match
                 (r.Pair_test.result, r.Pair_test.meta.Pair_test.proved_by)
               with
               | `Independent, Some k -> "proved by " ^ Counters.kind_name k
               | `Independent, None ->
                   "no consistent direction vector across subscript \
                    partitions"
               | `Dependent { Pair_test.dirvecs; _ }, _ ->
                   Format.asprintf "%d direction vector(s):%t"
                     (List.length dirvecs) (fun ppf ->
                       List.iter
                         (fun v -> Format.fprintf ppf " %a" Dirvec.pp v)
                         dirvecs)
             in
             emit (Dt_obs.Trace.Verdict { independent; reason }));
          r)
    in
    (match w.metrics with
    | Some m ->
        Dt_obs.Metrics.observe_pair m
          ~ns:(Int64.sub (Dt_obs.Metrics.now_ns ()) t0)
    | None -> ());
    r
  end

(* per-worker engine instrumentation wired into the pool's probe: span
   brackets and busy / wait / steal attribution, each callback touching
   only the calling worker's own state *)
let make_probe (wres : worker array) ~instrumented =
  if Array.length wres = 0 || not instrumented then Dt_support.Pool.no_probe
  else begin
    let njobs = Array.length wres in
    let wait_t0 = Array.make njobs 0L in
    let task_t0 = Array.make njobs 0L in
    let worker_slot = Array.make njobs (-1) in
    let wait_slot = Array.make njobs (-1) in
    let task_slot = Array.make njobs (-1) in
    let enter w slots k =
      match wres.(w).spans with
      | Some b -> slots.(w) <- Dt_obs.Span.enter b k
      | None -> ()
    in
    let exit_ w slots =
      match wres.(w).spans with
      | Some b when slots.(w) >= 0 ->
          Dt_obs.Span.exit_ b slots.(w);
          slots.(w) <- -1
      | _ -> ()
    in
    {
      Dt_support.Pool.worker_start =
        (fun w -> enter w worker_slot Dt_obs.Span.Worker);
      worker_stop = (fun w -> exit_ w worker_slot);
      wait_start =
        (fun w ->
          wait_t0.(w) <- Dt_obs.Clock.now_ns ();
          enter w wait_slot Dt_obs.Span.Queue_wait);
      wait_stop =
        (fun w ->
          exit_ w wait_slot;
          match wres.(w).metrics with
          | Some m ->
              Dt_obs.Metrics.engine_wait m ~domain:w
                ~ns:(Int64.sub (Dt_obs.Clock.now_ns ()) wait_t0.(w))
          | None -> ());
      task_start =
        (fun w ->
          task_t0.(w) <- Dt_obs.Clock.now_ns ();
          enter w task_slot Dt_obs.Span.Task);
      task_stop =
        (fun w ->
          exit_ w task_slot;
          match wres.(w).metrics with
          | Some m ->
              Dt_obs.Metrics.engine_task m ~domain:w
                ~ns:(Int64.sub (Dt_obs.Clock.now_ns ()) task_t0.(w))
          | None -> ());
      steal =
        (fun ~thief ~victim:_ ->
          (match wres.(thief).metrics with
          | Some m -> Dt_obs.Metrics.engine_steal m ~domain:thief
          | None -> ());
          match wres.(thief).spans with
          | Some b ->
              let t = Dt_obs.Clock.now_ns () in
              Dt_obs.Span.record b Dt_obs.Span.Steal ~t0_ns:t ~t1_ns:t
          | None -> ());
    }
  end

(* one per-worker state per pool slot; each gets its own counters,
   metrics registry (merged afterwards in worker-id order), span buffer
   (domain = worker id) and Banerjee arena *)
let make_workers ~njobs ~metrics ~profiler =
  Array.init njobs (fun w ->
      let wm = Option.map (fun _ -> Dt_obs.Metrics.create ()) metrics in
      (match wm with
      | Some m -> Dt_obs.Metrics.engine_registry m
      | None -> ());
      {
        counters = Counters.create ();
        metrics = wm;
        spans = Option.map (fun p -> Dt_obs.Span.buffer p ~domain:w) profiler;
        scratch = Banerjee.Scratch.create ();
      })

let merge_workers ~metrics workers =
  let counters = Counters.create () in
  List.iter
    (fun w ->
      Counters.merge_into counters w.counters;
      match (metrics, w.metrics) with
      | Some m, Some wm -> Dt_obs.Metrics.merge_into m wm
      | _ -> ())
    workers;
  counters

let snapshot_cache ~metrics ~cache =
  (* the table is shared by all workers, so this is taken once after the
     merge, not per worker registry *)
  match (metrics, cache) with
  | Some m, Some c ->
      Dt_obs.Metrics.set_cache_usage m ~size:(Pair_cache.length c)
        ~evictions:(Pair_cache.evictions c);
      Dt_obs.Metrics.set_disk_cache m ~hits:(Pair_cache.disk_hits c)
        ~misses:(Pair_cache.disk_misses c)
        ~invalid:(Pair_cache.disk_invalid c)
  | _ -> ()

(* sequential orientation pass, in enumeration order: bit-identical to
   the historical sequential driver at every jobs setting *)
let orient ?buf (sites : site array) (results : Pair_test.t option array) =
  let deps = ref [] and pairs = ref [] in
  let emit_dep ~src ~snk ~array ~dirvec ~level ~distances =
    let (a1 : Stmt.access), _ = src and (a2 : Stmt.access), _ = snk in
    deps :=
      {
        Dep.src_stmt = a1.Stmt.stmt.Stmt.id;
        snk_stmt = a2.Stmt.stmt.Stmt.id;
        array;
        kind = kind_of a1.Stmt.kind a2.Stmt.kind;
        dirvec;
        level;
        distances;
      }
      :: !deps
  in
  Dt_obs.Span.with_ buf Dt_obs.Span.Orient (fun () ->
      Array.iteri
        (fun i site ->
          let ((a1 : Stmt.access), _) = site.left
          and ((a2 : Stmt.access), _) = site.right in
          let array = a1.Stmt.aref.Aref.base in
          let r = Option.get results.(i) in
          pairs :=
            {
              array;
              src_stmt = a1.Stmt.stmt.Stmt.id;
              snk_stmt = a2.Stmt.stmt.Stmt.id;
              meta = r.Pair_test.meta;
              independent = r.Pair_test.result = `Independent;
            }
            :: !pairs;
          match r.Pair_test.result with
          | `Independent -> ()
          | `Dependent { Pair_test.dirvecs; distances } ->
              let same_access = site.same_ref in
              let id1 = a1.Stmt.stmt.Stmt.id
              and id2 = a2.Stmt.stmt.Stmt.id in
              let parts =
                Dt_support.Listx.dedup ~compare:Stdlib.compare
                  (List.concat_map decompose dirvecs)
              in
              List.iter
                (fun (level, v, orient) ->
                  match (level, orient) with
                  | None, `Forward ->
                      (* loop-independent: source is the textually earlier
                         access; within one statement reads precede the
                         write. *)
                      if same_access then ()
                      else if id1 < id2 then
                        emit_dep ~src:site.left ~snk:site.right ~array
                          ~dirvec:v ~level:None ~distances
                      else if id1 > id2 then
                        emit_dep ~src:site.right ~snk:site.left ~array
                          ~dirvec:v ~level:None
                          ~distances:(List.map (fun (ix, d) -> (ix, neg_dist d)) distances)
                      else begin
                        (* same statement: read executes before write *)
                        match (a1.Stmt.kind, a2.Stmt.kind) with
                        | `Read, `Write ->
                            emit_dep ~src:site.left ~snk:site.right ~array
                              ~dirvec:v ~level:None ~distances
                        | `Write, `Read ->
                            emit_dep ~src:site.right ~snk:site.left ~array
                              ~dirvec:v ~level:None
                              ~distances:
                                (List.map (fun (ix, d) -> (ix, neg_dist d)) distances)
                        | _ -> ()
                      end
                  | Some k, `Forward ->
                      emit_dep ~src:site.left ~snk:site.right ~array
                        ~dirvec:v ~level:(Some k) ~distances
                  | Some k, `Backward ->
                      emit_dep ~src:site.right ~snk:site.left ~array
                        ~dirvec:(Dirvec.negate v) ~level:(Some k)
                        ~distances:(List.map (fun (ix, d) -> (ix, neg_dist d)) distances)
                  | None, `Backward -> assert false)
                parts)
        sites);
  { deps = List.rev !deps; pairs = List.rev !pairs; counters = Counters.create () }

let run (cfg : Config.t) prog =
  let { Config.include_inputs; jobs; grain; cache; metrics; sink; profiler;
        deadline_ms; _ } =
    cfg
  in
  let deadline_ns = deadline_of deadline_ms in
  (* worker 0 runs in the calling domain, so the analysis-level brackets
     and worker 0's per-pair spans share buffer 0 and nest naturally *)
  let main_buf = Option.map (fun p -> Dt_obs.Span.buffer p ~domain:0) profiler in
  Dt_obs.Span.with_ main_buf Dt_obs.Span.Analyze @@ fun () ->
  let sites =
    Dt_obs.Span.with_ main_buf Dt_obs.Span.Enumerate (fun () ->
        sites ~include_inputs prog)
  in
  let n = Array.length sites in
  (* a trace is an ordered narrative: a sink forces the sequential path.
     In auto mode (jobs = 0) the engine also stays sequential below the
     grain threshold: a Domain spawn+join costs ~1ms while a typical
     reference pair tests in ~10us, so small nests lose badly from
     fanning out. An explicit jobs count is honored literally (tests
     rely on that to drive the multi-domain path on small programs).
     The result is identical either way — only the wall clock changes. *)
  let jobs =
    if sink <> None then 1
    else if jobs = 0 && n < min_parallel_sites then 1
    else jobs
  in
  let results = Array.make n None in
  let ctx = ctx_of cfg ~deadline_ns in
  (* mirror [Pool.run]'s worker-count resolution so the states (and
     their span buffers / engine registries) can be created eagerly,
     before the domains spawn — [Span.buffer] takes the profiler lock,
     which must not happen concurrently with buffer lookups *)
  let pjobs =
    if jobs <= 0 then Dt_support.Pool.recommended_jobs () else jobs
  in
  let njobs =
    if n = 0 then 0
    else begin
      let j = min pjobs n in
      if j <= 1 then 1 else j
    end
  in
  let wres = make_workers ~njobs ~metrics ~profiler in
  let probe =
    make_probe wres ~instrumented:(metrics <> None || profiler <> None)
  in
  (* engine-level backstop: a task that somehow raises outside
     [Pair_test.test]'s own containment (a fault in the cache or trace
     path, an injected engine fault) is contained per task — the other
     pairs keep running and the faulty pair is widened. *)
  let on_error (w : worker) i e =
    match e with
    | Out_of_memory -> raise e
    | e ->
        results.(i) <-
          Some (widen_site ?metrics:w.metrics sites.(i) (degrade_reason e))
  in
  let pool =
    Dt_support.Pool.create ~jobs:pjobs ~grain
      ~hooks:(Dt_support.Pool.hooks ~probe ~on_error ())
      ()
  in
  let workers =
    Dt_obs.Span.with_ main_buf Dt_obs.Span.Test_phase (fun () ->
        if n = 0 then []
        else
          Dt_support.Pool.run pool ~n
            ~state:(fun w -> wres.(w))
            ~body:(fun w i ->
              results.(i) <- Some (test_one ctx w ~counters:w.counters sites.(i))))
  in
  let counters = merge_workers ~metrics workers in
  snapshot_cache ~metrics ~cache;
  let r = orient ?buf:main_buf sites results in
  { r with counters }

(* ------------------------------------------------------------------ *)
(* batched analysis: shard a routine corpus across the pool            *)

(* analyze one routine sequentially on worker [w]'s buffers — the body
   of a [run_all] shard. Per-pair containment and enumeration order are
   exactly [run]'s sequential path, so the result is byte-identical to
   [run cfg] on the same routine; only the span/metrics attribution
   (worker [w]'s buffer and registry instead of domain 0's) differs. *)
let analyze_seq ctx (w : worker) ~include_inputs prog =
  let sites = sites ~include_inputs prog in
  let n = Array.length sites in
  let results = Array.make n None in
  let counters = Counters.create () in
  for i = 0 to n - 1 do
    results.(i) <-
      Some
        (match test_one ctx w ~counters sites.(i) with
        | r -> r
        | exception Out_of_memory -> raise Out_of_memory
        | exception e ->
            widen_site ?metrics:w.metrics sites.(i) (degrade_reason e))
  done;
  let r = orient sites results in
  { r with counters }

let run_all (cfg : Config.t) progs =
  let { Config.include_inputs; jobs; grain; cache; metrics; sink; profiler;
        deadline_ms; _ } =
    cfg
  in
  let n = List.length progs in
  (* shard at routine granularity only when there is real fan-out to
     gain: several routines and either an explicit jobs >= 2 or enough
     routines for auto mode to beat the spawn cost. Everything else —
     including a trace sink, whose narrative must stay ordered — falls
     back to analyzing the routines one by one, where each [run] still
     applies its own per-site parallelism policy. *)
  let sharded =
    sink = None && n >= 2
    && (match jobs with
       | 0 -> n >= min_parallel_routines
       | 1 -> false
       | _ -> true)
  in
  if not sharded then List.map (run cfg) progs
  else begin
    let progs = Array.of_list progs in
    (* one deadline for the whole batch (a per-routine [run] re-arms it
       instead); [deadline_ms = 0] still degrades every pair of every
       routine deterministically *)
    let ctx = ctx_of cfg ~deadline_ns:(deadline_of deadline_ms) in
    let pjobs =
      if jobs <= 0 then Dt_support.Pool.recommended_jobs () else jobs
    in
    let njobs =
      let j = min pjobs n in
      if j <= 1 then 1 else j
    in
    let wres = make_workers ~njobs ~metrics ~profiler in
    let probe =
      make_probe wres ~instrumented:(metrics <> None || profiler <> None)
    in
    (* no pool-level on_error: per-pair faults are already contained
       inside [analyze_seq], so anything escaping a shard (enumeration
       overflow, a fault in the observability path) aborts the batch and
       re-raises — the same propagation [List.map run] would give *)
    let pool =
      Dt_support.Pool.create ~jobs:pjobs ~grain
        ~hooks:(Dt_support.Pool.hooks ~probe ())
        ()
    in
    let results = Array.make n None in
    let workers =
      Dt_support.Pool.run pool ~n
        ~state:(fun w -> wres.(w))
        ~body:(fun w i ->
          Dt_obs.Span.with_ w.spans Dt_obs.Span.Shard @@ fun () ->
          results.(i) <- Some (analyze_seq ctx w ~include_inputs progs.(i)))
    in
    (* worker counters hold only cache-replay noise here (each routine's
       result carries its own accumulator), but the metrics registries
       carry the engine attribution: merge them in worker-id order *)
    ignore (merge_workers ~metrics workers : Counters.t);
    (match metrics with
    | Some m -> Dt_obs.Metrics.engine_shards m ~n
    | None -> ());
    snapshot_cache ~metrics ~cache;
    Array.to_list (Array.map Option.get results)
  end
