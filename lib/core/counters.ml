type kind =
  | Ziv_test
  | Strong_siv
  | Weak_zero_siv
  | Weak_crossing_siv
  | Exact_siv
  | Rdiv_test
  | Gcd_miv
  | Banerjee_miv
  | Delta_test
  | Symbolic_ziv

let all_kinds =
  [
    Ziv_test;
    Strong_siv;
    Weak_zero_siv;
    Weak_crossing_siv;
    Exact_siv;
    Rdiv_test;
    Gcd_miv;
    Banerjee_miv;
    Delta_test;
    Symbolic_ziv;
  ]

let kind_name = function
  | Ziv_test -> "ZIV"
  | Strong_siv -> "strong SIV"
  | Weak_zero_siv -> "weak-zero SIV"
  | Weak_crossing_siv -> "weak-crossing SIV"
  | Exact_siv -> "exact SIV"
  | Rdiv_test -> "RDIV"
  | Gcd_miv -> "GCD"
  | Banerjee_miv -> "Banerjee"
  | Delta_test -> "Delta"
  | Symbolic_ziv -> "symbolic ZIV"

let n_kinds = List.length all_kinds

let kind_id k =
  let rec go i = function
    | [] -> assert false
    | x :: rest -> if x = k then i else go (i + 1) rest
  in
  go 0 all_kinds

type t = { applied : int array; indep : int array }

let create () = { applied = Array.make n_kinds 0; indep = Array.make n_kinds 0 }

let record t k ~indep =
  let i = kind_id k in
  t.applied.(i) <- t.applied.(i) + 1;
  if indep then t.indep.(i) <- t.indep.(i) + 1

let applied t k = t.applied.(kind_id k)
let proved_indep t k = t.indep.(kind_id k)

let merge_into acc extra =
  Array.iteri (fun i v -> acc.applied.(i) <- acc.applied.(i) + v) extra.applied;
  Array.iteri (fun i v -> acc.indep.(i) <- acc.indep.(i) + v) extra.indep

let pp ppf t =
  List.iter
    (fun k ->
      let a = applied t k in
      if a > 0 then
        Format.fprintf ppf "%-18s applied %5d  indep %5d@." (kind_name k) a
          (proved_indep t k))
    all_kinds
