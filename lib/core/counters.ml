(* The kind enumeration lives in Dt_obs.Test_kind so the trace/metrics
   layer and this module share one type; the equation below re-exports the
   constructors under their historical names. *)
type kind = Dt_obs.Test_kind.t =
  | Ziv_test
  | Strong_siv
  | Weak_zero_siv
  | Weak_crossing_siv
  | Exact_siv
  | Rdiv_test
  | Gcd_miv
  | Banerjee_miv
  | Delta_test
  | Symbolic_ziv

let all_kinds = Dt_obs.Test_kind.all
let kind_name = Dt_obs.Test_kind.name
let n_kinds = Dt_obs.Test_kind.count

(* direct pattern match (Dt_obs.Test_kind.id): this runs on every recorded
   event, so no list scan *)
let kind_id = Dt_obs.Test_kind.id

type t = { applied : int array; indep : int array }

let create () = { applied = Array.make n_kinds 0; indep = Array.make n_kinds 0 }

let record t k ~indep =
  let i = kind_id k in
  t.applied.(i) <- t.applied.(i) + 1;
  if indep then t.indep.(i) <- t.indep.(i) + 1

let applied t k = t.applied.(kind_id k)
let proved_indep t k = t.indep.(kind_id k)

let merge_into acc extra =
  Array.iteri (fun i v -> acc.applied.(i) <- acc.applied.(i) + v) extra.applied;
  Array.iteri (fun i v -> acc.indep.(i) <- acc.indep.(i) + v) extra.indep

let merge a b =
  let t = create () in
  merge_into t a;
  merge_into t b;
  t

let equal a b = a.applied = b.applied && a.indep = b.indep

let pp ppf t =
  List.iter
    (fun k ->
      let a = applied t k in
      if a > 0 then
        Format.fprintf ppf "%-18s applied %5d  indep %5d@." (kind_name k) a
          (proved_indep t k))
    all_kinds
