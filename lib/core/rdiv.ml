open Dt_ir
open Dt_support

let inject_test = Dt_guard.Inject.register "rdiv.test"

type relation = {
  src_index : Index.t;
  snk_index : Index.t;
  a : int;
  b : int;
  c : Affine.t;
}

type result = { outcome : Outcome.t; relation : relation option }

let interval_of_range range assume i =
  ignore assume;
  match Range.concrete range i with
  | Some (lo, hi) -> Interval.of_ints lo hi
  | None -> Interval.full

let test assume range (p : Spair.t) ~src ~snk =
  Dt_guard.Inject.hit inject_test;
  let a1 = fst (Spair.coeffs p src) and a2 = snd (Spair.coeffs p snk) in
  let c1 = Affine.drop_index p.src src and c2 = Affine.drop_index p.snk snk in
  let c = Affine.sub c2 c1 in
  (* a1 * alpha_src - a2 * beta_snk = c *)
  let relation = Some { src_index = src; snk_index = snk; a = a1; b = -a2; c } in
  let indices = [ src; snk ] in
  match Affine.as_const c with
  | Some cc ->
      let x_range = interval_of_range range assume src in
      let y_range = interval_of_range range assume snk in
      if Dio.feasible ~a:a1 ~b:(-a2) ~c:cc ~x_range ~y_range then
        { outcome = Outcome.dependent_star indices; relation }
      else { outcome = Outcome.Independent; relation = None }
  | None ->
      (* symbolic constant part: only the gcd disproof applies *)
      let g = Int_ops.gcd a1 a2 in
      let g' =
        List.fold_left (fun acc (_, k) -> Int_ops.gcd acc k) g (Affine.sym_terms c)
      in
      if not (Int_ops.divides g' (Affine.const_part c)) then
        { outcome = Outcome.Independent; relation = None }
      else { outcome = Outcome.dependent_star indices; relation }

let pp_relation ppf (r : relation) =
  Format.fprintf ppf "%d*alpha_%a %+d*beta_%a = %a" r.a Index.pp r.src_index
    r.b Index.pp r.snk_index Affine.pp r.c

let explain (r : result) =
  match (r.outcome, r.relation) with
  | Outcome.Independent, _ ->
      "no (alpha, beta) solution within the two loops' ranges"
  | _, Some rel ->
      Format.asprintf "relation %a recorded for constraint propagation"
        pp_relation rel
  | _, None -> "dependence possible"
