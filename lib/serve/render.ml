(* Every fragment is rendered through Format.asprintf with the same
   format strings the CLI historically passed to Format.printf, so the
   bytes match the one-shot tool exactly. *)

let header ~many name =
  if many then Printf.sprintf "===== %s =====\n" name else ""

let verdicts (prog : Dt_ir.Nest.program) (r : Deptest.Analyze.result) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Format.asprintf "%a@." Dt_ir.Nest.pp prog);
  if r.Deptest.Analyze.deps = [] then Buffer.add_string buf "no dependences\n"
  else
    List.iter
      (fun d -> Buffer.add_string buf (Format.asprintf "%a@." Deptest.Dep.pp d))
      r.Deptest.Analyze.deps;
  Buffer.contents buf

let warnings (r : Deptest.Analyze.result) =
  let degraded =
    List.filter
      (fun (p : Deptest.Analyze.pair_record) ->
        p.Deptest.Analyze.meta.Deptest.Pair_test.degraded <> None)
      r.Deptest.Analyze.pairs
  in
  let buf = Buffer.create 64 in
  List.iter
    (fun (p : Deptest.Analyze.pair_record) ->
      match p.Deptest.Analyze.meta.Deptest.Pair_test.degraded with
      | Some reason ->
          Buffer.add_string buf
            (Format.asprintf
               "warning: %s S%d/S%d degraded conservatively (%s)@."
               p.Deptest.Analyze.array p.Deptest.Analyze.src_stmt
               p.Deptest.Analyze.snk_stmt
               (Dt_guard.Degrade.to_string reason))
      | None -> ())
    degraded;
  (Buffer.contents buf, List.length degraded)

let counters (r : Deptest.Analyze.result) =
  Format.asprintf "@.-- tests applied --@.%a" Deptest.Counters.pp
    r.Deptest.Analyze.counters

let routine ~many (prog : Dt_ir.Nest.program) r =
  let warn, degraded = warnings r in
  ( header ~many prog.Dt_ir.Nest.name ^ verdicts prog r ^ warn ^ counters r,
    degraded )

let unit_ progs results =
  let many = List.length progs > 1 in
  let texts, degraded =
    List.split (List.map2 (fun p r -> routine ~many p r) progs results)
  in
  (String.concat "" texts, List.fold_left ( + ) 0 degraded)
