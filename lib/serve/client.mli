(** Client side of the serve protocol: connect, round-trip, close. *)

type t

val connect : socket:string -> t
(** Raises [Unix.Unix_error] when no daemon listens there. *)

val request : t -> Protocol.request -> Dt_obs.Json.t
(** One framed round-trip. Raises [Failure] on a broken or non-JSON
    response. *)

val close : t -> unit
