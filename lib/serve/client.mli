(** Client side of the serve protocol.

    Two surfaces: the raw connection ({!connect}/{!request}/{!close} —
    one fd, exceptions on failure, used by tests and tools that manage
    their own connections) and the resilient {!call}, which owns the
    whole attempt: per-attempt connect and receive timeouts carried by
    [select], structured failures instead of exceptions, and an optional
    {!Retry} policy with seeded decorrelated-jitter backoff.

    {!call} (and {!Server.run}) set SIGPIPE to ignore for the process —
    a peer that vanishes mid-write must surface as a classified failure,
    not kill the caller. *)

type t

val connect : socket:string -> t
(** Raises [Unix.Unix_error] when no daemon listens there. *)

val request : t -> Protocol.request -> Dt_obs.Json.t
(** One framed round-trip. Raises [Failure] on a broken or non-JSON
    response. *)

val close : t -> unit

(** The retry policy: how many attempts, and how to space them. *)
module Retry : sig
  type t = {
    attempts : int;  (** total attempts, including the first (>= 1) *)
    base_ms : int;  (** backoff floor; [0] disables sleeping *)
    cap_ms : int;  (** backoff ceiling *)
    seed : int64;
        (** seeds the jitter stream — a fixed seed replays the exact
            backoff sequence, so tests are deterministic *)
    retry_truncated : bool;
        (** also retry a mid-frame close. The request then {e may} have
            executed once already, so enable it only for idempotent ops
            (analyze is: pure analysis plus idempotent cache writes). *)
  }

  val none : t
  (** One attempt, no sleeping: {!call}'s default. *)

  val default : t
  (** 3 attempts, 5 ms base, 2 s cap. *)

  val next_backoff_ms : t -> int64 ref -> prev_ms:int -> int
  (** One step of decorrelated jitter: uniform in
      [\[base_ms, prev_ms * 3\]] clamped to [cap_ms], drawn from the
      seeded splitmix64 stream in the ref. *)

  val plan : t -> int list
  (** The full backoff sequence ([attempts - 1] sleeps) the policy would
      produce — what the tests assert on. *)
end

type failure =
  | Refused  (** nothing listening ([ECONNREFUSED]/[ENOENT]) *)
  | Timed_out of [ `Connect | `Receive ]
  | Closed  (** clean EOF (or reset) before any response byte *)
  | Truncated  (** the connection died mid-response-frame *)
  | Overloaded of int
      (** every attempt was shed; the daemon's last [retry_after_ms] *)
  | Bad_response of string

val failure_message : socket:string -> failure -> string
(** One operator-readable line naming the socket path — what the CLI
    prints to stderr before exiting 2. *)

val call :
  ?retry:Retry.t ->
  ?timeout_ms:int ->
  socket:string ->
  Protocol.request ->
  (Dt_obs.Json.t, failure) result
(** One request, resiliently: a fresh connection per attempt,
    [timeout_ms] (default 30 000) bounding both the connect and the
    receive of each attempt via [select], and up to [retry.attempts]
    attempts. Never raises.

    Only outcomes where the request provably did not complete — or
    where the daemon explicitly asked us back — are retried: [Refused],
    [Closed] (EOF before any response byte), and [Overloaded] (sleeping
    at least the daemon's [retry_after_ms]); plus [Truncated] when the
    policy opts in. A receive timeout is {e not} retried — the analysis
    may still be running. The request value (and so its trace id) is
    reused verbatim across attempts, so the daemon's slow ledger shows
    the whole retry chain under one id. *)

val ping : socket:string -> ?timeout_ms:int -> unit -> bool
(** One [Health] round-trip with a short timeout (default 500 ms):
    [true] iff a live daemon answered [ok]. The server's stale-socket
    check — never unlink a socket that still answers. *)
