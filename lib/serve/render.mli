(** The canonical plain-text rendering of an analysis result.

    One definition of the verdict text, shared by [deptest analyze]'s
    plain path and the serve daemon: the daemon answers with exactly the
    bytes the one-shot CLI would print, so cached responses are
    byte-identical to cold in-process runs by construction. *)

val header : many:bool -> string -> string
(** ["===== name =====\n"] when the unit has several routines. *)

val verdicts : Dt_ir.Nest.program -> Deptest.Analyze.result -> string
(** The program listing followed by its dependences (or
    ["no dependences"]). *)

val warnings : Deptest.Analyze.result -> string * int
(** The conservative-degradation warnings and how many pairs degraded. *)

val counters : Deptest.Analyze.result -> string
(** The ["-- tests applied --"] footer with the §6 counter table. *)

val routine :
  many:bool -> Dt_ir.Nest.program -> Deptest.Analyze.result -> string * int
(** Full plain-path rendering of one routine: header, verdicts,
    warnings, counters. Returns the text and the degraded-pair count. *)

val unit_ :
  Dt_ir.Nest.program list -> Deptest.Analyze.result list -> string * int
(** {!routine} over a whole compilation unit ([many] inferred). *)
