(** The serve wire protocol.

    Requests and responses are single JSON objects ({!Dt_obs.Json}),
    framed by {!Dt_support.Frame} (4-byte big-endian length prefix). A
    request carries an ["op"]; a response always carries ["ok"], with
    either the op's payload or an ["error"] message. A client may stream
    any number of requests over one connection. *)

type request =
  | Analyze of { source : string; id : string option }
      (** Analyze one compilation unit (mini-Fortran or the C fragment,
          auto-detected). [id] is echoed back for request matching. *)
  | Metrics of { prometheus : bool }
      (** The daemon's metrics snapshot: JSON, or the Prometheus text
          exposition when [prometheus]. *)
  | Health
  | Flush  (** Persist the disk cache now. *)
  | Shutdown  (** Stop the daemon after responding. *)

val request_to_json : request -> Dt_obs.Json.t
val request_of_json : Dt_obs.Json.t -> (request, string) result

val error : string -> Dt_obs.Json.t
(** [{"ok":false,"error":msg}]. *)

val ok : (string * Dt_obs.Json.t) list -> Dt_obs.Json.t
(** [{"ok":true, ...fields}]. *)
