(** The serve wire protocol.

    Requests and responses are single JSON objects ({!Dt_obs.Json}),
    framed by {!Dt_support.Frame} (4-byte big-endian length prefix). A
    request carries an ["op"] and the wire {!version} under ["v"]; a
    response always carries ["ok"], with either the op's payload or an
    ["error"] message. A client may stream any number of requests over
    one connection. *)

val version : int
(** The wire version this build speaks (3). A request without ["v"] is
    read as version 1 — the PR 8 protocol, still accepted — while a
    ["v"] above {!version} is refused with an error response, so an old
    daemon fails loud instead of misreading a future frame. v2 added
    trace ids and the introspection ops; v3 adds the optional analyze
    deadline and the structured {!overloaded} response. *)

type request =
  | Analyze of {
      source : string;
      id : string option;
      trace_id : string option;
      deadline_ms : int option;
    }
      (** Analyze one compilation unit (mini-Fortran or the C fragment,
          auto-detected). [id] is echoed back for request matching;
          [trace_id] is the client-generated {!Dt_obs.Reqtrace} id that
          keys this request's entry in the daemon's slow ledger.
          [deadline_ms] is the client's total latency budget: the daemon
          subtracts the time the request waited in its queue and runs
          the analysis under the {e remaining} budget
          ({!Deptest.Analyze.Config} [deadline_ms]), shedding outright
          with {!deadline_exceeded} when nothing remains. *)
  | Metrics of { prometheus : bool }
      (** The daemon's metrics snapshot: JSON, or the Prometheus text
          exposition when [prometheus]. *)
  | Health
      (** Liveness plus daemon vitals: uptime, requests in flight,
          totals, sampler settings, pool/cache usage, saturation. *)
  | Slow of { n : int option }
      (** The newest [n] (default: ring capacity) request summaries from
          the slow ledger, newest first. *)
  | Top of { n : int option }
      (** The [n] (default: board capacity) slowest requests observed,
          slowest first. *)
  | Trace_last of { trace_id : string option }
      (** The most recent retained span capture — or the capture for
          [trace_id] when given — exported as a Chrome trace. *)
  | Flush  (** Persist the disk cache now. *)
  | Shutdown  (** Stop the daemon after responding. *)

val request_to_json : request -> Dt_obs.Json.t
val request_of_json : Dt_obs.Json.t -> (request, string) result

val endpoint_of : request -> string
(** The op slug — the [endpoint] label on the daemon's request metrics
    and ledger entries. *)

val endpoints : string list
(** Every op slug, for pre-registering metric series at startup. *)

val error : string -> Dt_obs.Json.t
(** [{"ok":false,"error":msg}]. *)

val ok : (string * Dt_obs.Json.t) list -> Dt_obs.Json.t
(** [{"ok":true, ...fields}]. *)

val overloaded : retry_after_ms:int -> Dt_obs.Json.t
(** The admission-control shed response:
    [{"ok":false,"error":"overloaded","overloaded":true,
    "retry_after_ms":N}]. Always a structured reply on a healthy
    connection — overload never drops the connection — and always
    retryable: [retry_after_ms] (clamped to at least 1) is the daemon's
    estimate of when capacity frees up. *)

val deadline_exceeded : waited_ms:int -> Dt_obs.Json.t
(** The shed response for a request whose own [deadline_ms] budget was
    already spent queueing. Not retryable — the budget belonged to the
    request, so the client reports it rather than trying again. *)

val retry_after_of : Dt_obs.Json.t -> int option
(** [Some ms] iff the response is an {!overloaded} shed; the client's
    retry loop sleeps at least this long before the next attempt. *)

val is_deadline_exceeded : Dt_obs.Json.t -> bool
