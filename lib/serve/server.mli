(** The unix-socket accept loop around {!Engine}.

    Connections are multiplexed with [select] at {e frame} granularity:
    readable clients enter a FIFO queue stamped with arrival time, one
    queued request is served whole per select round, and responses stay
    strictly ordered per connection — request parallelism still comes
    from the work-stealing pool inside each analysis. The 200 ms select
    timeout keeps a stop flag or signal honored promptly.

    The queue is also the admission-control boundary: its depth and the
    time a request waited in it are handed to {!Engine.handle}, which
    sheds analyze requests over the [max_inflight]/[queue_deadline_ms]
    budgets with a structured {!Protocol.overloaded} response — never a
    dropped connection — and runs admitted ones under their remaining
    deadline budget.

    A framing error (oversized or truncated frame) or malformed JSON is
    answered with a counted protocol-error response and a clean close of
    that connection only; the daemon keeps serving the others. On stop
    (flag, [Shutdown], SIGTERM/SIGINT with [signals]) the listener
    closes first, requests already sent are drained for up to
    [drain_grace_ms], then the disk store is flushed and the socket file
    removed.

    The server is also the home of the serve-layer chaos sites
    ([serve.accept_drop], [serve.frame_close], [serve.delay],
    [serve.kill] — see {!Dt_guard.Inject}): enabled via the
    [DEPTEST_INJECT*] discipline they deterministically drop accepted
    connections, truncate response frames, delay replies, or kill the
    process before replying, each counted on
    [deptest_serve_injected_faults_total] (except the kill, which dies
    uncounted — that is the point). *)

val run :
  socket:string ->
  ?jobs:int ->
  ?cache_dir:string ->
  ?cache_capacity:int ->
  ?sample_period:int ->
  ?slow_threshold_ns:int64 ->
  ?ledger_recent:int ->
  ?ledger_top:int ->
  ?max_inflight:int ->
  ?queue_deadline_ms:int ->
  ?restarts:int ->
  ?drain_grace_ms:int ->
  ?warm:[ `All | `Suite of string ] ->
  ?stop:bool Atomic.t ->
  ?signals:bool ->
  ?log:(string -> unit) ->
  unit ->
  int
(** Serve on the unix socket at [socket] until [stop] is set, a
    [Shutdown] request arrives, or (with [signals], default off) SIGTERM
    / SIGINT. [warm] pre-analyzes the workload corpus (or one suite of
    it) before accepting. The sampling, ledger, and admission options
    are passed to {!Engine.create}; [drain_grace_ms] (default 2000)
    bounds the shutdown drain. Ignores SIGPIPE for the process (a
    vanished client must be an [EPIPE], not a death).

    A socket file that a live daemon still answers [health] on is {e
    not} unlinked: the call refuses to start and returns [2]. A truly
    stale file (no answer) is replaced. Returns the process exit code:
    [0] for a clean shutdown, [2] if the socket cannot be bound or a
    live daemon already serves it. *)
