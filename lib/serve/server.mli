(** The unix-socket accept loop around {!Engine}.

    Single-threaded at the connection level — request parallelism comes
    from the work-stealing pool inside each analysis — with a polling
    accept (200 ms select timeout) so a stop flag or signal is honored
    promptly. On shutdown the disk store is flushed and the socket file
    removed. *)

val run :
  socket:string ->
  ?jobs:int ->
  ?cache_dir:string ->
  ?cache_capacity:int ->
  ?warm:[ `All | `Suite of string ] ->
  ?stop:bool Atomic.t ->
  ?signals:bool ->
  ?log:(string -> unit) ->
  unit ->
  int
(** Serve on the unix socket at [socket] until [stop] is set, a
    [Shutdown] request arrives, or (with [signals], default off) SIGTERM
    / SIGINT. [warm] pre-analyzes the workload corpus (or one suite of
    it) before accepting. Returns the process exit code: [0] for a clean
    shutdown, [2] if the socket cannot be bound. *)
