(** The unix-socket accept loop around {!Engine}.

    Connections are multiplexed with [select] at {e frame} granularity:
    several clients may hold connections open concurrently, each request
    is served whole before the next readable descriptor is visited, and
    responses stay strictly ordered per connection — request parallelism
    still comes from the work-stealing pool inside each analysis. The
    200 ms select timeout keeps a stop flag or signal honored promptly.

    A framing error (oversized or truncated frame) or malformed JSON is
    answered with a counted protocol-error response and a clean close of
    that connection only; the daemon keeps serving the others. On
    shutdown the disk store is flushed and the socket file removed. *)

val run :
  socket:string ->
  ?jobs:int ->
  ?cache_dir:string ->
  ?cache_capacity:int ->
  ?sample_period:int ->
  ?slow_threshold_ns:int64 ->
  ?ledger_recent:int ->
  ?ledger_top:int ->
  ?warm:[ `All | `Suite of string ] ->
  ?stop:bool Atomic.t ->
  ?signals:bool ->
  ?log:(string -> unit) ->
  unit ->
  int
(** Serve on the unix socket at [socket] until [stop] is set, a
    [Shutdown] request arrives, or (with [signals], default off) SIGTERM
    / SIGINT. [warm] pre-analyzes the workload corpus (or one suite of
    it) before accepting. The sampling and ledger options are passed to
    {!Engine.create}. Returns the process exit code: [0] for a clean
    shutdown, [2] if the socket cannot be bound. *)
