module Json = Dt_obs.Json
module Frame = Dt_support.Frame

type t = Unix.file_descr

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with e ->
     close_quiet fd;
     raise e);
  fd

let request fd req =
  Frame.write fd (Json.to_string (Protocol.request_to_json req));
  match Frame.read fd with
  | None -> failwith "server closed the connection"
  | Some payload -> (
      match Json.of_string payload with
      | Ok json -> json
      | Error e -> failwith ("bad response JSON: " ^ e))

let close fd = close_quiet fd

(* --- the resilient path ------------------------------------------- *)

module Retry = struct
  type t = {
    attempts : int;
    base_ms : int;
    cap_ms : int;
    seed : int64;
    retry_truncated : bool;
  }

  let none =
    { attempts = 1; base_ms = 0; cap_ms = 0; seed = 1L; retry_truncated = false }

  let default =
    {
      attempts = 3;
      base_ms = 5;
      cap_ms = 2_000;
      seed = 1L;
      retry_truncated = false;
    }

  (* splitmix64: the same tiny deterministic generator Reqtrace uses for
     trace ids — a seeded policy replays the exact backoff sequence *)
  let mix state =
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let rand_below state bound =
    if bound <= 1 then 0
    else
      Int64.to_int
        (Int64.rem (Int64.logand (mix state) Int64.max_int)
           (Int64.of_int bound))

  (* decorrelated jitter: sleep ~ uniform [base, prev*3], capped. Spreads
     retry storms without synchronizing clients, and a fixed seed makes
     the whole sequence reproducible in tests. *)
  let next_backoff_ms t state ~prev_ms =
    if t.base_ms <= 0 then 0
    else
      let hi = max (t.base_ms + 1) (prev_ms * 3) in
      let ms = t.base_ms + rand_below state (hi - t.base_ms) in
      min t.cap_ms (max t.base_ms ms)

  let plan t =
    let state = ref t.seed in
    let rec go prev n acc =
      if n >= t.attempts then List.rev acc
      else
        let ms = next_backoff_ms t state ~prev_ms:prev in
        go ms (n + 1) (ms :: acc)
    in
    go t.base_ms 1 []
end

type failure =
  | Refused
  | Timed_out of [ `Connect | `Receive ]
  | Closed  (** EOF (or reset) before any response byte, retries spent *)
  | Truncated  (** mid-frame close, retries spent or not retryable *)
  | Overloaded of int  (** still overloaded after every attempt *)
  | Bad_response of string

let failure_message ~socket = function
  | Refused -> Printf.sprintf "cannot connect to %s: no daemon is listening" socket
  | Timed_out `Connect -> Printf.sprintf "timed out connecting to %s" socket
  | Timed_out `Receive ->
      Printf.sprintf "timed out waiting for a response from %s" socket
  | Closed -> Printf.sprintf "daemon at %s closed the connection before replying" socket
  | Truncated ->
      Printf.sprintf "daemon at %s closed the connection mid-response" socket
  | Overloaded ms ->
      Printf.sprintf "daemon at %s is overloaded (retry after %d ms)" socket ms
  | Bad_response e -> Printf.sprintf "bad response from %s: %s" socket e

(* A peer that vanishes mid-write must surface as EPIPE, not kill the
   process: the runtime leaves SIGPIPE at its fatal default. Forced by
   both this resilient path and [Server.run]. *)
let ignore_sigpipe =
  lazy (Sys.set_signal Sys.sigpipe Sys.Signal_ignore)

(* one attempt: connect, send, receive — classified, never raising.
   The connect timeout rides on select too: unix-socket connects only
   block when the listener's backlog is full, i.e. exactly under the
   overload this layer exists for. *)
let attempt ~socket ~timeout_ms req =
  Lazy.force ignore_sigpipe;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let finish r = close_quiet fd; r in
  Unix.set_nonblock fd;
  let connected =
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Ok ()
    | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
        match Unix.select [] [ fd ] [] (float_of_int timeout_ms /. 1000.) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) ->
            Error (Timed_out `Connect)
        | [], [], [] -> Error (Timed_out `Connect)
        | _ -> (
            match Unix.getsockopt_error fd with
            | None -> Ok ()
            | Some (Unix.ECONNREFUSED | Unix.ENOENT) -> Error Refused
            | Some e -> Error (Bad_response (Unix.error_message e))))
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
        Error Refused
    | exception Unix.Unix_error (e, _, _) ->
        Error (Bad_response (Unix.error_message e))
  in
  match connected with
  | Error _ as e -> finish e
  | Ok () -> (
      Unix.clear_nonblock fd;
      match Frame.write fd (Json.to_string (Protocol.request_to_json req)) with
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          (* the daemon died between accept and read: the request was
             never processed, so this is as retry-safe as a refusal *)
          finish (Error Closed)
      | exception Unix.Unix_error (e, _, _) ->
          finish (Error (Bad_response (Unix.error_message e)))
      | () -> (
          let deadline_ns =
            Int64.add (Dt_obs.Metrics.now_ns ())
              (Int64.mul (Int64.of_int timeout_ms) 1_000_000L)
          in
          match Frame.read_r ~deadline_ns fd with
          | Ok None -> finish (Error Closed)
          | Error Frame.Timeout -> finish (Error (Timed_out `Receive))
          | Error Frame.Truncated -> finish (Error Truncated)
          | Error (Frame.Oversize n) ->
              finish
                (Error (Bad_response (Printf.sprintf "oversized frame (%d bytes)" n)))
          | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
              finish (Error Truncated)
          | Ok (Some payload) -> (
              match Json.of_string payload with
              | Error e -> finish (Error (Bad_response e))
              | Ok json -> finish (Ok json))))

let call ?(retry = Retry.none) ?(timeout_ms = 30_000) ~socket req =
  let state = ref retry.Retry.seed in
  let sleep_ms ms = if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.) in
  let rec go n prev_ms =
    let outcome =
      match attempt ~socket ~timeout_ms req with
      | Ok json -> (
          match Protocol.retry_after_of json with
          | Some ms -> Error (Overloaded ms)
          | None -> Ok json)
      | Error _ as e -> e
    in
    match outcome with
    | Ok _ -> outcome
    | Error f ->
        (* only outcomes where the request provably did not complete —
           or where the daemon explicitly asked us back — are retried;
           a receive timeout may mean the analysis is still running, so
           it is surfaced, not resent. Truncated responses are re-asked
           only when the policy says the request is idempotent. *)
        let retryable =
          match f with
          | Refused | Closed -> true
          | Overloaded _ -> true
          | Truncated -> retry.Retry.retry_truncated
          | Timed_out _ | Bad_response _ -> false
        in
        if (not retryable) || n + 1 >= retry.Retry.attempts then outcome
        else begin
          let backoff = Retry.next_backoff_ms retry state ~prev_ms in
          let ms =
            match f with
            | Overloaded after -> max after backoff
            | _ -> backoff
          in
          sleep_ms ms;
          go (n + 1) (max backoff retry.Retry.base_ms)
        end
  in
  go 0 retry.Retry.base_ms

let ping ~socket ?(timeout_ms = 500) () =
  match call ~timeout_ms ~socket Protocol.Health with
  | Ok json -> (
      match Json.member "ok" json with
      | Some (Json.Bool true) -> true
      | _ -> false)
  | Error _ -> false
