module Json = Dt_obs.Json
module Frame = Dt_support.Frame

type t = Unix.file_descr

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let request fd req =
  Frame.write fd (Json.to_string (Protocol.request_to_json req));
  match Frame.read fd with
  | None -> failwith "server closed the connection"
  | Some payload -> (
      match Json.of_string payload with
      | Ok json -> json
      | Error e -> failwith ("bad response JSON: " ^ e))

let close fd = try Unix.close fd with Unix.Unix_error _ -> ()
