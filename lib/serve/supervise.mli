(** Supervised (crash-only) serving: fork the daemon, restart it on
    abnormal exit.

    The body runs in a forked child process; the supervisor [waitpid]s.
    A clean exit (code 0) ends supervision; any other exit — nonzero
    code or a fatal signal — triggers a restart after exponential
    crash-loop backoff ([backoff_ms] doubling per consecutive restart,
    capped at [backoff_cap_ms]) until [max_restarts] is reached, at
    which point the child's last status is returned. The PR 8 disk
    store makes each restart warm, and the body receives the restart
    count so the daemon can export it ({!Engine.create}'s [restarts] →
    [health] and [deptest_serve_restarts_total]).

    With [signals], SIGTERM/SIGINT are forwarded to the current child
    and mark the supervisor stopping — the child drains and exits
    cleanly, and no further restart follows (even mid-backoff).

    Must be called before any domain is spawned (the CLI calls it ahead
    of [Server.run], whose worker pool lives in the child). *)

val run :
  ?max_restarts:int ->
  ?backoff_ms:int ->
  ?backoff_cap_ms:int ->
  ?signals:bool ->
  ?log:(string -> unit) ->
  (restarts:int -> int) ->
  int
(** [run body] forks and runs [Stdlib.exit (body ~restarts)] in the
    child; returns the supervisor's exit code. Defaults: 5 restarts,
    100 ms base backoff, 5 s cap. *)
