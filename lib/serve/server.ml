module Json = Dt_obs.Json
module Frame = Dt_support.Frame

(* one client connection: stream frames until EOF / shutdown / a framing
   error. Returns [true] when a Shutdown request asked the daemon to
   stop. *)
let serve_connection engine fd =
  let rec loop () =
    match Frame.read fd with
    | None -> false
    | Some payload ->
        let req =
          match Json.of_string payload with
          | Error e -> Error ("bad JSON: " ^ e)
          | Ok json -> Protocol.request_of_json json
        in
        let response, stop =
          match req with
          | Error msg -> (Protocol.error msg, false)
          | Ok r -> (Engine.handle engine r, r = Protocol.Shutdown)
        in
        Frame.write fd (Json.to_string response);
        if stop then true else loop ()
  in
  try loop () with
  | Failure _ -> false  (* peer broke a frame mid-message *)
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> false

let run ~socket ?(jobs = 0) ?cache_dir ?cache_capacity ?warm
    ?(stop = Atomic.make false) ?(signals = false) ?(log = ignore) () =
  let engine = Engine.create ~jobs ?cache_dir ?cache_capacity () in
  (match warm with
  | None -> ()
  | Some w ->
      let n =
        match w with
        | `All -> Engine.warm engine ()
        | `Suite s -> Engine.warm engine ~suite:s ()
      in
      log (Printf.sprintf "warmed %d corpus unit(s)" n));
  if signals then begin
    let request_stop _ = Atomic.set stop true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop)
  end;
  (* a stale socket file from a dead daemon would make bind fail; only
     an actual listener should *)
  (try
     let st = Unix.stat socket in
     if st.Unix.st_kind = Unix.S_SOCK then Unix.unlink socket
   with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.bind sock (Unix.ADDR_UNIX socket) with
  | exception Unix.Unix_error (e, _, _) ->
      Unix.close sock;
      log
        (Printf.sprintf "cannot bind %s: %s" socket (Unix.error_message e));
      2
  | () ->
      Unix.listen sock 16;
      log (Printf.sprintf "listening on %s (jobs %d)" socket
             (Engine.jobs engine));
      let rec accept_loop () =
        if Atomic.get stop then ()
        else
          (* poll with a timeout so a signal or stop flag is seen even
             with no client activity *)
          match Unix.select [ sock ] [] [] 0.2 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
          | [], _, _ -> accept_loop ()
          | _ :: _, _, _ -> (
              match Unix.accept sock with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
              | fd, _ ->
                  let shutdown_requested =
                    Fun.protect
                      ~finally:(fun () ->
                        try Unix.close fd with Unix.Unix_error _ -> ())
                      (fun () -> serve_connection engine fd)
                  in
                  if shutdown_requested then Atomic.set stop true;
                  accept_loop ())
      in
      accept_loop ();
      (* clean shutdown: verdicts first, then the listening endpoint *)
      let persisted = Engine.flush engine in
      if persisted > 0 then
        log (Printf.sprintf "flushed %d cache entr%s" persisted
               (if persisted = 1 then "y" else "ies"));
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (try Unix.unlink socket with Unix.Unix_error _ -> ());
      log "stopped";
      0
