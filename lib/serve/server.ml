module Json = Dt_obs.Json
module Frame = Dt_support.Frame

(* Service one readable client: read one frame, answer it. Returns what
   to do with the connection afterwards. Frame granularity is the
   multiplexing unit — two clients interleave between requests, not
   inside one — which keeps responses strictly ordered per connection
   without threads. *)
type step = Keep | Close | Stop

let serve_frame engine fd =
  match Frame.read_r fd with
  | Ok None -> Close
  | Error e ->
      (* a bad frame poisons the stream position, so the connection
         cannot survive; it still deserves a counted protocol error
         response rather than a raw exception. The oversized payload is
         NOT drained first — a malicious length prefix need not be
         backed by real bytes, and draining would block the daemon. *)
      Engine.note_protocol_error engine;
      (try
         Frame.write fd
           (Json.to_string
              (Protocol.error ("protocol error: " ^ Frame.error_message e)))
       with
      | Unix.Unix_error _ | Invalid_argument _ -> ());
      Close
  | Ok (Some payload) -> (
      let req =
        match Json.of_string payload with
        | Error e -> Error ("bad JSON: " ^ e)
        | Ok json -> Protocol.request_of_json json
      in
      let response, stop =
        match req with
        | Error msg -> (Protocol.error msg, false)
        | Ok r -> (Engine.handle engine r, r = Protocol.Shutdown)
      in
      match Frame.write fd (Json.to_string response) with
      | () -> if stop then Stop else Keep
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          Close
      | exception Invalid_argument _ ->
          (* response over the frame cap (a giant trace export): the
             peer cannot be answered in-protocol, drop it *)
          Engine.note_protocol_error engine;
          Close)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let run ~socket ?(jobs = 0) ?cache_dir ?cache_capacity ?sample_period
    ?slow_threshold_ns ?ledger_recent ?ledger_top ?warm
    ?(stop = Atomic.make false) ?(signals = false) ?(log = ignore) () =
  let engine =
    Engine.create ~jobs ?cache_dir ?cache_capacity ?sample_period
      ?slow_threshold_ns ?ledger_recent ?ledger_top ()
  in
  (match warm with
  | None -> ()
  | Some w ->
      let n =
        match w with
        | `All -> Engine.warm engine ()
        | `Suite s -> Engine.warm engine ~suite:s ()
      in
      log (Printf.sprintf "warmed %d corpus unit(s)" n));
  if signals then begin
    let request_stop _ = Atomic.set stop true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop)
  end;
  (* a stale socket file from a dead daemon would make bind fail; only
     an actual listener should *)
  (try
     let st = Unix.stat socket in
     if st.Unix.st_kind = Unix.S_SOCK then Unix.unlink socket
   with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.bind sock (Unix.ADDR_UNIX socket) with
  | exception Unix.Unix_error (e, _, _) ->
      Unix.close sock;
      log
        (Printf.sprintf "cannot bind %s: %s" socket (Unix.error_message e));
      2
  | () ->
      Unix.listen sock 16;
      log (Printf.sprintf "listening on %s (jobs %d)" socket
             (Engine.jobs engine));
      (* connections are multiplexed with select at frame granularity,
         so several clients may hold connections open concurrently; a
         request is served whole before the next readable fd is
         visited *)
      let clients = ref [] in
      let drop fd =
        clients := List.filter (fun c -> c <> fd) !clients;
        close_quiet fd
      in
      let rec loop () =
        if Atomic.get stop then ()
        else
          (* poll with a timeout so a signal or stop flag is seen even
             with no client activity *)
          match Unix.select (sock :: !clients) [] [] 0.2 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | readable, _, _ ->
              List.iter
                (fun fd ->
                  if fd = sock then (
                    match Unix.accept sock with
                    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                    | client, _ ->
                        Engine.note_connection engine;
                        clients := !clients @ [ client ])
                  else if List.mem fd !clients then
                    match serve_frame engine fd with
                    | Keep -> ()
                    | Close -> drop fd
                    | Stop ->
                        drop fd;
                        Atomic.set stop true)
                readable;
              loop ()
      in
      loop ();
      List.iter close_quiet !clients;
      (* clean shutdown: verdicts first, then the listening endpoint *)
      let persisted = Engine.flush engine in
      if persisted > 0 then
        log (Printf.sprintf "flushed %d cache entr%s" persisted
               (if persisted = 1 then "y" else "ies"));
      close_quiet sock;
      (try Unix.unlink socket with Unix.Unix_error _ -> ());
      log "stopped";
      0
