module Json = Dt_obs.Json
module Frame = Dt_support.Frame
module Inject = Dt_guard.Inject

(* Chaos-harness sites (see Dt_guard.Inject): the CI fault matrix and
   the soak tests enable these via DEPTEST_INJECT with
   DEPTEST_INJECT_ONLY naming one site, so the socket layer's
   containment paths fire deterministically while the analysis layer
   stays clean. The faults live on the server side of the wire:
     accept_drop  — accept a connection, then close it unanswered
     frame_close  — send half the response frame, then close
     delay        — spin before replying (client-visible latency)
     kill         — die without replying (what --supervise is for) *)
let accept_drop_site = Inject.register "serve.accept_drop"
let frame_close_site = Inject.register "serve.frame_close"
let delay_site = Inject.register "serve.delay"
let kill_site = Inject.register "serve.kill"

(* Service one readable client: read one frame, answer it. Returns what
   to do with the connection afterwards. Frame granularity is the
   multiplexing unit — two clients interleave between requests, not
   inside one — which keeps responses strictly ordered per connection
   without threads. *)
type step = Keep | Close | Stop

let serve_frame ?admission engine fd =
  match Frame.read_r fd with
  | Ok None -> Close
  | Error e ->
      (* a bad frame poisons the stream position, so the connection
         cannot survive; it still deserves a counted protocol error
         response rather than a raw exception. The oversized payload is
         NOT drained first — a malicious length prefix need not be
         backed by real bytes, and draining would block the daemon. *)
      Engine.note_protocol_error engine;
      (try
         Frame.write fd
           (Json.to_string
              (Protocol.error ("protocol error: " ^ Frame.error_message e)))
       with
      | Unix.Unix_error _ | Invalid_argument _ -> ());
      Close
  | Ok (Some payload) -> (
      let req =
        match Json.of_string payload with
        | Error e -> Error ("bad JSON: " ^ e)
        | Ok json -> Protocol.request_of_json json
      in
      let response, stop =
        match req with
        | Error msg -> (Protocol.error msg, false)
        | Ok r -> (Engine.handle ?admission engine r, r = Protocol.Shutdown)
      in
      (* response-path chaos: the request has executed; the faults decide
         what the client sees of the answer *)
      if Inject.probe kill_site <> None then
        (* kill-before-reply: an abnormal death, skipping every at_exit
           and flush path — the supervised-restart scenario *)
        Unix._exit 70;
      (match Inject.probe delay_site with
      | Some _ ->
          Engine.note_injected_fault engine;
          Inject.delay_spin ()
      | None -> ());
      match Inject.probe frame_close_site with
      | Some _ ->
          Engine.note_injected_fault engine;
          (try Frame.write_truncated fd (Json.to_string response) with
          | Unix.Unix_error _ | Invalid_argument _ -> ());
          Close
      | None -> (
          match Frame.write fd (Json.to_string response) with
          | () -> if stop then Stop else Keep
          | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
              Close
          | exception Invalid_argument _ ->
              (* response over the frame cap (a giant trace export): the
                 peer cannot be answered in-protocol, drop it *)
              Engine.note_protocol_error engine;
              Close))

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let run ~socket ?(jobs = 0) ?cache_dir ?cache_capacity ?sample_period
    ?slow_threshold_ns ?ledger_recent ?ledger_top ?max_inflight
    ?queue_deadline_ms ?restarts ?(drain_grace_ms = 2_000) ?warm
    ?(stop = Atomic.make false) ?(signals = false) ?(log = ignore) () =
  (* a client that disconnects mid-response must be an EPIPE exception
     on our write, not a fatal SIGPIPE *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let engine =
    Engine.create ~jobs ?cache_dir ?cache_capacity ?sample_period
      ?slow_threshold_ns ?ledger_recent ?ledger_top ?max_inflight
      ?queue_deadline_ms ?restarts ()
  in
  (match warm with
  | None -> ()
  | Some w ->
      let n =
        match w with
        | `All -> Engine.warm engine ()
        | `Suite s -> Engine.warm engine ~suite:s ()
      in
      log (Printf.sprintf "warmed %d corpus unit(s)" n));
  if signals then begin
    let request_stop _ = Atomic.set stop true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop)
  end;
  (* a stale socket file from a dead daemon would make bind fail — but
     only a file that no daemon answers on may be unlinked: removing a
     live daemon's socket would silently orphan it and steal its
     traffic. A health round-trip decides. *)
  let stale_or_absent =
    match Unix.stat socket with
    | exception Unix.Unix_error _ -> true
    | st ->
        if st.Unix.st_kind <> Unix.S_SOCK then true
        else if Client.ping ~socket () then false
        else begin
          (try Unix.unlink socket with Unix.Unix_error _ -> ());
          true
        end
  in
  if not stale_or_absent then begin
    log
      (Printf.sprintf
         "refusing to start: a live daemon already answers on %s" socket);
    2
  end
  else begin
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.bind sock (Unix.ADDR_UNIX socket) with
    | exception Unix.Unix_error (e, _, _) ->
        Unix.close sock;
        log
          (Printf.sprintf "cannot bind %s: %s" socket (Unix.error_message e));
        2
    | () ->
        Unix.listen sock 16;
        log (Printf.sprintf "listening on %s (jobs %d)" socket
               (Engine.jobs engine));
        (* connections are multiplexed with select at frame granularity.
           Readable clients enter a FIFO queue stamped with their arrival
           time; one queued request is served per select round, so the
           loop keeps observing new arrivals while it works through a
           backlog — that queue depth and wait are exactly what admission
           control sheds on. *)
        let clients = ref [] in
        let pending = Queue.create () in
        let pending_set = Hashtbl.create 16 in
        let enqueue fd =
          if not (Hashtbl.mem pending_set fd) then begin
            Hashtbl.replace pending_set fd ();
            Queue.add (fd, Dt_obs.Metrics.now_ns ()) pending
          end
        in
        let drop fd =
          clients := List.filter (fun c -> c <> fd) !clients;
          Hashtbl.remove pending_set fd;
          close_quiet fd
        in
        (* pop the next queued request and serve it whole, with the
           queue state it experienced as its admission context *)
        let serve_next () =
          match Queue.take_opt pending with
          | None -> ()
          | Some (fd, enqueued_ns) ->
              Hashtbl.remove pending_set fd;
              if List.mem fd !clients then begin
                let admission =
                  {
                    Engine.depth = Queue.length pending + 1;
                    waited_ns =
                      Int64.sub (Dt_obs.Metrics.now_ns ()) enqueued_ns;
                  }
                in
                match serve_frame ~admission engine fd with
                | Keep -> ()
                | Close -> drop fd
                | Stop ->
                    drop fd;
                    Atomic.set stop true
              end
        in
        let accept_clients readable =
          List.iter
            (fun fd ->
              if fd = sock then (
                match Unix.accept sock with
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                | client, _ -> (
                    Engine.note_connection engine;
                    match Inject.probe accept_drop_site with
                    | Some _ ->
                        (* accept-then-drop: the client sees a clean EOF
                           before any response byte — the retryable case *)
                        Engine.note_injected_fault engine;
                        close_quiet client
                    | None -> clients := !clients @ [ client ]))
              else if List.mem fd !clients then enqueue fd)
            readable
        in
        let rec loop () =
          if Atomic.get stop then ()
          else begin
            (* poll with a timeout so a signal or stop flag is seen even
               with no client activity; don't linger when work is queued *)
            let timeout = if Queue.is_empty pending then 0.2 else 0. in
            let watched =
              sock
              :: List.filter (fun fd -> not (Hashtbl.mem pending_set fd))
                   !clients
            in
            (match Unix.select watched [] [] timeout with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | readable, _, _ ->
                accept_clients readable;
                Engine.set_queue_depth engine (Queue.length pending);
                serve_next ();
                Engine.set_queue_depth engine (Queue.length pending));
            loop ()
          end
        in
        loop ();
        (* graceful drain: stop accepting, then answer requests already
           sent — queued frames plus anything readable on open
           connections — up to the grace period, so SIGTERM under load
           loses no accepted work *)
        close_quiet sock;
        let deadline_ns =
          Int64.add (Dt_obs.Metrics.now_ns ())
            (Int64.mul (Int64.of_int (max 0 drain_grace_ms)) 1_000_000L)
        in
        let drained = ref 0 in
        let rec drain () =
          if Int64.compare (Dt_obs.Metrics.now_ns ()) deadline_ns >= 0 then ()
          else if not (Queue.is_empty pending) then begin
            serve_next ();
            incr drained;
            drain ()
          end
          else if !clients <> [] then begin
            match Unix.select !clients [] [] 0.05 with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
            | [], _, _ -> ()  (* nothing left in flight *)
            | readable, _, _ ->
                List.iter
                  (fun fd -> if List.mem fd !clients then enqueue fd)
                  readable;
                drain ()
          end
        in
        drain ();
        if !drained > 0 then
          log (Printf.sprintf "drained %d in-flight request(s)" !drained);
        List.iter close_quiet !clients;
        (* clean shutdown: verdicts first, then the listening endpoint *)
        let persisted = Engine.flush engine in
        if persisted > 0 then
          log (Printf.sprintf "flushed %d cache entr%s" persisted
                 (if persisted = 1 then "y" else "ies"));
        (try Unix.unlink socket with Unix.Unix_error _ -> ());
        log "stopped";
        0
  end
