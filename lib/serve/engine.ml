module Json = Dt_obs.Json
module Store = Dt_engine.Store
module Record = Dt_report.Record
module Reqtrace = Dt_obs.Reqtrace

type t = {
  jobs : int;
  config : Deptest.Analyze.Config.t;  (* shared: one memo cache for all *)
  store : Store.t option;
  metrics : Dt_obs.Metrics.t;
  sampler : Reqtrace.Sampler.t;
  ring : Reqtrace.Ring.t;
  started_ns : int64;  (* monotonic, for uptime *)
  max_inflight : int;  (* admission budget; 0 = unbounded *)
  queue_deadline_ms : int;  (* max queue wait before shedding; 0 = none *)
  restarts : int;  (* supervised restarts before this incarnation *)
  mutable requests : int;
  mutable analyses : int;  (* analyze requests answered by running tests *)
  mutable response_hits : int;  (* answered whole from the response tier *)
  mutable errors : int;
  mutable protocol_errors : int;  (* bad frames / JSON / unsupported version *)
  mutable connections : int;  (* connections ever accepted *)
  mutable in_flight : int;  (* requests currently being handled *)
  mutable shed : int;  (* analyze requests answered `overloaded` *)
  mutable deadline_exceeded : int;  (* shed because the request budget was spent *)
  mutable injected_faults : int;  (* chaos faults the server performed *)
  mutable queue_depth : int;  (* gauge: requests waiting, set by the server *)
  mutable ewma_analyze_ns : int64;  (* smoothed analyze wall, for retry_after *)
}

(* What the server's select loop knows about a request when it hands it
   over: how many other requests are waiting behind it, and how long it
   sat in the queue before service started. *)
type admission = { depth : int; waited_ns : int64 }

let no_admission = { depth = 0; waited_ns = 0L }

(* The store key prefix for rendered responses; pair verdicts use "p:"
   (see Pair_cache). *)
let response_key source = "r:" ^ Digest.to_hex (Digest.string source)

let create ?(jobs = 0) ?cache_dir ?cache_capacity ?(sample_period = 1)
    ?(slow_threshold_ns = 0L) ?(ledger_recent = 64) ?(ledger_top = 16)
    ?(max_inflight = 0) ?(queue_deadline_ms = 0) ?(restarts = 0) () =
  let jobs = Dt_support.Pool.clamp_auto jobs in
  let metrics = Dt_obs.Metrics.create () in
  (* pre-register every endpoint and tier series so a scrape's series
     set never depends on what traffic arrived first *)
  List.iter
    (fun endpoint -> Dt_obs.Metrics.serve_endpoint metrics ~endpoint)
    Protocol.endpoints;
  List.iter
    (fun tier ->
      Dt_obs.Metrics.serve_tier metrics ~tier:(Reqtrace.tier_name tier))
    Reqtrace.tiers;
  (* the store fingerprint covers the serve configuration's semantics
     (strategy, input pairs, cache, budget, deadline — not jobs) plus
     the cache schema version, so a config or schema change invalidates
     every persisted segment instead of replaying stale verdicts *)
  let fingerprint =
    Record.fingerprint ~label:"serve"
      ~config:(Record.config_of (Deptest.Analyze.Config.make ~jobs ()))
      ~source:(Record.source_of Store.schema_version)
  in
  let store =
    Option.map
      (fun dir -> Store.open_ ~dir ~fingerprint ?capacity:cache_capacity ())
      cache_dir
  in
  let config =
    Deptest.Analyze.Config.make ~jobs ?cache_capacity ?disk:store ~metrics ()
  in
  {
    jobs;
    config;
    store;
    metrics;
    sampler = Reqtrace.Sampler.create ~period:sample_period
        ~threshold_ns:slow_threshold_ns ();
    ring = Reqtrace.Ring.create ~recent:ledger_recent ~top:ledger_top ();
    started_ns = Dt_obs.Metrics.now_ns ();
    max_inflight = max 0 max_inflight;
    queue_deadline_ms = max 0 queue_deadline_ms;
    restarts = max 0 restarts;
    requests = 0;
    analyses = 0;
    response_hits = 0;
    errors = 0;
    protocol_errors = 0;
    connections = 0;
    in_flight = 0;
    shed = 0;
    deadline_exceeded = 0;
    injected_faults = 0;
    queue_depth = 0;
    ewma_analyze_ns = 0L;
  }

let jobs t = t.jobs
let store t = t.store
let restarts t = t.restarts
let shed_total t = t.shed
let deadline_exceeded_total t = t.deadline_exceeded
let note_connection t = t.connections <- t.connections + 1
let note_injected_fault t = t.injected_faults <- t.injected_faults + 1
let set_queue_depth t depth = t.queue_depth <- max 0 depth

let note_protocol_error t =
  t.protocol_errors <- t.protocol_errors + 1;
  t.errors <- t.errors + 1

let parse source =
  match
    if Dt_frontend.Cfront.looks_like_c source then
      [ Dt_frontend.Cfront.parse_and_lower source ]
    else Dt_frontend.Lower.parse_unit source
  with
  | [] -> Error "empty compilation unit"
  | progs -> Ok progs
  | exception Dt_frontend.Cfront.Error (msg, line) ->
      Error (Printf.sprintf "line %d: syntax error: %s" line msg)
  | exception Dt_frontend.Lexer.Error (msg, line) ->
      Error (Printf.sprintf "line %d: lexical error: %s" line msg)
  | exception Dt_frontend.Parser.Error (msg, line) ->
      Error (Printf.sprintf "line %d: syntax error: %s" line msg)
  | exception Dt_frontend.Lower.Error (msg, line) ->
      Error (Printf.sprintf "line %d: %s" line msg)

let decode_response json =
  match (Json.member "output" json, Json.member "degraded" json) with
  | Some (Json.String output), Some (Json.Int degraded) ->
      Some (output, degraded)
  | _ -> None

let analyze_cold config source =
  match parse source with
  | Error _ as e -> e
  | Ok progs ->
      let results = Deptest.Analyze.run_all config progs in
      Ok (Render.unit_ progs results)

(* the response-tier lookup, split out so the analyze path can decide
   how much tracing machinery to set up before running anything *)
type response_lookup = Hit of string * int | Invalid | Miss

let response_lookup t source =
  match t.store with
  | None -> Miss
  | Some store -> (
      let key = response_key source in
      match Store.find store key with
      | Some json -> (
          match decode_response json with
          | Some (output, degraded) ->
              t.response_hits <- t.response_hits + 1;
              Hit (output, degraded)
          | None ->
              Store.note_invalid store;
              Store.remove store key;
              Invalid)
      | None -> Miss)

let persist_response t source output degraded =
  (* a degraded response reflects this run's faults or budget, not the
     program: never persist it *)
  match t.store with
  | Some store when degraded = 0 ->
      Store.add store (response_key source)
        (Json.Obj
           [ ("output", Json.String output); ("degraded", Json.Int degraded) ])
  | _ -> ()

(* [config] differs from [t.config] only by an attached span profiler
   (same memo cache, same store), so caching behavior is identical with
   tracing on or off *)
let analyze_with t config source =
  match response_lookup t source with
  | Hit (output, degraded) -> Ok (output, degraded)
  | Invalid -> analyze_cold config source
  | Miss -> (
      match analyze_cold config source with
      | Error _ as e -> e
      | Ok (output, degraded) as ok ->
          persist_response t source output degraded;
          ok)

let analyze_source t source = analyze_with t t.config source

let warm t ?suite () =
  let entries =
    match suite with
    | None -> Dt_workloads.Corpus.all
    | Some s -> Dt_workloads.Corpus.by_suite s
  in
  List.fold_left
    (fun n (e : Dt_workloads.Corpus.entry) ->
      match analyze_source t e.Dt_workloads.Corpus.source with
      | Ok _ -> n + 1
      | Error _ -> n)
    0 entries

let flush t = match t.store with None -> 0 | Some s -> Store.flush s

let sync_disk_metrics t =
  match t.store with
  | None -> ()
  | Some s ->
      Dt_obs.Metrics.set_disk_cache t.metrics ~hits:(Store.hits s)
        ~misses:(Store.misses s) ~invalid:(Store.invalid s)

let serve_prometheus t =
  let b = Buffer.create 256 in
  let metric typ name help v =
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ);
    Buffer.add_string b (Printf.sprintf "%s %d\n" name v)
  in
  let counter = metric "counter" and gauge = metric "gauge" in
  counter "deptest_serve_requests_total" "Requests handled by the daemon."
    t.requests;
  counter "deptest_serve_analyses_total"
    "Analyze requests that ran the test cascade." t.analyses;
  counter "deptest_serve_response_hits_total"
    "Analyze requests answered whole from the response cache."
    t.response_hits;
  counter "deptest_serve_errors_total" "Requests answered with an error."
    t.errors;
  counter "deptest_serve_protocol_errors_total"
    "Connections dropped on a framing, JSON, or version error." t.protocol_errors;
  counter "deptest_serve_connections_total"
    "Client connections ever accepted." t.connections;
  gauge "deptest_serve_in_flight" "Requests currently being handled."
    t.in_flight;
  gauge "deptest_serve_uptime_ns" "Nanoseconds since the daemon started."
    (Int64.to_int (Int64.sub (Dt_obs.Metrics.now_ns ()) t.started_ns));
  counter "deptest_serve_traced_requests_total"
    "Requests recorded in the slow-request ring ledger."
    (Reqtrace.Ring.total t.ring);
  counter "deptest_serve_shed_total"
    "Analyze requests shed with a structured overloaded response."
    t.shed;
  counter "deptest_serve_deadline_exceeded_total"
    "Analyze requests shed because their own deadline budget was spent \
     queueing." t.deadline_exceeded;
  counter "deptest_serve_restarts_total"
    "Supervised daemon restarts before this incarnation." t.restarts;
  counter "deptest_serve_injected_faults_total"
    "Chaos-harness faults the server performed (accept drops, mid-frame \
     closes, response delays)." t.injected_faults;
  gauge "deptest_serve_queue_depth"
    "Requests waiting in the server's select queue." t.queue_depth;
  Buffer.contents b

let saturation_json t =
  Json.Obj
    [
      ("in_flight", Json.Int t.in_flight);
      ("queue_depth", Json.Int t.queue_depth);
      ("max_inflight", Json.Int t.max_inflight);
      ("queue_deadline_ms", Json.Int t.queue_deadline_ms);
      ("shed", Json.Int t.shed);
      ("deadline_exceeded", Json.Int t.deadline_exceeded);
      ("injected_faults", Json.Int t.injected_faults);
      ("restarts", Json.Int t.restarts);
    ]

let serve_json t =
  Json.Obj
    [
      ("requests", Json.Int t.requests);
      ("analyses", Json.Int t.analyses);
      ("response_hits", Json.Int t.response_hits);
      ("errors", Json.Int t.errors);
      ("protocol_errors", Json.Int t.protocol_errors);
      ("connections", Json.Int t.connections);
      ("in_flight", Json.Int t.in_flight);
      ("traced", Json.Int (Reqtrace.Ring.total t.ring));
      ("saturation", saturation_json t);
    ]

(* ------------------------------------------------------------------ *)
(* the analyze path, wrapped in request-scoped tracing. The profiler is
   attached only when the sampler arms, and worker 0 runs on the calling
   domain, so the whole analysis nests under the Request span on the
   domain-0 buffer. *)

(* the smoothed analyze wall time feeds the retry_after_ms estimate: a
   shed client should come back roughly when the queue ahead of it has
   drained *)
let note_analyze_wall t wall_ns =
  t.ewma_analyze_ns <-
    (if t.ewma_analyze_ns = 0L then wall_ns
     else
       Int64.div
         (Int64.add (Int64.mul 3L t.ewma_analyze_ns) wall_ns)
         4L)

let retry_after_ms t ~depth =
  let per_request_ms =
    max 1L (Int64.div t.ewma_analyze_ns 1_000_000L)
  in
  let ms = Int64.mul (Int64.of_int (max 1 depth)) per_request_ms in
  Int64.to_int (min 5_000L ms)

let handle_analyze t ~source ~id ~trace_id ~deadline_ms =
  let trace_id =
    match trace_id with
    | Some i when Reqtrace.is_id i -> i
    | _ -> Reqtrace.gen_id ()
  in
  let armed = Reqtrace.Sampler.arm t.sampler in
  let ts_ms = int_of_float (Unix.gettimeofday () *. 1000.) in
  let t0 = Dt_obs.Metrics.now_ns () in
  let result, tier, wall_ns, spans =
    match response_lookup t source with
    | Hit (output, degraded) ->
        (* the warm path: no profiler, no buffers — an armed capture is
           one synthesized Request span, so always-on sampling costs
           nothing where latency matters most *)
        let wall_ns = Int64.sub (Dt_obs.Metrics.now_ns ()) t0 in
        let spans =
          if armed && Reqtrace.Sampler.retain t.sampler ~wall_ns then
            [|
              {
                Dt_obs.Span.kind = Dt_obs.Span.Request;
                domain = 0;
                parent = -1;
                t0_ns = t0;
                t1_ns = Int64.add t0 wall_ns;
                minor_words = 0.;
                major_words = 0.;
              };
            |]
          else [||]
        in
        (Ok (output, degraded), Reqtrace.Response, wall_ns, spans)
    | lookup ->
        let had_disk =
          match t.store with Some s -> Store.hits s | None -> 0
        in
        let had_memo = Dt_obs.Metrics.cache_hits t.metrics in
        let profiler =
          if armed then Some (Dt_obs.Span.profiler ()) else None
        in
        let config =
          match profiler with
          | None -> t.config
          | Some _ -> Deptest.Analyze.Config.with_profiler profiler t.config
        in
        (* the remaining request budget becomes this run's analysis
           deadline: pairs that cannot finish inside it degrade
           conservatively (never cached) instead of blowing the
           client's latency budget *)
        let config =
          match deadline_ms with
          | None -> config
          | Some ms ->
              Deptest.Analyze.Config.with_deadline_ms (Some ms) config
        in
        let opened =
          Option.map
            (fun p ->
              let b = Dt_obs.Span.buffer p ~domain:0 in
              (b, Dt_obs.Span.enter b Dt_obs.Span.Request))
            profiler
        in
        let result =
          match analyze_cold config source with
          | Error _ as e -> e
          | Ok (output, degraded) as ok ->
              (match lookup with
              | Miss -> persist_response t source output degraded
              | Hit _ | Invalid -> ());
              ok
        in
        let wall_ns = Int64.sub (Dt_obs.Metrics.now_ns ()) t0 in
        note_analyze_wall t wall_ns;
        Option.iter (fun (b, slot) -> Dt_obs.Span.exit_ b slot) opened;
        (* the coarsest cache tier that contributed to this answer,
           detected by counter deltas around the request (requests are
           handled one at a time, so the deltas are this request's) *)
        let tier =
          match result with
          | Error _ -> Reqtrace.None_
          | Ok _ ->
              if
                (match t.store with Some s -> Store.hits s | None -> 0)
                > had_disk
              then Reqtrace.Disk
              else if Dt_obs.Metrics.cache_hits t.metrics > had_memo then
                Reqtrace.Memo
              else Reqtrace.Cold
        in
        let spans =
          match profiler with
          | Some p when Reqtrace.Sampler.retain t.sampler ~wall_ns ->
              Dt_obs.Span.spans p
          | _ -> [||]
        in
        (result, tier, wall_ns, spans)
  in
  let degraded = match result with Ok (_, d) -> d | Error _ -> 0 in
  Reqtrace.Ring.add t.ring
    {
      trace_id;
      endpoint = "analyze";
      source_digest = Digest.to_hex (Digest.string source);
      tier;
      degraded;
      error = Result.is_error result;
      wall_ns;
      ts_ms;
      spans;
    };
  Dt_obs.Metrics.serve_answered t.metrics ~tier:(Reqtrace.tier_name tier);
  match result with
  | Ok (output, degraded) ->
      if tier <> Reqtrace.Response then t.analyses <- t.analyses + 1;
      Protocol.ok
        (("output", Json.String output)
         :: ("degraded", Json.Int degraded)
         :: ("trace_id", Json.String trace_id)
         ::
         (match id with
         | None -> []
         | Some i -> [ ("id", Json.String i) ]))
  | Error msg ->
      t.errors <- t.errors + 1;
      Protocol.error msg

let entries_response t entries =
  Protocol.ok
    [
      ("total", Json.Int (Reqtrace.Ring.total t.ring));
      ("entries", Json.List (List.map Reqtrace.entry_to_json entries));
    ]

(* Admission control, applied to analyze only — the introspection ops
   (health, metrics, shutdown...) are cheap and must keep answering
   precisely when the daemon is saturated. Sheds are structured
   responses on a healthy connection, never dropped connections, and
   never counted as errors: overload is load management, not failure. *)
let admit t admission ~deadline_ms =
  let waited_ms = Int64.to_int (Int64.div admission.waited_ns 1_000_000L) in
  let remaining_ms = Option.map (fun d -> d - waited_ms) deadline_ms in
  match remaining_ms with
  | Some r when r <= 0 ->
      t.shed <- t.shed + 1;
      t.deadline_exceeded <- t.deadline_exceeded + 1;
      Error (Protocol.deadline_exceeded ~waited_ms)
  | _ ->
      if
        (t.max_inflight > 0 && admission.depth > t.max_inflight)
        || (t.queue_deadline_ms > 0 && waited_ms > t.queue_deadline_ms)
      then begin
        t.shed <- t.shed + 1;
        Error
          (Protocol.overloaded
             ~retry_after_ms:(retry_after_ms t ~depth:admission.depth))
      end
      else Ok remaining_ms

let handle_op t admission req =
  match req with
  | Protocol.Analyze { source; id; trace_id; deadline_ms } -> (
      match admit t admission ~deadline_ms with
      | Error shed_response -> shed_response
      | Ok deadline_ms -> handle_analyze t ~source ~id ~trace_id ~deadline_ms)
  | Protocol.Metrics { prometheus } ->
      sync_disk_metrics t;
      if prometheus then
        Protocol.ok
          [
            ( "prometheus",
              Json.String
                (Dt_obs.Metrics.to_prometheus
                   ~build:[ ("store_schema", Store.schema_version) ]
                   t.metrics
                 ^ serve_prometheus t) );
          ]
      else
        Protocol.ok
          [
            ("metrics", Dt_obs.Metrics.to_json t.metrics);
            ("serve", serve_json t);
          ]
  | Protocol.Health ->
      Protocol.ok
        [
          ("status", Json.String "ok");
          ("jobs", Json.Int t.jobs);
          ( "uptime_ns",
            Json.Int
              (Int64.to_int
                 (Int64.sub (Dt_obs.Metrics.now_ns ()) t.started_ns)) );
          ("requests", Json.Int t.requests);
          ("in_flight", Json.Int t.in_flight);
          ("connections", Json.Int t.connections);
          ("errors", Json.Int t.errors);
          ("protocol_errors", Json.Int t.protocol_errors);
          ("pid", Json.Int (Unix.getpid ()));
          ("saturation", saturation_json t);
          ( "trace",
            Json.Obj
              [
                ("sample_period", Json.Int (Reqtrace.Sampler.period t.sampler));
                ( "slow_threshold_ns",
                  Json.Int
                    (Int64.to_int (Reqtrace.Sampler.threshold_ns t.sampler)) );
                ("ledger_total", Json.Int (Reqtrace.Ring.total t.ring));
              ] );
          ( "cache",
            Json.Obj
              [
                ("memo_hits", Json.Int (Dt_obs.Metrics.cache_hits t.metrics));
                ( "memo_misses",
                  Json.Int (Dt_obs.Metrics.cache_misses t.metrics) );
                ("memo_entries", Json.Int (Dt_obs.Metrics.cache_size t.metrics));
              ] );
          ( "disk",
            match t.store with
            | None -> Json.Bool false
            | Some s ->
                Json.Obj
                  [
                    ("dir", Json.String (Store.dir s));
                    ("resident", Json.Int (Store.length s));
                    ("segments", Json.Int (Store.segments s));
                  ] );
        ]
  | Protocol.Slow { n } -> entries_response t (Reqtrace.Ring.recent ?n t.ring)
  | Protocol.Top { n } -> entries_response t (Reqtrace.Ring.top ?n t.ring)
  | Protocol.Trace_last { trace_id } -> (
      let entry =
        match trace_id with
        | Some id -> Reqtrace.Ring.find t.ring id
        | None -> Reqtrace.Ring.last_capture t.ring
      in
      match entry with
      | None -> Protocol.error "no captured request trace in the ledger"
      | Some e when Array.length e.spans = 0 ->
          Protocol.error
            (Printf.sprintf
               "request %s is in the ledger but its span capture was not \
                retained (sampling period or threshold)"
               e.trace_id)
      | Some e ->
          Protocol.ok
            [
              ("trace_id", Json.String e.trace_id);
              ("entry", Reqtrace.entry_to_json e);
              ( "chrome_trace",
                Dt_obs.Timeline.to_chrome ~process:("deptest req " ^ e.trace_id)
                  e.spans );
            ])
  | Protocol.Flush -> Protocol.ok [ ("persisted", Json.Int (flush t)) ]
  | Protocol.Shutdown -> Protocol.ok []

let handle ?(admission = no_admission) t req =
  t.requests <- t.requests + 1;
  t.in_flight <- t.in_flight + 1;
  let t0 = Dt_obs.Metrics.now_ns () in
  Fun.protect
    ~finally:(fun () ->
      t.in_flight <- t.in_flight - 1;
      Dt_obs.Metrics.serve_request t.metrics
        ~endpoint:(Protocol.endpoint_of req)
        ~ns:(Int64.sub (Dt_obs.Metrics.now_ns ()) t0))
    (fun () ->
      try handle_op t admission req
      with e ->
        t.errors <- t.errors + 1;
        Protocol.error (Printexc.to_string e))
