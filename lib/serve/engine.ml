module Json = Dt_obs.Json
module Store = Dt_engine.Store
module Record = Dt_report.Record

type t = {
  jobs : int;
  config : Deptest.Analyze.Config.t;  (* shared: one memo cache for all *)
  store : Store.t option;
  metrics : Dt_obs.Metrics.t;
  mutable requests : int;
  mutable analyses : int;  (* analyze requests answered by running tests *)
  mutable response_hits : int;  (* answered whole from the response tier *)
  mutable errors : int;
}

(* The store key prefix for rendered responses; pair verdicts use "p:"
   (see Pair_cache). *)
let response_key source = "r:" ^ Digest.to_hex (Digest.string source)

let create ?(jobs = 0) ?cache_dir ?cache_capacity () =
  let jobs = Dt_support.Pool.clamp_auto jobs in
  let metrics = Dt_obs.Metrics.create () in
  (* the store fingerprint covers the serve configuration's semantics
     (strategy, input pairs, cache, budget, deadline — not jobs) plus
     the cache schema version, so a config or schema change invalidates
     every persisted segment instead of replaying stale verdicts *)
  let fingerprint =
    Record.fingerprint ~label:"serve"
      ~config:(Record.config_of (Deptest.Analyze.Config.make ~jobs ()))
      ~source:(Record.source_of Store.schema_version)
  in
  let store =
    Option.map
      (fun dir -> Store.open_ ~dir ~fingerprint ?capacity:cache_capacity ())
      cache_dir
  in
  let config =
    Deptest.Analyze.Config.make ~jobs ?cache_capacity ?disk:store ~metrics ()
  in
  { jobs; config; store; metrics; requests = 0; analyses = 0;
    response_hits = 0; errors = 0 }

let jobs t = t.jobs
let store t = t.store

let parse source =
  match
    if Dt_frontend.Cfront.looks_like_c source then
      [ Dt_frontend.Cfront.parse_and_lower source ]
    else Dt_frontend.Lower.parse_unit source
  with
  | [] -> Error "empty compilation unit"
  | progs -> Ok progs
  | exception Dt_frontend.Cfront.Error (msg, line) ->
      Error (Printf.sprintf "line %d: syntax error: %s" line msg)
  | exception Dt_frontend.Lexer.Error (msg, line) ->
      Error (Printf.sprintf "line %d: lexical error: %s" line msg)
  | exception Dt_frontend.Parser.Error (msg, line) ->
      Error (Printf.sprintf "line %d: syntax error: %s" line msg)
  | exception Dt_frontend.Lower.Error (msg, line) ->
      Error (Printf.sprintf "line %d: %s" line msg)

let decode_response json =
  match (Json.member "output" json, Json.member "degraded" json) with
  | Some (Json.String output), Some (Json.Int degraded) ->
      Some (output, degraded)
  | _ -> None

let analyze_cold t source =
  match parse source with
  | Error _ as e -> e
  | Ok progs ->
      let results = Deptest.Analyze.run_all t.config progs in
      Ok (Render.unit_ progs results)

let analyze_source t source =
  match t.store with
  | None -> analyze_cold t source
  | Some store -> (
      let key = response_key source in
      match Store.find store key with
      | Some json -> (
          match decode_response json with
          | Some (output, degraded) ->
              t.response_hits <- t.response_hits + 1;
              Ok (output, degraded)
          | None ->
              Store.note_invalid store;
              Store.remove store key;
              analyze_cold t source)
      | None -> (
          match analyze_cold t source with
          | Error _ as e -> e
          | Ok (output, degraded) as ok ->
              (* a degraded response reflects this run's faults or
                 budget, not the program: never persist it *)
              if degraded = 0 then
                Store.add store key
                  (Json.Obj
                     [
                       ("output", Json.String output);
                       ("degraded", Json.Int degraded);
                     ]);
              ok))

let warm t ?suite () =
  let entries =
    match suite with
    | None -> Dt_workloads.Corpus.all
    | Some s -> Dt_workloads.Corpus.by_suite s
  in
  List.fold_left
    (fun n (e : Dt_workloads.Corpus.entry) ->
      match analyze_source t e.Dt_workloads.Corpus.source with
      | Ok _ -> n + 1
      | Error _ -> n)
    0 entries

let flush t = match t.store with None -> 0 | Some s -> Store.flush s

let sync_disk_metrics t =
  match t.store with
  | None -> ()
  | Some s ->
      Dt_obs.Metrics.set_disk_cache t.metrics ~hits:(Store.hits s)
        ~misses:(Store.misses s) ~invalid:(Store.invalid s)

let serve_prometheus t =
  let b = Buffer.create 256 in
  let counter name help v =
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" name);
    Buffer.add_string b (Printf.sprintf "%s %d\n" name v)
  in
  counter "deptest_serve_requests_total" "Requests handled by the daemon."
    t.requests;
  counter "deptest_serve_analyses_total"
    "Analyze requests that ran the test cascade." t.analyses;
  counter "deptest_serve_response_hits_total"
    "Analyze requests answered whole from the response cache."
    t.response_hits;
  counter "deptest_serve_errors_total" "Requests answered with an error."
    t.errors;
  Buffer.contents b

let serve_json t =
  Json.Obj
    [
      ("requests", Json.Int t.requests);
      ("analyses", Json.Int t.analyses);
      ("response_hits", Json.Int t.response_hits);
      ("errors", Json.Int t.errors);
    ]

let handle t req =
  t.requests <- t.requests + 1;
  match req with
  | Protocol.Analyze { source; id } -> (
      let had_hits = t.response_hits in
      match analyze_source t source with
      | Ok (output, degraded) ->
          if t.response_hits = had_hits then t.analyses <- t.analyses + 1;
          Protocol.ok
            (("output", Json.String output)
             :: ("degraded", Json.Int degraded)
             ::
             (match id with
             | None -> []
             | Some i -> [ ("id", Json.String i) ]))
      | Error msg ->
          t.errors <- t.errors + 1;
          Protocol.error msg)
  | Protocol.Metrics { prometheus } ->
      sync_disk_metrics t;
      if prometheus then
        Protocol.ok
          [
            ( "prometheus",
              Json.String
                (Dt_obs.Metrics.to_prometheus t.metrics ^ serve_prometheus t)
            );
          ]
      else
        Protocol.ok
          [
            ("metrics", Dt_obs.Metrics.to_json t.metrics);
            ("serve", serve_json t);
          ]
  | Protocol.Health ->
      Protocol.ok
        [
          ("status", Json.String "ok");
          ("jobs", Json.Int t.jobs);
          ( "disk",
            match t.store with
            | None -> Json.Bool false
            | Some s ->
                Json.Obj
                  [
                    ("dir", Json.String (Store.dir s));
                    ("resident", Json.Int (Store.length s));
                    ("segments", Json.Int (Store.segments s));
                  ] );
        ]
  | Protocol.Flush -> Protocol.ok [ ("persisted", Json.Int (flush t)) ]
  | Protocol.Shutdown -> Protocol.ok []
