module Json = Dt_obs.Json

(* Wire version. v1 (PR 8) had no "v" field and no trace ids; v2 added
   both plus the introspection ops; v3 adds the optional analyze
   deadline and the structured overload response. Absent "v" is read as
   1 so old clients keep working; a version above [version] is refused
   so an old daemon fails loud instead of misreading a future frame. *)
let version = 3

type request =
  | Analyze of {
      source : string;
      id : string option;
      trace_id : string option;
      deadline_ms : int option;
    }
  | Metrics of { prometheus : bool }
  | Health
  | Slow of { n : int option }
  | Top of { n : int option }
  | Trace_last of { trace_id : string option }
  | Flush
  | Shutdown

let opt_field k = function None -> [] | Some v -> [ (k, Json.String v) ]
let opt_int k = function None -> [] | Some v -> [ (k, Json.Int v) ]

let request_to_json req =
  let v = ("v", Json.Int version) in
  match req with
  | Analyze { source; id; trace_id; deadline_ms } ->
      Json.Obj
        (("op", Json.String "analyze")
         :: v
         :: ("source", Json.String source)
         :: (opt_field "id" id @ opt_field "trace_id" trace_id
             @ opt_int "deadline_ms" deadline_ms))
  | Metrics { prometheus } ->
      Json.Obj
        [
          ("op", Json.String "metrics");
          v;
          ("format", Json.String (if prometheus then "prometheus" else "json"));
        ]
  | Health -> Json.Obj [ ("op", Json.String "health"); v ]
  | Slow { n } -> Json.Obj (("op", Json.String "slow") :: v :: opt_int "n" n)
  | Top { n } -> Json.Obj (("op", Json.String "top") :: v :: opt_int "n" n)
  | Trace_last { trace_id } ->
      Json.Obj
        (("op", Json.String "trace-last") :: v :: opt_field "trace_id" trace_id)
  | Flush -> Json.Obj [ ("op", Json.String "flush"); v ]
  | Shutdown -> Json.Obj [ ("op", Json.String "shutdown"); v ]

let str_member k json =
  match Json.member k json with Some (Json.String s) -> Some s | _ -> None

let int_member k json =
  match Json.member k json with Some (Json.Int n) -> Some n | _ -> None

let request_of_json json =
  match int_member "v" json with
  | Some v when v > version ->
      Error
        (Printf.sprintf
           "protocol version %d not supported (this daemon speaks <= %d)" v
           version)
  | _ -> (
      match Json.member "op" json with
      | Some (Json.String "analyze") -> (
          match str_member "source" json with
          | Some source ->
              Ok
                (Analyze
                   {
                     source;
                     id = str_member "id" json;
                     trace_id = str_member "trace_id" json;
                     deadline_ms = int_member "deadline_ms" json;
                   })
          | None -> Error "analyze: missing string field \"source\"")
      | Some (Json.String "metrics") ->
          Ok (Metrics { prometheus = str_member "format" json
                                     = Some "prometheus" })
      | Some (Json.String "health") -> Ok Health
      | Some (Json.String "slow") -> Ok (Slow { n = int_member "n" json })
      | Some (Json.String "top") -> Ok (Top { n = int_member "n" json })
      | Some (Json.String "trace-last") ->
          Ok (Trace_last { trace_id = str_member "trace_id" json })
      | Some (Json.String "flush") -> Ok Flush
      | Some (Json.String "shutdown") -> Ok Shutdown
      | Some (Json.String op) -> Error (Printf.sprintf "unknown op %S" op)
      | _ -> Error "request is not an object with a string \"op\"")

let endpoint_of = function
  | Analyze _ -> "analyze"
  | Metrics _ -> "metrics"
  | Health -> "health"
  | Slow _ -> "slow"
  | Top _ -> "top"
  | Trace_last _ -> "trace-last"
  | Flush -> "flush"
  | Shutdown -> "shutdown"

let endpoints =
  [ "analyze"; "metrics"; "health"; "slow"; "top"; "trace-last"; "flush";
    "shutdown" ]

let error msg =
  Json.Obj [ ("ok", Json.Bool false); ("error", Json.String msg) ]

let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)

let overloaded ~retry_after_ms =
  Json.Obj
    [
      ("ok", Json.Bool false);
      ("error", Json.String "overloaded");
      ("overloaded", Json.Bool true);
      ("retry_after_ms", Json.Int (max 1 retry_after_ms));
    ]

let deadline_exceeded ~waited_ms =
  Json.Obj
    [
      ("ok", Json.Bool false);
      ( "error",
        Json.String
          (Printf.sprintf
             "deadline exceeded: request budget spent after %d ms in queue"
             waited_ms) );
      ("deadline_exceeded", Json.Bool true);
    ]

let retry_after_of json =
  match Json.member "overloaded" json with
  | Some (Json.Bool true) -> (
      match int_member "retry_after_ms" json with
      | Some ms -> Some (max 1 ms)
      | None -> Some 1)
  | _ -> None

let is_deadline_exceeded json =
  match Json.member "deadline_exceeded" json with
  | Some (Json.Bool true) -> true
  | _ -> false
