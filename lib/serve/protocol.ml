module Json = Dt_obs.Json

type request =
  | Analyze of { source : string; id : string option }
  | Metrics of { prometheus : bool }
  | Health
  | Flush
  | Shutdown

let request_to_json = function
  | Analyze { source; id } ->
      Json.Obj
        (("op", Json.String "analyze")
         :: ("source", Json.String source)
         :: (match id with None -> [] | Some i -> [ ("id", Json.String i) ]))
  | Metrics { prometheus } ->
      Json.Obj
        [
          ("op", Json.String "metrics");
          ("format", Json.String (if prometheus then "prometheus" else "json"));
        ]
  | Health -> Json.Obj [ ("op", Json.String "health") ]
  | Flush -> Json.Obj [ ("op", Json.String "flush") ]
  | Shutdown -> Json.Obj [ ("op", Json.String "shutdown") ]

let request_of_json json =
  match Json.member "op" json with
  | Some (Json.String "analyze") -> (
      match Json.member "source" json with
      | Some (Json.String source) ->
          let id =
            match Json.member "id" json with
            | Some (Json.String i) -> Some i
            | _ -> None
          in
          Ok (Analyze { source; id })
      | _ -> Error "analyze: missing string field \"source\"")
  | Some (Json.String "metrics") ->
      let prometheus =
        match Json.member "format" json with
        | Some (Json.String "prometheus") -> true
        | _ -> false
      in
      Ok (Metrics { prometheus })
  | Some (Json.String "health") -> Ok Health
  | Some (Json.String "flush") -> Ok Flush
  | Some (Json.String "shutdown") -> Ok Shutdown
  | Some (Json.String op) -> Error (Printf.sprintf "unknown op %S" op)
  | _ -> Error "request is not an object with a string \"op\""

let error msg =
  Json.Obj [ ("ok", Json.Bool false); ("error", Json.String msg) ]

let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)
