(** The daemon's analysis core: one shared configuration (memo cache +
    optional disk store + metrics registry) serving every request.

    Two cache levels answer an analyze request:
    + a response-level entry (key ["r:" ^ source-digest]) holding the
      rendered verdict text — a whole round-trip short-circuits;
    + the structural pair tier ({!Deptest.Pair_cache} over the same
      {!Dt_engine.Store}, keys ["p:" ^ canonical-key]) — a cold response
      over warm pairs still skips the test cascade.

    Responses containing degraded verdicts are never cached at either
    level. All verdict text comes from {!Render}, so answers are
    byte-identical to the one-shot [deptest analyze].

    Every request is additionally observed ({!Dt_obs.Reqtrace}): timed
    into the per-endpoint latency histogram, and — for analyze — entered
    into the slow-request ring ledger under its trace id, tagged with
    the coarsest cache tier that answered it. When the sampler arms, the
    whole analysis runs under a request-scoped {!Dt_obs.Span} profiler
    whose capture (if retained by the latency threshold) the
    [trace-last] endpoint exports as a Chrome trace. The profiler is the
    only difference between a traced and an untraced run — same memo
    cache, same store — so answers stay byte-identical either way. *)

type t

val create :
  ?jobs:int ->
  ?cache_dir:string ->
  ?cache_capacity:int ->
  ?sample_period:int ->
  ?slow_threshold_ns:int64 ->
  ?ledger_recent:int ->
  ?ledger_top:int ->
  unit ->
  t
(** [jobs] is resolved through {!Dt_support.Pool.clamp_auto} (never
    oversubscribe). [cache_dir] attaches the persistent store, keyed by
    the serve configuration's fingerprint; omitted means in-memory only.
    [cache_capacity] bounds both tiers.

    [sample_period] (default 1: every request) arms span capture on
    every n-th analyze, [0] never; [slow_threshold_ns] (default 0: keep
    everything armed) drops captures of requests faster than it;
    [ledger_recent]/[ledger_top] (64/16) bound the ring ledger. *)

val jobs : t -> int
(** The clamped worker count actually in use. *)

val store : t -> Dt_engine.Store.t option

val note_connection : t -> unit
(** The server accepted one client connection. *)

val note_protocol_error : t -> unit
(** The server dropped a connection on a framing error (oversized or
    truncated frame); counted into both [protocol_errors] and
    [errors]. *)

val analyze_source : t -> string -> (string * int, string) result
(** [Ok (rendered, degraded_pairs)] or [Error message] for a source
    text that does not parse. Used by [warm] and tests; the request
    path ({!handle}) adds tracing around the same function. *)

val warm : t -> ?suite:string -> unit -> int
(** Pre-analyze the workload corpus ({!Dt_workloads.Corpus}, optionally
    one suite) through the same caching path, so a fresh daemon answers
    its first real requests warm. Returns the number of units warmed. *)

val flush : t -> int
(** Persist the disk store; the number of entries on disk after. *)

val handle : t -> Protocol.request -> Dt_obs.Json.t
(** Answer one request ([Shutdown] gets its [ok] response here too; the
    server loop decides to stop). Never raises. *)
