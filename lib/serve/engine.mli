(** The daemon's analysis core: one shared configuration (memo cache +
    optional disk store + metrics registry) serving every request.

    Two cache levels answer an analyze request:
    + a response-level entry (key ["r:" ^ source-digest]) holding the
      rendered verdict text — a whole round-trip short-circuits;
    + the structural pair tier ({!Deptest.Pair_cache} over the same
      {!Dt_engine.Store}, keys ["p:" ^ canonical-key]) — a cold response
      over warm pairs still skips the test cascade.

    Responses containing degraded verdicts are never cached at either
    level. All verdict text comes from {!Render}, so answers are
    byte-identical to the one-shot [deptest analyze].

    Every request is additionally observed ({!Dt_obs.Reqtrace}): timed
    into the per-endpoint latency histogram, and — for analyze — entered
    into the slow-request ring ledger under its trace id, tagged with
    the coarsest cache tier that answered it. When the sampler arms, the
    whole analysis runs under a request-scoped {!Dt_obs.Span} profiler
    whose capture (if retained by the latency threshold) the
    [trace-last] endpoint exports as a Chrome trace. The profiler is the
    only difference between a traced and an untraced run — same memo
    cache, same store — so answers stay byte-identical either way. *)

type t

type admission = { depth : int; waited_ns : int64 }
(** What the server loop knows about a request at service time: [depth]
    is the number of requests waiting in the queue (including this one),
    [waited_ns] how long this one sat queued before being served. *)

val no_admission : admission
(** [depth 0, waited 0] — the default for direct callers (tests, the
    drain path): nothing is ever shed under it. *)

val create :
  ?jobs:int ->
  ?cache_dir:string ->
  ?cache_capacity:int ->
  ?sample_period:int ->
  ?slow_threshold_ns:int64 ->
  ?ledger_recent:int ->
  ?ledger_top:int ->
  ?max_inflight:int ->
  ?queue_deadline_ms:int ->
  ?restarts:int ->
  unit ->
  t
(** [jobs] is resolved through {!Dt_support.Pool.clamp_auto} (never
    oversubscribe). [cache_dir] attaches the persistent store, keyed by
    the serve configuration's fingerprint; omitted means in-memory only.
    [cache_capacity] bounds both tiers.

    [sample_period] (default 1: every request) arms span capture on
    every n-th analyze, [0] never; [slow_threshold_ns] (default 0: keep
    everything armed) drops captures of requests faster than it;
    [ledger_recent]/[ledger_top] (64/16) bound the ring ledger.

    [max_inflight] (default 0: unbounded) sheds an analyze request with
    {!Protocol.overloaded} when more than that many requests are queued
    at service time; [queue_deadline_ms] (default 0: none) sheds one
    that already waited longer than that in the queue. [restarts] is the
    supervised-restart count this incarnation inherits, exported on
    [health] and [deptest_serve_restarts_total]. *)

val jobs : t -> int
(** The clamped worker count actually in use. *)

val store : t -> Dt_engine.Store.t option

val restarts : t -> int

val shed_total : t -> int
(** Analyze requests answered with {!Protocol.overloaded} or
    {!Protocol.deadline_exceeded} so far. *)

val deadline_exceeded_total : t -> int

val note_connection : t -> unit
(** The server accepted one client connection. *)

val note_injected_fault : t -> unit
(** The server performed one chaos-harness fault (accept drop, mid-frame
    close, response delay) — counted on
    [deptest_serve_injected_faults_total] so every injected degradation
    is observable. *)

val set_queue_depth : t -> int -> unit
(** The server publishes its current select-queue depth here; exported
    as the [deptest_serve_queue_depth] gauge and in [health]'s
    saturation block. *)

val note_protocol_error : t -> unit
(** The server dropped a connection on a framing error (oversized or
    truncated frame); counted into both [protocol_errors] and
    [errors]. *)

val analyze_source : t -> string -> (string * int, string) result
(** [Ok (rendered, degraded_pairs)] or [Error message] for a source
    text that does not parse. Used by [warm] and tests; the request
    path ({!handle}) adds tracing around the same function. *)

val warm : t -> ?suite:string -> unit -> int
(** Pre-analyze the workload corpus ({!Dt_workloads.Corpus}, optionally
    one suite) through the same caching path, so a fresh daemon answers
    its first real requests warm. Returns the number of units warmed. *)

val flush : t -> int
(** Persist the disk store; the number of entries on disk after. *)

val handle : ?admission:admission -> t -> Protocol.request -> Dt_obs.Json.t
(** Answer one request ([Shutdown] gets its [ok] response here too; the
    server loop decides to stop). Never raises.

    [admission] drives overload shedding for analyze requests only —
    introspection ops answer even when saturated. A request over the
    [max_inflight] depth or the [queue_deadline_ms] wait gets
    {!Protocol.overloaded} with a [retry_after_ms] estimated from queue
    depth times the smoothed analyze wall time; one whose own
    [deadline_ms] budget was spent queueing gets
    {!Protocol.deadline_exceeded}. Otherwise the remaining budget
    (request deadline minus queue wait) becomes the analysis deadline
    via {!Deptest.Analyze.Config}, degrading conservatively rather than
    overrunning. Sheds are counted ([shed_total]) but are not errors. *)
