(** The daemon's analysis core: one shared configuration (memo cache +
    optional disk store + metrics registry) serving every request.

    Two cache levels answer an analyze request:
    + a response-level entry (key ["r:" ^ source-digest]) holding the
      rendered verdict text — a whole round-trip short-circuits;
    + the structural pair tier ({!Deptest.Pair_cache} over the same
      {!Dt_engine.Store}, keys ["p:" ^ canonical-key]) — a cold response
      over warm pairs still skips the test cascade.

    Responses containing degraded verdicts are never cached at either
    level. All verdict text comes from {!Render}, so answers are
    byte-identical to the one-shot [deptest analyze]. *)

type t

val create : ?jobs:int -> ?cache_dir:string -> ?cache_capacity:int -> unit -> t
(** [jobs] is resolved through {!Dt_support.Pool.clamp_auto} (never
    oversubscribe). [cache_dir] attaches the persistent store, keyed by
    the serve configuration's fingerprint; omitted means in-memory only.
    [cache_capacity] bounds both tiers. *)

val jobs : t -> int
(** The clamped worker count actually in use. *)

val store : t -> Dt_engine.Store.t option

val analyze_source : t -> string -> (string * int, string) result
(** [Ok (rendered, degraded_pairs)] or [Error message] for a source
    text that does not parse. *)

val warm : t -> ?suite:string -> unit -> int
(** Pre-analyze the workload corpus ({!Dt_workloads.Corpus}, optionally
    one suite) through the same caching path, so a fresh daemon answers
    its first real requests warm. Returns the number of units warmed. *)

val flush : t -> int
(** Persist the disk store; the number of entries on disk after. *)

val handle : t -> Protocol.request -> Dt_obs.Json.t
(** Answer one request ([Shutdown] gets its [ok] response here too; the
    server loop decides to stop). Never raises. *)
