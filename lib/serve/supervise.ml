(* Crash-only serving: the daemon body runs in a forked child; the
   supervisor restarts it on abnormal exit with exponential backoff and
   a restart cap. The disk store (PR 8) makes each restart warm, and the
   restart count is threaded back into the child so `health` and
   deptest_serve_restarts_total expose it. *)

type outcome = Exited of int | Signaled of int

let run ?(max_restarts = 5) ?(backoff_ms = 100) ?(backoff_cap_ms = 5_000)
    ?(signals = false) ?(log = ignore) body =
  let stopping = ref false in
  let child = ref None in
  if signals then begin
    let forward signum _ =
      stopping := true;
      match !child with
      | Some pid -> ( try Unix.kill pid signum with Unix.Unix_error _ -> ())
      | None -> ()
    in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (forward Sys.sigterm));
    Sys.set_signal Sys.sigint (Sys.Signal_handle (forward Sys.sigint))
  end;
  let rec waitpid pid =
    match Unix.waitpid [] pid with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid pid
    | _, Unix.WEXITED code -> Exited code
    | _, Unix.WSIGNALED signum | _, Unix.WSTOPPED signum -> Signaled signum
  in
  (* interruptible backoff: a stop signal during the sleep must not be
     followed by another restart *)
  let rec sleep_ms ms =
    if ms > 0 && not !stopping then begin
      let chunk = min ms 50 in
      (try Unix.sleepf (float_of_int chunk /. 1000.)
       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      sleep_ms (ms - chunk)
    end
  in
  let rec spawn restarts =
    match Unix.fork () with
    | 0 ->
        (* the child must not inherit the supervisor's forwarding
           handlers: until the daemon installs its own, a forwarded
           SIGTERM should kill it (and end supervision), not be
           swallowed *)
        if signals then begin
          Sys.set_signal Sys.sigterm Sys.Signal_default;
          Sys.set_signal Sys.sigint Sys.Signal_default
        end;
        (* the child never returns to the supervisor's code *)
        Stdlib.exit (body ~restarts)
    | pid -> (
        child := Some pid;
        match waitpid pid with
        | Exited 0 ->
            log (Printf.sprintf "daemon exited cleanly after %d restart(s)"
                   restarts);
            0
        | outcome ->
            let describe = function
              | Exited code -> Printf.sprintf "exited %d" code
              | Signaled signum -> Printf.sprintf "killed by signal %d" signum
            in
            if !stopping then begin
              log (Printf.sprintf "daemon %s during shutdown"
                     (describe outcome));
              (match outcome with Exited code -> code | Signaled _ -> 1)
            end
            else if restarts >= max_restarts then begin
              log
                (Printf.sprintf
                   "daemon %s; restart cap (%d) reached, giving up"
                   (describe outcome) max_restarts);
              (match outcome with Exited code -> code | Signaled _ -> 1)
            end
            else begin
              (* crash-loop backoff: 1x, 2x, 4x ... the base, capped *)
              let ms =
                min backoff_cap_ms
                  (backoff_ms * (1 lsl min restarts 16))
              in
              log
                (Printf.sprintf "daemon %s; restart %d/%d in %d ms"
                   (describe outcome) (restarts + 1) max_restarts ms);
              sleep_ms ms;
              if !stopping then
                match outcome with Exited code -> code | Signaled _ -> 1
              else spawn (restarts + 1)
            end)
  in
  spawn 0
