(* Deterministic fault injection.

   Guarded code marks its containment sites with [hit site]; when
   injection is off (the default) that is one ref load and a match — no
   allocation, no table lookup. Tests and the CI fault matrix enable a
   configuration (which kinds to inject, a seed, an injection period, an
   optional single-site filter) and every degradation path can then be
   exercised deterministically: the n-th hit of a site fires iff
   [(n + seed) mod period = 0], and the kind rotates through the enabled
   list.

   The harness mutates plain per-site counters: enable it only around
   single-domain runs (the unit tests, the sequential CLI paths). *)

exception Injected of string

type kind = Overflow | Exception | Delay

let kind_name = function
  | Overflow -> "overflow"
  | Exception -> "exception"
  | Delay -> "delay"

let kind_of_name = function
  | "overflow" -> Some Overflow
  | "exception" -> Some Exception
  | "delay" -> Some Delay
  | _ -> None

type cfg = {
  kinds : kind array;
  seed : int;
  period : int;
  only : string option;
  counts : (string, int ref) Hashtbl.t;
  mutable injected : int;
}

(* --- site registry ------------------------------------------------- *)

let registry : string list ref = ref []

let register name =
  if not (List.mem name !registry) then registry := name :: !registry;
  name

let site_names () = List.sort String.compare !registry

(* --- activation ---------------------------------------------------- *)

let active : cfg option ref = ref None

let enable ?(seed = 0) ?(period = 1) ?only kinds =
  if kinds = [] then invalid_arg "Inject.enable: no kinds";
  if period < 1 then invalid_arg "Inject.enable: period < 1";
  active :=
    Some
      {
        kinds = Array.of_list kinds;
        seed;
        period;
        only;
        counts = Hashtbl.create 16;
        injected = 0;
      }

let disable () = active := None
let enabled () = !active <> None
let injected_count () = match !active with Some c -> c.injected | None -> 0

(* a deterministic busy spin: no clock, no sleep, survives inlining *)
let delay_spin () =
  let x = ref 0 in
  for i = 1 to 50_000 do
    x := !x + i
  done;
  ignore (Sys.opaque_identity !x)

let fire c site n =
  let k = ((n + c.seed) / c.period) mod Array.length c.kinds in
  c.injected <- c.injected + 1;
  match c.kinds.(k) with
  | Overflow -> raise Ops.Overflow
  | Exception -> raise (Injected site)
  | Delay -> delay_spin ()

let count c site =
  match Hashtbl.find_opt c.counts site with
  | Some r ->
      incr r;
      !r
  | None ->
      Hashtbl.add c.counts site (ref 1);
      1

let hit site =
  match !active with
  | None -> ()
  | Some c ->
      let skip = match c.only with Some s -> s <> site | None -> false in
      if not skip then begin
        let n = count c site in
        if (n + c.seed) mod c.period = 0 then fire c site n
      end

let probe site =
  match !active with
  | None -> None
  | Some c ->
      (* probe sites take fd- or process-destructive actions (dropped
         connections, truncated frames, kills), so unlike [hit] they
         fire only when the configuration names them explicitly: a
         broadly-enabled harness (no [only]) must not take a daemon
         down as a side effect of exercising guard sites. *)
      let targeted = c.only = Some site in
      if not targeted then None
      else begin
        let n = count c site in
        if (n + c.seed) mod c.period = 0 then begin
          let k = ((n + c.seed) / c.period) mod Array.length c.kinds in
          c.injected <- c.injected + 1;
          Some c.kinds.(k)
        end
        else None
      end

(* --- environment wiring (opt-in per process; only the CLI calls it) - *)

let getenv_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v -> v
  | None -> default

let from_env () =
  match Sys.getenv_opt "DEPTEST_INJECT" with
  | None | Some "" -> ()
  | Some spec ->
      let kinds =
        String.split_on_char ',' spec
        |> List.filter_map (fun s -> kind_of_name (String.trim s))
      in
      if kinds <> [] then
        enable
          ~seed:(getenv_int "DEPTEST_INJECT_SEED" 0)
          ~period:(max 1 (getenv_int "DEPTEST_INJECT_PERIOD" 1))
          ?only:(Sys.getenv_opt "DEPTEST_INJECT_ONLY")
          kinds
