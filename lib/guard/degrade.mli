(** Degradation reasons.

    When a pair test cannot be trusted — checked arithmetic overflowed, an
    exception escaped a test, or the work budget / deadline ran out — the
    driver records one of these and assumes dependence with every
    direction vector. Degradation is always sound (a superset of the true
    dependences) and never silent: the reason lands in the pair's meta,
    the metrics [guard] block, and a trace note. *)

type reason = Overflow | Exception of string | Budget

val label : reason -> string
(** The reason's bucket name ([overflow] / [exception] / [budget]), as
    used by the metrics JSON. *)

val to_string : reason -> string
(** [label], plus the carried message for [Exception]. *)

val tag : reason -> [ `Overflow | `Exception | `Budget ]
(** The structural bucket, for consumers (like the metrics registry)
    that must not depend on this library. *)

val pp : Format.formatter -> reason -> unit
val equal : reason -> reason -> bool
