(** Overflow-checked native-int arithmetic.

    Exact result or [Overflow] — never a silent wrap. A wrapped bound in
    the dependence tester can report false independence; every arithmetic
    site on the driver's verdict path goes through these operations and
    degrades conservatively (all direction vectors assumed) when one
    raises. [Overflow] carries no payload, so raising is allocation-free
    and cheap enough for the Banerjee hot loops. *)

exception Overflow

val add : int -> int -> int
val sub : int -> int -> int
val neg : int -> int
val mul : int -> int -> int

val sum : int list -> int
val sum_array : int array -> int

val add_opt : int -> int -> int option
(** [None] instead of raising, for option-shaped callers. *)

val mul_opt : int -> int -> int option
