(** Deterministic, site-keyed fault injection.

    Off by default and nearly free when off: {!hit} is a single ref load.
    When enabled, the n-th hit of a site fires iff
    [(n + seed) mod period = 0], and the fired kind rotates through the
    enabled list — fully deterministic, so a failing seed reproduces.

    Injected faults exercise the driver's containment paths: [Overflow]
    raises {!Ops.Overflow}, [Exception] raises {!Injected} (carrying the
    site name), [Delay] spins long enough for a wall-clock deadline to
    trip. The harness keeps plain mutable counters — enable it only
    around single-domain runs. *)

exception Injected of string
(** An injected fault, carrying the site that fired. *)

type kind = Overflow | Exception | Delay

val kind_name : kind -> string
val kind_of_name : string -> kind option

val register : string -> string
(** [register name] records [name] in the site registry (idempotent) and
    returns it, so a module can bind its site at toplevel:
    [let site = Inject.register "banerjee.node"]. *)

val site_names : unit -> string list
(** Every registered site, sorted — the coverage tests iterate this. *)

val enable : ?seed:int -> ?period:int -> ?only:string -> kind list -> unit
(** Activate injection. [period] defaults to 1 (every hit fires); [only]
    restricts firing to one site. Raises [Invalid_argument] on an empty
    kind list or [period < 1]. *)

val disable : unit -> unit
val enabled : unit -> bool

val injected_count : unit -> int
(** Faults fired since {!enable} (0 when disabled). *)

val delay_spin : unit -> unit
(** The [Delay] kind's deterministic busy loop — exported so sites using
    {!probe} can perform the same delay themselves. *)

val hit : string -> unit
(** Mark a containment site. No-op (one ref load) when disabled. *)

val probe : string -> kind option
(** Like {!hit}, but instead of raising or spinning, a firing hit
    returns its kind and the caller performs the fault itself. For
    sites whose fault is not an exception — the serve layer's dropped
    connections, mid-frame closes, and pre-reply kills — where the
    chaotic behavior must happen to a file descriptor or the process,
    not to the control flow of the probing function. Counting, seeding,
    and [period] behave exactly as for {!hit}, but a probe site fires
    {e only} when [only] names it explicitly: destructive faults must
    be asked for by site, never triggered as a side effect of a
    broadly-enabled harness. *)

val from_env : unit -> unit
(** Opt-in per process: read [DEPTEST_INJECT] (comma-separated kinds),
    [DEPTEST_INJECT_SEED], [DEPTEST_INJECT_PERIOD], and
    [DEPTEST_INJECT_ONLY], and {!enable} accordingly. Called by the CLI
    at startup; the test binary never calls it, so tier-1 runs are
    unaffected by the environment. *)
