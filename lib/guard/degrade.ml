(* Why a reference pair's verdict was degraded to the conservative
   full-direction-vector dependence instead of crashing the analysis. *)

type reason = Overflow | Exception of string | Budget

let label = function
  | Overflow -> "overflow"
  | Exception _ -> "exception"
  | Budget -> "budget"

let tag = function
  | Overflow -> `Overflow
  | Exception _ -> `Exception
  | Budget -> `Budget

let to_string = function
  | Overflow -> "overflow"
  | Exception msg -> "exception: " ^ msg
  | Budget -> "budget"

let pp ppf r = Format.pp_print_string ppf (to_string r)

let equal a b =
  match (a, b) with
  | Overflow, Overflow | Budget, Budget -> true
  | Exception x, Exception y -> String.equal x y
  | _ -> false
