(** Work-budget governor: per-pair fuel for the expensive tests.

    A budget is created per reference pair and threaded into the Banerjee
    hierarchy evaluation, which spends one unit per node. When the fuel
    runs out, [Exhausted] propagates to the pair boundary and the pair
    degrades with reason {!Degrade.Budget} — the analysis continues on
    the remaining pairs. Complements the existing per-node [max_combos]
    vertex cap (which bounds one evaluation) by bounding the whole
    hierarchy walk. *)

exception Exhausted

type t

val make : int -> t
(** [make fuel] — raises [Invalid_argument] on negative fuel. *)

val remaining : t -> int

val spend : t -> int -> unit
(** Deduct [n] units; raises {!Exhausted} when fewer remain (fuel is
    clamped to 0 first, so a handler sees an empty budget). *)

val charge : t option -> int -> unit
(** [spend] through an option; [None] costs nothing. *)
