(* Overflow-checked native-int arithmetic.

   Every operation either returns the mathematically exact result or
   raises [Overflow]; nothing ever wraps. The checks are branch-
   predictable sign tests (addition/subtraction) or one division
   (multiplication), and [Overflow] is a constant constructor, so a
   raise allocates nothing. Callers at a containment boundary catch
   [Overflow] and degrade to their conservative verdict. *)

exception Overflow

let[@inline] add a b =
  let s = a + b in
  (* overflow iff the operands share a sign the sum does not *)
  if (a lxor s) land (b lxor s) < 0 then raise Overflow else s

let[@inline] sub a b =
  let d = a - b in
  (* overflow iff the operands differ in sign and the result has b's *)
  if (a lxor b) land (a lxor d) < 0 then raise Overflow else d

let[@inline] neg a = if a = min_int then raise Overflow else -a

(* Magnitudes below 2^30 cannot overflow 62-bit ints (|a*b| < 2^60), so
   the common case — loop bounds, coefficients, small products — skips
   the division post-check entirely. *)
let small = 0x4000_0000

let[@inline] mul a b =
  if a > -small && a < small && b > -small && b < small then a * b
  else if b = 0 then 0
  else if b = -1 then neg a (* also keeps the division below off min_int / -1 *)
  else
    let p = a * b in
    if p / b <> a then raise Overflow else p

let sum l = List.fold_left add 0 l
let sum_array v = Array.fold_left add 0 v

let add_opt a b = match add a b with s -> Some s | exception Overflow -> None
let mul_opt a b = match mul a b with p -> Some p | exception Overflow -> None
