(* Per-pair work fuel. The Banerjee hierarchy charges one unit per node
   evaluation (the same work the [max_combos] cap already bounds per
   node); when the fuel runs out the pair degrades with reason [Budget]
   instead of running unboundedly. *)

exception Exhausted

type t = { mutable fuel : int }

let make fuel =
  if fuel < 0 then invalid_arg "Budget.make: negative fuel";
  { fuel }

let remaining t = t.fuel

let spend t n =
  if t.fuel < n then begin
    t.fuel <- 0;
    raise Exhausted
  end
  else t.fuel <- t.fuel - n

let charge opt n = match opt with None -> () | Some t -> spend t n
