(** Tokens of the mini-Fortran dialect. *)

type t =
  | INT of int
  | IDENT of string  (** uppercased *)
  | LPAREN
  | RPAREN
  | COMMA
  | EQUALS
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | NEWLINE
  | EOF

type loc = { line : int }
type spanned = { tok : t; loc : loc }

val pp : Format.formatter -> t -> unit
val to_string : t -> string
