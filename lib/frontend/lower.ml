open Dt_ir

exception Error of string * int

let intrinsics =
  [
    "MAX"; "MIN"; "MOD"; "ABS"; "IABS"; "SQRT"; "EXP"; "LOG"; "SIN"; "COS";
    "TAN"; "MAX0"; "MIN0"; "AMAX1"; "AMIN1"; "FLOAT"; "REAL"; "DBLE"; "INT";
    "SIGN"; "ATAN";
  ]

let is_intrinsic name = List.mem name intrinsics

(* scalar names written anywhere in the program (treated as memory, and
   banned from linear subscripts) *)
let written_scalars (prog : Ast.program) =
  let acc = ref [] in
  let rec stmt = function
    | Ast.Assign { lhs = { base; args = [] }; _ } -> acc := base :: !acc
    | Ast.Assign _ -> ()
    | Ast.Do { body; _ } -> List.iter stmt body
    | Ast.Continue _ -> ()
  in
  List.iter stmt prog.Ast.body;
  Dt_support.Listx.dedup ~compare:String.compare !acc

type env = {
  scope : (string * Index.t) list;  (** DO variables in scope *)
  written : string list;
  mutable used : (string * int) list;  (** (name, depth) already taken *)
  mutable fresh_syms : int;
}

let lookup env v = List.assoc_opt v env.scope

let rec to_affine env line (e : Ast.expr) : (Affine.t, string) result =
  match e with
  | Ast.Int n -> Ok (Affine.const n)
  | Ast.Var v -> (
      match lookup env v with
      | Some i -> Ok (Affine.of_index i)
      | None ->
          if List.mem v env.written then
            Result.Error (Printf.sprintf "written scalar %s in subscript" v)
          else Ok (Affine.of_sym v))
  | Ast.Neg e -> Result.map Affine.neg (to_affine env line e)
  | Ast.Bin (Ast.Add, a, b) -> map2 env line Affine.add a b
  | Ast.Bin (Ast.Sub, a, b) -> map2 env line Affine.sub a b
  | Ast.Bin (Ast.Mul, a, b) -> (
      match (to_affine env line a, to_affine env line b) with
      | Ok a', Ok b' -> (
          match (Affine.as_const a', Affine.as_const b') with
          | Some k, _ -> Ok (Affine.scale k b')
          | _, Some k -> Ok (Affine.scale k a')
          | None, None -> Result.Error "product of variables")
      | (Result.Error _ as e), _ | _, (Result.Error _ as e) -> e)
  | Ast.Bin (Ast.Div, a, b) -> (
      match (to_affine env line a, to_affine env line b) with
      | Ok a', Ok b' -> (
          match Affine.as_const b' with
          | Some k when k <> 0 -> (
              match Affine.div_exact a' k with
              | Some q -> Ok q
              | None -> Result.Error "inexact division")
          | _ -> Result.Error "division by non-constant")
      | (Result.Error _ as e), _ | _, (Result.Error _ as e) -> e)
  | Ast.Ref (f, _) -> Result.Error (Printf.sprintf "call to %s in subscript" f)

and map2 env line f a b =
  match (to_affine env line a, to_affine env line b) with
  | Ok a', Ok b' -> Ok (f a' b')
  | (Result.Error _ as e), _ | _, (Result.Error _ as e) -> e

let to_subscript env line e =
  match to_affine env line e with
  | Ok a -> Aref.Linear a
  | Result.Error _ -> Aref.Nonlinear (Ast.expr_to_string e)

(* collect array and scalar reads of an expression *)
let rec reads env (e : Ast.expr) acc =
  match e with
  | Ast.Int _ -> acc
  | Ast.Var v ->
      if lookup env v <> None then acc
      else if List.mem v env.written then Aref.make v [] :: acc
      else acc
  | Ast.Neg e -> reads env e acc
  | Ast.Bin (_, a, b) -> reads env a (reads env b acc)
  | Ast.Ref (f, args) ->
      let acc = List.fold_left (fun acc a -> reads env a acc) acc args in
      if is_intrinsic f then acc
      else Aref.make f (List.map (to_subscript env 0) args) :: acc

let fresh_index env name ~depth =
  let rec go candidate k =
    if List.mem (candidate, depth) env.used then
      go (Printf.sprintf "%s_%d" name k) (k + 1)
    else candidate
  in
  let chosen = go name 2 in
  env.used <- (chosen, depth) :: env.used;
  Index.make chosen ~depth

let fresh_sym env prefix =
  env.fresh_syms <- env.fresh_syms + 1;
  Printf.sprintf "%s%d" prefix env.fresh_syms

let program (prog : Ast.program) =
  let env =
    { scope = []; written = written_scalars prog; used = []; fresh_syms = 0 }
  in
  let next_id = ref 0 in
  let rec stmt env depth (s : Ast.stmt) : Nest.node list =
    match s with
    | Ast.Continue _ -> []
    | Ast.Assign { lhs; rhs; line; _ } ->
        let writes =
          [ Aref.make lhs.Ast.base (List.map (to_subscript env line) lhs.Ast.args) ]
        in
        (* subscripts of the written reference are themselves reads; the
           [reads] accumulator builds left-to-right order directly *)
        let sub_reads =
          List.fold_left (fun acc a -> reads env a acc) [] lhs.Ast.args
        in
        let all_reads = reads env rhs [] @ sub_reads in
        let id = !next_id in
        incr next_id;
        let text =
          Format.asprintf "%a = %a" Ast.pp_expr
            (Ast.Ref (lhs.Ast.base, lhs.Ast.args))
            Ast.pp_expr rhs
        in
        let text =
          if lhs.Ast.args = [] then
            Format.asprintf "%s = %a" lhs.Ast.base Ast.pp_expr rhs
          else text
        in
        [ Nest.Stmt (Stmt.make ~id ~writes ~reads:all_reads ~text ()) ]
    | Ast.Do { var; lo; hi; step; body; line; _ } ->
        let step_val =
          match step with
          | None -> 1
          | Some e -> (
              match to_affine env line e with
              | Ok a -> (
                  match Affine.as_const a with
                  | Some k when k <> 0 -> k
                  | _ -> raise (Error ("non-constant or zero loop step", line)))
              | Result.Error m -> raise (Error ("bad loop step: " ^ m, line)))
        in
        let lo_aff =
          match to_affine env line lo with
          | Ok a -> a
          | Result.Error m -> raise (Error ("bad loop bound: " ^ m, line))
        in
        let hi_aff =
          match to_affine env line hi with
          | Ok a -> a
          | Result.Error m -> raise (Error ("bad loop bound: " ^ m, line))
        in
        let index = fresh_index env var ~depth in
        if step_val = 1 then begin
          let env' = { env with scope = (var, index) :: env.scope } in
          let body_nodes = List.concat_map (stmt env' (depth + 1)) body in
          [ Nest.Loop (Loop.make index ~lo:lo_aff ~hi:hi_aff, body_nodes) ]
        end
        else begin
          (* normalize: i = lo + (i' - 1) * step, i' in [1, trip] *)
          let diff =
            if step_val > 0 then Affine.sub hi_aff lo_aff
            else Affine.sub lo_aff hi_aff
          in
          let trip =
            match Affine.div_exact diff (abs step_val) with
            | Some q -> Affine.add_const 1 q
            | None -> (
                match Affine.as_const diff with
                | Some d ->
                    Affine.const
                      (Dt_support.Int_ops.floor_div d (abs step_val) + 1)
                | None -> Affine.of_sym (fresh_sym env "_TRIP"))
          in
          let env' = { env with scope = (var, index) :: env.scope } in
          let body_nodes = List.concat_map (stmt env' (depth + 1)) body in
          (* substitute i -> lo + (i'-1)*step in every affine of the body *)
          let replacement =
            Affine.add lo_aff
              (Affine.add_const (-step_val) (Affine.of_index ~coeff:step_val index))
          in
          let subst_affine a = Affine.subst_index a index replacement in
          let subst_aref (r : Aref.t) =
            Aref.make r.Aref.base
              (List.map
                 (function
                   | Aref.Linear a -> Aref.Linear (subst_affine a)
                   | Aref.Nonlinear _ as s -> s)
                 r.Aref.subs)
          in
          let rec subst_node = function
            | Nest.Stmt s ->
                Nest.Stmt
                  (Stmt.make ~id:s.Stmt.id
                     ~writes:(List.map subst_aref s.Stmt.writes)
                     ~reads:(List.map subst_aref s.Stmt.reads)
                     ~text:s.Stmt.text ())
            | Nest.Loop (l, body) ->
                Nest.Loop
                  ( Loop.make l.Loop.index ~lo:(subst_affine l.Loop.lo)
                      ~hi:(subst_affine l.Loop.hi),
                    List.map subst_node body )
          in
          let body_nodes = List.map subst_node body_nodes in
          [
            Nest.Loop
              (Loop.make index ~lo:(Affine.const 1) ~hi:trip, body_nodes);
          ]
        end
  in
  let body = List.concat_map (stmt env 0) prog.Ast.body in
  Nest.program ~name:prog.Ast.name ~source_lines:prog.Ast.lines
    ~routine:prog.Ast.name body

let parse ?name src =
  let ast = Parser.parse src in
  let ast = match name with Some n -> { ast with Ast.name = n } | None -> ast in
  program ast

let parse_unit ?name src =
  List.map
    (fun (ast : Ast.program) ->
      let ast =
        match name with
        | Some n -> { ast with Ast.name = n ^ "." ^ ast.Ast.name }
        | None -> ast
      in
      program ast)
    (Parser.parse_unit src)
