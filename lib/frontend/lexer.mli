(** Hand-written lexer for the mini-Fortran dialect.

    Line-oriented: statements end at newlines (which are tokens). Comment
    lines start with 'C', 'c' or '*' in column one, or '!' anywhere
    (to end of line). Identifiers are case-insensitive and uppercased.
    Continuation lines (a non-blank character in column six after five
    blanks, or an '&' at the end of the previous line) splice lines. *)

exception Error of string * int  (** message, line *)

val tokenize : string -> Token.spanned list
(** Always ends with an EOF token. Raises {!Error} on illegal input. *)
