(** Emission of IR programs back to mini-Fortran source.

    Closes the loop for program transformations: the output of loop
    distribution (or any other [Nest.program] manipulation) can be printed
    as compilable source, and [parse (emit p)] must analyze identically to
    [p] — a property the test suite checks on random programs. *)

val affine : Dt_ir.Affine.t -> string
val aref : Dt_ir.Aref.t -> string
val stmt : Dt_ir.Stmt.t -> string
(** The canonical assignment text [write = read1 + read2 + ...]; used when
    the statement's recorded source text is absent. *)

val program : Dt_ir.Nest.program -> string
(** Full program unit, ENDDO loop syntax, including the final END. *)
