exception Error of string * int

type state = { toks : Token.spanned array; mutable pos : int }

let peek st = st.toks.(st.pos).Token.tok
let line st = st.toks.(st.pos).Token.loc.Token.line
let advance st = st.pos <- st.pos + 1

let expect st tok =
  if peek st = tok then advance st
  else
    raise
      (Error
         ( Printf.sprintf "expected %s, found %s" (Token.to_string tok)
             (Token.to_string (peek st)),
           line st ))

let skip_newlines st =
  while peek st = Token.NEWLINE do
    advance st
  done

(* ------------------------------------------------------------------ *)
(* expressions                                                         *)

let rec parse_expr st =
  let lhs = parse_term st in
  let rec go lhs =
    match peek st with
    | Token.PLUS ->
        advance st;
        go (Ast.Bin (Ast.Add, lhs, parse_term st))
    | Token.MINUS ->
        advance st;
        go (Ast.Bin (Ast.Sub, lhs, parse_term st))
    | _ -> lhs
  in
  go lhs

and parse_term st =
  let lhs = parse_factor st in
  let rec go lhs =
    match peek st with
    | Token.STAR ->
        advance st;
        go (Ast.Bin (Ast.Mul, lhs, parse_factor st))
    | Token.SLASH ->
        advance st;
        go (Ast.Bin (Ast.Div, lhs, parse_factor st))
    | _ -> lhs
  in
  go lhs

and parse_factor st =
  match peek st with
  | Token.INT n ->
      advance st;
      Ast.Int n
  | Token.MINUS ->
      advance st;
      Ast.Neg (parse_factor st)
  | Token.PLUS ->
      advance st;
      parse_factor st
  | Token.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Token.RPAREN;
      e
  | Token.IDENT name -> (
      advance st;
      match peek st with
      | Token.LPAREN ->
          advance st;
          let args = parse_args st in
          expect st Token.RPAREN;
          Ast.Ref (name, args)
      | _ -> Ast.Var name)
  | t -> raise (Error ("unexpected token " ^ Token.to_string t, line st))

and parse_args st =
  let first = parse_expr st in
  let rec go acc =
    match peek st with
    | Token.COMMA ->
        advance st;
        go (parse_expr st :: acc)
    | _ -> List.rev acc
  in
  go [ first ]

(* ------------------------------------------------------------------ *)
(* pass 1: flat statements                                             *)

type raw =
  | Rdo of {
      label : int option;
      terminal : int option;
      var : string;
      lo : Ast.expr;
      hi : Ast.expr;
      step : Ast.expr option;
      line : int;
    }
  | Rassign of { label : int option; lhs : Ast.lvalue; rhs : Ast.expr; line : int }
  | Rcontinue of { label : int option; line : int }
  | Renddo of { line : int }

let parse_raw_stmt st : raw option =
  skip_newlines st;
  match peek st with
  | Token.EOF -> None
  | _ -> (
      let label =
        match peek st with
        | Token.INT n ->
            advance st;
            Some n
        | _ -> None
      in
      let ln = line st in
      match peek st with
      | Token.IDENT "DO" -> (
          advance st;
          let terminal =
            match peek st with
            | Token.INT n ->
                advance st;
                Some n
            | _ -> None
          in
          match peek st with
          | Token.IDENT var ->
              advance st;
              expect st Token.EQUALS;
              let lo = parse_expr st in
              expect st Token.COMMA;
              let hi = parse_expr st in
              let step =
                match peek st with
                | Token.COMMA ->
                    advance st;
                    Some (parse_expr st)
                | _ -> None
              in
              expect st Token.NEWLINE;
              Some (Rdo { label; terminal; var; lo; hi; step; line = ln })
          | t ->
              raise
                (Error ("expected loop variable, found " ^ Token.to_string t, ln))
          )
      | Token.IDENT "ENDDO" | Token.IDENT "END_DO" ->
          advance st;
          expect st Token.NEWLINE;
          Some (Renddo { line = ln })
      | Token.IDENT "CONTINUE" ->
          advance st;
          expect st Token.NEWLINE;
          Some (Rcontinue { label; line = ln })
      | Token.IDENT "END" ->
          advance st;
          (* swallow END / END PROGRAM etc. *)
          while peek st <> Token.NEWLINE && peek st <> Token.EOF do
            advance st
          done;
          if peek st = Token.NEWLINE then advance st;
          None
      | Token.IDENT name -> (
          advance st;
          let args =
            match peek st with
            | Token.LPAREN ->
                advance st;
                let a = parse_args st in
                expect st Token.RPAREN;
                a
            | _ -> []
          in
          match peek st with
          | Token.EQUALS ->
              advance st;
              let rhs = parse_expr st in
              expect st Token.NEWLINE;
              Some
                (Rassign { label; lhs = { Ast.base = name; args }; rhs; line = ln })
          | t ->
              raise
                (Error
                   ( Printf.sprintf "expected '=' after %s, found %s" name
                       (Token.to_string t),
                     ln )))
      | t -> raise (Error ("unexpected token " ^ Token.to_string t, ln)))

(* ------------------------------------------------------------------ *)
(* pass 2: nesting                                                     *)

type frame = {
  fdo : raw;  (* always an Rdo *)
  mutable acc : Ast.stmt list;  (* reversed *)
}

let build raws =
  let stack : frame list ref = ref [] in
  let top_body : Ast.stmt list ref = ref [] in
  let append stmt =
    match !stack with
    | f :: _ -> f.acc <- stmt :: f.acc
    | [] -> top_body := stmt :: !top_body
  in
  let close_frame f =
    match f.fdo with
    | Rdo { label; terminal; var; lo; hi; step; line } ->
        Ast.Do
          { label; terminal; var; lo; hi; step; body = List.rev f.acc; line }
    | _ -> assert false
  in
  let rec close_labelled lbl =
    match !stack with
    | f :: rest -> (
        match f.fdo with
        | Rdo { terminal = Some t; _ } when t = lbl ->
            stack := rest;
            append (close_frame f);
            close_labelled lbl
        | _ -> ())
    | [] -> ()
  in
  List.iter
    (fun raw ->
      match raw with
      | Rdo _ -> stack := { fdo = raw; acc = [] } :: !stack
      | Renddo { line } -> (
          match !stack with
          | f :: rest ->
              stack := rest;
              append (close_frame f)
          | [] -> raise (Error ("ENDDO without DO", line)))
      | Rassign { label; lhs; rhs; line } -> (
          append (Ast.Assign { label; lhs; rhs; line });
          match label with Some l -> close_labelled l | None -> ())
      | Rcontinue { label; line } -> (
          append (Ast.Continue { label; line });
          match label with Some l -> close_labelled l | None -> ()))
    raws;
  (match !stack with
  | { fdo = Rdo { line; _ }; _ } :: _ ->
      raise (Error ("unterminated DO loop", line))
  | _ :: _ -> assert false
  | [] -> ());
  List.rev !top_body

let parse_header st =
  let toks = st.toks in
  match
    (peek st, toks.(min (st.pos + 1) (Array.length toks - 1)).Token.tok)
  with
  | Token.IDENT ("PROGRAM" | "SUBROUTINE" | "FUNCTION"), Token.IDENT n ->
      advance st;
      advance st;
      (* optional parameter list *)
      (if peek st = Token.LPAREN then
         let depth = ref 0 in
         let continue = ref true in
         while !continue do
           (match peek st with
           | Token.LPAREN -> incr depth
           | Token.RPAREN -> decr depth
           | Token.NEWLINE | Token.EOF ->
               raise (Error ("unterminated parameter list", line st))
           | _ -> ());
           advance st;
           if !depth = 0 then continue := false
         done);
      expect st Token.NEWLINE;
      Some n
  | _ -> None

let parse_one st =
  skip_newlines st;
  if peek st = Token.EOF then None
  else begin
    let start_line = line st in
    let name = Option.value (parse_header st) ~default:"MAIN" in
    let raws = ref [] in
    let rec go () =
      match parse_raw_stmt st with
      | Some r ->
          raws := r :: !raws;
          go ()
      | None -> () (* END or EOF terminates the unit *)
    in
    go ();
    let end_line =
      if st.pos > 0 then st.toks.(st.pos - 1).Token.loc.Token.line
      else start_line
    in
    let body = build (List.rev !raws) in
    Some { Ast.name; body; lines = end_line - start_line + 1 }
  end

let parse_unit src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0 } in
  let rec go acc =
    match parse_one st with Some p -> go (p :: acc) | None -> List.rev acc
  in
  go []

let parse src =
  match parse_unit src with
  | p :: _ -> p
  | [] -> raise (Error ("empty program unit", 1))
