type t =
  | INT of int
  | IDENT of string
  | LPAREN
  | RPAREN
  | COMMA
  | EQUALS
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | NEWLINE
  | EOF

type loc = { line : int }
type spanned = { tok : t; loc : loc }

let to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | EQUALS -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | NEWLINE -> "<newline>"
  | EOF -> "<eof>"

let pp ppf t = Format.pp_print_string ppf (to_string t)
