exception Error of string * int

(* ------------------------------------------------------------------ *)
(* lexer                                                               *)

type tok =
  | INT of int
  | ID of string
  | LP | RP | LB | RB | LBRACE | RBRACE
  | SEMI | COMMA | ASSIGN
  | PLUS | MINUS | STAR | SLASH
  | LT | LE | PLUSPLUS | PLUSEQ
  | EOF

type st = { toks : (tok * int) array; mutable pos : int }

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let tokenize src =
  let out = ref [] in
  let line = ref 1 in
  let n = String.length src in
  let pos = ref 0 in
  let emit t = out := (t, !line) :: !out in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '/' && !pos + 1 < n && src.[!pos + 1] = '/' then begin
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if c = '/' && !pos + 1 < n && src.[!pos + 1] = '*' then begin
      pos := !pos + 2;
      while
        !pos + 1 < n && not (src.[!pos] = '*' && src.[!pos + 1] = '/')
      do
        if src.[!pos] = '\n' then incr line;
        incr pos
      done;
      pos := min n (!pos + 2)
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done;
      emit (INT (int_of_string (String.sub src start (!pos - start))))
    end
    else if is_alpha c then begin
      let start = !pos in
      while !pos < n && is_alnum src.[!pos] do
        incr pos
      done;
      emit (ID (String.uppercase_ascii (String.sub src start (!pos - start))))
    end
    else begin
      (match c with
      | '(' -> emit LP
      | ')' -> emit RP
      | '[' -> emit LB
      | ']' -> emit RB
      | '{' -> emit LBRACE
      | '}' -> emit RBRACE
      | ';' -> emit SEMI
      | ',' -> emit COMMA
      | '*' -> emit STAR
      | '/' -> emit SLASH
      | '-' -> emit MINUS
      | '+' ->
          if !pos + 1 < n && src.[!pos + 1] = '+' then begin
            incr pos;
            emit PLUSPLUS
          end
          else if !pos + 1 < n && src.[!pos + 1] = '=' then begin
            incr pos;
            emit PLUSEQ
          end
          else emit PLUS
      | '<' ->
          if !pos + 1 < n && src.[!pos + 1] = '=' then begin
            incr pos;
            emit LE
          end
          else emit LT
      | '=' -> emit ASSIGN
      | _ -> raise (Error (Printf.sprintf "illegal character %c" c, !line)));
      incr pos
    end
  done;
  emit EOF;
  Array.of_list (List.rev !out)

(* ------------------------------------------------------------------ *)
(* parser                                                              *)

let peek st = fst st.toks.(st.pos)
let line st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let expect st t msg =
  if peek st = t then advance st
  else raise (Error ("expected " ^ msg, line st))

let rec parse_expr st =
  let lhs = parse_term st in
  let rec go lhs =
    match peek st with
    | PLUS ->
        advance st;
        go (Ast.Bin (Ast.Add, lhs, parse_term st))
    | MINUS ->
        advance st;
        go (Ast.Bin (Ast.Sub, lhs, parse_term st))
    | _ -> lhs
  in
  go lhs

and parse_term st =
  let lhs = parse_factor st in
  let rec go lhs =
    match peek st with
    | STAR ->
        advance st;
        go (Ast.Bin (Ast.Mul, lhs, parse_factor st))
    | SLASH ->
        advance st;
        go (Ast.Bin (Ast.Div, lhs, parse_factor st))
    | _ -> lhs
  in
  go lhs

and parse_factor st =
  match peek st with
  | INT n ->
      advance st;
      Ast.Int n
  | MINUS ->
      advance st;
      Ast.Neg (parse_factor st)
  | PLUS ->
      advance st;
      parse_factor st
  | LP ->
      advance st;
      let e = parse_expr st in
      expect st RP ")";
      e
  | ID name -> (
      advance st;
      match peek st with
      | LP ->
          (* function call *)
          advance st;
          let args = parse_args st in
          expect st RP ")";
          Ast.Ref (name, args)
      | LB -> Ast.Ref (name, parse_indices st)
      | _ -> Ast.Var name)
  | _ -> raise (Error ("expected expression", line st))

and parse_args st =
  if peek st = RP then []
  else
    let rec go acc =
      let e = parse_expr st in
      if peek st = COMMA then begin
        advance st;
        go (e :: acc)
      end
      else List.rev (e :: acc)
    in
    go []

and parse_indices st =
  let rec go acc =
    if peek st = LB then begin
      advance st;
      let e = parse_expr st in
      expect st RB "]";
      go (e :: acc)
    end
    else List.rev acc
  in
  go []

let rec parse_stmt st : Ast.stmt list =
  match peek st with
  | ID "FOR" -> (
      let ln = line st in
      advance st;
      expect st LP "(";
      let var =
        match peek st with
        | ID v ->
            advance st;
            v
        | _ -> raise (Error ("expected loop variable", line st))
      in
      expect st ASSIGN "=";
      let lo = parse_expr st in
      expect st SEMI ";";
      (* condition: var <= e or var < e *)
      (match peek st with
      | ID v when v = var -> advance st
      | _ -> raise (Error ("expected condition on " ^ var, line st)));
      let strict =
        match peek st with
        | LE ->
            advance st;
            false
        | LT ->
            advance st;
            true
        | _ -> raise (Error ("expected < or <=", line st))
      in
      let hi_raw = parse_expr st in
      let hi =
        if strict then Ast.Bin (Ast.Sub, hi_raw, Ast.Int 1) else hi_raw
      in
      expect st SEMI ";";
      (* increment: var++ / ++var / var += k / var = var + k *)
      let step =
        match peek st with
        | PLUSPLUS ->
            advance st;
            (match peek st with
            | ID v when v = var -> advance st
            | _ -> raise (Error ("expected ++" ^ var, line st)));
            None
        | ID v when v = var -> (
            advance st;
            match peek st with
            | PLUSPLUS ->
                advance st;
                None
            | PLUSEQ ->
                advance st;
                Some (parse_expr st)
            | ASSIGN -> (
                advance st;
                (* var = var + k *)
                match parse_expr st with
                | Ast.Bin (Ast.Add, Ast.Var v', k) when v' = var -> Some k
                | _ -> raise (Error ("unsupported loop increment", line st)))
            | _ -> raise (Error ("unsupported loop increment", line st)))
        | _ -> raise (Error ("unsupported loop increment", line st))
      in
      expect st RP ")";
      let body = parse_block st in
      [ Ast.Do { label = None; terminal = None; var; lo; hi; step; body; line = ln } ])
  | LBRACE -> parse_block st
  | SEMI ->
      advance st;
      []
  | ID _ -> (
      let ln = line st in
      match parse_factor st with
      | Ast.Var base ->
          expect st ASSIGN "=";
          let rhs = parse_expr st in
          expect st SEMI ";";
          [ Ast.Assign { label = None; lhs = { Ast.base; args = [] }; rhs; line = ln } ]
      | Ast.Ref (base, args) ->
          expect st ASSIGN "=";
          let rhs = parse_expr st in
          expect st SEMI ";";
          [ Ast.Assign { label = None; lhs = { Ast.base; args }; rhs; line = ln } ]
      | _ -> raise (Error ("expected assignment", ln)))
  | EOF -> []
  | _ -> raise (Error ("unexpected token", line st))

and parse_block st : Ast.stmt list =
  if peek st = LBRACE then begin
    advance st;
    let rec go acc =
      if peek st = RBRACE then begin
        advance st;
        List.rev acc
      end
      else if peek st = EOF then raise (Error ("missing }", line st))
      else go (List.rev_append (parse_stmt st) acc)
    in
    go []
  end
  else parse_stmt st

let parse src =
  let st = { toks = tokenize src; pos = 0 } in
  let rec go acc =
    if peek st = EOF then List.rev acc
    else go (List.rev_append (parse_stmt st) acc)
  in
  let body = go [] in
  let lines = Array.fold_left (fun acc (_, l) -> max acc l) 1 st.toks in
  { Ast.name = "MAIN"; body; lines }

let parse_and_lower ?name src =
  let ast = parse src in
  let ast = match name with Some n -> { ast with Ast.name = n } | None -> ast in
  Lower.program ast

let looks_like_c src =
  let has sub =
    let ns = String.length sub and n = String.length src in
    let rec go i = i + ns <= n && (String.sub src i ns = sub || go (i + 1)) in
    go 0
  in
  has "for" && (has "(" && (has "[" || has "{"))
