exception Error of string * int

let is_digit c = c >= '0' && c <= '9'

let is_alpha c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_alnum c = is_alpha c || is_digit c

(* Pre-process: drop comment lines, handle '&' continuations and the
   classic column-6 continuation convention, strip '!' comments. *)
let logical_lines src =
  let raw = String.split_on_char '\n' src in
  let strip_inline_comment line =
    match String.index_opt line '!' with
    | Some k -> String.sub line 0 k
    | None -> line
  in
  let is_comment line =
    String.length line > 0 && (line.[0] = 'C' || line.[0] = 'c' || line.[0] = '*')
  in
  let is_continuation line =
    (* columns 1-5 blank, column 6 non-blank non-zero *)
    String.length line >= 6
    && String.for_all (fun c -> c = ' ') (String.sub line 0 5)
    && line.[5] <> ' ' && line.[5] <> '0'
  in
  let rec go acc lineno = function
    | [] -> List.rev acc
    | line :: rest ->
        if is_comment line then go acc (lineno + 1) rest
        else
          let line = strip_inline_comment line in
          if String.trim line = "" then go acc (lineno + 1) rest
          else if is_continuation line then
            let cont = String.sub line 6 (String.length line - 6) in
            match acc with
            | (prev_no, prev) :: acc' ->
                go ((prev_no, prev ^ " " ^ cont) :: acc') (lineno + 1) rest
            | [] -> raise (Error ("continuation with no previous line", lineno))
          else
            (* trailing '&' splices the next line too *)
            let line = String.trim line in
            if String.length line > 0 && line.[String.length line - 1] = '&'
            then
              match rest with
              | next :: rest' ->
                  let joined =
                    String.sub line 0 (String.length line - 1) ^ " " ^ next
                  in
                  go acc lineno (joined :: rest')
              | [] -> raise (Error ("dangling '&'", lineno))
            else go ((lineno, line) :: acc) (lineno + 1) rest
  in
  go [] 1 raw

let tokenize src =
  let out = ref [] in
  let emit tok line = out := { Token.tok; loc = { Token.line } } :: !out in
  let lex_line (lineno, line) =
    let n = String.length line in
    let pos = ref 0 in
    while !pos < n do
      let c = line.[!pos] in
      if c = ' ' || c = '\t' || c = '\r' then incr pos
      else if is_digit c then begin
        let start = !pos in
        while !pos < n && is_digit line.[!pos] do
          incr pos
        done;
        emit (Token.INT (int_of_string (String.sub line start (!pos - start)))) lineno
      end
      else if is_alpha c then begin
        let start = !pos in
        while !pos < n && is_alnum line.[!pos] do
          incr pos
        done;
        emit
          (Token.IDENT (String.uppercase_ascii (String.sub line start (!pos - start))))
          lineno
      end
      else begin
        (match c with
        | '(' -> emit Token.LPAREN lineno
        | ')' -> emit Token.RPAREN lineno
        | ',' -> emit Token.COMMA lineno
        | '=' -> emit Token.EQUALS lineno
        | '+' -> emit Token.PLUS lineno
        | '-' -> emit Token.MINUS lineno
        | '*' -> emit Token.STAR lineno
        | '/' -> emit Token.SLASH lineno
        | '.' ->
            (* skip real-literal fraction / logical operators crudely: treat
               the rest of a ".XY." operator or fraction digits as skipped *)
            raise (Error ("unsupported '.' syntax", lineno))
        | _ -> raise (Error (Printf.sprintf "illegal character %c" c, lineno)));
        incr pos
      end
    done;
    emit Token.NEWLINE lineno
  in
  List.iter lex_line (logical_lines src);
  emit Token.EOF
    (match !out with t :: _ -> t.Token.loc.Token.line | [] -> 1);
  List.rev !out
