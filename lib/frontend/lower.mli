(** Lowering from AST to the dependence-testing IR.

    Responsibilities:
    - scope management: DO variables become {!Dt_ir.Index.t} values, made
      globally unique per program so two sibling loops reusing a name never
      alias (sound prefix-based common-loop detection);
    - loop normalization: non-unit constant steps are rewritten to
      step-1 loops, substituting [i = lo + (i' - 1) * step] into
      subscripts (the paper assumes normalized induction variables);
    - subscript linearization: affine subscripts become {!Dt_ir.Affine.t};
      everything else (products of variables, divisions, indirection,
      written scalars) is conservatively [Nonlinear];
    - access collection: array reads/writes per statement; scalar
      variables that are ever written are tracked as rank-0 accesses. *)

exception Error of string * int

val program : Ast.program -> Dt_ir.Nest.program
val parse : ?name:string -> string -> Dt_ir.Nest.program
(** Parse and lower the first program unit of a mini-Fortran source
    string. [name] overrides the program name. *)

val parse_unit : ?name:string -> string -> Dt_ir.Nest.program list
(** Parse and lower a whole compilation unit (several PROGRAM /
    SUBROUTINE bodies). [name] prefixes each routine's program name. *)

val intrinsics : string list
(** Names treated as intrinsic functions rather than array references. *)
