open Dt_ir

let affine a = Affine.to_string a

let aref (r : Aref.t) =
  if r.Aref.subs = [] then r.Aref.base
  else
    r.Aref.base ^ "("
    ^ String.concat ","
        (List.map
           (function
             | Aref.Linear a -> affine a
             | Aref.Nonlinear s -> s)
           r.Aref.subs)
    ^ ")"

let stmt (s : Stmt.t) =
  match (s.Stmt.writes, s.Stmt.reads) with
  | [ w ], [] -> Printf.sprintf "%s = 0" (aref w)
  | [ w ], reads ->
      Printf.sprintf "%s = %s" (aref w)
        (String.concat " + " (List.map aref reads))
  | _ -> s.Stmt.text

let program (prog : Nest.program) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "      PROGRAM %s\n"
    (String.map (function '.' | '-' -> '_' | c -> c) prog.Nest.name));
  let rec node indent n =
    let pad = String.make indent ' ' in
    match n with
    | Nest.Stmt s -> Buffer.add_string buf (pad ^ stmt s ^ "\n")
    | Nest.Loop (l, body) ->
        Buffer.add_string buf
          (Printf.sprintf "%sDO %s = %s, %s\n" pad
             (Index.name l.Loop.index)
             (affine l.Loop.lo) (affine l.Loop.hi));
        List.iter (node (indent + 2)) body;
        Buffer.add_string buf (pad ^ "ENDDO\n")
  in
  List.iter (node 6) prog.Nest.body;
  Buffer.add_string buf "      END\n";
  Buffer.contents buf
