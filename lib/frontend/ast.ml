type expr =
  | Int of int
  | Var of string
  | Neg of expr
  | Bin of binop * expr * expr
  | Ref of string * expr list

and binop = Add | Sub | Mul | Div

type stmt =
  | Assign of { label : int option; lhs : lvalue; rhs : expr; line : int }
  | Do of {
      label : int option;
      terminal : int option;
      var : string;
      lo : expr;
      hi : expr;
      step : expr option;
      body : stmt list;
      line : int;
    }
  | Continue of { label : int option; line : int }

and lvalue = { base : string; args : expr list }

type program = { name : string; body : stmt list; lines : int }

let binop_str = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let rec pp_expr ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Var v -> Format.pp_print_string ppf v
  | Neg e -> Format.fprintf ppf "-%a" pp_atom e
  | Bin (op, a, b) ->
      Format.fprintf ppf "%a %s %a" pp_atom a (binop_str op) pp_atom b
  | Ref (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           pp_expr)
        args

and pp_atom ppf e =
  match e with
  | Bin _ -> Format.fprintf ppf "(%a)" pp_expr e
  | _ -> pp_expr ppf e

let expr_to_string e = Format.asprintf "%a" pp_expr e
