(** A C-style front end for the same loop-nest language.

    Modern users think in [for]-loops and bracketed subscripts; this
    parser accepts the C-shaped fragment

    {v
      for (i = 1; i <= n; i++) {
        for (j = 2; j < m; j += 2)
          a[i][j] = a[i-1][j] + b[2*i+1];
      }
    v}

    and produces the same {!Ast.program} the Fortran parser does, so
    lowering, analysis and every transformation apply unchanged.
    Identifiers are case-preserved but analysis treats them verbatim;
    loops with [<] bounds become [<=] bounds minus one; [i++], [++i],
    [i += k] and [i = i + k] steps are recognized. *)

exception Error of string * int

val parse : string -> Ast.program
val parse_and_lower : ?name:string -> string -> Dt_ir.Nest.program

val looks_like_c : string -> bool
(** Heuristic dialect sniffing: a [for (] with brackets/braces. *)
