(** Recursive-descent parser for the mini-Fortran dialect.

    The grammar is line-oriented and LL(1). Loop nesting is resolved in a
    second pass so that the classic shared-terminal form

    {v
        DO 10 I = 1, N
        DO 10 J = 1, N
        A(I,J) = ...
     10 CONTINUE
    v}

    closes both loops at the labelled statement, exactly as Fortran-77
    does. *)

exception Error of string * int  (** message, line *)

val parse : string -> Ast.program
(** Parse a single program unit (the first one in the source). Raises
    {!Error} (or {!Lexer.Error}) on malformed input. *)

val parse_unit : string -> Ast.program list
(** Parse a whole compilation unit: several PROGRAM / SUBROUTINE bodies
    separated by END statements. *)
