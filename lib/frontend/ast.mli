(** Abstract syntax of the mini-Fortran dialect. *)

type expr =
  | Int of int
  | Var of string
  | Neg of expr
  | Bin of binop * expr * expr
  | Ref of string * expr list
      (** array element or intrinsic call — disambiguated during lowering *)

and binop = Add | Sub | Mul | Div

type stmt =
  | Assign of { label : int option; lhs : lvalue; rhs : expr; line : int }
  | Do of {
      label : int option;  (** label on the DO statement itself *)
      terminal : int option;  (** label terminating the loop (DO 10 I = ...) *)
      var : string;
      lo : expr;
      hi : expr;
      step : expr option;
      body : stmt list;
      line : int;
    }
  | Continue of { label : int option; line : int }

and lvalue = { base : string; args : expr list }

type program = { name : string; body : stmt list; lines : int }

val pp_expr : Format.formatter -> expr -> unit
val expr_to_string : expr -> string
