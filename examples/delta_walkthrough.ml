(* A traced walk through the Delta test (the paper's Figure 3) on the
   worked examples from section 5.

   Run with:  dune exec examples/delta_walkthrough.exe *)

open Dt_ir

let walk ~title ~loops ~pairs =
  Printf.printf "=== %s ===\n" title;
  let assume = Deptest.Assume.add_loop_facts Deptest.Assume.empty loops in
  let range = Deptest.Range.compute loops in
  let relevant =
    List.fold_left
      (fun s (l : Loop.t) -> Index.Set.add l.Loop.index s)
      Index.Set.empty loops
  in
  List.iter (fun p -> Format.printf "subscript %a@." Spair.pp p) pairs;
  let r =
    Deptest.Delta.test ~trace:print_endline assume range pairs ~relevant
  in
  (match r.Deptest.Delta.verdict with
  | `Independent -> print_endline "verdict: INDEPENDENT"
  | `Dependent parts ->
      print_endline "verdict: dependent";
      List.iter (fun p -> Format.printf "  %a@." Deptest.Presult.pp p) parts);
  Printf.printf "passes: %d, unreduced MIV subscripts: %d\n\n"
    r.Deptest.Delta.passes r.Deptest.Delta.leftover_miv

let () =
  let i = Index.make "I" ~depth:0 and j = Index.make "J" ~depth:1 in
  let ai ?(c = 0) ?(k = 1) () = Affine.add_const c (Affine.of_index ~coeff:k i) in
  let loops1 = [ Loop.make i ~lo:(Affine.const 1) ~hi:(Affine.const 100) ] in

  (* Example 1 (section 5.2): A(I+1, I+2) = A(I, I): the strong SIV
     constraints "distance 1" and "distance 2" intersect to bottom. *)
  walk ~title:"constraint intersection proves independence" ~loops:loops1
    ~pairs:
      [
        Spair.make (ai ~c:1 ()) (ai ());
        Spair.make (ai ~c:2 ()) (ai ());
      ];

  (* Example 2 (section 5.3.1): A(I+1, I+J) = A(I, I+J-1): the distance-1
     constraint on I propagates into the MIV subscript <I+J, I'+J'-1>,
     reducing it to a strong SIV subscript in J with distance 0. *)
  let loops2 =
    [
      Loop.make i ~lo:(Affine.const 1) ~hi:(Affine.of_sym "N");
      Loop.make j ~lo:(Affine.const 1) ~hi:(Affine.of_sym "N");
    ]
  in
  walk ~title:"SIV constraint propagation reduces MIV to SIV" ~loops:loops2
    ~pairs:
      [
        Spair.make (ai ~c:1 ()) (ai ());
        Spair.make
          (Affine.add (Affine.of_index i) (Affine.of_index j))
          (Affine.add_const (-1) (Affine.add (Affine.of_index i) (Affine.of_index j)));
      ];

  (* Example 3 (section 5.3.2): A(I,J) = A(J,I): coupled RDIV subscripts;
     the crossed relations force direction vectors (<,>), (=,=), (>,<). *)
  walk ~title:"restricted double-index (RDIV) coupling" ~loops:loops2
    ~pairs:
      [
        Spair.make (Affine.of_index i) (Affine.of_index j);
        Spair.make (Affine.of_index j) (Affine.of_index i);
      ];

  (* Example 4: the weak-zero + strong SIV interplay: A(I, N) = A(I, J). *)
  walk ~title:"weak-zero constraint in a coupled group" ~loops:loops2
    ~pairs:
      [
        Spair.make (Affine.of_index i) (Affine.of_index i);
        Spair.make (Affine.of_sym "N") (Affine.of_index j);
      ]
