(* Quickstart: build a loop nest two ways (source text and the IR API),
   run the dependence analyzer, and consume the results.

   Run with:  dune exec examples/quickstart.exe *)

open Dt_ir

let () =
  (* ------------------------------------------------------------------ *)
  print_endline "=== 1. From mini-Fortran source ===";
  let prog =
    Dt_frontend.Lower.parse
      {|
      PROGRAM QUICK
      DO 20 I = 2, N
        DO 10 J = 2, M
          A(I,J) = A(I-1,J) + A(I,J-1)
   10   CONTINUE
   20 CONTINUE
      END
|}
  in
  Format.printf "%a@." Nest.pp prog;
  (* [Config.default] = parallel engine, shared structural memo cache *)
  let result = Deptest.Analyze.run Deptest.Analyze.Config.default prog in
  List.iter
    (fun d -> Format.printf "  %a@." Deptest.Dep.pp d)
    result.Deptest.Analyze.deps;

  (* ------------------------------------------------------------------ *)
  print_endline "\n=== 2. The same nest through the IR API ===";
  let i = Index.make "I" ~depth:0 and j = Index.make "J" ~depth:1 in
  let n = Affine.of_sym "N" and m = Affine.of_sym "M" in
  let sub ?(di = 0) ?(dj = 0) () =
    [
      Affine.add_const di (Affine.of_index i);
      Affine.add_const dj (Affine.of_index j);
    ]
  in
  let stmt =
    Stmt.make ~id:0
      ~writes:[ Aref.linear "A" (sub ()) ]
      ~reads:[ Aref.linear "A" (sub ~di:(-1) ()); Aref.linear "A" (sub ~dj:(-1) ()) ]
      ~text:"A(I,J) = A(I-1,J) + A(I,J-1)" ()
  in
  let prog2 =
    Nest.program ~name:"quick-api"
      [
        Nest.Loop
          ( Loop.make i ~lo:(Affine.const 2) ~hi:n,
            [ Nest.Loop (Loop.make j ~lo:(Affine.const 2) ~hi:m, [ Nest.Stmt stmt ]) ]
          );
      ]
  in
  (* a custom configuration: sequential, cache off — the result is the
     same at every [jobs]/[cache] setting, only the wall clock changes *)
  let cfg = Deptest.Analyze.Config.make ~jobs:1 ~cache:false () in
  let result2 = Deptest.Analyze.run cfg prog2 in
  List.iter
    (fun d -> Format.printf "  %a@." Deptest.Dep.pp d)
    result2.Deptest.Analyze.deps;

  (* ------------------------------------------------------------------ *)
  print_endline "\n=== 3. Consuming the dependence information ===";
  let deps = result2.Deptest.Analyze.deps in
  List.iter
    (fun rep -> Format.printf "  %a@." Dt_transform.Parallel.pp_report rep)
    (Dt_transform.Parallel.analyze prog2 deps);
  Format.printf "  interchange I<->J legal: %b@."
    (Dt_transform.Interchange.interchange_legal deps ~depth:2 ~level:1);

  (* one-off pair testing without a whole program *)
  print_endline "\n=== 4. Testing a single reference pair ===";
  let loops = [ Loop.make i ~lo:(Affine.const 1) ~hi:(Affine.const 100) ] in
  let w = Aref.linear "X" [ Affine.of_index ~coeff:2 i ] in
  let r = Aref.linear "X" [ Affine.add_const 1 (Affine.of_index ~coeff:2 i) ] in
  let t = Deptest.Pair_test.test ~src:(w, loops) ~snk:(r, loops) () in
  (match t.Deptest.Pair_test.result with
  | `Independent -> print_endline "  X(2I) vs X(2I+1): independent (exact SIV)"
  | `Dependent _ -> print_endline "  dependent?!");
  ()
