(* End-to-end transformation workflow with validation:

   1. parse a kernel (C-style this time),
   2. analyze dependences,
   3. distribute the loop around its dependence cycles,
   4. emit the transformed program as source,
   5. prove the transformation correct by running both programs through
      the IR interpreter and comparing final memories,
   6. cross-check the analyzer against the brute-force oracle.

   Run with:  dune exec examples/transform_validate.exe *)

open Dt_ir

let () =
  let src = {|
    // a recurrence, a reduction feeding it, and two parallel statements
    for (i = 2; i <= 60; i++) {
      a[i] = a[i-1] + b[i];
      c[i] = a[i] + a[i-1];
      d[i] = b[i] * 2;
      e[i] = d[i] + c[i-1];
    }
  |} in
  let prog = Dt_frontend.Cfront.parse_and_lower ~name:"validate" src in
  Format.printf "=== original ===@.%a@." Nest.pp prog;

  let deps = (Deptest.Analyze.run Deptest.Analyze.Config.default prog).Deptest.Analyze.deps in
  Printf.printf "-- %d dependences --\n" (List.length deps);
  List.iter (fun d -> Format.printf "  %a@." Deptest.Dep.pp d) deps;

  let dist = Dt_transform.Distribute.run prog deps in
  print_endline "\n=== after loop distribution (emitted source) ===";
  print_string (Dt_frontend.Emit.program dist);

  let reports =
    Dt_transform.Parallel.analyze dist ((Deptest.Analyze.run Deptest.Analyze.Config.default dist).Deptest.Analyze.deps)
  in
  print_endline "-- parallelism after distribution --";
  List.iter
    (fun r -> Format.printf "  %a@." Dt_transform.Parallel.pp_report r)
    reports;

  (* semantic validation *)
  let m1 = Interp.run prog and m2 = Interp.run dist in
  Printf.printf "\nsemantic check: %d cells, equal = %b\n" (Interp.cells m1)
    (Interp.equal m1 m2);
  assert (Interp.equal m1 m2);

  (* oracle validation of the analysis itself *)
  let unsound = ref 0 and checked = ref 0 in
  let accesses =
    List.concat_map
      (fun (s, loops) -> List.map (fun a -> (a, loops)) (Stmt.accesses s))
      (Nest.stmts_with_loops prog)
  in
  let arr = Array.of_list accesses in
  for i = 0 to Array.length arr - 1 do
    for j = i to Array.length arr - 1 do
      let (a1 : Stmt.access), l1 = arr.(i) and (a2 : Stmt.access), l2 = arr.(j) in
      if
        a1.Stmt.aref.Aref.base = a2.Stmt.aref.Aref.base
        && Aref.rank a1.Stmt.aref > 0
      then
        match
          Dt_exact.Brute.test ~src:(a1.Stmt.aref, l1) ~snk:(a2.Stmt.aref, l2) ()
        with
        | None -> ()
        | Some rep ->
            incr checked;
            let t =
              Deptest.Pair_test.test ~src:(a1.Stmt.aref, l1)
                ~snk:(a2.Stmt.aref, l2) ()
            in
            if
              t.Deptest.Pair_test.result = `Independent
              && rep.Dt_exact.Brute.dependent
            then incr unsound
    done
  done;
  Printf.printf "oracle check: %d reference pairs, %d unsound\n" !checked
    !unsound;
  assert (!unsound = 0);
  print_endline "transformation validated."
