(* Driving real transformations with dependence information: loop
   parallelization, Allen-Kennedy vectorization, interchange legality, and
   peel/split suggestions, over kernels from the embedded corpus.

   Run with:  dune exec examples/parallelize_kernel.exe *)

let show (e : Dt_workloads.Corpus.entry) =
  let prog = Dt_workloads.Corpus.program e in
  Printf.printf "=== %s/%s ===\n" e.Dt_workloads.Corpus.suite
    e.Dt_workloads.Corpus.name;
  Format.printf "%a" Dt_ir.Nest.pp prog;
  let deps = (Deptest.Analyze.run Deptest.Analyze.Config.default prog).Deptest.Analyze.deps in
  Printf.printf "-- dependences (%d) --\n" (List.length deps);
  List.iter (fun d -> Format.printf "  %a@." Deptest.Dep.pp d) deps;
  print_endline "-- loop parallelism --";
  List.iter
    (fun r -> Format.printf "  %a@." Dt_transform.Parallel.pp_report r)
    (Dt_transform.Parallel.analyze prog deps);
  print_endline "-- vectorization plan (Allen-Kennedy) --";
  Format.printf "%a" Dt_transform.Vectorize.pp
    (Dt_transform.Vectorize.codegen prog deps);
  (match Dt_transform.Restructure.suggest prog with
  | [] -> ()
  | sugg ->
      print_endline "-- restructuring suggestions --";
      List.iter (fun s -> Format.printf "  %a@." Dt_transform.Restructure.pp s) sugg);
  print_newline ()

let () =
  List.iter
    (fun (suite, name) -> show (Dt_workloads.Corpus.find_exn ~suite ~name))
    [
      ("livermore", "lfk01_hydro");     (* fully parallel *)
      ("livermore", "lfk05_tridiag");   (* sequential recurrence *)
      ("livermore", "lfk_skewed");      (* the paper's skewed example *)
      ("paper", "tomcatv_weakzero");    (* peeling breaks the dependence *)
      ("paper", "cdl_weakcrossing");    (* splitting breaks the crossing *)
      ("eispack", "transpose_update");  (* RDIV coupling *)
      ("spec", "matrix300_saxpy");      (* vectorizable inner loop *)
    ]
