(* Reproduce the paper's empirical study (section 6) over the embedded
   corpus: Tables 1-4 plus the figure renderings.

   Run with:  dune exec examples/study.exe *)

let () =
  print_string (Dt_stats.Tables.all ());
  print_newline ();

  (* Figure 2: geometric view of the weak SIV test. The pair
     <i, 2*i' - 9> over [1,10]: line i = 2*i' - 9. *)
  print_string (Dt_stats.Figures.fig2_weak_siv ~a1:1 ~a2:2 ~c:(-9) ~lo:1 ~hi:10);
  print_newline ();

  (* Class distribution histogram over the whole corpus (Table 2 as a
     figure). *)
  let suites =
    List.filter (fun s -> s <> "paper") Dt_workloads.Corpus.suites
  in
  let profs = List.concat_map (fun (_, p) -> p) (Dt_stats.Tables.profiles ~suites) in
  let agg = Dt_stats.Profile.aggregate ~name:"all" ~suite:"all" profs in
  print_endline "Subscript class distribution over the corpus:";
  print_string (Dt_stats.Figures.class_histogram agg.Dt_stats.Profile.classes)
