(* The observability layer on the paper's coupled-group example: run the
   full per-pair driver with a trace sink and metrics registry, print the
   typed trace tree (what `deptest analyze --explain` shows), a few raw
   JSONL events, and the metrics table (what `deptest profile` shows).

   Run with:  dune exec examples/trace_walkthrough.exe *)

open Dt_ir

let walk ~title ~loops ~src ~snk =
  Printf.printf "=== %s ===\n" title;
  let sink = Dt_obs.Trace.make () in
  let metrics = Dt_obs.Metrics.create () in
  let r =
    Deptest.Pair_test.test ~sink ~metrics ~src:(src, loops) ~snk:(snk, loops)
      ()
  in
  Format.printf "%a" Dt_obs.Trace.pp_tree sink;
  (match (r.Deptest.Pair_test.result, r.Deptest.Pair_test.meta.Deptest.Pair_test.proved_by) with
  | `Independent, Some k ->
      Printf.printf "verdict: INDEPENDENT (proved by %s)\n"
        (Deptest.Counters.kind_name k)
  | `Independent, None ->
      print_endline "verdict: INDEPENDENT (by direction-vector merge)"
  | `Dependent { Deptest.Pair_test.dirvecs; _ }, _ ->
      Format.printf "verdict: dependent —%t@."
        (fun ppf ->
          List.iter
            (fun v -> Format.fprintf ppf " %a" Deptest.Dirvec.pp v)
            dirvecs));
  print_newline ();
  (sink, metrics)

let () =
  let i = Index.make "I" ~depth:0 in
  let ai ?(c = 0) () = Affine.add_const c (Affine.of_index i) in
  let loops = [ Loop.make i ~lo:(Affine.const 1) ~hi:(Affine.const 100) ] in

  (* The section 5.2 coupled group: A(I+1, I+2) = A(I, I). Subscript-by-
     subscript testing calls this dependent; the Delta test intersects the
     "distance 1" and "distance 2" constraints to a contradiction. *)
  let sink, metrics =
    walk ~title:"coupled group: A(I+1, I+2) = A(I, I)" ~loops
      ~src:(Aref.linear "A" [ ai ~c:1 (); ai ~c:2 () ])
      ~snk:(Aref.linear "A" [ ai (); ai () ])
  in

  (* the same events, as the JSON Lines `--trace` export writes them *)
  print_endline "=== first three JSONL events ===";
  String.split_on_char '\n' (Dt_obs.Trace.to_jsonl sink)
  |> List.filteri (fun k _ -> k < 3)
  |> List.iter print_endline;
  print_newline ();

  (* a contrast pair the merge decides: A(I+1) = A(I) stays dependent *)
  let _ =
    walk ~title:"separable strong SIV: A(I+1) = A(I)" ~loops
      ~src:(Aref.linear "A" [ ai ~c:1 () ])
      ~snk:(Aref.linear "A" [ ai () ])
  in

  print_endline "=== metrics (the `deptest profile` table) ===";
  Format.printf "%a" Dt_obs.Metrics.pp metrics
