(* Tests for the parallel pair-testing engine: the worker pool, the
   generic memo table, structural canonicalization keys, the pair-result
   cache (including cross-query rehydration and counter replay), and the
   merge laws the deterministic accumulator merge relies on. *)

open Dt_ir
open Helpers

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

(* --- Pool -------------------------------------------------------------- *)

let test_pool_covers_all () =
  let n = 1000 in
  let out = Array.make n 0 in
  let pool = Dt_support.Pool.create ~jobs:4 () in
  let states =
    Dt_support.Pool.run pool ~n
      ~state:(fun w -> (w, ref 0))
      ~body:(fun (_, acc) i ->
        out.(i) <- (i * i) + 1;
        acc := !acc + i)
  in
  check bool "every cell written exactly once" true
    (Array.for_all (fun v -> v > 0) (Array.mapi (fun i v -> Bool.to_int (v = (i * i) + 1)) out));
  let total = List.fold_left (fun a (_, r) -> a + !r) 0 states in
  check int "work partitioned without loss or overlap" (n * (n - 1) / 2) total;
  let ids = List.map fst states in
  check (Alcotest.list int) "states returned in worker-id order"
    (List.sort compare ids) ids

let test_pool_sequential () =
  let order = ref [] in
  let states =
    Dt_support.Pool.run
      (Dt_support.Pool.create ~jobs:1 ())
      ~n:5
      ~state:(fun w -> w)
      ~body:(fun _ i -> order := i :: !order)
  in
  check (Alcotest.list int) "jobs=1 runs in index order" [ 0; 1; 2; 3; 4 ]
    (List.rev !order);
  check (Alcotest.list int) "jobs=1 uses one worker" [ 0 ] states

let test_pool_exception () =
  match
    Dt_support.Pool.run
      (Dt_support.Pool.create ~jobs:4 ())
      ~n:100
      ~state:(fun _ -> ())
      ~body:(fun () i -> if i = 57 then failwith "boom")
  with
  | exception Failure m -> check string "body exception propagates" "boom" m
  | _ -> Alcotest.fail "expected the body's exception to propagate"

let test_pool_empty () =
  check int "n=0 spawns nothing" 0
    (List.length
       (Dt_support.Pool.run
          (Dt_support.Pool.create ~jobs:4 ())
          ~n:0
          ~state:(fun w -> w)
          ~body:(fun _ _ -> ())))

(* --- Deque ------------------------------------------------------------- *)

let test_deque_owner_lifo () =
  let d = Dt_support.Deque.create () in
  List.iter (Dt_support.Deque.push d) [ 1; 2; 3; 4; 5 ];
  check int "size counts pushes" 5 (Dt_support.Deque.size d);
  let popped = List.init 5 (fun _ -> Dt_support.Deque.pop d) in
  check
    (Alcotest.list (Alcotest.option int))
    "owner pops newest-first"
    [ Some 5; Some 4; Some 3; Some 2; Some 1 ]
    popped;
  check bool "then empty" true (Dt_support.Deque.pop d = None)

let test_deque_steal_fifo () =
  let d = Dt_support.Deque.create () in
  List.iter (Dt_support.Deque.push d) [ 1; 2; 3 ];
  (match Dt_support.Deque.steal d with
  | Dt_support.Deque.Stolen v -> check int "thief takes oldest" 1 v
  | _ -> Alcotest.fail "expected a successful steal");
  check bool "owner still pops newest" true (Dt_support.Deque.pop d = Some 3);
  (match Dt_support.Deque.steal d with
  | Dt_support.Deque.Stolen v -> check int "next-oldest next" 2 v
  | _ -> Alcotest.fail "expected a successful steal");
  check bool "then empty for the owner" true (Dt_support.Deque.pop d = None);
  check bool "and for thieves" true
    (Dt_support.Deque.steal d = Dt_support.Deque.Empty)

let test_deque_grows () =
  let d = Dt_support.Deque.create ~capacity:2 () in
  let n = 1000 in
  for i = 0 to n - 1 do
    Dt_support.Deque.push d i
  done;
  let sum = ref 0 and count = ref 0 in
  let rec drain () =
    match Dt_support.Deque.pop d with
    | Some v ->
        sum := !sum + v;
        incr count;
        drain ()
    | None -> ()
  in
  drain ();
  check int "growth loses nothing" n !count;
  check int "and duplicates nothing" (n * (n - 1) / 2) !sum

(* owner pops while three thieves steal: every pushed value must surface
   exactly once across the four parties *)
let test_deque_concurrent_steal () =
  let d = Dt_support.Deque.create ~capacity:16 () in
  let n = 10_000 in
  for i = 0 to n - 1 do
    Dt_support.Deque.push d i
  done;
  let thief () =
    let rec go acc =
      match Dt_support.Deque.steal d with
      | Dt_support.Deque.Stolen v -> go (v :: acc)
      | Dt_support.Deque.Retry ->
          Domain.cpu_relax ();
          go acc
      | Dt_support.Deque.Empty -> acc
    in
    go []
  in
  let thieves = List.init 3 (fun _ -> Domain.spawn thief) in
  let rec own acc =
    match Dt_support.Deque.pop d with Some v -> own (v :: acc) | None -> acc
  in
  let mine = own [] in
  let taken = List.concat_map Domain.join thieves @ mine in
  check int "no value lost" n (List.length taken);
  check
    (Alcotest.list int)
    "no value duplicated" (List.init n Fun.id)
    (List.sort compare taken)

(* --- Memo -------------------------------------------------------------- *)

let test_memo_basics () =
  let m = Dt_engine.Memo.create () in
  check bool "miss on empty" true (Dt_engine.Memo.find_opt m "k" = None);
  Dt_engine.Memo.add m "k" 42;
  check bool "hit after add" true (Dt_engine.Memo.find_opt m "k" = Some 42);
  check int "hits" 1 (Dt_engine.Memo.hits m);
  check int "misses" 1 (Dt_engine.Memo.misses m);
  check (Alcotest.float 1e-9) "hit rate" 0.5 (Dt_engine.Memo.hit_rate m);
  check int "length" 1 (Dt_engine.Memo.length m);
  Dt_engine.Memo.reset_stats m;
  check int "stats reset, entries kept" 0
    (Dt_engine.Memo.hits m + Dt_engine.Memo.misses m);
  check int "entries kept" 1 (Dt_engine.Memo.length m)

(* --- Key: structural canonicalization ---------------------------------- *)

let key_of ?(hi = 100) ?(facts = "") ?(tag = "P") ~w ~r i =
  let loops = [ loop ~hi i ] in
  Dt_engine.Key.make ~src:(w, loops) ~snk:(r, loops) ~facts ~tag

let test_key_isomorphic () =
  let mk i =
    key_of i
      ~w:(Aref.linear "A" [ av ~c:1 i ])
      ~r:(Aref.linear "A" [ av i ])
  in
  let ki = mk i0 and kk = mk (idx "K") in
  check string "isomorphic queries share a key" ki.Dt_engine.Key.key
    kk.Dt_engine.Key.key;
  check bool "but keep their own index mapping" true
    (List.map snd ki.Dt_engine.Key.actual_of_canon
     <> List.map snd kk.Dt_engine.Key.actual_of_canon)

let test_key_discriminates () =
  let base =
    key_of i0 ~w:(Aref.linear "A" [ av ~c:1 i0 ]) ~r:(Aref.linear "A" [ av i0 ])
  in
  let differs k = k.Dt_engine.Key.key <> base.Dt_engine.Key.key in
  check bool "coefficient change changes the key" true
    (differs
       (key_of i0
          ~w:(Aref.linear "A" [ av ~k:2 ~c:1 i0 ])
          ~r:(Aref.linear "A" [ av i0 ])));
  check bool "constant change changes the key" true
    (differs
       (key_of i0
          ~w:(Aref.linear "A" [ av ~c:2 i0 ])
          ~r:(Aref.linear "A" [ av i0 ])));
  check bool "loop bound change changes the key" true
    (differs
       (key_of ~hi:99 i0
          ~w:(Aref.linear "A" [ av ~c:1 i0 ])
          ~r:(Aref.linear "A" [ av i0 ])));
  check bool "assume facts change the key" true
    (differs
       (key_of ~facts:"N>=1" i0
          ~w:(Aref.linear "A" [ av ~c:1 i0 ])
          ~r:(Aref.linear "A" [ av i0 ])));
  check bool "strategy tag changes the key" true
    (differs
       (key_of ~tag:"S" i0
          ~w:(Aref.linear "A" [ av ~c:1 i0 ])
          ~r:(Aref.linear "A" [ av i0 ])));
  (* nesting depth participates in Index identity, so it must be kept *)
  check bool "index depth changes the key" true
    (differs
       (key_of j1
          ~w:(Aref.linear "A" [ av ~c:1 j1 ])
          ~r:(Aref.linear "A" [ av j1 ])))

let test_facts_digest_order_free () =
  let n = Affine.of_sym "N" and m = Affine.of_sym "M" in
  check string "facts digest is order-independent"
    (Dt_engine.Key.facts_digest [ n; m ])
    (Dt_engine.Key.facts_digest [ m; n ])

(* --- Counters/Metrics merge laws --------------------------------------- *)

let sample_counters spec =
  let c = Deptest.Counters.create () in
  List.iter
    (fun (k, applied, indep) ->
      for _ = 1 to applied do
        Deptest.Counters.record c k ~indep:false
      done;
      for _ = 1 to indep do
        Deptest.Counters.record c k ~indep:true
      done)
    spec;
  c

let test_counters_merge_laws () =
  let a = sample_counters [ (Deptest.Counters.Ziv_test, 3, 1) ]
  and b = sample_counters [ (Deptest.Counters.Strong_siv, 2, 2) ]
  and c = sample_counters [ (Deptest.Counters.Ziv_test, 1, 0); (Deptest.Counters.Gcd_miv, 5, 1) ] in
  let ( + ) = Deptest.Counters.merge in
  check bool "commutative" true (Deptest.Counters.equal (a + b) (b + a));
  check bool "associative" true
    (Deptest.Counters.equal (a + (b + c)) (a + b + c));
  let zero = Deptest.Counters.create () in
  check bool "identity" true (Deptest.Counters.equal (a + zero) a)

(* sequential accumulation equals any split of the same bumps across
   workers merged in any order — the property the parallel driver's
   deterministic merge rests on *)
let prop_counters_split_merge =
  qtest ~count:200 "sequential counting == split-and-merge"
    (QCheck.make
       (QCheck.Gen.list_size (QCheck.Gen.return 24)
          (QCheck.Gen.pair (QCheck.Gen.int_bound 7) QCheck.Gen.bool)))
    (fun events ->
      let kinds =
        [|
          Deptest.Counters.Ziv_test; Deptest.Counters.Strong_siv;
          Deptest.Counters.Weak_zero_siv; Deptest.Counters.Weak_crossing_siv;
          Deptest.Counters.Exact_siv; Deptest.Counters.Rdiv_test;
          Deptest.Counters.Gcd_miv; Deptest.Counters.Banerjee_miv;
        |]
      in
      let seq = Deptest.Counters.create () in
      List.iter (fun (k, i) -> Deptest.Counters.record seq kinds.(k) ~indep:i) events;
      (* deal the same events round-robin onto 3 workers, merge 2,0,1 *)
      let ws = Array.init 3 (fun _ -> Deptest.Counters.create ()) in
      List.iteri
        (fun n (k, i) -> Deptest.Counters.record ws.(n mod 3) kinds.(k) ~indep:i)
        events;
      let merged =
        Deptest.Counters.merge ws.(2) (Deptest.Counters.merge ws.(0) ws.(1))
      in
      Deptest.Counters.equal seq merged)

let test_metrics_merge () =
  let a = Dt_obs.Metrics.create () and b = Dt_obs.Metrics.create () in
  Dt_obs.Metrics.record a Deptest.Counters.Ziv_test ~indep:true ~ns:100L;
  Dt_obs.Metrics.record b Deptest.Counters.Ziv_test ~indep:false ~ns:50L;
  Dt_obs.Metrics.cache_hit a;
  Dt_obs.Metrics.cache_miss b;
  Dt_obs.Metrics.observe_pair a ~ns:10L;
  let m = Dt_obs.Metrics.merge a b in
  check int "applied summed" 2 (Dt_obs.Metrics.applied m Deptest.Counters.Ziv_test);
  check int "indep summed" 1 (Dt_obs.Metrics.proved_indep m Deptest.Counters.Ziv_test);
  check bool "kind time summed" true
    (Dt_obs.Metrics.kind_ns m Deptest.Counters.Ziv_test = 150L);
  check int "cache hits summed" 1 (Dt_obs.Metrics.cache_hits m);
  check int "cache misses summed" 1 (Dt_obs.Metrics.cache_misses m);
  check int "pairs summed" 1 (Dt_obs.Metrics.pairs m)

(* --- Pair_cache: rehydration correctness ------------------------------- *)

let render_pair (t : Deptest.Pair_test.t) =
  match t.Deptest.Pair_test.result with
  | `Independent -> "independent"
  | `Dependent info ->
      Format.asprintf "%a |%a"
        (Format.pp_print_list Deptest.Dirvec.pp)
        info.Deptest.Pair_test.dirvecs
        (Format.pp_print_list (fun ppf (ix, d) ->
             Format.fprintf ppf " %s@%d:%a" ix.Index.name ix.Index.depth
               Deptest.Outcome.pp_dist d))
        info.Deptest.Pair_test.distances

(* a cache hit on an isomorphic (renamed-index) query must yield exactly
   what a fresh computation on that query yields, counters included *)
let test_cache_rehydration () =
  let query i =
    let loops = [ loop ~hi:100 i ] in
    ( (Aref.linear "A" [ av ~c:2 i ], loops),
      (Aref.linear "A" [ av i ], loops) )
  in
  let cache = Deptest.Pair_cache.create () in
  (* producer: index I *)
  let (src_i, snk_i) = query i0 in
  let k_i = Dt_engine.Key.make ~src:src_i ~snk:snk_i ~facts:"" ~tag:"P" in
  let prod_counters = Deptest.Counters.create () in
  let t_i = Deptest.Pair_test.test ~counters:prod_counters ~src:src_i ~snk:snk_i () in
  Deptest.Pair_cache.store cache k_i ~counters:prod_counters t_i;
  (* consumer: same shape under index K *)
  let (src_k, snk_k) = query (idx "K") in
  let k_k = Dt_engine.Key.make ~src:src_k ~snk:snk_k ~facts:"" ~tag:"P" in
  check string "isomorphic query hits the same slot" k_i.Dt_engine.Key.key
    k_k.Dt_engine.Key.key;
  let hit_counters = Deptest.Counters.create () in
  (match Deptest.Pair_cache.find cache k_k ~counters:hit_counters with
  | None -> Alcotest.fail "expected a cache hit"
  | Some cached ->
      let fresh_counters = Deptest.Counters.create () in
      let fresh =
        Deptest.Pair_test.test ~counters:fresh_counters ~src:src_k ~snk:snk_k ()
      in
      check string "hit equals fresh computation (indices rehydrated)"
        (render_pair fresh) (render_pair cached);
      check bool "replayed counters equal fresh counters" true
        (Deptest.Counters.equal fresh_counters hit_counters));
  check int "one hit recorded" 1 (Deptest.Pair_cache.hits cache)

(* a run-level assume fact can change the verdict, so it must change the
   key: A(I+N) vs A(I) with N bound large is independent, unknown N is not *)
let test_cache_facts_invalidate () =
  let loops = [ loop ~hi:10 i0 ] in
  let w = Aref.linear "A" [ Affine.add (av i0) (Affine.of_sym "N") ] in
  let r = Aref.linear "A" [ av i0 ] in
  let digest_none = Dt_engine.Key.facts_digest [] in
  let digest_n =
    Dt_engine.Key.facts_digest [ Affine.add_const (-100) (Affine.of_sym "N") ]
  in
  check bool "fact digests differ" true (digest_none <> digest_n);
  let k1 =
    Dt_engine.Key.make ~src:(w, loops) ~snk:(r, loops) ~facts:digest_none
      ~tag:"P"
  and k2 =
    Dt_engine.Key.make ~src:(w, loops) ~snk:(r, loops) ~facts:digest_n ~tag:"P"
  in
  check bool "assume facts partition the cache" true
    (k1.Dt_engine.Key.key <> k2.Dt_engine.Key.key)

(* --- Analyze: engine configuration ------------------------------------- *)

let render_result cfg prog =
  let r = Deptest.Analyze.run cfg prog in
  Format.asprintf "%a|%a"
    (Format.pp_print_list (fun ppf d -> Format.fprintf ppf "%a;" Deptest.Dep.pp d))
    r.Deptest.Analyze.deps Deptest.Counters.pp r.Deptest.Analyze.counters

let wavefront =
  parse
    {|
      PROGRAM WAVE
      DO 20 I = 2, 50
        DO 10 J = 2, 50
          A(I,J) = A(I-1,J) + A(I,J-1)
          B(I,J) = B(I-1,J-1) + A(I,J)
   10   CONTINUE
   20 CONTINUE
      END
|}

let test_analyze_jobs_parity () =
  let base = render_result (Deptest.Analyze.Config.make ~jobs:1 ~cache:false ()) wavefront in
  List.iter
    (fun (jobs, cache) ->
      check string
        (Printf.sprintf "jobs=%d cache=%b matches sequential" jobs cache)
        base
        (render_result (Deptest.Analyze.Config.make ~jobs ~cache ()) wavefront))
    [ (2, false); (4, false); (1, true); (4, true); (0, true) ]

let test_analyze_cache_hits () =
  let cfg = Deptest.Analyze.Config.make ~jobs:1 () in
  let first = render_result cfg wavefront in
  let stats0 = Deptest.Analyze.Config.cache_stats cfg in
  check bool "stats exposed when the cache is on" true (stats0 <> None);
  let second = render_result cfg wavefront in
  check string "warm-cache rerun identical" first second;
  (match Deptest.Analyze.Config.cache_stats cfg with
  | Some (hits, _) ->
      check bool "second pass hit the cache" true (hits > 0);
      (match Deptest.Analyze.Config.cache_hit_rate cfg with
      | Some rate -> check bool "hit rate positive" true (rate > 0.0)
      | None -> Alcotest.fail "hit rate should be available")
  | None -> Alcotest.fail "cache stats should be available");
  check bool "cache-off config exposes no stats" true
    (Deptest.Analyze.Config.cache_stats
       (Deptest.Analyze.Config.make ~cache:false ())
    = None)

let test_analyze_metrics_cache_counts () =
  let metrics = Dt_obs.Metrics.create () in
  let cfg = Deptest.Analyze.Config.make ~jobs:1 ~metrics () in
  ignore (Deptest.Analyze.run cfg wavefront);
  ignore (Deptest.Analyze.run cfg wavefront);
  let total = Dt_obs.Metrics.cache_hits metrics + Dt_obs.Metrics.cache_misses metrics in
  check bool "every lookup counted" true (total > 0);
  check bool "warm pass counted as hits" true (Dt_obs.Metrics.cache_hits metrics > 0);
  (* the JSON snapshot carries the cache block *)
  match Dt_obs.Json.member "cache" (Dt_obs.Metrics.to_json metrics) with
  | Some obj ->
      check bool "cache.hits in JSON" true
        (Option.bind (Dt_obs.Json.member "hits" obj) Dt_obs.Json.to_int
        = Some (Dt_obs.Metrics.cache_hits metrics))
  | None -> Alcotest.fail "metrics JSON should include the cache block"

let test_run_all_matches_run () =
  (* routine sharding is an engine concern: [run_all] must agree with
     mapping [run] over the batch, per-routine counters included *)
  let progs = [ wavefront; wavefront; wavefront; wavefront ] in
  let cfg jobs = Deptest.Analyze.Config.make ~jobs ~cache:false () in
  let seq = List.map (Deptest.Analyze.run (cfg 1)) progs in
  let sharded = Deptest.Analyze.run_all (cfg 3) progs in
  check int "one result per routine" (List.length seq) (List.length sharded);
  List.iter2
    (fun (a : Deptest.Analyze.result) (b : Deptest.Analyze.result) ->
      check bool "same deps" true (a.deps = b.deps);
      check bool "same pair records" true (a.pairs = b.pairs);
      check bool "same counters" true (Deptest.Counters.equal a.counters b.counters))
    seq sharded

(* byte-parity over a generated thousand-routine corpus: every
   jobs x dispatch setting must render the identical analysis, pairs
   and counters included. Seeded generation, half the routines with a
   symbolic outer bound so both adaptive-dispatch regimes occur. *)
let test_corpus_jobs_dispatch_parity () =
  let routines = 1000 in
  let progs =
    let st = Random.State.make [| 0xD09; routines |] in
    let sym =
      { Dt_workloads.Generator.default with
        Dt_workloads.Generator.symbolic_hi = true }
    in
    List.init routines (fun k ->
        let gcfg =
          if k mod 2 = 0 then Dt_workloads.Generator.default else sym
        in
        Dt_workloads.Generator.program st gcfg ~stmts:3)
  in
  let render ~jobs ~dispatch =
    let cfg = Deptest.Analyze.Config.make ~jobs ~dispatch ~cache:false () in
    let buf = Buffer.create (1 lsl 16) in
    List.iter
      (fun (r : Deptest.Analyze.result) ->
        List.iter
          (fun d ->
            Buffer.add_string buf (Format.asprintf "%a@." Deptest.Dep.pp d))
          r.Deptest.Analyze.deps;
        List.iter
          (fun (p : Deptest.Analyze.pair_record) ->
            Buffer.add_string buf
              (Printf.sprintf "%s %d %d %b\n" p.Deptest.Analyze.array
                 p.Deptest.Analyze.src_stmt p.Deptest.Analyze.snk_stmt
                 p.Deptest.Analyze.independent))
          r.Deptest.Analyze.pairs;
        Buffer.add_string buf
          (Format.asprintf "%a@." Deptest.Counters.pp
             r.Deptest.Analyze.counters))
      (Deptest.Analyze.run_all cfg progs);
    Digest.string (Buffer.contents buf)
  in
  let base = render ~jobs:1 ~dispatch:Deptest.Banerjee.Auto in
  List.iter
    (fun jobs ->
      List.iter
        (fun (name, dispatch) ->
          check bool
            (Printf.sprintf "jobs=%d dispatch=%s renders the jobs=1/auto bytes"
               jobs name)
            true
            (render ~jobs ~dispatch = base))
        [
          ("auto", Deptest.Banerjee.Auto);
          ("reference", Deptest.Banerjee.Reference);
          ("incremental", Deptest.Banerjee.Incremental);
        ])
    [ 1; 2; 4 ]

let suite =
  [
    Alcotest.test_case "pool covers every index once" `Quick test_pool_covers_all;
    Alcotest.test_case "pool sequential fallback" `Quick test_pool_sequential;
    Alcotest.test_case "pool propagates body exceptions" `Quick test_pool_exception;
    Alcotest.test_case "pool empty range" `Quick test_pool_empty;
    Alcotest.test_case "deque: owner pops LIFO" `Quick test_deque_owner_lifo;
    Alcotest.test_case "deque: thieves steal FIFO" `Quick test_deque_steal_fifo;
    Alcotest.test_case "deque: ring growth is lossless" `Quick test_deque_grows;
    Alcotest.test_case "deque: concurrent steal, no loss or dup" `Quick
      test_deque_concurrent_steal;
    Alcotest.test_case "memo table basics" `Quick test_memo_basics;
    Alcotest.test_case "key: isomorphic queries coincide" `Quick test_key_isomorphic;
    Alcotest.test_case "key: structural changes discriminate" `Quick test_key_discriminates;
    Alcotest.test_case "key: facts digest order-free" `Quick test_facts_digest_order_free;
    Alcotest.test_case "counters merge laws" `Quick test_counters_merge_laws;
    prop_counters_split_merge;
    Alcotest.test_case "metrics merge + cache counters" `Quick test_metrics_merge;
    Alcotest.test_case "cache hit == fresh compute (rehydrated)" `Quick
      test_cache_rehydration;
    Alcotest.test_case "assume facts invalidate the key" `Quick
      test_cache_facts_invalidate;
    Alcotest.test_case "jobs/cache parity on a wavefront nest" `Quick
      test_analyze_jobs_parity;
    Alcotest.test_case "config cache statistics" `Quick test_analyze_cache_hits;
    Alcotest.test_case "metrics count cache traffic" `Quick
      test_analyze_metrics_cache_counts;
    Alcotest.test_case "run_all agrees with run" `Quick test_run_all_matches_run;
    Alcotest.test_case "thousand-routine jobs x dispatch byte parity" `Slow
      test_corpus_jobs_dispatch_parity;
  ]
