(* The exact comparators: Fourier-Motzkin, multidimensional GCD, the Power
   test, and the brute-force oracle itself. *)

open Dt_ir
open Dt_support
open Helpers

let check = Alcotest.check
let r = Ratio.of_int

let le coeffs bound =
  Dt_exact.Fm.make ~coeffs:(Array.map r (Array.of_list coeffs)) ~cmp:Dt_exact.Fm.Le ~bound:(r bound)

let eq coeffs bound =
  Dt_exact.Fm.make ~coeffs:(Array.map r (Array.of_list coeffs)) ~cmp:Dt_exact.Fm.Eq ~bound:(r bound)

let test_fm_feasible () =
  (* x >= 1, x <= 5 *)
  check Alcotest.bool "box" true
    (Dt_exact.Fm.feasible ~nvars:1 [ le [ -1 ] (-1); le [ 1 ] 5 ]);
  check Alcotest.bool "empty box" false
    (Dt_exact.Fm.feasible ~nvars:1 [ le [ -1 ] (-6); le [ 1 ] 5 ]);
  (* x + y <= 3, x >= 2, y >= 2 *)
  check Alcotest.bool "triangle infeasible" false
    (Dt_exact.Fm.feasible ~nvars:2 [ le [ 1; 1 ] 3; le [ -1; 0 ] (-2); le [ 0; -1 ] (-2) ]);
  check Alcotest.bool "triangle feasible" true
    (Dt_exact.Fm.feasible ~nvars:2 [ le [ 1; 1 ] 5; le [ -1; 0 ] (-2); le [ 0; -1 ] (-2) ]);
  (* equality: x = y, x <= 1, y >= 3 *)
  check Alcotest.bool "equality chain" false
    (Dt_exact.Fm.feasible ~nvars:2 [ eq [ 1; -1 ] 0; le [ 1; 0 ] 1; le [ 0; -1 ] (-3) ]);
  (* rational-only solutions are fine for FM: 2x = 1 *)
  check Alcotest.bool "rational point" true
    (Dt_exact.Fm.feasible ~nvars:1 [ eq [ 2 ] 1 ]);
  (* no constraints *)
  check Alcotest.bool "vacuous" true (Dt_exact.Fm.feasible ~nvars:3 [])

let test_mdgcd () =
  (* x + 2y = 5 solvable *)
  (match Dt_exact.Mdgcd.solve ~a:[| [| 1; 2 |] |] ~b:[| 5 |] with
  | Some s ->
      let x = s.Dt_exact.Mdgcd.particular in
      check Alcotest.int "solution" 5 (x.(0) + (2 * x.(1)));
      check Alcotest.int "kernel rank" 1 (Array.length s.Dt_exact.Mdgcd.kernel);
      let k = s.Dt_exact.Mdgcd.kernel.(0) in
      check Alcotest.int "kernel in nullspace" 0 (k.(0) + (2 * k.(1)))
  | None -> Alcotest.fail "solvable");
  (* 2x + 4y = 5: no integer solution *)
  check Alcotest.bool "gcd infeasible" true
    (Dt_exact.Mdgcd.solve ~a:[| [| 2; 4 |] |] ~b:[| 5 |] = None);
  (* system: x + y = 4, x - y = 2 -> (3,1) *)
  (match Dt_exact.Mdgcd.solve ~a:[| [| 1; 1 |]; [| 1; -1 |] |] ~b:[| 4; 2 |] with
  | Some s ->
      check Alcotest.int "unique x" 3 s.Dt_exact.Mdgcd.particular.(0);
      check Alcotest.int "unique y" 1 s.Dt_exact.Mdgcd.particular.(1);
      check Alcotest.int "no kernel" 0 (Array.length s.Dt_exact.Mdgcd.kernel)
  | None -> Alcotest.fail "solvable");
  (* inconsistent: x + y = 1, x + y = 2 *)
  check Alcotest.bool "inconsistent rows" true
    (Dt_exact.Mdgcd.solve ~a:[| [| 1; 1 |]; [| 1; 1 |] |] ~b:[| 1; 2 |] = None);
  (* redundant rows are fine *)
  check Alcotest.bool "redundant rows" true
    (Dt_exact.Mdgcd.solve ~a:[| [| 1; 1 |]; [| 2; 2 |] |] ~b:[| 3; 6 |] <> None)

let prop_mdgcd_random =
  qtest "mdgcd solutions satisfy the system; kernel spans the nullspace"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 3)
           (list_of_size (Gen.return 4) (int_range (-5) 5)))
        (list_of_size (Gen.int_range 1 3) (int_range (-10) 10)))
    (fun (rows, b) ->
      QCheck.assume (rows <> []);
      let m = min (List.length rows) (List.length b) in
      let a =
        Array.of_list (Dt_support.Listx.take m (List.map Array.of_list rows))
      in
      let b = Array.of_list (Dt_support.Listx.take m b) in
      match Dt_exact.Mdgcd.solve ~a ~b with
      | None -> true (* checked against brute force elsewhere via Power *)
      | Some s ->
          let dot row x =
            let acc = ref 0 in
            Array.iteri (fun i c -> acc := !acc + (c * x.(i))) row;
            !acc
          in
          Array.for_all
            (fun (row, rhs) -> dot row s.Dt_exact.Mdgcd.particular = rhs)
            (Array.mapi (fun i row -> (row, b.(i))) a)
          && Array.for_all
               (fun k -> Array.for_all (fun row -> dot row k = 0) a)
               s.Dt_exact.Mdgcd.kernel)

let test_power_basic () =
  let loops = loops1 ~hi:10 () in
  let mk f = Aref.linear "A" [ f ] in
  (* A(2I) vs A(2I+1): independent *)
  check Alcotest.bool "parity" true
    (Dt_exact.Power.test
       ~src:(mk (av ~k:2 i0), loops)
       ~snk:(mk (av ~k:2 ~c:1 i0), loops)
       ()
    = `Independent);
  (* A(I+20) vs A(I) over [1,10]: bounds exclude *)
  check Alcotest.bool "bounds exclude" true
    (Dt_exact.Power.test
       ~src:(mk (av ~c:20 i0), loops)
       ~snk:(mk (av i0), loops)
       ()
    = `Independent);
  (* A(I+1) vs A(I): dependent, direction < only *)
  match
    Dt_exact.Power.vectors
      ~src:(mk (av ~c:1 i0), loops)
      ~snk:(mk (av i0), loops)
      ()
  with
  | `Vectors [ [ Deptest.Direction.Lt ] ] -> ()
  | `Vectors _ -> Alcotest.fail "expected exactly (<)"
  | `Independent -> Alcotest.fail "dependent expected"

let test_power_triangular () =
  (* DO I = 1, 10; DO J = 1, I-1: A(I,J) vs A(J,I): within the strict
     lower triangle a transposed write/read never collides *)
  let loops =
    [
      loop ~hi:10 i0;
      loop_aff j1 ~lo:(Affine.const 1)
        ~hi:(Affine.add_const (-1) (Affine.of_index i0));
    ]
  in
  let w = Aref.linear "A" [ av i0; av j1 ] in
  let rd = Aref.linear "A" [ av j1; av i0 ] in
  check Alcotest.bool "triangular transpose independent" true
    (Dt_exact.Power.test ~src:(w, loops) ~snk:(rd, loops) () = `Independent)

let test_power_symbolic () =
  (* symbolic bound: A(I+N) vs A(I) over [1,N] — N is a free variable to
     the Power test, which cannot exclude N <= 0... but bounds 1 <= alpha
     <= N force N >= 1, so alpha + N >= beta + 1 always: independent. *)
  let n = Affine.of_sym "N" in
  let loops = [ loop_aff i0 ~lo:(Affine.const 1) ~hi:n ] in
  let mk f = Aref.linear "A" [ f ] in
  check Alcotest.bool "symbolic cancel" true
    (Dt_exact.Power.test
       ~src:(mk (Affine.add (av i0) n), loops)
       ~snk:(mk (av i0), loops)
       ()
    = `Independent)

let test_brute () =
  let loops = loops1 ~hi:10 () in
  let mk f = Aref.linear "A" [ f ] in
  (match
     Dt_exact.Brute.test ~src:(mk (av ~c:1 i0), loops) ~snk:(mk (av i0), loops) ()
   with
  | Some rep ->
      check Alcotest.bool "dependent" true rep.Dt_exact.Brute.dependent;
      check Alcotest.int "witnesses" 9 rep.Dt_exact.Brute.witnesses;
      check
        (Alcotest.array (Alcotest.option Alcotest.int))
        "distance" [| Some 1 |] rep.Dt_exact.Brute.distances
  | None -> Alcotest.fail "oracle should run");
  (* nonlinear: no verdict *)
  let nl = Aref.make "A" [ Aref.Nonlinear "IX(I)" ] in
  check Alcotest.bool "nonlinear n/a" true
    (Dt_exact.Brute.test ~src:(nl, loops) ~snk:(nl, loops) () = None)

(* agreement: Power vs Brute on random concrete pairs *)
let prop_power_vs_brute =
  qtest ~count:200 "Power test agrees with the brute-force oracle"
    (QCheck.make
       ~print:(fun (a, b, _) -> Aref.to_string a ^ " vs " ^ Aref.to_string b)
       (QCheck.Gen.map
          (fun seed ->
            let st = Random.State.make [| seed |] in
            Dt_workloads.Generator.ref_pair st Dt_workloads.Generator.default)
          QCheck.Gen.int))
    (fun (src, snk, loops) ->
      match Dt_exact.Brute.test ~src:(src, loops) ~snk:(snk, loops) () with
      | None -> true
      | Some rep -> (
          match Dt_exact.Power.test ~src:(src, loops) ~snk:(snk, loops) () with
          | `Independent ->
              (* soundness: an Independent verdict must match the oracle *)
              not rep.Dt_exact.Brute.dependent
          | `Maybe ->
              (* `Maybe` is always sound; FM's rational relaxation can
                 rarely miss an integer gap, so exactness of `Maybe` is
                 not required here (the superset property below pins the
                 precision) *)
              true))

let prop_power_vectors_superset =
  qtest ~count:150 "Power direction vectors cover all observed vectors"
    (QCheck.make
       (QCheck.Gen.map
          (fun seed ->
            let st = Random.State.make [| seed |] in
            Dt_workloads.Generator.ref_pair st Dt_workloads.Generator.default)
          QCheck.Gen.int))
    (fun (src, snk, loops) ->
      match Dt_exact.Brute.test ~src:(src, loops) ~snk:(snk, loops) () with
      | None -> true
      | Some rep -> (
          match Dt_exact.Power.vectors ~src:(src, loops) ~snk:(snk, loops) () with
          | `Independent -> rep.Dt_exact.Brute.dirvecs = []
          | `Vectors vs ->
              List.for_all
                (fun observed -> List.mem observed vs)
                rep.Dt_exact.Brute.dirvecs))

let suite =
  [
    Alcotest.test_case "Fourier-Motzkin feasibility" `Quick test_fm_feasible;
    Alcotest.test_case "multidimensional GCD" `Quick test_mdgcd;
    prop_mdgcd_random;
    Alcotest.test_case "Power test basics" `Quick test_power_basic;
    Alcotest.test_case "Power triangular" `Quick test_power_triangular;
    Alcotest.test_case "Power symbolic" `Quick test_power_symbolic;
    Alcotest.test_case "brute oracle" `Quick test_brute;
    prop_power_vs_brute;
    prop_power_vectors_superset;
  ]
