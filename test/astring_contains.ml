(* Tiny substring search used across the test suite. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0
