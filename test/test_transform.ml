(* The transformation consumers: SCC, vectorization, parallelization,
   interchange, restructuring. *)

open Helpers

let check = Alcotest.check

let test_scc () =
  (* 0 -> 1 -> 2 -> 1, 0 -> 3 *)
  let succs = function 0 -> [ 1; 3 ] | 1 -> [ 2 ] | 2 -> [ 1 ] | _ -> [] in
  let sccs = Dt_transform.Scc.topo_order ~nodes:[ 0; 1; 2; 3 ] ~succs in
  let sorted = List.map (List.sort compare) sccs in
  check Alcotest.bool "cycle grouped" true (List.mem [ 1; 2 ] sorted);
  check Alcotest.int "three components" 3 (List.length sccs);
  (* topological: 0's component before 1-2's *)
  let pos x = Option.get (List.find_index (fun c -> List.mem x c) sccs) in
  check Alcotest.bool "0 before cycle" true (pos 0 < pos 1);
  check Alcotest.bool "0 before 3" true (pos 0 < pos 3)

let test_parallel_reports () =
  let prog = parse {|
      DO 20 I = 1, 100
      DO 10 J = 2, 100
        A(I,J) = A(I,J-1) + B(I,J)
   10 CONTINUE
   20 CONTINUE
|} in
  let deps = deps_of_prog prog in
  let reports = Dt_transform.Parallel.analyze prog deps in
  let find name =
    List.find
      (fun r -> Dt_ir.Index.name r.Dt_transform.Parallel.loop.Dt_ir.Loop.index = name)
      reports
  in
  check Alcotest.bool "I parallel" true (find "I").Dt_transform.Parallel.parallel;
  check Alcotest.bool "J sequential" false (find "J").Dt_transform.Parallel.parallel;
  check Alcotest.int "J blockers" 1
    (List.length (find "J").Dt_transform.Parallel.blockers)

let test_vectorize_simple () =
  (* fully parallel statement vectorizes *)
  let prog = parse {|
      DO 10 I = 1, 100
        A(I) = B(I) + C(I)
   10 CONTINUE
|} in
  let deps = deps_of_prog prog in
  let plan = Dt_transform.Vectorize.codegen prog deps in
  check Alcotest.int "one vector stmt" 1
    (List.length (Dt_transform.Vectorize.vector_statements plan));
  check Alcotest.int "nothing sequential" 0
    (List.length (Dt_transform.Vectorize.fully_sequential plan))

let test_vectorize_recurrence () =
  let prog = parse {|
      DO 10 I = 2, 100
        A(I) = A(I-1) + B(I)
   10 CONTINUE
|} in
  let deps = deps_of_prog prog in
  let plan = Dt_transform.Vectorize.codegen prog deps in
  check Alcotest.int "no vector stmts" 0
    (List.length (Dt_transform.Vectorize.vector_statements plan));
  match plan with
  | [ Dt_transform.Vectorize.Seq_loop (_, _) ] -> ()
  | _ -> Alcotest.fail "expected a sequential loop"

let test_vectorize_partial () =
  (* classic Allen-Kennedy: the recurrence stays sequential at level 1,
     the independent statement vectorizes after distribution *)
  let prog = parse {|
      DO 10 I = 2, 100
        A(I) = A(I-1) + B(I)
        C(I) = B(I) + D(I)
   10 CONTINUE
|} in
  let deps = deps_of_prog prog in
  let plan = Dt_transform.Vectorize.codegen prog deps in
  let vec = Dt_transform.Vectorize.vector_statements plan in
  check Alcotest.int "one vectorized" 1 (List.length vec);
  check Alcotest.int "vectorized is S1" 1 (List.hd vec).Dt_ir.Stmt.id

let test_vectorize_inner () =
  (* outer recurrence, inner parallel: S inside Seq_loop(I) vectorizes
     over J *)
  let prog = parse {|
      DO 20 I = 2, 50
      DO 10 J = 1, 50
        A(I,J) = A(I-1,J) + B(I,J)
   10 CONTINUE
   20 CONTINUE
|} in
  let deps = deps_of_prog prog in
  let plan = Dt_transform.Vectorize.codegen prog deps in
  match plan with
  | [ Dt_transform.Vectorize.Seq_loop (l, [ Dt_transform.Vectorize.Vector_stmt _ ]) ] ->
      check Alcotest.string "sequential loop is I" "I"
        (Dt_ir.Index.name l.Dt_ir.Loop.index)
  | _ -> Alcotest.fail "expected Seq_loop(I, [vector stmt])"

let test_vectorize_self_anti () =
  (* a loop-independent self anti-dependence must not block vectorization *)
  let prog = parse {|
      DO 10 I = 1, 100
        A(I) = A(I) + 1
   10 CONTINUE
|} in
  let deps = deps_of_prog prog in
  let plan = Dt_transform.Vectorize.codegen prog deps in
  check Alcotest.int "vectorizes" 1
    (List.length (Dt_transform.Vectorize.vector_statements plan))

let test_interchange () =
  (* A(I,J) = A(I-1,J+1): direction (<,>): interchange illegal *)
  let deps1 =
    deps_of
      {|
      DO 20 I = 2, 50
      DO 10 J = 1, 49
        A(I,J) = A(I-1,J+1)
   10 CONTINUE
   20 CONTINUE
|}
  in
  check Alcotest.bool "(<,>) blocks interchange" false
    (Dt_transform.Interchange.interchange_legal deps1 ~depth:2 ~level:1);
  (* A(I,J) = A(I-1,J-1): direction (<,<): interchange legal *)
  let deps2 =
    deps_of
      {|
      DO 20 I = 2, 50
      DO 10 J = 2, 50
        A(I,J) = A(I-1,J-1)
   10 CONTINUE
   20 CONTINUE
|}
  in
  check Alcotest.bool "(<,<) allows interchange" true
    (Dt_transform.Interchange.interchange_legal deps2 ~depth:2 ~level:1);
  check Alcotest.bool "identity permutation legal" true
    (Dt_transform.Interchange.permutation_legal deps1 ~perm:[| 0; 1 |])

let test_permutation_search () =
  (* A(I,J) = A(I-1,J): carried on I; moving J innermost... J is already
     parallel; interchange puts the sequential I loop outside either way.
     The (<,=) vector allows both orders; best keeps J innermost giving 1
     parallel innermost loop. *)
  let deps =
    deps_of
      {|
      DO 20 I = 2, 30
      DO 10 J = 1, 30
        A(I,J) = A(I-1,J)
   10 CONTINUE
   20 CONTINUE
|}
  in
  check Alcotest.int "both orders legal" 2
    (List.length (Dt_transform.Interchange.legal_permutations deps ~depth:2));
  (match Dt_transform.Interchange.best_permutation deps ~depth:2 with
  | Some (perm, score) ->
      check Alcotest.int "one parallel innermost" 1 score;
      check (Alcotest.array Alcotest.int) "identity wins" [| 0; 1 |] perm
  | None -> Alcotest.fail "expected a permutation");
  (* A(I,J) = A(I-1,J-1): (<,<) — after interchange still legal; inner
     carries nothing in either order at position 2 *)
  let deps2 =
    deps_of
      {|
      DO 20 I = 2, 30
      DO 10 J = 2, 30
        A(I,J) = A(I-1,J-1)
   10 CONTINUE
   20 CONTINUE
|}
  in
  match Dt_transform.Interchange.best_permutation deps2 ~depth:2 with
  | Some (_, score) -> check Alcotest.int "inner parallel" 1 score
  | None -> Alcotest.fail "legal permutation must exist"

let test_distribute () =
  let prog = parse {|
      DO 10 I = 2, 100
        A(I) = A(I-1) + B(I)
        C(I) = B(I) + D(I)
   10 CONTINUE
|} in
  let deps = deps_of_prog prog in
  let prog' = Dt_transform.Distribute.run prog deps in
  (* distribution splits the loop: the recurrence stays in its own loop,
     the independent statement becomes a parallel loop *)
  check Alcotest.int "two top-level loops" 2
    (List.length prog'.Dt_ir.Nest.body);
  check Alcotest.int "same statements" 2
    (List.length (Dt_ir.Nest.all_stmts prog'));
  let _, reports = Dt_transform.Distribute.run_and_report prog in
  check Alcotest.int "one parallel loop after fission" 1
    (List.length
       (List.filter (fun r -> r.Dt_transform.Parallel.parallel) reports))

let test_distribute_preserves_order () =
  (* flow S0 -> S1 forces S0's loop before S1's *)
  let prog = parse {|
      DO 10 I = 2, 100
        X(I) = X(I-1) + 1
        Y(I) = X(I-1) * 2
   10 CONTINUE
|} in
  let deps = deps_of_prog prog in
  let prog' = Dt_transform.Distribute.run prog deps in
  let ids = List.map (fun s -> s.Dt_ir.Stmt.id) (Dt_ir.Nest.all_stmts prog') in
  check (Alcotest.list Alcotest.int) "topological order kept" [ 0; 1 ] ids

let test_reversal () =
  let carried =
    deps_of
      {|
      DO 10 I = 2, 50
        A(I) = A(I-1)
   10 CONTINUE
|}
  in
  check Alcotest.bool "recurrence blocks reversal" false
    (Dt_transform.Interchange.reversal_legal carried ~level:1);
  let indep =
    deps_of {|
      DO 10 I = 1, 50
        A(I) = B(I)
        C(I) = A(I)
   10 CONTINUE
|}
  in
  check Alcotest.bool "loop-independent deps allow reversal" true
    (Dt_transform.Interchange.reversal_legal indep ~level:1)

let test_dot_output () =
  let deps =
    deps_of
      {|
      DO 10 I = 2, 50
        A(I) = A(I-1) + B(I)
   10 CONTINUE
|}
  in
  let dot = Deptest.Depgraph.to_dot (Deptest.Depgraph.build deps) in
  check Alcotest.bool "digraph" true (Astring_contains.contains dot "digraph");
  check Alcotest.bool "edge" true (Astring_contains.contains dot "n0 -> n0");
  check Alcotest.bool "flow label" true (Astring_contains.contains dot "flow")

let test_restructure_interior () =
  (* weak-zero in the middle of the range: peel suggestion with Interior *)
  let prog = parse {|
      DO 10 I = 1, 100
        A(I) = A(50) + 1
   10 CONTINUE
|} in
  let s = Dt_transform.Restructure.suggest prog in
  check Alcotest.bool "interior peel" true
    (List.exists
       (function
         | Dt_transform.Restructure.Peel { at_boundary = `Interior; _ } -> true
         | _ -> false)
       s)

let suite =
  [
    Alcotest.test_case "Tarjan SCC" `Quick test_scc;
    Alcotest.test_case "parallel loop reports" `Quick test_parallel_reports;
    Alcotest.test_case "vectorize: parallel stmt" `Quick test_vectorize_simple;
    Alcotest.test_case "vectorize: recurrence" `Quick test_vectorize_recurrence;
    Alcotest.test_case "vectorize: distribution" `Quick test_vectorize_partial;
    Alcotest.test_case "vectorize: inner loop" `Quick test_vectorize_inner;
    Alcotest.test_case "vectorize: self anti-dep" `Quick test_vectorize_self_anti;
    Alcotest.test_case "interchange legality" `Quick test_interchange;
    Alcotest.test_case "permutation search" `Quick test_permutation_search;
    Alcotest.test_case "loop distribution" `Quick test_distribute;
    Alcotest.test_case "distribution order" `Quick test_distribute_preserves_order;
    Alcotest.test_case "loop reversal" `Quick test_reversal;
    Alcotest.test_case "dot output" `Quick test_dot_output;
    Alcotest.test_case "peel suggestions" `Quick test_restructure_interior;
  ]
