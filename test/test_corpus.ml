(* Corpus integrity: every embedded program parses, lowers, analyzes, and
   its dependences are sound against the brute-force oracle on small
   symbolic values. *)

open Dt_ir


let check = Alcotest.check

let test_all_parse () =
  List.iter
    (fun (e : Dt_workloads.Corpus.entry) ->
      match Dt_workloads.Corpus.programs e with
      | ps ->
          if List.exists (fun p -> Nest.all_stmts p = []) ps || ps = [] then
            Alcotest.failf "%s/%s has no statements" e.Dt_workloads.Corpus.suite
              e.Dt_workloads.Corpus.name
      | exception ex ->
          Alcotest.failf "%s/%s failed to lower: %s" e.Dt_workloads.Corpus.suite
            e.Dt_workloads.Corpus.name (Printexc.to_string ex))
    Dt_workloads.Corpus.all

let test_all_analyze () =
  List.iter
    (fun (e : Dt_workloads.Corpus.entry) ->
      List.iter (fun p ->
      let r = Helpers.run_default p in
      (* dependence endpoints must be valid statement ids *)
      List.iter
        (fun d ->
          if
            Nest.find_stmt p d.Deptest.Dep.src_stmt = None
            || Nest.find_stmt p d.Deptest.Dep.snk_stmt = None
          then Alcotest.fail "dangling statement id")
        r.Deptest.Analyze.deps)
        (Dt_workloads.Corpus.programs e))
    Dt_workloads.Corpus.all

(* soundness of the full analyzer against brute force: for every array
   reference pair of every corpus program, if the analyzer claims
   independence, the oracle (with symbolic constants bound to a small
   value) must find no collision. *)
let test_corpus_sound_vs_brute () =
  let sym_env _ = 8 in
  let checked = ref 0 in
  List.iter
    (fun (e : Dt_workloads.Corpus.entry) ->
      List.iter (fun p ->
      let accesses =
        List.concat_map
          (fun (s, loops) -> List.map (fun a -> (a, loops)) (Stmt.accesses s))
          (Nest.stmts_with_loops p)
      in
      let arr = Array.of_list accesses in
      for i = 0 to Array.length arr - 1 do
        for j = i to Array.length arr - 1 do
          let (a1 : Stmt.access), l1 = arr.(i) and (a2 : Stmt.access), l2 = arr.(j) in
          if
            a1.Stmt.aref.Aref.base = a2.Stmt.aref.Aref.base
            && Aref.rank a1.Stmt.aref > 0
          then
            match
              Dt_exact.Brute.test ~sym_env ~max_pairs:400_000
                ~src:(a1.Stmt.aref, l1) ~snk:(a2.Stmt.aref, l2) ()
            with
            | None -> ()
            | Some rep ->
                incr checked;
                let t =
                  Deptest.Pair_test.test ~src:(a1.Stmt.aref, l1)
                    ~snk:(a2.Stmt.aref, l2) ()
                in
                if
                  t.Deptest.Pair_test.result = `Independent
                  && rep.Dt_exact.Brute.dependent
                then
                  Alcotest.failf "UNSOUND independence in %s/%s (%s vs %s)"
                    e.Dt_workloads.Corpus.suite e.Dt_workloads.Corpus.name
                    (Aref.to_string a1.Stmt.aref) (Aref.to_string a2.Stmt.aref)
        done
      done)
        (Dt_workloads.Corpus.programs e))
    Dt_workloads.Corpus.all;
  check Alcotest.bool "pairs were actually checked" true (!checked > 100)

let test_suites_nonempty () =
  List.iter
    (fun s ->
      if Dt_workloads.Corpus.by_suite s = [] then
        Alcotest.failf "suite %s is empty" s)
    Dt_workloads.Corpus.suites;
  check Alcotest.bool "total count" true (Dt_workloads.Corpus.total_programs >= 60)

let suite =
  [
    Alcotest.test_case "all programs parse" `Quick test_all_parse;
    Alcotest.test_case "all programs analyze" `Quick test_all_analyze;
    Alcotest.test_case "corpus soundness vs oracle" `Slow test_corpus_sound_vs_brute;
    Alcotest.test_case "suites nonempty" `Quick test_suites_nonempty;
  ]
