(* Semantic validation: the interpreter gives IR programs an executable
   meaning, so transformations can be checked end-to-end — a transformed
   program must compute the same final memory. Also: symbolic analysis
   must stay sound under every instantiation of the symbols. *)

open Dt_ir
open Helpers

let check = Alcotest.check

let test_interp_basic () =
  let prog = parse {|
      DO 10 I = 1, 5
        A(I) = B(I)
   10 CONTINUE
|} in
  let mem = Interp.run prog in
  (* 5 cells of A written + 5 of B read-initialized *)
  check Alcotest.int "10 cells" 10 (Interp.cells mem);
  (* determinism *)
  check Alcotest.bool "deterministic" true
    (Interp.equal mem (Interp.run prog))

let test_interp_recurrence () =
  (* order sensitivity: a recurrence read must see the previous write *)
  let prog = parse {|
      DO 10 I = 2, 6
        A(I) = A(I-1)
   10 CONTINUE
|} in
  let fwd = Interp.dump (Interp.run prog) in
  (* the reversed loop computes something different *)
  let rev = parse {|
      DO 10 I = 6, 2, -1
        A(I) = A(I-1)
   10 CONTINUE
|} in
  check Alcotest.bool "reversal changes the result" false
    (Interp.dump (Interp.run rev) = fwd)

let test_interp_symbolic_env () =
  let prog = parse {|
      DO 10 I = 1, N
        A(I) = 0
   10 CONTINUE
|} in
  let mem = Interp.run ~sym_env:(fun _ -> 3) prog in
  check Alcotest.int "3 cells" 3 (Interp.cells mem)

let test_distribute_semantics_fixed () =
  let prog = parse {|
      DO 10 I = 2, 30
        A(I) = A(I-1) + B(I)
        C(I) = A(I) + A(I-1)
        B(I) = C(I)
   10 CONTINUE
|} in
  let deps = deps_of_prog prog in
  let dist = Dt_transform.Distribute.run prog deps in
  check Alcotest.bool "distribution preserves semantics" true
    (Interp.equal (Interp.run prog) (Interp.run dist))

let gen_program =
  QCheck.make
    ~print:(fun p -> Format.asprintf "%a" Nest.pp p)
    (QCheck.Gen.map
       (fun seed ->
         let st = Random.State.make [| seed |] in
         Dt_workloads.Generator.program st
           { Dt_workloads.Generator.default with max_depth = 2; max_bound = 5 }
           ~stmts:4)
       QCheck.Gen.int)

let prop_distribute_semantics =
  qtest ~count:500 "loop distribution preserves program semantics"
    gen_program (fun prog ->
      let deps = deps_of_prog prog in
      let dist = Dt_transform.Distribute.run prog deps in
      Interp.equal (Interp.run prog) (Interp.run dist))

let prop_emit_semantics =
  qtest ~count:300 "emit/reparse preserves program semantics"
    gen_program (fun prog ->
      let prog2 = Dt_frontend.Lower.parse (Dt_frontend.Emit.program prog) in
      (* statement ids and access shapes survive the round-trip, so the
         synthetic semantics must agree cell for cell *)
      Interp.equal (Interp.run prog) (Interp.run prog2))

(* symbolic analysis soundness: an independence verdict on a symbolic
   nest must hold for every instantiation of N *)
let prop_symbolic_sound =
  qtest ~count:500 "symbolic verdicts sound for all N"
    (QCheck.make
       (QCheck.Gen.map
          (fun seed ->
            let st = Random.State.make [| seed |] in
            Dt_workloads.Generator.ref_pair st
              { Dt_workloads.Generator.default with symbolic_hi = true })
          QCheck.Gen.int))
    (fun (src, snk, loops) ->
      let t = Deptest.Pair_test.test ~src:(src, loops) ~snk:(snk, loops) () in
      match t.Deptest.Pair_test.result with
      | `Dependent _ -> true
      | `Independent ->
          List.for_all
            (fun n ->
              match
                Dt_exact.Brute.test ~sym_env:(fun _ -> n) ~max_pairs:100_000
                  ~src:(src, loops) ~snk:(snk, loops) ()
              with
              | Some rep -> not rep.Dt_exact.Brute.dependent
              | None -> true)
            [ 1; 2; 5; 9 ])

(* specialization refines: binding N can only improve precision, never
   lose soundness *)
let prop_specialize_monotone =
  qtest ~count:400 "specialization preserves soundness and only sharpens"
    (QCheck.make
       (QCheck.Gen.map
          (fun seed ->
            let st = Random.State.make [| seed |] in
            Dt_workloads.Generator.ref_pair st
              { Dt_workloads.Generator.default with symbolic_hi = true })
          QCheck.Gen.int))
    (fun (src, snk, loops) ->
      let bindings = [ ("N", 6) ] in
      let spec_aref (r : Aref.t) =
        Aref.make r.Aref.base
          (List.map
             (function
               | Aref.Linear a -> Aref.Linear (Specialize.affine a ~bindings)
               | s -> s)
             r.Aref.subs)
      in
      let spec_loop (l : Loop.t) =
        Loop.make l.Loop.index
          ~lo:(Specialize.affine l.Loop.lo ~bindings)
          ~hi:(Specialize.affine l.Loop.hi ~bindings)
      in
      let loops' = List.map spec_loop loops in
      let sym = Deptest.Pair_test.test ~src:(src, loops) ~snk:(snk, loops) () in
      let conc =
        Deptest.Pair_test.test
          ~src:(spec_aref src, loops')
          ~snk:(spec_aref snk, loops')
          ()
      in
      (* symbolic independence implies concrete independence *)
      (match (sym.Deptest.Pair_test.result, conc.Deptest.Pair_test.result) with
      | `Independent, `Dependent _ -> false
      | _ -> true)
      &&
      (* and the concrete verdict is sound against the oracle *)
      match
        Dt_exact.Brute.test ~sym_env:(fun _ -> 6) ~max_pairs:100_000
          ~src:(spec_aref src, loops')
          ~snk:(spec_aref snk, loops')
          ()
      with
      | Some rep ->
          not
            (conc.Deptest.Pair_test.result = `Independent
            && rep.Dt_exact.Brute.dependent)
      | None -> true)

let suite =
  [
    Alcotest.test_case "interpreter basics" `Quick test_interp_basic;
    Alcotest.test_case "interpreter order sensitivity" `Quick test_interp_recurrence;
    Alcotest.test_case "interpreter symbolic bounds" `Quick test_interp_symbolic_env;
    Alcotest.test_case "distribution semantics (fixed)" `Quick
      test_distribute_semantics_fixed;
    prop_distribute_semantics;
    prop_emit_semantics;
    prop_symbolic_sound;
    prop_specialize_monotone;
  ]
