(* Dt_guard: overflow-checked arithmetic, fault containment, budgets,
   and deterministic fault injection.

   The oracle for the checked operations is split-word reference
   arithmetic — Int64 for sums (63+63-bit sums always fit), a
   sign-magnitude base-2^16 limb schoolbook product for multiplication —
   so the tests never rely on the very wrap-around behavior under test.
   The driver-level tests check the degradation contract: a fault never
   escapes [Pair_test.test], never produces a false independence, and is
   always recorded (meta, metrics guard block). *)

open Dt_ir
open Helpers
module Ops = Dt_guard.Ops
module Inject = Dt_guard.Inject

(* --- split-word oracles ------------------------------------------------ *)

let fits64 v = v >= Int64.of_int min_int && v <= Int64.of_int max_int

let oracle_add a b =
  let s = Int64.add (Int64.of_int a) (Int64.of_int b) in
  if fits64 s then Some (Int64.to_int s) else None

let oracle_sub a b =
  let s = Int64.sub (Int64.of_int a) (Int64.of_int b) in
  if fits64 s then Some (Int64.to_int s) else None

(* |a * b| via base-2^16 limbs: magnitudes (|min_int| = 2^62 included)
   are 4 limbs; the 8-limb schoolbook product is compared
   lexicographically against the limbs of the allowed magnitude
   (max_int, or 2^62 when the result is negative). Partial products and
   carries stay far below native-int range. *)
let oracle_mul a b =
  if a = 0 || b = 0 then Some 0
  else begin
    let negative = a < 0 <> (b < 0) in
    let ma = Int64.abs (Int64.of_int a) and mb = Int64.abs (Int64.of_int b) in
    let limbs m =
      Array.init 4 (fun k ->
          Int64.to_int
            (Int64.logand (Int64.shift_right_logical m (16 * k)) 0xFFFFL))
    in
    let la = limbs ma and lb = limbs mb in
    let prod = Array.make 8 0 in
    for i = 0 to 3 do
      for j = 0 to 3 do
        prod.(i + j) <- prod.(i + j) + (la.(i) * lb.(j))
      done
    done;
    let carry = ref 0 in
    for k = 0 to 7 do
      let v = prod.(k) + !carry in
      prod.(k) <- v land 0xFFFF;
      carry := v lsr 16
    done;
    assert (!carry = 0);
    let bound = if negative then Int64.neg (Int64.of_int min_int) else Int64.of_int max_int in
    let bl =
      Array.init 8 (fun k ->
          if k < 4 then
            Int64.to_int
              (Int64.logand (Int64.shift_right_logical bound (16 * k)) 0xFFFFL)
          else 0)
    in
    let rec cmp k =
      if k < 0 then 0
      else if prod.(k) <> bl.(k) then compare prod.(k) bl.(k)
      else cmp (k - 1)
    in
    if cmp 7 > 0 then None
    else
      (* the magnitude fits in 62 bits, so Int64 reconstruction is exact *)
      let m = Int64.mul ma mb in
      Some (Int64.to_int (if negative then Int64.neg m else m))
  end

(* --- checked ops: edge cases ------------------------------------------- *)

let raises_overflow f = match f () with _ -> false | exception Ops.Overflow -> true

let test_ops_edges () =
  Alcotest.(check int) "add exact" max_int (Ops.add max_int 0);
  Alcotest.(check int) "add mixed" (max_int - 1) (Ops.add max_int (-1));
  Alcotest.(check bool) "max_int+1" true (raises_overflow (fun () -> Ops.add max_int 1));
  Alcotest.(check bool) "min_int-1" true (raises_overflow (fun () -> Ops.add min_int (-1)));
  Alcotest.(check int) "sub exact" 0 (Ops.sub max_int max_int);
  Alcotest.(check bool) "min_int-1 via sub" true (raises_overflow (fun () -> Ops.sub min_int 1));
  Alcotest.(check bool) "0-min_int" true (raises_overflow (fun () -> Ops.sub 0 min_int));
  Alcotest.(check int) "neg" (-5) (Ops.neg 5);
  Alcotest.(check bool) "neg min_int" true (raises_overflow (fun () -> Ops.neg min_int));
  Alcotest.(check int) "mul by 0" 0 (Ops.mul min_int 0);
  Alcotest.(check int) "mul by 1" min_int (Ops.mul min_int 1);
  Alcotest.(check int) "mul by -1" (-max_int) (Ops.mul max_int (-1));
  Alcotest.(check bool) "min_int * -1" true (raises_overflow (fun () -> Ops.mul min_int (-1)));
  Alcotest.(check bool) "-1 * min_int" true (raises_overflow (fun () -> Ops.mul (-1) min_int));
  Alcotest.(check bool) "max_int * 2" true (raises_overflow (fun () -> Ops.mul max_int 2));
  Alcotest.(check int) "halves multiply" (max_int - 1) (Ops.mul ((max_int - 1) / 2) 2);
  Alcotest.(check int) "sum ok" 6 (Ops.sum [ 1; 2; 3 ]);
  Alcotest.(check bool) "sum overflows" true
    (raises_overflow (fun () -> Ops.sum [ max_int; 1; -2 ]));
  Alcotest.(check int) "sum_array ok" 0 (Ops.sum_array [| max_int; -max_int |]);
  Alcotest.(check (option int)) "add_opt none" None (Ops.add_opt max_int max_int);
  Alcotest.(check (option int)) "mul_opt some" (Some 42) (Ops.mul_opt 6 7)

(* --- checked ops vs the split-word oracle ------------------------------ *)

(* ints concentrated near the overflow frontier: the interesting cases
   all live within a few thousand of max_int / min_int or around square
   roots of the range. *)
let extreme_int_gen st =
  match Random.State.int st 6 with
  | 0 -> max_int - Random.State.int st 4096
  | 1 -> min_int + Random.State.int st 4096
  | 2 -> Random.State.int st 8192 - 4096
  | 3 ->
      (* near sqrt(max_int): products straddle the frontier *)
      let r = 3037000499 (* floor(sqrt(2^63)) *) in
      (if Random.State.bool st then 1 else -1)
      * (r + Random.State.int st 64 - 32)
  | 4 -> Random.State.full_int st max_int
  | _ -> -Random.State.full_int st max_int - 1

let extreme_pair =
  QCheck.make
    ~print:(fun (a, b) -> Printf.sprintf "(%d, %d)" a b)
    (fun st -> (extreme_int_gen st, extreme_int_gen st))

let prop_add_oracle =
  qtest ~count:500 "checked add/sub agree with the Int64 oracle" extreme_pair
    (fun (a, b) ->
      Ops.add_opt a b = oracle_add a b
      && (match Ops.sub a b with
         | v -> Some v = oracle_sub a b
         | exception Ops.Overflow -> oracle_sub a b = None))

let prop_mul_oracle =
  qtest ~count:500 "checked mul agrees with the limb-schoolbook oracle"
    extreme_pair (fun (a, b) ->
      Ops.mul_opt a b = oracle_mul a b
      && Ops.mul_opt b a = oracle_mul a b)

(* --- interval bounds: total, positionally widening --------------------- *)

let bound_t =
  Alcotest.testable Dt_support.Interval.pp_bound (fun a b -> a = b)

let test_bound_add_widening () =
  let open Dt_support.Interval in
  Alcotest.check bound_t "lo: oo + -oo widens down" Neg_inf
    (bound_add_lo Neg_inf Pos_inf);
  Alcotest.check bound_t "hi: oo + -oo widens up" Pos_inf
    (bound_add_hi Pos_inf Neg_inf);
  Alcotest.check bound_t "legacy alias = hi" Pos_inf
    (bound_add Neg_inf Pos_inf);
  Alcotest.check bound_t "lo: finite overflow widens down" Neg_inf
    (bound_add_lo (Fin max_int) (Fin max_int));
  Alcotest.check bound_t "hi: finite overflow widens up" Pos_inf
    (bound_add_hi (Fin max_int) (Fin max_int));
  Alcotest.check bound_t "lo: negative overflow widens down" Neg_inf
    (bound_add_lo (Fin min_int) (Fin (-1)));
  Alcotest.check bound_t "exact finite sum" (Fin 5) (bound_add_lo (Fin 2) (Fin 3));
  Alcotest.check bound_t "inf absorbs finite" Pos_inf
    (bound_add_hi (Fin 7) Pos_inf)

(* --- pool containment -------------------------------------------------- *)

let pool_containment ~jobs () =
  let n = 32 in
  let results = Array.make n 0 in
  let failed = ref [] in
  let on_error (_w : int) i e =
    failed := (i, Printexc.to_string e) :: !failed;
    results.(i) <- -1
  in
  let body _w i =
    if i = 13 then failwith "boom";
    results.(i) <- i * 2
  in
  let _ =
    Dt_support.Pool.run
      (Dt_support.Pool.create ~jobs
         ~hooks:(Dt_support.Pool.hooks ~on_error ())
         ())
      ~n ~state:(fun w -> w) ~body
  in
  Alcotest.(check int) "exactly one failure" 1 (List.length !failed);
  Alcotest.(check int) "failing index captured" 13 (fst (List.hd !failed));
  Array.iteri
    (fun i v ->
      if i = 13 then Alcotest.(check int) "slot filled by handler" (-1) v
      else Alcotest.(check int) (Printf.sprintf "task %d completed" i) (i * 2) v)
    results

let test_pool_containment_seq () = pool_containment ~jobs:1 ()
let test_pool_containment_par () = pool_containment ~jobs:4 ()

let test_pool_strict_raises () =
  let raised =
    match
      Dt_support.Pool.run
        (Dt_support.Pool.create ~jobs:1 ())
        ~n:4 ~state:(fun w -> w)
        ~body:(fun _ i -> if i = 2 then failwith "boom")
    with
    | _ -> false
    | exception Failure _ -> true
  in
  Alcotest.(check bool) "without on_error the pool re-raises" true raised

(* --- driver degradation ------------------------------------------------ *)

let huge_siv_pair () =
  (* subscript difference (and SIV distance) overflows: c2 - c1 is far
     outside native range *)
  let w = Aref.linear "A" [ av ~c:(max_int - 1) i0 ] in
  let r = Aref.linear "A" [ av ~c:(min_int + 2) i0 ] in
  (w, r, loops1 ())

let miv_pair () =
  let w = Aref.linear "A" [ Affine.add (av i0) (av j1) ] in
  let r = Aref.linear "A" [ Affine.add_const (-1) (Affine.add (av i0) (av j1)) ] in
  (w, r, loops2 ())

let is_dependent = function `Dependent _ -> true | `Independent -> false

let full_dirvecs n = function
  | `Independent -> false
  | `Dependent { Deptest.Pair_test.dirvecs; _ } ->
      dirvecs = [ Deptest.Dirvec.full n ]

let test_overflow_degrades () =
  let w, r, loops = huge_siv_pair () in
  let m = Dt_obs.Metrics.create () in
  let res =
    Deptest.Pair_test.test ~metrics:m ~src:(w, loops) ~snk:(r, loops) ()
  in
  Alcotest.(check bool) "degraded with Overflow" true
    (res.Deptest.Pair_test.meta.Deptest.Pair_test.degraded
    = Some Dt_guard.Degrade.Overflow);
  Alcotest.(check bool) "verdict is conservative dependence" true
    (full_dirvecs 1 res.Deptest.Pair_test.result);
  Alcotest.(check int) "metrics guard: one degraded pair" 1
    (Dt_obs.Metrics.degraded_pairs m);
  Alcotest.(check int) "metrics guard: bucketed as overflow" 1
    (Dt_obs.Metrics.degraded_by m `Overflow)

let test_budget_degrades () =
  let w, r, loops = miv_pair () in
  let res =
    Deptest.Pair_test.test
      ~budget:(Dt_guard.Budget.make 0)
      ~src:(w, loops) ~snk:(r, loops) ()
  in
  Alcotest.(check bool) "degraded with Budget" true
    (res.Deptest.Pair_test.meta.Deptest.Pair_test.degraded
    = Some Dt_guard.Degrade.Budget);
  Alcotest.(check bool) "verdict is conservative dependence" true
    (full_dirvecs 2 res.Deptest.Pair_test.result);
  (* with fuel to spare, the same pair tests exactly *)
  let res' =
    Deptest.Pair_test.test
      ~budget:(Dt_guard.Budget.make 1_000_000)
      ~src:(w, loops) ~snk:(r, loops) ()
  in
  Alcotest.(check bool) "ample budget: not degraded" true
    (res'.Deptest.Pair_test.meta.Deptest.Pair_test.degraded = None);
  Alcotest.(check bool) "ample budget: dependent" true
    (is_dependent res'.Deptest.Pair_test.result)

let wave_prog =
  parse
    {|
      PROGRAM WAVE
      DO 20 I = 2, 50
        DO 10 J = 2, 50
          A(I,J) = A(I-1,J) + A(I,J-1)
          B(I,J) = B(I-1,J-1) + A(I,J)
   10   CONTINUE
   20 CONTINUE
      END
|}

let test_deadline_degrades () =
  let m = Dt_obs.Metrics.create () in
  let cfg = Deptest.Analyze.Config.make ~deadline_ms:0 ~cache:false ~metrics:m () in
  let res = Deptest.Analyze.run cfg wave_prog in
  Alcotest.(check bool) "pairs were enumerated" true (res.Deptest.Analyze.pairs <> []);
  List.iter
    (fun (p : Deptest.Analyze.pair_record) ->
      Alcotest.(check bool) "every pair degraded by the deadline" true
        (p.meta.Deptest.Pair_test.degraded = Some Dt_guard.Degrade.Budget);
      Alcotest.(check bool) "no false independence" false p.independent)
    res.Deptest.Analyze.pairs;
  Alcotest.(check int) "metrics guard counts them all"
    (List.length res.Deptest.Analyze.pairs)
    (Dt_obs.Metrics.degraded_by m `Budget);
  (* no deadline: same program analyzes cleanly *)
  let res' = Deptest.Analyze.run (Deptest.Analyze.Config.make ~cache:false ()) wave_prog in
  List.iter
    (fun (p : Deptest.Analyze.pair_record) ->
      Alcotest.(check bool) "clean run: nothing degraded" true
        (p.meta.Deptest.Pair_test.degraded = None))
    res'.Deptest.Analyze.pairs

(* --- fault injection coverage ------------------------------------------ *)

(* one driver invocation per site family; each returns a [Pair_test.t],
   so an escape would surface as an uncaught exception here *)
let battery () =
  let strong_siv () =
    let w = Aref.linear "A" [ av ~c:1 i0 ] and r = Aref.linear "A" [ av i0 ] in
    Deptest.Pair_test.test ~src:(w, loops1 ()) ~snk:(r, loops1 ()) ()
  in
  let general_siv () =
    let w = Aref.linear "A" [ av ~k:2 ~c:1 i0 ]
    and r = Aref.linear "A" [ av ~k:3 i0 ] in
    Deptest.Pair_test.test ~src:(w, loops1 ()) ~snk:(r, loops1 ()) ()
  in
  let rdiv () =
    let w = Aref.linear "A" [ av i0 ] and r = Aref.linear "A" [ av j1 ] in
    Deptest.Pair_test.test ~src:(w, loops2 ()) ~snk:(r, loops2 ()) ()
  in
  let miv () =
    let w, r, loops = miv_pair () in
    Deptest.Pair_test.test ~src:(w, loops) ~snk:(r, loops) ()
  in
  let miv_deep () =
    (* depth 3: [Auto] dispatch routes this query to the incremental
       compiled evaluator, whose kernel compilation owns the
       [linform.corner] site (the shallow [miv] goes to [Reference]) *)
    let s = Affine.add (av i0) (Affine.add (av j1) (av k2)) in
    let w = Aref.linear "A" [ s ]
    and r = Aref.linear "A" [ Affine.add_const (-1) s ] in
    let loops = [ loop ~hi:10 i0; loop ~hi:10 j1; loop ~hi:10 k2 ] in
    Deptest.Pair_test.test ~src:(w, loops) ~snk:(r, loops) ()
  in
  [ strong_siv (); general_siv (); rdiv (); miv (); miv_deep () ]

let driver_sites =
  [ "pair.test"; "siv.test"; "rdiv.test"; "dio.solve"; "banerjee.node";
    "linform.corner" ]

let test_injection_sites_contained () =
  List.iter
    (fun site ->
      Alcotest.(check bool)
        (Printf.sprintf "site %s is registered" site)
        true
        (List.mem site (Inject.site_names ()));
      Fun.protect ~finally:Inject.disable (fun () ->
          Inject.enable ~period:1 ~only:site [ Inject.Exception ];
          let results = battery () in
          Alcotest.(check bool)
            (Printf.sprintf "site %s fired" site)
            true
            (Inject.injected_count () > 0);
          (* the injected fault must have degraded some pair, never
             produced an independence out of thin air *)
          let degraded =
            List.filter
              (fun (r : Deptest.Pair_test.t) ->
                r.meta.Deptest.Pair_test.degraded <> None)
              results
          in
          Alcotest.(check bool)
            (Printf.sprintf "site %s: some pair degraded" site)
            true (degraded <> []);
          List.iter
            (fun (r : Deptest.Pair_test.t) ->
              Alcotest.(check bool) "degraded pairs report dependence" true
                (is_dependent r.Deptest.Pair_test.result))
            degraded))
    driver_sites

let test_injection_outside_driver () =
  (* a site hit outside the driver's containment (a direct utility call)
     propagates [Injected] to the caller — containment is a driver
     policy, not a global [with] handler *)
  Fun.protect ~finally:Inject.disable (fun () ->
      Inject.enable ~period:1 ~only:"iter_space.size" [ Inject.Exception ];
      let raised =
        match
          Iter_space.size ~loops:(loops1 ()) ~sym_env:(fun _ -> raise Not_found)
        with
        | _ -> false
        | exception Inject.Injected site -> site = "iter_space.size"
      in
      Alcotest.(check bool) "direct call raises Injected" true raised)

let test_injection_overflow_kind () =
  Fun.protect ~finally:Inject.disable (fun () ->
      Inject.enable ~period:1 [ Inject.Overflow ];
      let w = Aref.linear "A" [ av ~c:1 i0 ] and r = Aref.linear "A" [ av i0 ] in
      let res = Deptest.Pair_test.test ~src:(w, loops1 ()) ~snk:(r, loops1 ()) () in
      Alcotest.(check bool) "injected overflow degrades as Overflow" true
        (res.Deptest.Pair_test.meta.Deptest.Pair_test.degraded
        = Some Dt_guard.Degrade.Overflow))

let gen_pair =
  QCheck.make
    ~print:(fun (a, b, loops) ->
      Format.asprintf "%a vs %a under %a" Aref.pp a Aref.pp b
        (Format.pp_print_list Loop.pp)
        loops)
    (QCheck.Gen.map
       (fun seed ->
         let st = Random.State.make [| seed |] in
         Dt_workloads.Generator.ref_pair st Dt_workloads.Generator.default)
       QCheck.Gen.int)

let prop_injection_sound =
  qtest ~count:300
    "injected faults never turn a dependence into an independence" gen_pair
    (fun (src, snk, loops) ->
      let clean =
        Deptest.Pair_test.test ~src:(src, loops) ~snk:(snk, loops) ()
      in
      let injected =
        Fun.protect ~finally:Inject.disable (fun () ->
            Inject.enable ~period:3 [ Inject.Exception; Inject.Overflow ];
            Deptest.Pair_test.test ~src:(src, loops) ~snk:(snk, loops) ())
      in
      match injected.Deptest.Pair_test.result with
      | `Independent ->
          (* independence under injection is only ever the clean verdict *)
          not (is_dependent clean.Deptest.Pair_test.result)
      | `Dependent _ -> true)

(* --- huge-coefficient nests vs an exact Int64 oracle -------------------- *)

(* A(a*I + c1) written, A(a*I + c2) read over I in [1, hi]: dependence
   iff a | (c2 - c1) and |(c2 - c1) / a| <= hi - 1 — computed exactly in
   Int64 (c1, c2 are native ints, so the difference always fits). *)
let huge_siv_case =
  QCheck.make
    ~print:(fun (a, c1, c2, hi) -> Printf.sprintf "a=%d c1=%d c2=%d hi=%d" a c1 c2 hi)
    (fun st ->
      let a = 1 + Random.State.int st 4 in
      let big b = if b then extreme_int_gen st else Random.State.int st 20 - 10 in
      ( a,
        big (Random.State.bool st),
        big (Random.State.bool st),
        1 + Random.State.int st 50 ))

let prop_huge_constants_conservative =
  qtest ~count:400
    "guarded verdicts are a superset of the exact Int64 oracle on huge nests"
    huge_siv_case (fun (a, c1, c2, hi) ->
      let w = Aref.linear "A" [ av ~k:a ~c:c1 i0 ] in
      let r = Aref.linear "A" [ av ~k:a ~c:c2 i0 ] in
      let loops = loops1 ~hi () in
      let res = Deptest.Pair_test.test ~src:(w, loops) ~snk:(r, loops) () in
      let delta = Int64.sub (Int64.of_int c2) (Int64.of_int c1) in
      let a64 = Int64.of_int a in
      let dependent_oracle =
        Int64.rem delta a64 = 0L
        && Int64.abs (Int64.div delta a64) <= Int64.of_int (hi - 1)
      in
      match res.Deptest.Pair_test.result with
      | `Independent ->
          (* claiming independence is only sound when the oracle agrees,
             and never allowed on a degraded pair *)
          (not dependent_oracle)
          && res.Deptest.Pair_test.meta.Deptest.Pair_test.degraded = None
      | `Dependent _ -> true)

let suite =
  [
    Alcotest.test_case "ops: edge cases at the int frontier" `Quick test_ops_edges;
    prop_add_oracle;
    prop_mul_oracle;
    Alcotest.test_case "interval: bound sums widen positionally" `Quick
      test_bound_add_widening;
    Alcotest.test_case "pool: contained task failure (sequential)" `Quick
      test_pool_containment_seq;
    Alcotest.test_case "pool: contained task failure (4 workers)" `Quick
      test_pool_containment_par;
    Alcotest.test_case "pool: legacy fail-whole-run without on_error" `Quick
      test_pool_strict_raises;
    Alcotest.test_case "driver: overflow degrades conservatively" `Quick
      test_overflow_degrades;
    Alcotest.test_case "driver: exhausted budget degrades the pair" `Quick
      test_budget_degrades;
    Alcotest.test_case "engine: zero deadline degrades every pair" `Quick
      test_deadline_degrades;
    Alcotest.test_case "inject: every driver site fires and is contained"
      `Quick test_injection_sites_contained;
    Alcotest.test_case "inject: sites outside the driver propagate" `Quick
      test_injection_outside_driver;
    Alcotest.test_case "inject: overflow kind lands in the overflow bucket"
      `Quick test_injection_overflow_kind;
    prop_injection_sound;
    prop_huge_constants_conservative;
  ]
