let () =
  Alcotest.run "deptest"
    [
      ("support", Test_support.suite);
      ("affine", Test_affine.suite);
      ("linform", Test_linform.suite);
      ("assume-range", Test_assume_range.suite);
      ("dirvec", Test_dirvec.suite);
      ("classify", Test_classify.suite);
      ("symfm", Test_symfm.suite);
      ("dio", Test_dio.suite);
      ("ziv-siv", Test_siv.suite);
      ("rdiv", Test_rdiv.suite);
      ("gcd-banerjee", Test_gcd_banerjee.suite);
      ("constraints", Test_constr.suite);
      ("delta", Test_delta.suite);
      ("driver", Test_driver.suite);
      ("frontend", Test_frontend.suite);
      ("cfront", Test_cfront.suite);
      ("exact", Test_exact.suite);
      ("paper-examples", Test_paper_examples.suite);
      ("transform", Test_transform.suite);
      ("stats", Test_stats.suite);
      ("corpus", Test_corpus.suite);
      ("extras", Test_extras.suite);
      ("engine", Test_engine.suite);
      ("obs", Test_obs.suite);
      ("span", Test_span.suite);
      ("reqtrace", Test_reqtrace.suite);
      ("emit", Test_emit.suite);
      ("semantics", Test_semantics.suite);
      ("guard", Test_guard.suite);
      ("report", Test_report.suite);
      ("properties", Test_properties.suite);
      ("serve", Test_serve.suite);
      ("resilience", Test_resilience.suite);
    ]
