(* The source emitter and multi-routine units. *)

open Dt_ir
open Helpers

let check = Alcotest.check

let dep_signature (d : Deptest.Dep.t) =
  Format.asprintf "%d>%d %s %a %s" d.Deptest.Dep.src_stmt d.Deptest.Dep.snk_stmt
    (Deptest.Dep.kind_name d.Deptest.Dep.kind)
    Deptest.Dirvec.pp d.Deptest.Dep.dirvec
    (match d.Deptest.Dep.level with
    | Some k -> string_of_int k
    | None -> "li")

let signatures prog =
  List.map dep_signature (deps_of_prog prog)
  |> List.sort_uniq compare

let test_emit_roundtrip_fixed () =
  let src = {|
      DO 20 I = 2, N
        DO 10 J = 2, M
          A(I,J) = A(I-1,J) + A(I,J-1)
   10   CONTINUE
   20 CONTINUE
|} in
  let prog = parse src in
  let emitted = Dt_frontend.Emit.program prog in
  let prog2 = parse emitted in
  check (Alcotest.list Alcotest.string) "same dependences" (signatures prog)
    (signatures prog2)

let test_emit_distributed () =
  let prog = parse {|
      DO 10 I = 2, 100
        A(I) = A(I-1) + B(I)
        C(I) = B(I) + D(I)
   10 CONTINUE
|} in
  let deps = deps_of_prog prog in
  let dist = Dt_transform.Distribute.run prog deps in
  let emitted = Dt_frontend.Emit.program dist in
  (* the emitted distributed program must parse and expose the parallel
     second loop *)
  let prog2 = parse emitted in
  let deps2 = deps_of_prog prog2 in
  let reports = Dt_transform.Parallel.analyze prog2 deps2 in
  check Alcotest.int "two loops" 2 (List.length reports);
  check Alcotest.int "one parallel" 1
    (List.length (List.filter (fun r -> r.Dt_transform.Parallel.parallel) reports))

let prop_emit_roundtrip =
  qtest ~count:300 "parse(emit(p)) has the same dependences as p"
    (QCheck.make
       (QCheck.Gen.map
          (fun seed ->
            let st = Random.State.make [| seed |] in
            Dt_workloads.Generator.program st
              { Dt_workloads.Generator.default with max_bound = 8 }
              ~stmts:3)
          QCheck.Gen.int))
    (fun prog ->
      let emitted = Dt_frontend.Emit.program prog in
      match Dt_frontend.Lower.parse emitted with
      | prog2 -> signatures prog = signatures prog2
      | exception _ -> false)

let test_multi_routine () =
  let unit = Dt_frontend.Lower.parse_unit {|
      SUBROUTINE FIRST
      DO 10 I = 1, N
        A(I) = A(I-1)
   10 CONTINUE
      END
      SUBROUTINE SECOND
      DO 10 I = 1, N
        B(I) = B(I+1)
   10 CONTINUE
      END
|} in
  check Alcotest.int "two routines" 2 (List.length unit);
  check (Alcotest.list Alcotest.string) "names" [ "FIRST"; "SECOND" ]
    (List.map (fun p -> p.Nest.name) unit);
  (* each analyzes independently *)
  List.iter
    (fun p ->
      check Alcotest.int "one dep each" 1
        (List.length (deps_of_prog p)))
    unit

let test_multi_routine_lines () =
  let unit = Dt_frontend.Lower.parse_unit {|
      SUBROUTINE A1
      X(1) = 0
      END
      SUBROUTINE A2
      X(1) = 0
      X(2) = 0
      END
|} in
  match unit with
  | [ a1; a2 ] ->
      check Alcotest.bool "line counts per routine" true
        (a1.Nest.source_lines <= a2.Nest.source_lines)
  | _ -> Alcotest.fail "two routines expected"

let suite =
  [
    Alcotest.test_case "round-trip fixed program" `Quick test_emit_roundtrip_fixed;
    Alcotest.test_case "emit distributed program" `Quick test_emit_distributed;
    prop_emit_roundtrip;
    Alcotest.test_case "multi-routine unit" `Quick test_multi_routine;
    Alcotest.test_case "per-routine line counts" `Quick test_multi_routine_lines;
  ]
