(* Additional coverage: specialization, scalar replacement, iteration
   spaces, outcome algebra, counters, and frontend expression corners. *)

open Dt_ir
open Helpers

let check = Alcotest.check

(* --- Specialize --------------------------------------------------------- *)

let test_specialize_affine () =
  let a =
    Affine.add (av ~k:2 i0)
      (Affine.add (Affine.of_sym ~coeff:3 "N") (Affine.of_sym "M"))
  in
  let s = Specialize.affine a ~bindings:[ ("N", 10) ] in
  check affine_t "N bound, M kept"
    (Affine.add (av ~k:2 ~c:30 i0) (Affine.of_sym "M"))
    s

let test_specialize_program () =
  let prog = parse {|
      DO 10 I = 1, N
        A(I+N) = A(I) + B(I)
   10 CONTINUE
|} in
  let spec = Specialize.program prog ~bindings:[ ("N", 20) ] in
  let l = List.hd (Nest.all_loops spec) in
  check (Alcotest.option Alcotest.int) "bound concrete" (Some 20)
    (Affine.as_const l.Loop.hi);
  (* the specialized program is oracle-checkable and still independent *)
  let deps = deps_of_prog spec in
  check Alcotest.int "still independent" 0
    (List.length (List.filter (fun d -> d.Deptest.Dep.array = "A") deps));
  check (Alcotest.list Alcotest.string) "no symbols left" []
    (Nest.symbolics spec)

(* --- Scalar replacement -------------------------------------------------- *)

let test_scalar_replace () =
  let prog = parse {|
      DO 10 I = 3, 100
        A(I) = A(I-2) + B(I)
   10 CONTINUE
|} in
  let deps = deps_of_prog prog in
  match Dt_transform.Scalar_replace.suggest prog deps with
  | [ c ] ->
      check Alcotest.int "distance 2" 2 c.Dt_transform.Scalar_replace.distance;
      check Alcotest.int "3 registers" 3 c.Dt_transform.Scalar_replace.registers
  | l -> Alcotest.failf "expected one candidate, got %d" (List.length l)

let test_scalar_replace_limits () =
  (* far distances are not candidates *)
  let prog = parse {|
      DO 10 I = 30, 100
        A(I) = A(I-25) + B(I)
   10 CONTINUE
|} in
  let deps = deps_of_prog prog in
  check Alcotest.int "too far" 0
    (List.length (Dt_transform.Scalar_replace.suggest prog deps));
  (* outer-carried dependences are not innermost reuse *)
  let prog2 = parse {|
      DO 20 I = 2, 50
      DO 10 J = 1, 50
        A(I,J) = A(I-1,J) + B(I,J)
   10 CONTINUE
   20 CONTINUE
|} in
  let deps2 = deps_of_prog prog2 in
  check Alcotest.int "outer carry excluded" 0
    (List.length (Dt_transform.Scalar_replace.suggest prog2 deps2))

(* --- Iter_space ----------------------------------------------------------- *)

let test_iter_space () =
  let loops = [ loop ~hi:3 i0; loop ~hi:2 j1 ] in
  let sym_env _ = 0 in
  (match Iter_space.enumerate ~loops ~sym_env ~max_points:100 with
  | Some pts ->
      check Alcotest.int "6 points" 6 (List.length pts);
      let first = List.hd pts in
      check Alcotest.int "lex order first I" 1 (Iter_space.lookup first i0);
      check Alcotest.int "lex order first J" 1 (Iter_space.lookup first j1)
  | None -> Alcotest.fail "enumerable");
  check (Alcotest.option Alcotest.int) "size" (Some 6)
    (Iter_space.size ~loops ~sym_env);
  (* budget exceeded *)
  check Alcotest.bool "budget" true
    (Iter_space.enumerate ~loops ~sym_env ~max_points:5 = None);
  (* triangular *)
  let tri =
    [
      loop ~hi:4 i0;
      loop_aff j1 ~lo:(Affine.const 1) ~hi:(Affine.of_index i0);
    ]
  in
  check (Alcotest.option Alcotest.int) "triangular size 1+2+3+4" (Some 10)
    (Iter_space.size ~loops:tri ~sym_env);
  (* empty loop *)
  let empty = [ loop ~lo:5 ~hi:2 i0 ] in
  check (Alcotest.option Alcotest.int) "empty" (Some 0)
    (Iter_space.size ~loops:empty ~sym_env)

(* --- Outcome algebra ------------------------------------------------------ *)

let test_outcome_and () =
  let d1 =
    Deptest.Outcome.dep1 i0
      (Deptest.Direction.of_list [ Deptest.Direction.Lt; Deptest.Direction.Eq ])
      (Deptest.Outcome.Const 1)
  in
  let d2 =
    Deptest.Outcome.dep1 i0
      (Deptest.Direction.of_list [ Deptest.Direction.Eq; Deptest.Direction.Gt ])
      Deptest.Outcome.Unknown
  in
  (match Deptest.Outcome.and_outcomes d1 d2 with
  | Deptest.Outcome.Dependent [ d ] ->
      check dirset_t "intersected" (Deptest.Direction.single Deptest.Direction.Eq)
        d.Deptest.Outcome.dirs;
      check Alcotest.bool "dist kept" true
        (d.Deptest.Outcome.dist = Deptest.Outcome.Const 1)
  | _ -> Alcotest.fail "dependent expected");
  (* empty intersection becomes independence *)
  let d3 =
    Deptest.Outcome.dep1 i0
      (Deptest.Direction.single Deptest.Direction.Gt)
      Deptest.Outcome.Unknown
  in
  check outcome_t "conflict -> independent" Deptest.Outcome.Independent
    (Deptest.Outcome.and_outcomes d1 d3);
  check outcome_t "independent absorbs" Deptest.Outcome.Independent
    (Deptest.Outcome.and_outcomes Deptest.Outcome.Independent d1)

let test_dirs_of_dist () =
  let a =
    Deptest.Assume.add_nonneg Deptest.Assume.empty
      (Affine.add_const (-1) (Affine.of_sym "N"))
  in
  check dirset_t "const pos" (Deptest.Direction.single Deptest.Direction.Lt)
    (Deptest.Outcome.dirs_of_dist a (Deptest.Outcome.Const 3));
  check dirset_t "sym pos" (Deptest.Direction.single Deptest.Direction.Lt)
    (Deptest.Outcome.dirs_of_dist a (Deptest.Outcome.Sym (Affine.of_sym "N")));
  check dirset_t "sym nonneg"
    (Deptest.Direction.of_list [ Deptest.Direction.Lt; Deptest.Direction.Eq ])
    (Deptest.Outcome.dirs_of_dist a
       (Deptest.Outcome.Sym (Affine.add_const (-1) (Affine.of_sym "N"))));
  check dirset_t "unknown" Deptest.Direction.full_set
    (Deptest.Outcome.dirs_of_dist a (Deptest.Outcome.Sym (Affine.of_sym "M")))

(* --- Counters ------------------------------------------------------------- *)

let test_counters () =
  let c = Deptest.Counters.create () in
  Deptest.Counters.record c Deptest.Counters.Strong_siv ~indep:false;
  Deptest.Counters.record c Deptest.Counters.Strong_siv ~indep:true;
  Deptest.Counters.record c Deptest.Counters.Gcd_miv ~indep:true;
  check Alcotest.int "applied" 2
    (Deptest.Counters.applied c Deptest.Counters.Strong_siv);
  check Alcotest.int "indep" 1
    (Deptest.Counters.proved_indep c Deptest.Counters.Strong_siv);
  let c2 = Deptest.Counters.create () in
  Deptest.Counters.record c2 Deptest.Counters.Strong_siv ~indep:true;
  Deptest.Counters.merge_into c c2;
  check Alcotest.int "merged" 3
    (Deptest.Counters.applied c Deptest.Counters.Strong_siv)

(* --- Frontend expression corners ------------------------------------------ *)

let test_expr_precedence () =
  let prog = parse {|
      DO 10 I = 1, 50
        A(2*I+3-I) = B(I)
   10 CONTINUE
|} in
  let s = List.hd (Nest.all_stmts prog) in
  match (List.hd s.Stmt.writes).Aref.subs with
  | [ Aref.Linear a ] ->
      let l = List.hd (Nest.all_loops prog) in
      check Alcotest.int "2I+3-I -> coeff 1" 1 (Affine.coeff a l.Loop.index);
      check Alcotest.int "const 3" 3 (Affine.const_part a)
  | _ -> Alcotest.fail "linear expected"

let test_unary_and_parens () =
  let prog = parse {|
      DO 10 I = 1, 50
        A(-(I-2)) = B(+I)
   10 CONTINUE
|} in
  let s = List.hd (Nest.all_stmts prog) in
  match (List.hd s.Stmt.writes).Aref.subs with
  | [ Aref.Linear a ] ->
      let l = List.hd (Nest.all_loops prog) in
      check Alcotest.int "-(I-2) coeff" (-1) (Affine.coeff a l.Loop.index);
      check Alcotest.int "-(I-2) const" 2 (Affine.const_part a)
  | _ -> Alcotest.fail "linear expected"

let test_intrinsic_args_are_reads () =
  let prog = parse {|
      DO 10 I = 1, 50
        A(I) = MAX(B(I), C(I+1))
   10 CONTINUE
|} in
  let s = List.hd (Nest.all_stmts prog) in
  let bases =
    List.map (fun (r : Aref.t) -> r.Aref.base) s.Stmt.reads
    |> List.sort_uniq compare
  in
  check (Alcotest.list Alcotest.string) "B and C read, MAX not" [ "B"; "C" ]
    bases

let test_pair_common_prefix () =
  (* imperfect nesting: statement at depth 1 vs depth 2 share one loop *)
  let prog = parse {|
      DO 20 I = 2, 30
        A(I) = A(I-1) + 1
        DO 10 J = 1, 30
          B(I,J) = A(I) + B(I,J-1)
   10   CONTINUE
   20 CONTINUE
|} in
  let deps = deps_of_prog prog in
  let a_deps =
    List.filter
      (fun d ->
        d.Deptest.Dep.array = "A"
        && d.Deptest.Dep.src_stmt <> d.Deptest.Dep.snk_stmt)
      deps
  in
  check Alcotest.bool "cross-depth A dep exists" true (a_deps <> []);
  List.iter
    (fun d ->
      check Alcotest.int "vector over 1 common loop" 1
        (Array.length d.Deptest.Dep.dirvec))
    a_deps

let suite =
  [
    Alcotest.test_case "specialize affine" `Quick test_specialize_affine;
    Alcotest.test_case "specialize program" `Quick test_specialize_program;
    Alcotest.test_case "scalar replacement" `Quick test_scalar_replace;
    Alcotest.test_case "scalar replacement limits" `Quick test_scalar_replace_limits;
    Alcotest.test_case "iteration spaces" `Quick test_iter_space;
    Alcotest.test_case "outcome conjunction" `Quick test_outcome_and;
    Alcotest.test_case "directions from distances" `Quick test_dirs_of_dist;
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "expression precedence" `Quick test_expr_precedence;
    Alcotest.test_case "unary and parens" `Quick test_unary_and_parens;
    Alcotest.test_case "intrinsic arguments" `Quick test_intrinsic_args_are_reads;
    Alcotest.test_case "imperfect nesting" `Quick test_pair_common_prefix;
  ]
