(* The observability layer (Dt_obs): test-kind ids, JSON round-trips,
   the metrics registry, and the trace tree emitted by the driver. *)

open Dt_ir
open Helpers

let check = Alcotest.check

(* --- Test_kind --------------------------------------------------------- *)

let test_kind_ids () =
  List.iteri
    (fun i k -> check Alcotest.int (Dt_obs.Test_kind.slug k) i
        (Dt_obs.Test_kind.id k))
    Dt_obs.Test_kind.all;
  check Alcotest.int "count" (List.length Dt_obs.Test_kind.all)
    Dt_obs.Test_kind.count

let test_kind_slugs () =
  List.iter
    (fun k ->
      match Dt_obs.Test_kind.of_slug (Dt_obs.Test_kind.slug k) with
      | Some k' ->
          check Alcotest.int "slug round-trip" (Dt_obs.Test_kind.id k)
            (Dt_obs.Test_kind.id k')
      | None -> Alcotest.fail "of_slug failed")
    Dt_obs.Test_kind.all;
  check Alcotest.bool "unknown slug" true
    (Dt_obs.Test_kind.of_slug "nonsense" = None)

(* counters re-exports the same kind type; kind_id must stay aligned *)
let test_counters_kind_id () =
  List.iteri
    (fun i k -> check Alcotest.int (Deptest.Counters.kind_name k) i
        (Deptest.Counters.kind_id k))
    Deptest.Counters.all_kinds

(* --- Json -------------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Dt_obs.Json.(
      Obj
        [
          ("null", Null);
          ("t", Bool true);
          ("n", Int (-42));
          ("x", Float 2.5);
          ("s", String "a \"quoted\"\nline\twith \\ and unicode \xc3\xa9");
          ("l", List [ Int 1; Int 2; Obj [ ("k", String "v") ] ]);
          ("empty", Obj []);
        ])
  in
  let s = Dt_obs.Json.to_string v in
  match Dt_obs.Json.of_string s with
  | Ok v' ->
      check Alcotest.bool "round-trip equal" true (Dt_obs.Json.equal v v')
  | Error e -> Alcotest.fail ("parse failed: " ^ e)

let test_json_parse_escapes () =
  match Dt_obs.Json.of_string {|{"a": "xéA", "b": [1, 2.5, -3]}|} with
  | Ok v ->
      check Alcotest.bool "unicode escape" true
        (Dt_obs.Json.member "a" v = Some (Dt_obs.Json.String "x\xc3\xa9A"));
      check Alcotest.bool "mixed numbers" true
        (Dt_obs.Json.member "b" v
        = Some
            Dt_obs.Json.(List [ Int 1; Float 2.5; Int (-3) ]))
  | Error e -> Alcotest.fail ("parse failed: " ^ e)

let test_json_rejects_garbage () =
  let bad s =
    match Dt_obs.Json.of_string s with Ok _ -> false | Error _ -> true
  in
  check Alcotest.bool "trailing" true (bad "{} x");
  check Alcotest.bool "unterminated" true (bad {|{"a": "b|});
  check Alcotest.bool "bare word" true (bad "flase")

(* --- Metrics ----------------------------------------------------------- *)

let test_metrics_record () =
  let m = Dt_obs.Metrics.create () in
  Dt_obs.Metrics.record m Dt_obs.Test_kind.Strong_siv ~indep:true ~ns:5_000L;
  Dt_obs.Metrics.record m Dt_obs.Test_kind.Strong_siv ~indep:false ~ns:3_000L;
  Dt_obs.Metrics.record m Dt_obs.Test_kind.Gcd_miv ~indep:false ~ns:100L;
  check Alcotest.int "applied" 2
    (Dt_obs.Metrics.applied m Dt_obs.Test_kind.Strong_siv);
  check Alcotest.int "indep" 1
    (Dt_obs.Metrics.proved_indep m Dt_obs.Test_kind.Strong_siv);
  check Alcotest.bool "kind_ns" true
    (Dt_obs.Metrics.kind_ns m Dt_obs.Test_kind.Strong_siv = 8_000L);
  check Alcotest.int "other applied" 1
    (Dt_obs.Metrics.applied m Dt_obs.Test_kind.Gcd_miv)

let test_metrics_latency_hist () =
  let m = Dt_obs.Metrics.create () in
  (* one per bucket: bounds are 1us 10us 100us 1ms 10ms, then overflow *)
  List.iter
    (fun ns -> Dt_obs.Metrics.observe_pair m ~ns)
    [ 500L; 5_000L; 50_000L; 500_000L; 5_000_000L; 50_000_000L ];
  check Alcotest.int "pairs" 6 (Dt_obs.Metrics.pairs m);
  check
    Alcotest.(array int)
    "one per bucket"
    [| 1; 1; 1; 1; 1; 1 |]
    (Dt_obs.Metrics.latency_hist m)

let test_metrics_merge () =
  let a = Dt_obs.Metrics.create () and b = Dt_obs.Metrics.create () in
  Dt_obs.Metrics.record a Dt_obs.Test_kind.Ziv_test ~indep:true ~ns:10L;
  Dt_obs.Metrics.record b Dt_obs.Test_kind.Ziv_test ~indep:false ~ns:20L;
  Dt_obs.Metrics.add_phase_ns b Dt_obs.Metrics.Test 1_000L;
  Dt_obs.Metrics.observe_pair b ~ns:42L;
  Dt_obs.Metrics.merge_into a b;
  check Alcotest.int "applied" 2
    (Dt_obs.Metrics.applied a Dt_obs.Test_kind.Ziv_test);
  check Alcotest.bool "ns summed" true
    (Dt_obs.Metrics.kind_ns a Dt_obs.Test_kind.Ziv_test = 30L);
  check Alcotest.bool "phase merged" true
    (Dt_obs.Metrics.phase_ns a Dt_obs.Metrics.Test = 1_000L);
  check Alcotest.int "pairs merged" 1 (Dt_obs.Metrics.pairs a)

let test_metrics_banerjee_counters () =
  let a = Dt_obs.Metrics.create () and b = Dt_obs.Metrics.create () in
  Dt_obs.Metrics.banerjee_compile a;
  Dt_obs.Metrics.banerjee_node a ~incremental:true;
  Dt_obs.Metrics.banerjee_node a ~incremental:true;
  Dt_obs.Metrics.banerjee_node b ~incremental:false;
  Dt_obs.Metrics.banerjee_cap b;
  Dt_obs.Metrics.merge_into a b;
  check Alcotest.int "compilations" 1 (Dt_obs.Metrics.banerjee_compilations a);
  check Alcotest.int "incremental nodes" 2
    (Dt_obs.Metrics.banerjee_incremental_nodes a);
  check Alcotest.int "scratch nodes merged" 1
    (Dt_obs.Metrics.banerjee_scratch_nodes a);
  check Alcotest.int "caps merged" 1 (Dt_obs.Metrics.banerjee_caps a);
  (* surfaced in the profile --json snapshot *)
  match Dt_obs.Json.member "banerjee" (Dt_obs.Metrics.to_json a) with
  | None -> Alcotest.fail "banerjee block missing from metrics JSON"
  | Some blk ->
      check Alcotest.bool "kernel_compilations" true
        (Dt_obs.Json.member "kernel_compilations" blk
        = Some (Dt_obs.Json.Int 1));
      check Alcotest.bool "incremental_nodes" true
        (Dt_obs.Json.member "incremental_nodes" blk = Some (Dt_obs.Json.Int 2));
      check Alcotest.bool "scratch_nodes" true
        (Dt_obs.Json.member "scratch_nodes" blk = Some (Dt_obs.Json.Int 1));
      check Alcotest.bool "combo_cap_fallbacks" true
        (Dt_obs.Json.member "combo_cap_fallbacks" blk
        = Some (Dt_obs.Json.Int 1))

let test_metrics_json_roundtrip () =
  let m = Dt_obs.Metrics.create () in
  Dt_obs.Metrics.record m Dt_obs.Test_kind.Strong_siv ~indep:true ~ns:4_000L;
  Dt_obs.Metrics.record m Dt_obs.Test_kind.Delta_test ~indep:false ~ns:9_000L;
  Dt_obs.Metrics.add_phase_ns m Dt_obs.Metrics.Partition 1_500L;
  Dt_obs.Metrics.observe_pair m ~ns:13_000L;
  let j = Dt_obs.Metrics.to_json m in
  match Dt_obs.Json.of_string (Dt_obs.Json.to_string j) with
  | Error e -> Alcotest.fail ("snapshot did not parse back: " ^ e)
  | Ok j' ->
      check Alcotest.bool "round-trip equal" true (Dt_obs.Json.equal j j');
      check Alcotest.bool "schema" true
        (Dt_obs.Json.member "schema" j'
        = Some (Dt_obs.Json.String "deptest-metrics/2"));
      let tests =
        match Dt_obs.Json.member "tests" j' with
        | Some l -> Option.value ~default:[] (Dt_obs.Json.to_list l)
        | None -> []
      in
      check Alcotest.int "one entry per kind" Dt_obs.Test_kind.count
        (List.length tests);
      let strong =
        List.find
          (fun t ->
            Dt_obs.Json.member "kind" t
            = Some (Dt_obs.Json.String "strong_siv"))
          tests
      in
      check Alcotest.bool "applied count" true
        (Dt_obs.Json.member "applied" strong = Some (Dt_obs.Json.Int 1))

(* --- Trace ------------------------------------------------------------- *)

let test_trace_scope_depth () =
  let sk = Dt_obs.Trace.make () in
  Dt_obs.Trace.emit sk (Dt_obs.Trace.Note "root");
  Dt_obs.Trace.scope sk (fun () ->
      Dt_obs.Trace.emit sk (Dt_obs.Trace.Note "child");
      Dt_obs.Trace.scope sk (fun () ->
          Dt_obs.Trace.emit sk (Dt_obs.Trace.Note "grandchild")));
  Dt_obs.Trace.emit sk (Dt_obs.Trace.Note "root2");
  check
    Alcotest.(list int)
    "depths" [ 0; 1; 2; 0 ]
    (List.map fst (Dt_obs.Trace.events_with_depth sk));
  match Dt_obs.Trace.tree sk with
  | [ r1; r2 ] ->
      check Alcotest.int "r1 children" 1 (List.length r1.Dt_obs.Trace.children);
      check Alcotest.int "r2 children" 0 (List.length r2.Dt_obs.Trace.children)
  | l -> Alcotest.fail (Printf.sprintf "expected 2 roots, got %d" (List.length l))

let test_trace_scope_exception_safe () =
  let sk = Dt_obs.Trace.make () in
  (try
     Dt_obs.Trace.scope sk (fun () ->
         Dt_obs.Trace.emit sk (Dt_obs.Trace.Note "in");
         failwith "boom")
   with Failure _ -> ());
  Dt_obs.Trace.emit sk (Dt_obs.Trace.Note "after");
  check
    Alcotest.(list int)
    "depth restored" [ 1; 0 ]
    (List.map fst (Dt_obs.Trace.events_with_depth sk))

(* a strong-SIV pair must produce exactly one Strong_siv test event with
   the explain-why reason *)
let strong_siv_events ~src_c =
  let sink = Dt_obs.Trace.make () in
  let loops = loops1 ~hi:100 () in
  let src = Aref.linear "A" [ av ~c:src_c i0 ] in
  let snk = Aref.linear "A" [ av i0 ] in
  let r =
    Deptest.Pair_test.test ~sink ~src:(src, loops) ~snk:(snk, loops) ()
  in
  (r, Dt_obs.Trace.events sink)

let test_trace_strong_siv_independent () =
  let r, events = strong_siv_events ~src_c:200 in
  check Alcotest.bool "independent" true
    (r.Deptest.Pair_test.result = `Independent);
  check Alcotest.bool "proved by strong SIV" true
    (r.Deptest.Pair_test.meta.Deptest.Pair_test.proved_by
    = Some Dt_obs.Test_kind.Strong_siv);
  let tests =
    List.filter_map
      (function
        | Dt_obs.Trace.Test { kind = Dt_obs.Test_kind.Strong_siv; _ } as e ->
            Some e
        | _ -> None)
      events
  in
  match tests with
  | [ Dt_obs.Trace.Test { verdict; reason; _ } ] ->
      check Alcotest.bool "verdict independent" true
        (verdict = Dt_obs.Trace.Independent);
      check Alcotest.string "reason" "distance 200 > U-L = 99" reason
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected exactly 1 Strong_siv event, got %d"
           (List.length l))

let test_trace_strong_siv_dependent () =
  let r, events = strong_siv_events ~src_c:4 in
  check Alcotest.bool "dependent" true
    (r.Deptest.Pair_test.result <> `Independent);
  let tests =
    List.filter
      (function
        | Dt_obs.Trace.Test { kind = Dt_obs.Test_kind.Strong_siv; _ } -> true
        | _ -> false)
      events
  in
  check Alcotest.int "exactly one Strong_siv event" 1 (List.length tests)

let test_trace_delta_group_nested () =
  (* A(I+1, I+2) vs A(I, I): coupled group, Delta proves independence via
     contradictory distance constraints *)
  let sink = Dt_obs.Trace.make () in
  let loops = loops1 ~hi:100 () in
  let src = Aref.linear "A" [ av ~c:1 i0; av ~c:2 i0 ] in
  let snk = Aref.linear "A" [ av i0; av i0 ] in
  let r =
    Deptest.Pair_test.test ~sink ~src:(src, loops) ~snk:(snk, loops) ()
  in
  check Alcotest.bool "independent" true
    (r.Deptest.Pair_test.result = `Independent);
  check Alcotest.bool "proved by Delta" true
    (r.Deptest.Pair_test.meta.Deptest.Pair_test.proved_by
    = Some Dt_obs.Test_kind.Delta_test);
  let events = Dt_obs.Trace.events_with_depth sink in
  check Alcotest.bool "has a coupled Group_start" true
    (List.exists
       (function _, Dt_obs.Trace.Group_start _ -> true | _ -> false)
       events);
  (* delta-internal events sit strictly deeper than the group marker *)
  let group_depth =
    List.find_map
      (function d, Dt_obs.Trace.Group_start _ -> Some d | _ -> None)
      events
  in
  let pass_depth =
    List.find_map
      (function d, Dt_obs.Trace.Pass _ -> Some d | _ -> None)
      events
  in
  match (group_depth, pass_depth) with
  | Some g, Some p -> check Alcotest.bool "pass nested under group" true (p > g)
  | _ -> Alcotest.fail "missing Group_start or Pass event"

let test_trace_jsonl_parses () =
  let sink = Dt_obs.Trace.make () in
  let loops = loops1 ~hi:100 () in
  let src = Aref.linear "A" [ av ~c:1 i0; av ~c:2 i0 ] in
  let snk = Aref.linear "A" [ av i0; av i0 ] in
  ignore (Deptest.Pair_test.test ~sink ~src:(src, loops) ~snk:(snk, loops) ());
  let lines =
    String.split_on_char '\n' (Dt_obs.Trace.to_jsonl sink)
    |> List.filter (fun l -> l <> "")
  in
  check Alcotest.bool "nonempty" true (lines <> []);
  List.iteri
    (fun i line ->
      match Dt_obs.Json.of_string line with
      | Error e -> Alcotest.fail ("line did not parse: " ^ e)
      | Ok v ->
          check Alcotest.bool "seq" true
            (Dt_obs.Json.member "seq" v = Some (Dt_obs.Json.Int i));
          check Alcotest.bool "has type" true
            (Dt_obs.Json.member "type" v <> None);
          check Alcotest.bool "has depth" true
            (Dt_obs.Json.member "depth" v <> None))
    lines

(* the analyze layer wraps each pair in Pair_start .. Verdict *)
let test_trace_analyze_verdicts () =
  let prog =
    match
      Dt_frontend.Lower.parse_unit
        {|
      PROGRAM POBS
      DO 10 I = 1, 100
        A(I+1) = A(I) + B(I)
   10 CONTINUE
      END
|}
    with
    | [ p ] -> p
    | _ -> Alcotest.fail "expected one routine"
  in
  let sink = Dt_obs.Trace.make () in
  let metrics = Dt_obs.Metrics.create () in
  (* cache off: the assertions below want the full test narrative, not
     a memo-cache note *)
  let r =
    Deptest.Analyze.run
      (Deptest.Analyze.Config.make ~metrics ~sink ~cache:false ())
      prog
  in
  let events = Dt_obs.Trace.events sink in
  let count f = List.length (List.filter f events) in
  let pairs = List.length r.Deptest.Analyze.pairs in
  check Alcotest.bool "tested some pairs" true (pairs > 0);
  check Alcotest.int "one Pair_start per pair" pairs
    (count (function Dt_obs.Trace.Pair_start _ -> true | _ -> false));
  check Alcotest.int "one Verdict per pair" pairs
    (count (function Dt_obs.Trace.Verdict _ -> true | _ -> false));
  check Alcotest.int "pair latency observed" pairs (Dt_obs.Metrics.pairs metrics);
  (* counters and metrics agree on applied counts *)
  List.iter
    (fun k ->
      check Alcotest.int
        ("applied agrees: " ^ Deptest.Counters.kind_name k)
        (Deptest.Counters.applied r.Deptest.Analyze.counters k)
        (Dt_obs.Metrics.applied metrics k))
    Deptest.Counters.all_kinds

let suite =
  [
    Alcotest.test_case "test-kind ids are positional" `Quick test_kind_ids;
    Alcotest.test_case "test-kind slug round-trip" `Quick test_kind_slugs;
    Alcotest.test_case "counters kind_id matches" `Quick test_counters_kind_id;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json escape parsing" `Quick test_json_parse_escapes;
    Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
    Alcotest.test_case "metrics record/applied" `Quick test_metrics_record;
    Alcotest.test_case "metrics latency histogram" `Quick
      test_metrics_latency_hist;
    Alcotest.test_case "metrics merge" `Quick test_metrics_merge;
    Alcotest.test_case "metrics banerjee counters" `Quick
      test_metrics_banerjee_counters;
    Alcotest.test_case "metrics json round-trip" `Quick
      test_metrics_json_roundtrip;
    Alcotest.test_case "trace scope depths and tree" `Quick
      test_trace_scope_depth;
    Alcotest.test_case "trace scope exception-safe" `Quick
      test_trace_scope_exception_safe;
    Alcotest.test_case "strong SIV independent: one event, reason" `Quick
      test_trace_strong_siv_independent;
    Alcotest.test_case "strong SIV dependent: one event" `Quick
      test_trace_strong_siv_dependent;
    Alcotest.test_case "delta group events nest" `Quick
      test_trace_delta_group_nested;
    Alcotest.test_case "jsonl export parses line by line" `Quick
      test_trace_jsonl_parses;
    Alcotest.test_case "analyze emits pair spans; metrics agree" `Quick
      test_trace_analyze_verdicts;
  ]
