(* The Delta test's constraint lattice: construction, normalization,
   intersection, and interpretation (§5.2). *)

open Dt_ir
open Helpers

let check = Alcotest.check
let a0 = Deptest.Assume.empty
let inter = Deptest.Constr.intersect a0

let dist = Deptest.Constr.dist
let line ~a ~b c = Deptest.Constr.line ~a ~b ~c:(Affine.const c)
let point = Deptest.Constr.point

let test_normalization () =
  (* distance lines collapse to Dist *)
  check constr_t "line (1,-1,c) is a distance" (dist 3)
    (Deptest.Constr.line ~a:1 ~b:(-1) ~c:(Affine.const (-3)));
  check constr_t "line (-2,2,c) normalizes" (dist 2)
    (Deptest.Constr.line ~a:(-2) ~b:2 ~c:(Affine.const 4));
  (* unsatisfiable divisibility *)
  check constr_t "2a+2b=5 empty" Deptest.Constr.Empty (line ~a:2 ~b:2 5);
  check constr_t "content divided" (line ~a:1 ~b:1 2) (line ~a:3 ~b:3 6);
  (* degenerate *)
  check constr_t "0=0 is Any" Deptest.Constr.Any
    (Deptest.Constr.line ~a:0 ~b:0 ~c:Affine.zero);
  check constr_t "0=3 is Empty" Deptest.Constr.Empty
    (Deptest.Constr.line ~a:0 ~b:0 ~c:(Affine.const 3))

let test_intersect_dist () =
  check constr_t "any is identity" (dist 2) (inter Deptest.Constr.Any (dist 2));
  check constr_t "equal dists" (dist 2) (inter (dist 2) (dist 2));
  check constr_t "conflicting dists" Deptest.Constr.Empty
    (inter (dist 2) (dist 3));
  check constr_t "empty absorbs" Deptest.Constr.Empty
    (inter Deptest.Constr.Empty (dist 2))

let test_intersect_line () =
  (* alpha = 4 and beta = alpha + 1: point (4,5) *)
  check constr_t "line x dist = point" (point ~x:4 ~y:5)
    (inter (line ~a:1 ~b:0 4) (dist 1));
  (* alpha + beta = 10 and beta - alpha = 2: point (4,6) *)
  check constr_t "two lines meet" (point ~x:4 ~y:6)
    (inter (line ~a:1 ~b:1 10) (dist 2));
  (* alpha + beta = 9 and beta - alpha = 2: rational solution only *)
  check constr_t "non-integer meet" Deptest.Constr.Empty
    (inter (line ~a:1 ~b:1 9) (dist 2));
  (* parallel consistent / inconsistent *)
  check constr_t "same line" (line ~a:1 ~b:1 9)
    (inter (line ~a:1 ~b:1 9) (line ~a:2 ~b:2 18));
  check constr_t "parallel distinct" Deptest.Constr.Empty
    (inter (line ~a:1 ~b:1 9) (line ~a:1 ~b:1 8))

let test_intersect_point () =
  check constr_t "point on line" (point ~x:2 ~y:3)
    (inter (point ~x:2 ~y:3) (dist 1));
  check constr_t "point off line" Deptest.Constr.Empty
    (inter (point ~x:2 ~y:3) (dist 2));
  check constr_t "point vs point eq" (point ~x:2 ~y:3)
    (inter (point ~x:2 ~y:3) (point ~x:2 ~y:3));
  check constr_t "point vs point neq" Deptest.Constr.Empty
    (inter (point ~x:2 ~y:3) (point ~x:3 ~y:2))

let test_symbolic () =
  let n = Affine.of_sym "N" in
  check constr_t "sym dist collapse" (dist 4)
    (Deptest.Constr.sym_dist (Affine.const 4));
  check constr_t "conflicting sym dists" Deptest.Constr.Empty
    (inter
       (Deptest.Constr.sym_dist n)
       (Deptest.Constr.sym_dist (Affine.add_const 1 n)));
  check constr_t "equal sym dists"
    (Deptest.Constr.sym_dist n)
    (inter (Deptest.Constr.sym_dist n) (Deptest.Constr.sym_dist n))

let test_to_outcome () =
  let loops = loops1 ~hi:10 () in
  let assume, range = siv_ctx loops in
  let out c = Deptest.Constr.to_outcome assume range i0 c in
  check outcome_t "empty -> independent" Deptest.Outcome.Independent
    (out Deptest.Constr.Empty);
  check Alcotest.bool "any -> star" true
    (match out Deptest.Constr.Any with
    | Deptest.Outcome.Dependent [ d ] ->
        Deptest.Direction.is_full d.Deptest.Outcome.dirs
    | _ -> false);
  (* dist out of bounds *)
  check outcome_t "dist 20 out of [1,10]" Deptest.Outcome.Independent
    (out (dist 20));
  (* point out of range *)
  check outcome_t "point (12,13)" Deptest.Outcome.Independent
    (out (point ~x:12 ~y:13));
  check Alcotest.bool "point in range" true
    (match out (point ~x:3 ~y:5) with
    | Deptest.Outcome.Dependent [ d ] ->
        d.Deptest.Outcome.dist = Deptest.Outcome.Const 2
    | _ -> false)

(* intersection is commutative and monotone on a pool of constraints *)
let constr_pool =
  [
    Deptest.Constr.Any;
    dist 0;
    dist 1;
    dist (-2);
    line ~a:1 ~b:0 3;
    line ~a:0 ~b:1 4;
    line ~a:1 ~b:1 8;
    line ~a:2 ~b:(-3) 1;
    point ~x:2 ~y:2;
    point ~x:3 ~y:5;
    Deptest.Constr.Empty;
  ]

(* ground-truth satisfaction for constant constraints *)
let sat c (x, y) =
  match (c : Deptest.Constr.t) with
  | Deptest.Constr.Any -> true
  | Deptest.Constr.Empty -> false
  | Deptest.Constr.Dist d -> y - x = d
  | Deptest.Constr.Sym_dist _ -> true
  | Deptest.Constr.Line { a; b; c } -> (
      match Affine.as_const c with
      | Some k -> (a * x) + (b * y) = k
      | None -> true)
  | Deptest.Constr.Point p -> x = p.x && y = p.y

let test_intersection_sound_complete () =
  let grid =
    List.concat_map
      (fun x -> List.map (fun y -> (x, y)) (Dt_support.Listx.range (-6) 10))
      (Dt_support.Listx.range (-6) 10)
  in
  List.iter
    (fun c1 ->
      List.iter
        (fun c2 ->
          let c = inter c1 c2 in
          (* soundness: any point satisfying both must satisfy the result *)
          List.iter
            (fun pt ->
              if sat c1 pt && sat c2 pt && not (sat c pt) then
                Alcotest.failf "intersection dropped %s /\\ %s at (%d,%d)"
                  (Deptest.Constr.to_string c1) (Deptest.Constr.to_string c2)
                  (fst pt) (snd pt))
            grid;
          (* commutativity up to satisfaction on the grid *)
          let c' = inter c2 c1 in
          List.iter
            (fun pt ->
              if sat c pt <> sat c' pt then
                Alcotest.failf "intersection not commutative: %s vs %s"
                  (Deptest.Constr.to_string c) (Deptest.Constr.to_string c'))
            grid)
        constr_pool)
    constr_pool

let suite =
  [
    Alcotest.test_case "normalization" `Quick test_normalization;
    Alcotest.test_case "distance intersection" `Quick test_intersect_dist;
    Alcotest.test_case "line intersection" `Quick test_intersect_line;
    Alcotest.test_case "point intersection" `Quick test_intersect_point;
    Alcotest.test_case "symbolic constraints" `Quick test_symbolic;
    Alcotest.test_case "interpretation" `Quick test_to_outcome;
    Alcotest.test_case "intersection soundness grid" `Quick
      test_intersection_sound_complete;
  ]
