(* Tests for the sign oracle and the index-range algorithm (§4.3). *)

open Dt_ir
open Helpers

let check = Alcotest.check
let bool = Alcotest.bool

let n = Affine.of_sym "N"
let m = Affine.of_sym "M"

let test_assume_basic () =
  let a = Deptest.Assume.empty in
  check bool "const nonneg" true (Deptest.Assume.prove_nonneg a (Affine.const 0));
  check bool "const pos" true (Deptest.Assume.prove_pos a (Affine.const 1));
  check bool "const neg rejected" false
    (Deptest.Assume.prove_nonneg a (Affine.const (-1)));
  check bool "unknown sym" false (Deptest.Assume.prove_nonneg a n);
  (* with fact N - 1 >= 0 *)
  let a = Deptest.Assume.add_nonneg a (Affine.add_const (-1) n) in
  check bool "N >= 1 proves N - 1 >= 0" true
    (Deptest.Assume.prove_nonneg a (Affine.add_const (-1) n));
  check bool "N >= 1 proves N >= 0" true (Deptest.Assume.prove_nonneg a n);
  check bool "N >= 1 proves N positive" true (Deptest.Assume.prove_pos a n);
  check bool "N >= 1 proves 3N - 3 >= 0" true
    (Deptest.Assume.prove_nonneg a (Affine.add_const (-3) (Affine.scale 3 n)));
  check bool "cannot prove N - 2 >= 0" false
    (Deptest.Assume.prove_nonneg a (Affine.add_const (-2) n));
  check bool "nonpos of 1-N" true
    (Deptest.Assume.prove_nonpos a (Affine.sub (Affine.const 1) n |> Affine.add_const (-1)))

let test_assume_combination () =
  let a =
    Deptest.Assume.empty
    |> Fun.flip Deptest.Assume.add_nonneg (Affine.sub n m) (* N >= M *)
    |> Fun.flip Deptest.Assume.add_nonneg (Affine.add_const (-2) m)
    (* M >= 2 *)
  in
  check bool "N >= 2 by chaining" true
    (Deptest.Assume.prove_nonneg a (Affine.add_const (-2) n));
  check bool "N + M >= 4" true
    (Deptest.Assume.prove_nonneg a (Affine.add_const (-4) (Affine.add n m)));
  check bool "M - N unknown" false
    (Deptest.Assume.prove_nonneg a (Affine.sub m n));
  check
    (Alcotest.testable
       (fun ppf s ->
         Format.pp_print_string ppf
           (match s with
           | `Zero -> "zero" | `Pos -> "pos" | `Neg -> "neg"
           | `Nonneg -> "nonneg" | `Nonpos -> "nonpos" | `Unknown -> "?"))
       ( = ))
    "sign of M - 1" `Pos
    (Deptest.Assume.sign a (Affine.add_const (-1) m))

let test_loop_facts () =
  (* DO I = 1, N adds N - 1 >= 0 *)
  let loops = [ loop_aff i0 ~lo:(Affine.const 1) ~hi:n ] in
  let a = Deptest.Assume.add_loop_facts Deptest.Assume.empty loops in
  check bool "loop nonempty fact" true
    (Deptest.Assume.prove_nonneg a (Affine.add_const (-1) n));
  (* triangular inner loops contribute no fact (bounds mention indices) *)
  let tri = [ loop_aff j1 ~lo:(Affine.of_index i0) ~hi:n ] in
  let a2 = Deptest.Assume.add_loop_facts Deptest.Assume.empty tri in
  check Alcotest.int "no fact from triangular" 0
    (List.length (Deptest.Assume.facts a2))

let test_range_rect () =
  let loops = [ loop ~lo:2 ~hi:10 i0; loop ~hi:5 j1 ] in
  let r = range_of loops in
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int))
    "I range" (Some (2, 10)) (Deptest.Range.concrete r i0);
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int))
    "J range" (Some (1, 5)) (Deptest.Range.concrete r j1);
  check (Alcotest.option affine_t) "trip-1" (Some (Affine.const 8))
    (Deptest.Range.trip_minus_one r i0)

let test_range_triangular () =
  (* DO I = 1, N; DO J = I+1, N: J's maximal range is [2, N] *)
  let loops =
    [
      loop_aff i0 ~lo:(Affine.const 1) ~hi:n;
      loop_aff j1 ~lo:(Affine.add_const 1 (Affine.of_index i0)) ~hi:n;
    ]
  in
  let r = range_of loops in
  let rj = Deptest.Range.find r j1 in
  check (Alcotest.option affine_t) "J lo" (Some (Affine.const 2)) rj.Deptest.Range.lo;
  check (Alcotest.option affine_t) "J hi" (Some n) rj.Deptest.Range.hi;
  (* DO J = 1, I: hi resolves through I's hi *)
  let loops2 =
    [
      loop_aff i0 ~lo:(Affine.const 1) ~hi:n;
      loop_aff j1 ~lo:(Affine.const 1) ~hi:(Affine.of_index i0);
    ]
  in
  let r2 = range_of loops2 in
  let rj2 = Deptest.Range.find r2 j1 in
  check (Alcotest.option affine_t) "J hi via I" (Some n) rj2.Deptest.Range.hi;
  (* negative-coefficient bound: DO J = 1, N - I resolves with I's lo *)
  let loops3 =
    [
      loop_aff i0 ~lo:(Affine.const 1) ~hi:n;
      loop_aff j1 ~lo:(Affine.const 1)
        ~hi:(Affine.sub n (Affine.of_index i0));
    ]
  in
  let rj3 = Deptest.Range.find (range_of loops3) j1 in
  check (Alcotest.option affine_t) "J hi = N - 1" (Some (Affine.add_const (-1) n))
    rj3.Deptest.Range.hi

let test_range_contains () =
  let loops = [ loop_aff i0 ~lo:(Affine.const 1) ~hi:n ] in
  let assume = assume_of loops in
  let r = range_of loops in
  check (Alcotest.option bool) "1 in [1,N]" (Some true)
    (Deptest.Range.contains_int r assume i0 1);
  check (Alcotest.option bool) "0 not in [1,N]" (Some false)
    (Deptest.Range.contains_int r assume i0 0);
  check (Alcotest.option bool) "N in [1,N]" (Some true)
    (Deptest.Range.contains_affine r assume i0 n);
  check (Alcotest.option bool) "N+1 not in [1,N]" (Some false)
    (Deptest.Range.contains_affine r assume i0 (Affine.add_const 1 n));
  check (Alcotest.option bool) "5 unknown vs N" None
    (Deptest.Range.contains_int r assume i0 5);
  (* 3/2 <= N needs N >= 2, not implied by N >= 1: undecided *)
  check (Alcotest.option bool) "3/2 vs [1,N] undecided" None
    (Deptest.Range.contains_ratio r assume i0 (Dt_support.Ratio.make 3 2));
  check (Alcotest.option bool) "1/2 below [1,N]" (Some false)
    (Deptest.Range.contains_ratio r assume i0 (Dt_support.Ratio.make 1 2))

let suite =
  [
    Alcotest.test_case "sign oracle basics" `Quick test_assume_basic;
    Alcotest.test_case "fact combination" `Quick test_assume_combination;
    Alcotest.test_case "loop nonemptiness facts" `Quick test_loop_facts;
    Alcotest.test_case "rectangular ranges" `Quick test_range_rect;
    Alcotest.test_case "triangular ranges" `Quick test_range_triangular;
    Alcotest.test_case "symbolic membership" `Quick test_range_contains;
  ]
