(* Subscript classification and coupled-group partitioning (§2, §3). *)

open Dt_ir
open Helpers

let check = Alcotest.check

let relevant = Index.Set.of_list [ i0; j1; k2 ]
let classify p = Deptest.Classify.classify ~relevant p

let klass_t =
  Alcotest.testable Deptest.Classify.pp (fun a b ->
      Deptest.Classify.to_string a = Deptest.Classify.to_string b)

let test_ziv () =
  check klass_t "const pair" Deptest.Classify.Ziv
    (classify (spair (Affine.const 1) (Affine.const 2)));
  check klass_t "symbolic ZIV" Deptest.Classify.Ziv
    (classify (spair (Affine.of_sym "N") (Affine.const 2)))

let test_siv_kinds () =
  let kind p =
    match classify p with
    | Deptest.Classify.Siv { kind; _ } -> kind
    | _ -> Alcotest.fail "expected SIV"
  in
  Alcotest.(check bool)
    "strong" true
    (kind (spair (av ~c:1 i0) (av i0)) = Deptest.Classify.Strong);
  Alcotest.(check bool)
    "strong scaled" true
    (kind (spair (av ~k:2 ~c:1 i0) (av ~k:2 i0)) = Deptest.Classify.Strong);
  Alcotest.(check bool)
    "weak-zero right" true
    (kind (spair (av i0) (Affine.const 5)) = Deptest.Classify.Weak_zero);
  Alcotest.(check bool)
    "weak-zero left" true
    (kind (spair (Affine.const 5) (av i0)) = Deptest.Classify.Weak_zero);
  Alcotest.(check bool)
    "weak-crossing" true
    (kind (spair (av i0) (av ~k:(-1) ~c:6 i0)) = Deptest.Classify.Weak_crossing);
  Alcotest.(check bool)
    "general" true
    (kind (spair (av ~k:2 i0) (av i0)) = Deptest.Classify.General)

let test_rdiv_miv () =
  check klass_t "RDIV"
    (Deptest.Classify.Rdiv { src_index = i0; snk_index = j1 })
    (classify (spair (av i0) (av j1)));
  check klass_t "MIV same side"
    (Deptest.Classify.Miv (Index.Set.of_list [ i0; j1 ]))
    (classify (spair (Affine.add (av i0) (av j1)) (Affine.const 0)));
  check klass_t "MIV both"
    (Deptest.Classify.Miv (Index.Set.of_list [ i0; j1 ]))
    (classify (spair (Affine.add (av i0) (av j1)) (av i0)));
  check klass_t "MIV three"
    (Deptest.Classify.Miv (Index.Set.of_list [ i0; j1; k2 ]))
    (classify
       (spair (Affine.add (av i0) (av j1)) (av k2)))

let test_partition () =
  (* A(I, J, J+K): dim0 separable, dims 1-2 coupled via J *)
  let pairs =
    [
      spair (av i0) (av i0);
      spair (av j1) (av j1);
      spair (Affine.add (av j1) (av k2)) (av j1);
    ]
  in
  let groups = Deptest.Classify.partition ~relevant pairs in
  check Alcotest.int "two groups" 2 (List.length groups);
  let g1 = List.nth groups 0 and g2 = List.nth groups 1 in
  check (Alcotest.list Alcotest.int) "separable dim" [ 0 ]
    g1.Deptest.Classify.positions;
  check (Alcotest.list Alcotest.int) "coupled dims" [ 1; 2 ]
    g2.Deptest.Classify.positions;
  Alcotest.(check bool)
    "coupled indices" true
    (Index.Set.equal g2.Deptest.Classify.indices (Index.Set.of_list [ j1; k2 ]))

let test_partition_transitive () =
  (* A(I+J, J+K, K): all three transitively coupled *)
  let pairs =
    [
      spair (Affine.add (av i0) (av j1)) (Affine.const 0);
      spair (Affine.add (av j1) (av k2)) (Affine.const 0);
      spair (av k2) (Affine.const 0);
    ]
  in
  let groups = Deptest.Classify.partition ~relevant pairs in
  check Alcotest.int "one group" 1 (List.length groups);
  check (Alcotest.list Alcotest.int) "all dims" [ 0; 1; 2 ]
    (List.hd groups).Deptest.Classify.positions

let test_partition_ziv () =
  (* ZIV dims are their own separable groups *)
  let pairs = [ spair (Affine.const 1) (Affine.const 1); spair (av i0) (av i0) ] in
  let groups = Deptest.Classify.partition ~relevant pairs in
  check Alcotest.int "two singleton groups" 2 (List.length groups)

let test_coupling_across_sides () =
  (* A(I, J) vs A(J, I): dim0 has {I (src), J (snk)}, dim1 {J (src), I (snk)}:
     all dims coupled through both indices *)
  let pairs = [ spair (av i0) (av j1); spair (av j1) (av i0) ] in
  let groups = Deptest.Classify.partition ~relevant pairs in
  check Alcotest.int "transpose couples" 1 (List.length groups)

let suite =
  [
    Alcotest.test_case "ZIV" `Quick test_ziv;
    Alcotest.test_case "SIV kinds" `Quick test_siv_kinds;
    Alcotest.test_case "RDIV and MIV" `Quick test_rdiv_miv;
    Alcotest.test_case "partition separable/coupled" `Quick test_partition;
    Alcotest.test_case "transitive coupling" `Quick test_partition_transitive;
    Alcotest.test_case "ZIV singleton groups" `Quick test_partition_ziv;
    Alcotest.test_case "cross-side coupling" `Quick test_coupling_across_sides;
  ]
