(* The run ledger and drift detection (dt_report), the Prometheus
   exposition, and the atomic-artifact guarantees they lean on. *)

open Dt_ir
open Helpers

(* ------------------------------------------------------------------ *)
(* fixtures: build ledger records from real analysis runs              *)

let small_prog =
  let li = loop ~hi:10 i0 in
  Nest.program ~name:"t"
    [
      Nest.Loop
        ( li,
          [
            Nest.Stmt
              (Stmt.make ~id:0
                 ~writes:[ Aref.linear "A" [ av ~c:1 i0 ] ]
                 ~reads:[ Aref.linear "A" [ av i0 ] ]
                 ~text:"A(I+1) = A(I)" ());
          ] );
    ]

let record_of ?(label = "test") ?(jobs = 1) ?(source = "SRC") prog =
  let metrics = Dt_obs.Metrics.create () in
  let cfg = Deptest.Analyze.Config.make ~jobs ~cache:false ~metrics () in
  let r = Deptest.Analyze.run cfg prog in
  let pairs, independent, degraded = Dt_report.Record.summary_of_result r in
  Dt_report.Record.make ~ts_ms:1234 ~label
    ~config:(Dt_report.Record.config_of cfg)
    ~source:(Dt_report.Record.source_of source)
    ~counters:r.Deptest.Analyze.counters ~pairs ~independent ~degraded
    ~metrics ~wall_ns:5000 ~gc_minor_words:10. ~gc_major_words:2. ()

let json_str j = Dt_obs.Json.to_string j

let tmp_path name =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "dt-report-%d-%s" (Unix.getpid ()) name)

(* ------------------------------------------------------------------ *)
(* record                                                              *)

let test_record_roundtrip () =
  let r = record_of small_prog in
  let j = Dt_report.Record.to_json r in
  match Dt_report.Record.of_json j with
  | Error e -> Alcotest.failf "of_json failed: %s" e
  | Ok r' ->
      Alcotest.(check string)
        "to_json . of_json . to_json is the identity" (json_str j)
        (json_str (Dt_report.Record.to_json r'));
      (* the parse is also a value round-trip on the stable surface *)
      Alcotest.(check string)
        "stable view survives"
        (json_str (Dt_report.Record.stable_json r))
        (json_str (Dt_report.Record.stable_json r'))

let test_record_rejects () =
  let reject what j =
    match Dt_report.Record.of_json j with
    | Ok _ -> Alcotest.failf "accepted %s" what
    | Error _ -> ()
  in
  reject "a non-object" (Dt_obs.Json.Int 3);
  reject "an empty object" (Dt_obs.Json.Obj []);
  let r = record_of small_prog in
  (match Dt_report.Record.to_json r with
  | Dt_obs.Json.Obj fields ->
      reject "an unknown schema"
        (Dt_obs.Json.Obj
           (List.map
              (fun (k, v) ->
                if k = "schema" then (k, Dt_obs.Json.String "deptest-ledger/99")
                else (k, v))
              fields));
      reject "a dropped field"
        (Dt_obs.Json.Obj (List.filter (fun (k, _) -> k <> "verdicts") fields))
  | _ -> Alcotest.fail "to_json is not an object")

let test_fingerprint_ignores_jobs () =
  let r1 = record_of ~jobs:1 small_prog in
  let r2 = record_of ~jobs:2 small_prog in
  Alcotest.(check string)
    "same fingerprint at jobs=1 and jobs=2" r1.Dt_report.Record.fingerprint
    r2.Dt_report.Record.fingerprint;
  Alcotest.(check string)
    "stable record byte-identical across jobs"
    (json_str (Dt_report.Record.stable_json r1))
    (json_str (Dt_report.Record.stable_json r2));
  let r3 = record_of ~label:"other" small_prog in
  Alcotest.(check bool)
    "label partitions the fingerprint" false
    (r1.Dt_report.Record.fingerprint = r3.Dt_report.Record.fingerprint);
  let r4 = record_of ~source:"OTHER SRC" small_prog in
  Alcotest.(check bool)
    "source digest partitions the fingerprint" false
    (r1.Dt_report.Record.fingerprint = r4.Dt_report.Record.fingerprint)

(* ------------------------------------------------------------------ *)
(* ledger                                                              *)

let test_ledger_roundtrip () =
  let path = tmp_path "roundtrip.jsonl" in
  let records =
    [ record_of small_prog; record_of ~label:"b" small_prog;
      record_of ~jobs:2 small_prog ]
  in
  Dt_report.Ledger.save ~path records;
  (match Dt_report.Ledger.load ~path () with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok (loaded, skipped) ->
      Alcotest.(check int) "no skipped lines" 0 skipped;
      Alcotest.(check (list string))
        "records survive byte-for-byte"
        (List.map (fun r -> json_str (Dt_report.Record.to_json r)) records)
        (List.map (fun r -> json_str (Dt_report.Record.to_json r)) loaded));
  Sys.remove path

let test_ledger_missing_is_empty () =
  match Dt_report.Ledger.load ~path:(tmp_path "never-written.jsonl") () with
  | Ok ([], 0) -> ()
  | Ok (rs, sk) ->
      Alcotest.failf "expected empty, got %d records, %d skipped"
        (List.length rs) sk
  | Error e -> Alcotest.failf "missing file should not error: %s" e

let test_ledger_corrupt_lines () =
  let path = tmp_path "corrupt.jsonl" in
  let good = record_of small_prog in
  let line = json_str (Dt_report.Record.to_json good) in
  let oc = open_out_bin path in
  output_string oc (line ^ "\n");
  output_string oc "{ not json at all\n";
  output_string oc "{\"schema\":\"deptest-ledger/99\"}\n";
  output_string oc "\n";
  output_string oc (line ^ "\n");
  close_out oc;
  (match Dt_report.Ledger.load ~path () with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok (records, skipped) ->
      Alcotest.(check int) "two valid records" 2 (List.length records);
      Alcotest.(check int) "two corrupt lines skipped" 2 skipped);
  (* an append over the corrupt ledger reports and drops the casualties *)
  (match Dt_report.Ledger.append ~path (record_of ~label:"b" small_prog) with
  | Error e -> Alcotest.failf "append failed: %s" e
  | Ok skipped -> Alcotest.(check int) "append reports the drops" 2 skipped);
  (match Dt_report.Ledger.load ~path () with
  | Ok (records, 0) ->
      Alcotest.(check int) "rewrite kept the valid records" 3
        (List.length records)
  | Ok (_, sk) -> Alcotest.failf "rewrite left %d corrupt lines" sk
  | Error e -> Alcotest.failf "reload failed: %s" e);
  Sys.remove path

let test_ledger_compaction () =
  let path = tmp_path "compact.jsonl" in
  if Sys.file_exists path then Sys.remove path;
  let r = record_of small_prog in
  let other = record_of ~label:"other" small_prog in
  for _ = 1 to 5 do
    match Dt_report.Ledger.append ~path ~keep:2 r with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "append failed: %s" e
  done;
  (match Dt_report.Ledger.append ~path ~keep:2 other with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "append failed: %s" e);
  (match Dt_report.Ledger.load ~path () with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok (records, _) ->
      let count fp =
        List.length
          (List.filter
             (fun (x : Dt_report.Record.t) -> x.fingerprint = fp)
             records)
      in
      Alcotest.(check int) "same-fingerprint records capped" 2
        (count r.Dt_report.Record.fingerprint);
      Alcotest.(check int) "other fingerprint untouched" 1
        (count other.Dt_report.Record.fingerprint));
  Sys.remove path

let test_ledger_window_default () =
  (* the compaction window: [?keep] falls back to [default_keep], and an
     explicit window is honored exactly — this is what the CLI's
     [--ledger-window] / [DEPTEST_LEDGER_WINDOW] plumbs through *)
  let path = tmp_path "window.jsonl" in
  if Sys.file_exists path then Sys.remove path;
  let r = record_of small_prog in
  let n = Dt_report.Ledger.default_keep + 3 in
  for _ = 1 to n do
    match Dt_report.Ledger.append ~path r with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "append failed: %s" e
  done;
  (match Dt_report.Ledger.load ~path () with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok (records, _) ->
      Alcotest.(check int) "default window caps per-config history"
        Dt_report.Ledger.default_keep (List.length records));
  (* widening the window on a later append must not drop history that
     still fits *)
  (match Dt_report.Ledger.append ~path ~keep:(n + 10) r with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "append failed: %s" e);
  (match Dt_report.Ledger.load ~path () with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok (records, _) ->
      Alcotest.(check int) "wider window keeps everything present"
        (Dt_report.Ledger.default_keep + 1)
        (List.length records));
  (* and narrowing it compacts immediately *)
  (match Dt_report.Ledger.append ~path ~keep:3 r with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "append failed: %s" e);
  (match Dt_report.Ledger.load ~path () with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok (records, _) ->
      Alcotest.(check int) "narrow window compacts on append" 3
        (List.length records));
  Sys.remove path

let test_ledger_merge_idempotent () =
  let a = [ record_of small_prog; record_of ~label:"b" small_prog ] in
  let b = [ List.hd a; record_of ~label:"c" small_prog ] in
  let merged = Dt_report.Ledger.merge a b in
  Alcotest.(check int) "union without duplicates" 3 (List.length merged);
  Alcotest.(check int) "self-merge is the identity" 3
    (List.length (Dt_report.Ledger.merge merged merged))

(* ------------------------------------------------------------------ *)
(* drift                                                               *)

let test_drift_identical_runs () =
  let baseline = [ record_of small_prog; record_of small_prog ] in
  let current = [ record_of ~jobs:2 small_prog ] in
  let report =
    Dt_report.Drift.detect ~check_latency:false ~baseline ~current ()
  in
  Alcotest.(check bool) "identical runs never drift" false
    (Dt_report.Drift.has_drift report);
  Alcotest.(check int) "one fingerprint group" 1
    (List.length report.Dt_report.Drift.groups)

let qtest_drift_never_on_repeat =
  (* property at corpus scale: for arbitrary generated programs, two
     independent instrumented runs produce records that never drift *)
  let gen =
    QCheck.make
      (QCheck.Gen.map
         (fun seed ->
           let st = Random.State.make [| seed |] in
           Dt_workloads.Generator.program st
             { Dt_workloads.Generator.default with max_depth = 2; max_bound = 5 }
             ~stmts:3)
         QCheck.Gen.int)
  in
  qtest ~count:60 "repeated runs of a random program never drift" gen
    (fun prog ->
      let baseline = [ record_of prog ] in
      let current = [ record_of ~jobs:2 prog ] in
      not
        (Dt_report.Drift.has_drift
           (Dt_report.Drift.detect ~check_latency:false ~baseline ~current ())))

let test_drift_flipped_verdict () =
  (* a fault-injected run flips verdicts (pairs degrade conservatively);
     drift must fire and name the affected test kind *)
  let baseline = [ record_of small_prog ] in
  let current =
    Fun.protect ~finally:Dt_guard.Inject.disable (fun () ->
        Dt_guard.Inject.enable ~period:1 [ Dt_guard.Inject.Overflow ];
        [ record_of small_prog ])
  in
  let report =
    Dt_report.Drift.detect ~check_latency:false ~baseline ~current ()
  in
  Alcotest.(check bool) "injected run drifts" true
    (Dt_report.Drift.has_drift report);
  let rows =
    List.concat_map
      (fun (g : Dt_report.Drift.group) ->
        List.map
          (fun (r : Dt_report.Drift.counter_row) -> r.metric)
          g.counters)
      report.Dt_report.Drift.groups
  in
  let slugs =
    List.map Dt_obs.Test_kind.slug Dt_obs.Test_kind.all
  in
  Alcotest.(check bool) "a drifted row names a test kind" true
    (List.exists
       (fun m -> List.exists (fun s -> Astring_contains.contains m s) slugs)
       rows);
  Alcotest.(check bool) "degradation is reported" true
    (List.mem "degraded" rows)

let test_drift_unmatched_is_not_drift () =
  let current = [ record_of ~label:"brand-new" small_prog ] in
  let report =
    Dt_report.Drift.detect ~check_latency:false
      ~baseline:[ record_of small_prog ] ~current ()
  in
  Alcotest.(check bool) "no baseline -> reported, not drift" false
    (Dt_report.Drift.has_drift report);
  Alcotest.(check int) "unmatched run listed" 1
    (List.length report.Dt_report.Drift.unmatched)

let test_drift_latency_threshold () =
  let r = record_of small_prog in
  let slow = { r with Dt_report.Record.pair_ns = r.Dt_report.Record.pair_ns * 100 + 10_000_000 } in
  let counters, latency =
    Dt_report.Drift.diff ~latency_threshold:0.5 ~min_ns:10_000. ~baseline:r
      ~current:slow ()
  in
  Alcotest.(check int) "verdicts agree" 0 (List.length counters);
  Alcotest.(check bool) "latency breach detected" true (latency <> None);
  let _, quiet =
    Dt_report.Drift.diff ~check_latency:false ~baseline:r ~current:slow ()
  in
  Alcotest.(check bool) "--no-latency silences it" true (quiet = None)

(* ------------------------------------------------------------------ *)
(* prometheus exposition                                               *)

let prom_of_run () =
  let metrics = Dt_obs.Metrics.create () in
  let cfg = Deptest.Analyze.Config.make ~jobs:1 ~cache:true ~metrics () in
  List.iter
    (fun p -> ignore (Deptest.Analyze.run cfg p))
    (Dt_workloads.Corpus.programs
       (Dt_workloads.Corpus.find_exn ~suite:"linpack" ~name:"dgefa"));
  (metrics, Dt_obs.Metrics.to_prometheus metrics)

let lines s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let parse_sample line =
  (* name{labels} value | name value — returns (series-name, value) *)
  match String.index_opt line ' ' with
  | None -> None
  | Some _ ->
      let i = try String.index line '{' with Not_found -> String.length line in
      let sp = String.rindex line ' ' in
      let name = String.sub line 0 (min i sp) in
      let v = String.sub line (sp + 1) (String.length line - sp - 1) in
      Option.map (fun f -> (name, f)) (float_of_string_opt v)

let test_prometheus_lint () =
  let _, text = prom_of_run () in
  let ls = lines text in
  Alcotest.(check bool) "non-empty exposition" true (List.length ls > 20);
  (* every line is a comment or a parsable sample *)
  List.iter
    (fun l ->
      if String.length l > 0 && l.[0] <> '#' then
        match parse_sample l with
        | Some (name, _) ->
            Alcotest.(check bool)
              (Printf.sprintf "metric name %S is deptest-prefixed" name)
              true
              (Astring_contains.contains name "deptest_")
        | None -> Alcotest.failf "unparsable sample line: %s" l)
    ls;
  (* TYPE declared exactly once per family *)
  let types =
    List.filter_map
      (fun l ->
        if String.length l > 7 && String.sub l 0 7 = "# TYPE " then
          Some (List.nth (String.split_on_char ' ' l) 2)
        else None)
      ls
  in
  Alcotest.(check int) "no duplicate TYPE declarations"
    (List.length types)
    (List.length (List.sort_uniq compare types));
  (* every sample's family has a TYPE *)
  List.iter
    (fun l ->
      if String.length l > 0 && l.[0] <> '#' then
        match parse_sample l with
        | Some (name, _) ->
            let family =
              List.find_opt
                (fun t ->
                  name = t
                  || name = t ^ "_bucket"
                  || name = t ^ "_sum"
                  || name = t ^ "_count")
                types
            in
            if family = None then Alcotest.failf "sample %S has no TYPE" name
        | None -> ())
    ls

let test_prometheus_histogram () =
  let metrics, text = prom_of_run () in
  let ls = lines text in
  let buckets =
    List.filter_map
      (fun l ->
        match parse_sample l with
        | Some ("deptest_pair_latency_ns_bucket", v) -> Some v
        | _ -> None)
      ls
  in
  Alcotest.(check int) "one bucket per bound plus +Inf"
    (Array.length Dt_obs.Metrics.bucket_bounds_ns + 1)
    (List.length buckets);
  let rec monotone = function
    | a :: (b :: _ as tl) -> a <= b && monotone tl
    | _ -> true
  in
  Alcotest.(check bool) "cumulative buckets are monotone" true
    (monotone buckets);
  let count =
    List.find_map
      (fun l ->
        match parse_sample l with
        | Some ("deptest_pair_latency_ns_count", v) -> Some v
        | _ -> None)
      ls
  in
  Alcotest.(check (option (float 0.0001)))
    "+Inf bucket equals _count"
    (Some (List.nth buckets (List.length buckets - 1)))
    count;
  Alcotest.(check (option (float 0.0001)))
    "_count equals observed pairs"
    (Some (float_of_int (Dt_obs.Metrics.pairs metrics)))
    count

let test_prometheus_stable () =
  let metrics, text = prom_of_run () in
  Alcotest.(check string) "exposition is deterministic per registry" text
    (Dt_obs.Metrics.to_prometheus metrics)

(* ------------------------------------------------------------------ *)
(* artifact atomicity                                                  *)

let test_artifact_with_success () =
  let path = tmp_path "artifact.txt" in
  Dt_obs.Artifact.write_atomic_with path (fun oc ->
      output_string oc "hello ";
      output_string oc "world");
  let ic = open_in_bin path in
  let got = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "streamed content lands" "hello world" got;
  Alcotest.(check bool) "no temp file left" false
    (Sys.file_exists (path ^ ".tmp"));
  Sys.remove path

exception Boom

let test_artifact_with_failure () =
  let path = tmp_path "artifact-fail.txt" in
  Dt_obs.Artifact.write_atomic path "original";
  (match
     Dt_obs.Artifact.write_atomic_with path (fun oc ->
         output_string oc "partial garbage";
         raise Boom)
   with
  | () -> Alcotest.fail "exception was swallowed"
  | exception Boom -> ());
  Alcotest.(check bool) "temp file removed on failure" false
    (Sys.file_exists (path ^ ".tmp"));
  let ic = open_in_bin path in
  let got = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "target untouched on failure" "original" got;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* memo eviction counters                                              *)

let test_memo_eviction () =
  let t = Dt_engine.Memo.create ~capacity:2 () in
  Dt_engine.Memo.add t "a" 1;
  Dt_engine.Memo.add t "b" 2;
  Alcotest.(check int) "under capacity: nothing evicted" 0
    (Dt_engine.Memo.evictions t);
  Dt_engine.Memo.add t "c" 3;
  Alcotest.(check int) "over capacity: oldest evicted" 1
    (Dt_engine.Memo.evictions t);
  Alcotest.(check int) "resident entries bounded" 2 (Dt_engine.Memo.length t);
  Alcotest.(check (option int)) "FIFO victim was the oldest" None
    (Dt_engine.Memo.find_opt t "a");
  Alcotest.(check (option int)) "newest survives" (Some 3)
    (Dt_engine.Memo.find_opt t "c")

let test_cache_usage_in_metrics () =
  let metrics = Dt_obs.Metrics.create () in
  let cfg =
    Deptest.Analyze.Config.make ~jobs:1 ~cache:true ~cache_capacity:1 ~metrics
      ()
  in
  List.iter
    (fun p -> ignore (Deptest.Analyze.run cfg p))
    (Dt_workloads.Corpus.programs
       (Dt_workloads.Corpus.find_exn ~suite:"linpack" ~name:"dgefa"));
  (match Deptest.Analyze.Config.cache_usage cfg with
  | None -> Alcotest.fail "cache_usage missing on a cached config"
  | Some (size, evictions) ->
      Alcotest.(check bool) "capacity bounds residency" true (size <= 1);
      Alcotest.(check bool) "evictions counted" true (evictions > 0);
      Alcotest.(check int) "metrics snapshot agrees (size)" size
        (Dt_obs.Metrics.cache_size metrics);
      Alcotest.(check int) "metrics snapshot agrees (evictions)" evictions
        (Dt_obs.Metrics.cache_evictions metrics));
  match Dt_obs.Json.member "cache" (Dt_obs.Metrics.to_json metrics) with
  | Some cache ->
      Alcotest.(check bool) "cache block exports size" true
        (Dt_obs.Json.member "size" cache <> None);
      Alcotest.(check bool) "cache block exports evictions" true
        (Dt_obs.Json.member "evictions" cache <> None)
  | None -> Alcotest.fail "metrics JSON lost its cache block"

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "record JSON round-trip" `Quick test_record_roundtrip;
    Alcotest.test_case "record parser rejects bad input" `Quick
      test_record_rejects;
    Alcotest.test_case "fingerprint ignores jobs, honors label/source" `Quick
      test_fingerprint_ignores_jobs;
    Alcotest.test_case "ledger save/load round-trip" `Quick
      test_ledger_roundtrip;
    Alcotest.test_case "missing ledger is empty" `Quick
      test_ledger_missing_is_empty;
    Alcotest.test_case "ledger tolerates corrupt lines" `Quick
      test_ledger_corrupt_lines;
    Alcotest.test_case "append compacts per fingerprint" `Quick
      test_ledger_compaction;
    Alcotest.test_case "compaction window defaults and overrides" `Quick
      test_ledger_window_default;
    Alcotest.test_case "merge deduplicates" `Quick test_ledger_merge_idempotent;
    Alcotest.test_case "identical runs never drift" `Quick
      test_drift_identical_runs;
    qtest_drift_never_on_repeat;
    Alcotest.test_case "flipped verdicts drift and name the kind" `Quick
      test_drift_flipped_verdict;
    Alcotest.test_case "unmatched fingerprints are not drift" `Quick
      test_drift_unmatched_is_not_drift;
    Alcotest.test_case "latency drift thresholds" `Quick
      test_drift_latency_threshold;
    Alcotest.test_case "prometheus exposition parses cleanly" `Quick
      test_prometheus_lint;
    Alcotest.test_case "prometheus histogram is cumulative" `Quick
      test_prometheus_histogram;
    Alcotest.test_case "prometheus exposition is stable" `Quick
      test_prometheus_stable;
    Alcotest.test_case "write_atomic_with streams and fsyncs" `Quick
      test_artifact_with_success;
    Alcotest.test_case "write_atomic_with cleans up on exception" `Quick
      test_artifact_with_failure;
    Alcotest.test_case "memo eviction counters" `Quick test_memo_eviction;
    Alcotest.test_case "cache usage lands in metrics" `Quick
      test_cache_usage_in_metrics;
  ]
