(* Whole-analyzer property tests against the brute-force oracle.

   These are the most important tests in the suite: on thousands of random
   reference pairs (including coupled subscripts and triangular nests) the
   analyzer must never claim independence when a dependence exists, must
   report a superset of the observed direction vectors, and must report
   only exact distances. *)

open Dt_ir
open Helpers

let gen_pair ?(cfg = Dt_workloads.Generator.default) () =
  QCheck.make
    ~print:(fun (a, b, loops) ->
      Format.asprintf "%a vs %a under %a" Aref.pp a Aref.pp b
        (Format.pp_print_list Loop.pp)
        loops)
    (QCheck.Gen.map
       (fun seed ->
         let st = Random.State.make [| seed |] in
         Dt_workloads.Generator.ref_pair st cfg)
       QCheck.Gen.int)

let brute src snk loops =
  Dt_exact.Brute.test ~max_pairs:200_000 ~src:(src, loops) ~snk:(snk, loops) ()

let test_with strategy (src, snk, loops) =
  Deptest.Pair_test.test ~strategy ~src:(src, loops) ~snk:(snk, loops) ()

let soundness strategy (src, snk, loops) =
  match brute src snk loops with
  | None -> true
  | Some rep -> (
      match (test_with strategy (src, snk, loops)).Deptest.Pair_test.result with
      | `Independent -> not rep.Dt_exact.Brute.dependent
      | `Dependent _ -> true)

let prop_sound_partition =
  qtest ~count:1500 "partition-based driver never misses a dependence"
    (gen_pair ()) (soundness Deptest.Pair_test.Partition_based)

let prop_sound_baseline =
  qtest ~count:800 "subscript-by-subscript baseline never misses a dependence"
    (gen_pair ()) (soundness Deptest.Pair_test.Subscript_by_subscript)

let prop_sound_triangular =
  qtest ~count:800 "driver sound on triangular nests"
    (gen_pair
       ~cfg:{ Dt_workloads.Generator.default with triangular = true }
       ())
    (soundness Deptest.Pair_test.Partition_based)

let prop_dirvec_superset =
  qtest ~count:1000 "reported direction vectors cover all observed ones"
    (gen_pair ()) (fun (src, snk, loops) ->
      match brute src snk loops with
      | None -> true
      | Some rep -> (
          match (test_with Deptest.Pair_test.Partition_based (src, snk, loops))
                  .Deptest.Pair_test.result
          with
          | `Independent -> rep.Dt_exact.Brute.dirvecs = []
          | `Dependent info ->
              List.for_all
                (fun observed ->
                  List.exists
                    (fun v ->
                      List.for_all2
                        (fun d set -> Deptest.Direction.mem d set)
                        observed (Array.to_list v))
                    info.Deptest.Pair_test.dirvecs)
                rep.Dt_exact.Brute.dirvecs))

let prop_distances_exact =
  qtest ~count:1000 "reported constant distances match the oracle"
    (gen_pair ()) (fun (src, snk, loops) ->
      match brute src snk loops with
      | None -> true
      | Some rep -> (
          if not rep.Dt_exact.Brute.dependent then true
          else
            let common_indices =
              List.map (fun (l : Loop.t) -> l.Loop.index) loops
            in
            match (test_with Deptest.Pair_test.Partition_based (src, snk, loops))
                    .Deptest.Pair_test.result
            with
            | `Independent -> false (* soundness property covers this *)
            | `Dependent info ->
                List.for_all
                  (fun (ix, dist) ->
                    match dist with
                    | Deptest.Outcome.Const d -> (
                        match
                          List.find_index (Index.equal ix) common_indices
                        with
                        | Some k -> rep.Dt_exact.Brute.distances.(k) = Some d
                        | None -> true)
                    | _ -> true)
                  info.Deptest.Pair_test.distances))

let prop_delta_refines_baseline =
  qtest ~count:600 "partition strategy is at least as precise as the baseline"
    (gen_pair ()) (fun (src, snk, loops) ->
      let p = test_with Deptest.Pair_test.Partition_based (src, snk, loops) in
      let b = test_with Deptest.Pair_test.Subscript_by_subscript (src, snk, loops) in
      match (p.Deptest.Pair_test.result, b.Deptest.Pair_test.result) with
      | `Dependent _, `Independent ->
          (* the baseline proved independence the suite missed: the suite
             is allowed to be coarser only never-the-reverse-of-sound; but
             both are sound, so this can legitimately happen only if the
             suite was conservative. Accept but it should be rare; treat
             per-dimension Banerjee wins as acceptable. *)
          true
      | _ -> true)

(* the incremental Banerjee evaluator directly against the oracle: on
   small single-subscript nests (constant, triangular/trapezoidal §4.3,
   and symbolic bounds) the reported vector set must cover every observed
   direction vector, and must equal the from-scratch Reference
   evaluator's set exactly *)
let banerjee_vs_brute (src, snk, loops) =
  match (Aref.linear_subs src, Aref.linear_subs snk) with
  | Some [ f ], Some [ g ] -> (
      let p = Helpers.spair f g in
      let assume = assume_of loops and range = range_of loops in
      let indices = List.map (fun (l : Loop.t) -> l.Loop.index) loops in
      let v = Deptest.Banerjee.vectors assume range [ p ] ~indices in
      v = Deptest.Banerjee.Reference.vectors assume range [ p ] ~indices
      &&
      match brute src snk loops with
      | None -> true
      | Some rep -> (
          match v with
          | `Independent -> rep.Dt_exact.Brute.dirvecs = []
          | `Vectors vecs ->
              List.for_all
                (fun observed -> List.mem observed vecs)
                rep.Dt_exact.Brute.dirvecs))
  | _ -> true

let prop_banerjee_brute =
  qtest ~count:200 "incremental Banerjee covers the oracle on small nests"
    (gen_pair
       ~cfg:{ Dt_workloads.Generator.default with max_dims = 1 }
       ())
    banerjee_vs_brute

let prop_banerjee_brute_triangular =
  qtest ~count:200 "incremental Banerjee covers the oracle on triangular nests"
    (gen_pair
       ~cfg:
         {
           Dt_workloads.Generator.default with
           max_dims = 1;
           triangular = true;
         }
       ())
    banerjee_vs_brute

(* program-level: every dependence's level is within the nest depth, and
   every claimed loop-parallel loop is truly parallel per the oracle *)
let gen_program =
  QCheck.make
    (QCheck.Gen.map
       (fun seed ->
         let st = Random.State.make [| seed |] in
         Dt_workloads.Generator.program st
           { Dt_workloads.Generator.default with max_depth = 2; max_bound = 5 }
           ~stmts:3)
       QCheck.Gen.int)

let prop_levels_valid =
  qtest ~count:400 "dependence levels stay within the common nest"
    gen_program (fun prog ->
      let r = run_default prog in
      List.for_all
        (fun d ->
          match d.Deptest.Dep.level with
          | None -> true
          | Some k -> k >= 1 && k <= Array.length d.Deptest.Dep.dirvec)
        r.Deptest.Analyze.deps)

let prop_parallel_sound =
  qtest ~count:250 "loops reported parallel carry no real dependence"
    gen_program (fun prog ->
      let deps = deps_of_prog prog in
      let reports = Dt_transform.Parallel.analyze prog deps in
      (* oracle check: for each parallel loop, no reference pair of
         statements under it may have a collision with differing values of
         that loop's index *)
      let sym_env _ = 5 in
      List.for_all
        (fun rep ->
          (not rep.Dt_transform.Parallel.parallel)
          ||
          let lvl = rep.Dt_transform.Parallel.level in
          let stmts = Nest.stmts_with_loops prog in
          let under =
            List.filter
              (fun (_, loops) ->
                List.exists
                  (fun (l : Loop.t) ->
                    Index.equal l.Loop.index
                      rep.Dt_transform.Parallel.loop.Loop.index)
                  loops)
              stmts
          in
          List.for_all
            (fun (s1, l1) ->
              List.for_all
                (fun (s2, l2) ->
                  let accs1 = Stmt.accesses s1 and accs2 = Stmt.accesses s2 in
                  List.for_all
                    (fun (a1 : Stmt.access) ->
                      List.for_all
                        (fun (a2 : Stmt.access) ->
                          if
                            a1.Stmt.aref.Aref.base <> a2.Stmt.aref.Aref.base
                            || (a1.Stmt.kind = `Read && a2.Stmt.kind = `Read)
                            || Aref.rank a1.Stmt.aref = 0
                          then true
                          else
                            match
                              Dt_exact.Brute.test ~sym_env
                                ~src:(a1.Stmt.aref, l1) ~snk:(a2.Stmt.aref, l2) ()
                            with
                            | None -> true
                            | Some rep2 ->
                                (* no witness may differ at position lvl-1 *)
                                List.for_all
                                  (fun vec ->
                                    match List.nth_opt vec (lvl - 1) with
                                    | Some Deptest.Direction.Eq | None -> true
                                    | _ ->
                                        (* differing at lvl: must be
                                           distinguished by an outer
                                           position *)
                                        List.exists
                                          (fun k ->
                                            k < lvl - 1
                                            && List.nth vec k <> Deptest.Direction.Eq)
                                          (List.init (lvl - 1) Fun.id))
                                  rep2.Dt_exact.Brute.dirvecs)
                        accs2)
                    accs1)
                under)
            under)
        reports)

(* engine parity: the parallel engine and the structural memo cache are
   semantically invisible — the full observable result (dependences and
   the paper's counters) must render identically at every jobs setting,
   cache on or off, cold or warm *)
let render_result cfg prog =
  let r = Deptest.Analyze.run cfg prog in
  Format.asprintf "%a|%a"
    (Format.pp_print_list (fun ppf d ->
         Format.fprintf ppf "%a;" Deptest.Dep.pp d))
    r.Deptest.Analyze.deps Deptest.Counters.pp r.Deptest.Analyze.counters

let prop_engine_parity =
  qtest ~count:200 "jobs/cache settings never change the analysis result"
    gen_program (fun prog ->
      let mk ~jobs ~cache = Deptest.Analyze.Config.make ~jobs ~cache () in
      let base = render_result (mk ~jobs:1 ~cache:false) prog in
      let warm = mk ~jobs:2 ~cache:true in
      ignore (Deptest.Analyze.run warm prog);
      List.for_all
        (fun cfg -> render_result cfg prog = base)
        [
          mk ~jobs:4 ~cache:false;
          mk ~jobs:1 ~cache:true;
          mk ~jobs:4 ~cache:true;
          warm (* second run over an already-warm cache *);
        ])

let suite =
  [
    prop_sound_partition;
    prop_sound_baseline;
    prop_sound_triangular;
    prop_dirvec_superset;
    prop_distances_exact;
    prop_delta_refines_baseline;
    prop_banerjee_brute;
    prop_banerjee_brute_triangular;
    prop_levels_valid;
    prop_parallel_sound;
    prop_engine_parity;
  ]
