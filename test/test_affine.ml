(* Tests for the affine expression substrate. *)

open Dt_ir
open Helpers

let check = Alcotest.check

let test_construction () =
  let a = aff ~idx:[ (i0, 2); (j1, 0) ] ~sym:[ ("N", 1) ] 5 in
  check Alcotest.int "coeff i" 2 (Affine.coeff a i0);
  check Alcotest.int "zero coeff dropped" 0 (Affine.coeff a j1);
  check Alcotest.int "sym coeff" 1 (Affine.sym_coeff a "N");
  check Alcotest.int "const" 5 (Affine.const_part a);
  check Alcotest.bool "not const" false (Affine.is_const a);
  check Alcotest.bool "const detect" true (Affine.is_const (Affine.const 3));
  check (Alcotest.option Alcotest.int) "as_const" (Some 3)
    (Affine.as_const (Affine.const 3));
  check Alcotest.bool "indices" true
    (Index.Set.mem i0 (Affine.indices a) && not (Index.Set.mem j1 (Affine.indices a)))

let test_arith () =
  let a = av ~c:1 i0 (* I + 1 *) and b = av ~c:(-2) ~k:3 i0 (* 3I - 2 *) in
  check affine_t "add" (aff ~idx:[ (i0, 4) ] (-1)) (Affine.add a b);
  check affine_t "sub" (aff ~idx:[ (i0, -2) ] 3) (Affine.sub a b);
  check affine_t "neg" (aff ~idx:[ (i0, -1) ] (-1)) (Affine.neg a);
  check affine_t "scale" (aff ~idx:[ (i0, 3) ] 3) (Affine.scale 3 a);
  check affine_t "scale 0" Affine.zero (Affine.scale 0 a);
  check affine_t "cancellation" Affine.zero
    (Affine.sub (av i0) (av i0))

let test_subst () =
  (* (2I + J + 1)[I := J - 1] = 2J - 2 + J + 1 = 3J - 1 *)
  let a = aff ~idx:[ (i0, 2); (j1, 1) ] 1 in
  let e = av ~c:(-1) j1 in
  check affine_t "subst" (aff ~idx:[ (j1, 3) ] (-1)) (Affine.subst_index a i0 e);
  check affine_t "subst absent" a (Affine.subst_index a k2 (Affine.const 9));
  check affine_t "drop" (aff ~idx:[ (j1, 1) ] 1) (Affine.drop_index a i0);
  check affine_t "set_coeff" (aff ~idx:[ (i0, 7); (j1, 1) ] 1)
    (Affine.set_coeff a i0 7)

let test_div_content () =
  let a = aff ~idx:[ (i0, 4) ] ~sym:[ ("N", 6) ] 8 in
  check Alcotest.int "content" 2 (Affine.content a);
  check (Alcotest.option affine_t) "div_exact ok"
    (Some (aff ~idx:[ (i0, 2) ] ~sym:[ ("N", 3) ] 4))
    (Affine.div_exact a 2);
  check (Alcotest.option affine_t) "div_exact fail" None (Affine.div_exact a 3);
  check (Alcotest.option affine_t) "div by zero" None (Affine.div_exact a 0)

let test_eval () =
  let a = aff ~idx:[ (i0, 2); (j1, -1) ] ~sym:[ ("N", 3) ] 7 in
  let v =
    Affine.eval a
      ~index_env:(fun i -> if Index.equal i i0 then 5 else 2)
      ~sym_env:(fun _ -> 10)
  in
  check Alcotest.int "eval" ((2 * 5) - 2 + (3 * 10) + 7) v;
  let partial = Affine.eval_syms a ~sym_env:(fun s -> if s = "N" then Some 4 else None) in
  check affine_t "eval_syms" (aff ~idx:[ (i0, 2); (j1, -1) ] 19) partial

let test_pp () =
  check Alcotest.string "pp mix" "2*I - J + 3"
    (Affine.to_string (aff ~idx:[ (i0, 2); (j1, -1) ] 3));
  check Alcotest.string "pp const" "42" (Affine.to_string (Affine.const 42));
  check Alcotest.string "pp neg lead" "-I + 1"
    (Affine.to_string (aff ~idx:[ (i0, -1) ] 1))

let gen_affine =
  QCheck.map
    (fun (ci, cj, cn, c) -> aff ~idx:[ (i0, ci); (j1, cj) ] ~sym:[ ("N", cn) ] c)
    QCheck.(
      quad (int_range (-9) 9) (int_range (-9) 9) (int_range (-9) 9)
        (int_range (-20) 20))

let prop_eval_hom =
  qtest "eval is a homomorphism for add/sub/scale"
    (QCheck.pair gen_affine gen_affine)
    (fun (a, b) ->
      let ie i = if Index.equal i i0 then 3 else -2 in
      let se _ = 7 in
      let ev x = Affine.eval x ~index_env:ie ~sym_env:se in
      ev (Affine.add a b) = ev a + ev b
      && ev (Affine.sub a b) = ev a - ev b
      && ev (Affine.scale 5 a) = 5 * ev a
      && ev (Affine.neg a) = -ev a)

let prop_subst_eval =
  qtest "substitution commutes with evaluation"
    (QCheck.pair gen_affine gen_affine)
    (fun (a, e) ->
      (* e must not mention i0 for the direct substitution semantics *)
      let e = Affine.drop_index e i0 in
      let se _ = 5 in
      let ie_with v i = if Index.equal i i0 then v else 4 in
      let ev_e = Affine.eval e ~index_env:(ie_with 0) ~sym_env:se in
      let lhs =
        Affine.eval (Affine.subst_index a i0 e) ~index_env:(ie_with 999)
          ~sym_env:se
      in
      let rhs = Affine.eval a ~index_env:(ie_with ev_e) ~sym_env:se in
      lhs = rhs)

let suite =
  [
    Alcotest.test_case "construction" `Quick test_construction;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "substitution" `Quick test_subst;
    Alcotest.test_case "division/content" `Quick test_div_content;
    Alcotest.test_case "evaluation" `Quick test_eval;
    Alcotest.test_case "pretty-printing" `Quick test_pp;
    prop_eval_hom;
    prop_subst_eval;
  ]
