(* The per-pair driver (§3) and whole-program analysis: partitioning,
   merging, orientation, dependence kinds, levels, and the baseline
   strategy. *)

open Dt_ir
open Helpers

let check = Alcotest.check

let test_pair_separable () =
  let loops = loops2 ~hi:10 () in
  (* A(I, J+1) vs A(I, J): distances (0, 1) *)
  let w = Aref.linear "A" [ av i0; av ~c:1 j1 ] in
  let r = Aref.linear "A" [ av i0; av j1 ] in
  let t = Deptest.Pair_test.test ~src:(w, loops) ~snk:(r, loops) () in
  (match t.Deptest.Pair_test.result with
  | `Dependent info ->
      check Alcotest.int "one direction vector" 1
        (List.length info.Deptest.Pair_test.dirvecs);
      check Alcotest.string "(=,<)" "(=,<)"
        (Deptest.Dirvec.to_string (List.hd info.Deptest.Pair_test.dirvecs))
  | `Independent -> Alcotest.fail "dependent expected");
  check Alcotest.int "two separable" 2 t.Deptest.Pair_test.meta.Deptest.Pair_test.separable;
  check Alcotest.int "no coupled" 0
    t.Deptest.Pair_test.meta.Deptest.Pair_test.coupled_groups

let test_pair_coupled_indep () =
  let loops = loops1 ~hi:100 () in
  (* the paper's intersection example *)
  let w = Aref.linear "A" [ av ~c:1 i0; av ~c:2 i0 ] in
  let r = Aref.linear "A" [ av i0; av i0 ] in
  let t = Deptest.Pair_test.test ~src:(w, loops) ~snk:(r, loops) () in
  check Alcotest.bool "independent" true (t.Deptest.Pair_test.result = `Independent);
  (* the baseline strategy misses it *)
  let tb =
    Deptest.Pair_test.test ~strategy:Deptest.Pair_test.Subscript_by_subscript
      ~src:(w, loops) ~snk:(r, loops) ()
  in
  check Alcotest.bool "baseline dependent" true
    (tb.Deptest.Pair_test.result <> `Independent)

let test_pair_nonlinear () =
  let loops = loops1 () in
  let w = Aref.make "A" [ Aref.Nonlinear "IX(I)" ] in
  let r = Aref.make "A" [ Aref.Nonlinear "IX(I)" ] in
  let t = Deptest.Pair_test.test ~src:(w, loops) ~snk:(r, loops) () in
  check Alcotest.bool "conservative dependence" true
    (t.Deptest.Pair_test.result <> `Independent);
  check Alcotest.int "nonlinear counted" 1
    t.Deptest.Pair_test.meta.Deptest.Pair_test.nonlinear

let test_pair_scalar () =
  let loops = loops1 () in
  let s = Aref.make "T" [] in
  let t = Deptest.Pair_test.test ~src:(s, loops) ~snk:(s, loops) () in
  check Alcotest.bool "scalar always dependent" true
    (t.Deptest.Pair_test.result <> `Independent)

let test_pair_rank_mismatch () =
  let loops = loops1 () in
  let a1 = Aref.linear "A" [ av i0 ] in
  let a2 = Aref.linear "A" [ av i0; av i0 ] in
  let t = Deptest.Pair_test.test ~src:(a1, loops) ~snk:(a2, loops) () in
  check Alcotest.bool "conservative on rank mismatch" true
    (t.Deptest.Pair_test.result <> `Independent)

let test_sibling_loop_renaming () =
  (* two sibling loops (distinct indices, as the frontend guarantees by
     uniquification): the pair has no common loops, and the analysis must
     use each side's own range *)
  let iA = idx "I" and iB = idx "I_2" in
  let loopsA = [ loop ~lo:1 ~hi:10 iA ] in
  let loopsB = [ loop ~lo:11 ~hi:20 iB ] in
  let w = Aref.linear "A" [ av iA ] in
  let r = Aref.linear "A" [ av ~c:(-15) iB ] in
  (* write A(1..10); read A(-4..5): overlap 1..5: dependent *)
  let t = Deptest.Pair_test.test ~src:(w, loopsA) ~snk:(r, loopsB) () in
  check Alcotest.bool "cross-nest dependence found" true
    (t.Deptest.Pair_test.result <> `Independent);
  (* read A(16..25): no overlap with 1..10 *)
  let r2 = Aref.linear "A" [ av ~c:5 iB ] in
  let t2 = Deptest.Pair_test.test ~src:(w, loopsA) ~snk:(r2, loopsB) () in
  check Alcotest.bool "cross-nest independence" true
    (t2.Deptest.Pair_test.result = `Independent)

let test_decompose () =
  let v =
    [| Deptest.Direction.full_set; Deptest.Direction.single Deptest.Direction.Lt |]
  in
  let parts = Deptest.Analyze.decompose v in
  (* level 1 forward (<, <-part), level1 backward, and =-prefix with
     (=,<) at level 2 forward; no loop-independent since position 1 is Lt *)
  let levels =
    List.map (fun (l, _, o) -> (l, o)) parts |> List.sort compare
  in
  check
    (Alcotest.list (Alcotest.pair (Alcotest.option Alcotest.int)
                      (Alcotest.testable
                         (fun ppf -> function
                           | `Forward -> Format.pp_print_string ppf "fwd"
                           | `Backward -> Format.pp_print_string ppf "bwd")
                         ( = ))))
    "decomposition"
    [ (Some 1, `Backward); (Some 1, `Forward); (Some 2, `Forward) ]
    levels

let test_program_kinds () =
  let deps =
    deps_of
      {|
      DO 10 I = 2, 50
        A(I) = B(I) + 1
        B(I) = A(I-1) + A(I+1)
   10 CONTINUE
|}
  in
  let kinds =
    List.map
      (fun d -> (d.Deptest.Dep.src_stmt, d.Deptest.Dep.snk_stmt, d.Deptest.Dep.kind))
      deps
    |> List.sort_uniq compare
  in
  (* S0 writes A(I); S1 reads A(I-1) (flow, d=1) and A(I+1) (anti
     backward: S1 reads A(I+1) before S0 writes it next iteration ->
     anti S1 -> S0). S1 writes B(I), S0 reads B(I): anti S0->S1
     loop-independent? S0 reads B(I) first (id 0 < 1): flow? S1 writes
     B(I) AFTER S0 read it in the same iteration: anti S0 -> S1. *)
  check Alcotest.bool "flow S0->S1" true
    (List.mem (0, 1, Deptest.Dep.Flow) kinds);
  check Alcotest.bool "anti S1->S0" true
    (List.mem (1, 0, Deptest.Dep.Anti) kinds);
  check Alcotest.bool "anti S0->S1 (B)" true
    (List.mem (0, 1, Deptest.Dep.Anti) kinds)

let test_levels () =
  let deps =
    deps_of
      {|
      DO 20 I = 2, 20
      DO 10 J = 2, 20
        A(I,J) = A(I,J-1) + A(I-1,J)
   10 CONTINUE
   20 CONTINUE
|}
  in
  let levels = List.filter_map (fun d -> d.Deptest.Dep.level) deps in
  check (Alcotest.list Alcotest.int) "levels 1 and 2" [ 1; 2 ]
    (List.sort_uniq compare levels)

let test_loop_independent () =
  let deps =
    deps_of
      {|
      DO 10 I = 1, 20
        A(I) = B(I)
        C(I) = A(I)
   10 CONTINUE
|}
  in
  match deps with
  | [ d ] ->
      check (Alcotest.option Alcotest.int) "loop independent" None
        d.Deptest.Dep.level;
      check Alcotest.bool "flow" true (d.Deptest.Dep.kind = Deptest.Dep.Flow)
  | _ -> Alcotest.failf "expected exactly one dependence, got %d" (List.length deps)

let test_input_deps () =
  let prog = parse {|
      DO 10 I = 1, 20
        A(I) = B(I) + B(I-1)
   10 CONTINUE
|} in
  let no_inputs = deps_of_prog prog in
  check Alcotest.bool "no input deps by default" true
    (List.for_all (fun d -> d.Deptest.Dep.kind <> Deptest.Dep.Input) no_inputs);
  let with_inputs =
    (Deptest.Analyze.run
       (Deptest.Analyze.Config.make ~include_inputs:true ())
       prog)
      .Deptest.Analyze.deps
  in
  check Alcotest.bool "input deps on demand" true
    (List.exists (fun d -> d.Deptest.Dep.kind = Deptest.Dep.Input) with_inputs)

let test_depgraph () =
  let deps =
    deps_of
      {|
      DO 10 I = 2, 20
        A(I) = A(I-1) + B(I)
        C(I) = A(I)
   10 CONTINUE
|}
  in
  let g = Deptest.Depgraph.build deps in
  check Alcotest.bool "has self flow" true
    (List.exists
       (fun d -> d.Deptest.Dep.snk_stmt = 0)
       (Deptest.Depgraph.succs g 0));
  check Alcotest.bool "edge 0->1" true
    (Deptest.Depgraph.edges_between g ~src:0 ~snk:1 <> []);
  check Alcotest.int "carried at 1" 1
    (List.length (Deptest.Depgraph.carried_at g ~level:1))

let suite =
  [
    Alcotest.test_case "separable merging" `Quick test_pair_separable;
    Alcotest.test_case "coupled beats baseline" `Quick test_pair_coupled_indep;
    Alcotest.test_case "nonlinear conservative" `Quick test_pair_nonlinear;
    Alcotest.test_case "scalar references" `Quick test_pair_scalar;
    Alcotest.test_case "rank mismatch" `Quick test_pair_rank_mismatch;
    Alcotest.test_case "sibling loop renaming" `Quick test_sibling_loop_renaming;
    Alcotest.test_case "vector decomposition" `Quick test_decompose;
    Alcotest.test_case "dependence kinds" `Quick test_program_kinds;
    Alcotest.test_case "carried levels" `Quick test_levels;
    Alcotest.test_case "loop-independent deps" `Quick test_loop_independent;
    Alcotest.test_case "input dependences" `Quick test_input_deps;
    Alcotest.test_case "dependence graph" `Quick test_depgraph;
  ]
