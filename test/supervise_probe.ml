(* Subprocess harness for the Supervise tests: [Unix.fork] is forbidden
   once a domain exists, and the test binary spawns server domains, so
   the supervisor scenarios run here, in a fresh single-domain process.
   The scenario name arrives in argv; results leave via stdout and the
   exit code. *)

let write_line s =
  let line = s ^ "\n" in
  ignore (Unix.write_substring Unix.stdout line 0 (String.length line))

let () =
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "" with
  | "recover" ->
      (* crash twice, then report the restart count and exit clean; the
         supervisor's return code must be 0 *)
      exit
        (Dt_serve.Supervise.run ~max_restarts:5 ~backoff_ms:1
           (fun ~restarts ->
             if restarts < 2 then Unix._exit 7
             else begin
               write_line (string_of_int restarts);
               Unix._exit 0
             end))
  | "cap" ->
      (* always crash: after the cap the supervisor gives up and
         surfaces the child's code (9) *)
      exit
        (Dt_serve.Supervise.run ~max_restarts:2 ~backoff_ms:1
           ~log:write_line
           (fun ~restarts:_ -> Unix._exit 9))
  | other ->
      prerr_endline ("supervise_probe: unknown scenario " ^ other);
      exit 64
