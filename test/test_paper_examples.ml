(* Integration tests: every worked example in the paper's text must behave
   exactly as the paper states. The sources live in the corpus's "paper"
   suite. *)

open Helpers

let check = Alcotest.check

let deps name =
  (analyze_entry "paper" name).Deptest.Analyze.deps

let dirvec_strings ds =
  List.map (fun d -> Deptest.Dirvec.to_string d.Deptest.Dep.dirvec) ds
  |> List.sort_uniq compare

(* §2.2: the skewed Livermore kernel has distance vectors (1,0), (0,1) *)
let test_livermore_skewed () =
  let ds = deps "livermore_skewed" in
  check Alcotest.int "two dependences" 2 (List.length ds);
  check (Alcotest.list Alcotest.string) "direction vectors"
    [ "(<,=)"; "(=,<)" ] (dirvec_strings ds);
  let dists =
    List.map
      (fun d ->
        List.map
          (fun (_, x) ->
            match x with Deptest.Outcome.Const c -> c | _ -> 99)
          d.Deptest.Dep.distances)
      ds
    |> List.sort compare
  in
  check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "distance vectors (0,1) and (1,0)"
    [ [ 0; 1 ]; [ 1; 0 ] ]
    dists

(* §4.2: the tomcatv weak-zero dependence runs from the first iteration to
   all later ones, and loop peeling removes it *)
let test_tomcatv_weakzero () =
  let ds = deps "tomcatv_weakzero" in
  check Alcotest.bool "has carried flow dep" true
    (List.exists
       (fun d ->
         d.Deptest.Dep.kind = Deptest.Dep.Flow && d.Deptest.Dep.level = Some 1)
       ds);
  let prog =
    Dt_workloads.Corpus.program (find_entry "paper" "tomcatv_weakzero")
  in
  let suggestions = Dt_transform.Restructure.suggest prog in
  check Alcotest.bool "peel-first suggested" true
    (List.exists
       (function
         | Dt_transform.Restructure.Peel { at_boundary = `First; _ } -> true
         | _ -> false)
       suggestions)

(* §4.2: the CDL weak-crossing example: all dependences cross iteration
   (N+1)/2; loop splitting removes them *)
let test_cdl_weakcrossing () =
  let prog =
    Dt_workloads.Corpus.program (find_entry "paper" "cdl_weakcrossing")
  in
  let ds = deps_of_prog prog in
  check Alcotest.bool "dependences exist" true (ds <> []);
  let suggestions = Dt_transform.Restructure.suggest prog in
  check Alcotest.bool "split suggested" true
    (List.exists
       (function
         | Dt_transform.Restructure.Split _ -> true
         | _ -> false)
       suggestions)

(* §5.2: constraint intersection proves independence where
   subscript-by-subscript testing cannot *)
let test_delta_intersect () =
  let ds = deps "delta_intersect_indep" in
  check Alcotest.int "no dependences" 0 (List.length ds);
  (* and the baseline strategy keeps the false dependence *)
  let prog =
    Dt_workloads.Corpus.program (find_entry "paper" "delta_intersect_indep")
  in
  let baseline =
    (Deptest.Analyze.run
       (Deptest.Analyze.Config.make
          ~strategy:Deptest.Pair_test.Subscript_by_subscript ())
       prog)
      .Deptest.Analyze.deps
  in
  check Alcotest.bool "baseline reports a (false) dependence" true
    (baseline <> [])

(* §5.3.1: propagation derives exact distances for the coupled pair *)
let test_delta_propagate () =
  let ds = deps "delta_propagate" in
  check Alcotest.int "one dependence" 1 (List.length ds);
  let d = List.hd ds in
  check (Alcotest.option Alcotest.int) "carried outer" (Some 1)
    d.Deptest.Dep.level;
  let dist_of ix_name =
    List.find_map
      (fun (i, x) ->
        if Dt_ir.Index.name i = ix_name then
          match x with Deptest.Outcome.Const c -> Some c | _ -> None
        else None)
      d.Deptest.Dep.distances
  in
  check (Alcotest.option Alcotest.int) "d_I = 1" (Some 1) (dist_of "I");
  check (Alcotest.option Alcotest.int) "d_J = 0" (Some 0) (dist_of "J")

(* §5.3.2: the transposed reference admits only (<,>), (=,=), (>,<) *)
let test_rdiv_transpose () =
  let ds = deps "rdiv_transpose" in
  let vecs = dirvec_strings ds in
  check (Alcotest.list Alcotest.string) "legal vectors only"
    [ "(<,>)"; "(=,=)" ] vecs;
  (* (=,=) must be the loop-independent self anti-dependence *)
  check Alcotest.bool "diagonal is loop-independent" true
    (List.exists
       (fun d ->
         d.Deptest.Dep.level = None && d.Deptest.Dep.kind = Deptest.Dep.Anti)
       ds)

(* §4.4: GCD-based independence *)
let test_gcd_indep () =
  check Alcotest.int "no dependence" 0 (List.length (deps "gcd_indep"))

(* §4.3: triangular nest analysis terminates with exact carried level *)
let test_triangular () =
  let ds = deps "triangular" in
  check Alcotest.bool "carried on I only" true
    (List.for_all
       (fun d ->
         match d.Deptest.Dep.level with Some 1 -> true | None -> true | _ -> false)
       ds);
  check Alcotest.bool "some dependence" true (ds <> [])

(* §4.5: symbolic additive constants cancel: the K1 terms subtract away
   and the exact distance-1 anti dependence (read one ahead) remains *)
let test_symbolic_cancel () =
  let ds = deps "symbolic_cancel" in
  check Alcotest.int "one dependence" 1 (List.length ds);
  let d = List.hd ds in
  check Alcotest.bool "anti" true (d.Deptest.Dep.kind = Deptest.Dep.Anti);
  check Alcotest.bool "distance 1 exact" true
    (List.exists (fun (_, x) -> x = Deptest.Outcome.Const 1) d.Deptest.Dep.distances)

let suite =
  [
    Alcotest.test_case "skewed Livermore kernel (§2.2)" `Quick test_livermore_skewed;
    Alcotest.test_case "tomcatv weak-zero (§4.2)" `Quick test_tomcatv_weakzero;
    Alcotest.test_case "CDL weak-crossing (§4.2)" `Quick test_cdl_weakcrossing;
    Alcotest.test_case "Delta intersection (§5.2)" `Quick test_delta_intersect;
    Alcotest.test_case "Delta propagation (§5.3.1)" `Quick test_delta_propagate;
    Alcotest.test_case "RDIV transpose (§5.3.2)" `Quick test_rdiv_transpose;
    Alcotest.test_case "GCD independence (§4.4)" `Quick test_gcd_indep;
    Alcotest.test_case "triangular nest (§4.3)" `Quick test_triangular;
    Alcotest.test_case "symbolic cancellation (§4.5)" `Quick test_symbolic_cancel;
  ]
